// factlog optimizer CLI: compile a Datalog query with a selectable strategy.
//
//   usage: optimizer_cli <program.dl>
//            [--strategy auto|magic|supplementary-magic|factoring|counting|
//                        linear-rewrite]
//            [--stage trace|magic|factored|final]
//            [--facts <facts.dl>]
//
// The program file must contain a `?- query.` line. With --facts the final
// program is evaluated against the given ground facts and the answers are
// printed; otherwise the requested stage is printed (default: everything).
// `--stage trace` prints the structured pass trace (per-pass timings, rule
// counts, and decisions).
//
// Exit codes: 0 on success, 2 on usage errors, and 10 + StatusCode on
// pipeline/evaluation errors (11 = invalid argument, 12 = not found,
// 13 = failed precondition, 14 = resource exhausted); see
// StatusCodeToExitCode in common/status.h.
//
//   $ cat tc.dl
//   t(X, Y) :- e(X, Y).
//   t(X, Y) :- e(X, W), t(W, Y).
//   ?- t(1, Y).
//   $ cat facts.dl
//   e(1, 2). e(2, 3).
//   $ ./optimizer_cli tc.dl --facts facts.dl

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "api/engine.h"
#include "ast/parser.h"
#include "core/pipeline.h"

namespace {

factlog::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return factlog::Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int Fail(const factlog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return factlog::StatusCodeToExitCode(status.code());
}

int Usage() {
  std::cerr << "usage: optimizer_cli <program.dl> "
               "[--strategy auto|magic|supplementary-magic|factoring|"
               "counting|linear-rewrite] "
               "[--stage trace|magic|factored|final] [--facts <facts.dl>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace factlog;
  if (argc < 2) return Usage();
  std::string stage = "all";
  std::string facts_path;
  core::Strategy strategy = core::Strategy::kFactoring;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stage" && i + 1 < argc) {
      stage = argv[++i];
    } else if (arg == "--facts" && i + 1 < argc) {
      facts_path = argv[++i];
    } else if (arg == "--strategy" && i + 1 < argc) {
      auto parsed = core::StrategyFromString(argv[++i]);
      if (!parsed.has_value()) {
        std::cerr << "unknown strategy: " << argv[i] << "\n";
        return Usage();
      }
      strategy = *parsed;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    }
  }

  auto text = ReadFile(argv[1]);
  if (!text.ok()) return Fail(text.status());
  auto program = ast::ParseProgram(*text);
  if (!program.ok()) return Fail(program.status());
  if (!program->query().has_value()) {
    std::cerr << "error: the program has no '?-' query\n";
    return StatusCodeToExitCode(StatusCode::kInvalidArgument);
  }

  // The paper pipeline (kFactoring) exposes every intermediate stage through
  // OptimizeQuery — one run yields the trace, the Magic/factored stages, and
  // the final program. Other strategies compile straight to a CompiledQuery.
  const bool wants_intermediates =
      stage == "all" || stage == "magic" || stage == "factored";
  if (wants_intermediates && stage != "all" &&
      strategy != core::Strategy::kFactoring) {
    std::cerr << "error: --stage " << stage
              << " shows a paper-pipeline intermediate; it requires "
                 "--strategy factoring\n";
    return 2;
  }
  core::CompiledQuery compiled;
  std::optional<core::PipelineResult> pipeline;
  if (strategy == core::Strategy::kFactoring) {
    auto full = core::OptimizeQuery(*program, *program->query());
    if (!full.ok()) return Fail(full.status());
    // Equivalent to CompileQuery(kFactoring) — tests assert they agree —
    // without compiling the pipeline a second time.
    compiled.strategy = core::Strategy::kFactoring;
    compiled.program = full->final_program();
    compiled.query = full->final_query();
    compiled.program.set_query(compiled.query);
    compiled.factoring_applied = full->factoring_applied;
    compiled.factor_class = full->factorability.cls;
    compiled.trace = full->trace;
    pipeline = std::move(full).value();
  } else {
    auto result = core::CompileQuery(*program, *program->query(), strategy);
    if (!result.ok()) return Fail(result.status());
    compiled = std::move(result).value();
  }

  if (stage == "all" || stage == "trace") {
    std::cout << "% --- pass trace (strategy: "
              << core::StrategyToString(compiled.strategy) << ") ---\n";
    std::istringstream lines(core::TraceToString(compiled.trace));
    for (std::string line; std::getline(lines, line);) {
      std::cout << "%   " << line << "\n";
    }
  }
  if ((stage == "all" || stage == "magic") && pipeline.has_value()) {
    std::cout << "% --- Magic program ---\n"
              << pipeline->magic.program.ToString();
  }
  if ((stage == "all" || stage == "factored") && pipeline.has_value() &&
      pipeline->factored.has_value()) {
    std::cout << "% --- factored program ---\n"
              << pipeline->factored->program.ToString();
  }
  if (stage == "all" || stage == "final") {
    std::cout << "% --- final program ---\n" << compiled.program.ToString();
  }

  if (!facts_path.empty()) {
    auto facts_text = ReadFile(facts_path);
    if (!facts_text.ok()) return Fail(facts_text.status());
    api::Engine engine;
    Status load = engine.LoadFacts(*facts_text);
    if (!load.ok()) return Fail(load);
    api::QueryStats stats;
    auto answers = engine.Execute(compiled, &stats);
    if (!answers.ok()) return Fail(answers.status());
    std::cout << "% --- answers (" << answers->rows.size() << " rows, "
              << stats.eval.total_facts << " facts derived) ---\n"
              << answers->ToString(engine.db().store());
  }
  return 0;
}
