// factlog optimizer CLI: compile a Datalog query with a selectable strategy.
//
//   usage: optimizer_cli <program.dl>
//            [--strategy auto|magic|supplementary-magic|factoring|counting|
//                        linear-rewrite]
//            [--stage trace|magic|factored|final]
//            [--explain] [--lint]
//            [--facts <facts.dl>]
//            [--threads <n>] [--shards <n>]
//            [--batch <queries.txt>] [--incremental] [--serve]
//            [--db <dir>]
//            [--cost-default-rows <n>] [--cost-bits <n>]
//            [--cost-delta-rows <n>]
//
// The program file must contain a `?- query.` line (optional with --batch
// and --lint).
//
// --lint runs only the static analyzer (analysis/lint.h) — the same checks
// that open every compilation — and prints a rustc-style report: diagnostics
// to stderr, the summary line to stdout. Exit 0 when the program is free of
// lint errors (warnings allowed), 11 (invalid argument) otherwise. The
// diagnostic codes (L001 unsafe rule, L003 arity mismatch, L104 cartesian
// product, ...) are tabulated in README.md.
// With --facts the final program is evaluated against the given ground facts
// and the answers are printed; otherwise the requested stage is printed
// (default: everything). `--stage trace` prints the structured pass trace
// (per-pass timings, rule counts, and decisions). `--explain` prints each
// rule's stored join plan: the evaluation order, the per-literal index
// columns the engines pre-build, and the driver literal the parallel
// fixpoint partitions by. After an evaluation (--facts/--db), --explain
// additionally re-prints the plan with the measured cardinality next to
// each literal's estimate (the engine's statistics catalog).
//
// --cost-default-rows / --cost-bits / --cost-delta-rows override the join
// planner's cost-model constants (plan::CostModelParams): the no-hint extent
// estimate, the selectivity bits credited per bound column, and the assumed
// delta size of semi-naive IDB literals.
//
// --incremental (requires --facts) materializes the query as a live view and
// reads update commands from stdin, maintaining the answers with delta-sized
// work (counting / derivation-edge slices / DRed fallback) instead of
// re-running the fixpoint:
//
//   +e(1, 5).      insert a fact
//   -e(1, 2).      remove a fact
//   why t(1, 5).   print a derivation tree for a maintained fact, read off
//                  the view's derivation edge store (EDB and
//                  counting-maintained facts print as annotated leaves)
//   ?              print the current answers
//   lint           re-run the static analyzer against the engine's current
//                  schema and print the diagnostic report
//   stats          print maintenance counters — cumulative, edge-store
//                  gauges, and the per-update `last update` snapshot (cone
//                  sizes of the most recent delta) — plus storage counters
//                  with --db: buffer-pool hit rate, dirty pages, WAL bytes
//   checkpoint     (--db only) flush pages, persist the catalog, reset the
//                  WAL
//
//   $ printf '+e(2, 4).\n-e(1, 2).\n?\n' |
//       ./optimizer_cli tc.dl --facts facts.dl --incremental
//
// --serve (requires --facts) materializes the query as a live view, starts
// the async serving subsystem (MVCC snapshot reads, single-writer updates),
// and reads the same commands as --incremental from stdin — but submits them
// through the request queue and prints each completion asynchronously with
// its queue/apply/execute latency and snapshot epoch. Defaults --threads to
// 2 when unset (serving needs a pool).
//
// --db <dir> opens (creating when absent) a disk-backed engine on the given
// database directory: facts load through the WAL, a previous session's
// checkpoint + WAL are recovered on open, and the interactive `checkpoint`
// command makes the current state durable. A reopened database answers
// without --facts:
//
//   $ ./optimizer_cli tc.dl --facts facts.dl --db /tmp/db   # save
//   $ ./optimizer_cli tc.dl --db /tmp/db                    # recover + query
//
// --threads n runs bottom-up evaluation on the parallel execution subsystem
// (n worker threads). --shards n hash-partitions every relation into n
// storage shards (the parallel fixpoint consumes delta shards in place);
// per-shard row counts appear in the stats output when n > 1.
// --batch f reads one query atom per line from f (e.g.
// "t(1, Y)."), executes all of them concurrently against the program and
// facts via api::Engine::ExecuteBatch, and prints per-query stats plus a
// wall-clock summary.
//
// Exit codes: 0 on success, 2 on usage errors, and 10 + StatusCode on
// pipeline/evaluation errors (11 = invalid argument, 12 = not found,
// 13 = failed precondition, 14 = resource exhausted); see
// StatusCodeToExitCode in common/status.h.
//
//   $ cat tc.dl
//   t(X, Y) :- e(X, Y).
//   t(X, Y) :- e(X, W), t(W, Y).
//   ?- t(1, Y).
//   $ cat facts.dl
//   e(1, 2). e(2, 3).
//   $ ./optimizer_cli tc.dl --facts facts.dl

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "api/engine.h"
#include "ast/parser.h"
#include "common/diagnostic.h"
#include "core/pipeline.h"
#include "inc/incremental.h"
#include "plan/join_plan.h"

namespace {

factlog::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return factlog::Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int Fail(const factlog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return factlog::StatusCodeToExitCode(status.code());
}

int Usage() {
  std::cerr << "usage: optimizer_cli <program.dl> "
               "[--strategy auto|magic|supplementary-magic|factoring|"
               "counting|linear-rewrite] "
               "[--stage trace|magic|factored|final] [--explain] [--lint] "
               "[--facts <facts.dl>] "
               "[--threads <n>] [--shards <n>] [--batch <queries.txt>] "
               "[--incremental] [--serve] [--db <dir>] "
               "[--cost-default-rows <n>] [--cost-bits <n>] "
               "[--cost-delta-rows <n>]\n";
  return 2;
}

// --lint mode: run only the static analyzer and print the rustc-style
// report — diagnostics to stderr, the summary line to stdout. Exit 0 when
// the program has no lint errors (warnings allowed), 11 otherwise.
int RunLint(const factlog::ast::Program& program) {
  using namespace factlog;
  const analysis::LintReport report = analysis::LintProgram(program);
  for (Severity severity : {Severity::kError, Severity::kWarning}) {
    for (const Diagnostic& d : report.diagnostics) {
      if (d.severity == severity) std::cerr << d.Render() << "\n";
    }
  }
  std::cout << "lint: " << report.errors() << " error"
            << (report.errors() == 1 ? "" : "s") << ", " << report.warnings()
            << " warning" << (report.warnings() == 1 ? "" : "s") << "\n";
  return report.ok() ? 0 : StatusCodeToExitCode(StatusCode::kInvalidArgument);
}

// The interactive `lint` command: re-lint against the engine's current
// schema (the database's relations feed the arity check), '%'-prefixed so
// the output nests in the REPL transcript.
void PrintLintReport(factlog::api::Engine* engine,
                     const factlog::ast::Program& program, std::ostream& out) {
  using namespace factlog;
  const analysis::LintReport report = engine->Lint(program);
  for (const Diagnostic& d : report.diagnostics) {
    out << "% " << d.ToString() << "\n";
  }
  out << "% lint: " << report.errors() << " errors, " << report.warnings()
      << " warnings over " << report.num_strata << " strata\n";
}

// Appends the storage counters of a persistent (--db) engine to `out`.
void PrintStorageStats(factlog::api::Engine* engine, std::ostream& out) {
  const factlog::api::PersistenceStats ps = engine->persistence_stats();
  char hit_rate[32];
  std::snprintf(hit_rate, sizeof(hit_rate), "%.3f", ps.storage.pool.hit_rate());
  out << "% storage: pool hit rate " << hit_rate << " ("
      << ps.storage.pool.hits << " hits, " << ps.storage.pool.misses
      << " misses, " << ps.storage.pool.evictions << " evictions), "
      << ps.storage.pool.dirty_pages << " dirty pages; WAL "
      << ps.storage.wal_bytes << " bytes @ epoch "
      << ps.storage.last_committed_epoch << "; " << ps.storage.num_pages
      << " pages (" << ps.storage.free_pages << " free), "
      << ps.storage.checkpoints << " checkpoints\n";
}

// The interactive `stats` commands' engine-counter line: plan-cache traffic
// plus the adaptive-planning counters — cached plans re-costed in place
// after extent drift, and mid-fixpoint driver switches.
void PrintEngineStats(factlog::api::Engine* engine, std::ostream& out) {
  const factlog::api::EngineStats es = engine->stats();
  out << "% engine: " << es.compiles << " compiles, " << es.cache_hits
      << " cache hits; plans_recosted " << es.plans_recosted
      << " (stale-guard firings " << es.plans_invalidated << "); replans "
      << es.replans << "\n";
}

// --incremental mode: materialize the query as a live view, then maintain it
// under +fact./-fact. commands from stdin.
int RunIncremental(factlog::api::Engine* engine,
                   const factlog::ast::Program& program,
                   const factlog::ast::Atom& query,
                   factlog::core::Strategy strategy) {
  using namespace factlog;
  auto handle = engine->Materialize(program, query, strategy);
  if (!handle.ok()) return Fail(handle.status());

  auto print_answers = [&]() -> int {
    api::QueryStats stats;
    auto answers = engine->Query(program, query, strategy, &stats);
    if (!answers.ok()) return Fail(answers.status());
    std::cout << "% answers (" << answers->rows.size() << " rows, "
              << (stats.view_hit ? "from view" : "recomputed") << ")\n"
              << answers->ToString(engine->db().store());
    return 0;
  };
  if (int rc = print_answers(); rc != 0) return rc;

  std::string line;
  while (std::getline(std::cin, line)) {
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '%') continue;
    size_t end = line.find_last_not_of(" \t\r");
    std::string cmd = line.substr(begin, end - begin + 1);
    if (cmd == "?") {
      if (int rc = print_answers(); rc != 0) return rc;
      continue;
    }
    if (cmd == "lint") {
      PrintLintReport(engine, program, std::cout);
      continue;
    }
    if (cmd == "stats") {
      auto stats = engine->ViewStatsFor(*handle);
      if (!stats.ok()) return Fail(stats.status());
      std::cout << "% view: +" << stats->inserts_applied << " -"
                << stats->deletes_applied << " EDB rows; IDB +"
                << stats->idb_inserted << " -" << stats->idb_deleted
                << "; support updates " << stats->support_updates
                << "; overdeleted " << stats->overdeleted << ", rederived "
                << stats->rederived << "; cone " << stats->cone_input
                << " in / " << stats->cone_pruned << " pruned; "
                << stats->delta_passes << " delta passes\n";
      std::cout << "% edges: "
                << (stats->edge_store_active
                        ? std::to_string(stats->edge_store_edges) +
                              " derivations over " +
                              std::to_string(stats->edge_store_facts) +
                              " facts (+" +
                              std::to_string(stats->edges_added) + " -" +
                              std::to_string(stats->edges_removed) + ")"
                        : std::string(stats->edge_store_dropped
                                          ? "store dropped over budget "
                                            "(DRed fallback)"
                                          : "not tracked"))
                << "\n";
      const factlog::inc::ViewUpdateStats& lu = stats->last_update;
      std::cout << "% last update: IDB +" << lu.idb_inserted << " -"
                << lu.idb_deleted << "; cone " << lu.cone_input << " in / "
                << lu.cone_pruned << " pruned / " << lu.overdeleted
                << " deleted; edges +" << lu.edges_added << " -"
                << lu.edges_removed << "\n";
      PrintEngineStats(engine, std::cout);
      if (engine->persistent()) PrintStorageStats(engine, std::cout);
      continue;
    }
    if (cmd.rfind("why ", 0) == 0) {
      std::string text = cmd.substr(4);
      size_t b = text.find_first_not_of(" \t");
      text = b == std::string::npos ? std::string() : text.substr(b);
      if (!text.empty() && text.back() == '.') text.pop_back();
      auto fact = ast::ParseAtom(text);
      if (!fact.ok()) return Fail(fact.status());
      // The pipeline usually rewrites the query predicate (magic/factoring);
      // when the asked fact uses the original query predicate, rebind the
      // compiled query atom with its constants so `why t(1, 4).` explains
      // the maintained fact behind that answer.
      ast::Atom target = *fact;
      const inc::MaterializedView* v = engine->view(*handle);
      if (v != nullptr && v->Find(fact->predicate()) == nullptr &&
          fact->predicate() == query.predicate() &&
          v->program().query().has_value() &&
          v->program().query()->predicate() != fact->predicate()) {
        std::map<std::string, ast::Term> bind;
        bool ok = fact->arity() == query.arity();
        for (size_t i = 0; ok && i < query.arity(); ++i) {
          const ast::Term& qa = query.args()[i];
          if (qa.IsVariable()) {
            bind.emplace(qa.var_name(), fact->args()[i]);
          } else {
            ok = qa == fact->args()[i];
          }
        }
        const ast::Atom& vq = *v->program().query();
        std::vector<ast::Term> args;
        for (size_t i = 0; ok && i < vq.arity(); ++i) {
          const ast::Term& t = vq.args()[i];
          if (!t.IsVariable()) {
            args.push_back(t);
            continue;
          }
          auto it = bind.find(t.var_name());
          if (it == bind.end()) {
            ok = false;
            break;
          }
          args.push_back(it->second);
        }
        if (ok) target = ast::Atom(vq.predicate(), std::move(args));
      }
      auto tree = engine->ExplainFromView(*handle, target);
      if (!tree.ok()) return Fail(tree.status());
      std::cout << *tree;
      continue;
    }
    if (cmd == "checkpoint") {
      if (!engine->persistent()) {
        std::cout << "% no --db directory; nothing to checkpoint\n";
        continue;
      }
      auto start = std::chrono::steady_clock::now();
      if (Status st = engine->Checkpoint(); !st.ok()) return Fail(st);
      auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      auto ps = engine->persistence_stats();
      std::cout << "% checkpoint #" << ps.storage.checkpoints << " ("
                << ps.storage.num_pages << " pages, WAL reset, " << us
                << " us)\n";
      continue;
    }
    if (cmd.size() < 2 || (cmd[0] != '+' && cmd[0] != '-')) {
      std::cerr << "error: expected '+fact.', '-fact.', 'why <fact>.', '?', "
                   "'lint', 'stats', or 'checkpoint', got: " << cmd << "\n";
      return StatusCodeToExitCode(StatusCode::kInvalidArgument);
    }
    bool insert = cmd[0] == '+';
    std::string text = cmd.substr(1);
    if (!text.empty() && text.back() == '.') text.pop_back();
    auto fact = ast::ParseAtom(text);
    if (!fact.ok()) return Fail(fact.status());
    auto start = std::chrono::steady_clock::now();
    Status st = insert ? engine->AddFact(*fact) : engine->RemoveFact(*fact);
    if (!st.ok()) return Fail(st);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    std::cout << "% " << (insert ? "+" : "-") << fact->ToString() << " ("
              << us << " us)\n";
  }
  return 0;
}

// --serve mode: the --incremental command language, asynchronously — every
// command is submitted through the serving request queue and its completion
// (with snapshot epoch and latencies) prints whenever it finishes, possibly
// after later commands were already submitted.
int RunServe(factlog::api::Engine* engine,
             const factlog::ast::Program& program,
             const factlog::ast::Atom& query,
             factlog::core::Strategy strategy) {
  using namespace factlog;
  auto handle = engine->Materialize(program, query, strategy);
  if (!handle.ok()) return Fail(handle.status());
  if (Status st = engine->StartServing(); !st.ok()) return Fail(st);
  uint64_t session = engine->OpenSession();

  // Completions print from pool workers / the writer thread; serialize them.
  std::mutex out_mu;
  auto submit_query = [&]() {
    Status st = engine->SubmitQuery(
        session, program, query, strategy,
        [&out_mu, engine](serve::QueryResponse resp) {
          std::lock_guard<std::mutex> lock(out_mu);
          if (!resp.status.ok()) {
            std::cout << "% query error: " << resp.status.ToString() << "\n";
            return;
          }
          std::cout << "% answers @ epoch " << resp.epoch << " ("
                    << resp.answers.rows.size() << " rows, "
                    << (resp.view_hit ? "from view" : "evaluated")
                    << ", queue " << resp.queue_us << " us, execute "
                    << resp.execute_us << " us)\n"
                    << resp.answers.ToString(engine->db().store());
        });
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(out_mu);
      std::cout << "% query rejected: " << st.ToString() << "\n";
    }
  };

  submit_query();
  std::string line;
  int rc = 0;
  while (std::getline(std::cin, line)) {
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '%') continue;
    size_t end = line.find_last_not_of(" \t\r");
    std::string cmd = line.substr(begin, end - begin + 1);
    if (cmd == "?") {
      submit_query();
      continue;
    }
    if (cmd == "lint") {
      // Lint is pure (no snapshot pin, no mutation), so it answers inline
      // even in serving mode.
      std::lock_guard<std::mutex> lock(out_mu);
      PrintLintReport(engine, program, std::cout);
      continue;
    }
    if (cmd == "stats") {
      serve::ServerStats s = engine->serving_stats();
      std::lock_guard<std::mutex> lock(out_mu);
      std::cout << "% serving: epoch " << engine->serving_epoch()
                << "; queries " << s.completed_queries << "/"
                << s.accepted_queries << " done (" << s.rejected_queries
                << " rejected); updates " << s.completed_updates << "/"
                << s.accepted_updates << " done (" << s.rejected_updates
                << " rejected); " << s.epochs_installed
                << " epochs installed; " << s.inflight << " in flight\n";
      PrintEngineStats(engine, std::cout);
      continue;
    }
    if (cmd.size() < 2 || (cmd[0] != '+' && cmd[0] != '-')) {
      std::cerr << "error: expected '+fact.', '-fact.', '?', 'lint', or "
                   "'stats', got: " << cmd << "\n";
      rc = StatusCodeToExitCode(StatusCode::kInvalidArgument);
      break;
    }
    bool insert = cmd[0] == '+';
    std::string text = cmd.substr(1);
    if (!text.empty() && text.back() == '.') text.pop_back();
    auto fact = ast::ParseAtom(text);
    if (!fact.ok()) {
      rc = Fail(fact.status());
      break;
    }
    Status st = engine->SubmitUpdate(
        session, insert, *fact,
        [&out_mu, insert, rendered = fact->ToString()](
            serve::UpdateResponse resp) {
          std::lock_guard<std::mutex> lock(out_mu);
          if (!resp.status.ok()) {
            std::cout << "% " << (insert ? "+" : "-") << rendered
                      << " error: " << resp.status.ToString() << "\n";
            return;
          }
          std::cout << "% " << (insert ? "+" : "-") << rendered
                    << " -> epoch " << resp.epoch << " (queue "
                    << resp.queue_us << " us, apply " << resp.apply_us
                    << " us)\n";
        });
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(out_mu);
      std::cout << "% update rejected: " << st.ToString() << "\n";
    }
  }
  // Drain every in-flight completion (they reference out_mu) before the
  // callbacks' captures go out of scope.
  engine->CloseSession(session);
  engine->StopServing();
  return rc;
}

// Renders per-shard row counts as " [shard rows: a, b, ...]"; empty for flat
// (single-shard) storage, where the split adds no information.
std::string ShardRowsSuffix(const std::vector<uint64_t>& shard_facts) {
  if (shard_facts.size() <= 1) return "";
  std::string out = " [shard rows:";
  for (size_t s = 0; s < shard_facts.size(); ++s) {
    out += (s == 0 ? " " : ", ") + std::to_string(shard_facts[s]);
  }
  out += "]";
  return out;
}

// --batch mode: every nonblank line of the batch file is a query atom posed
// against the program's rules; all queries execute concurrently.
int RunBatch(const factlog::ast::Program& program,
             const std::string& batch_path, const std::string& facts_path,
             factlog::core::Strategy strategy, size_t threads, size_t shards,
             const factlog::plan::CostModelParams& cost) {
  using namespace factlog;
  auto batch_text = ReadFile(batch_path);
  if (!batch_text.ok()) return Fail(batch_text.status());

  std::vector<api::Engine::BatchQuery> batch;
  std::istringstream lines(*batch_text);
  std::vector<std::string> rendered;
  for (std::string line; std::getline(lines, line);) {
    // Trim whitespace and an optional trailing '.'.
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '%') continue;
    size_t end = line.find_last_not_of(" \t\r.");
    if (end == std::string::npos || end < begin) continue;  // only ". " etc.
    std::string text = line.substr(begin, end - begin + 1);
    auto query = ast::ParseAtom(text);
    if (!query.ok()) return Fail(query.status());
    api::Engine::BatchQuery q;
    q.program = program;
    q.query = std::move(query).value();
    q.strategy = strategy;
    rendered.push_back(q.query.ToString());
    batch.push_back(std::move(q));
  }

  api::EngineOptions options;
  options.num_threads = threads;
  options.num_shards = shards;
  options.pipeline.planner.cost = cost;
  api::Engine engine(options);
  if (!facts_path.empty()) {
    auto facts_text = ReadFile(facts_path);
    if (!facts_text.ok()) return Fail(facts_text.status());
    Status load = engine.LoadFacts(*facts_text);
    if (!load.ok()) return Fail(load);
  }

  auto result = engine.ExecuteBatch(batch);
  if (!result.ok()) return Fail(result.status());
  for (size_t i = 0; i < batch.size(); ++i) {
    const exec::ExecStats& s = result->stats[i];
    std::cout << "% [" << i << "] " << rendered[i] << " : ";
    if (s.status.ok()) {
      std::cout << s.num_answers << " answers, " << s.total_facts
                << " facts, " << (s.cache_hit ? "cache hit" : "compiled")
                << ", " << s.execute_us << " us"
                << ShardRowsSuffix(s.shard_facts) << "\n";
    } else {
      std::cout << "error: " << s.status.ToString() << "\n";
    }
  }
  const exec::BatchSummary& sum = result->summary;
  std::cout << "% batch: " << sum.queries << " queries (" << sum.succeeded
            << " ok, " << sum.failed << " failed) on " << sum.threads
            << " threads in " << sum.wall_us << " us wall ("
            << sum.sum_execute_us << " us summed execute)\n";
  return sum.failed == 0 ? 0
                         : StatusCodeToExitCode(StatusCode::kInvalidArgument);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace factlog;
  if (argc < 2) return Usage();
  std::string stage = "all";
  std::string facts_path;
  std::string batch_path;
  std::string db_path;
  size_t threads = 0;
  size_t shards = 1;
  bool incremental = false;
  bool serve = false;
  bool explain = false;
  bool lint_only = false;
  core::Strategy strategy = core::Strategy::kFactoring;
  plan::CostModelParams cost;
  // Parses a bounded unsigned flag value; returns false (after printing) on
  // junk so every numeric flag rejects bad input the same way.
  auto parse_count = [&](const char* flag, const char* value,
                         unsigned long max, unsigned long* out) {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0' || parsed > max) {
      std::cerr << "invalid " << flag << " value: " << value << "\n";
      return false;
    }
    *out = parsed;
    return true;
  };
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stage" && i + 1 < argc) {
      stage = argv[++i];
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--lint") {
      lint_only = true;
    } else if (arg == "--incremental") {
      incremental = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--facts" && i + 1 < argc) {
      facts_path = argv[++i];
    } else if (arg == "--batch" && i + 1 < argc) {
      batch_path = argv[++i];
    } else if (arg == "--db" && i + 1 < argc) {
      db_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long parsed = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || parsed > 1024) {
        std::cerr << "invalid --threads value: " << argv[i] << "\n";
        return Usage();
      }
      threads = static_cast<size_t>(parsed);
    } else if (arg == "--shards" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long parsed = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || parsed == 0 || parsed > 4096) {
        std::cerr << "invalid --shards value: " << argv[i] << "\n";
        return Usage();
      }
      shards = static_cast<size_t>(parsed);
    } else if (arg == "--strategy" && i + 1 < argc) {
      auto parsed = core::StrategyFromString(argv[++i]);
      if (!parsed.has_value()) {
        std::cerr << "unknown strategy: " << argv[i] << "\n";
        return Usage();
      }
      strategy = *parsed;
    } else if (arg == "--cost-default-rows" && i + 1 < argc) {
      unsigned long v = 0;
      if (!parse_count("--cost-default-rows", argv[++i], 1ul << 40, &v) ||
          v == 0) {
        return Usage();
      }
      cost.default_rows = v;
    } else if (arg == "--cost-bits" && i + 1 < argc) {
      unsigned long v = 0;
      if (!parse_count("--cost-bits", argv[++i], 32, &v)) return Usage();
      cost.bits_per_bound_col = static_cast<unsigned>(v);
    } else if (arg == "--cost-delta-rows" && i + 1 < argc) {
      unsigned long v = 0;
      if (!parse_count("--cost-delta-rows", argv[++i], 1ul << 40, &v) ||
          v == 0) {
        return Usage();
      }
      cost.delta_rows = v;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    }
  }

  auto text = ReadFile(argv[1]);
  if (!text.ok()) return Fail(text.status());
  auto program = ast::ParseProgram(*text);
  if (!program.ok()) return Fail(program.status());

  if (lint_only) return RunLint(*program);

  if (!batch_path.empty()) {
    if (!db_path.empty()) {
      std::cerr << "error: --db and --batch are exclusive\n";
      return 2;
    }
    return RunBatch(*program, batch_path, facts_path, strategy, threads,
                    shards, cost);
  }
  if (!program->query().has_value()) {
    std::cerr << "error: the program has no '?-' query\n";
    return StatusCodeToExitCode(StatusCode::kInvalidArgument);
  }

  // The paper pipeline (kFactoring) exposes every intermediate stage through
  // OptimizeQuery — one run yields the trace, the Magic/factored stages, and
  // the final program. Other strategies compile straight to a CompiledQuery.
  const bool wants_intermediates =
      stage == "all" || stage == "magic" || stage == "factored";
  if (wants_intermediates && stage != "all" &&
      strategy != core::Strategy::kFactoring) {
    std::cerr << "error: --stage " << stage
              << " shows a paper-pipeline intermediate; it requires "
                 "--strategy factoring\n";
    return 2;
  }
  core::CompiledQuery compiled;
  std::optional<core::PipelineResult> pipeline;
  core::PipelineOptions pipeline_options;
  pipeline_options.planner.cost = cost;
  if (strategy == core::Strategy::kFactoring) {
    auto full =
        core::OptimizeQuery(*program, *program->query(), pipeline_options);
    if (!full.ok()) return Fail(full.status());
    // Equivalent to CompileQuery(kFactoring) — tests assert they agree —
    // without compiling the pipeline a second time.
    compiled.strategy = core::Strategy::kFactoring;
    compiled.program = full->final_program();
    compiled.query = full->final_query();
    compiled.program.set_query(compiled.query);
    compiled.factoring_applied = full->factoring_applied;
    compiled.factor_class = full->factorability.cls;
    compiled.plans = full->plans;
    compiled.trace = full->trace;
    pipeline = std::move(full).value();
  } else {
    auto result = core::CompileQuery(*program, *program->query(), strategy,
                                     pipeline_options);
    if (!result.ok()) return Fail(result.status());
    compiled = std::move(result).value();
  }

  if (stage == "all" || stage == "trace") {
    std::cout << "% --- pass trace (strategy: "
              << core::StrategyToString(compiled.strategy) << ") ---\n";
    std::istringstream lines(core::TraceToString(compiled.trace));
    for (std::string line; std::getline(lines, line);) {
      std::cout << "%   " << line << "\n";
    }
  }
  if ((stage == "all" || stage == "magic") && pipeline.has_value()) {
    std::cout << "% --- Magic program ---\n"
              << pipeline->magic.program.ToString();
  }
  if ((stage == "all" || stage == "factored") && pipeline.has_value() &&
      pipeline->factored.has_value()) {
    std::cout << "% --- factored program ---\n"
              << pipeline->factored->program.ToString();
  }
  if (stage == "all" || stage == "final") {
    std::cout << "% --- final program ---\n" << compiled.program.ToString();
  }
  if (explain) {
    // The stored join plan: per rule, the evaluation order, each literal's
    // index columns, and the driver literal the parallel fixpoint
    // partitions by.
    std::cout << "% --- join plan (" << compiled.plans.reordered_rules()
              << " of " << compiled.plans.rules.size()
              << " rules reordered) ---\n"
              << plan::Explain(compiled.program, compiled.plans);
  }

  if ((incremental || serve) && facts_path.empty() && db_path.empty()) {
    std::cerr << "error: --" << (incremental ? "incremental" : "serve")
              << " requires --facts or --db\n";
    return 2;
  }
  if (incremental && serve) {
    std::cerr << "error: --incremental and --serve are exclusive\n";
    return 2;
  }
  if (!facts_path.empty() || !db_path.empty()) {
    api::EngineOptions engine_options;
    // Serving runs the request queue on the engine's pool.
    engine_options.num_threads = (serve && threads == 0) ? 2 : threads;
    engine_options.num_shards = shards;
    engine_options.pipeline.planner.cost = cost;
    // --db opens a disk-backed engine, recovering any previous session's
    // checkpoint + WAL; otherwise the engine is in-memory.
    std::unique_ptr<api::Engine> engine_owner;
    if (!db_path.empty()) {
      auto opened = api::Engine::Open(db_path, engine_options);
      if (!opened.ok()) return Fail(opened.status());
      engine_owner = std::move(opened).value();
      auto ps = engine_owner->persistence_stats();
      std::cout << "% db: " << db_path << " @ epoch "
                << ps.storage.last_committed_epoch << " ("
                << ps.facts_replayed << " WAL facts replayed, "
                << ps.views_restored << " views restored, "
                << ps.plans_restored << " plans warm, "
                << ps.plans_dropped_stale << " stale plans dropped)\n";
    } else {
      engine_owner = std::make_unique<api::Engine>(engine_options);
    }
    api::Engine& engine = *engine_owner;
    if (!facts_path.empty()) {
      auto facts_text = ReadFile(facts_path);
      if (!facts_text.ok()) return Fail(facts_text.status());
      Status load = engine.LoadFacts(*facts_text);
      if (!load.ok()) return Fail(load);
    }
    if (incremental) {
      return RunIncremental(&engine, *program, *program->query(), strategy);
    }
    if (serve) {
      return RunServe(&engine, *program, *program->query(), strategy);
    }
    api::QueryStats stats;
    auto answers = engine.Execute(compiled, &stats);
    if (!answers.ok()) return Fail(answers.status());
    std::cout << "% --- answers (" << answers->rows.size() << " rows, "
              << stats.eval.total_facts << " facts derived"
              << ShardRowsSuffix(stats.eval.shard_facts) << ") ---\n"
              << answers->ToString(engine.db().store());
    if (explain) {
      // The evaluation just fed the statistics catalog: re-print the plan
      // with the measured cardinality next to each literal's estimate.
      std::cout << "% --- join plan, estimated vs observed (replans "
                << stats.eval.replans << ", plans_recosted "
                << engine.stats().plans_recosted << ") ---\n"
                << plan::Explain(compiled.program, compiled.plans,
                                 &engine.stats_catalog());
    }
  }
  return 0;
}
