// factlog optimizer CLI: run the paper's pipeline on a Datalog file.
//
//   usage: optimizer_cli <program.dl> [--stage trace|magic|factored|final]
//                        [--facts <facts.dl>]
//
// The program file must contain a `?- query.` line. With --facts the final
// program is evaluated against the given ground facts and the answers are
// printed; otherwise the requested stage is printed (default: everything).
//
//   $ cat tc.dl
//   t(X, Y) :- e(X, Y).
//   t(X, Y) :- e(X, W), t(W, Y).
//   ?- t(1, Y).
//   $ cat facts.dl
//   e(1, 2). e(2, 3).
//   $ ./optimizer_cli tc.dl --facts facts.dl

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ast/parser.h"
#include "core/pipeline.h"
#include "eval/seminaive.h"

namespace {

factlog::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return factlog::Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int Fail(const factlog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace factlog;
  if (argc < 2) {
    std::cerr << "usage: optimizer_cli <program.dl> "
                 "[--stage trace|magic|factored|final] [--facts <facts.dl>]\n";
    return 2;
  }
  std::string stage = "all";
  std::string facts_path;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stage" && i + 1 < argc) {
      stage = argv[++i];
    } else if (arg == "--facts" && i + 1 < argc) {
      facts_path = argv[++i];
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  auto text = ReadFile(argv[1]);
  if (!text.ok()) return Fail(text.status());
  auto program = ast::ParseProgram(*text);
  if (!program.ok()) return Fail(program.status());
  if (!program->query().has_value()) {
    std::cerr << "error: the program has no '?-' query\n";
    return 1;
  }

  auto result = core::OptimizeQuery(*program, *program->query());
  if (!result.ok()) return Fail(result.status());

  if (stage == "all" || stage == "trace") {
    std::cout << "% --- optimizer trace ---\n";
    for (const std::string& line : result->trace) {
      std::cout << "%   " << line << "\n";
    }
  }
  if (stage == "all" || stage == "magic") {
    std::cout << "% --- Magic program ---\n"
              << result->magic.program.ToString();
  }
  if ((stage == "all" || stage == "factored") &&
      result->factored.has_value()) {
    std::cout << "% --- factored program ---\n"
              << result->factored->program.ToString();
  }
  if (stage == "all" || stage == "final") {
    std::cout << "% --- final program ---\n"
              << result->final_program().ToString();
  }

  if (!facts_path.empty()) {
    auto facts_text = ReadFile(facts_path);
    if (!facts_text.ok()) return Fail(facts_text.status());
    auto facts = ast::ParseProgram(*facts_text);
    if (!facts.ok()) return Fail(facts.status());
    eval::Database db;
    for (const ast::Rule& r : facts->rules()) {
      if (!r.IsFact()) {
        std::cerr << "error: facts file contains a non-fact: " << r.ToString()
                  << "\n";
        return 1;
      }
      Status st = db.AddFact(r.head());
      if (!st.ok()) return Fail(st);
    }
    eval::EvalStats stats;
    auto answers = eval::EvaluateQuery(result->final_program(),
                                       result->final_query(), &db,
                                       eval::EvalOptions(), &stats);
    if (!answers.ok()) return Fail(answers.status());
    std::cout << "% --- answers (" << answers->rows.size() << " rows, "
              << stats.total_facts << " facts derived) ---\n"
              << answers->ToString(db.store());
  }
  return 0;
}
