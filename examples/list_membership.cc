// Example 1.2 / 4.6: list membership with function symbols.
//
//   $ ./list_membership [n]
//
// Compares three evaluations of `?- pmem(X, [1..n])` where every member
// satisfies p:
//   * top-down SLD (the paper's Prolog baseline): Theta(n^2) inferences,
//   * bottom-up on the Magic program: Theta(n^2) facts,
//   * bottom-up on the factored program: Theta(n) facts — linear time with
//     structure-shared lists.
// Also prints a derivation tree for one answer (Definition 2.1).

#include <chrono>
#include <iostream>

#include "core/pipeline.h"
#include "eval/provenance.h"
#include "eval/seminaive.h"
#include "eval/topdown.h"
#include "workload/list_gen.h"

int main(int argc, char** argv) {
  using namespace factlog;
  using Clock = std::chrono::steady_clock;

  int64_t n = argc > 1 ? std::atoll(argv[1]) : 200;
  ast::Program program = workload::MakePmemProgram(n);

  auto pipeline = core::OptimizeQuery(program, *program.query());
  if (!pipeline.ok()) {
    std::cerr << pipeline.status().ToString() << "\n";
    return 1;
  }
  std::cout << "factorability: "
            << core::FactorClassToString(pipeline->factorability.cls) << "\n\n";

  // Top-down SLD (Prolog baseline).
  {
    eval::Database db;
    workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
    eval::SldStats stats;
    auto start = Clock::now();
    auto answers = eval::SolveTopDown(program, *program.query(), &db,
                                      eval::SldOptions(), &stats);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - start).count();
    if (!answers.ok()) {
      std::cerr << answers.status().ToString() << "\n";
      return 1;
    }
    std::cout << "SLD (Prolog baseline): " << answers->rows.size()
              << " answers, " << stats.inferences << " inferences, " << us
              << " us\n";
  }

  // Bottom-up on the Magic program (arity not reduced).
  {
    eval::Database db;
    workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
    eval::EvalStats stats;
    auto start = Clock::now();
    auto answers = eval::EvaluateQuery(pipeline->magic.program,
                                       pipeline->magic.query, &db,
                                       eval::EvalOptions(), &stats);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - start).count();
    if (!answers.ok()) {
      std::cerr << answers.status().ToString() << "\n";
      return 1;
    }
    std::cout << "Magic bottom-up:       " << answers->rows.size()
              << " answers, " << stats.total_facts << " facts, " << us
              << " us\n";
  }

  // Bottom-up on the factored program.
  {
    eval::Database db;
    workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
    eval::EvalStats stats;
    auto start = Clock::now();
    auto answers = eval::EvaluateQuery(*pipeline->optimized,
                                       pipeline->final_query(), &db,
                                       eval::EvalOptions(), &stats);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - start).count();
    if (!answers.ok()) {
      std::cerr << answers.status().ToString() << "\n";
      return 1;
    }
    std::cout << "Factored bottom-up:    " << answers->rows.size()
              << " answers, " << stats.total_facts << " facts, " << us
              << " us\n";
  }

  // A derivation tree for the last member, per Definition 2.1.
  {
    eval::Database db;
    workload::MakeMembershipPredicate(5, 1, 0, "p", &db);
    ast::Program small = workload::MakePmemProgram(5);
    auto small_pipe = core::OptimizeQuery(small, *small.query());
    eval::EvalOptions opts;
    opts.track_provenance = true;
    auto result = eval::Evaluate(*small_pipe->optimized, &db, opts);
    if (result.ok()) {
      auto fpmem = result->Find("fpmem");
      if (fpmem != nullptr && !fpmem->empty()) {
        eval::FactKey fact{"fpmem", {fpmem->row(fpmem->size() - 1)[0]}};
        std::cout << "\nderivation tree (n = 5, one answer):\n"
                  << DerivationTreeToString(
                         BuildDerivationTree(result->provenance(), fact),
                         db.store());
      }
    }
  }
  return 0;
}
