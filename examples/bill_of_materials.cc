// Bill-of-materials explosion: a classic deductive-database workload (the
// kind §1 of the paper motivates). Which base parts does an assembly
// transitively require?
//
//   contains(Asm, Part)   - direct containment (EDB)
//   requires(Asm, Part)   - transitive containment (IDB, right-linear)
//   ?- requires(root, P).
//
//   $ ./bill_of_materials [depth] [branching]
//
// The single-assembly selection makes the recursion factorable: the
// optimizer reduces `requires` to a unary reachable-parts predicate, so the
// evaluation touches only the sub-assembly of interest.

#include <algorithm>
#include <chrono>
#include <iostream>

#include "api/engine.h"
#include "ast/parser.h"
#include "eval/seminaive.h"
#include "workload/graph_gen.h"

int main(int argc, char** argv) {
  using namespace factlog;
  using Clock = std::chrono::steady_clock;

  int depth = argc > 1 ? std::atoi(argv[1]) : 7;
  int branching = argc > 2 ? std::atoi(argv[2]) : 3;

  auto program = ast::ParseProgram(R"(
    requires(A, P) :- contains(A, P).
    requires(A, P) :- contains(A, S), requires(S, P).
    ?- requires(1, P).
  )");
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }

  // A parts catalog: a `branching`-ary assembly tree rooted at part 1, plus
  // a second, unrelated product line (root 1000000) that a naive evaluation
  // would also explore.
  api::Engine engine;
  int64_t tree_nodes =
      workload::MakeTree(branching, depth, "contains", &engine.db());
  // The unrelated product line is capped: whole-program evaluation computes
  // its full transitive closure (quadratic), which is exactly the waste the
  // factored program avoids — but the demo should finish promptly.
  int64_t other_line = std::min<int64_t>(tree_nodes, 1500);
  for (int64_t i = 0; i < other_line; ++i) {
    engine.AddPair("contains", 1'000'000 + i, 1'000'000 + i + 1);
  }

  auto plan = engine.Compile(*program, *program->query());
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "optimizer: strategy "
            << core::StrategyToString((*plan)->strategy) << ", "
            << core::FactorClassToString((*plan)->factor_class) << "\n";
  std::cout << "final program:\n" << (*plan)->program.ToString() << "\n";
  std::cout << "catalog: " << engine.db().Find("contains")->size()
            << " containment facts, " << tree_nodes
            << " parts in the queried product\n";

  // Whole-program evaluation vs the engine's strategies on the same catalog.
  {
    eval::EvalStats stats;
    auto start = Clock::now();
    auto answers = eval::EvaluateQuery(*program, *program->query(),
                                       &engine.db(), eval::EvalOptions(),
                                       &stats);
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Clock::now() - start).count();
    if (!answers.ok()) {
      std::cerr << answers.status().ToString() << "\n";
      return 1;
    }
    std::cout << "original (semi-naive): " << answers->rows.size()
              << " required parts, " << stats.total_facts
              << " facts derived, " << ms << " ms\n";
  }
  for (core::Strategy strategy :
       {api::Strategy::kMagic, api::Strategy::kSupplementaryMagic,
        api::Strategy::kFactoring}) {
    api::QueryStats stats;
    auto answers = engine.Query(*program, *program->query(), strategy, &stats);
    if (!answers.ok()) {
      std::cerr << answers.status().ToString() << "\n";
      return 1;
    }
    std::cout << core::StrategyToString(strategy) << ": "
              << answers->rows.size() << " required parts, "
              << stats.eval.total_facts << " facts derived, "
              << stats.execute_us / 1000 << " ms\n";
  }
  std::cout << "\nThe original program computes requires/2 for every part in "
               "the catalog;\nthe factored program derives one unary "
               "reachable-set for assembly 1 only.\n";
  return 0;
}
