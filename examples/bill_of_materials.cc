// Bill-of-materials explosion: a classic deductive-database workload (the
// kind §1 of the paper motivates). Which base parts does an assembly
// transitively require?
//
//   contains(Asm, Part)   - direct containment (EDB)
//   requires(Asm, Part)   - transitive containment (IDB, right-linear)
//   ?- requires(root, P).
//
//   $ ./bill_of_materials [depth] [branching]
//
// The single-assembly selection makes the recursion factorable: the
// optimizer reduces `requires` to a unary reachable-parts predicate, so the
// evaluation touches only the sub-assembly of interest.

#include <chrono>
#include <algorithm>
#include <iostream>

#include "ast/parser.h"
#include "core/pipeline.h"
#include "eval/seminaive.h"
#include "workload/graph_gen.h"

int main(int argc, char** argv) {
  using namespace factlog;
  using Clock = std::chrono::steady_clock;

  int depth = argc > 1 ? std::atoi(argv[1]) : 7;
  int branching = argc > 2 ? std::atoi(argv[2]) : 3;

  auto program = ast::ParseProgram(R"(
    requires(A, P) :- contains(A, P).
    requires(A, P) :- contains(A, S), requires(S, P).
    ?- requires(1, P).
  )");
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }

  auto result = core::OptimizeQuery(*program, *program->query());
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "optimizer: "
            << core::FactorClassToString(result->factorability.cls) << "\n";
  std::cout << "final program:\n" << result->final_program().ToString() << "\n";

  // A parts catalog: a `branching`-ary assembly tree rooted at part 1, plus
  // a second, unrelated product line (root 1000000) that a naive evaluation
  // would also explore.
  eval::Database db;
  int64_t tree_nodes = workload::MakeTree(branching, depth, "contains", &db);
  // The unrelated product line is capped: whole-program evaluation computes
  // its full transitive closure (quadratic), which is exactly the waste the
  // factored program avoids — but the demo should finish promptly.
  int64_t other_line = std::min<int64_t>(tree_nodes, 1500);
  for (int64_t i = 0; i < other_line; ++i) {
    db.AddPair("contains", 1'000'000 + i, 1'000'000 + i + 1);
  }
  std::cout << "catalog: " << db.Find("contains")->size()
            << " containment facts, " << tree_nodes
            << " parts in the queried product\n";

  for (auto [name, prog, query] :
       {std::tuple<const char*, const ast::Program*, const ast::Atom*>{
            "original (semi-naive)", &*program, &*program->query()},
        {"factored", &result->final_program(), &result->final_query()}}) {
    eval::EvalStats stats;
    auto start = Clock::now();
    auto answers =
        eval::EvaluateQuery(*prog, *query, &db, eval::EvalOptions(), &stats);
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Clock::now() - start).count();
    if (!answers.ok()) {
      std::cerr << answers.status().ToString() << "\n";
      return 1;
    }
    std::cout << name << ": " << answers->rows.size() << " required parts, "
              << stats.total_facts << " facts derived, " << ms << " ms\n";
  }
  std::cout << "\nThe original program computes requires/2 for every part in "
               "the catalog;\nthe factored program derives one unary "
               "reachable-set for assembly 1 only.\n";
  return 0;
}
