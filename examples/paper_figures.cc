// Regenerates the paper's program listings:
//   * Fig. 1  - the Magic program of the three-form transitive closure,
//   * Fig. 2  - its factored version,
//   * the final unary program of Example 5.3,
//   * the Example 4.6 (pmem) Magic / factored / final listings,
//   * the Example 4.3 / 4.4 / 4.5 classifications.
//
//   $ ./paper_figures

#include <iostream>

#include "ast/parser.h"
#include "core/pipeline.h"
#include "workload/list_gen.h"

namespace {

using namespace factlog;

void Show(const std::string& title, const ast::Program& program) {
  std::cout << "===== " << title << " =====\n" << program.ToString() << "\n";
}

void Classify(const std::string& title, const std::string& text) {
  auto program = ast::ParseProgram(text);
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return;
  }
  auto result = core::OptimizeQuery(*program, *program->query());
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return;
  }
  std::cout << "===== " << title << " =====\n"
            << core::TraceToString(result->trace) << "\n";
}

}  // namespace

int main() {
  using namespace factlog;

  // --- Example 1.1 / 4.2 / 5.3: the three-form transitive closure. ---
  auto tc = ast::ParseProgram(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
    ?- t(5, Y).
  )");
  auto tc_result = core::OptimizeQuery(*tc, *tc->query());
  if (!tc_result.ok()) {
    std::cerr << tc_result.status().ToString() << "\n";
    return 1;
  }
  Show("Fig. 1: P^mg for the three-rule transitive closure",
       tc_result->magic.program);
  Show("Fig. 2: the factored version of P^mg",
       tc_result->factored->program);
  Show("Example 5.3: final program after the Section 5 optimizations",
       *tc_result->optimized);

  // --- Example 1.2 / 4.6: pmem with function symbols. ---
  auto pmem = workload::MakePmemProgram(3);
  auto pm_result = core::OptimizeQuery(pmem, *pmem.query());
  if (!pm_result.ok()) {
    std::cerr << pm_result.status().ToString() << "\n";
    return 1;
  }
  Show("Example 4.6: Magic pmem program", pm_result->magic.program);
  Show("Example 4.6: factored pmem program", pm_result->factored->program);
  Show("Example 4.6: final linear-time pmem program", *pm_result->optimized);

  // --- Examples 4.3-4.5: classification reports. ---
  Classify("Example 4.3 (illustrative; conditions do not hold syntactically)",
           R"(
    p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
    p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
    p(X, Y) :- f(X, V), p(V, Y), r3(Y).
    p(X, Y) :- e(X, Y).
    ?- p(5, Y).
  )");
  Classify("selection-pushing variant (Theorem 4.1 applies)", R"(
    p(X, Y) :- l(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
    p(X, Y) :- l(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
    p(X, Y) :- l(X), f(X, V), p(V, Y), r3(Y).
    p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).
    ?- p(5, Y).
  )");
  Classify("symmetric variant (Theorem 4.2 applies)", R"(
    p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
    p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
    p(X, Y) :- e(X, Y), r1(Y), r2(Y).
    ?- p(5, Y).
  )");
  Classify("answer-propagating variant (Theorem 4.3 applies)", R"(
    p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
    p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
    p(X, Y) :- l1(X), l2(X), f(X, V), p(V, Y), r3(Y).
    p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).
    ?- p(5, Y).
  )");
  Classify("same-generation (the canonical non-factorable program)", R"(
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    ?- sg(1, Y).
  )");
  return 0;
}
