// Quickstart: ask a recursive Datalog query through the Engine facade.
//
//   $ ./quickstart
//
// The engine parses the program, compiles the query through the paper's
// pipeline (Magic Sets + factoring + the §5 cleanups, picked automatically),
// caches the plan, and evaluates it bottom-up — one call. The second half
// shows the compiled plan and the structured pass trace, then demonstrates
// the plan cache on a repeated query.

#include <iostream>

#include "api/engine.h"
#include "ast/parser.h"

int main() {
  using namespace factlog;

  // 1. A program in the factlog Datalog dialect. Uppercase identifiers are
  //    variables; `?-` introduces the query.
  const std::string text = R"(
    % Transitive closure, right-linear form.
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    ?- t(1, Y).
  )";

  // 2. An engine owns the extensional database. The workload generators
  //    build graphs; facts can also be added with AddFact / LoadFacts.
  api::Engine engine;
  for (int i = 1; i < 10; ++i) engine.AddPair("e", i, i + 1);
  engine.AddPair("e", 3, 7);  // a shortcut edge

  // 3. Compile + execute. Strategy::kAuto factors when one of the paper's
  //    Theorem 4.1-4.3 conditions holds and falls back to supplementary
  //    magic otherwise.
  api::QueryStats stats;
  auto answers = engine.Query(text, api::Strategy::kAuto, &stats);
  if (!answers.ok()) {
    std::cerr << "query error: " << answers.status().ToString() << "\n";
    return 1;
  }
  std::cout << "--- answers to t(1, Y) ---\n"
            << answers->ToString(engine.db().store());
  std::cout << "facts derived: " << stats.eval.total_facts
            << ", rule instantiations: " << stats.eval.instantiations << "\n";

  // 4. Inspect the compiled plan: strategy, final program, and the
  //    structured pass trace with timings and rule counts.
  auto program = ast::ParseProgram(text);
  auto plan = engine.Compile(*program, *program->query());
  if (!plan.ok()) {
    std::cerr << "compile error: " << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n--- compiled with strategy: "
            << core::StrategyToString((*plan)->strategy) << " ---\n"
            << (*plan)->program.ToString();
  std::cout << "\n--- pass trace ---\n" << core::TraceToString((*plan)->trace);

  // 5. The plan cache: re-asking the same query (even with renamed
  //    variables) reuses the compiled plan.
  api::QueryStats again;
  auto cached = engine.Query("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). "
                             "?- t(1, Z).",
                             api::Strategy::kAuto, &again);
  if (!cached.ok()) {
    std::cerr << "query error: " << cached.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nrepeated query: cache "
            << (again.cache_hit ? "hit" : "miss") << " ("
            << engine.stats().cache_hits << " hits, "
            << engine.stats().compiles << " compiles)\n";
  return 0;
}
