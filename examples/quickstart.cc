// Quickstart: parse a recursive Datalog program, optimize the query with
// Magic Sets + factoring, and evaluate it.
//
//   $ ./quickstart
//
// This walks the pipeline of the paper on single-source transitive closure
// and prints every stage.

#include <iostream>

#include "ast/parser.h"
#include "core/pipeline.h"
#include "eval/seminaive.h"
#include "workload/graph_gen.h"

int main() {
  using namespace factlog;

  // 1. A program in the factlog Datalog dialect. Uppercase identifiers are
  //    variables; `?-` introduces the query.
  const std::string text = R"(
    % Transitive closure, right-linear form.
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    ?- t(1, Y).
  )";
  auto program = ast::ParseProgram(text);
  if (!program.ok()) {
    std::cerr << "parse error: " << program.status().ToString() << "\n";
    return 1;
  }

  // 2. Optimize: adorn, apply Magic Sets, test factorability (§4 of the
  //    paper), factor, and clean up with the §5 optimizations.
  auto result = core::OptimizeQuery(*program, *program->query());
  if (!result.ok()) {
    std::cerr << "pipeline error: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "--- optimizer decisions ---\n";
  for (const std::string& line : result->trace) std::cout << "  " << line << "\n";

  std::cout << "\n--- Magic program (P^mg) ---\n"
            << result->magic.program.ToString();
  if (result->optimized.has_value()) {
    std::cout << "\n--- factored + optimized program ---\n"
              << result->optimized->ToString();
  }

  // 3. Evaluate against an EDB. The workload generators build graphs; facts
  //    can also be added one by one with Database::AddFact.
  eval::Database db;
  workload::MakeChain(10, "e", &db);
  db.AddPair("e", 3, 7);  // a shortcut edge

  eval::EvalStats stats;
  auto answers = eval::EvaluateQuery(result->final_program(),
                                     result->final_query(), &db,
                                     eval::EvalOptions(), &stats);
  if (!answers.ok()) {
    std::cerr << "evaluation error: " << answers.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n--- answers to t(1, Y) ---\n"
            << answers->ToString(db.store());
  std::cout << "facts derived: " << stats.total_facts
            << ", rule instantiations: " << stats.instantiations << "\n";
  return 0;
}
