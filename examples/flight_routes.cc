// Flight-route reachability: which cities can be reached from a hub, with a
// same-alliance constraint on every leg — a combined-linear recursion in
// the wild.
//
//   reach(C, D) :- leg(C, D), alliance_ok(D).
//   reach(C, D) :- reach(C, M), leg(M, D), alliance_ok(D).
//   ?- reach(hub, D).
//
//   $ ./flight_routes [n_cities] [n_legs]
//
// This example shows the optimizer trace on a program whose exit rule
// carries the `alliance_ok` filter, making the left-linear recursion
// selection-pushing, and demonstrates the non-factorable fallback on a
// "same fare class" variant (a same-generation-style recursion).

#include <chrono>
#include <iostream>
#include <random>

#include "ast/parser.h"
#include "core/pipeline.h"
#include "eval/seminaive.h"

int main(int argc, char** argv) {
  using namespace factlog;
  using Clock = std::chrono::steady_clock;

  int64_t n_cities = argc > 1 ? std::atoll(argv[1]) : 2000;
  int64_t n_legs = argc > 2 ? std::atoll(argv[2]) : 6000;

  auto program = ast::ParseProgram(R"(
    reach(C, D) :- leg(C, D), alliance_ok(D).
    reach(C, D) :- reach(C, M), leg(M, D), alliance_ok(D).
    ?- reach(1, D).
  )");
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }
  auto result = core::OptimizeQuery(*program, *program->query());
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "--- optimizer trace ---\n"
            << core::TraceToString(result->trace);
  std::cout << "\n--- final program ---\n"
            << result->final_program().ToString() << "\n";

  // Random route network; ~3/4 of cities are alliance members.
  eval::Database db;
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<int64_t> city(1, n_cities);
  for (int64_t i = 0; i < n_legs; ++i) db.AddPair("leg", city(rng), city(rng));
  for (int64_t c = 1; c <= n_cities; ++c) {
    if (c % 4 != 0) db.AddUnit("alliance_ok", c);
  }

  for (auto [name, prog, query] :
       {std::tuple<const char*, const ast::Program*, const ast::Atom*>{
            "original program ", &*program, &*program->query()},
        {"magic program    ", &result->magic.program, &result->magic.query},
        {"factored program ", &result->final_program(),
         &result->final_query()}}) {
    eval::EvalStats stats;
    auto start = Clock::now();
    auto answers =
        eval::EvaluateQuery(*prog, *query, &db, eval::EvalOptions(), &stats);
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Clock::now() - start).count();
    if (!answers.ok()) {
      std::cerr << answers.status().ToString() << "\n";
      return 1;
    }
    std::cout << name << ": " << answers->rows.size()
              << " reachable cities, " << stats.total_facts
              << " facts derived, " << ms << " ms\n";
  }

  // A variant the optimizer must refuse: "same number of connections from
  // two hubs" is same-generation-shaped, not factorable.
  auto sg = ast::ParseProgram(R"(
    parallel(A, B) :- codeshare(A, B).
    parallel(A, B) :- leg(U, A), parallel(U, V), leg(V, B).
    ?- parallel(1, B).
  )");
  auto sg_result = core::OptimizeQuery(*sg, *sg->query());
  if (sg_result.ok()) {
    std::cout << "\nsame-fare-class variant: factoring "
              << (sg_result->factoring_applied ? "applied" : "refused")
              << " (" << sg_result->classification.diagnostic << ")\n"
              << "the pipeline falls back to the Magic program ("
              << sg_result->final_program().rules().size() << " rules).\n";
  }
  return 0;
}
