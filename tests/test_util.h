// Shared helpers for factlog tests.

#ifndef FACTLOG_TESTS_TEST_UTIL_H_
#define FACTLOG_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/database.h"
#include "eval/seminaive.h"

namespace factlog::test {

/// Parses a program, failing the test on error.
inline ast::Program P(const std::string& text) {
  auto r = ast::ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nwhile parsing:\n" << text;
  return r.ok() ? std::move(r).value() : ast::Program();
}

/// Parses an atom, failing the test on error.
inline ast::Atom A(const std::string& text) {
  auto r = ast::ParseAtom(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : ast::Atom();
}

/// Parses a rule, failing the test on error.
inline ast::Rule R(const std::string& text) {
  auto r = ast::ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : ast::Rule();
}

/// Parses a term, failing the test on error.
inline ast::Term T(const std::string& text) {
  auto r = ast::ParseTerm(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : ast::Term::Sym("parse_error");
}

/// Adds ground facts (one per line or semicolon-free program text) to a
/// database. Facts must be ground atoms followed by '.'.
inline void AddFacts(eval::Database* db, const std::string& text) {
  auto program = ast::ParseProgram(text);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  for (const ast::Rule& r : program->rules()) {
    ASSERT_TRUE(r.IsFact()) << r.ToString();
    auto st = db->AddFact(r.head());
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

/// Evaluates `program_text`'s query against facts, returning the sorted
/// answer tuples rendered as strings like "(2, 3)".
inline std::vector<std::string> Answers(const std::string& program_text,
                                        const std::string& facts_text,
                                        eval::EvalOptions opts = {}) {
  ast::Program program = P(program_text);
  EXPECT_TRUE(program.query().has_value()) << "program has no ?- query";
  eval::Database db;
  AddFacts(&db, facts_text);
  auto answers = eval::EvaluateQuery(program, *program.query(), &db, opts);
  EXPECT_TRUE(answers.ok()) << answers.status().ToString();
  std::vector<std::string> out;
  if (!answers.ok()) return out;
  for (const auto& row : answers->rows) {
    std::string s = "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ", ";
      s += db.store().ToString(row[i]);
    }
    s += ")";
    out.push_back(s);
  }
  return out;
}

}  // namespace factlog::test

#endif  // FACTLOG_TESTS_TEST_UTIL_H_
