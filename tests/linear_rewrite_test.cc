#include "transform/linear_rewrite.h"

#include <gtest/gtest.h>

#include "core/canonical.h"
#include "core/pipeline.h"
#include "eval/equivalence.h"
#include "tests/test_util.h"

namespace factlog::transform {
namespace {

using test::A;
using test::P;

struct Prepared {
  analysis::AdornedProgram adorned;
  core::ProgramClassification classification;
};

Prepared Prepare(const ast::Program& p, const ast::Atom& q) {
  auto adorned = analysis::Adorn(p, q);
  EXPECT_TRUE(adorned.ok()) << adorned.status().ToString();
  auto c = core::ClassifyProgram(*adorned);
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  return Prepared{std::move(adorned).value(), std::move(c).value()};
}

TEST(LinearRewriteTest, RightLinearTcMatchesPipeline) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  ast::Atom q = A("t(5, Y)");
  Prepared prep = Prepare(p, q);
  auto rewrite = RewriteRightLinear(prep.adorned, prep.classification);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();

  auto pipe = core::OptimizeQuery(p, q);
  ASSERT_TRUE(pipe.ok());
  ASSERT_TRUE(pipe->optimized.has_value());
  // §6.3: the [9] rewriting and Magic+factoring agree program-for-program.
  EXPECT_TRUE(core::StructurallyEqual(rewrite->program, *pipe->optimized))
      << "rewrite:\n" << rewrite->program.ToString()
      << "pipeline:\n" << pipe->optimized->ToString();
}

TEST(LinearRewriteTest, LeftLinearTcMatchesPipeline) {
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  ast::Atom q = A("t(5, Y)");
  Prepared prep = Prepare(p, q);
  auto rewrite = RewriteLeftLinear(prep.adorned, prep.classification);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  auto pipe = core::OptimizeQuery(p, q);
  ASSERT_TRUE(pipe.ok());
  ASSERT_TRUE(pipe->optimized.has_value());
  EXPECT_TRUE(core::StructurallyEqual(rewrite->program, *pipe->optimized))
      << "rewrite:\n" << rewrite->program.ToString()
      << "pipeline:\n" << pipe->optimized->ToString();
}

TEST(LinearRewriteTest, RewritePreservesAnswers) {
  ast::Program p = P(R"(
    t(X, Y) :- first1(X, U), t(U, Y), right1(Y).
    t(X, Y) :- exit0(X, Y), right1(Y).
  )");
  ast::Atom q = A("t(1, Y)");
  Prepared prep = Prepare(p, q);
  auto rewrite = RewriteRightLinear(prep.adorned, prep.classification);
  ASSERT_TRUE(rewrite.ok());
  eval::DiffTestOptions opts;
  opts.trials = 60;
  auto ce = eval::FindCounterexample(p, q, rewrite->program, rewrite->query,
                                     opts);
  ASSERT_TRUE(ce.ok());
  EXPECT_FALSE(ce->has_value()) << (*ce)->ToString();
}

TEST(LinearRewriteTest, LeftLinearWithLeftConjunctionPreservesAnswers) {
  // Nonempty left conjunction: the rewrite keeps the m/left guard.
  ast::Program p = P(R"(
    t(X, Y) :- l(X), t(X, W), d(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  ast::Atom q = A("t(1, Y)");
  Prepared prep = Prepare(p, q);
  auto rewrite = RewriteLeftLinear(prep.adorned, prep.classification);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  // The recursive rule keeps the goal guard.
  bool guard_present = false;
  for (const ast::Rule& r : rewrite->program.rules()) {
    bool has_l = false, has_ans_body = false;
    for (const ast::Atom& b : r.body()) {
      if (b.predicate() == "l") has_l = true;
      if (b.predicate() == rewrite->answer_name) has_ans_body = true;
    }
    if (has_l && has_ans_body) guard_present = true;
  }
  EXPECT_TRUE(guard_present) << rewrite->program.ToString();
  auto ce = eval::FindCounterexample(p, q, rewrite->program, rewrite->query);
  ASSERT_TRUE(ce.ok());
  EXPECT_FALSE(ce->has_value()) << (*ce)->ToString();
}

TEST(LinearRewriteTest, MultiRuleRightLinear) {
  ast::Program p = P(R"(
    t(X, Y) :- up(X, U), t(U, Y).
    t(X, Y) :- side(X, U), t(U, Y).
    t(X, Y) :- e(X, Y).
  )");
  ast::Atom q = A("t(1, Y)");
  Prepared prep = Prepare(p, q);
  auto rewrite = RewriteRightLinear(prep.adorned, prep.classification);
  ASSERT_TRUE(rewrite.ok());
  // Two goal-chain rules, one per recursive rule.
  int goal_rules = 0;
  for (const ast::Rule& r : rewrite->program.rules()) {
    if (r.head().predicate() == rewrite->goal_name && !r.body().empty()) {
      ++goal_rules;
    }
  }
  EXPECT_EQ(goal_rules, 2);
  auto ce = eval::FindCounterexample(p, q, rewrite->program, rewrite->query);
  ASSERT_TRUE(ce.ok());
  EXPECT_FALSE(ce->has_value());
}

TEST(LinearRewriteTest, WrongShapeRejected) {
  ast::Program left = P(R"(
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  Prepared prep = Prepare(left, A("t(5, Y)"));
  EXPECT_FALSE(RewriteRightLinear(prep.adorned, prep.classification).ok());

  ast::Program right = P(R"(
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  Prepared prep2 = Prepare(right, A("t(5, Y)"));
  EXPECT_FALSE(RewriteLeftLinear(prep2.adorned, prep2.classification).ok());
}

TEST(LinearRewriteTest, MultiLinearLeftRules) {
  // Multiple left-linear occurrences (the "multi-linear" case of [9]).
  ast::Program p = P(R"(
    t(X, Y) :- t(X, U), t(X, V), comb(U, V, Y).
    t(X, Y) :- e(X, Y).
  )");
  ast::Atom q = A("t(1, Y)");
  Prepared prep = Prepare(p, q);
  ASSERT_TRUE(prep.classification.rlc_stable)
      << prep.classification.diagnostic;
  auto rewrite = RewriteLeftLinear(prep.adorned, prep.classification);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  auto ce = eval::FindCounterexample(p, q, rewrite->program, rewrite->query);
  ASSERT_TRUE(ce.ok());
  EXPECT_FALSE(ce->has_value()) << (*ce)->ToString();
}

}  // namespace
}  // namespace factlog::transform
