#include "core/rule_classes.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/list_gen.h"

namespace factlog::core {
namespace {

using test::A;
using test::P;

Result<ProgramClassification> Classify(const std::string& program_text,
                                       const std::string& query_text) {
  ast::Program p = test::P(program_text);
  auto adorned = analysis::Adorn(p, test::A(query_text));
  if (!adorned.ok()) return adorned.status();
  return ClassifyProgram(*adorned);
}

RuleShape::Kind KindOf(const ProgramClassification& c, int rule) {
  return c.shapes[rule].kind;
}

TEST(RuleClassesTest, ThreeFormTransitiveClosure) {
  auto c = Classify(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
  )", "t(5, Y)");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->unit_program);
  EXPECT_TRUE(c->rlc_stable);
  EXPECT_EQ(KindOf(*c, 0), RuleShape::Kind::kCombined);
  EXPECT_EQ(KindOf(*c, 1), RuleShape::Kind::kRightLinear);
  EXPECT_EQ(KindOf(*c, 2), RuleShape::Kind::kLeftLinear);
  EXPECT_EQ(KindOf(*c, 3), RuleShape::Kind::kExit);
  EXPECT_EQ(c->exit_rule_count, 1);
  EXPECT_EQ(c->exit_rule_index, 3);
  EXPECT_EQ(c->predicate, "t_bf");
}

TEST(RuleClassesTest, Example41PermutedAdornment) {
  // Example 4.1: t^{bfb}(X, Y, Z) :- t^{bfb}(X, W, Z), e(W, Y). The paper
  // "rearranges and permutes" this into an explicitly left-linear form
  // t'^{bbf}(X, Z, Y) :- t'(X, Z, W), e'(W, Y); our classifier handles the
  // argument permutation automatically (the bound positions need not
  // precede the free ones): the occurrence's bound-position variables
  // (X, Z) match the head's pointwise, so the rule is left-linear as-is.
  // (Body-literal order is the left-to-right SIP order, as in P^ad.)
  auto c = Classify(R"(
    t(X, Y, Z) :- t(X, W, Z), e(W, Y).
    t(X, Y, Z) :- e0(X, Y, Z).
  )", "t(1, Y, 3)");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_TRUE(c->rlc_stable) << c->diagnostic;
  EXPECT_EQ(c->adornment.pattern(), "bfb");
  EXPECT_EQ(KindOf(*c, 0), RuleShape::Kind::kLeftLinear);
  // last(W, Y) is the e atom, rewritten as the occurrence's answer flowing
  // into the head's free variable.
  ASSERT_TRUE(c->shapes[0].free_last.has_value());
  EXPECT_EQ(c->shapes[0].free_last->body().size(), 1u);
  EXPECT_EQ(c->shapes[0].free_last->body()[0].predicate(), "e");
}

TEST(RuleClassesTest, SameGenerationUnclassified) {
  auto c = Classify(R"(
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
  )", "sg(1, Y)");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->unit_program);
  EXPECT_FALSE(c->rlc_stable);
  EXPECT_EQ(KindOf(*c, 1), RuleShape::Kind::kUnclassified);
}

TEST(RuleClassesTest, PseudoLeftLinearDetected) {
  // Example 5.2: d(W, X, Z) connects the bound head variable X with the
  // free side — Definition 5.3.
  auto c = Classify(R"(
    p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
    p(X, Y, Z) :- exit(X, Y, Z).
  )", "p(5, 6, U)");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->rlc_stable);
  EXPECT_EQ(KindOf(*c, 0), RuleShape::Kind::kPseudoLeftLinear);
}

TEST(RuleClassesTest, NonUnitProgramRejected) {
  auto c = Classify(R"(
    q(Y) :- t(5, Y).
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )", "q(Y)");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->unit_program);
}

TEST(RuleClassesTest, AllBoundAdornmentIsTrivial) {
  auto c = Classify(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )", "t(1, 2)");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->unit_program);
  EXPECT_FALSE(c->rlc_stable);
  EXPECT_NE(c->diagnostic.find("trivial"), std::string::npos);
}

TEST(RuleClassesTest, TwoExitRulesNotRlcStable) {
  auto c = Classify(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e0(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )", "t(1, Y)");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->rlc_stable);
  EXPECT_EQ(c->exit_rule_count, 2);
}

TEST(RuleClassesTest, TwoAnswerOccurrencesBreakUnitProperty) {
  // Under the left-to-right SIP the first occurrence binds Y, so the second
  // occurrence adorns as t_bb: two adornments, not a unit program. (This is
  // also why a rule can never carry two right-linear occurrences in an
  // adorned unit program.)
  auto c = Classify(R"(
    t(X, Y) :- e(X, V), e(X, W), t(V, Y), t(W, Y).
    t(X, Y) :- e(X, Y).
  )", "t(1, Y)");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->unit_program);
  EXPECT_NE(c->diagnostic.find("unit program"), std::string::npos);
}

TEST(RuleClassesTest, HeadInBodyIsDegenerate) {
  auto c = Classify(R"(
    t(X, Y) :- t(X, Y), e(X, Y).
    t(X, Y) :- e(X, Y).
  )", "t(1, Y)");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(KindOf(*c, 0), RuleShape::Kind::kUnclassified);
  EXPECT_NE(c->shapes[0].diagnostic.find("degenerate"), std::string::npos);
}

TEST(RuleClassesTest, CombinedRuleConjunctions) {
  auto c = Classify(R"(
    p(X, Y) :- l(X), p(X, U), c(U, V), p(V, Y), r(Y).
    p(X, Y) :- e(X, Y).
  )", "p(5, Y)");
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->rlc_stable) << c->diagnostic;
  const RuleShape& s = c->shapes[0];
  ASSERT_EQ(s.kind, RuleShape::Kind::kCombined);
  ASSERT_TRUE(s.bound_q.has_value());
  EXPECT_EQ(s.bound_q->body().size(), 1u);
  EXPECT_EQ(s.bound_q->body()[0].predicate(), "l");
  ASSERT_TRUE(s.middle.has_value());
  EXPECT_EQ(s.middle->body().size(), 1u);
  EXPECT_EQ(s.middle->body()[0].predicate(), "c");
  EXPECT_EQ(s.middle->head().size(), 2u);  // (U, V)
  ASSERT_TRUE(s.free_q.has_value());
  EXPECT_EQ(s.free_q->body().size(), 1u);
  EXPECT_EQ(s.free_q->body()[0].predicate(), "r");
}

TEST(RuleClassesTest, RightLinearConjunctions) {
  auto c = Classify(R"(
    p(X, Y) :- f(X, V), p(V, Y), r(Y).
    p(X, Y) :- e(X, Y).
  )", "p(5, Y)");
  ASSERT_TRUE(c.ok());
  const RuleShape& s = c->shapes[0];
  ASSERT_EQ(s.kind, RuleShape::Kind::kRightLinear);
  ASSERT_TRUE(s.bound_first.has_value());
  EXPECT_EQ(s.bound_first->body().size(), 1u);
  EXPECT_EQ(s.bound_first->body()[0].predicate(), "f");
  ASSERT_TRUE(s.free_q.has_value());
  EXPECT_EQ(s.free_q->body()[0].predicate(), "r");
}

TEST(RuleClassesTest, ExitConjunctions) {
  auto c = Classify(R"(
    p(X, Y) :- f(X, V), p(V, Y).
    p(X, Y) :- e(X, Y), r(Y).
  )", "p(5, Y)");
  ASSERT_TRUE(c.ok());
  const RuleShape* exit = c->ExitShape();
  ASSERT_NE(exit, nullptr);
  ASSERT_TRUE(exit->bound_exit.has_value());
  ASSERT_TRUE(exit->free_exit.has_value());
  EXPECT_EQ(exit->bound_exit->body().size(), 2u);
  EXPECT_EQ(exit->free_exit->body().size(), 2u);
  EXPECT_EQ(exit->bound_exit->head().size(), 1u);
  EXPECT_EQ(exit->free_exit->head().size(), 1u);
}

TEST(RuleClassesTest, PmemClassifiesRightLinear) {
  ast::Program p = workload::MakePmemProgram(3);
  auto adorned = analysis::Adorn(p, *p.query());
  ASSERT_TRUE(adorned.ok());
  auto c = ClassifyProgram(*adorned);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->rlc_stable) << c->diagnostic;
  EXPECT_EQ(KindOf(*c, 0), RuleShape::Kind::kExit);
  EXPECT_EQ(KindOf(*c, 1), RuleShape::Kind::kRightLinear);
}

TEST(RuleClassesTest, ExistentialVariablesStayInLast) {
  // The d(W, Z2), b(Z2, Y) chain has an existential variable Z2 internal to
  // the last conjunction.
  auto c = Classify(R"(
    t(X, Y) :- t(X, W), d(W, Z2), b(Z2, Y).
    t(X, Y) :- e(X, Y).
  )", "t(1, Y)");
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(KindOf(*c, 0), RuleShape::Kind::kLeftLinear);
  EXPECT_EQ(c->shapes[0].free_last->body().size(), 2u);
}

TEST(RuleClassesTest, KindNames) {
  EXPECT_STREQ(RuleShapeKindToString(RuleShape::Kind::kExit), "exit");
  EXPECT_STREQ(RuleShapeKindToString(RuleShape::Kind::kCombined), "combined");
  EXPECT_STREQ(RuleShapeKindToString(RuleShape::Kind::kPseudoLeftLinear),
               "pseudo-left-linear");
}

}  // namespace
}  // namespace factlog::core
