// Tests for the compile-time join planner (src/plan) and its integration
// with all three evaluators: the greedy cost model's decisions, the
// planner-vs-left-to-right equivalence oracle over the sweep corpus at
// 1/2/8 shards x 1/2/8 threads (identical fact sets, head instantiation
// counts never higher), and the right-linear TC regression — the driver
// literal is the outermost (plan-order-first) relation literal and planned
// driver partitioning does strictly less join work than the left-to-right
// baseline.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "eval/seminaive.h"
#include "exec/batch.h"
#include "exec/parallel_seminaive.h"
#include "exec/thread_pool.h"
#include "plan/join_plan.h"
#include "tests/sweep_corpus.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"

namespace factlog {
namespace {

using test::A;
using test::kNumSweepPrograms;
using test::kNumSweepWorkloads;
using test::kSweepPrograms;
using test::kSweepWorkloads;
using test::P;
using test::R;

std::vector<size_t> OrderOf(const plan::JoinPlan& jp) {
  std::vector<size_t> out;
  for (const plan::LiteralPlan& lp : jp.order) out.push_back(lp.body_index);
  return out;
}

// ---- Planner unit tests -----------------------------------------------------

TEST(PlanRuleTest, RightLinearTcPutsDeltaOccurrenceFirst) {
  // t(X, Y) :- e(X, W), t(W, Y): t ranges over fixpoint deltas, so the
  // planner drives the rule with it instead of rescanning e per delta pass.
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  plan::ProgramPlan pp = plan::PlanProgram(program);
  ASSERT_EQ(pp.rules.size(), 2u);
  EXPECT_EQ(OrderOf(pp.rules[0]), (std::vector<size_t>{0}));
  EXPECT_FALSE(pp.rules[0].reordered);
  EXPECT_EQ(OrderOf(pp.rules[1]), (std::vector<size_t>{1, 0}));
  EXPECT_TRUE(pp.rules[1].reordered);
  // The driver is the outermost relation literal of the plan — the
  // recursive occurrence itself.
  EXPECT_EQ(pp.rules[1].driver, 1);
  EXPECT_EQ(pp.rules[1].order.front().body_index,
            static_cast<size_t>(pp.rules[1].driver));
  // e is then probed on its first column (W is bound by the occurrence).
  EXPECT_EQ(pp.rules[1].order[1].index_cols, (std::vector<int>{1}));
}

TEST(PlanRuleTest, LeftLinearTcKeepsSourceOrder) {
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y).");
  plan::ProgramPlan pp = plan::PlanProgram(program);
  EXPECT_EQ(OrderOf(pp.rules[1]), (std::vector<size_t>{0, 1}));
  EXPECT_FALSE(pp.rules[1].reordered);
  EXPECT_EQ(pp.rules[1].driver, 0);
  EXPECT_EQ(pp.rules[1].order[1].index_cols, (std::vector<int>{0}));
}

TEST(PlanRuleTest, TiesPreserveSourceOrder) {
  plan::JoinPlan jp = plan::PlanRule(R("r(X, Z) :- e(X, Y), f(Y, Z)."));
  EXPECT_EQ(OrderOf(jp), (std::vector<size_t>{0, 1}));
  EXPECT_FALSE(jp.reordered);
  EXPECT_EQ(jp.driver, 0);
}

TEST(PlanRuleTest, ExtentHintsBreakTies) {
  plan::PlanOptions opts;
  opts.extent_hints["e"] = 100000;
  opts.extent_hints["f"] = 10;
  plan::JoinPlan jp = plan::PlanRule(R("r(X, Z) :- e(X, Y), f(Y, Z)."), opts);
  EXPECT_EQ(OrderOf(jp), (std::vector<size_t>{1, 0}));
  EXPECT_EQ(jp.driver, 1);
  // e joins second, probed on column 1 (Y bound by f).
  EXPECT_EQ(jp.order[1].index_cols, (std::vector<int>{1}));
  EXPECT_EQ(jp.order[0].est_rows, 10u);
}

TEST(PlanRuleTest, BoundColumnsBeatUnboundScans) {
  // q(1, Y) starts with a ground column; under equal extents it wins the
  // driver slot from the unbound scan of p.
  plan::JoinPlan jp = plan::PlanRule(R("r(Y, Z) :- p(Z, Y), q(1, Y)."));
  EXPECT_EQ(OrderOf(jp), (std::vector<size_t>{1, 0}));
  EXPECT_EQ(jp.order[0].index_cols, (std::vector<int>{0}));
  EXPECT_EQ(jp.order[1].index_cols, (std::vector<int>{1}));
}

TEST(PlanRuleTest, BuiltinsRunAsSoonAsExecutable) {
  plan::PlanOptions opts;
  opts.extent_hints["big"] = 100000;
  opts.extent_hints["tiny"] = 2;
  // tiny is scheduled first, affine computes Z from its X immediately, and
  // big joins last with both columns bound.
  plan::JoinPlan jp = plan::PlanRule(
      R("r(X, Z) :- big(X, Z), tiny(X), affine(X, 2, 0, Z)."), opts);
  EXPECT_EQ(OrderOf(jp), (std::vector<size_t>{1, 2, 0}));
  EXPECT_EQ(jp.order[2].index_cols, (std::vector<int>{0, 1}));
  EXPECT_EQ(jp.driver, 1);
}

TEST(PlanRuleTest, IllFormedBuiltinOrderIsPreservedVerbatim) {
  // equal/2 with both sides unbound errors at runtime; the planner must not
  // reorder the error away.
  plan::JoinPlan jp = plan::PlanRule(R("t(X, Y) :- equal(X, Y), e(X)."));
  EXPECT_EQ(OrderOf(jp), (std::vector<size_t>{0, 1}));
  EXPECT_FALSE(jp.reordered);
  // And the evaluation still fails exactly as before.
  ast::Program p = P("t(X, Y) :- equal(X, Y), e(X).");
  eval::Database db;
  test::AddFacts(&db, "e(1).");
  auto result = eval::Evaluate(p, &db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanRuleTest, PinnedPrefixStaysInPlace) {
  plan::PlanOptions opts;
  opts.extent_hints["huge"] = 1000000;
  opts.pinned_prefix = 1;
  plan::JoinPlan jp =
      plan::PlanRule(R("r(X, Y) :- huge(X, Y), small(X)."), opts);
  EXPECT_EQ(jp.order[0].body_index, 0u);
  EXPECT_EQ(jp.driver, 0);
}

TEST(PlanRuleTest, DeterministicAcrossCalls) {
  ast::Rule rule = R("r(X, Z) :- a(X, Y), b(Y, Z), c(Z, X), geq(X, 0).");
  plan::PlanOptions opts;
  opts.extent_hints = {{"a", 50}, {"b", 5000}, {"c", 50}};
  plan::JoinPlan first = plan::PlanRule(rule, opts);
  for (int i = 0; i < 5; ++i) {
    plan::JoinPlan again = plan::PlanRule(rule, opts);
    EXPECT_EQ(OrderOf(again), OrderOf(first));
    EXPECT_EQ(again.driver, first.driver);
  }
}

TEST(ProgramPlanTest, CompatibleChecksStructure) {
  ast::Program program = P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  plan::ProgramPlan pp = plan::PlanProgram(program);
  EXPECT_TRUE(pp.Compatible(program));
  ast::Program other = P("t(X, Y) :- e(X, Y).");
  EXPECT_FALSE(pp.Compatible(other));
  EXPECT_EQ(pp.reordered_rules(), 1u);
}

TEST(CompiledQueryTest, CarriesJoinPlanAndTraceEntry) {
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).");
  auto compiled =
      core::CompileQuery(program, *program.query(), core::Strategy::kAuto);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->plans.Compatible(compiled->program));
  bool saw_plan_pass = false;
  for (const core::PassTraceEntry& entry : compiled->trace) {
    if (entry.pass == "join-plan") {
      saw_plan_pass = true;
      EXPECT_TRUE(entry.applied);
    }
  }
  EXPECT_TRUE(saw_plan_pass);
  EXPECT_FALSE(plan::Explain(compiled->program, compiled->plans).empty());
}

// ---- Plan vs join-loop groundness oracle ------------------------------------

TEST(PlanIndexColsTest, MatchStaticIndexColsOnPlanCompiledRules) {
  // The plan's declared index requirements are what the engines pre-build;
  // eval::StaticIndexCols (computed on the compiled, plan-ordered body) is
  // the independent ground truth for what the join loop probes. The two
  // groundness analyses — AST-level in plan::, pattern-level in eval:: —
  // must never diverge.
  for (int p = 0; p < kNumSweepPrograms; ++p) {
    ast::Program original = P(kSweepPrograms[p].text);
    ast::Atom query = A(kSweepPrograms[p].query);
    auto compiled = core::CompileQuery(original, query, core::Strategy::kAuto);
    ASSERT_TRUE(compiled.ok());
    for (const ast::Program* program : {&original, &compiled->program}) {
      eval::Database db;
      plan::ProgramPlan pp = plan::PlanProgram(*program);
      for (size_t i = 0; i < program->rules().size(); ++i) {
        auto cr = eval::CompiledRule::Compile(program->rules()[i],
                                              &db.store(), &pp.rules[i]);
        ASSERT_TRUE(cr.ok());
        std::vector<std::vector<int>> oracle = eval::StaticIndexCols(*cr);
        for (size_t k = 0; k < pp.rules[i].order.size(); ++k) {
          if (!pp.rules[i].order[k].is_relation) continue;
          EXPECT_EQ(pp.rules[i].order[k].index_cols, oracle[k])
              << kSweepPrograms[p].name << " rule " << i << " literal " << k;
        }
      }
    }
  }
}

// ---- Plan-compiled rules: premises stay in source order ---------------------

TEST(CompiledRuleTest, PremisesReportedInSourceOrderUnderReordering) {
  eval::Database db;
  test::AddFacts(&db, "e(1, 2). s(2, 3).");
  ast::Rule rule = R("r(X, Y) :- e(X, W), s(W, Y).");
  plan::PlanOptions opts;
  opts.extent_hints = {{"e", 100000}, {"s", 1}};
  plan::JoinPlan jp = plan::PlanRule(rule, opts);
  ASSERT_EQ(OrderOf(jp), (std::vector<size_t>{1, 0}));  // s scheduled first
  auto compiled = eval::CompiledRule::Compile(rule, &db.store(), &jp);
  ASSERT_TRUE(compiled.ok());

  std::vector<eval::RelationView> views = {
      eval::RelationView{db.Find("e"), nullptr},
      eval::RelationView{db.Find("s"), nullptr}};
  // Views are indexed by COMPILED position: literal 0 is s, literal 1 is e.
  std::swap(views[0], views[1]);
  eval::JoinStats stats;
  std::vector<std::vector<eval::FactKey>> seen;
  auto st = EnumerateRule(
      *compiled, &db.store(), views, /*track_premises=*/true, &stats,
      [&](const std::vector<eval::ValueId>&,
          const std::vector<eval::FactKey>* premises) {
        seen.push_back(*premises);
        return true;
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(seen.size(), 1u);
  ASSERT_EQ(seen[0].size(), 2u);
  EXPECT_EQ(seen[0][0].predicate, "e");  // source order, not plan order
  EXPECT_EQ(seen[0][1].predicate, "s");
}

// ---- Planner-vs-left-to-right equivalence sweep -----------------------------

std::map<std::string, std::set<std::string>> FactSets(
    const eval::EvalResult& result, const eval::ValueStore& store) {
  std::map<std::string, std::set<std::string>> out;
  for (const auto& [pred, rel] : result.idb()) {
    std::set<std::string>& rows = out[pred];
    for (size_t r = 0; r < rel->size(); ++r) {
      std::string s = "(";
      for (size_t c = 0; c < rel->arity(); ++c) {
        if (c > 0) s += ", ";
        s += store.ToString(rel->row(r)[c]);
      }
      s += ")";
      rows.insert(s);
    }
  }
  return out;
}

class PlannedSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// The oracle check of this PR: for every corpus program (original and
// pipeline-compiled), planned evaluation — sequential and parallel at 1/2/8
// storage shards x 1/2/8 threads — produces exactly the fact sets of the
// left-to-right sequential baseline, with head instantiation counts never
// higher (a complete body match is join-order-invariant, so they are in
// fact equal; the planner's win shows up in rows_matched).
TEST_P(PlannedSweepTest, PlannedMatchesLeftToRightOracle) {
  const test::SweepProgram& ps = kSweepPrograms[std::get<0>(GetParam())];
  const test::SweepWorkload& ws = kSweepWorkloads[std::get<1>(GetParam())];

  ast::Program original = P(ps.text);
  ast::Atom query = A(ps.query);
  auto compiled = core::CompileQuery(original, query, core::Strategy::kAuto);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  struct Variant {
    const char* name;
    const ast::Program* program;
  };
  const Variant variants[] = {{"original", &original},
                              {"compiled", &compiled->program}};

  for (const Variant& v : variants) {
    eval::Database ltr_db;
    ws.make(&ltr_db);
    eval::EvalOptions ltr;
    ltr.join_order = eval::JoinOrder::kLeftToRight;
    auto baseline = eval::Evaluate(*v.program, &ltr_db, ltr);
    ASSERT_TRUE(baseline.ok())
        << v.name << ": " << baseline.status().ToString();
    auto expected = FactSets(*baseline, ltr_db.store());

    // Planned sequential.
    eval::Database seq_db;
    ws.make(&seq_db);
    auto planned = eval::Evaluate(*v.program, &seq_db);
    ASSERT_TRUE(planned.ok()) << v.name << ": " << planned.status().ToString();
    EXPECT_EQ(FactSets(*planned, seq_db.store()), expected) << v.name;
    EXPECT_LE(planned->stats().instantiations,
              baseline->stats().instantiations)
        << v.name;

    // Planned parallel across the shard x thread grid.
    for (size_t shards : {1u, 2u, 8u}) {
      for (size_t threads : {1u, 2u, 8u}) {
        eval::Database db(eval::StorageOptions{shards, {}});
        ws.make(&db);
        exec::ThreadPool pool(threads);
        exec::ParallelEvalOptions opts;
        opts.min_rows_to_partition = 1;  // exercise fan-out on tiny extents
        opts.num_shards = shards;
        auto parallel = exec::EvaluateParallel(*v.program, &db, &pool, opts);
        ASSERT_TRUE(parallel.ok())
            << v.name << " @" << threads << "t/" << shards << "sh: "
            << parallel.status().ToString();
        EXPECT_EQ(FactSets(*parallel, db.store()), expected)
            << v.name << " @" << threads << "t/" << shards << "sh";
        EXPECT_LE(parallel->stats().instantiations,
                  baseline->stats().instantiations)
            << v.name << " @" << threads << "t/" << shards << "sh";
        EXPECT_EQ(parallel->stats().iterations, baseline->stats().iterations)
            << v.name << " @" << threads << "t/" << shards << "sh";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, PlannedSweepTest,
    ::testing::Combine(::testing::Range(0, kNumSweepPrograms),
                       ::testing::Range(0, kNumSweepWorkloads)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kSweepPrograms[std::get<0>(info.param)].name) +
             "_x_" + kSweepWorkloads[std::get<1>(info.param)].name;
    });

// ---- Right-linear TC regression --------------------------------------------

TEST(RightLinearTcRegressionTest, DriverIsOutermostRelationLiteral) {
  // The acceptance regression: for the right-linear recursive rule the
  // driver literal is the outermost relation literal of the plan (the
  // recursive occurrence, moved to the front), so the parallel fixpoint
  // partitions delta shards instead of re-enumerating the e-prefix per
  // shard.
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  plan::ProgramPlan pp = plan::PlanProgram(program);
  const plan::JoinPlan& jp = pp.rules[1];
  ASSERT_FALSE(jp.order.empty());
  EXPECT_EQ(static_cast<int>(jp.order.front().body_index), jp.driver);
  EXPECT_EQ(program.rules()[1].body()[jp.driver].predicate(), "t");
}

TEST(RightLinearTcRegressionTest, PlannedDriverPartitioningDoesLessWork) {
  // Planned vs left-to-right on sharded right-linear TC: identical fact
  // sets and instantiation counts, strictly fewer rows matched (the
  // left-to-right baseline rescans e once per delta shard per iteration).
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  auto run = [&](eval::JoinOrder order) {
    eval::Database db(eval::StorageOptions{8, {}});
    workload::MakeChain(48, "e", &db);
    workload::MakeRandomGraph(48, 96, /*seed=*/7, "e", &db);
    exec::ThreadPool pool(2);
    exec::ParallelEvalOptions opts;
    opts.min_rows_to_partition = 1;
    opts.num_shards = 8;
    opts.eval.join_order = order;
    auto result = exec::EvaluateParallel(program, &db, &pool, opts);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result;
  };
  auto planned = run(eval::JoinOrder::kPlanned);
  auto baseline = run(eval::JoinOrder::kLeftToRight);
  ASSERT_TRUE(planned.ok() && baseline.ok());
  EXPECT_EQ(planned->stats().total_facts, baseline->stats().total_facts);
  EXPECT_EQ(planned->stats().instantiations,
            baseline->stats().instantiations);
  EXPECT_LT(planned->stats().rows_matched, baseline->stats().rows_matched);
  // Total join work (matches + instantiations) drops too.
  EXPECT_LT(planned->stats().rows_matched + planned->stats().instantiations,
            baseline->stats().rows_matched +
                baseline->stats().instantiations);
}

// ---- Prewarm derives exactly the plan's index set ---------------------------

TEST(PrewarmFromPlanTest, CompiledQueryOverloadMatchesSharedEdbEvaluation) {
  eval::Database db;
  workload::MakeGrid(4, 4, "e", &db);
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).");
  auto compiled =
      core::CompileQuery(program, *program.query(), core::Strategy::kAuto);
  ASSERT_TRUE(compiled.ok());

  auto baseline =
      eval::EvaluateQuery(compiled->program, compiled->query, &db);
  ASSERT_TRUE(baseline.ok());

  ASSERT_TRUE(exec::PrewarmIndexes(*compiled, &db).ok());
  eval::EvalOptions opts;
  opts.shared_edb = true;
  opts.program_plan = &compiled->plans;
  auto shared = eval::EvaluateQuery(compiled->program, compiled->query, &db,
                                    opts);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_EQ(shared->rows, baseline->rows);
}

// ---- Per-rule stats ---------------------------------------------------------

TEST(PerRuleStatsTest, RuleCountersSumToTotals) {
  eval::Database db;
  workload::MakeChain(16, "e", &db);
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  auto result = eval::Evaluate(program, &db);
  ASSERT_TRUE(result.ok());
  const eval::EvalStats& stats = result->stats();
  ASSERT_EQ(stats.rule_instantiations.size(), 2u);
  uint64_t inst = 0, rows = 0;
  for (size_t i = 0; i < 2; ++i) {
    inst += stats.rule_instantiations[i];
    rows += stats.rule_rows_matched[i];
  }
  EXPECT_EQ(inst, stats.instantiations);
  EXPECT_EQ(rows, stats.rows_matched);
  EXPECT_GT(stats.instantiations, 0u);

  exec::ThreadPool pool(2);
  exec::ParallelEvalOptions popts;
  popts.min_rows_to_partition = 1;
  popts.num_shards = 4;
  eval::Database pdb(eval::StorageOptions{4, {}});
  workload::MakeChain(16, "e", &pdb);
  auto parallel = exec::EvaluateParallel(program, &pdb, &pool, popts);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->stats().rule_instantiations.size(), 2u);
  EXPECT_EQ(parallel->stats().rule_instantiations,
            result->stats().rule_instantiations);
}

}  // namespace
}  // namespace factlog
