#include "core/factoring.h"

#include <gtest/gtest.h>

#include "eval/equivalence.h"
#include "eval/seminaive.h"
#include "tests/test_util.h"

namespace factlog::core {
namespace {

using test::A;
using test::AddFacts;
using test::P;

FactorSplit Split(const std::string& pred, std::vector<int> p1,
                  std::vector<int> p2, const std::string& n1,
                  const std::string& n2) {
  FactorSplit s;
  s.predicate = pred;
  s.part1 = std::move(p1);
  s.part2 = std::move(p2);
  s.name1 = n1;
  s.name2 = n2;
  return s;
}

TEST(FactoringTest, RewritesHeadsAndBodies) {
  ast::Program p = P(R"(
    t(X, Y) :- m(X), e(X, Y).
    t(X, Y) :- m(X), e(X, W), t(W, Y).
  )");
  auto f = FactorTransform(p, A("t(5, Y)"), Split("t", {0}, {1}, "bt", "ft"));
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  // Each t-rule splits into two; the body occurrence becomes bt, ft.
  ASSERT_EQ(f->program.rules().size(), 5u);  // 2*2 + query rule
  EXPECT_EQ(f->program.rules()[0].ToString(), "bt(X) :- m(X), e(X, Y).");
  EXPECT_EQ(f->program.rules()[1].ToString(), "ft(Y) :- m(X), e(X, Y).");
  EXPECT_EQ(f->program.rules()[2].ToString(),
            "bt(X) :- m(X), e(X, W), bt(W), ft(Y).");
  EXPECT_EQ(f->program.rules()[3].ToString(),
            "ft(Y) :- m(X), e(X, W), bt(W), ft(Y).");
  // Query rewritten through a fresh query rule.
  EXPECT_EQ(f->program.rules()[4].ToString(), "query(Y) :- bt(5), ft(Y).");
  EXPECT_EQ(f->query.ToString(), "query(Y)");
}

TEST(FactoringTest, PredicateNoLongerOccurs) {
  ast::Program p = P("t(X, Y) :- e(X, Y). q(X) :- t(X, X).");
  auto f = FactorTransform(p, A("q(X)"), Split("t", {0}, {1}, "t1", "t2"));
  ASSERT_TRUE(f.ok());
  for (const ast::Rule& r : f->program.rules()) {
    EXPECT_NE(r.head().predicate(), "t");
    for (const ast::Atom& b : r.body()) EXPECT_NE(b.predicate(), "t");
  }
  // Query not on t: unchanged.
  EXPECT_EQ(f->query.ToString(), "q(X)");
}

TEST(FactoringTest, RejectsNonPartitionSplits) {
  ast::Program p = P("t(X, Y, Z) :- e(X, Y, Z).");
  ast::Atom q = A("t(X, Y, Z)");
  // Overlapping parts.
  EXPECT_FALSE(
      FactorTransform(p, q, Split("t", {0, 1}, {1, 2}, "a", "b")).ok());
  // Not covering.
  EXPECT_FALSE(FactorTransform(p, q, Split("t", {0}, {2}, "a", "b")).ok());
  // Trivial (empty part).
  EXPECT_FALSE(
      FactorTransform(p, q, Split("t", {}, {0, 1, 2}, "a", "b")).ok());
  // Out of range.
  EXPECT_FALSE(
      FactorTransform(p, q, Split("t", {0, 3}, {1, 2}, "a", "b")).ok());
  // Unknown predicate.
  EXPECT_FALSE(
      FactorTransform(p, q, Split("zz", {0}, {1}, "a", "b")).ok());
}

TEST(FactoringTest, NamesUniquifiedAgainstProgram) {
  ast::Program p = P("t(X, Y) :- bt(X), e(X, Y).");
  auto f = FactorTransform(p, A("t(5, Y)"), Split("t", {0}, {1}, "bt", "ft"));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->split.name1, "bt_");  // "bt" is taken by the EDB predicate
  EXPECT_EQ(f->split.name2, "ft");
}

TEST(FactoringTest, Theorem31CrossProductIsWrong) {
  // The undecidability construction: factoring t into t1(X) x t2(Y, Z) is
  // invalid when a1 != a2 distinguishes q1 from q2.
  ast::Program p = P(R"(
    t(X, Y, Z) :- a1(X), q1(Y, Z).
    t(X, Y, Z) :- a2(X), q2(Y, Z).
  )");
  ast::Atom q = A("t(X, Y, Z)");
  auto f = FactorTransform(p, q, Split("t", {0}, {1, 2}, "t1", "t2"));
  ASSERT_TRUE(f.ok());
  auto ce = eval::FindCounterexample(p, q, f->program, f->query);
  ASSERT_TRUE(ce.ok());
  ASSERT_TRUE(ce->has_value()) << "expected the cross product to differ";
}

TEST(FactoringTest, Theorem31SecondSplitAlsoWrong) {
  // The other nontrivial split t'1(X, Y) x t'2(Z) from the proof.
  ast::Program p = P(R"(
    t(X, Y, Z) :- a1(X), q1(Y, Z).
    t(X, Y, Z) :- a2(X), q2(Y, Z).
  )");
  ast::Atom q = A("t(X, Y, Z)");
  auto f = FactorTransform(p, q, Split("t", {0, 1}, {2}, "tp1", "tp2"));
  ASSERT_TRUE(f.ok());
  auto ce = eval::FindCounterexample(p, q, f->program, f->query);
  ASSERT_TRUE(ce.ok());
  EXPECT_TRUE(ce->has_value());
}

TEST(FactoringTest, ValidWhenBodiesShareNoCrossConstraints) {
  // t(X, Y) :- a(X), b(Y) genuinely factors into a x b.
  ast::Program p = P("t(X, Y) :- a(X), b(Y).");
  ast::Atom q = A("t(X, Y)");
  auto f = FactorTransform(p, q, Split("t", {0}, {1}, "t1", "t2"));
  ASSERT_TRUE(f.ok());
  auto ce = eval::FindCounterexample(p, q, f->program, f->query);
  ASSERT_TRUE(ce.ok());
  EXPECT_FALSE(ce->has_value()) << (*ce)->ToString();
}

TEST(FactoringTest, Example71RefactoringClaimIsRefuted) {
  // §7.1 claims the optimized factored Magic program of
  //   t(X,Y,Z) :- t(X,U,W), b(U,Y), d(Z).   t(X,Y,Z) :- e(X,Y,Z).
  // with ?- t(5,Y,Z) "can also be factored" on the binary ft into
  // ft1(Y) x ft2(Z), noting that the §4 theorems cannot establish it.
  // REPRODUCTION FINDING: the claim is false as stated. On an EDB where
  // only the exit rule fires, ft holds *correlated* pairs from e while the
  // ft1 x ft2 program computes their full cross product. The randomized
  // falsifier (and the concrete witness below) refutes it; see
  // EXPERIMENTS.md E12.
  ast::Program factored_once = P(R"(
    m(5).
    ft(Y, Z) :- ft(U, W), b(U, Y), d(Z).
    ft(Y, Z) :- m(X), e(X, Y, Z).
    ?- ft(Y, Z).
  )");
  ast::Atom q = A("ft(Y, Z)");
  auto f = FactorTransform(factored_once, q,
                           Split("ft", {0}, {1}, "ft1", "ft2"));
  ASSERT_TRUE(f.ok());
  // Shape matches the paper's §7.1 listing: ft1/ft2 are unary.
  for (const ast::Rule& r : f->program.rules()) {
    if (r.head().predicate() == "ft1" || r.head().predicate() == "ft2") {
      EXPECT_EQ(r.head().arity(), 1u);
    }
  }
  // Concrete witness: exit-only EDB with two correlated pairs.
  eval::Database db;
  AddFacts(&db, "e(5, 1, 2). e(5, 3, 4).");
  auto orig = eval::EvaluateQuery(factored_once, q, &db);
  auto refact = eval::EvaluateQuery(f->program, f->query, &db);
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(refact.ok());
  EXPECT_EQ(orig->rows.size(), 2u);    // (1,2), (3,4)
  EXPECT_EQ(refact->rows.size(), 4u);  // plus the spurious (1,4), (3,2)
  // The randomized falsifier finds such EDBs on its own.
  auto ce = eval::FindCounterexample(factored_once, q, f->program, f->query);
  ASSERT_TRUE(ce.ok());
  EXPECT_TRUE(ce->has_value());
}

TEST(FactoringTest, FactoredEvaluationMatchesOnConcreteData) {
  ast::Program p = P("t(X, Y) :- a(X), b(Y).");
  ast::Atom q = A("t(X, Y)");
  auto f = FactorTransform(p, q, Split("t", {0}, {1}, "t1", "t2"));
  ASSERT_TRUE(f.ok());
  eval::Database db;
  AddFacts(&db, "a(1). a(2). b(7).");
  auto orig = eval::EvaluateQuery(p, q, &db);
  auto fact = eval::EvaluateQuery(f->program, f->query, &db);
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(orig->rows, fact->rows);
  EXPECT_EQ(orig->rows.size(), 2u);
}

}  // namespace
}  // namespace factlog::core
