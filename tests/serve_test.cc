// Tests for the async serving subsystem: MVCC snapshots over copy-on-write
// shards (serve/snapshot.h), the request-queue front end (serve/server.h),
// and the api::Engine integration.
//
// The centerpiece is the oracle sweep: concurrent readers race a mutator
// over the shared sweep corpus, and every answer a reader ever sees must
// equal — exactly — the from-scratch answers after some prefix of the update
// sequence. That is the whole MVCC contract: reads are never torn, never
// blocked, and never fail the legacy mutation guard; they are just possibly
// a few epochs stale.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "ast/parser.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "tests/sweep_corpus.h"

namespace factlog {
namespace {

using api::Engine;
using api::EngineOptions;
using core::Strategy;

// Rows rendered through the store and sorted: the only representation
// comparable across engines (ValueIds are store-local).
std::vector<std::string> Rendered(const eval::AnswerSet& answers,
                                  const eval::ValueStore& store) {
  std::vector<std::string> rows;
  rows.reserve(answers.rows.size());
  for (const auto& row : answers.rows) {
    std::string s;
    for (eval::ValueId v : row) {
      s += store.ToString(v);
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

ast::Atom Edge(int64_t a, int64_t b) {
  return ast::Atom("e", {ast::Term::Int(a), ast::Term::Int(b)});
}

struct UpdateOp {
  bool insert;
  int64_t a, b;
};

// A deterministic update script shared by every sweep configuration: grows a
// fresh chain off node 1, breaks and rebuilds it (counting and DRed paths),
// deletes original chain edges, closes and reopens a cycle through node 1,
// and feeds node 8 (the reverse_bound query's constant). Deletions of absent
// facts are accepted no-ops, so the script is valid for every workload.
std::vector<UpdateOp> UpdateScript() {
  return {{true, 1, 101},   {true, 101, 102}, {true, 102, 103},
          {false, 101, 102}, {true, 101, 103}, {false, 1, 2},
          {true, 1, 2},      {false, 2, 3},    {true, 103, 1},
          {false, 1, 101},   {true, 1, 104},   {true, 104, 105},
          {false, 104, 105}, {true, 105, 8},   {true, 2, 105},
          {false, 103, 1},   {true, 8, 1},     {false, 8, 1}};
}

// oracle[p][k] = the sorted rendered answers of programs[p] after the first
// k updates, computed by a sequential stop-the-world engine (no views, no
// serving — the independent ground truth).
std::vector<std::vector<std::vector<std::string>>> BuildOracle(
    const test::SweepWorkload& workload,
    const std::vector<ast::Program>& programs,
    const std::vector<ast::Atom>& queries, const std::vector<UpdateOp>& ops) {
  Engine oracle;
  workload.make(&oracle.db());
  std::vector<std::vector<std::vector<std::string>>> out(programs.size());
  auto record = [&] {
    for (size_t p = 0; p < programs.size(); ++p) {
      auto answers = oracle.Query(programs[p], queries[p]);
      EXPECT_TRUE(answers.ok()) << answers.status().ToString();
      out[p].push_back(answers.ok()
                           ? Rendered(*answers, oracle.db().store())
                           : std::vector<std::string>{"<error>"});
    }
  };
  record();
  for (const UpdateOp& op : ops) {
    Status st = op.insert ? oracle.AddFact(Edge(op.a, op.b))
                          : oracle.RemoveFact(Edge(op.a, op.b));
    EXPECT_TRUE(st.ok()) << st.ToString();
    record();
  }
  return out;
}

// One serving configuration of the oracle sweep: 3 reader threads querying
// every program (the first is materialized, so its reads are frozen view
// hits; the rest evaluate against the snapshot) while the test thread pushes
// the update script through the writer. Checks, per reader: prefix
// consistency of every answer, monotone epochs, and zero
// kFailedPrecondition; per mutator update: success and monotone epochs.
void RunOracleSweep(size_t shards, size_t threads,
                    const std::vector<int>& program_idx,
                    const std::vector<int>& workload_idx) {
  const std::vector<UpdateOp> ops = UpdateScript();
  for (int w : workload_idx) {
    const test::SweepWorkload& workload = test::kSweepWorkloads[w];
    SCOPED_TRACE(std::string("workload ") + workload.name);

    std::vector<ast::Program> programs;
    std::vector<ast::Atom> queries;
    for (int p : program_idx) {
      auto program = ast::ParseProgram(test::kSweepPrograms[p].text);
      auto query = ast::ParseAtom(test::kSweepPrograms[p].query);
      ASSERT_TRUE(program.ok() && query.ok());
      programs.push_back(std::move(program).value());
      queries.push_back(std::move(query).value());
    }
    auto oracle = BuildOracle(workload, programs, queries, ops);

    EngineOptions options;
    options.num_threads = threads;
    options.num_shards = shards;
    Engine engine(options);
    workload.make(&engine.db());
    ASSERT_TRUE(engine.Materialize(programs[0], queries[0]).ok());
    ASSERT_TRUE(engine.StartServing().ok());

    std::atomic<bool> done{false};
    std::atomic<int> precondition_failures{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&] {
        uint64_t session = engine.OpenSession();
        ASSERT_NE(session, 0u);
        uint64_t last_epoch = 0;
        for (;;) {
          const bool final_round = done.load(std::memory_order_acquire);
          for (size_t p = 0; p < programs.size(); ++p) {
            serve::QueryResponse resp =
                engine.SubmitQuery(session, programs[p], queries[p],
                                   Strategy::kAuto)
                    .get();
            if (!resp.status.ok()) {
              if (resp.status.code() == StatusCode::kFailedPrecondition) {
                precondition_failures.fetch_add(1);
              }
              ADD_FAILURE() << "reader: " << resp.status.ToString();
              continue;
            }
            EXPECT_GE(resp.epoch, last_epoch) << "epoch went backwards";
            last_epoch = resp.epoch;
            std::vector<std::string> rendered =
                Rendered(resp.answers, engine.db().store());
            bool is_prefix_state =
                std::find(oracle[p].begin(), oracle[p].end(), rendered) !=
                oracle[p].end();
            EXPECT_TRUE(is_prefix_state)
                << "answer at epoch " << resp.epoch << " for program "
                << program_idx[p]
                << " matches no prefix of the update sequence";
          }
          if (final_round) break;
        }
        engine.CloseSession(session);
      });
    }

    uint64_t mutator_session = engine.OpenSession();
    uint64_t last_epoch = 0;
    for (const UpdateOp& op : ops) {
      serve::UpdateResponse resp =
          engine.SubmitUpdate(mutator_session, op.insert, Edge(op.a, op.b))
              .get();
      EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
      EXPECT_GE(resp.epoch, last_epoch);
      last_epoch = resp.epoch;
    }
    engine.CloseSession(mutator_session);
    done.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    EXPECT_EQ(precondition_failures.load(), 0)
        << "the serving path must never fail the mutation guard";
    ASSERT_TRUE(engine.StopServing().ok());

    // Drained: the final synchronous answers equal the full-prefix oracle.
    for (size_t p = 0; p < programs.size(); ++p) {
      auto answers = engine.Query(programs[p], queries[p]);
      ASSERT_TRUE(answers.ok()) << answers.status().ToString();
      EXPECT_EQ(Rendered(*answers, engine.db().store()), oracle[p].back());
    }
  }
}

// The full corpus (all 6 programs, all 7 workloads) at the default-ish
// configuration; the other shard x thread corners run a reduced set.
TEST(ServeOracleSweep, FullCorpusShards2Threads2) {
  RunOracleSweep(2, 2, {0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5, 6});
}

// right_tc + nonlinear_tc over chain and random_plus_chain at every other
// corner of {1, 2, 8} shards x {1, 2, 8} threads.
TEST(ServeOracleSweep, Shards1Threads1) { RunOracleSweep(1, 1, {0, 2}, {0, 4}); }
TEST(ServeOracleSweep, Shards1Threads2) { RunOracleSweep(1, 2, {0, 2}, {0, 4}); }
TEST(ServeOracleSweep, Shards1Threads8) { RunOracleSweep(1, 8, {0, 2}, {0, 4}); }
TEST(ServeOracleSweep, Shards2Threads1) { RunOracleSweep(2, 1, {0, 2}, {0, 4}); }
TEST(ServeOracleSweep, Shards2Threads8) { RunOracleSweep(2, 8, {0, 2}, {0, 4}); }
TEST(ServeOracleSweep, Shards8Threads1) { RunOracleSweep(8, 1, {0, 2}, {0, 4}); }
TEST(ServeOracleSweep, Shards8Threads2) { RunOracleSweep(8, 2, {0, 2}, {0, 4}); }
TEST(ServeOracleSweep, Shards8Threads8) { RunOracleSweep(8, 8, {0, 2}, {0, 4}); }

// ---- Copy-on-write / snapshot unit tests -----------------------------------

// Serving-mode deletion batches over a dense graph: every RemoveFact runs
// the edge-guided slice path inside the writer thread, and the drained
// answers must equal a stop-the-world engine that saw the same deletes.
TEST(ServeOracleSweep, DenseGraphDeleteBatchesStayConsistent) {
  constexpr int64_t kNodes = 12;
  auto make_dense = [](Engine* e) {
    for (int64_t i = 1; i < kNodes; ++i) {
      ASSERT_TRUE(e->AddFact(Edge(i, i + 1)).ok());
      if (i + 2 <= kNodes) {
        ASSERT_TRUE(e->AddFact(Edge(i, i + 2)).ok());
      }
    }
  };
  const std::vector<std::pair<int64_t, int64_t>> deletes = {
      {9, 10}, {5, 6}, {5, 7}, {10, 12}, {3, 4}, {7, 8}};

  auto program = ast::ParseProgram(
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  auto query = ast::ParseAtom("t(1, Y)");
  ASSERT_TRUE(program.ok() && query.ok());

  Engine oracle;
  make_dense(&oracle);
  std::vector<std::vector<std::string>> expected;
  for (const auto& [a, b] : deletes) {
    ASSERT_TRUE(oracle.RemoveFact(Edge(a, b)).ok());
    auto answers = oracle.Query(*program, *query);
    ASSERT_TRUE(answers.ok());
    expected.push_back(Rendered(*answers, oracle.db().store()));
  }

  EngineOptions options;
  options.num_threads = 4;
  options.num_shards = 2;
  options.inc_min_rows_to_partition = 1;
  Engine engine(options);
  make_dense(&engine);
  ASSERT_TRUE(engine.Materialize(*program, *query).ok());
  ASSERT_TRUE(engine.StartServing().ok());

  uint64_t session = engine.OpenSession();
  ASSERT_NE(session, 0u);
  for (const auto& [a, b] : deletes) {
    serve::UpdateResponse resp =
        engine.SubmitUpdate(session, /*insert=*/false, Edge(a, b)).get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  }
  // Read-your-writes through the same session: the view already reflects
  // every delete in the batch.
  serve::QueryResponse resp =
      engine.SubmitQuery(session, *program, *query, Strategy::kAuto).get();
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(Rendered(resp.answers, engine.db().store()), expected.back());
  engine.CloseSession(session);
  ASSERT_TRUE(engine.StopServing().ok());

  auto final_answers = engine.Query(*program, *query);
  ASSERT_TRUE(final_answers.ok());
  EXPECT_EQ(Rendered(*final_answers, engine.db().store()), expected.back());
}

TEST(CowSnapshotTest, FrozenCopyUnaffectedByLiveMutations) {
  eval::Relation rel(2, eval::StorageOptions{4, {}});
  rel.Insert({1, 2});
  rel.Insert({2, 3});
  std::shared_ptr<eval::Relation> frozen = rel.FrozenCopy();

  rel.Insert({3, 4});  // detaches the written shard, not the frozen copy
  std::vector<eval::ValueId> gone = {1, 2};
  EXPECT_TRUE(rel.Erase(gone.data()));
  EXPECT_EQ(rel.size(), 2u);

  EXPECT_EQ(frozen->size(), 2u);
  std::vector<eval::ValueId> row = {1, 2};
  EXPECT_TRUE(frozen->Contains(row.data()));
  row = {3, 4};
  EXPECT_FALSE(frozen->Contains(row.data()));

  rel.Clear();
  EXPECT_EQ(rel.size(), 0u);
  EXPECT_EQ(frozen->size(), 2u);
}

TEST(CowSnapshotTest, FlatRelationFrozenCopyIsIndependent) {
  eval::Relation rel(1, eval::StorageOptions{});  // flat: deep copy
  rel.Insert({7});
  std::shared_ptr<eval::Relation> frozen = rel.FrozenCopy();
  rel.Insert({8});
  EXPECT_EQ(frozen->size(), 1u);
  EXPECT_EQ(rel.size(), 2u);
}

TEST(CowSnapshotTest, VersionAdvancesOnMutation) {
  eval::Relation rel(2, eval::StorageOptions{2, {}});
  uint64_t v0 = rel.version();
  rel.Insert({1, 2});
  EXPECT_GT(rel.version(), v0);
  uint64_t v1 = rel.version();
  rel.Insert({1, 2});  // duplicate: no state change, no version change
  EXPECT_EQ(rel.version(), v1);
  std::vector<eval::ValueId> row = {1, 2};
  EXPECT_TRUE(rel.Erase(row.data()));
  EXPECT_GT(rel.version(), v1);
}

TEST(SnapshotBuilderTest, ReusesUnchangedFrozenCopies) {
  eval::Database db(eval::StorageOptions{2, {}});
  db.AddPair("e", 1, 2);
  db.AddPair("f", 1, 2);
  serve::SnapshotBuilder builder;
  auto s1 = builder.Build(&db);
  auto s2 = builder.Build(&db);
  EXPECT_EQ(s1->epoch, 1u);
  EXPECT_EQ(s2->epoch, 2u);
  // No intervening mutation: both epochs share the same frozen copies.
  EXPECT_EQ(s1->db->Find("e"), s2->db->Find("e"));
  EXPECT_EQ(builder.copies(), 2u);

  db.AddPair("e", 2, 3);
  auto s3 = builder.Build(&db);
  EXPECT_NE(s3->db->Find("e"), s1->db->Find("e"));  // e changed: new copy
  EXPECT_EQ(s3->db->Find("f"), s1->db->Find("f"));  // f unchanged: reused
  EXPECT_EQ(builder.copies(), 3u);

  // The superseded epoch still answers the old state.
  EXPECT_EQ(s1->db->Find("e")->size(), 1u);
  EXPECT_EQ(s3->db->Find("e")->size(), 2u);
}

// ---- Server admission / backpressure (standalone, deterministic) -----------
//
// The serve layer is engine-agnostic; blocking hooks make every admission
// decision deterministic instead of racing real evaluations.

TEST(ServerTest, QueryQueueBackpressure) {
  exec::ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  serve::Server::Hooks hooks;
  hooks.read = [opened](const ast::Program&, const ast::Atom&, Strategy,
                        serve::QueryResponse*) { opened.wait(); };
  hooks.apply = [](bool, const ast::Atom&) { return Status::OK(); };
  hooks.install = [] { return uint64_t{1}; };
  serve::ServeOptions options;
  options.max_queue = 2;
  serve::Server server(&pool, hooks, options);
  uint64_t session = server.OpenSession();

  std::atomic<int> completions{0};
  auto count = [&completions](serve::QueryResponse) { completions.fetch_add(1); };
  EXPECT_TRUE(server
                  .SubmitQuery(session, ast::Program(), ast::Atom("q", {}),
                               Strategy::kAuto, count)
                  .ok());
  EXPECT_TRUE(server
                  .SubmitQuery(session, ast::Program(), ast::Atom("q", {}),
                               Strategy::kAuto, count)
                  .ok());
  // Two in flight (one blocked on the worker, one queued) = max_queue: the
  // third is rejected, not blocked.
  Status st = server.SubmitQuery(session, ast::Program(), ast::Atom("q", {}),
                                 Strategy::kAuto, count);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);

  gate.set_value();
  server.Drain();
  EXPECT_EQ(completions.load(), 2);
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted_queries, 2u);
  EXPECT_EQ(stats.completed_queries, 2u);
  EXPECT_EQ(stats.rejected_queries, 1u);
  server.Stop();
}

TEST(ServerTest, SessionBudgetAndLifecycle) {
  exec::ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  serve::Server::Hooks hooks;
  hooks.read = [opened](const ast::Program&, const ast::Atom&, Strategy,
                        serve::QueryResponse*) { opened.wait(); };
  hooks.apply = [](bool, const ast::Atom&) { return Status::OK(); };
  hooks.install = [] { return uint64_t{1}; };
  serve::ServeOptions options;
  options.max_inflight_per_session = 2;
  serve::Server server(&pool, hooks, options);

  // Unknown session: structural misuse, not backpressure.
  Status st = server.SubmitQuery(42, ast::Program(), ast::Atom("q", {}),
                                 Strategy::kAuto,
                                 [](serve::QueryResponse) {});
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);

  uint64_t session = server.OpenSession();
  auto drop = [](serve::QueryResponse) {};
  EXPECT_TRUE(server
                  .SubmitQuery(session, ast::Program(), ast::Atom("q", {}),
                               Strategy::kAuto, drop)
                  .ok());
  EXPECT_TRUE(server
                  .SubmitQuery(session, ast::Program(), ast::Atom("q", {}),
                               Strategy::kAuto, drop)
                  .ok());
  // The session's budget (2) is exhausted while the global queue is not.
  st = server.SubmitQuery(session, ast::Program(), ast::Atom("q", {}),
                          Strategy::kAuto, drop);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // A second session is unaffected by the first one's budget.
  uint64_t other = server.OpenSession();
  EXPECT_TRUE(server
                  .SubmitQuery(other, ast::Program(), ast::Atom("q", {}),
                               Strategy::kAuto, drop)
                  .ok());

  gate.set_value();
  server.Drain();
  // Closed sessions reject further submits.
  EXPECT_TRUE(server.CloseSession(session).ok());
  st = server.SubmitQuery(session, ast::Program(), ast::Atom("q", {}),
                          Strategy::kAuto, drop);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.CloseSession(session).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.open_sessions(), 1u);
  server.Stop();
}

TEST(ServerTest, UpdateQueueBackpressure) {
  exec::ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> first_started;
  std::atomic<bool> signaled{false};
  serve::Server::Hooks hooks;
  hooks.read = [](const ast::Program&, const ast::Atom&, Strategy,
                  serve::QueryResponse*) {};
  hooks.apply = [&](bool, const ast::Atom&) {
    if (!signaled.exchange(true)) first_started.set_value();
    opened.wait();
    return Status::OK();
  };
  hooks.install = [] { return uint64_t{1}; };
  serve::ServeOptions options;
  options.max_update_queue = 1;
  serve::Server server(&pool, hooks, options);
  uint64_t session = server.OpenSession();

  auto drop = [](serve::UpdateResponse) {};
  // First update: drained by the writer immediately; wait until its apply is
  // visibly in flight so the queue is empty again.
  EXPECT_TRUE(server.SubmitUpdate(session, true, Edge(1, 2), drop).ok());
  first_started.get_future().wait();
  // Second: sits in the (length-1) queue. Third: rejected.
  EXPECT_TRUE(server.SubmitUpdate(session, true, Edge(2, 3), drop).ok());
  Status st = server.SubmitUpdate(session, true, Edge(3, 4), drop);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);

  gate.set_value();
  server.Drain();
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed_updates, 2u);
  EXPECT_EQ(stats.rejected_updates, 1u);
  server.Stop();
  // Stopped servers reject structurally.
  st = server.SubmitUpdate(session, true, Edge(4, 5), drop);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

// ---- Engine integration -----------------------------------------------------

const char kRightTcText[] =
    "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).";

TEST(ServeEngineTest, NotServingRejectsAndRequiresPool) {
  Engine sequential;  // num_threads == 0
  EXPECT_EQ(sequential.OpenSession(), 0u);
  EXPECT_EQ(sequential.StartServing().code(),
            StatusCode::kFailedPrecondition);
  serve::QueryResponse resp =
      sequential
          .SubmitQuery(1, ast::Program(), ast::Atom("q", {}), Strategy::kAuto)
          .get();
  EXPECT_EQ(resp.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sequential.serving_epoch(), 0u);
}

// The legacy stop-the-world guard must keep failing racing mutations on
// non-serving engines — retiring it is scoped to the serving path.
TEST(ServeEngineTest, LegacyGuardStillFailsOutsideServing) {
  EngineOptions options;
  options.eval.strategy = eval::Strategy::kNaive;  // deliberately slow
  Engine engine(options);
  for (int i = 1; i <= 500; ++i) engine.AddPair("e", i, i % 500 + 1);
  std::atomic<bool> done{false};
  std::thread worker([&] {
    auto answers = engine.Query(
        "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).");
    EXPECT_TRUE(answers.ok());
    done.store(true);
  });
  while (engine.running_queries() == 0 && !done.load()) {
    std::this_thread::yield();
  }
  Status st = engine.AddFact(Edge(500, 501));
  if (!st.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  } else {
    EXPECT_TRUE(done.load());  // the query won the race; legal
  }
  worker.join();
}

// The same shape of race on a serving engine: synchronous mutations reroute
// through the writer and must always succeed, readers never trip them.
TEST(ServeEngineTest, ServingMutationsNeverFailPrecondition) {
  EngineOptions options;
  options.num_threads = 2;
  options.num_shards = 2;
  Engine engine(options);
  for (int i = 1; i <= 64; ++i) engine.AddPair("e", i, i % 64 + 1);
  ASSERT_TRUE(engine.StartServing().ok());

  auto program = ast::ParseProgram(kRightTcText);
  auto query = ast::ParseAtom("t(1, Y)");
  ASSERT_TRUE(program.ok() && query.ok());
  uint64_t session = engine.OpenSession();
  std::vector<std::future<serve::QueryResponse>> reads;
  for (int i = 0; i < 16; ++i) {
    reads.push_back(
        engine.SubmitQuery(session, *program, *query, Strategy::kAuto));
    if (i % 2 == 0) {
      Status st = engine.AddFact(Edge(100 + i, 101 + i));
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  }
  for (auto& f : reads) {
    serve::QueryResponse resp = f.get();
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
  }
  EXPECT_TRUE(engine.StopServing().ok());
}

TEST(ServeEngineTest, ReadYourWrites) {
  EngineOptions options;
  options.num_threads = 2;
  options.num_shards = 2;
  Engine engine(options);
  engine.AddPair("e", 1, 2);
  ASSERT_TRUE(engine.StartServing().ok());
  auto program = ast::ParseProgram(kRightTcText);
  auto query = ast::ParseAtom("t(1, Y)");
  ASSERT_TRUE(program.ok() && query.ok());
  uint64_t session = engine.OpenSession();

  serve::UpdateResponse update =
      engine.SubmitUpdate(session, true, Edge(2, 3)).get();
  ASSERT_TRUE(update.status.ok());
  EXPECT_GE(update.epoch, 2u);  // epoch 1 is the pre-serving install

  // Submitted after the update completed: must see its epoch (or later) and
  // its consequences — t(1, 3) via the new edge.
  serve::QueryResponse read =
      engine.SubmitQuery(session, *program, *query, Strategy::kAuto).get();
  ASSERT_TRUE(read.status.ok());
  EXPECT_GE(read.epoch, update.epoch);
  EXPECT_EQ(read.answers.rows.size(), 2u);  // Y = 2, Y = 3
  EXPECT_TRUE(engine.StopServing().ok());
}

TEST(ServeEngineTest, ViewHitsServeFromFrozenEpochs) {
  EngineOptions options;
  options.num_threads = 2;
  options.num_shards = 2;
  Engine engine(options);
  engine.AddPair("e", 1, 2);
  engine.AddPair("e", 2, 3);
  auto program = ast::ParseProgram(kRightTcText);
  auto query = ast::ParseAtom("t(1, Y)");
  ASSERT_TRUE(program.ok() && query.ok());
  ASSERT_TRUE(engine.Materialize(*program, *query).ok());
  ASSERT_TRUE(engine.StartServing().ok());
  uint64_t session = engine.OpenSession();

  serve::QueryResponse read =
      engine.SubmitQuery(session, *program, *query, Strategy::kAuto).get();
  ASSERT_TRUE(read.status.ok());
  EXPECT_TRUE(read.view_hit);
  EXPECT_EQ(read.answers.rows.size(), 2u);

  serve::UpdateResponse update =
      engine.SubmitUpdate(session, true, Edge(3, 4)).get();
  ASSERT_TRUE(update.status.ok());
  read = engine.SubmitQuery(session, *program, *query, Strategy::kAuto).get();
  ASSERT_TRUE(read.status.ok());
  EXPECT_TRUE(read.view_hit);
  EXPECT_GE(read.epoch, update.epoch);
  EXPECT_EQ(read.answers.rows.size(), 3u);  // the view was maintained + frozen

  // Structural changes are fenced off while serving.
  EXPECT_EQ(engine.Materialize(*program, ast::ParseAtom("t(2, Y)").value())
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(engine.StopServing().ok());
}

TEST(ServeEngineTest, SynchronousQueryReroutesWhileServing) {
  EngineOptions options;
  options.num_threads = 2;
  Engine engine(options);
  engine.AddPair("e", 1, 2);
  ASSERT_TRUE(engine.StartServing().ok());
  // Query() while serving evaluates inline against the snapshot; stats say
  // so via execute_us and no epoch-guard failure is possible.
  api::QueryStats stats;
  auto program = ast::ParseProgram(kRightTcText);
  auto query = ast::ParseAtom("t(1, Y)");
  ASSERT_TRUE(program.ok() && query.ok());
  auto answers = engine.Query(*program, *query, Strategy::kAuto, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->rows.size(), 1u);
  // AddFact reroutes through the writer: visible to the next read.
  ASSERT_TRUE(engine.AddFact(Edge(2, 3)).ok());
  answers = engine.Query(*program, *query, Strategy::kAuto);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 2u);
  EXPECT_TRUE(engine.StopServing().ok());
  // And back: the stop-the-world path still works after StopServing.
  ASSERT_TRUE(engine.AddFact(Edge(3, 4)).ok());
  answers = engine.Query(*program, *query, Strategy::kAuto);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 3u);
}

}  // namespace
}  // namespace factlog
