#include "core/factorability.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "eval/equivalence.h"
#include "eval/seminaive.h"
#include "tests/test_util.h"

namespace factlog::core {
namespace {

using test::A;
using test::AddFacts;
using test::P;

Result<FactorabilityReport> Check(const std::string& program_text,
                                  const std::string& query_text) {
  ast::Program p = test::P(program_text);
  auto adorned = analysis::Adorn(p, test::A(query_text));
  if (!adorned.ok()) return adorned.status();
  auto c = ClassifyProgram(*adorned);
  if (!c.ok()) return c.status();
  return CheckFactorability(*c);
}

// Positive variants of the paper's Examples 4.3-4.5: the same rule shapes
// with the Definition 4.6-4.8 containments made syntactically true (the
// exit rule carries the right conjunctions; left conjunctions are shared).
const char kPositiveSelectionPushing[] = R"(
  p(X, Y) :- l(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
  p(X, Y) :- l(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
  p(X, Y) :- l(X), f(X, V), p(V, Y), r3(Y).
  p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).
)";

const char kPositiveSymmetric[] = R"(
  p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
  p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
  p(X, Y) :- e(X, Y), r1(Y), r2(Y).
)";

const char kPositiveAnswerPropagating[] = R"(
  p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
  p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
  p(X, Y) :- l1(X), l2(X), f(X, V), p(V, Y), r3(Y).
  p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).
)";

TEST(FactorabilityTest, ThreeFormTcIsSelectionPushing) {
  auto r = Check(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
  )", "t(5, Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->cls, FactorClass::kSelectionPushing);
  EXPECT_TRUE(r->selection_pushing);
}

TEST(FactorabilityTest, PositiveSelectionPushing) {
  auto r = Check(kPositiveSelectionPushing, "p(5, Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->selection_pushing)
      << (r->failures.empty() ? "" : r->failures[0]);
  EXPECT_EQ(r->cls, FactorClass::kSelectionPushing);
}

TEST(FactorabilityTest, PositiveSymmetricIsSymmetricNotSp) {
  auto r = Check(kPositiveSymmetric, "p(5, Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->selection_pushing);  // l1 and l2 are not equivalent
  EXPECT_TRUE(r->symmetric);
  // Theorem 4.3 strictly generalizes Theorem 4.2.
  EXPECT_TRUE(r->answer_propagating);
  EXPECT_EQ(r->cls, FactorClass::kSymmetric);
}

TEST(FactorabilityTest, PositiveAnswerPropagatingOnly) {
  auto r = Check(kPositiveAnswerPropagating, "p(5, Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->selection_pushing);
  EXPECT_FALSE(r->symmetric);  // has a right-linear rule
  EXPECT_TRUE(r->answer_propagating);
  EXPECT_EQ(r->cls, FactorClass::kAnswerPropagating);
}

TEST(FactorabilityTest, PaperExample43IsIllustrativeNotFactorable) {
  // Example 4.3's literal program: the containments do not hold as tableau
  // containment (the example exists to show violations break factoring).
  auto r = Check(R"(
    p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
    p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
    p(X, Y) :- f(X, V), p(V, Y), r3(Y).
    p(X, Y) :- e(X, Y).
  )", "p(5, Y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->factorable());
  EXPECT_FALSE(r->failures.empty());
}

TEST(FactorabilityTest, Example43FirstViolationEdb) {
  // The paper's first EDB: bound_first ⊄ l1 lets the blindly factored
  // program derive the spurious answer 8.
  ast::Program original = P(R"(
    p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
    p(X, Y) :- f(X, V), p(V, Y).
    p(X, Y) :- e(X, Y).
    ?- p(5, Y).
  )");
  // The factored program of Example 4.3 (specialized to the rules above),
  // i.e. what blind factoring + the §5 cleanups would produce if the
  // selection-pushing conditions were (wrongly) assumed.
  ast::Program factored = P(R"(
    m(V) :- bp(X), l1(X), fp(U), c1(U, V).
    m(V) :- m(X), f(X, V).
    m(5).
    bp(X) :- m(X), f(X, V), bp(V), fp(Y).
    bp(X) :- m(X), e(X, Y).
    fp(Y) :- m(X), e(X, Y).
    ?- fp(Y).
  )");
  eval::Database db;
  AddFacts(&db, "f(5, 1). e(5, 6). e(1, 7). e(2, 8). l1(1). c1(6, 2). "
                "r1(7). r1(8).");
  auto orig = eval::EvaluateQuery(original, *original.query(), &db);
  auto fact = eval::EvaluateQuery(factored, *factored.query(), &db);
  ASSERT_TRUE(orig.ok()) << orig.status().ToString();
  ASSERT_TRUE(fact.ok()) << fact.status().ToString();
  // 8 is derivable only in the factored program (spurious subgoal m(2)).
  eval::ValueId eight = db.store().InternInt(8);
  auto contains = [&](const eval::AnswerSet& a) {
    for (const auto& row : a.rows) {
      if (row.size() == 1 && row[0] == eight) return true;
    }
    return false;
  };
  EXPECT_FALSE(contains(*orig));
  EXPECT_TRUE(contains(*fact));
}

TEST(FactorabilityTest, SameGenerationNotFactorable) {
  ast::Program p = P(R"(
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
  )");
  auto adorned = analysis::Adorn(p, A("sg(1, Y)"));
  ASSERT_TRUE(adorned.ok());
  auto c = ClassifyProgram(*adorned);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->rlc_stable);
  auto r = CheckFactorability(*c);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// When a program is declared factorable, factoring must preserve answers:
// differential test over random EDBs through the full pipeline.
struct FactorCase {
  const char* name;
  const char* program;
  const char* query;
};

class FactoredEquivalenceTest : public ::testing::TestWithParam<FactorCase> {};

TEST_P(FactoredEquivalenceTest, FactoredProgramPreservesAnswers) {
  ast::Program p = P(GetParam().program);
  ast::Atom q = A(GetParam().query);
  auto result = OptimizeQuery(p, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->factoring_applied)
      << FactorClassToString(result->factorability.cls);
  eval::DiffTestOptions opts;
  opts.trials = 50;
  // Raw factored program vs the original.
  auto ce1 = eval::FindCounterexample(p, q, result->factored->program,
                                      result->factored->query, opts);
  ASSERT_TRUE(ce1.ok());
  EXPECT_FALSE(ce1->has_value()) << (*ce1)->ToString();
  // §5-optimized program vs the original.
  auto ce2 = eval::FindCounterexample(p, q, *result->optimized,
                                      result->final_query(), opts);
  ASSERT_TRUE(ce2.ok());
  EXPECT_FALSE(ce2->has_value()) << (*ce2)->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Classes, FactoredEquivalenceTest,
    ::testing::Values(
        FactorCase{"three_form_tc",
                   "t(X, Y) :- t(X, W), t(W, Y). "
                   "t(X, Y) :- e(X, W), t(W, Y). "
                   "t(X, Y) :- t(X, W), e(W, Y). "
                   "t(X, Y) :- e(X, Y).",
                   "t(1, Y)"},
        FactorCase{"positive_sp", kPositiveSelectionPushing, "p(1, Y)"},
        FactorCase{"positive_sym", kPositiveSymmetric, "p(1, Y)"},
        FactorCase{"positive_ap", kPositiveAnswerPropagating, "p(1, Y)"},
        FactorCase{"left_tc",
                   "t(X, Y) :- t(X, W), e(W, Y). t(X, Y) :- e(X, Y).",
                   "t(1, Y)"},
        FactorCase{"right_tc",
                   "t(X, Y) :- e(X, W), t(W, Y). t(X, Y) :- e(X, Y).",
                   "t(1, Y)"},
        FactorCase{"static_reduction",
                   "p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z). "
                   "p(X, Y, Z) :- e0(X, Y, Z).",
                   "p(1, 2, U)"},
        FactorCase{"pseudo_left_linear",
                   "p(X, Y, Z) :- p(X, Y, W), d(W, X, Z). "
                   "p(X, Y, Z) :- e0(X, Y, Z).",
                   "p(1, 2, U)"}),
    [](const ::testing::TestParamInfo<FactorCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace factlog::core
