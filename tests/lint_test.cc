// Tests for the static program linter (analysis/lint.h): one positive and
// one negative case per diagnostic code, the stratification machinery it is
// built on, pipeline integration, and a re-lint of every committed program
// corpus (examples/programs/ must be error-free, tests/bad_programs/ must
// not be).

#include "analysis/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "api/engine.h"
#include "core/pipeline.h"
#include "tests/sweep_corpus.h"
#include "tests/test_util.h"

namespace factlog::analysis {
namespace {

using test::A;
using test::P;
using test::R;

int Count(const LintReport& report, const std::string& code) {
  return static_cast<int>(
      std::count_if(report.diagnostics.begin(), report.diagnostics.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

// ---- L001: safety / range restriction ----

TEST(LintTest, UnsafeHeadVariableIsError) {
  LintReport report = LintProgram(P("p(X, Y) :- e(X, X). ?- p(1, Y)."));
  EXPECT_EQ(Count(report, "L001"), 1);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.errors(), 1u);
}

TEST(LintTest, SafeRuleHasNoL001) {
  LintReport report =
      LintProgram(P("p(X, Y) :- e(X, Y). ?- p(1, Y)."));
  EXPECT_EQ(Count(report, "L001"), 0);
  EXPECT_TRUE(report.ok());
}

TEST(LintTest, BuiltinBindingSatisfiesSafety) {
  // Y is bound through affine propagation, Z through equal: no L001.
  LintReport report = LintProgram(
      P("p(X, Y, Z) :- e(X), affine(X, 2, 1, Y), equal(Z, Y). ?- p(1, Y, Z)."));
  EXPECT_EQ(Count(report, "L001"), 0);
  EXPECT_TRUE(report.ok());
}

TEST(LintTest, UnsafeAsWarningDowngrades) {
  LintOptions opts;
  opts.unsafe_as_warning = true;
  LintReport report = LintProgram(P("p(X, Y) :- e(X, X). ?- p(1, Y)."), opts);
  EXPECT_EQ(Count(report, "L001"), 1);
  EXPECT_TRUE(report.ok()) << "downgraded L001 must not reject";
  EXPECT_GE(report.warnings(), 1u);
}

// ---- L002: builtin executability ----

TEST(LintTest, UnboundGeqIsError) {
  LintReport report =
      LintProgram(P("big(X, Y) :- e(X, Y), geq(Z, 10). ?- big(1, Y)."));
  EXPECT_EQ(Count(report, "L002"), 1);
  EXPECT_FALSE(report.ok());
}

TEST(LintTest, ExecutableBuiltinChainHasNoL002) {
  // affine solves C from SC; order in the source does not matter.
  LintReport report = LintProgram(
      P("cost(P, C) :- affine(SC, 1, 0, C), madeof(P, S), cost(S, SC). "
        "cost(P, C) :- basic(P, C). ?- cost(1, C)."));
  EXPECT_EQ(Count(report, "L002"), 0);
  EXPECT_TRUE(report.ok());
}

TEST(LintTest, EqualBothSidesFreeIsError) {
  LintReport report =
      LintProgram(P("p(X) :- e(X), equal(Y, Z). ?- p(1)."));
  EXPECT_EQ(Count(report, "L002"), 1);
}

// ---- L003: arity consistency ----
// ParseProgram already runs ValidateArities, so conflicting uses must be
// assembled directly on the AST.

TEST(LintTest, ConflictingRuleAritiesAreError) {
  ast::Program program;
  program.AddRule(R("p(X) :- e(X)."));
  program.AddRule(R("q(X, Y) :- p(X, Y)."));
  program.set_query(A("q(1, Y)"));
  LintReport report = LintProgram(program);
  EXPECT_EQ(Count(report, "L003"), 1);
  EXPECT_FALSE(report.ok());
}

TEST(LintTest, EdbSchemaMismatchIsError) {
  ast::Program program;
  program.AddRule(R("p(X) :- e(X)."));
  program.set_query(A("p(1)"));
  LintOptions opts;
  opts.edb_arities["e"] = 2;  // the database says e/2, the program uses e/1
  LintReport report = LintProgram(program, opts);
  EXPECT_EQ(Count(report, "L003"), 1);
}

TEST(LintTest, BuiltinArityMisuseIsError) {
  ast::Program program;
  program.AddRule(R("p(X) :- e(X), geq(X)."));
  program.set_query(A("p(1)"));
  LintReport report = LintProgram(program);
  EXPECT_EQ(Count(report, "L003"), 1);
}

TEST(LintTest, ConsistentAritiesHaveNoL003) {
  LintReport report = LintProgram(
      P(".edb e/2. t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). "
        "?- t(1, Y)."));
  EXPECT_EQ(Count(report, "L003"), 0);
  EXPECT_TRUE(report.ok());
}

// ---- L004: stratification ----

TEST(LintTest, NegativeEdgeInsideSccIsError) {
  LintOptions opts;
  opts.negative_edges.insert({"p", "q"});
  LintReport report =
      LintProgram(P("p(X) :- q(X). q(X) :- p(X). ?- p(1)."), opts);
  EXPECT_EQ(Count(report, "L004"), 1);
  EXPECT_FALSE(report.ok());
}

TEST(LintTest, CrossStratumNegationIsFine) {
  LintOptions opts;
  opts.negative_edges.insert({"p", "q"});
  LintReport report =
      LintProgram(P("p(X) :- q(X). q(X) :- b(X). ?- p(1)."), opts);
  EXPECT_EQ(Count(report, "L004"), 0);
  EXPECT_TRUE(report.ok());
  ASSERT_TRUE(report.strata.count("p") == 1 && report.strata.count("q") == 1);
  EXPECT_GT(report.strata["p"], report.strata["q"]);
  EXPECT_GE(report.num_strata, 2);
}

TEST(LintTest, PositiveProgramIsSingleStratum) {
  LintReport report = LintProgram(
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y)."));
  EXPECT_EQ(Count(report, "L004"), 0);
  EXPECT_EQ(report.num_strata, 1);
}

// ---- L101: singleton variables ----

TEST(LintTest, SingletonVariableWarns) {
  LintReport report =
      LintProgram(P("p(X) :- e(X, Y). ?- p(1)."));
  EXPECT_EQ(Count(report, "L101"), 1);
  EXPECT_TRUE(report.ok()) << "singletons are warnings, not errors";
}

TEST(LintTest, UnderscorePrefixSilencesSingleton) {
  LintReport report = LintProgram(P("p(X) :- e(X, _Y). ?- p(1)."));
  EXPECT_EQ(Count(report, "L101"), 0);
}

// ---- L102: duplicate rules ----

TEST(LintTest, RenamedDuplicateRuleWarns) {
  LintReport report = LintProgram(
      P("t(X, Y) :- e(X, W), t(W, Y). t(A, B) :- e(A, C), t(C, B). "
        "t(X, Y) :- e(X, Y). ?- t(1, Y)."));
  EXPECT_EQ(Count(report, "L102"), 1);
  EXPECT_TRUE(report.ok());
}

TEST(LintTest, DistinctRulesAreNotDuplicates) {
  LintReport report = LintProgram(
      P("t(X, Y) :- e(X, W), t(W, Y). t(X, Y) :- t(X, W), e(W, Y). "
        "?- t(1, Y)."));
  EXPECT_EQ(Count(report, "L102"), 0);
}

// ---- L103: subsumed rules ----

TEST(LintTest, StricterRuleIsSubsumed) {
  // Rule 2 requires an extra e-step, so its answers are contained in
  // rule 1's (homomorphism maps rule 1's body into rule 2's).
  LintReport report = LintProgram(
      P("p(X, Y) :- e(X, Y). p(X, Y) :- e(X, Y), e(Y, W). ?- p(1, Y)."));
  EXPECT_EQ(Count(report, "L103"), 1);
  EXPECT_TRUE(report.ok());
}

TEST(LintTest, IncomparableRulesAreNotSubsumed) {
  LintReport report = LintProgram(
      P("p(X, Y) :- e(X, Y). p(X, Y) :- f(X, Y). ?- p(1, Y)."));
  EXPECT_EQ(Count(report, "L103"), 0);
}

TEST(LintTest, OversizedBodySkipsSubsumption) {
  LintOptions opts;
  opts.max_subsumption_body = 1;
  LintReport report = LintProgram(
      P("p(X, Y) :- e(X, Y). p(X, Y) :- e(X, Y), e(Y, W). ?- p(1, Y)."),
      opts);
  EXPECT_EQ(Count(report, "L103"), 0);
}

// ---- L104: cartesian-product joins ----

TEST(LintTest, DisconnectedLiteralsWarn) {
  LintReport report =
      LintProgram(P("p(X, Y) :- e(X, X), f(Y, Y). ?- p(1, Y)."));
  EXPECT_EQ(Count(report, "L104"), 1);
  EXPECT_TRUE(report.ok());
}

TEST(LintTest, ConnectedJoinHasNoL104) {
  LintReport report =
      LintProgram(P("p(X, Y) :- e(X, W), f(W, Y). ?- p(1, Y)."));
  EXPECT_EQ(Count(report, "L104"), 0);
}

// ---- L105 / L106: reachability ----

TEST(LintTest, RuleUnreachableFromQueryWarns) {
  LintReport report = LintProgram(
      P("t(X, Y) :- e(X, Y). u(X) :- f(X). ?- t(1, Y)."));
  EXPECT_EQ(Count(report, "L105"), 1);
  EXPECT_TRUE(report.ok());
}

TEST(LintTest, ReachableRulesHaveNoL105) {
  LintReport report = LintProgram(
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y)."));
  EXPECT_EQ(Count(report, "L105"), 0);
}

TEST(LintTest, UndefinedQueryPredicateWarns) {
  LintReport report = LintProgram(P("t(X, Y) :- e(X, Y). ?- zzz(1, Y)."));
  EXPECT_EQ(Count(report, "L106"), 1);
  EXPECT_TRUE(report.ok());
}

TEST(LintTest, EdbQueryIsDefined) {
  LintReport report = LintProgram(P(".edb e/2. t(X, Y) :- e(X, Y). "
                                    "?- e(1, Y)."));
  EXPECT_EQ(Count(report, "L106"), 0);
}

// ---- SCC condensation and stratification primitives ----

TEST(LintTest, CondenseGroupsMutualRecursion) {
  ast::Program p = P(R"(
    even(Y) :- odd(X), succ(X, Y).
    odd(Y) :- even(X), succ(X, Y).
    top(X) :- even(X).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  SccCondensation c = g.Condense();
  ASSERT_TRUE(c.scc_of.count("even") == 1 && c.scc_of.count("odd") == 1);
  EXPECT_EQ(c.scc_of["even"], c.scc_of["odd"]);
  EXPECT_NE(c.scc_of["top"], c.scc_of["even"]);
  // Components come out dependencies-first: the even/odd SCC precedes top's.
  EXPECT_LT(c.scc_of["even"], c.scc_of["top"]);
}

TEST(LintTest, StratifyCountsNegationDepth) {
  ast::Program p = P(R"(
    a(X) :- b(X).
    b(X) :- c(X).
    c(X) :- base(X).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  StratificationResult s =
      g.Stratify({{"a", "b"}, {"b", "c"}});
  EXPECT_TRUE(s.stratified);
  EXPECT_EQ(s.stratum["a"], s.stratum["b"] + 1);
  EXPECT_EQ(s.stratum["b"], s.stratum["c"] + 1);
  EXPECT_EQ(s.num_strata, 3);
}

// ---- Pipeline and engine integration ----

TEST(LintTest, CompileQueryRejectsLintErrors) {
  ast::Program p = P("p(X, Y) :- e(X, X). ?- p(1, Y).");
  auto compiled = core::CompileQuery(p, *p.query());
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(compiled.status().message().find("L001"), std::string::npos)
      << compiled.status().message();
}

TEST(LintTest, CompileQueryCarriesWarnings) {
  ast::Program p =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). "
        "u(X) :- f(X). ?- t(1, Y).");
  auto compiled = core::CompileQuery(p, *p.query());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(static_cast<int>(std::count_if(
                compiled->diagnostics.begin(), compiled->diagnostics.end(),
                [](const Diagnostic& d) { return d.code == "L105"; })),
            1);
  ASSERT_FALSE(compiled->trace.empty());
  EXPECT_EQ(compiled->trace.front().pass, "lint");
}

TEST(LintTest, EngineLintSeesDatabaseSchema) {
  api::Engine engine;
  engine.AddPair("e", 1, 2);
  // The engine knows e/2 from its database; a conflicting use is an error.
  auto report = engine.Lint("q(X) :- e(X). ?- q(1).");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->ok());
  bool saw_l003 = false;
  for (const Diagnostic& d : report->diagnostics) {
    if (d.code == "L003") saw_l003 = true;
  }
  EXPECT_TRUE(saw_l003);
}

// ---- Committed corpora stay honest ----

std::string ReadFileOrDie(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::filesystem::path> DlFilesIn(const std::string& rel) {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir =
      std::filesystem::path(FACTLOG_SOURCE_DIR) / rel;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".dl") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(LintTest, SweepCorpusIsLintClean) {
  for (const test::SweepProgram& sp : test::kSweepPrograms) {
    ast::Program program = P(sp.text);
    program.set_query(A(sp.query));
    LintReport report = LintProgram(program);
    EXPECT_TRUE(report.ok()) << sp.name << ": "
                             << RenderDiagnostics(report.diagnostics);
  }
}

TEST(LintTest, ExampleProgramsAreLintErrorFree) {
  std::vector<std::filesystem::path> files = DlFilesIn("examples/programs");
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    auto program = ast::ParseProgram(ReadFileOrDie(path));
    ASSERT_TRUE(program.ok()) << path << ": " << program.status().ToString();
    LintReport report = LintProgram(*program);
    EXPECT_EQ(report.errors(), 0u)
        << path << ":\n" << RenderDiagnostics(report.diagnostics);
  }
}

TEST(LintTest, BadProgramsAllFailLint) {
  std::vector<std::filesystem::path> files = DlFilesIn("tests/bad_programs");
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    auto program = ast::ParseProgram(ReadFileOrDie(path));
    ASSERT_TRUE(program.ok()) << path << ": " << program.status().ToString();
    LintReport report = LintProgram(*program);
    EXPECT_GT(report.errors(), 0u)
        << path << " is in bad_programs/ but lints clean";
  }
}

}  // namespace
}  // namespace factlog::analysis
