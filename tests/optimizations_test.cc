#include "core/optimizations.h"

#include <gtest/gtest.h>

#include "core/canonical.h"
#include "tests/test_util.h"

namespace factlog::core {
namespace {

using test::A;
using test::P;

OptimizationContext TcContext() {
  OptimizationContext ctx;
  ctx.bp = "bt";
  ctx.fp = "ft";
  ctx.magic_pred = "m";
  ctx.seed_args = {ast::Term::Int(5)};
  ctx.query_pred = "query";
  return ctx;
}

TEST(OptimizationPassTest, DeleteHeadInBodyRules) {
  ast::Program p = P(R"(
    bt(X) :- m(X), bt(X), ft(W).
    bt(X) :- m(X), e(X, Y).
  )");
  EXPECT_TRUE(DeleteHeadInBodyRules(&p));
  ASSERT_EQ(p.rules().size(), 1u);
  EXPECT_EQ(p.rules()[0].ToString(), "bt(X) :- m(X), e(X, Y).");
  EXPECT_FALSE(DeleteHeadInBodyRules(&p));
}

TEST(OptimizationPassTest, Prop51DeletesSubsumedMagicLiteral) {
  ast::Program p = P("ft(Y) :- m(X), bt(X), e(X, Y).");
  EXPECT_TRUE(DeleteSubsumedMagicLiterals(&p, TcContext()));
  EXPECT_EQ(p.rules()[0].ToString(), "ft(Y) :- bt(X), e(X, Y).");
}

TEST(OptimizationPassTest, Prop51RequiresIdenticalArguments) {
  ast::Program p = P("ft(Y) :- m(X), bt(W), e(X, Y), e(W, Y).");
  EXPECT_FALSE(DeleteSubsumedMagicLiterals(&p, TcContext()));
}

TEST(OptimizationPassTest, Prop52DeletesAnonymousBp) {
  // bt's argument occurs nowhere else and an ft literal is present.
  ast::Program p = P("ft(Y) :- bt(W), ft(U), e(U, Y).");
  EXPECT_TRUE(DeleteAnonymousFactorLiterals(&p, TcContext()));
  EXPECT_EQ(p.rules()[0].ToString(), "ft(Y) :- ft(U), e(U, Y).");
}

TEST(OptimizationPassTest, Prop52Symmetric) {
  // An all-singleton ft literal deletes when a bt literal is present.
  ast::Program p = P("m(W) :- bt(X), ft(Q), e(X, W).");
  EXPECT_TRUE(DeleteAnonymousFactorLiterals(&p, TcContext()));
  EXPECT_EQ(p.rules()[0].ToString(), "m(W) :- bt(X), e(X, W).");
}

TEST(OptimizationPassTest, Prop52KeepsBoundLiterals) {
  // bt(X)'s variable is used by e(X, Y): not anonymous, stays.
  ast::Program p = P("ft(Y) :- bt(X), ft(W), e(X, Y), d(W).");
  EXPECT_FALSE(DeleteAnonymousFactorLiterals(&p, TcContext()));
}

TEST(OptimizationPassTest, Prop53DeletesSeedBp) {
  ast::Program p = P("query(Y) :- bt(5), ft(Y).");
  EXPECT_TRUE(DeleteSeedFactorLiterals(&p, TcContext()));
  EXPECT_EQ(p.rules()[0].ToString(), "query(Y) :- ft(Y).");
}

TEST(OptimizationPassTest, Prop53RequiresSeedConstants) {
  ast::Program p = P("query(Y) :- bt(6), ft(Y).");
  EXPECT_FALSE(DeleteSeedFactorLiterals(&p, TcContext()));
}

TEST(OptimizationPassTest, UnreachableRulesDeleted) {
  ast::Program p = P(R"(
    query(Y) :- ft(Y).
    ft(Y) :- m(X), e(X, Y).
    bt(X) :- m(X), e(X, Y).
    m(5).
  )");
  EXPECT_TRUE(DeleteUnreachableRules(&p, "query"));
  for (const ast::Rule& r : p.rules()) {
    EXPECT_NE(r.head().predicate(), "bt");
  }
  ASSERT_EQ(p.rules().size(), 3u);
}

TEST(OptimizationPassTest, AnonymizeSingletons) {
  ast::Program p = P("ft(Y) :- bt(X), e(W, Y).");
  EXPECT_TRUE(AnonymizeSingletonVariables(&p));
  const ast::Rule& r = p.rules()[0];
  // X and W occur once: renamed to _-prefixed names; Y untouched.
  EXPECT_TRUE(r.body()[0].args()[0].var_name().rfind("_", 0) == 0);
  EXPECT_TRUE(r.body()[1].args()[0].var_name().rfind("_", 0) == 0);
  EXPECT_EQ(r.head().args()[0].var_name(), "Y");
}

TEST(OptimizationPassTest, DuplicateRulesDeleted) {
  ast::Program p = P(R"(
    ft(Y) :- m(X), e(X, Y).
    ft(B) :- m(A), e(A, B).
  )");
  EXPECT_TRUE(DeleteDuplicateRules(&p));
  EXPECT_EQ(p.rules().size(), 1u);
}

TEST(OptimizationPassTest, UniformEquivalenceDeletion) {
  // Example 5.3's final step: both derived rules are redundant given
  // m(W) :- ft(W) and ft(Y) :- m(X), e(X, Y).
  ast::Program p = P(R"(
    m(W) :- ft(W).
    m(W) :- m(X), e(X, W).
    m(5).
    ft(Y) :- ft(W), e(W, Y).
    ft(Y) :- m(X), e(X, Y).
    query(Y) :- ft(Y).
  )");
  OptimizeOptions opts;
  auto changed = DeleteUniformlyRedundantRules(&p, opts);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(*changed);
  ast::Program expected = P(R"(
    m(W) :- ft(W).
    m(5).
    ft(Y) :- m(X), e(X, Y).
    query(Y) :- ft(Y).
  )");
  EXPECT_TRUE(StructurallyEqual(p, expected)) << p.ToString();
}

TEST(OptimizationPassTest, UniformEquivalenceKeepsNeededRules) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  OptimizeOptions opts;
  auto changed = DeleteUniformlyRedundantRules(&p, opts);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(*changed);
  EXPECT_EQ(p.rules().size(), 2u);
}

TEST(OptimizationPassTest, UniformEquivalenceSkipsBuiltins) {
  ast::Program p = P(R"(
    t(Z) :- e(X), affine(X, 1, 1, Z).
    t(Z) :- e(X), affine(X, 1, 1, Z).
  )");
  OptimizeOptions opts;
  auto changed = DeleteUniformlyRedundantRules(&p, opts);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(*changed);  // conservative: builtins are not frozen
}

TEST(OptimizationPassTest, UeOrderCanMatter) {
  // Two mutually derivable rules: forward deletes the first, backward the
  // second — §7.4's order-dependence question.
  ast::Program forward = P(R"(
    a(X) :- b(X).
    a(X) :- c(X).
    b(X) :- c(X).
    c(X) :- b(X).
  )");
  ast::Program backward = forward;
  OptimizeOptions opts;
  opts.ue_order = UeOrder::kForward;
  ASSERT_TRUE(DeleteUniformlyRedundantRules(&forward, opts).ok());
  opts.ue_order = UeOrder::kBackward;
  ASSERT_TRUE(DeleteUniformlyRedundantRules(&backward, opts).ok());
  // Both shrink to three rules but not necessarily the same three.
  EXPECT_EQ(forward.rules().size(), 3u);
  EXPECT_EQ(backward.rules().size(), 3u);
  EXPECT_FALSE(StructurallyEqual(forward, backward));
}

TEST(StaticArgumentsTest, FindStatic) {
  // Example 5.1: position 0 is static; position 1 is not (U breaks it).
  ast::Program p = P(R"(
    p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).
    p(X, Y, Z) :- exit0(X, Y, Z).
  )");
  EXPECT_EQ(FindStaticArguments(p, "p", A("p(5, 6, U)")),
            (std::vector<int>{0}));
  // Free positions never qualify.
  EXPECT_EQ(FindStaticArguments(p, "p", A("p(X, 6, U)")),
            (std::vector<int>{}));
}

TEST(StaticArgumentsTest, FindViolating) {
  // Example 5.2: both bound positions are static, but only position 0's
  // variable mixes into the d atom.
  ast::Program p = P(R"(
    p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
    p(X, Y, Z) :- exit0(X, Y, Z).
  )");
  std::vector<int> statics = FindStaticArguments(p, "p", A("p(5, 6, U)"));
  EXPECT_EQ(statics, (std::vector<int>{0, 1}));
  EXPECT_EQ(FindViolatingStaticArguments(p, "p", A("p(5, 6, U)"), statics),
            (std::vector<int>{0}));
}

TEST(StaticArgumentsTest, ReduceSubstitutesAndDrops) {
  // Example 5.1's reduction.
  ast::Program p = P(R"(
    p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).
    p(X, Y, Z) :- exit0(X, Y, Z).
  )");
  auto reduced = ReduceStaticArguments(p, "p", A("p(5, 6, U)"), {0});
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  EXPECT_EQ(reduced->program.rules()[0].ToString(),
            reduced->predicate + "(Y, Z) :- a(5), " + reduced->predicate +
                "(Y, W), d(W, U), " + reduced->predicate + "(U, Z).");
  EXPECT_EQ(reduced->program.rules()[1].ToString(),
            reduced->predicate + "(Y, Z) :- exit0(5, Y, Z).");
  EXPECT_EQ(reduced->query.ToString(), reduced->predicate + "(6, U)");
}

TEST(StaticArgumentsTest, ReduceRejectsConstantHeads) {
  ast::Program p = P("p(5, Y) :- e(Y).");
  auto reduced = ReduceStaticArguments(p, "p", A("p(5, U)"), {0});
  ASSERT_FALSE(reduced.ok());
  EXPECT_EQ(reduced.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OptimizeProgramTest, Example53FullSequence) {
  // The complete Fig. 2 -> final-program sequence of Example 5.3.
  ast::Program fig2 = P(R"(
    m(5).
    m(W) :- m(X), bt(X), ft(W).
    bt(X) :- m(X), bt(X), ft(W), bt(W), ft(Y).
    ft(Y) :- m(X), bt(X), ft(W), bt(W), ft(Y).
    m(W) :- m(X), e(X, W).
    bt(X) :- m(X), e(X, W), bt(W), ft(Y).
    ft(Y) :- m(X), e(X, W), bt(W), ft(Y).
    bt(X) :- m(X), bt(X), ft(W), e(W, Y).
    ft(Y) :- m(X), bt(X), ft(W), e(W, Y).
    bt(X) :- m(X), e(X, Y).
    ft(Y) :- m(X), e(X, Y).
    query(Y) :- bt(5), ft(Y).
  )");
  auto optimized = OptimizeProgram(fig2, TcContext());
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  ast::Program expected = P(R"(
    m(W) :- ft(W).
    m(5).
    ft(Y) :- m(X), e(X, Y).
    query(Y) :- ft(Y).
  )");
  EXPECT_TRUE(StructurallyEqual(*optimized, expected))
      << optimized->ToString();
}

TEST(OptimizeProgramTest, PassesCanBeDisabled) {
  ast::Program fig2 = P(R"(
    m(5).
    bt(X) :- m(X), bt(X), ft(W).
    query(Y) :- bt(5), ft(Y).
    ft(Y) :- m(X), e(X, Y).
  )");
  OptimizeOptions opts;
  opts.apply_head_in_body = false;
  opts.apply_uniform_equivalence = false;
  opts.apply_prop_5_3 = false;
  opts.apply_unreachable = false;
  auto optimized = OptimizeProgram(fig2, TcContext(), opts);
  ASSERT_TRUE(optimized.ok());
  // The head-in-body rule survives.
  bool found = false;
  for (const ast::Rule& r : optimized->rules()) {
    if (r.head().predicate() == "bt" && !r.body().empty()) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace factlog::core
