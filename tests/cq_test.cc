#include "analysis/cq.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace factlog::analysis {
namespace {

using test::A;

ConjunctiveQuery CQ(const std::vector<std::string>& head,
                    const std::vector<std::string>& body) {
  std::vector<ast::Atom> atoms;
  for (const std::string& b : body) atoms.push_back(A(b));
  return ConjunctiveQuery::WithHeadVars(head, std::move(atoms));
}

TEST(CqTest, IdenticalQueriesContainEachOther) {
  ConjunctiveQuery q = CQ({"X"}, {"e(X, Y)"});
  EXPECT_TRUE(q.ContainedIn(q));
  EXPECT_TRUE(q.EquivalentTo(q));
}

TEST(CqTest, RenamedQueriesAreEquivalent) {
  ConjunctiveQuery a = CQ({"X"}, {"e(X, Y)"});
  ConjunctiveQuery b = CQ({"U"}, {"e(U, V)"});
  EXPECT_TRUE(a.EquivalentTo(b));
}

TEST(CqTest, MoreConstrainedIsContained) {
  // (X) :- e(X,Y), f(Y)  ⊆  (X) :- e(X,Y); not conversely.
  ConjunctiveQuery small = CQ({"X"}, {"e(X, Y)", "f(Y)"});
  ConjunctiveQuery big = CQ({"X"}, {"e(X, Y)"});
  EXPECT_TRUE(small.ContainedIn(big));
  EXPECT_FALSE(big.ContainedIn(small));
}

TEST(CqTest, EmptyBodyIsTop) {
  ConjunctiveQuery top = CQ({"X"}, {});
  ConjunctiveQuery some = CQ({"X"}, {"r(X)"});
  EXPECT_TRUE(some.ContainedIn(top));
  EXPECT_FALSE(top.ContainedIn(some));
  EXPECT_TRUE(top.ContainedIn(top));
}

TEST(CqTest, JoinVariableFolding) {
  // The classic: (X) :- e(X,Y), e(Y,Z)  ⊆  (X) :- e(X,Y) via hom Y,Z -> Y.
  ConjunctiveQuery path2 = CQ({"X"}, {"e(X, Y)", "e(Y, Z)"});
  ConjunctiveQuery path1 = CQ({"X"}, {"e(X, Y)"});
  EXPECT_TRUE(path2.ContainedIn(path1));
  EXPECT_FALSE(path1.ContainedIn(path2));
}

TEST(CqTest, SelfJoinFoldsIntoLoop) {
  // (X) :- e(X,X)  ⊆  (X) :- e(X,Y), e(Y,X): hom maps Y -> X.
  ConjunctiveQuery loop = CQ({"X"}, {"e(X, X)"});
  ConjunctiveQuery cycle2 = CQ({"X"}, {"e(X, Y)", "e(Y, X)"});
  EXPECT_TRUE(loop.ContainedIn(cycle2));
  EXPECT_FALSE(cycle2.ContainedIn(loop));
}

TEST(CqTest, HeadConstantsMatter) {
  ConjunctiveQuery at5({ast::Term::Int(5)}, {A("e(5)")});
  ConjunctiveQuery any = CQ({"X"}, {"e(X)"});
  EXPECT_TRUE(at5.ContainedIn(any));
  EXPECT_FALSE(any.ContainedIn(at5));
}

TEST(CqTest, DifferentPredicatesNotContained) {
  ConjunctiveQuery a = CQ({"X"}, {"r1(X)"});
  ConjunctiveQuery b = CQ({"X"}, {"r2(X)"});
  EXPECT_FALSE(a.ContainedIn(b));
  EXPECT_FALSE(b.ContainedIn(a));
}

TEST(CqTest, ArityMismatchNotContained) {
  ConjunctiveQuery a = CQ({"X"}, {"e(X)"});
  ConjunctiveQuery b = CQ({"X", "Y"}, {"e(X)", "e(Y)"});
  EXPECT_FALSE(a.ContainedIn(b));
}

TEST(CqTest, SharedVariableNamesDoNotConfuse) {
  // Both queries use X and Y with different roles; renaming-apart must
  // prevent cyclic bindings.
  ConjunctiveQuery a = CQ({"X"}, {"e(X, Y)", "f(Y, X)"});
  ConjunctiveQuery b = CQ({"Y"}, {"e(Y, X)", "f(X, Y)"});
  EXPECT_TRUE(a.EquivalentTo(b));
}

TEST(CqNormalizeTest, EqualChasesIntoSubstitution) {
  ConjunctiveQuery q = CQ({"X"}, {"e(X, Y)", "equal(Y, 5)"});
  ASSERT_TRUE(q.Normalize().ok());
  EXPECT_FALSE(q.unsatisfiable());
  ASSERT_EQ(q.body().size(), 1u);
  EXPECT_EQ(q.body()[0].ToString(), "e(X, 5)");
}

TEST(CqNormalizeTest, EqualOnHeadVariable) {
  ConjunctiveQuery q = CQ({"X"}, {"equal(X, 7)"});
  ASSERT_TRUE(q.Normalize().ok());
  ASSERT_EQ(q.head().size(), 1u);
  EXPECT_EQ(q.head()[0], ast::Term::Int(7));
  EXPECT_TRUE(q.body().empty());
}

TEST(CqNormalizeTest, ConflictingConstantsAreUnsat) {
  ConjunctiveQuery q = CQ({"X"}, {"equal(X, 5)", "equal(X, 6)"});
  ASSERT_TRUE(q.Normalize().ok());
  EXPECT_TRUE(q.unsatisfiable());
}

TEST(CqNormalizeTest, UnsatIsContainedEverywhere) {
  ConjunctiveQuery bad = CQ({"X"}, {"equal(X, 5)", "equal(X, 6)"});
  ConjunctiveQuery any = CQ({"X"}, {"r(X)"});
  EXPECT_TRUE(bad.ContainedIn(any));
  EXPECT_FALSE(any.ContainedIn(bad));
}

TEST(CqNormalizeTest, VariableChains) {
  ConjunctiveQuery q = CQ({"X"}, {"equal(X, Y)", "equal(Y, Z)", "e(Z)"});
  ASSERT_TRUE(q.Normalize().ok());
  ASSERT_EQ(q.body().size(), 1u);
  // X, Y, Z collapse; the remaining atom mentions the representative of X.
  EXPECT_TRUE(q.body()[0].ContainsVar(q.head()[0].var_name()));
}

TEST(CqNormalizeTest, CompoundEqualDecomposes) {
  ConjunctiveQuery q = CQ({"H"}, {"equal(L, [1, 2])", "equal(L, [H | T])"});
  ASSERT_TRUE(q.Normalize().ok());
  EXPECT_FALSE(q.unsatisfiable());
  EXPECT_EQ(q.head()[0], ast::Term::Int(1));
}

TEST(CqNormalizeTest, IncompatibleCompoundsUnsat) {
  ConjunctiveQuery q = CQ({"X"}, {"equal(X, [1])", "equal(X, [2])"});
  ASSERT_TRUE(q.Normalize().ok());
  EXPECT_TRUE(q.unsatisfiable());
}

TEST(CqTest, StructuralAtomsAreUninterpreted) {
  // $cons atoms behave like EDB atoms for containment.
  ConjunctiveQuery a = CQ({"X"}, {"$cons(X, T, L)", "p(X)"});
  ConjunctiveQuery b = CQ({"X"}, {"$cons(X, T, L)"});
  EXPECT_TRUE(a.ContainedIn(b));
  EXPECT_FALSE(b.ContainedIn(a));
}

TEST(CqTest, ToStringRendersBodyAndHead) {
  ConjunctiveQuery q = CQ({"X"}, {"e(X, Y)"});
  EXPECT_EQ(q.ToString(), "(X) :- e(X, Y)");
  ConjunctiveQuery top = CQ({"Y"}, {});
  EXPECT_EQ(top.ToString(), "(Y) :- true");
}

}  // namespace
}  // namespace factlog::analysis
