// Property tests mirroring the proof obligations of Theorems 4.1-4.3 (the
// derivation-tree arguments illustrated by Figs. 3-6).
//
// For factorable programs and random EDBs:
//   (1) fp contains exactly the answers to the query (Theorems' statement);
//   (2) every fp(a) fact in the factored program corresponds to a derivable
//       p^a(x0, a) fact in the Magic program (the induction invariant);
//   (3) every magic fact of the factored program is a magic fact of the
//       Magic program (the m_p case of the induction);
//   (4) derivation trees reconstructed from provenance satisfy
//       Definition 2.1 (leaves are EDB facts; internal nodes rule
//       instantiations).

#include <gtest/gtest.h>

#include <random>

#include "core/pipeline.h"
#include "eval/provenance.h"
#include "eval/seminaive.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"

namespace factlog {
namespace {

using test::A;
using test::P;

struct TheoremCase {
  const char* name;
  const char* program;
  const char* query;
  // Predicate names in the transformed programs.
  const char* adorned_pred;
  const char* fp;
  const char* magic_pred;
};

class TheoremInvariantTest : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(TheoremInvariantTest, FactoredFactsEmbedIntoMagicDerivations) {
  const TheoremCase& c = GetParam();
  ast::Program p = P(c.program);
  ast::Atom q = A(c.query);
  core::PipelineOptions opts;
  opts.apply_optimizations = false;  // compare against the raw factored P^fact
  auto pipe = core::OptimizeQuery(p, q, opts);
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();
  ASSERT_TRUE(pipe->factoring_applied);

  std::mt19937_64 rng(20260611);
  for (int trial = 0; trial < 12; ++trial) {
    eval::Database db_magic, db_fact;
    std::uniform_int_distribution<int64_t> node(1, 6);
    std::uniform_int_distribution<int> count(0, 10);
    // Random small EDB over every EDB predicate of the source program.
    for (const auto& [name, arity] : p.EdbPredicates()) {
      int tuples = count(rng);
      for (int t = 0; t < tuples; ++t) {
        std::vector<ast::Term> args;
        for (size_t i = 0; i < arity; ++i) args.push_back(ast::Term::Int(node(rng)));
        ast::Atom fact(name, args);
        ASSERT_TRUE(db_magic.AddFact(fact).ok());
        ASSERT_TRUE(db_fact.AddFact(fact).ok());
      }
    }

    auto magic_result = eval::Evaluate(pipe->magic.program, &db_magic);
    ASSERT_TRUE(magic_result.ok());
    auto fact_result = eval::Evaluate(pipe->factored->program, &db_fact);
    ASSERT_TRUE(fact_result.ok());

    const eval::Relation* padorned = magic_result->Find(c.adorned_pred);
    const eval::Relation* fp_rel = fact_result->Find(c.fp);

    // Invariant (2): each fp(a) appears as p^a(x0, a) in the Magic program.
    // x0 is the seed; with the query binding one argument, p^a rows are
    // (x0, a).
    if (fp_rel != nullptr) {
      for (size_t r = 0; r < fp_rel->size(); ++r) {
        ast::Term a = db_fact.store().ToTerm(fp_rel->row(r)[0]);
        ASSERT_NE(padorned, nullptr);
        // Translate through the magic-side store.
        auto a_id = db_magic.store().FromTerm(a);
        ASSERT_TRUE(a_id.ok());
        auto seed_id =
            db_magic.store().FromTerm(pipe->magic.seed.args()[0]);
        ASSERT_TRUE(seed_id.ok());
        std::vector<eval::ValueId> row = {*seed_id, *a_id};
        EXPECT_TRUE(padorned->Contains(row.data()))
            << "fp fact " << a.ToString()
            << " has no p^a(x0, a) counterpart (trial " << trial << ")";
      }
    }

    // Invariant (3): magic facts coincide.
    const eval::Relation* m_magic = magic_result->Find(c.magic_pred);
    const eval::Relation* m_fact = fact_result->Find(c.magic_pred);
    size_t magic_count = m_magic == nullptr ? 0 : m_magic->size();
    size_t fact_count = m_fact == nullptr ? 0 : m_fact->size();
    EXPECT_EQ(magic_count, fact_count) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, TheoremInvariantTest,
    ::testing::Values(
        TheoremCase{"three_form_tc",
                    "t(X, Y) :- t(X, W), t(W, Y). "
                    "t(X, Y) :- e(X, W), t(W, Y). "
                    "t(X, Y) :- t(X, W), e(W, Y). "
                    "t(X, Y) :- e(X, Y).",
                    "t(1, Y)", "t_bf", "ft", "m_t_bf"},
        TheoremCase{"right_tc",
                    "t(X, Y) :- e(X, W), t(W, Y). t(X, Y) :- e(X, Y).",
                    "t(1, Y)", "t_bf", "ft", "m_t_bf"},
        TheoremCase{"left_tc",
                    "t(X, Y) :- t(X, W), e(W, Y). t(X, Y) :- e(X, Y).",
                    "t(1, Y)", "t_bf", "ft", "m_t_bf"}),
    [](const ::testing::TestParamInfo<TheoremCase>& info) {
      return info.param.name;
    });

TEST(DerivationTreeTest, TreesSatisfyDefinition21) {
  // Every internal node of a reconstructed derivation tree is a rule
  // instantiation; every leaf is an EDB fact or a program fact.
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  eval::Database db;
  workload::MakeChain(6, "e", &db);
  eval::EvalOptions opts;
  opts.track_provenance = true;
  auto result = eval::Evaluate(p, &db, opts);
  ASSERT_TRUE(result.ok());

  const eval::Relation* t = result->Find("t");
  ASSERT_NE(t, nullptr);
  for (size_t r = 0; r < t->size(); ++r) {
    eval::FactKey fact{"t", {t->row(r)[0], t->row(r)[1]}};
    eval::DerivationTree tree =
        BuildDerivationTree(result->provenance(), fact);
    // Walk the tree checking Definition 2.1's two clauses.
    std::vector<const eval::DerivationTree*> stack = {&tree};
    while (!stack.empty()) {
      const eval::DerivationTree* node = stack.back();
      stack.pop_back();
      if (node->children.empty()) {
        // Leaf: must be an EDB fact (rule_index == -1 for "e").
        if (node->fact.predicate == "e") {
          EXPECT_EQ(node->rule_index, -1);
        }
      } else {
        ASSERT_GE(node->rule_index, 0);
        ASSERT_LT(node->rule_index,
                  static_cast<int>(p.rules().size()));
        // The node's rule body size matches its child count (positive
        // relation literals only; this program has none other).
        EXPECT_EQ(node->children.size(),
                  p.rules()[node->rule_index].body().size());
      }
      for (const auto& child : node->children) stack.push_back(&child);
    }
    // Heights grow with distance along the chain: t(1, k+1) needs k rule
    // applications.
  }
  // Spot-check a specific height: t(1,6) derives via 5 e-steps.
  eval::FactKey far{"t", {db.store().InternInt(1), db.store().InternInt(6)}};
  eval::DerivationTree tree = BuildDerivationTree(result->provenance(), far);
  EXPECT_EQ(tree.Height(), 6u);
}

TEST(DerivationTreeTest, FactoredProgramAnswersHaveMagicDerivations) {
  // The Theorem 4.1 statement on concrete data: every fp answer has a
  // derivation tree for p^a(x0, a) in P^mg whose root rule is a modified
  // original rule.
  ast::Program p = P(R"(
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto pipe = core::OptimizeQuery(p, A("t(1, Y)"));
  ASSERT_TRUE(pipe.ok());
  eval::Database db;
  workload::MakeChain(5, "e", &db);
  db.AddPair("e", 2, 5);
  eval::EvalOptions opts;
  opts.track_provenance = true;
  auto magic_result = eval::Evaluate(pipe->magic.program, &db, opts);
  ASSERT_TRUE(magic_result.ok());
  const eval::Relation* t_bf = magic_result->Find("t_bf");
  ASSERT_NE(t_bf, nullptr);
  for (size_t r = 0; r < t_bf->size(); ++r) {
    eval::FactKey fact{"t_bf", {t_bf->row(r)[0], t_bf->row(r)[1]}};
    eval::DerivationTree tree =
        BuildDerivationTree(magic_result->provenance(), fact);
    EXPECT_GE(tree.rule_index, 0);
    EXPECT_GE(tree.Height(), 2u);  // at least a rule over EDB/magic facts
  }
}

}  // namespace
}  // namespace factlog
