#include "analysis/adornment.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/list_gen.h"

namespace factlog::analysis {
namespace {

using test::A;
using test::P;

TEST(AdornmentTest, ForQueryMarksGroundPositionsBound) {
  EXPECT_EQ(Adornment::ForQuery(A("t(5, Y)")).pattern(), "bf");
  EXPECT_EQ(Adornment::ForQuery(A("t(X, 5)")).pattern(), "fb");
  EXPECT_EQ(Adornment::ForQuery(A("t(X, Y)")).pattern(), "ff");
  EXPECT_EQ(Adornment::ForQuery(A("t(5, 6)")).pattern(), "bb");
  // Compound ground terms are bound; compound terms with variables free.
  EXPECT_EQ(Adornment::ForQuery(A("p(X, [1, 2])")).pattern(), "fb");
  EXPECT_EQ(Adornment::ForQuery(A("p(X, [1 | T])")).pattern(), "ff");
}

TEST(AdornmentTest, PositionsAndCounts) {
  Adornment a("bfb");
  EXPECT_EQ(a.NumBound(), 2u);
  EXPECT_EQ(a.BoundPositions(), (std::vector<int>{0, 2}));
  EXPECT_EQ(a.FreePositions(), (std::vector<int>{1}));
  EXPECT_TRUE(a.IsBound(0));
  EXPECT_FALSE(a.IsBound(1));
}

TEST(AdornmentTest, AdornedPredicateName) {
  AdornedPredicate ap{"t", Adornment("bf")};
  EXPECT_EQ(ap.Name(), "t_bf");
}

TEST(AdornTest, RightLinearTc) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto adorned = Adorn(p, A("t(5, Y)"));
  ASSERT_TRUE(adorned.ok()) << adorned.status().ToString();
  EXPECT_EQ(adorned->query().ToString(), "t_bf(5, Y)");
  ASSERT_EQ(adorned->predicates().size(), 1u);
  EXPECT_EQ(adorned->predicates().begin()->first, "t_bf");
  // Both rules adorned; the recursive occurrence is t_bf (W bound via e).
  ASSERT_EQ(adorned->program().rules().size(), 2u);
  EXPECT_EQ(adorned->program().rules()[0].ToString(),
            "t_bf(X, Y) :- e(X, W), t_bf(W, Y).");
}

TEST(AdornTest, SipBindsThroughEdbLiterals) {
  // W is bound only after e(X, W); the occurrence is t_bf, not t_ff.
  ast::Program p = P(R"(
    t(X, Y) :- t(W, Y), e(X, W).
    t(X, Y) :- e(X, Y).
  )");
  auto adorned = Adorn(p, A("t(5, Y)"));
  ASSERT_TRUE(adorned.ok());
  // Body order is t(W,Y) first: W is NOT yet bound there.
  EXPECT_EQ(adorned->predicates().count("t_ff"), 1u);
}

TEST(AdornTest, AnswersBindFreeArguments) {
  // After t(X, W), W is bound, so the second occurrence is t_bf.
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto adorned = Adorn(p, A("t(5, Y)"));
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->predicates().size(), 1u);  // only t_bf reachable
  EXPECT_EQ(adorned->rule_info()[0].body[0]->Name(), "t_bf");
  EXPECT_EQ(adorned->rule_info()[0].body[1]->Name(), "t_bf");
}

TEST(AdornTest, MultipleAdornmentsReachable) {
  // The second rule flips the argument roles, producing t_fb from t_bf.
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(Y, X).
  )");
  auto adorned = Adorn(p, A("t(5, Y)"));
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->predicates().size(), 2u);
  EXPECT_EQ(adorned->predicates().count("t_bf"), 1u);
  EXPECT_EQ(adorned->predicates().count("t_fb"), 1u);
}

TEST(AdornTest, PmemQueryAdornsFb) {
  ast::Program p = workload::MakePmemProgram(3);
  auto adorned = Adorn(p, *p.query());
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->query_predicate().Name(), "pmem_fb");
  EXPECT_EQ(adorned->predicates().size(), 1u);
}

TEST(AdornTest, NonIdbQueryRejected) {
  ast::Program p = P("t(X) :- e(X).");
  auto adorned = Adorn(p, A("e(5)"));
  ASSERT_FALSE(adorned.ok());
  EXPECT_EQ(adorned.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdornTest, QueryRuleStaysNonRecursivePredicate) {
  // Query on a non-recursive wrapper predicate adorns both predicates.
  ast::Program p = P(R"(
    q(Y) :- t(5, Y).
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  auto adorned = Adorn(p, A("q(Y)"));
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->predicates().count("q_f"), 1u);
  EXPECT_EQ(adorned->predicates().count("t_bf"), 1u);
}

}  // namespace
}  // namespace factlog::analysis
