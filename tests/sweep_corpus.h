// The shared integration-sweep corpus: (program, query) pairs times workload
// generators. integration_sweep_test.cc checks the optimizer pipeline
// preserves answers over it; exec_test.cc checks the parallel fixpoint
// reproduces the sequential evaluator's fact sets over it at every thread
// count.

#ifndef FACTLOG_TESTS_SWEEP_CORPUS_H_
#define FACTLOG_TESTS_SWEEP_CORPUS_H_

#include "eval/database.h"
#include "workload/graph_gen.h"

namespace factlog::test {

struct SweepProgram {
  const char* name;
  const char* text;
  const char* query;
};

inline constexpr SweepProgram kSweepPrograms[] = {
    {"right_tc", "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).",
     "t(1, Y)"},
    {"left_tc", "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y).",
     "t(1, Y)"},
    {"nonlinear_tc", "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), t(W, Y).",
     "t(1, Y)"},
    {"three_form_tc",
     "t(X, Y) :- t(X, W), t(W, Y). t(X, Y) :- e(X, W), t(W, Y). "
     "t(X, Y) :- t(X, W), e(W, Y). t(X, Y) :- e(X, Y).",
     "t(1, Y)"},
    {"reverse_bound", "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).",
     "t(X, 8)"},
    {"two_hop_exit",
     "t(X, Y) :- e(X, W), e(W, Y). t(X, Y) :- e(X, W), t(W, Y).",
     "t(1, Y)"},
};
inline constexpr int kNumSweepPrograms =
    static_cast<int>(sizeof(kSweepPrograms) / sizeof(kSweepPrograms[0]));

struct SweepWorkload {
  const char* name;
  void (*make)(eval::Database* db);
};

namespace sweep_internal {
inline void Chain(eval::Database* db) { workload::MakeChain(24, "e", db); }
inline void Cycle(eval::Database* db) { workload::MakeCycle(16, "e", db); }
inline void Tree(eval::Database* db) { workload::MakeTree(2, 4, "e", db); }
inline void Grid(eval::Database* db) { workload::MakeGrid(5, 5, "e", db); }
inline void Random(eval::Database* db) {
  workload::MakeChain(12, "e", db);
  workload::MakeRandomGraph(12, 24, 1234, "e", db);
}
inline void SelfLoops(eval::Database* db) {
  workload::MakeChain(8, "e", db);
  db->AddPair("e", 1, 1);
  db->AddPair("e", 5, 5);
}
inline void Empty(eval::Database*) {}
}  // namespace sweep_internal

inline constexpr SweepWorkload kSweepWorkloads[] = {
    {"chain", sweep_internal::Chain},
    {"cycle", sweep_internal::Cycle},
    {"tree", sweep_internal::Tree},
    {"grid", sweep_internal::Grid},
    {"random_plus_chain", sweep_internal::Random},
    {"self_loops", sweep_internal::SelfLoops},
    {"empty", sweep_internal::Empty},
};
inline constexpr int kNumSweepWorkloads =
    static_cast<int>(sizeof(kSweepWorkloads) / sizeof(kSweepWorkloads[0]));

}  // namespace factlog::test

#endif  // FACTLOG_TESTS_SWEEP_CORPUS_H_
