#include "analysis/dependency_graph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace factlog::analysis {
namespace {

using test::P;

TEST(DependencyGraphTest, ReachabilityFollowsBodyReferences) {
  ast::Program p = P(R"(
    a(X) :- b(X), c(X).
    b(X) :- d(X).
    c(X) :- e(X).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  std::set<std::string> from_a = g.ReachableFrom("a");
  EXPECT_EQ(from_a, (std::set<std::string>{"b", "c", "d", "e"}));
  EXPECT_EQ(g.ReachableFrom("b"), (std::set<std::string>{"d"}));
  EXPECT_TRUE(g.ReachableFrom("zzz").empty());
}

TEST(DependencyGraphTest, DirectRecursion) {
  ast::Program p = P("t(X, Y) :- e(X, Y).\n t(X, Y) :- e(X, W), t(W, Y).");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_TRUE(g.IsRecursive("t"));
  EXPECT_FALSE(g.IsRecursive("e"));
  EXPECT_TRUE(g.IsDirectlyRecursiveOnly("t"));
}

TEST(DependencyGraphTest, MutualRecursion) {
  ast::Program p = P(R"(
    even(X) :- zero(X).
    even(Y) :- odd(X), succ(X, Y).
    odd(Y) :- even(X), succ(X, Y).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_TRUE(g.IsRecursive("even"));
  EXPECT_TRUE(g.IsRecursive("odd"));
  EXPECT_FALSE(g.IsDirectlyRecursiveOnly("even"));
}

TEST(DependencyGraphTest, NonRecursiveProgram) {
  ast::Program p = P("q(X) :- e(X).");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_FALSE(g.IsRecursive("q"));
  EXPECT_FALSE(g.IsDirectlyRecursiveOnly("q"));
}

}  // namespace
}  // namespace factlog::analysis
