#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "core/canonical.h"
#include "eval/seminaive.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"
#include "workload/list_gen.h"

namespace factlog::core {
namespace {

using test::A;
using test::P;

TEST(PipelineTest, ThreeFormTcProducesPaperFinalProgram) {
  // Example 1.1 / 4.2 / 5.3 end to end: the 4-rule unary program.
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
    ?- t(5, Y).
  )");
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->factoring_applied);
  EXPECT_EQ(result->factorability.cls, FactorClass::kSelectionPushing);
  ASSERT_TRUE(result->optimized.has_value());
  ast::Program expected = P(R"(
    m_t_bf(W) :- ft(W).
    m_t_bf(5).
    ft(Y) :- m_t_bf(X), e(X, Y).
    query(Y) :- ft(Y).
    ?- query(Y).
  )");
  EXPECT_TRUE(StructurallyEqual(*result->optimized, expected))
      << result->optimized->ToString();
  EXPECT_EQ(result->final_query().ToString(), "query(Y)");
}

TEST(PipelineTest, FinalProgramHasUnaryRecursivePredicates) {
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
    ?- t(5, Y).
  )");
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok());
  // Every IDB predicate of the final program is unary: the arity reduction
  // the paper is about.
  for (const ast::Rule& r : result->optimized->rules()) {
    EXPECT_LE(r.head().arity(), 1u) << r.ToString();
  }
}

TEST(PipelineTest, FinalProgramComputesCorrectAnswers) {
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
    ?- t(1, Y).
  )");
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok());
  eval::Database db;
  workload::MakeChain(50, "e", &db);
  auto answers = eval::EvaluateQuery(result->final_program(),
                                     result->final_query(), &db);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->rows.size(), 49u);
}

TEST(PipelineTest, FactCountIsLinearNotQuadratic) {
  // The headline claim: Magic alone materializes O(n^2) t_bf facts on a
  // chain queried from node 1; the factored program stores O(n).
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
    ?- t(1, Y).
  )");
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok());

  const int64_t n = 60;
  eval::Database db1, db2;
  workload::MakeChain(n, "e", &db1);
  workload::MakeChain(n, "e", &db2);

  auto magic = eval::Evaluate(result->magic.program, &db1);
  ASSERT_TRUE(magic.ok());
  auto factored = eval::Evaluate(*result->optimized, &db2);
  ASSERT_TRUE(factored.ok());

  // t_bf holds all (i, j) pairs with i <= j reachable from 1: Theta(n^2).
  EXPECT_GT(magic->SizeOf("t_bf"), static_cast<size_t>(n * (n - 1) / 4));
  // The factored program's total IDB is O(n).
  EXPECT_LT(factored->stats().total_facts, static_cast<size_t>(4 * n));
}

TEST(PipelineTest, PmemExample46FinalProgram) {
  ast::Program p = workload::MakePmemProgram(3);
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->factoring_applied);
  ASSERT_TRUE(result->optimized.has_value());
  // The paper's final listing: seed, destructuring magic rule, fpmem exit,
  // query.
  ast::Program expected = P(R"(
    m_pmem_fb([1, 2, 3]).
    m_pmem_fb(T) :- m_pmem_fb([H | T]).
    fpmem(X) :- m_pmem_fb([X | T]), p(X).
    query(X) :- fpmem(X).
    ?- query(X).
  )");
  EXPECT_TRUE(StructurallyEqual(*result->optimized, expected))
      << result->optimized->ToString();
}

TEST(PipelineTest, PmemFinalProgramIsLinear) {
  const int64_t n = 40;
  ast::Program p = workload::MakePmemProgram(n);
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok());
  eval::Database db;
  workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
  auto eval_result = eval::Evaluate(*result->optimized, &db);
  ASSERT_TRUE(eval_result.ok());
  // m_pmem holds the n suffixes plus nil; fpmem and query the n members:
  // ~3n + 1 facts, i.e. O(n) (vs O(n^2) for the unfactored Magic program).
  EXPECT_LT(eval_result->stats().total_facts, static_cast<uint64_t>(4 * n));
  auto answers = eval::ExtractAnswers(result->final_query(),
                                      &eval_result.value(), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), static_cast<size_t>(n));
}

TEST(PipelineTest, NotFactorableFallsBackToMagic) {
  // Query from a leaf (node 16 in a binary tree of depth 4): leaves are the
  // only nodes with flat partners.
  ast::Program p = P(R"(
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    ?- sg(16, Y).
  )");
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->factoring_applied);
  EXPECT_FALSE(result->optimized.has_value());
  // final_program() is the Magic program and still answers correctly.
  eval::Database db;
  workload::MakeSameGeneration(2, 4, &db);
  auto magic_answers = eval::EvaluateQuery(result->final_program(),
                                           result->final_query(), &db);
  auto orig_answers = eval::EvaluateQuery(p, *p.query(), &db);
  ASSERT_TRUE(magic_answers.ok());
  ASSERT_TRUE(orig_answers.ok());
  EXPECT_EQ(magic_answers->rows, orig_answers->rows);
  EXPECT_FALSE(orig_answers->rows.empty());
}

TEST(PipelineTest, Example51StaticReduction) {
  ast::Program p = P(R"(
    p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).
    p(X, Y, Z) :- exit0(X, Y, Z).
    ?- p(5, 6, U).
  )");
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->static_reduction_applied);
  EXPECT_EQ(result->reduced_positions, (std::vector<int>{0}));
  EXPECT_TRUE(result->factoring_applied);
}

TEST(PipelineTest, Example52PseudoLeftLinear) {
  ast::Program p = P(R"(
    p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
    p(X, Y, Z) :- exit0(X, Y, Z).
    ?- p(5, 6, U).
  )");
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->static_reduction_applied);
  EXPECT_EQ(result->reduced_positions, (std::vector<int>{0}));
  ASSERT_TRUE(result->factoring_applied);
  // The reduced program is left-linear; the query constant 5 lands inside
  // the d atom, as in the paper's listing.
  bool has_const_in_d = false;
  for (const ast::Rule& r : result->optimized->rules()) {
    for (const ast::Atom& b : r.body()) {
      if (b.predicate() == "d" && b.args()[1] == ast::Term::Int(5)) {
        has_const_in_d = true;
      }
    }
  }
  EXPECT_TRUE(has_const_in_d) << result->optimized->ToString();
}

TEST(PipelineTest, StaticReductionCanBeDisabled) {
  ast::Program p = P(R"(
    p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
    p(X, Y, Z) :- exit0(X, Y, Z).
    ?- p(5, 6, U).
  )");
  PipelineOptions opts;
  opts.try_static_reduction = false;
  auto result = OptimizeQuery(p, *p.query(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->static_reduction_applied);
  EXPECT_FALSE(result->factoring_applied);
}

TEST(PipelineTest, OptimizationsCanBeDisabled) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
    ?- t(5, Y).
  )");
  PipelineOptions opts;
  opts.apply_optimizations = false;
  auto result = OptimizeQuery(p, *p.query(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->factoring_applied);
  EXPECT_FALSE(result->optimized.has_value());
  // final_program() falls back to the raw factored program.
  EXPECT_EQ(&result->final_program(), &result->factored->program);
}

TEST(PipelineTest, TraceRecordsDecisions) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
    ?- t(5, Y).
  )");
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok());
  std::string all = TraceToString(result->trace);
  EXPECT_NE(all.find("t_bf"), std::string::npos);
  EXPECT_NE(all.find("selection-pushing"), std::string::npos);
  EXPECT_NE(all.find("factored"), std::string::npos);
  // The trace is structured: every executed pass contributes an entry with
  // its name and rule counts. Compilation opens with the mandatory lint
  // pass; the strategy's own passes follow.
  ASSERT_FALSE(result->trace.empty());
  EXPECT_EQ(result->trace.front().pass, "lint");
  ASSERT_GT(result->trace.size(), 1u);
  EXPECT_EQ(result->trace[1].pass, "adorn");
  bool saw_factoring_pass = false;
  for (const PassTraceEntry& entry : result->trace) {
    if (entry.pass == "factoring") {
      saw_factoring_pass = true;
      EXPECT_TRUE(entry.applied);
      EXPECT_GT(entry.rules_after, 0u);
    }
  }
  EXPECT_TRUE(saw_factoring_pass);
}

TEST(PipelineTest, SecondArgumentBoundFactorsSymmetrically) {
  // Binding the second argument of left-linear TC makes it right-linear
  // after adornment; the pipeline factors it all the same.
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
    ?- t(X, 9).
  )");
  auto result = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->factoring_applied)
      << result->classification.diagnostic;
  eval::Database db;
  workload::MakeChain(9, "e", &db);
  auto answers = eval::EvaluateQuery(result->final_program(),
                                     result->final_query(), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 8u);  // nodes 1..8 reach 9
}

}  // namespace
}  // namespace factlog::core
