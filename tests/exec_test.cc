// Tests for the parallel execution subsystem: the partitioned semi-naive
// fixpoint must be fact-for-fact identical to the sequential oracle at every
// thread count, and concurrent batch execution must agree with one-at-a-time
// queries while hammering the shared plan cache.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/engine.h"
#include "core/pipeline.h"
#include "eval/seminaive.h"
#include "exec/batch.h"
#include "exec/parallel_seminaive.h"
#include "exec/thread_pool.h"
#include "tests/sweep_corpus.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"

namespace factlog {
namespace {

using test::A;
using test::kNumSweepPrograms;
using test::kNumSweepWorkloads;
using test::kSweepPrograms;
using test::kSweepWorkloads;
using test::P;

// Renders every IDB relation as a sorted set of tuples. Both evaluations run
// against the same database, so hash-consing makes ValueIds comparable; the
// rendered form keeps failure messages readable.
std::map<std::string, std::set<std::string>> FactSets(
    const eval::EvalResult& result, const eval::ValueStore& store) {
  std::map<std::string, std::set<std::string>> out;
  for (const auto& [pred, rel] : result.idb()) {
    std::set<std::string>& rows = out[pred];
    for (size_t r = 0; r < rel->size(); ++r) {
      std::string s = "(";
      for (size_t c = 0; c < rel->arity(); ++c) {
        if (c > 0) s += ", ";
        s += store.ToString(rel->row(r)[c]);
      }
      s += ")";
      rows.insert(s);
    }
  }
  return out;
}

class ParallelSweepTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

// The acceptance bar of this subsystem: for every corpus program (original
// and pipeline-compiled) the shard-native fixpoint at 1/2/8 storage shards
// times 1/2/8 threads yields exactly the flat sequential evaluator's fact
// sets, iteration counts, and instantiation counts. Shard fan-out is forced
// even on tiny deltas so the shard-view/merge machinery actually runs, and
// the sequential evaluator itself is checked for storage invariance at each
// shard count.
TEST_P(ParallelSweepTest, MatchesSequentialOracleAcrossShardsAndThreads) {
  const test::SweepProgram& ps = kSweepPrograms[std::get<0>(GetParam())];
  const test::SweepWorkload& ws = kSweepWorkloads[std::get<1>(GetParam())];

  ast::Program original = P(ps.text);
  ast::Atom query = A(ps.query);
  auto compiled = core::CompileQuery(original, query, core::Strategy::kAuto);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  struct Variant {
    const char* name;
    const ast::Program* program;
  };
  const Variant variants[] = {{"original", &original},
                              {"compiled", &compiled->program}};

  for (const Variant& v : variants) {
    // The oracle: flat single-shard storage, sequential evaluation.
    eval::Database oracle_db;
    ws.make(&oracle_db);
    auto sequential = eval::Evaluate(*v.program, &oracle_db);
    ASSERT_TRUE(sequential.ok())
        << v.name << ": " << sequential.status().ToString();
    auto expected = FactSets(*sequential, oracle_db.store());

    for (size_t shards : {1u, 2u, 8u}) {
      eval::Database db(eval::StorageOptions{shards, {}});
      ws.make(&db);

      // Sharding must be invisible to the sequential evaluator too.
      auto seq_sharded = eval::Evaluate(*v.program, &db);
      ASSERT_TRUE(seq_sharded.ok())
          << v.name << " seq@" << shards << "sh: "
          << seq_sharded.status().ToString();
      EXPECT_EQ(FactSets(*seq_sharded, db.store()), expected)
          << v.name << " sequential @" << shards << " shards";
      EXPECT_EQ(seq_sharded->stats().iterations,
                sequential->stats().iterations)
          << v.name << " sequential @" << shards << " shards";
      EXPECT_EQ(seq_sharded->stats().instantiations,
                sequential->stats().instantiations)
          << v.name << " sequential @" << shards << " shards";

      for (size_t threads : {1u, 2u, 8u}) {
        exec::ThreadPool pool(threads);
        exec::ParallelEvalOptions opts;
        opts.min_rows_to_partition = 1;  // fan out even one-row deltas
        opts.num_shards = shards;
        auto parallel = exec::EvaluateParallel(*v.program, &db, &pool, opts);
        ASSERT_TRUE(parallel.ok())
            << v.name << " @" << threads << "t/" << shards << "sh: "
            << parallel.status().ToString();
        EXPECT_EQ(FactSets(*parallel, db.store()), expected)
            << v.name << " @" << threads << "t/" << shards << "sh";
        EXPECT_EQ(parallel->stats().total_facts,
                  sequential->stats().total_facts)
            << v.name << " @" << threads << "t/" << shards << "sh";
        EXPECT_EQ(parallel->stats().iterations,
                  sequential->stats().iterations)
            << v.name << " @" << threads << "t/" << shards << "sh";
        EXPECT_EQ(parallel->stats().instantiations,
                  sequential->stats().instantiations)
            << v.name << " @" << threads << "t/" << shards << "sh";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ParallelSweepTest,
    ::testing::Combine(::testing::Range(0, kNumSweepPrograms),
                       ::testing::Range(0, kNumSweepWorkloads)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kSweepPrograms[std::get<0>(info.param)].name) +
             "_x_" + kSweepWorkloads[std::get<1>(info.param)].name;
    });

TEST(ParallelSemiNaiveTest, QueryAnswersMatchSequential) {
  eval::Database db;
  workload::MakeGrid(5, 5, "e", &db);
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y).");
  ast::Atom query = A("t(1, Y)");

  auto sequential = eval::EvaluateQuery(program, query, &db);
  ASSERT_TRUE(sequential.ok());

  exec::ThreadPool pool(4);
  exec::ParallelEvalOptions opts;
  opts.min_rows_to_partition = 1;
  opts.num_shards = 4;  // sharded IDB over a flat EDB
  auto parallel =
      exec::EvaluateQueryParallel(program, query, &db, &pool, opts);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel->rows, sequential->rows);
}

TEST(ParallelSemiNaiveTest, NullPoolRunsInline) {
  eval::Database db;
  workload::MakeChain(10, "e", &db);
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  auto result = exec::EvaluateParallel(program, &db, /*pool=*/nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->SizeOf("t"), 45u);  // all suffix pairs of a 10-chain
}

TEST(ParallelSemiNaiveTest, SeedIterationFansOutAcrossShards) {
  // Regression guard for the parallel seed path: iteration 0 of an EDB-only
  // rule must enqueue one pool task per shard of the first literal's extent
  // instead of running on the control thread. The program is non-recursive,
  // so the only pool tasks the evaluation can submit are seed tasks.
  eval::Database db(eval::StorageOptions{4, {}});
  workload::MakeChain(64, "e", &db);  // 63 edges spread over 4 shards
  ast::Program program = P("q(X, Y) :- e(X, Y).");
  exec::ThreadPool pool(2);
  uint64_t before = pool.stats().executed;
  exec::ParallelEvalOptions opts;
  opts.min_rows_to_partition = 1;
  opts.num_shards = 4;
  auto result = exec::EvaluateParallel(program, &db, &pool, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->SizeOf("q"), 63u);
  uint64_t seed_tasks = pool.stats().executed - before;
  EXPECT_EQ(seed_tasks, 4u) << "expected one seed task per EDB shard";
  EXPECT_GT(seed_tasks, 1u) << "seed iteration ran on the control thread";
}

TEST(ParallelSemiNaiveTest, SmallSeedExtentStaysInline) {
  // Below min_rows_to_partition the seed must not fan out (the old
  // control-thread path, exact budget accounting).
  eval::Database db(eval::StorageOptions{4, {}});
  workload::MakeChain(8, "e", &db);
  ast::Program program = P("q(X, Y) :- e(X, Y).");
  exec::ThreadPool pool(2);
  uint64_t before = pool.stats().executed;
  exec::ParallelEvalOptions opts;
  opts.min_rows_to_partition = 64;
  opts.num_shards = 4;
  auto result = exec::EvaluateParallel(program, &db, &pool, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->SizeOf("q"), 7u);
  EXPECT_EQ(pool.stats().executed - before, 0u);
}

TEST(ParallelSemiNaiveTest, ReportsPerShardFactCounts) {
  eval::Database db(eval::StorageOptions{4, {}});
  workload::MakeChain(20, "e", &db);
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  exec::ThreadPool pool(2);
  exec::ParallelEvalOptions opts;
  opts.min_rows_to_partition = 1;
  opts.num_shards = 4;
  auto result = exec::EvaluateParallel(program, &db, &pool, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->stats().shard_facts.size(), 4u);
  uint64_t sum = 0;
  for (uint64_t n : result->stats().shard_facts) sum += n;
  EXPECT_EQ(sum, result->stats().total_facts);
}

TEST(ParallelSemiNaiveTest, CompoundValuesInternSafelyAcrossThreads) {
  // List construction interns new compound values inside worker threads;
  // the result must still match the sequential oracle exactly.
  eval::Database db;
  for (int i = 0; i < 40; ++i) db.AddPair("n", i, i + 1);
  ast::Program program = P(
      "l(X, cons(X, nil)) :- n(X, Y). "
      "l(X, cons(X, L)) :- n(X, Y), l(Y, L).");
  auto sequential = eval::Evaluate(program, &db);
  ASSERT_TRUE(sequential.ok());
  exec::ThreadPool pool(4);
  exec::ParallelEvalOptions opts;
  opts.min_rows_to_partition = 1;
  opts.num_shards = 3;
  auto parallel = exec::EvaluateParallel(program, &db, &pool, opts);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(FactSets(*parallel, db.store()),
            FactSets(*sequential, db.store()));
}

TEST(ParallelSemiNaiveTest, FactBudgetAborts) {
  eval::Database db;
  workload::MakeChain(60, "e", &db);
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  exec::ThreadPool pool(4);
  exec::ParallelEvalOptions opts;
  opts.eval.max_facts = 100;  // the 60-chain closure has 1770 facts
  opts.min_rows_to_partition = 1;
  opts.num_shards = 4;
  auto result = exec::EvaluateParallel(program, &db, &pool, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParallelSemiNaiveTest, ProvenanceIsRejected) {
  eval::Database db;
  db.AddPair("e", 1, 2);
  ast::Program program = P("t(X, Y) :- e(X, Y).");
  exec::ParallelEvalOptions opts;
  opts.eval.track_provenance = true;
  auto result = exec::EvaluateParallel(program, &db, nullptr, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrewarmIndexesTest, SharedEdbEvaluationMatchesPrivate) {
  eval::Database db;
  workload::MakeGrid(4, 4, "e", &db);
  ast::Program program =
      P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  ast::Atom query = A("t(1, Y)");

  auto baseline = eval::EvaluateQuery(program, query, &db);
  ASSERT_TRUE(baseline.ok());

  ASSERT_TRUE(exec::PrewarmIndexes(program, &query, &db).ok());
  eval::EvalOptions opts;
  opts.shared_edb = true;
  auto shared = eval::EvaluateQuery(program, query, &db, opts);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_EQ(shared->rows, baseline->rows);
}

// ---- Engine integration ----------------------------------------------------

const char* kTcQueries[] = {
    "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).",
    "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(2, Y).",
    "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y). ?- t(3, Y).",
    "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), t(W, Y). ?- t(4, Y).",
    "p(X, Y) :- e(X, Y). p(X, Y) :- e(Y, X). ?- p(5, Y).",
    "q(X) :- e(X, Y). ?- q(X).",
    "r(X, Z) :- e(X, Y), e(Y, Z). ?- r(1, Z).",
    "s(Y) :- e(1, Y). s(Y) :- e(X, Y), s(X). ?- s(Y).",
};

TEST(EngineParallelTest, ParallelSingleQueryMatchesSequentialEngine) {
  api::EngineOptions seq_opts;
  api::Engine sequential(seq_opts);
  api::EngineOptions par_opts;
  par_opts.num_threads = 4;
  api::Engine parallel(par_opts);
  workload::MakeGrid(5, 5, "e", &sequential.db());
  workload::MakeGrid(5, 5, "e", &parallel.db());

  for (const char* text : kTcQueries) {
    auto a = sequential.Query(text);
    auto b = parallel.Query(text);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->ToString(sequential.db().store()),
              b->ToString(parallel.db().store()))
        << text;
  }
}

TEST(EngineParallelTest, ShardedEngineMatchesFlatSequentialEngine) {
  api::Engine oracle;  // flat storage, sequential
  workload::MakeGrid(5, 5, "e", &oracle.db());

  for (size_t shards : {2u, 8u}) {
    api::EngineOptions opts;
    opts.num_threads = 4;
    opts.num_shards = shards;
    api::Engine engine(opts);
    workload::MakeGrid(5, 5, "e", &engine.db());

    for (const char* text : kTcQueries) {
      auto expected = oracle.Query(text);
      auto got = engine.Query(text);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->ToString(engine.db().store()),
                expected->ToString(oracle.db().store()))
          << text << " @" << shards << " shards";
    }
  }
}

TEST(ExecuteBatchTest, ReportsPerShardRowCounts) {
  api::EngineOptions opts;
  opts.num_threads = 2;
  opts.num_shards = 4;
  api::Engine engine(opts);
  workload::MakeGrid(4, 4, "e", &engine.db());

  auto batch = engine.ExecuteBatch(std::vector<std::string>{kTcQueries[0]});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(batch->stats[0].status.ok());
  ASSERT_EQ(batch->stats[0].shard_facts.size(), 4u);
  uint64_t sum = 0;
  for (uint64_t n : batch->stats[0].shard_facts) sum += n;
  EXPECT_EQ(sum, batch->stats[0].total_facts);
}

TEST(ExecuteBatchTest, BatchAnswersMatchOneAtATimeQueries) {
  api::EngineOptions opts;
  opts.num_threads = 4;
  api::Engine engine(opts);
  workload::MakeGrid(5, 5, "e", &engine.db());

  api::Engine oracle;  // sequential, same EDB
  workload::MakeGrid(5, 5, "e", &oracle.db());

  std::vector<std::string> texts;
  for (int rep = 0; rep < 8; ++rep) {
    for (const char* q : kTcQueries) texts.push_back(q);
  }

  auto batch = engine.ExecuteBatch(texts);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->answers.size(), texts.size());
  ASSERT_EQ(batch->stats.size(), texts.size());
  EXPECT_EQ(batch->summary.queries, texts.size());
  EXPECT_EQ(batch->summary.succeeded, texts.size());
  EXPECT_EQ(batch->summary.failed, 0u);
  EXPECT_GT(batch->summary.wall_us, 0);

  for (size_t i = 0; i < texts.size(); ++i) {
    ASSERT_TRUE(batch->stats[i].status.ok())
        << i << ": " << batch->stats[i].status.ToString();
    auto expected = oracle.Query(texts[i]);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(batch->answers[i].ToString(engine.db().store()),
              expected->ToString(oracle.db().store()))
        << texts[i];
    EXPECT_EQ(batch->stats[i].num_answers, expected->size());
  }

  // Every Compile call either hits the shared cache or compiles; with 8
  // distinct plans, almost all of the 64 calls must be hits (concurrent
  // cold-cache misses may compile a plan more than once).
  auto stats = engine.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.cache_hits + stats.compiles, texts.size());
  EXPECT_GE(stats.cache_hits, texts.size() - 4 * 8);
}

TEST(ExecuteBatchTest, StressPlanCacheWithEvictions) {
  // A cache smaller than the distinct-plan count forces concurrent misses,
  // inserts, and evictions — the mutex-guarded LRU must survive and every
  // answer must stay correct.
  api::EngineOptions opts;
  opts.num_threads = 8;
  opts.plan_cache_capacity = 3;
  api::Engine engine(opts);
  workload::MakeGrid(4, 4, "e", &engine.db());

  api::Engine oracle;
  workload::MakeGrid(4, 4, "e", &oracle.db());

  std::vector<std::string> texts;
  for (int rep = 0; rep < 12; ++rep) {
    for (const char* q : kTcQueries) texts.push_back(q);
  }

  for (int round = 0; round < 3; ++round) {
    auto batch = engine.ExecuteBatch(texts);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->summary.failed, 0u);
    for (size_t i = 0; i < texts.size(); ++i) {
      auto expected = oracle.Query(texts[i]);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(batch->answers[i].ToString(engine.db().store()),
                expected->ToString(oracle.db().store()))
          << texts[i];
    }
    EXPECT_LE(engine.plan_cache_size(), 3u);
  }
}

TEST(ExecuteBatchTest, PerQueryFailuresAreIsolated) {
  api::EngineOptions opts;
  opts.num_threads = 2;
  api::Engine engine(opts);
  workload::MakeChain(6, "e", &engine.db());

  std::vector<api::Engine::BatchQuery> batch;
  {
    ast::Program p = P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
    batch.push_back({p, A("t(1, Y)"), core::Strategy::kAuto});
    // Strict strategy on a program it does not apply to: this query fails,
    // the others must not.
    ast::Program nonlinear =
        P("t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), t(W, Y).");
    batch.push_back({nonlinear, A("t(1, Y)"), core::Strategy::kLinearRewrite});
    batch.push_back({p, A("t(2, Y)"), core::Strategy::kAuto});
  }

  auto result = engine.ExecuteBatch(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->summary.succeeded, 2u);
  EXPECT_EQ(result->summary.failed, 1u);
  EXPECT_TRUE(result->stats[0].status.ok());
  EXPECT_FALSE(result->stats[1].status.ok());
  EXPECT_TRUE(result->stats[2].status.ok());
  EXPECT_EQ(result->answers[0].size(), 5u);
  EXPECT_EQ(result->answers[1].size(), 0u);
  EXPECT_EQ(result->answers[2].size(), 4u);
}

TEST(ExecuteBatchTest, ParseFailuresAreIsolatedInTextBatches) {
  api::EngineOptions opts;
  opts.num_threads = 2;
  api::Engine engine(opts);
  workload::MakeChain(5, "e", &engine.db());

  std::vector<std::string> texts = {
      "t(X, Y) :- e(X, Y). ?- t(1, Y).",
      "this is not datalog ((",            // parse error
      "t(X, Y) :- e(X, Y).",               // no ?- query
      "t(X, Y) :- e(X, Y). ?- t(2, Y).",
  };
  auto result = engine.ExecuteBatch(texts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->stats.size(), texts.size());
  EXPECT_EQ(result->summary.queries, texts.size());
  EXPECT_EQ(result->summary.succeeded, 2u);
  EXPECT_EQ(result->summary.failed, 2u);
  EXPECT_TRUE(result->stats[0].status.ok());
  EXPECT_FALSE(result->stats[1].status.ok());
  EXPECT_FALSE(result->stats[2].status.ok());
  EXPECT_TRUE(result->stats[3].status.ok());
  EXPECT_EQ(result->answers[0].size(), 1u);  // t(1, Y) on a chain: {2}
  EXPECT_EQ(result->answers[3].size(), 1u);  // t(2, Y): {3}
}

TEST(ExecuteBatchTest, EmptyBatchIsANoOp) {
  api::Engine engine;
  auto result = engine.ExecuteBatch(std::vector<std::string>{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->summary.queries, 0u);
  EXPECT_EQ(result->summary.succeeded, 0u);
}

TEST(ExecuteBatchTest, TopDownIsRejected) {
  api::EngineOptions opts;
  opts.execution = api::ExecutionMode::kTopDown;
  api::Engine engine(opts);
  auto result = engine.ExecuteBatch(std::vector<std::string>{
      "t(X, Y) :- e(X, Y). ?- t(1, Y)."});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace factlog
