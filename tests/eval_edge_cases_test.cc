// Edge cases of the evaluation engines: zero-ary predicates, repeated query
// variables, builtin error paths, and budget boundaries.

#include <gtest/gtest.h>

#include "eval/seminaive.h"
#include "eval/topdown.h"
#include "tests/test_util.h"

namespace factlog::eval {
namespace {

using test::A;
using test::AddFacts;
using test::Answers;
using test::P;

TEST(EvalEdgeCaseTest, ZeroAryPredicates) {
  const char prog[] = R"(
    go :- e(1, 2).
    result(X) :- go, e(X, Y).
    ?- result(X).
  )";
  EXPECT_EQ(Answers(prog, "e(1, 2). e(3, 4)."),
            (std::vector<std::string>{"(1)", "(3)"}));
  // Without the trigger fact, `go` fails and nothing is derived.
  EXPECT_TRUE(Answers(prog, "e(3, 4).").empty());
}

TEST(EvalEdgeCaseTest, RepeatedQueryVariables) {
  // ?- t(X, X) selects the diagonal; the answer row binds X once.
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    ?- t(X, X).
  )");
  Database db;
  AddFacts(&db, "e(1, 1). e(1, 2). e(3, 3).");
  auto answers = EvaluateQuery(p, *p.query(), &db);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->vars, (std::vector<std::string>{"X"}));
  EXPECT_EQ(answers->rows.size(), 2u);
}

TEST(EvalEdgeCaseTest, GroundQueryYieldsEmptyRow) {
  ast::Program p = P("t(X) :- e(X). ?- t(2).");
  Database db;
  AddFacts(&db, "e(2).");
  auto answers = EvaluateQuery(p, *p.query(), &db);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->rows.size(), 1u);
  EXPECT_TRUE(answers->rows[0].empty());  // no variables to bind
}

TEST(EvalEdgeCaseTest, DuplicateBodyLiteralsAreHarmless) {
  const char prog[] = R"(
    t(X) :- e(X), e(X), e(X).
    ?- t(X).
  )";
  EXPECT_EQ(Answers(prog, "e(4)."), (std::vector<std::string>{"(4)"}));
}

TEST(EvalEdgeCaseTest, EqualWithBothSidesUnboundErrors) {
  ast::Program p = P("t(X, Y) :- equal(X, Y), e(X).");
  Database db;
  AddFacts(&db, "e(1).");
  auto result = Evaluate(p, &db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalEdgeCaseTest, AffineWithNonIntegerFailsQuietly) {
  // A symbolic value does not satisfy the integer builtin; no error, no row.
  const char prog[] = R"(
    t(Z) :- e(X), affine(X, 2, 0, Z).
    ?- t(Z).
  )";
  EXPECT_EQ(Answers(prog, "e(sym). e(3)."), (std::vector<std::string>{"(6)"}));
}

TEST(EvalEdgeCaseTest, GeqFiltersIntegers) {
  const char prog[] = R"(
    t(X) :- e(X), geq(X, 3).
    ?- t(X).
  )";
  EXPECT_EQ(Answers(prog, "e(1). e(3). e(5)."),
            (std::vector<std::string>{"(3)", "(5)"}));
}

TEST(EvalEdgeCaseTest, IterationBudgetExact) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  Database db;
  test::AddFacts(&db, "e(1, 2). e(2, 3). e(3, 4). e(4, 5).");
  // The chain needs 5 semi-naive iterations (4 derivation rounds plus the
  // empty-delta round); a budget of 2 must trip.
  EvalOptions tight;
  tight.max_iterations = 2;
  auto result = Evaluate(p, &db, tight);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EvalOptions enough;
  enough.max_iterations = 8;
  ASSERT_TRUE(Evaluate(p, &db, enough).ok());
}

TEST(EvalEdgeCaseTest, SelfLoopTerminates) {
  const char prog[] = R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(X, W), t(W, Y).
    ?- t(1, Y).
  )";
  EXPECT_EQ(Answers(prog, "e(1, 1)."), (std::vector<std::string>{"(1)"}));
}

TEST(EvalEdgeCaseTest, LargeConstantsAndNegatives) {
  const char prog[] = R"(
    t(Y) :- e(X, Y), geq(X, 0).
    ?- t(Y).
  )";
  EXPECT_EQ(Answers(prog, "e(-7, 1). e(0, 2). e(9000000000, 3)."),
            (std::vector<std::string>{"(2)", "(3)"}));
}

TEST(EvalEdgeCaseTest, TopDownGroundCompoundQuery) {
  ast::Program p = P("len([], 0).\n len([H | T], N) :- len(T, M), "
                     "affine(M, 1, 1, N).");
  Database db;
  auto yes = SolveTopDown(p, A("len([a, b, c], N)"), &db);
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  ASSERT_EQ(yes->rows.size(), 1u);
  EXPECT_EQ(db.store().ToString(yes->rows[0][0]), "3");
}

TEST(EvalEdgeCaseTest, SymbolsAndIntsDoNotCollide) {
  const char prog[] = R"(
    t(X) :- e(X, X).
    ?- t(X).
  )";
  // The symbol "1" (as functor-less atom `one`) differs from the int 1.
  EXPECT_EQ(Answers(prog, "e(1, 1). e(one, one). e(1, one)."),
            (std::vector<std::string>{"(1)", "(one)"}));
}

}  // namespace
}  // namespace factlog::eval
