#include "workload/graph_gen.h"

#include <gtest/gtest.h>

#include "workload/list_gen.h"

namespace factlog::workload {
namespace {

TEST(GraphGenTest, Chain) {
  eval::Database db;
  MakeChain(5, "e", &db);
  EXPECT_EQ(db.Find("e")->size(), 4u);
  eval::Database empty;
  MakeChain(1, "e", &empty);
  EXPECT_EQ(empty.Find("e"), nullptr);
}

TEST(GraphGenTest, Cycle) {
  eval::Database db;
  MakeCycle(5, "e", &db);
  EXPECT_EQ(db.Find("e")->size(), 5u);
}

TEST(GraphGenTest, Tree) {
  eval::Database db;
  int64_t nodes = MakeTree(2, 3, "e", &db);
  EXPECT_EQ(nodes, 15);                    // 1 + 2 + 4 + 8
  EXPECT_EQ(db.Find("e")->size(), 14u);    // every node but the root
}

TEST(GraphGenTest, RandomGraphIsDeterministicPerSeed) {
  eval::Database a, b, c;
  MakeRandomGraph(20, 40, 7, "e", &a);
  MakeRandomGraph(20, 40, 7, "e", &b);
  MakeRandomGraph(20, 40, 8, "e", &c);
  EXPECT_EQ(a.Find("e")->size(), b.Find("e")->size());
  EXPECT_LE(a.Find("e")->size(), 40u);  // duplicates collapse
}

TEST(GraphGenTest, Grid) {
  eval::Database db;
  MakeGrid(3, 3, "e", &db);
  // 2 edges per inner node direction: 3*2 right + 3*2 down.
  EXPECT_EQ(db.Find("e")->size(), 12u);
}

TEST(GraphGenTest, SameGeneration) {
  eval::Database db;
  MakeSameGeneration(2, 2, &db);
  // 6 tree edges each direction; 3 flat edges between the 4 leaves.
  EXPECT_EQ(db.Find("up")->size(), 6u);
  EXPECT_EQ(db.Find("down")->size(), 6u);
  EXPECT_EQ(db.Find("flat")->size(), 3u);
}

TEST(GraphGenTest, UnaryAll) {
  eval::Database db;
  MakeUnaryAll(7, "v", &db);
  EXPECT_EQ(db.Find("v")->size(), 7u);
}

TEST(ListGenTest, IntList) {
  ast::Term l = MakeIntList(3);
  EXPECT_EQ(l.ToString(), "[1, 2, 3]");
  EXPECT_EQ(MakeIntList(0), ast::Term::Nil());
}

TEST(ListGenTest, MembershipPredicate) {
  eval::Database db;
  MakeMembershipPredicate(10, 2, 0, "p", &db);
  EXPECT_EQ(db.Find("p")->size(), 5u);  // evens
  eval::Database all;
  MakeMembershipPredicate(10, 1, 0, "p", &all);
  EXPECT_EQ(all.Find("p")->size(), 10u);
}

TEST(ListGenTest, PmemProgramShape) {
  ast::Program p = MakePmemProgram(4);
  EXPECT_EQ(p.rules().size(), 2u);
  ASSERT_TRUE(p.query().has_value());
  EXPECT_EQ(p.query()->ToString(), "pmem(X, [1, 2, 3, 4])");
}

}  // namespace
}  // namespace factlog::workload
