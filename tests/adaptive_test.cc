// Tests for feedback-driven adaptive join planning: the StatsCatalog's
// decay / merge / seeding semantics, mid-fixpoint re-planning (oracle
// equivalence against the static plan across shard x thread configurations),
// the engine cache's re-cost-in-place drift guard, and catalog persistence
// across checkpoint -> reopen.

#include "plan/stats_catalog.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/engine.h"
#include "eval/seminaive.h"
#include "plan/join_plan.h"
#include "tests/test_util.h"

namespace factlog {
namespace {

namespace fs = std::filesystem;

using test::A;
using test::AddFacts;
using test::P;

// ---- StatsCatalog units -----------------------------------------------------

TEST(AdornmentPatternTest, RendersBoundColumns) {
  EXPECT_EQ(plan::AdornmentPattern(2, {}), "ff");
  EXPECT_EQ(plan::AdornmentPattern(2, {0}), "bf");
  EXPECT_EQ(plan::AdornmentPattern(3, {0, 2}), "bfb");
  EXPECT_EQ(plan::AdornmentPattern(3, {2, 0}), "bfb");
  EXPECT_EQ(plan::AdornmentPattern(0, {}), "");
  // Out-of-range columns are ignored rather than corrupting the pattern.
  EXPECT_EQ(plan::AdornmentPattern(2, {5, -1, 1}), "fb");
}

TEST(StatsCatalogTest, FirstObservationReplacesLaterOnesDecay) {
  plan::StatsCatalog catalog;
  catalog.ObserveExtent("e", 100);
  auto snap = catalog.Snapshot();
  EXPECT_DOUBLE_EQ(snap.at("e").extent, 100.0);
  EXPECT_EQ(snap.at("e").extent_runs, 1u);

  catalog.ObserveExtent("e", 200);
  snap = catalog.Snapshot();
  // kAlpha = 0.5: (1-a)*100 + a*200.
  EXPECT_DOUBLE_EQ(snap.at("e").extent, 150.0);
  EXPECT_EQ(snap.at("e").extent_runs, 2u);

  catalog.ObserveDelta("t", 40.0);
  catalog.ObserveDelta("t", 10.0);
  snap = catalog.Snapshot();
  EXPECT_DOUBLE_EQ(snap.at("t").delta_mean, 25.0);
  EXPECT_EQ(snap.at("t").delta_runs, 2u);
  // Extent and delta decay independently.
  EXPECT_EQ(snap.at("t").extent_runs, 0u);
}

TEST(StatsCatalogTest, ObserveBatchMergesDuplicateAdornmentsIntoOneRun) {
  plan::StatsCatalog catalog;
  // Two rules probed e the same way in one run: the batch must decay the
  // catalog once with the summed totals, not twice.
  std::vector<plan::ProbeObservation> batch;
  batch.push_back({"e", 2, {0}, /*probes=*/10, /*matched=*/5});
  batch.push_back({"e", 2, {0}, /*probes=*/30, /*matched=*/15});
  batch.push_back({"e", 2, {}, /*probes=*/4, /*matched=*/4});
  batch.push_back({"f", 2, {0}, /*probes=*/0, /*matched=*/0});  // dropped
  catalog.ObserveBatch(batch);

  auto snap = catalog.Snapshot();
  ASSERT_EQ(snap.count("e"), 1u);
  EXPECT_EQ(snap.count("f"), 0u);
  const plan::ProbeStats& bf = snap.at("e").probes.at("bf");
  EXPECT_DOUBLE_EQ(bf.probes, 40.0);
  EXPECT_DOUBLE_EQ(bf.matched, 20.0);
  EXPECT_EQ(bf.runs, 1u);
  EXPECT_DOUBLE_EQ(bf.MatchedPerProbe(), 0.5);
  const plan::ProbeStats& ff = snap.at("e").probes.at("ff");
  EXPECT_DOUBLE_EQ(ff.probes, 4.0);
  EXPECT_EQ(ff.runs, 1u);

  // A second batch decays: probes (1-a)*40 + a*20 = 30.
  catalog.ObserveBatch({{"e", 2, {0}, 20, 10}});
  snap = catalog.Snapshot();
  EXPECT_DOUBLE_EQ(snap.at("e").probes.at("bf").probes, 30.0);
  EXPECT_EQ(snap.at("e").probes.at("bf").runs, 2u);
}

TEST(StatsCatalogTest, SeedPlanOptionsLiveHintsWin) {
  plan::StatsCatalog catalog;
  catalog.ObserveExtent("e", 500);
  catalog.ObserveExtent("t", 200);
  catalog.ObserveDelta("t", 12.5);
  catalog.ObserveProbes("e", "bf", 100, 25);

  plan::PlanOptions opts;
  opts.extent_hints["e"] = 50;  // live EDB size: exact, must not be clobbered
  catalog.SeedPlanOptions(&opts);

  EXPECT_EQ(opts.extent_hints.at("e"), 50u);
  EXPECT_EQ(opts.extent_hints.at("t"), 200u);  // IDB: only the catalog knows
  EXPECT_DOUBLE_EQ(opts.delta_hints.at("t"), 12.5);
  EXPECT_DOUBLE_EQ(opts.probe_hints.at("e").at("bf"), 0.25);
}

TEST(StatsCatalogTest, MergeFoldsObservationByObservation) {
  plan::StatsCatalog a;
  a.ObserveExtent("e", 100);
  plan::StatsCatalog b;
  b.ObserveExtent("e", 300);
  b.ObserveExtent("f", 50);
  b.ObserveProbes("e", "bf", 10, 5);

  a.Merge(b);
  auto snap = a.Snapshot();
  EXPECT_DOUBLE_EQ(snap.at("e").extent, 200.0);  // decayed toward b's value
  EXPECT_EQ(snap.at("e").extent_runs, 2u);
  EXPECT_DOUBLE_EQ(snap.at("f").extent, 50.0);  // new predicate: replaced
  EXPECT_EQ(snap.at("f").extent_runs, 1u);
  EXPECT_DOUBLE_EQ(snap.at("e").probes.at("bf").probes, 10.0);
}

TEST(StatsCatalogTest, SnapshotRestoreRoundTrip) {
  plan::StatsCatalog catalog;
  catalog.ObserveExtent("e", 123);
  catalog.ObserveDelta("t", 7.25);
  catalog.ObserveProbes("e", "fb", 64, 16);
  auto before = catalog.Snapshot();

  plan::StatsCatalog other;
  other.ObserveExtent("junk", 1);
  other.Restore(before);
  auto after = other.Snapshot();

  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(after.count("junk"), 0u);
  EXPECT_DOUBLE_EQ(after.at("e").extent, 123.0);
  EXPECT_DOUBLE_EQ(after.at("t").delta_mean, 7.25);
  EXPECT_DOUBLE_EQ(after.at("e").probes.at("fb").matched, 16.0);
}

// ---- Mid-fixpoint adaptivity ------------------------------------------------

// Renders an answer set order-independently (ValueStores differ between
// engines; the rendering does not).
std::set<std::string> Tuples(const eval::AnswerSet& answers,
                             const eval::ValueStore& store) {
  std::set<std::string> out;
  for (const auto& row : answers.rows) {
    std::string s = "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ", ";
      s += store.ToString(row[i]);
    }
    s += ")";
    out.insert(std::move(s));
  }
  return out;
}

// Seeded reachability over a long chain plus a large irrelevant edge set:
// t's per-iteration delta is one row while e holds `chain + junk` rows, so
// a plan that drives the recursive rule over e scans the whole relation
// every iteration. The junk edges share no nodes with the chain.
std::string BroomFacts(int chain, int junk) {
  std::string facts = "seed(" + std::to_string(chain) + ", " +
                      std::to_string(chain + 1) + ").\n";
  for (int i = 0; i < chain; ++i) {
    facts += "e(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  for (int i = 0; i < junk; ++i) {
    facts += "e(" + std::to_string(100000 + i) + ", " +
             std::to_string(200000 + i) + ").\n";
  }
  return facts;
}

const char kSeededTc[] =
    "t(X, Y) :- seed(X, Y). t(X, Y) :- e(X, W), t(W, Y).";

TEST(AdaptiveFixpoint, MisleadingPlanReplansMidRunAndStaysOracleIdentical) {
  // The plan is costed as if e held 4 rows (the "compiled while the database
  // was tiny" scenario); it really holds 1040. The static run is stuck
  // driving the recursive rule over e for the whole fixpoint; the adaptive
  // run notices the 260x extent drift before the first delta pass and
  // switches the driver to t's one-row delta.
  ast::Program program = P(kSeededTc);
  ast::Atom query = A("t(X, Y)");
  plan::PlanOptions popts;
  popts.extent_hints["e"] = 4;
  popts.extent_hints["seed"] = 1;
  plan::ProgramPlan misleading = plan::PlanProgram(program, popts);

  auto run = [&](double threshold, eval::EvalStats* stats) {
    eval::Database db;
    AddFacts(&db, BroomFacts(/*chain=*/40, /*junk=*/1000));
    eval::EvalOptions opts;
    opts.program_plan = &misleading;
    opts.replan_threshold = threshold;
    auto answers = eval::EvaluateQuery(program, query, &db, opts, stats);
    EXPECT_TRUE(answers.ok()) << answers.status().ToString();
    return Tuples(*answers, db.store());
  };

  eval::EvalStats static_stats;
  std::set<std::string> static_answers = run(0.0, &static_stats);
  eval::EvalStats adaptive_stats;
  std::set<std::string> adaptive_answers = run(4.0, &adaptive_stats);

  EXPECT_EQ(static_stats.replans, 0u);
  EXPECT_GE(adaptive_stats.replans, 1u);
  // Fact sets are oracle-identical; so are head instantiations (a join
  // order permutes the enumeration, never the set of satisfying
  // assignments).
  EXPECT_EQ(adaptive_answers, static_answers);
  EXPECT_EQ(static_answers.size(), 41u);
  EXPECT_EQ(adaptive_stats.instantiations, static_stats.instantiations);
  EXPECT_EQ(adaptive_stats.total_facts, static_stats.total_facts);
  // The join work is where adaptivity pays: the static plan matches the
  // whole of e every iteration.
  EXPECT_LT(adaptive_stats.rows_matched, static_stats.rows_matched / 2);
}

// A distribution that shifts mid-fixpoint: one row per delta while the
// chain burns down, then a 200-wide fan arrives in the last iterations.
std::string ShiftingFacts(int chain, int fan) {
  std::string facts = "seed(" + std::to_string(chain) + ", " +
                      std::to_string(chain + 1) + ").\n";
  for (int i = 0; i < chain; ++i) {
    facts += "e(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  for (int i = 0; i < fan; ++i) {
    facts += "e(" + std::to_string(300000 + i) + ", 0).\n";
  }
  return facts;
}

// Adaptive (default replan threshold) vs. static (threshold 0) through the
// api::Engine across the shard x thread matrix: fact-for-fact equality, and
// the adaptive run never does more head-instantiation work.
TEST(AdaptiveFixpoint, EngineOracleSweep) {
  struct Workload {
    const char* name;
    std::string facts;
    size_t answers;
  };
  const Workload workloads[] = {
      {"skewed_broom", BroomFacts(/*chain=*/24, /*junk=*/400), 25},
      {"shifting_fan", ShiftingFacts(/*chain=*/24, /*fan=*/200), 225},
  };
  for (const Workload& w : workloads) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
      for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        SCOPED_TRACE(std::string(w.name) + " shards=" +
                     std::to_string(shards) + " threads=" +
                     std::to_string(threads));
        auto run = [&](double threshold, api::QueryStats* stats) {
          api::EngineOptions opts;
          opts.num_shards = shards;
          opts.num_threads = threads;
          opts.eval.replan_threshold = threshold;
          api::Engine engine(opts);
          EXPECT_TRUE(engine.LoadFacts(w.facts).ok());
          auto answers = engine.Query(P(kSeededTc), A("t(X, Y)"),
                                      api::Strategy::kAuto, stats);
          EXPECT_TRUE(answers.ok()) << answers.status().ToString();
          return Tuples(*answers, engine.db().store());
        };
        api::QueryStats static_stats;
        std::set<std::string> expected = run(0.0, &static_stats);
        api::QueryStats adaptive_stats;
        std::set<std::string> actual = run(4.0, &adaptive_stats);
        EXPECT_EQ(actual, expected);
        EXPECT_EQ(expected.size(), w.answers);
        EXPECT_EQ(static_stats.eval.replans, 0u);
        EXPECT_LE(adaptive_stats.eval.instantiations,
                  static_stats.eval.instantiations);
      }
    }
  }
}

// ---- Engine drift guard: re-cost in place -----------------------------------

TEST(AdaptiveEngine, DriftedCacheHitRecostsWithoutRecompiling) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadFacts("e(1, 2). e(2, 3).").ok());
  const std::string prog = "p(X) :- e(X, Y). ?- p(X).";
  ASSERT_TRUE(engine.Query(prog).ok());
  const uint64_t compiles_before = engine.stats().compiles;

  std::string growth;
  for (int i = 100; i < 160; ++i) {
    growth += "e(" + std::to_string(i) + ", 0).\n";
  }
  ASSERT_TRUE(engine.LoadFacts(growth).ok());

  api::QueryStats qs;
  ASSERT_TRUE(engine.Query(P(prog), A("p(X)"), api::Strategy::kAuto, &qs).ok());
  EXPECT_TRUE(qs.cache_hit);
  EXPECT_GT(engine.stats().plans_recosted, 0u);
  EXPECT_EQ(engine.stats().compiles, compiles_before);
}

// The catalog itself learns from every execution: extents, deltas, probes.
TEST(AdaptiveEngine, ExecutionsFeedTheCatalog) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadFacts(BroomFacts(/*chain=*/12, /*junk=*/20)).ok());
  ASSERT_TRUE(engine.Query(P(kSeededTc), A("t(X, Y)")).ok());
  // The catalog is keyed by the executed (transformed) program's predicate
  // names, so assert on the shape of the feedback rather than on "t".
  auto snap = engine.stats_catalog().Snapshot();
  ASSERT_FALSE(snap.empty());
  bool extents = false, deltas = false;
  for (const auto& [pred, ps] : snap) {
    if (ps.extent_runs > 0 && ps.extent > 0.0) extents = true;
    if (ps.delta_runs > 0) deltas = true;
  }
  EXPECT_TRUE(extents) << "no observed extents reached the catalog";
  EXPECT_TRUE(deltas) << "no observed delta means reached the catalog";
}

// ---- Catalog persistence ----------------------------------------------------

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("factlog_adaptive_" + tag + "_" + std::to_string(counter_++)))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};
int ScratchDir::counter_ = 0;

void ExpectCatalogEq(const std::map<std::string, plan::PredicateStats>& a,
                     const std::map<std::string, plan::PredicateStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [pred, pa] : a) {
    ASSERT_EQ(b.count(pred), 1u) << pred;
    const plan::PredicateStats& pb = b.at(pred);
    EXPECT_EQ(pa.extent, pb.extent) << pred;
    EXPECT_EQ(pa.extent_runs, pb.extent_runs) << pred;
    EXPECT_EQ(pa.delta_mean, pb.delta_mean) << pred;
    EXPECT_EQ(pa.delta_runs, pb.delta_runs) << pred;
    ASSERT_EQ(pa.probes.size(), pb.probes.size()) << pred;
    for (const auto& [pattern, sa] : pa.probes) {
      ASSERT_EQ(pb.probes.count(pattern), 1u) << pred << "/" << pattern;
      const plan::ProbeStats& sb = pb.probes.at(pattern);
      EXPECT_EQ(sa.probes, sb.probes) << pred << "/" << pattern;
      EXPECT_EQ(sa.matched, sb.matched) << pred << "/" << pattern;
      EXPECT_EQ(sa.runs, sb.runs) << pred << "/" << pattern;
    }
  }
}

TEST(AdaptivePersistence, CheckpointReopenRestoresCatalogAndPlans) {
  ScratchDir dir("catalog");
  ast::Program program = P(kSeededTc);
  ast::Atom query = A("t(X, Y)");
  std::map<std::string, plan::PredicateStats> saved;
  {
    auto engine = api::Engine::Open(dir.path());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(
        (*engine)->LoadFacts(BroomFacts(/*chain=*/16, /*junk=*/60)).ok());
    ASSERT_TRUE((*engine)->Query(program, query).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    saved = (*engine)->stats_catalog().Snapshot();
    ASSERT_FALSE(saved.empty());
  }  // destructor = clean close (catalog lives in the checkpoint meta)

  auto engine = api::Engine::Open(dir.path());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // Bit-exact restore: the meta file serializes the decayed doubles raw.
  ExpectCatalogEq((*engine)->stats_catalog().Snapshot(), saved);
  // The warm-recompiled plan must be exactly what the saved measurements
  // plus the restored base-relation sizes dictate — i.e. the restored
  // catalog, not the cost model's defaults, drives the plan.
  auto compiled = (*engine)->Compile(program, query, api::Strategy::kAuto);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  plan::PlanOptions popts;
  for (const auto& [name, rel] : (*engine)->db().relations()) {
    popts.extent_hints[name] = rel->size();
  }
  plan::StatsCatalog learned;
  learned.Restore(saved);
  learned.SeedPlanOptions(&popts);
  plan::ProgramPlan expected = plan::PlanProgram((*compiled)->program, popts);
  EXPECT_EQ(plan::Explain((*compiled)->program, (*compiled)->plans),
            plan::Explain((*compiled)->program, expected));
  // And the measurements visibly moved the plan off the default estimates:
  // a defaults-only plan of the same program reads differently.
  plan::ProgramPlan defaults =
      plan::PlanProgram((*compiled)->program, plan::PlanOptions{});
  EXPECT_NE(plan::Explain((*compiled)->program, expected),
            plan::Explain((*compiled)->program, defaults));
}

}  // namespace
}  // namespace factlog
