#include "analysis/standard_form.h"

#include <gtest/gtest.h>

#include "ast/special_predicates.h"
#include "tests/test_util.h"

namespace factlog::analysis {
namespace {

using test::P;
using test::R;

ast::Rule Convert(const std::string& rule_text, const std::string& pred) {
  ast::Rule rule = R(rule_text);
  ast::FreshVarGen gen("_S");
  gen.ReserveFrom(rule);
  auto converted = ToStandardForm(rule, {pred}, &gen);
  EXPECT_TRUE(converted.ok()) << converted.status().ToString();
  return converted.ok() ? std::move(converted).value() : ast::Rule();
}

TEST(StandardFormTest, AlreadyStandardIsUntouched) {
  ast::Rule r = Convert("t(X, Y) :- t(X, W), e(W, Y).", "t");
  EXPECT_EQ(r.ToString(), "t(X, Y) :- t(X, W), e(W, Y).");
  EXPECT_TRUE(IsInStandardForm(r, {"t"}));
}

TEST(StandardFormTest, ConstantsBecomeEqualAtoms) {
  ast::Rule r = Convert("t(X, 5) :- e(X).", "t");
  EXPECT_TRUE(IsInStandardForm(r, {"t"}));
  // Head t(X, F) with equal(F, 5) in the body.
  ASSERT_EQ(r.head().arity(), 2u);
  EXPECT_TRUE(r.head().args()[1].IsVariable());
  bool found = false;
  for (const ast::Atom& b : r.body()) {
    if (b.predicate() == ast::kEqualPredicate &&
        b.args()[1] == ast::Term::Int(5)) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << r.ToString();
}

TEST(StandardFormTest, RepeatedVariablesSplit) {
  // p(X, X) must become p(X, F), equal(F, X) — the paper's example.
  ast::Rule r = Convert("p(X, X) :- e(X).", "p");
  EXPECT_TRUE(IsInStandardForm(r, {"p"}));
  EXPECT_NE(r.head().args()[0], r.head().args()[1]);
}

TEST(StandardFormTest, CompoundsBecomeStructuralAtoms) {
  // pmem(X, [X | T]) -> pmem(X, L), $cons(X, T, L).
  ast::Rule r = Convert("pmem(X, [X | T]) :- p(X).", "pmem");
  EXPECT_TRUE(IsInStandardForm(r, {"pmem"}));
  bool found = false;
  for (const ast::Atom& b : r.body()) {
    if (b.predicate() == "$cons") {
      found = true;
      EXPECT_EQ(b.arity(), 3u);
      EXPECT_EQ(b.args()[0], ast::Term::Var("X"));
      EXPECT_EQ(b.args()[1], ast::Term::Var("T"));
    }
  }
  EXPECT_TRUE(found) << r.ToString();
}

TEST(StandardFormTest, NestedCompoundsFlattenRecursively) {
  ast::Rule r = Convert("p(f(g(X))) :- e(X).", "p");
  EXPECT_TRUE(IsInStandardForm(r, {"p"}));
  int structural = 0;
  for (const ast::Atom& b : r.body()) {
    if (ast::IsStructuralPredicate(b.predicate())) ++structural;
  }
  EXPECT_EQ(structural, 2) << r.ToString();  // $g and $f
}

TEST(StandardFormTest, BodyLiteralsConvertedToo) {
  ast::Rule r = Convert("p(X, Y) :- p(X, 3), e(X, Y).", "p");
  EXPECT_TRUE(IsInStandardForm(r, {"p"}));
}

TEST(StandardFormTest, OnlyTargetPredicatesTouched) {
  // EDB literals keep constants.
  ast::Rule r = Convert("p(X, Y) :- e(X, 5), e(5, Y).", "p");
  EXPECT_EQ(r.ToString(), "p(X, Y) :- e(X, 5), e(5, Y).");
}

TEST(StandardFormTest, ProgramConversion) {
  ast::Program p = P(R"(
    t(X, 7) :- t(X, X).
    t(X, Y) :- e(X, Y).
  )");
  auto converted = ToStandardForm(p, {"t"});
  ASSERT_TRUE(converted.ok());
  for (const ast::Rule& r : converted->rules()) {
    EXPECT_TRUE(IsInStandardForm(r, {"t"})) << r.ToString();
  }
}

TEST(StandardFormTest, IsInStandardFormDetectsViolations) {
  EXPECT_FALSE(IsInStandardForm(R("t(X, 5) :- e(X)."), {"t"}));
  EXPECT_FALSE(IsInStandardForm(R("t(X, X) :- e(X)."), {"t"}));
  EXPECT_FALSE(IsInStandardForm(R("t(X, f(Y)) :- e(X, Y)."), {"t"}));
  EXPECT_TRUE(IsInStandardForm(R("t(X, 5) :- e(X)."), {"other"}));
}

}  // namespace
}  // namespace factlog::analysis
