#include "ast/parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace factlog::ast {
namespace {

using test::A;
using test::P;
using test::R;
using test::T;

TEST(ParserTest, SimpleFact) {
  Rule r = R("e(1, 2).");
  EXPECT_TRUE(r.IsFact());
  EXPECT_EQ(r.head().predicate(), "e");
  EXPECT_EQ(r.head().args()[0], Term::Int(1));
}

TEST(ParserTest, SimpleRule) {
  Rule r = R("t(X, Y) :- t(X, W), e(W, Y).");
  EXPECT_EQ(r.body().size(), 2u);
  EXPECT_EQ(r.ToString(), "t(X, Y) :- t(X, W), e(W, Y).");
}

TEST(ParserTest, ProgramWithQuery) {
  Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    ?- t(5, Y).
  )");
  EXPECT_EQ(p.rules().size(), 2u);
  ASSERT_TRUE(p.query().has_value());
  EXPECT_EQ(p.query()->ToString(), "t(5, Y)");
}

TEST(ParserTest, EdbDirective) {
  Program p = P(".edb e/2.\n t(X, Y) :- e(X, Y).");
  ASSERT_EQ(p.edb_decls().count("e"), 1u);
  EXPECT_EQ(p.edb_decls().at("e"), 2u);
}

TEST(ParserTest, Comments) {
  Program p = P(R"(
    % line comment
    // another line comment
    /* block
       comment */
    t(X) :- e(X).  % trailing
  )");
  EXPECT_EQ(p.rules().size(), 1u);
}

TEST(ParserTest, Lists) {
  EXPECT_EQ(T("[]"), Term::Nil());
  EXPECT_EQ(T("[1, 2]"), Term::List({Term::Int(1), Term::Int(2)}));
  EXPECT_EQ(T("[H | T]"), Term::Cons(Term::Var("H"), Term::Var("T")));
  EXPECT_EQ(T("[1, 2 | T]"),
            Term::Cons(Term::Int(1), Term::Cons(Term::Int(2), Term::Var("T"))));
}

TEST(ParserTest, CompoundTerms) {
  Term t = T("f(X, g(1), sym)");
  ASSERT_TRUE(t.IsCompound());
  EXPECT_EQ(t.args().size(), 3u);
  EXPECT_EQ(t.args()[1], Term::App("g", {Term::Int(1)}));
  EXPECT_EQ(t.args()[2], Term::Sym("sym"));
}

TEST(ParserTest, NegativeIntegers) {
  EXPECT_EQ(T("-7"), Term::Int(-7));
}

TEST(ParserTest, AnonymousVariablesAreDistinct) {
  Rule r = R("p(X) :- q(X, _), r(_, X).");
  std::vector<std::string> vars = r.DistinctVars();
  // X plus two distinct anonymous variables.
  EXPECT_EQ(vars.size(), 3u);
  EXPECT_NE(vars[1], vars[2]);
}

TEST(ParserTest, VariablesVsSymbols) {
  Atom a = A("p(X, x, _Y)");
  EXPECT_TRUE(a.args()[0].IsVariable());
  EXPECT_EQ(a.args()[1], Term::Sym("x"));
  EXPECT_TRUE(a.args()[2].IsVariable());
  EXPECT_EQ(a.args()[2].var_name(), "_Y");
}

TEST(ParserTest, StructuralPredicateNames) {
  // '$' identifiers are used by standard-form conversion.
  Rule r = R("p(X, L) :- $cons(X, T, L).");
  EXPECT_EQ(r.body()[0].predicate(), "$cons");
}

TEST(ParserTest, RoundTrip) {
  const std::string text =
      "t(X, Y) :- t(X, W), t(W, Y).\n"
      "t(X, Y) :- e(X, Y).\n"
      "?- t(5, Y).\n";
  Program p = P(text);
  Program p2 = P(p.ToString());
  EXPECT_EQ(p.rules(), p2.rules());
  EXPECT_EQ(p.query(), p2.query());
}

TEST(ParserTest, RoundTripWithLists) {
  Rule r = R("pmem(X, [X | T]) :- p(X).");
  Rule r2 = R(r.ToString());
  EXPECT_EQ(r, r2);
}

TEST(ParserErrorTest, MissingPeriod) {
  auto r = ParseProgram("t(X) :- e(X)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserErrorTest, UnbalancedParen) {
  EXPECT_FALSE(ParseProgram("t(X :- e(X).").ok());
}

TEST(ParserErrorTest, BadDirective) {
  EXPECT_FALSE(ParseProgram(".foo bar/2.").ok());
}

TEST(ParserErrorTest, InconsistentArity) {
  auto r = ParseProgram("t(X) :- e(X).\n t(X, Y) :- e(X), e(Y).");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("arities"), std::string::npos);
}

TEST(ParserErrorTest, RangeRestrictionIsNotAParseError) {
  // Prolog-style rules with unrestricted head variables parse fine; only
  // the bottom-up engine rejects them (they are valid top-down).
  auto r = ParseProgram("t(X, Y) :- e(X).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->Validate().ok());
  EXPECT_TRUE(r->ValidateArities().ok());
}

TEST(ParserErrorTest, UnterminatedBlockComment) {
  EXPECT_FALSE(ParseProgram("/* oops").ok());
}

TEST(ParserErrorTest, ErrorMentionsLocation) {
  auto r = ParseProgram("t(X) :- e(X).\n@");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace factlog::ast
