#include "eval/topdown.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/list_gen.h"

namespace factlog::eval {
namespace {

using test::A;
using test::AddFacts;
using test::P;

std::vector<std::string> Render(const AnswerSet& answers, const Database& db) {
  std::vector<std::string> out;
  for (const auto& row : answers.rows) {
    std::string s = "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ", ";
      s += db.store().ToString(row[i]);
    }
    s += ")";
    out.push_back(s);
  }
  return out;
}

TEST(TopDownTest, RightLinearTransitiveClosure) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  Database db;
  AddFacts(&db, "e(1, 2). e(2, 3). e(3, 4).");
  auto answers = SolveTopDown(p, A("t(1, Y)"), &db);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(Render(*answers, db),
            (std::vector<std::string>{"(2)", "(3)", "(4)"}));
}

TEST(TopDownTest, GroundQuerySucceedsOrFails) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  Database db;
  AddFacts(&db, "e(1, 2). e(2, 3).");
  auto yes = SolveTopDown(p, A("t(1, 3)"), &db);
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes->rows.size(), 1u);  // the empty binding row
  auto no = SolveTopDown(p, A("t(3, 1)"), &db);
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->rows.empty());
}

TEST(TopDownTest, PmemComputesAllMembers) {
  ast::Program p = workload::MakePmemProgram(5);
  Database db;
  workload::MakeMembershipPredicate(5, 1, 0, "p", &db);
  auto answers = SolveTopDown(p, *p.query(), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(Render(*answers, db),
            (std::vector<std::string>{"(1)", "(2)", "(3)", "(4)", "(5)"}));
}

TEST(TopDownTest, PmemInferencesGrowQuadratically) {
  // The O(n^2) claim of Example 1.2: with all members satisfying p, SLD
  // makes Theta(n^2) inferences.
  uint64_t inf_small = 0, inf_large = 0;
  for (auto [n, target] : {std::pair<int64_t, uint64_t*>{32, &inf_small},
                           std::pair<int64_t, uint64_t*>{64, &inf_large}}) {
    ast::Program p = workload::MakePmemProgram(n);
    Database db;
    workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
    SldStats stats;
    auto answers = SolveTopDown(p, *p.query(), &db, SldOptions(), &stats);
    ASSERT_TRUE(answers.ok());
    EXPECT_EQ(answers->rows.size(), static_cast<size_t>(n));
    *target = stats.inferences;
  }
  // Doubling n should roughly quadruple inferences (allow 3x-5x).
  double ratio = static_cast<double>(inf_large) / inf_small;
  EXPECT_GT(ratio, 3.0) << inf_small << " -> " << inf_large;
  EXPECT_LT(ratio, 5.0) << inf_small << " -> " << inf_large;
}

TEST(TopDownTest, LeftRecursionDivergesLikeProlog) {
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  Database db;
  AddFacts(&db, "e(1, 2).");
  SldOptions opts;
  opts.max_inferences = 10'000;
  opts.max_depth = 100;
  auto answers = SolveTopDown(p, A("t(1, Y)"), &db, opts);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(TopDownTest, TablingCutsGroundLoops) {
  // Ground-goal loop: reach(1,1) via the cycle. Plain SLD on a cyclic graph
  // diverges; the loop check (tabling mode) terminates.
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  Database db;
  AddFacts(&db, "e(1, 2). e(2, 1).");
  SldOptions opts;
  opts.tabling = true;
  opts.max_inferences = 100'000;
  auto yes = SolveTopDown(p, A("t(1, 1)"), &db, opts);
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  EXPECT_EQ(yes->rows.size(), 1u);
  auto no = SolveTopDown(p, A("t(1, 9)"), &db, opts);
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->rows.empty());
}

TEST(TopDownTest, EqualBuiltin) {
  ast::Program p = P("q(X, Y) :- e(X), equal(X, Y).");
  Database db;
  AddFacts(&db, "e(1).");
  auto answers = SolveTopDown(p, A("q(X, Y)"), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(Render(*answers, db), (std::vector<std::string>{"(1, 1)"}));
}

TEST(TopDownTest, CompoundGoalsUnify) {
  ast::Program p = P("head(X, L) :- equal([X | T], L).");
  Database db;
  auto answers = SolveTopDown(p, A("head(H, [1, 2, 3])"), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(Render(*answers, db), (std::vector<std::string>{"(1)"}));
}

TEST(TopDownTest, NonGroundFactsResolve) {
  // Prolog-style fact with variables: head(X, [X | T]).
  ast::Program p = P("head(X, [X | T]).");
  Database db;
  auto answers = SolveTopDown(p, A("head(H, [7, 8])"), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(Render(*answers, db), (std::vector<std::string>{"(7)"}));
}

TEST(TopDownTest, AgreesWithBottomUpOnAcyclicGraphs) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  Database db;
  AddFacts(&db, "e(1, 2). e(1, 3). e(2, 4). e(3, 4). e(4, 5).");
  auto top = SolveTopDown(p, A("t(1, Y)"), &db);
  auto bottom = EvaluateQuery(p, A("t(1, Y)"), &db);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(bottom.ok());
  EXPECT_EQ(top->rows, bottom->rows);
}

}  // namespace
}  // namespace factlog::eval
