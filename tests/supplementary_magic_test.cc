#include "transform/supplementary_magic.h"

#include <gtest/gtest.h>

#include "transform/magic.h"
#include "eval/equivalence.h"
#include "eval/seminaive.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"

namespace factlog::transform {
namespace {

using test::A;
using test::P;

Result<SupplementaryMagicProgram> Supp(const ast::Program& p,
                                       const ast::Atom& q) {
  auto adorned = analysis::Adorn(p, q);
  if (!adorned.ok()) return adorned.status();
  return SupplementaryMagicSets(*adorned);
}

TEST(SupplementaryMagicTest, RightLinearTcStructure) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto supp = Supp(p, A("t(5, Y)"));
  ASSERT_TRUE(supp.ok()) << supp.status().ToString();
  // seed, sup_0_1, magic-from-sup, modified rule, exit rule.
  std::set<std::string> rules;
  for (const ast::Rule& r : supp->program.rules()) rules.insert(r.ToString());
  EXPECT_EQ(rules.count("m_t_bf(5)."), 1u);
  EXPECT_EQ(rules.count("sup_0_1(W, X) :- m_t_bf(X), e(X, W)."), 1u);
  EXPECT_EQ(rules.count("m_t_bf(W) :- sup_0_1(W, X)."), 1u);
  EXPECT_EQ(rules.count("t_bf(X, Y) :- sup_0_1(W, X), t_bf(W, Y)."), 1u);
  EXPECT_EQ(rules.count("t_bf(X, Y) :- m_t_bf(X), e(X, Y)."), 1u);
}

TEST(SupplementaryMagicTest, FactsBecomeGuardedHeads) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(5, 7).
  )");
  auto supp = Supp(p, A("t(5, Y)"));
  ASSERT_TRUE(supp.ok());
  std::set<std::string> rules;
  for (const ast::Rule& r : supp->program.rules()) rules.insert(r.ToString());
  EXPECT_EQ(rules.count("t_bf(5, 7) :- m_t_bf(5)."), 1u);
}

struct SuppCase {
  const char* name;
  const char* program;
  const char* query;
};

class SupplementaryEquivalenceTest
    : public ::testing::TestWithParam<SuppCase> {};

TEST_P(SupplementaryEquivalenceTest, AgreesWithOriginalProgram) {
  ast::Program p = P(GetParam().program);
  ast::Atom q = A(GetParam().query);
  auto supp = Supp(p, q);
  ASSERT_TRUE(supp.ok()) << supp.status().ToString();
  eval::DiffTestOptions opts;
  opts.trials = 60;
  auto ce = eval::FindCounterexample(p, q, supp->program, supp->query, opts);
  ASSERT_TRUE(ce.ok()) << ce.status().ToString();
  EXPECT_FALSE(ce->has_value()) << (*ce)->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Programs, SupplementaryEquivalenceTest,
    ::testing::Values(
        SuppCase{"right_tc",
                 "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).",
                 "t(1, Y)"},
        SuppCase{"nonlinear_tc",
                 "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), t(W, Y).",
                 "t(1, Y)"},
        SuppCase{"same_generation",
                 "sg(X, Y) :- flat(X, Y). "
                 "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
                 "sg(1, Y)"},
        SuppCase{"long_body",
                 "q(X, Y) :- e(X, A), e(A, B), e(B, C), e(C, Y). "
                 "q(X, Y) :- e(X, W), q(W, Y).",
                 "q(1, Y)"}),
    [](const ::testing::TestParamInfo<SuppCase>& info) {
      return info.param.name;
    });

TEST(SupplementaryMagicTest, SharesPrefixWorkAcrossMagicRules) {
  // With two IDB literals behind a shared EDB prefix, plain Magic re-joins
  // the prefix for each magic rule and for the modified rule; supplementary
  // magic computes every stage once. The saving shows in join probe work
  // (rows matched), not head instantiations (sup heads are extra facts).
  ast::Program p = P(R"(
    q(X, Y) :- e(X, Y).
    q(X, Y) :- e(X, A), e(A, B), q(B, C), e(C, D), q(D, Y).
  )");
  ast::Atom q = A("q(1, Y)");
  auto adorned = analysis::Adorn(p, q);
  ASSERT_TRUE(adorned.ok());
  auto plain = MagicSets(*adorned);
  auto supp = SupplementaryMagicSets(*adorned);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(supp.ok());

  eval::Database db1, db2;
  workload::MakeChain(48, "e", &db1);
  workload::MakeChain(48, "e", &db2);
  eval::EvalStats plain_stats, supp_stats;
  auto a1 = eval::EvaluateQuery(plain->program, plain->query, &db1, {},
                                &plain_stats);
  auto a2 = eval::EvaluateQuery(supp->program, supp->query, &db2, {},
                                &supp_stats);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a1->rows, a2->rows);
  // ~40% fewer join probes in this configuration.
  EXPECT_LT(supp_stats.rows_matched, plain_stats.rows_matched);
}

}  // namespace
}  // namespace factlog::transform
