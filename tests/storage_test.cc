// Tests for the disk-backed persistence subsystem (src/storage) and its
// engine integration: slotted-page row stores under buffer-pool eviction,
// WAL framing and torn-tail recovery, checkpoint round-trips of relations /
// values / views / plans, the stale-plan guard, and a kill-point sweep
// asserting recovery lands exactly on the last committed epoch.

#include "storage/storage_manager.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "eval/relation.h"
#include "storage/buffer_pool.h"
#include "storage/log_records.h"
#include "storage/paged_store.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace factlog::storage {
namespace {

namespace fs = std::filesystem;

using test::A;
using test::P;

// RAII scratch directory under the system temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("factlog_" + tag + "_" + std::to_string(counter_++)))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};
int ScratchDir::counter_ = 0;

// Every ground fact in the engine's EDB rendered "pred(v1, v2)" — the
// cross-restart equality oracle (ValueIds differ between stores; the
// rendering does not).
std::set<std::string> EdbFacts(api::Engine* engine) {
  std::set<std::string> out;
  const eval::ValueStore& store = engine->db().store();
  for (const auto& [name, rel] : engine->db().relations()) {
    rel->SyncShards();
    for (size_t r = 0; r < rel->size(); ++r) {
      const eval::ValueId* row = rel->row(r);
      std::string s = name + "(";
      for (size_t i = 0; i < rel->arity(); ++i) {
        if (i > 0) s += ", ";
        s += store.ToString(row[i]);
      }
      s += ")";
      out.insert(std::move(s));
    }
  }
  return out;
}

std::set<std::string> Tuples(const eval::AnswerSet& answers,
                             const eval::ValueStore& store) {
  std::set<std::string> out;
  for (const auto& row : answers.rows) {
    std::string s = "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ", ";
      s += store.ToString(row[i]);
    }
    s += ")";
    out.insert(std::move(s));
  }
  return out;
}

// ---- PagedRowStore ----------------------------------------------------------

TEST(PagedStore, AppendCopyWritePopRoundTrip) {
  ScratchDir dir("rowstore");
  auto space = std::make_shared<TableSpace>(/*frame_budget=*/8);
  ASSERT_TRUE(space->file.Open(dir.path() + "/pages.db").ok());
  PagedRowStore store(space, /*row_bytes=*/2 * sizeof(int32_t));
  const size_t kRows = 5000;  // spans many pages
  for (size_t i = 0; i < kRows; ++i) {
    int32_t row[2] = {static_cast<int32_t>(i), static_cast<int32_t>(i * 7)};
    ASSERT_TRUE(store.Append(row).ok());
  }
  ASSERT_EQ(store.num_rows(), kRows);
  int32_t got[2];
  for (size_t i = 0; i < kRows; i += 97) {
    ASSERT_TRUE(store.CopyRow(i, got).ok());
    EXPECT_EQ(got[0], static_cast<int32_t>(i));
    EXPECT_EQ(got[1], static_cast<int32_t>(i * 7));
  }
  int32_t patched[2] = {-1, -2};
  ASSERT_TRUE(store.WriteRow(1234, patched).ok());
  ASSERT_TRUE(store.CopyRow(1234, got).ok());
  EXPECT_EQ(got[0], -1);
  ASSERT_TRUE(store.PopBack().ok());
  EXPECT_EQ(store.num_rows(), kRows - 1);
  // The tiny frame budget forces eviction (and dirty write-back) mid-append.
  EXPECT_GT(space->pool.stats().evictions, 0u);
  EXPECT_GT(space->pool.stats().dirty_writebacks, 0u);
}

TEST(PagedStore, SealedPageRelocatesOnWrite) {
  ScratchDir dir("seal");
  auto space = std::make_shared<TableSpace>(8);
  ASSERT_TRUE(space->file.Open(dir.path() + "/pages.db").ok());
  PagedRowStore store(space, sizeof(int32_t));
  for (int32_t i = 0; i < 10; ++i) ASSERT_TRUE(store.Append(&i).ok());
  std::vector<PageId> before = store.chain();
  ASSERT_EQ(before.size(), 1u);
  store.SealAll();
  int32_t v = 99;
  ASSERT_TRUE(store.WriteRow(0, &v).ok());
  // Copy-on-write: the sealed page moved to a fresh id.
  EXPECT_NE(store.chain()[0], before[0]);
  int32_t got = 0;
  ASSERT_TRUE(store.CopyRow(0, &got).ok());
  EXPECT_EQ(got, 99);
  ASSERT_TRUE(store.CopyRow(5, &got).ok());
  EXPECT_EQ(got, 5);
}

// ---- Paged relations vs the RAM oracle --------------------------------------

TEST(PagedRelation, MatchesRamOracleUnderChurn) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    ScratchDir dir("churn");
    auto space = std::make_shared<TableSpace>(16);
    ASSERT_TRUE(space->file.Open(dir.path() + "/pages.db").ok());
    eval::StorageOptions so;
    so.num_shards = shards;
    eval::Relation paged(2, so);
    eval::Relation ram(2, so);
    std::mt19937 rng(42);
    std::vector<std::vector<eval::ValueId>> live;
    for (int step = 0; step < 4000; ++step) {
      if (step == 500) {
        ASSERT_TRUE(paged.AttachPagedStore(space));
      }
      bool insert = live.empty() || rng() % 3 != 0;
      if (insert) {
        std::vector<eval::ValueId> row = {
            static_cast<eval::ValueId>(rng() % 500),
            static_cast<eval::ValueId>(rng() % 500)};
        EXPECT_EQ(paged.Insert(row), ram.Insert(row));
        live.push_back(std::move(row));
      } else {
        size_t pick = rng() % live.size();
        std::vector<eval::ValueId> row = live[pick];
        live.erase(live.begin() + pick);
        EXPECT_EQ(paged.Erase(row.data()), ram.Erase(row.data()));
      }
    }
    paged.SyncShards();
    ram.SyncShards();
    ASSERT_EQ(paged.size(), ram.size());
    EXPECT_TRUE(paged.is_paged());
    std::set<std::vector<eval::ValueId>> a, b;
    for (size_t r = 0; r < paged.size(); ++r) {
      const eval::ValueId* row = paged.row(r);  // one call: the copy-out
      a.emplace(row, row + 2);                  // ring rotates per row()
    }
    for (size_t r = 0; r < ram.size(); ++r) {
      const eval::ValueId* row = ram.row(r);
      b.emplace(row, row + 2);
    }
    EXPECT_EQ(a, b);
  }
}

// ---- WAL --------------------------------------------------------------------

TEST(Wal, TornTailIsDropped) {
  ScratchDir dir("wal");
  const std::string path = dir.path() + "/wal.log";
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, 0).ok());
    ASSERT_TRUE(
        w.Append(WalRecordType::kAddFact, EncodeFactRecord(A("e(1, 2)")))
            .ok());
    ASSERT_TRUE(w.Commit(1).ok());
    ASSERT_TRUE(
        w.Append(WalRecordType::kAddFact, EncodeFactRecord(A("e(2, 3)")))
            .ok());
    ASSERT_TRUE(w.Commit(2).ok());
  }
  std::vector<WalRecord> records;
  uint64_t valid = 0;
  ASSERT_TRUE(ReadWal(path, &records, &valid).ok());
  ASSERT_EQ(records.size(), 4u);
  // Chop mid-way into the final commit record: the prefix survives intact.
  fs::resize_file(path, valid - 3);
  records.clear();
  ASSERT_TRUE(ReadWal(path, &records, &valid).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].type, WalRecordType::kAddFact);
  ast::Atom fact;
  ASSERT_TRUE(DecodeFactRecord(records[2].payload.data(),
                               records[2].payload.size(), &fact));
  EXPECT_EQ(fact.ToString(), "e(2, 3)");
}

TEST(Wal, CorruptRecordStopsTheScan) {
  ScratchDir dir("walcrc");
  const std::string path = dir.path() + "/wal.log";
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, 0).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(w.Append(WalRecordType::kAddFact,
                           EncodeFactRecord(
                               A("e(" + std::to_string(i) + ", 0)")))
                      .ok());
    }
    ASSERT_TRUE(w.Commit(1).ok());
  }
  std::vector<WalRecord> records;
  uint64_t valid = 0;
  ASSERT_TRUE(ReadWal(path, &records, &valid).ok());
  ASSERT_EQ(records.size(), 5u);
  // Flip one byte mid-log; the scan must stop at the broken record.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  const auto target = static_cast<std::streamoff>(valid / 2 + 2);
  f.seekg(target);
  char c;
  f.get(c);
  f.seekp(target);
  c = static_cast<char>(c ^ 0x5a);
  f.write(&c, 1);
  f.close();
  records.clear();
  Status st = ReadWal(path, &records, &valid);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_LT(records.size(), 5u);
}

// ---- Engine: save, kill, reopen ---------------------------------------------

TEST(EnginePersistence, ReopenRestoresFactsAndAnswers) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    ScratchDir dir("reopen");
    api::EngineOptions opts;
    opts.num_shards = shards;
    const std::string prog =
        "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
    std::set<std::string> facts_before;
    std::set<std::string> answers_before;
    {
      auto engine = api::Engine::Open(dir.path(), opts);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      std::string facts;
      for (int i = 1; i <= 40; ++i) {
        facts += "e(" + std::to_string(i) + ", " + std::to_string(i + 1) +
                 ").\n";
      }
      ASSERT_TRUE((*engine)->LoadFacts(facts).ok());
      ASSERT_TRUE((*engine)->Checkpoint().ok());
      // Post-checkpoint mutations: these live only in the WAL.
      ASSERT_TRUE((*engine)->AddFact(A("e(41, 42)")).ok());
      ASSERT_TRUE((*engine)->RemoveFact(A("e(1, 2)")).ok());
      facts_before = EdbFacts(engine->get());
      auto answers = (*engine)->Query(prog);
      ASSERT_TRUE(answers.ok()) << answers.status().ToString();
      answers_before = Tuples(*answers, (*engine)->db().store());
    }  // destructor = kill (no second checkpoint)
    auto engine = api::Engine::Open(dir.path(), opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ(EdbFacts(engine->get()), facts_before);
    EXPECT_EQ((*engine)->persistence_stats().facts_replayed, 2u);
    auto answers = (*engine)->Query(prog);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    EXPECT_EQ(Tuples(*answers, (*engine)->db().store()), answers_before);
  }
}

TEST(EnginePersistence, CompoundTermsSurviveRestart) {
  ScratchDir dir("compound");
  std::set<std::string> before;
  {
    auto engine = api::Engine::Open(dir.path());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(
        (*engine)->LoadFacts("p(f(1, g(a)), [1, 2, 3]). p(b, []).").ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    // And one compound fact that only the WAL knows about.
    ASSERT_TRUE((*engine)->AddFact(A("p(h(-5), [x, [y]])")).ok());
    before = EdbFacts(engine->get());
  }
  auto engine = api::Engine::Open(dir.path());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(EdbFacts(engine->get()), before);
}

TEST(EnginePersistence, EvictionActiveOnLargerThanBudgetDataset) {
  ScratchDir dir("evict");
  api::EngineOptions opts;
  // 16 frames = 64 KiB of residency; the dataset pages to ~4.3x that.
  opts.storage_frame_budget = 16;
  const int kFacts = 28000;  // arity 2 → ~409 rows/page → ~69 pages
  std::string facts;
  for (int i = 0; i < kFacts; ++i) {
    facts += "e(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  const std::string prog = "b(X) :- e(X, Y), e(Y, Z). ?- b(X).";
  std::set<std::string> answers_mem;
  {
    api::Engine mem;  // in-memory oracle
    ASSERT_TRUE(mem.LoadFacts(facts).ok());
    auto a = mem.Query(prog);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    answers_mem = Tuples(*a, mem.db().store());
  }
  auto engine = api::Engine::Open(dir.path(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->LoadFacts(facts).ok());
  ASSERT_TRUE((*engine)->Checkpoint().ok());
  auto a = (*engine)->Query(prog);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(Tuples(*a, (*engine)->db().store()), answers_mem);
  auto ps = (*engine)->persistence_stats();
  EXPECT_GT(ps.storage.pool.evictions, 0u);
  EXPECT_GT(ps.storage.num_pages, 4 * opts.storage_frame_budget);
}

// ---- Views and plans across restarts ----------------------------------------

TEST(EnginePersistence, MaterializedViewRestoredWithoutReevaluation) {
  ScratchDir dir("view");
  const std::string prog =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  std::set<std::string> answers_before;
  {
    auto engine = api::Engine::Open(dir.path());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->LoadFacts("e(1, 2). e(2, 3). e(3, 4).").ok());
    auto handle = (*engine)->Materialize(prog);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    ASSERT_TRUE((*engine)->AddFact(A("e(4, 5)")).ok());
    auto a = (*engine)->AnswerFromView(*handle);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    answers_before = Tuples(*a, (*engine)->db().store());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
  }
  auto engine = api::Engine::Open(dir.path());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->num_views(), 1u);
  EXPECT_EQ((*engine)->persistence_stats().views_restored, 1u);
  // The query answers from the restored view, not a fresh evaluation.
  auto a = (*engine)->Query(prog);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(Tuples(*a, (*engine)->db().store()), answers_before);
  EXPECT_EQ((*engine)->stats().view_hits, 1u);
  // Incremental maintenance keeps working after the restore.
  ASSERT_TRUE((*engine)->AddFact(A("e(5, 6)")).ok());
  ASSERT_TRUE((*engine)->RemoveFact(A("e(2, 3)")).ok());
  auto maintained = (*engine)->Query(prog);
  ASSERT_TRUE(maintained.ok()) << maintained.status().ToString();
  api::Engine oracle;
  ASSERT_TRUE(oracle.LoadFacts("e(1, 2). e(3, 4). e(4, 5). e(5, 6).").ok());
  auto expect = oracle.Query(prog);
  ASSERT_TRUE(expect.ok()) << expect.status().ToString();
  EXPECT_EQ(Tuples(*maintained, (*engine)->db().store()),
            Tuples(*expect, oracle.db().store()));
}

TEST(EnginePersistence, PlansRestoredAndStaleOnesDropped) {
  ScratchDir dir("plans");
  const std::string small_prog = "a(X) :- e(X, Y). ?- a(X).";
  const std::string big_prog = "b(X) :- f(X, Y). ?- b(X).";
  {
    auto engine = api::Engine::Open(dir.path());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->LoadFacts("e(1, 2). f(1, 2).").ok());
    ASSERT_TRUE((*engine)->Query(small_prog).ok());
    ASSERT_TRUE((*engine)->Query(big_prog).ok());
    EXPECT_EQ((*engine)->plan_cache_size(), 2u);
    // Grow f past the 4x drift threshold, then checkpoint: the persisted
    // f-plan's hints describe a relation 31x smaller than the one the
    // checkpoint records.
    std::string facts;
    for (int i = 10; i < 40; ++i) {
      facts += "f(" + std::to_string(i) + ", 0).\n";
    }
    ASSERT_TRUE((*engine)->LoadFacts(facts).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
  }
  auto engine = api::Engine::Open(dir.path());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto ps = (*engine)->persistence_stats();
  EXPECT_EQ(ps.plans_restored, 1u) << "the e() plan should come back warm";
  EXPECT_EQ(ps.plans_dropped_stale, 1u) << "the f() plan drifted 31x";
  // The restored plan serves the first query as a cache hit.
  api::QueryStats qs;
  auto a = (*engine)->Query(P(small_prog), A("a(X)"), api::Strategy::kAuto,
                            &qs);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(qs.cache_hit);
}

TEST(EngineStaleGuard, RuntimeDriftRecostsCachedPlanInPlace) {
  api::Engine engine;  // in-memory: the guard is not persistence-only
  ASSERT_TRUE(engine.LoadFacts("e(1, 2). e(2, 3).").ok());
  const std::string prog = "a(X) :- e(X, Y). ?- a(X).";
  ASSERT_TRUE(engine.Query(prog).ok());
  EXPECT_EQ(engine.stats().plans_invalidated, 0u);
  const uint64_t compiles_before = engine.stats().compiles;
  std::string facts;
  for (int i = 10; i < 60; ++i) {
    facts += "e(" + std::to_string(i) + ", 0).\n";
  }
  ASSERT_TRUE(engine.LoadFacts(facts).ok());
  api::QueryStats qs;
  ASSERT_TRUE(
      engine.Query(P(prog), A("a(X)"), api::Strategy::kAuto, &qs).ok());
  // 26x extent drift: the cached plan is re-costed in place — still a cache
  // hit, the join orders rebuilt from current sizes, zero recompiles.
  EXPECT_TRUE(qs.cache_hit) << "re-costing must not evict the cached plan";
  EXPECT_EQ(engine.stats().plans_invalidated, 1u);
  EXPECT_EQ(engine.stats().plans_recosted, 1u);
  EXPECT_EQ(engine.stats().compiles, compiles_before)
      << "drift must re-cost, not recompile";
  // The re-costed plan's hints now match current sizes: the next hit sticks.
  ASSERT_TRUE(
      engine.Query(P(prog), A("a(X)"), api::Strategy::kAuto, &qs).ok());
  EXPECT_TRUE(qs.cache_hit);
  EXPECT_EQ(engine.stats().plans_invalidated, 1u);
  EXPECT_EQ(engine.stats().plans_recosted, 1u);
}

// ---- Kill-point sweep -------------------------------------------------------

// Parses the WAL's physical framing independently of the storage layer's
// reader: the byte offset just past each record, and the cumulative number
// of commit records completed at that offset.
struct WalLayout {
  std::vector<uint64_t> record_ends;
  std::vector<size_t> commits_at_end;
};

WalLayout ParseWalLayout(const std::string& path) {
  WalLayout out;
  std::ifstream f(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  uint64_t pos = 0;
  size_t commits = 0;
  while (pos + 4 <= bytes.size()) {
    uint32_t len;
    std::memcpy(&len, bytes.data() + pos, 4);
    const uint64_t end = pos + 4 + len + 4;
    if (len < 1 || end > bytes.size()) break;
    const auto type = static_cast<uint8_t>(bytes[pos + 4]);
    if (type == static_cast<uint8_t>(WalRecordType::kCommit)) ++commits;
    out.record_ends.push_back(end);
    out.commits_at_end.push_back(commits);
    pos = end;
  }
  return out;
}

TEST(KillPointSweep, RecoveryLandsOnLastCommittedEpoch) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    ScratchDir dir("kill");
    api::EngineOptions opts;
    opts.num_shards = shards;

    // Epoch script: each entry commits one epoch (one AddFact/RemoveFact).
    // epoch_facts[k] = the EDB after k committed post-checkpoint epochs.
    std::vector<std::set<std::string>> epoch_facts;
    {
      auto engine = api::Engine::Open(dir.path(), opts);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      ASSERT_TRUE((*engine)->LoadFacts("e(1, 2). e(2, 3). e(3, 1).").ok());
      ASSERT_TRUE((*engine)->Checkpoint().ok());
      epoch_facts.push_back(EdbFacts(engine->get()));
      const std::vector<std::pair<bool, std::string>> script = {
          {true, "e(4, 5)"},         {true, "e(5, 6)"},  {false, "e(1, 2)"},
          {true, "p(f(7), [8, 9])"}, {false, "e(5, 6)"}, {true, "e(6, 7)"},
      };
      for (const auto& [insert, fact] : script) {
        ASSERT_TRUE((insert ? (*engine)->AddFact(A(fact))
                            : (*engine)->RemoveFact(A(fact)))
                        .ok());
        epoch_facts.push_back(EdbFacts(engine->get()));
      }
    }

    const std::string wal = dir.path() + "/wal.log";
    WalLayout layout = ParseWalLayout(wal);
    const uint64_t wal_size = fs::file_size(wal);
    ASSERT_FALSE(layout.record_ends.empty());
    ASSERT_EQ(layout.record_ends.back(), wal_size);
    ASSERT_EQ(layout.commits_at_end.back(), epoch_facts.size() - 1);

    // Kill points: every record boundary, one byte into the next record
    // (a torn write), and the degenerate empty/near-empty log.
    std::vector<uint64_t> cuts = {0, 1};
    for (size_t i = 0; i < layout.record_ends.size(); ++i) {
      cuts.push_back(layout.record_ends[i]);
      if (layout.record_ends[i] + 1 < wal_size) {
        cuts.push_back(layout.record_ends[i] + 1);
      }
    }
    for (uint64_t cut : cuts) {
      SCOPED_TRACE("cut at byte " + std::to_string(cut));
      ScratchDir crash("killcopy");
      fs::copy(dir.path(), crash.path(),
               fs::copy_options::recursive |
                   fs::copy_options::overwrite_existing);
      fs::resize_file(crash.path() + "/wal.log", cut);
      // Epochs whose commit record fully precedes the cut survive; nothing
      // after the last such commit may.
      size_t committed = 0;
      for (size_t i = 0; i < layout.record_ends.size(); ++i) {
        if (layout.record_ends[i] <= cut) committed = layout.commits_at_end[i];
      }
      auto engine = api::Engine::Open(crash.path(), opts);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      EXPECT_EQ(EdbFacts(engine->get()), epoch_facts[committed]);
      // Recovery truncated the torn tail; the engine keeps accepting writes.
      ASSERT_TRUE((*engine)->AddFact(A("q(1)")).ok());
    }
  }
}

TEST(KillPointSweep, CorruptTailRecordIsDiscarded) {
  ScratchDir dir("corrupt");
  std::set<std::string> committed_facts;
  {
    auto engine = api::Engine::Open(dir.path());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->LoadFacts("e(1, 2).").ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    ASSERT_TRUE((*engine)->AddFact(A("e(2, 3)")).ok());
    committed_facts = EdbFacts(engine->get());
    ASSERT_TRUE((*engine)->AddFact(A("e(3, 4)")).ok());
  }
  // Flip a byte inside the LAST epoch's fact record: its commit now follows
  // a corrupt record, so recovery must stop before both.
  const std::string wal = dir.path() + "/wal.log";
  WalLayout layout = ParseWalLayout(wal);
  ASSERT_EQ(layout.record_ends.size(), 4u);  // fact, commit, fact, commit
  const auto target =
      static_cast<std::streamoff>(layout.record_ends[1] + 5);  // payload byte
  std::fstream f(wal, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(target);
  char c;
  f.get(c);
  f.seekp(target);
  c = static_cast<char>(c ^ 0x5a);
  f.write(&c, 1);
  f.close();
  auto engine = api::Engine::Open(dir.path());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(EdbFacts(engine->get()), committed_facts);
}

// ---- Storage stats ----------------------------------------------------------

TEST(StorageStats, CountersMove) {
  ScratchDir dir("stats");
  auto engine = api::Engine::Open(dir.path());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->persistent());
  ASSERT_TRUE((*engine)->LoadFacts("e(1, 2). e(2, 3).").ok());
  auto ps = (*engine)->persistence_stats();
  EXPECT_EQ(ps.storage.wal_records_logged, 2u);
  EXPECT_GT(ps.storage.wal_bytes, 0u);
  EXPECT_EQ(ps.storage.last_committed_epoch, 1u);
  ASSERT_TRUE((*engine)->Checkpoint().ok());
  ps = (*engine)->persistence_stats();
  EXPECT_EQ(ps.storage.checkpoints, 1u);
  EXPECT_EQ(ps.storage.wal_bytes, 0u) << "checkpoint resets the WAL";
  EXPECT_GT(ps.storage.num_pages, 0u);
}

}  // namespace
}  // namespace factlog::storage
