// Unit tests for the work-stealing thread pool.

#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace factlog::exec {
namespace {

TEST(ThreadPoolTest, ZeroWidthPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_GE(pool.stats().executed, kN);
}

TEST(ThreadPoolTest, ConcurrentSumMatchesSequential) {
  ThreadPool pool(8);
  constexpr size_t kN = 5'000;
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(kN, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 64u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 4u * 8u);
}

TEST(ThreadPoolTest, SingleIndexRunsOnCaller) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, UnevenTaskDurationsComplete) {
  // Front-loaded long tasks force stealing to finish in reasonable time.
  ThreadPool pool(4);
  std::atomic<uint64_t> work{0};
  pool.ParallelFor(32, [&](size_t i) {
    uint64_t spin = (i < 4) ? 200'000 : 100;
    uint64_t acc = 0;
    for (uint64_t k = 0; k < spin; ++k) acc += k * k;
    work.fetch_add(acc == 0 ? 1 : 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(work.load(), 32u);
}

}  // namespace
}  // namespace factlog::exec
