// Tests for the DerivationEdgeStore: fact interning and dedup, edge dedup,
// per-occurrence uses lists, orphan freeing and slot reuse on RemoveEdge,
// the hard edge budget, and derivation-tree reconstruction from the
// hypergraph (including cyclic support).

#include "eval/provenance.h"

#include <gtest/gtest.h>

#include <vector>

namespace factlog::eval {
namespace {

using FactId = DerivationEdgeStore::FactId;
using EdgeId = DerivationEdgeStore::EdgeId;

FactId Intern(DerivationEdgeStore* store, const char* pred,
              std::vector<ValueId> row) {
  return store->InternFact(pred, row.data(), row.size());
}

TEST(DerivationEdgeStoreTest, InternDeduplicatesAndFindsFacts) {
  DerivationEdgeStore store(/*max_edges=*/100);
  FactId a = Intern(&store, "e", {1, 2});
  FactId b = Intern(&store, "e", {1, 2});
  FactId c = Intern(&store, "e", {2, 1});
  FactId d = Intern(&store, "t", {1, 2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);  // same row, different predicate
  EXPECT_EQ(store.num_facts(), 3u);

  std::vector<ValueId> row = {1, 2};
  EXPECT_EQ(store.FindFact("e", row.data(), row.size()), a);
  EXPECT_EQ(store.FindFact("t", row.data(), row.size()), d);
  std::vector<ValueId> missing = {9, 9};
  EXPECT_EQ(store.FindFact("e", missing.data(), missing.size()),
            DerivationEdgeStore::kNoFact);

  EXPECT_EQ(store.pred_of(a), "e");
  EXPECT_EQ(store.row_of(a), row);
  EXPECT_GE(store.PredId("e"), 0);
  EXPECT_EQ(store.PredId("never_seen"), -1);
  EXPECT_EQ(static_cast<int>(store.pred_id_of(a)), store.PredId("e"));
}

TEST(DerivationEdgeStoreTest, AddEdgeDeduplicatesPerHead) {
  DerivationEdgeStore store(/*max_edges=*/100);
  FactId head = Intern(&store, "t", {1, 3});
  FactId p1 = Intern(&store, "e", {1, 2});
  FactId p2 = Intern(&store, "t", {2, 3});

  EXPECT_TRUE(store.AddEdge(head, 1, {p1, p2}));
  EXPECT_FALSE(store.AddEdge(head, 1, {p1, p2}));  // exact duplicate
  EXPECT_EQ(store.num_edges(), 1u);
  EXPECT_TRUE(store.AddEdge(head, 2, {p1, p2}));  // same body, other rule
  EXPECT_TRUE(store.AddEdge(head, 1, {p2, p1}));  // other premise order
  EXPECT_EQ(store.num_edges(), 3u);
  EXPECT_EQ(store.derivations_of(head).size(), 3u);
  EXPECT_EQ(store.edges_added(), 3u);

  EdgeId e = store.derivations_of(head)[0];
  EXPECT_EQ(store.head_of(e), head);
  EXPECT_EQ(store.rule_of(e), 1);
  EXPECT_EQ(store.premises_of(e), (std::vector<FactId>{p1, p2}));
}

TEST(DerivationEdgeStoreTest, UsesListHasOneEntryPerOccurrence) {
  DerivationEdgeStore store(/*max_edges=*/100);
  FactId head = Intern(&store, "p", {5});
  FactId prem = Intern(&store, "q", {7});
  ASSERT_TRUE(store.AddEdge(head, 0, {prem, prem}));
  // Repeated premises get one uses entry each, so occurrence-counted
  // decrements during slice deletion stay balanced.
  EXPECT_EQ(store.uses_of(prem).size(), 2u);
}

TEST(DerivationEdgeStoreTest, RemoveEdgeFreesOrphansAndReusesSlots) {
  DerivationEdgeStore store(/*max_edges=*/100);
  FactId head = Intern(&store, "t", {1, 2});
  FactId prem = Intern(&store, "e", {1, 2});
  ASSERT_TRUE(store.AddEdge(head, 0, {prem}));
  EXPECT_EQ(store.num_facts(), 2u);

  EdgeId e = store.derivations_of(head)[0];
  store.RemoveEdge(e);
  EXPECT_EQ(store.num_edges(), 0u);
  EXPECT_EQ(store.edges_removed(), 1u);
  // Both facts lost their last edge and are freed.
  EXPECT_EQ(store.num_facts(), 0u);
  std::vector<ValueId> row = {1, 2};
  EXPECT_EQ(store.FindFact("t", row.data(), row.size()),
            DerivationEdgeStore::kNoFact);

  store.RemoveEdge(e);  // already removed: no-op
  EXPECT_EQ(store.edges_removed(), 1u);

  // Freed slots are recycled, so long-lived stores don't grow monotonically.
  const size_t capacity = store.fact_capacity();
  Intern(&store, "t", {9, 9});
  Intern(&store, "e", {9, 9});
  EXPECT_EQ(store.fact_capacity(), capacity);
}

TEST(DerivationEdgeStoreTest, SharedPremiseSurvivesPartialRemoval) {
  DerivationEdgeStore store(/*max_edges=*/100);
  FactId h1 = Intern(&store, "t", {1});
  FactId h2 = Intern(&store, "t", {2});
  FactId prem = Intern(&store, "e", {0});
  ASSERT_TRUE(store.AddEdge(h1, 0, {prem}));
  ASSERT_TRUE(store.AddEdge(h2, 0, {prem}));

  store.RemoveEdge(store.derivations_of(h1)[0]);
  // prem is still used by h2's edge; only h1 was orphaned.
  EXPECT_EQ(store.num_facts(), 2u);
  EXPECT_EQ(store.uses_of(prem).size(), 1u);
  std::vector<ValueId> row = {0};
  EXPECT_NE(store.FindFact("e", row.data(), row.size()),
            DerivationEdgeStore::kNoFact);
}

TEST(DerivationEdgeStoreTest, EdgeBudgetOverflowSticks) {
  DerivationEdgeStore store(/*max_edges=*/1);
  FactId h1 = Intern(&store, "t", {1});
  FactId h2 = Intern(&store, "t", {2});
  FactId prem = Intern(&store, "e", {0});
  EXPECT_TRUE(store.AddEdge(h1, 0, {prem}));
  EXPECT_FALSE(store.over_budget());
  EXPECT_FALSE(store.AddEdge(h2, 0, {prem}));  // rejected, budget exhausted
  EXPECT_TRUE(store.over_budget());
  EXPECT_EQ(store.num_edges(), 1u);
  // The flag is sticky even after load drops back under the budget: the
  // store may already be missing edges and can no longer be trusted.
  store.RemoveEdge(store.derivations_of(h1)[0]);
  EXPECT_TRUE(store.over_budget());
}

TEST(DerivationTreeFromEdgesTest, ChainExpandsToLeaves) {
  DerivationEdgeStore store(/*max_edges=*/100);
  FactId e1 = Intern(&store, "e", {1, 2});
  FactId t1 = Intern(&store, "t", {1, 2});
  FactId e2 = Intern(&store, "e", {2, 3});
  FactId t2 = Intern(&store, "t", {1, 3});
  ASSERT_TRUE(store.AddEdge(t1, 0, {e1}));
  ASSERT_TRUE(store.AddEdge(t2, 1, {t1, e2}));

  DerivationTree tree =
      BuildDerivationTree(store, FactKey{"t", {1, 3}});
  EXPECT_EQ(tree.fact.predicate, "t");
  EXPECT_EQ(tree.rule_index, 1);
  ASSERT_EQ(tree.children.size(), 2u);
  EXPECT_EQ(tree.children[0].fact.predicate, "t");
  EXPECT_EQ(tree.children[0].rule_index, 0);
  EXPECT_EQ(tree.children[1].rule_index, -1);  // EDB leaf
  EXPECT_EQ(tree.Height(), 3u);
  EXPECT_EQ(tree.NodeCount(), 4u);

  // Unknown facts come back as plain leaves.
  DerivationTree leaf =
      BuildDerivationTree(store, FactKey{"t", {9, 9}});
  EXPECT_EQ(leaf.rule_index, -1);
  EXPECT_TRUE(leaf.children.empty());
}

TEST(DerivationTreeFromEdgesTest, CyclicSupportStaysFinite) {
  DerivationEdgeStore store(/*max_edges=*/100);
  FactId a = Intern(&store, "p", {1});
  FactId b = Intern(&store, "p", {2});
  FactId ground = Intern(&store, "e", {0});
  // a and b support each other; a additionally grounds out in an EDB fact.
  ASSERT_TRUE(store.AddEdge(a, 0, {b}));
  ASSERT_TRUE(store.AddEdge(a, 1, {ground}));
  ASSERT_TRUE(store.AddEdge(b, 0, {a}));

  // From b the builder must not loop: it reaches a, and expands a through
  // the derivation that avoids the path back to b.
  DerivationTree tree = BuildDerivationTree(store, FactKey{"p", {2}});
  EXPECT_LE(tree.Height(), 3u);
  ASSERT_EQ(tree.children.size(), 1u);
  const DerivationTree& a_node = tree.children[0];
  EXPECT_EQ(a_node.fact, (FactKey{"p", {1}}));
  ASSERT_EQ(a_node.children.size(), 1u);
  EXPECT_EQ(a_node.children[0].fact, (FactKey{"e", {0}}));
}

}  // namespace
}  // namespace factlog::eval
