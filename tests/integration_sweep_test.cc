// Integration sweep: the optimizer pipeline must preserve query answers for
// every (program, workload family) combination. This is the end-to-end
// safety net behind all benchmark comparisons: whatever the pipeline emits
// (magic only, or factored + §5-optimized) computes exactly the original
// answers on concrete databases.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "eval/seminaive.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"

namespace factlog {
namespace {

using test::A;
using test::P;

struct SweepCase {
  const char* program_name;
  const char* program;
  const char* query;
  const char* workload_name;
  void (*make)(eval::Database* db);
};

void Chain(eval::Database* db) { workload::MakeChain(24, "e", db); }
void Cycle(eval::Database* db) { workload::MakeCycle(16, "e", db); }
void Tree(eval::Database* db) { workload::MakeTree(2, 4, "e", db); }
void Grid(eval::Database* db) { workload::MakeGrid(5, 5, "e", db); }
void Random(eval::Database* db) {
  workload::MakeChain(12, "e", db);
  workload::MakeRandomGraph(12, 24, 1234, "e", db);
}
void SelfLoops(eval::Database* db) {
  workload::MakeChain(8, "e", db);
  db->AddPair("e", 1, 1);
  db->AddPair("e", 5, 5);
}
void Empty(eval::Database*) {}

struct ProgramSpec {
  const char* name;
  const char* text;
  const char* query;
};

const ProgramSpec kPrograms[] = {
    {"right_tc", "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).",
     "t(1, Y)"},
    {"left_tc", "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y).",
     "t(1, Y)"},
    {"nonlinear_tc", "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), t(W, Y).",
     "t(1, Y)"},
    {"three_form_tc",
     "t(X, Y) :- t(X, W), t(W, Y). t(X, Y) :- e(X, W), t(W, Y). "
     "t(X, Y) :- t(X, W), e(W, Y). t(X, Y) :- e(X, Y).",
     "t(1, Y)"},
    {"reverse_bound", "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).",
     "t(X, 8)"},
    {"two_hop_exit",
     "t(X, Y) :- e(X, W), e(W, Y). t(X, Y) :- e(X, W), t(W, Y).",
     "t(1, Y)"},
};

struct WorkloadSpec {
  const char* name;
  void (*make)(eval::Database* db);
};

const WorkloadSpec kWorkloads[] = {
    {"chain", Chain},   {"cycle", Cycle},          {"tree", Tree},
    {"grid", Grid},     {"random_plus_chain", Random},
    {"self_loops", SelfLoops},                     {"empty", Empty},
};

class PipelineSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineSweepTest, FinalProgramMatchesOriginalAnswers) {
  const ProgramSpec& ps = kPrograms[std::get<0>(GetParam())];
  const WorkloadSpec& ws = kWorkloads[std::get<1>(GetParam())];

  ast::Program program = P(ps.text);
  ast::Atom query = A(ps.query);
  auto pipe = core::OptimizeQuery(program, query);
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();

  eval::Database db_orig, db_final;
  ws.make(&db_orig);
  ws.make(&db_final);

  auto original = eval::EvaluateQuery(program, query, &db_orig);
  auto optimized = eval::EvaluateQuery(pipe->final_program(),
                                       pipe->final_query(), &db_final);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_EQ(original->rows.size(), optimized->rows.size());
  // Rows come from different stores but integers intern identically only
  // within one store; compare through rendered terms.
  EXPECT_EQ(original->ToString(db_orig.store()),
            optimized->ToString(db_final.store()));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, PipelineSweepTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kPrograms[std::get<0>(info.param)].name) + "_x_" +
             kWorkloads[std::get<1>(info.param)].name;
    });

TEST(PipelineSweepTest, NaiveSemiNaiveMagicFactoredAllAgree) {
  // One deep cross-engine check on a single configuration.
  ast::Program program = P(
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  ast::Atom query = A("t(1, Y)");
  auto pipe = core::OptimizeQuery(program, query);
  ASSERT_TRUE(pipe.ok());

  auto run = [&](const ast::Program& p, const ast::Atom& q,
                 eval::Strategy strategy) {
    eval::Database db;
    workload::MakeGrid(4, 4, "e", &db);
    eval::EvalOptions opts;
    opts.strategy = strategy;
    auto answers = eval::EvaluateQuery(p, q, &db, opts);
    EXPECT_TRUE(answers.ok());
    return answers.ok() ? answers->rows.size() : size_t{0};
  };

  size_t naive = run(program, query, eval::Strategy::kNaive);
  size_t semi = run(program, query, eval::Strategy::kSemiNaive);
  size_t magic = run(pipe->magic.program, pipe->magic.query,
                     eval::Strategy::kSemiNaive);
  size_t factored = run(pipe->final_program(), pipe->final_query(),
                        eval::Strategy::kSemiNaive);
  EXPECT_EQ(naive, semi);
  EXPECT_EQ(semi, magic);
  EXPECT_EQ(magic, factored);
  EXPECT_EQ(factored, 15u);  // a 4x4 grid: every non-source cell
}

}  // namespace
}  // namespace factlog
