// Integration sweep: the optimizer pipeline must preserve query answers for
// every (program, workload family) combination. This is the end-to-end
// safety net behind all benchmark comparisons: whatever the pipeline emits
// (magic only, or factored + §5-optimized) computes exactly the original
// answers on concrete databases. The corpus lives in sweep_corpus.h, shared
// with the parallel-determinism sweep in exec_test.cc.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "eval/seminaive.h"
#include "tests/sweep_corpus.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"

namespace factlog {
namespace {

using test::A;
using test::kNumSweepPrograms;
using test::kNumSweepWorkloads;
using test::kSweepPrograms;
using test::kSweepWorkloads;
using test::P;

class PipelineSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineSweepTest, FinalProgramMatchesOriginalAnswers) {
  const test::SweepProgram& ps = kSweepPrograms[std::get<0>(GetParam())];
  const test::SweepWorkload& ws = kSweepWorkloads[std::get<1>(GetParam())];

  ast::Program program = P(ps.text);
  ast::Atom query = A(ps.query);
  auto pipe = core::OptimizeQuery(program, query);
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();

  eval::Database db_orig, db_final;
  ws.make(&db_orig);
  ws.make(&db_final);

  auto original = eval::EvaluateQuery(program, query, &db_orig);
  auto optimized = eval::EvaluateQuery(pipe->final_program(),
                                       pipe->final_query(), &db_final);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_EQ(original->rows.size(), optimized->rows.size());
  // Rows come from different stores but integers intern identically only
  // within one store; compare through rendered terms.
  EXPECT_EQ(original->ToString(db_orig.store()),
            optimized->ToString(db_final.store()));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, PipelineSweepTest,
    ::testing::Combine(::testing::Range(0, kNumSweepPrograms),
                       ::testing::Range(0, kNumSweepWorkloads)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kSweepPrograms[std::get<0>(info.param)].name) +
             "_x_" + kSweepWorkloads[std::get<1>(info.param)].name;
    });

TEST(PipelineSweepTest, NaiveSemiNaiveMagicFactoredAllAgree) {
  // One deep cross-engine check on a single configuration.
  ast::Program program = P(
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  ast::Atom query = A("t(1, Y)");
  auto pipe = core::OptimizeQuery(program, query);
  ASSERT_TRUE(pipe.ok());

  auto run = [&](const ast::Program& p, const ast::Atom& q,
                 eval::Strategy strategy) {
    eval::Database db;
    workload::MakeGrid(4, 4, "e", &db);
    eval::EvalOptions opts;
    opts.strategy = strategy;
    auto answers = eval::EvaluateQuery(p, q, &db, opts);
    EXPECT_TRUE(answers.ok());
    return answers.ok() ? answers->rows.size() : size_t{0};
  };

  size_t naive = run(program, query, eval::Strategy::kNaive);
  size_t semi = run(program, query, eval::Strategy::kSemiNaive);
  size_t magic = run(pipe->magic.program, pipe->magic.query,
                     eval::Strategy::kSemiNaive);
  size_t factored = run(pipe->final_program(), pipe->final_query(),
                        eval::Strategy::kSemiNaive);
  EXPECT_EQ(naive, semi);
  EXPECT_EQ(semi, magic);
  EXPECT_EQ(magic, factored);
  EXPECT_EQ(factored, 15u);  // a 4x4 grid: every non-source cell
}

}  // namespace
}  // namespace factlog
