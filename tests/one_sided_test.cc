#include "core/one_sided.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "tests/test_util.h"

namespace factlog::core {
namespace {

using test::A;
using test::P;
using test::R;

TEST(ExpandRuleTest, TcExpandsToTwoSteps) {
  ast::Rule rule = R("t(X, Y) :- e(X, W), t(W, Y).");
  ast::FreshVarGen gen("_X");
  gen.ReserveFrom(rule);
  auto expanded = ExpandRule(rule, "t", &gen);
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  // t(X, Y) :- e(X, W), e(W, W'), t(W', Y).
  EXPECT_EQ(expanded->body().size(), 3u);
  int e_count = 0, t_count = 0;
  for (const ast::Atom& b : expanded->body()) {
    if (b.predicate() == "e") ++e_count;
    if (b.predicate() == "t") ++t_count;
  }
  EXPECT_EQ(e_count, 2);
  EXPECT_EQ(t_count, 1);
  EXPECT_EQ(expanded->head().args()[0], ast::Term::Var("X"));
}

TEST(ExpandRuleTest, NonlinearRejected) {
  ast::Rule rule = R("t(X, Y) :- t(X, W), t(W, Y).");
  ast::FreshVarGen gen;
  EXPECT_FALSE(ExpandRule(rule, "t", &gen).ok());
}

TEST(ExpandRuleTest, NonrecursiveRejected) {
  ast::Rule rule = R("t(X, Y) :- e(X, Y).");
  ast::FreshVarGen gen;
  EXPECT_FALSE(ExpandRule(rule, "t", &gen).ok());
}

TEST(AvGraphTest, RightLinearTcIsSimpleOneSided) {
  auto report = AnalyzeAvGraph(R("t(X, Y) :- e(X, W), t(W, Y)."), "t");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->IsOneSided());
  EXPECT_TRUE(report->IsSimpleOneSided());
  // Position 0 moves (weight-1 cycle); position 1 is fixed.
  int moving = 0;
  for (const auto& c : report->components) {
    if (c.has_nonzero_cycle) {
      ++moving;
      EXPECT_EQ(c.positions, (std::set<int>{0}));
      EXPECT_EQ(c.cycle_gcd, 1);
    }
  }
  EXPECT_EQ(moving, 1);
}

TEST(AvGraphTest, LeftLinearTcIsOneSidedToo) {
  auto report = AnalyzeAvGraph(R("t(X, Y) :- t(X, W), e(W, Y)."), "t");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->IsOneSided());
}

TEST(AvGraphTest, SameGenerationIsTwoSided) {
  auto report =
      AnalyzeAvGraph(R("sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)."), "sg");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->IsOneSided());
  int moving = 0;
  for (const auto& c : report->components) {
    if (c.has_nonzero_cycle) ++moving;
  }
  EXPECT_EQ(moving, 2);
}

TEST(AvGraphTest, TwoEdbStepsStillWeightOne) {
  // The weight metric counts recursive applications, not EDB atoms: a rule
  // consuming two edges per application still has a weight-1 cycle.
  auto report =
      AnalyzeAvGraph(R("t(X, Y) :- e(X, W), e(W, W2), t(W2, Y)."), "t");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->IsOneSided());
  EXPECT_TRUE(report->IsSimpleOneSided());
}

TEST(AvGraphTest, BothSidesMovingIsTwoSided) {
  auto report = AnalyzeAvGraph(
      R("t(X, Y) :- e1(X, W), e2(Y, V), t(W, V)."), "t");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->IsOneSided());
}

TEST(OneSidedFormTest, TcAlreadyInForm1) {
  auto form = FindOneSidedForm(R("t(X, Y) :- e(X, W), t(W, Y)."), "t");
  ASSERT_TRUE(form.ok());
  ASSERT_TRUE(form->has_value());
  EXPECT_EQ((*form)->expansions, 0);
  EXPECT_EQ((*form)->persistent_positions, (std::set<int>{1}));
}

TEST(OneSidedFormTest, SwappingArgumentsNeedsOneExpansion) {
  // Positions 2 and 3 swap each application; after one self-expansion they
  // persist verbatim — the "expanded to form (1)" device of §6.1.
  auto form =
      FindOneSidedForm(R("p(X, Y, Z) :- e(X, W), p(W, Z, Y)."), "p");
  ASSERT_TRUE(form.ok());
  ASSERT_TRUE(form->has_value());
  EXPECT_EQ((*form)->expansions, 1);
  EXPECT_EQ((*form)->persistent_positions, (std::set<int>{1, 2}));
}

TEST(OneSidedFormTest, SameGenerationHasNoForm1) {
  auto form = FindOneSidedForm(
      R("sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)."), "sg", 6);
  ASSERT_TRUE(form.ok());
  EXPECT_FALSE(form->has_value());
}

TEST(OneSidedFormTest, EdbTouchingPersistentSideRejected) {
  // a(Y) touches the would-be persistent variable Y: not form (1).
  auto form =
      FindOneSidedForm(R("t(X, Y) :- e(X, W), a(Y), t(W, Y)."), "t", 3);
  ASSERT_TRUE(form.ok());
  EXPECT_FALSE(form->has_value());
}

// Theorem 6.2: a simple one-sided recursion with a full-selection query
// factors after Magic Sets.
struct OneSidedCase {
  const char* name;
  const char* program;
  const char* query;
  int expected_expansions;
};

class Theorem62Test : public ::testing::TestWithParam<OneSidedCase> {};

TEST_P(Theorem62Test, SimpleOneSidedFullSelectionFactors) {
  ast::Program p = P(GetParam().program);
  ast::Atom q = A(GetParam().query);
  // Locate the single recursive rule.
  const ast::Rule* recursive = nullptr;
  for (const ast::Rule& r : p.rules()) {
    for (const ast::Atom& b : r.body()) {
      if (b.predicate() == r.head().predicate()) recursive = &r;
    }
  }
  ASSERT_NE(recursive, nullptr);
  auto form = FindOneSidedForm(*recursive, q.predicate());
  ASSERT_TRUE(form.ok());
  ASSERT_TRUE(form->has_value());
  EXPECT_EQ((*form)->expansions, GetParam().expected_expansions);

  // Build the expanded program (expanded recursive rule + exit rule) and
  // run it through the pipeline: both query forms must factor.
  ast::Program expanded;
  expanded.AddRule((*form)->rule);
  for (const ast::Rule& r : p.rules()) {
    if (&r != recursive) expanded.AddRule(r);
  }
  auto pipe = OptimizeQuery(expanded, q);
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();
  EXPECT_TRUE(pipe->factoring_applied) << pipe->classification.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Theorem62Test,
    ::testing::Values(
        OneSidedCase{"tc_bind_moving",
                     "t(X, Y) :- e(X, W), t(W, Y). t(X, Y) :- e(X, Y).",
                     "t(1, Y)", 0},
        OneSidedCase{"tc_bind_fixed",
                     "t(X, Y) :- e(X, W), t(W, Y). t(X, Y) :- e(X, Y).",
                     "t(X, 9)", 0},
        OneSidedCase{"two_step",
                     "t(X, Y) :- e(X, W), e(W, W2), t(W2, Y). "
                     "t(X, Y) :- e0(X, Y).",
                     "t(1, Y)", 0},
        OneSidedCase{"swap",
                     "p(X, Y, Z) :- e(X, W), p(W, Z, Y). "
                     "p(X, Y, Z) :- e0(X, Y, Z).",
                     "p(1, Y, Z)", 1}),
    [](const ::testing::TestParamInfo<OneSidedCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace factlog::core
