#include "transform/magic.h"

#include <gtest/gtest.h>

#include <set>

#include "eval/equivalence.h"
#include "tests/test_util.h"
#include "workload/list_gen.h"

namespace factlog::transform {
namespace {

using test::A;
using test::P;

Result<MagicProgram> Magic(const ast::Program& p, const ast::Atom& q) {
  auto adorned = analysis::Adorn(p, q);
  if (!adorned.ok()) return adorned.status();
  return MagicSets(*adorned);
}

TEST(MagicTest, Figure1ThreeFormTransitiveClosure) {
  // Fig. 1 of the paper, rule for rule (modulo predicate spelling m_t_bf).
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto magic = Magic(p, A("t(5, Y)"));
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  const std::vector<std::string> expected = {
      "m_t_bf(5).",
      "m_t_bf(W) :- m_t_bf(X), t_bf(X, W).",
      "t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), t_bf(W, Y).",
      "m_t_bf(W) :- m_t_bf(X), e(X, W).",
      "t_bf(X, Y) :- m_t_bf(X), e(X, W), t_bf(W, Y).",
      "t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), e(W, Y).",
      "t_bf(X, Y) :- m_t_bf(X), e(X, Y).",
  };
  ASSERT_EQ(magic->program.rules().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(magic->program.rules()[i].ToString(), expected[i]);
  }
  EXPECT_EQ(magic->seed.ToString(), "m_t_bf(5)");
  EXPECT_EQ(magic->query.ToString(), "t_bf(5, Y)");
}

TEST(MagicTest, TriviallyCircularMagicRulesDropped) {
  // Left-linear occurrences would generate m(X) :- m(X); Fig. 1 omits them.
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto magic = Magic(p, A("t(5, Y)"));
  ASSERT_TRUE(magic.ok());
  for (const ast::Rule& r : magic->program.rules()) {
    ASSERT_FALSE(r.body().size() == 1 && r.body()[0] == r.head())
        << r.ToString();
  }
}

TEST(MagicTest, PmemMagicMatchesExample46) {
  ast::Program p = workload::MakePmemProgram(3);
  auto magic = Magic(p, *p.query());
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  // The paper's listing: seed, destructuring magic rule, two guarded rules.
  std::set<std::string> rules;
  for (const ast::Rule& r : magic->program.rules()) rules.insert(r.ToString());
  EXPECT_EQ(rules.count("m_pmem_fb([1, 2, 3])."), 1u);
  EXPECT_EQ(rules.count("m_pmem_fb(T) :- m_pmem_fb([H | T])."), 1u);
  EXPECT_EQ(
      rules.count("pmem_fb(X, [X | T]) :- m_pmem_fb([X | T]), p(X)."), 1u);
  EXPECT_EQ(
      rules.count("pmem_fb(X, [H | T]) :- m_pmem_fb([H | T]), pmem_fb(X, T)."),
      1u);
}

TEST(MagicTest, SeedUsesBoundArgumentsOnly) {
  ast::Program p = P(R"(
    t(X, Y, Z) :- e(X, Y, Z).
    t(X, Y, Z) :- e(X, Y, W), t(X, W, Z).
  )");
  auto magic = Magic(p, A("t(1, 2, Z)"));
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic->seed.ToString(), "m_t_bbf(1, 2)");
}

// Magic Sets preserves query answers: differential test over random EDBs.
struct MagicEquivCase {
  const char* name;
  const char* program;
  const char* query;
};

class MagicEquivalenceTest : public ::testing::TestWithParam<MagicEquivCase> {};

TEST_P(MagicEquivalenceTest, MagicPreservesAnswers) {
  const MagicEquivCase& c = GetParam();
  ast::Program p = P(c.program);
  ast::Atom q = A(c.query);
  auto magic = Magic(p, q);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  eval::DiffTestOptions opts;
  opts.trials = 60;
  auto ce = eval::FindCounterexample(p, q, magic->program, magic->query, opts);
  ASSERT_TRUE(ce.ok()) << ce.status().ToString();
  EXPECT_FALSE(ce->has_value()) << (*ce)->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Programs, MagicEquivalenceTest,
    ::testing::Values(
        MagicEquivCase{"right_tc",
                       "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).",
                       "t(1, Y)"},
        MagicEquivCase{"left_tc",
                       "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y).",
                       "t(1, Y)"},
        MagicEquivCase{"nonlinear_tc",
                       "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), t(W, Y).",
                       "t(1, Y)"},
        MagicEquivCase{"same_generation",
                       "sg(X, Y) :- flat(X, Y). "
                       "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
                       "sg(1, Y)"},
        MagicEquivCase{"two_idb",
                       "q(Y) :- t(1, Y). "
                       "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).",
                       "q(Y)"},
        MagicEquivCase{"second_arg_bound",
                       "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y).",
                       "t(X, 2)"}),
    [](const ::testing::TestParamInfo<MagicEquivCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace factlog::transform
