// End-to-end reproduction of Examples 1.2 / 4.6: list membership with
// function symbols — the paper's showcase that factoring is "useful for
// programs with function symbols (not just for Datalog)".

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "eval/seminaive.h"
#include "eval/topdown.h"
#include "tests/test_util.h"
#include "workload/list_gen.h"

namespace factlog {
namespace {

using test::A;
using test::P;

TEST(PmemTest, AllEnginesAgreeOnAnswers) {
  const int64_t n = 12;
  ast::Program p = workload::MakePmemProgram(n);
  auto pipe = core::OptimizeQuery(p, *p.query());
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();
  ASSERT_TRUE(pipe->factoring_applied);

  eval::Database db1, db2, db3;
  for (auto* db : {&db1, &db2, &db3}) {
    workload::MakeMembershipPredicate(n, 2, 0, "p", db);  // even members
  }
  auto sld = eval::SolveTopDown(p, *p.query(), &db1);
  auto magic = eval::EvaluateQuery(pipe->magic.program, pipe->magic.query,
                                   &db2);
  auto factored = eval::EvaluateQuery(*pipe->optimized, pipe->final_query(),
                                      &db3);
  ASSERT_TRUE(sld.ok()) << sld.status().ToString();
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  ASSERT_TRUE(factored.ok()) << factored.status().ToString();
  EXPECT_EQ(sld->rows.size(), static_cast<size_t>(n / 2));
  EXPECT_EQ(sld->rows, magic->rows);
  EXPECT_EQ(magic->rows, factored->rows);
}

TEST(PmemTest, MagicAloneMaterializesQuadraticFacts) {
  // pmem_fb(x_i, [x_j..x_n]) for j <= i: Theta(n^2) facts in the Magic
  // program; the factored program stores Theta(n).
  const int64_t n = 32;
  ast::Program p = workload::MakePmemProgram(n);
  auto pipe = core::OptimizeQuery(p, *p.query());
  ASSERT_TRUE(pipe.ok());

  eval::Database db1, db2;
  workload::MakeMembershipPredicate(n, 1, 0, "p", &db1);
  workload::MakeMembershipPredicate(n, 1, 0, "p", &db2);

  auto magic = eval::Evaluate(pipe->magic.program, &db1);
  ASSERT_TRUE(magic.ok());
  auto factored = eval::Evaluate(*pipe->optimized, &db2);
  ASSERT_TRUE(factored.ok());

  size_t magic_pairs = magic->SizeOf("pmem_fb");
  EXPECT_EQ(magic_pairs, static_cast<size_t>(n * (n + 1) / 2));
  EXPECT_LT(factored->stats().total_facts, static_cast<uint64_t>(4 * n));
}

TEST(PmemTest, SldInferencesQuadraticFactoredLinear) {
  // Example 1.2's comparison: Prolog makes Theta(n^2) inferences while the
  // factored bottom-up program performs Theta(n) work.
  uint64_t sld_small = 0, sld_large = 0;
  uint64_t fact_small = 0, fact_large = 0;
  for (auto [n, sld_out, fact_out] :
       {std::tuple<int64_t, uint64_t*, uint64_t*>{24, &sld_small, &fact_small},
        std::tuple<int64_t, uint64_t*, uint64_t*>{48, &sld_large,
                                                  &fact_large}}) {
    ast::Program p = workload::MakePmemProgram(n);
    eval::Database db;
    workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
    eval::SldStats stats;
    auto sld = eval::SolveTopDown(p, *p.query(), &db, {}, &stats);
    ASSERT_TRUE(sld.ok());
    *sld_out = stats.inferences;

    auto pipe = core::OptimizeQuery(p, *p.query());
    ASSERT_TRUE(pipe.ok());
    eval::Database db2;
    workload::MakeMembershipPredicate(n, 1, 0, "p", &db2);
    eval::EvalStats estats;
    auto factored = eval::EvaluateQuery(*pipe->optimized, pipe->final_query(),
                                        &db2, {}, &estats);
    ASSERT_TRUE(factored.ok());
    *fact_out = estats.instantiations;
  }
  // Doubling n: SLD roughly quadruples, factored roughly doubles.
  double sld_ratio = static_cast<double>(sld_large) / sld_small;
  double fact_ratio = static_cast<double>(fact_large) / fact_small;
  EXPECT_GT(sld_ratio, 3.0) << sld_small << " -> " << sld_large;
  EXPECT_LT(sld_ratio, 5.0);
  EXPECT_GT(fact_ratio, 1.5) << fact_small << " -> " << fact_large;
  EXPECT_LT(fact_ratio, 2.6);
}

TEST(PmemTest, StructureSharingKeepsValueStoreLinear) {
  // The magic relation holds every suffix of the list; with hash-consing
  // the store grows O(n), not O(n^2).
  const int64_t n = 64;
  ast::Program p = workload::MakePmemProgram(n);
  auto pipe = core::OptimizeQuery(p, *p.query());
  ASSERT_TRUE(pipe.ok());
  eval::Database db;
  workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
  size_t before = db.store().size();
  auto result = eval::Evaluate(*pipe->optimized, &db);
  ASSERT_TRUE(result.ok());
  // The n cons cells were interned while loading the query constant; the
  // evaluation itself adds no new compound values (suffixes are shared).
  EXPECT_LT(db.store().size() - before, static_cast<size_t>(2 * n + 8));
}

TEST(PmemTest, SubsetMembership) {
  // Only multiples of 3 satisfy p.
  const int64_t n = 9;
  ast::Program p = workload::MakePmemProgram(n);
  auto pipe = core::OptimizeQuery(p, *p.query());
  ASSERT_TRUE(pipe.ok());
  eval::Database db;
  workload::MakeMembershipPredicate(n, 3, 0, "p", &db);
  auto answers = eval::EvaluateQuery(*pipe->optimized, pipe->final_query(),
                                     &db);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->rows.size(), 3u);  // 3, 6, 9
}

TEST(PmemTest, EmptyPredicateGivesNoAnswers) {
  ast::Program p = workload::MakePmemProgram(5);
  auto pipe = core::OptimizeQuery(p, *p.query());
  ASSERT_TRUE(pipe.ok());
  eval::Database db;  // p is empty
  auto answers = eval::EvaluateQuery(*pipe->optimized, pipe->final_query(),
                                     &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->rows.empty());
}

}  // namespace
}  // namespace factlog
