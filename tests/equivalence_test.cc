#include "eval/equivalence.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace factlog::eval {
namespace {

using test::A;
using test::P;

TEST(EquivalenceTest, IdenticalProgramsAgree) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  auto ce = FindCounterexample(p, A("t(1, Y)"), p, A("t(1, Y)"));
  ASSERT_TRUE(ce.ok());
  EXPECT_FALSE(ce->has_value());
}

TEST(EquivalenceTest, LeftAndRightLinearTcAgree) {
  ast::Program left = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(X, W), e(W, Y).
  )");
  ast::Program right = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  auto ce = FindCounterexample(left, A("t(1, Y)"), right, A("t(1, Y)"));
  ASSERT_TRUE(ce.ok());
  EXPECT_FALSE(ce->has_value()) << (*ce)->ToString();
}

TEST(EquivalenceTest, DetectsDifferentPrograms) {
  ast::Program tc = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  ast::Program one_step = P("t(X, Y) :- e(X, Y).");
  auto ce = FindCounterexample(tc, A("t(1, Y)"), one_step, A("t(1, Y)"));
  ASSERT_TRUE(ce.ok());
  ASSERT_TRUE(ce->has_value());
  EXPECT_FALSE((*ce)->edb_facts.empty());
}

TEST(EquivalenceTest, Theorem31ProgramCannotBeFactored) {
  // The undecidability construction of Theorem 3.1: factoring t into
  // t1(X) x t2(Y, Z) is invalid when a1 and a2 differ and q1 != q2.
  // Here q1, q2 are EDB for simplicity; the cross-product program derives
  // spurious tuples.
  ast::Program original = P(R"(
    t(X, Y, Z) :- a1(X), q1(Y, Z).
    t(X, Y, Z) :- a2(X), q2(Y, Z).
  )");
  ast::Program factored = P(R"(
    t1(X) :- a1(X).
    t1(X) :- a2(X).
    t2(Y, Z) :- a1(X), q1(Y, Z).
    t2(Y, Z) :- a2(X), q2(Y, Z).
    t(X, Y, Z) :- t1(X), t2(Y, Z).
  )");
  auto ce = FindCounterexample(original, A("t(X, Y, Z)"), factored,
                               A("t(X, Y, Z)"));
  ASSERT_TRUE(ce.ok());
  ASSERT_TRUE(ce->has_value());
}

TEST(EquivalenceTest, PaperCounterexampleEdbFromTheorem31) {
  // The exact EDB from the proof of Theorem 3.1: a1 = {1}, a2 = {},
  // q1 = {(2,3), (4,5)}, q2 = {}. Factoring t into t'1(X,Y) x t'2(Z)
  // computes the spurious tuples t(1,2,5) and t(1,4,3).
  ast::Program original = P(R"(
    t(X, Y, Z) :- a1(X), q1(Y, Z).
    t(X, Y, Z) :- a2(X), q2(Y, Z).
  )");
  ast::Program factored = P(R"(
    tp1(X, Y) :- a1(X), q1(Y, Z).
    tp1(X, Y) :- a2(X), q2(Y, Z).
    tp2(Z) :- a1(X), q1(Y, Z).
    tp2(Z) :- a2(X), q2(Y, Z).
    t(X, Y, Z) :- tp1(X, Y), tp2(Z).
  )");
  Database db;
  test::AddFacts(&db, "a1(1). q1(2, 3). q1(4, 5).");
  auto orig = EvaluateQuery(original, A("t(X, Y, Z)"), &db);
  auto fact = EvaluateQuery(factored, A("t(X, Y, Z)"), &db);
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(orig->rows.size(), 2u);   // t(1,2,3), t(1,4,5)
  EXPECT_EQ(fact->rows.size(), 4u);   // plus t(1,2,5), t(1,4,3)
  EXPECT_NE(orig->rows, fact->rows);
}

TEST(EquivalenceTest, CheckEquivalentWrapsCounterexample) {
  ast::Program tc = P(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
  )");
  ast::Program one_step = P("t(X, Y) :- e(X, Y).");
  Status st = CheckEquivalent(tc, A("t(1, Y)"), one_step, A("t(1, Y)"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("counterexample"), std::string::npos);
}

TEST(EquivalenceTest, RespectsTrialBudget) {
  ast::Program p = P("t(X) :- e(X).");
  DiffTestOptions opts;
  opts.trials = 1;
  auto ce = FindCounterexample(p, A("t(X)"), p, A("t(X)"), opts);
  ASSERT_TRUE(ce.ok());
  EXPECT_FALSE(ce->has_value());
}

}  // namespace
}  // namespace factlog::eval
