#include "core/canonical.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace factlog::core {
namespace {

using test::P;
using test::R;

TEST(CanonicalTest, VariableRenamingInvariance) {
  ast::Rule a = R("t(X, Y) :- e(X, W), t(W, Y).");
  ast::Rule b = R("t(A, B) :- e(A, C), t(C, B).");
  EXPECT_EQ(CanonicalizeRule(a), CanonicalizeRule(b));
}

TEST(CanonicalTest, BodyOrderInvariance) {
  ast::Rule a = R("t(X, Y) :- e(X, W), d(W, Y).");
  ast::Rule b = R("t(X, Y) :- d(W, Y), e(X, W).");
  EXPECT_EQ(CanonicalizeRule(a), CanonicalizeRule(b));
}

TEST(CanonicalTest, CombinedInvariance) {
  ast::Rule a = R("t(X, Y) :- e(X, W), d(W, Y).");
  ast::Rule b = R("t(P, Q) :- d(R, Q), e(P, R).");
  EXPECT_EQ(CanonicalizeRule(a), CanonicalizeRule(b));
}

TEST(CanonicalTest, DistinctRulesStayDistinct) {
  ast::Rule a = R("t(X, Y) :- e(X, W), t(W, Y).");
  ast::Rule b = R("t(X, Y) :- t(X, W), e(W, Y).");
  EXPECT_NE(CanonicalizeRule(a), CanonicalizeRule(b));
}

TEST(CanonicalTest, ConstantsPreserved) {
  ast::Rule a = R("t(X) :- e(5, X).");
  ast::Rule b = R("t(X) :- e(6, X).");
  EXPECT_NE(CanonicalizeRule(a), CanonicalizeRule(b));
}

TEST(CanonicalTest, ProgramRuleOrderInvariance) {
  ast::Program a = P("t(X, Y) :- e(X, Y).\n t(X, Y) :- e(X, W), t(W, Y).");
  ast::Program b = P("t(A, B) :- e(A, C), t(C, B).\n t(A, B) :- e(A, B).");
  EXPECT_EQ(CanonicalString(a), CanonicalString(b));
  EXPECT_TRUE(StructurallyEqual(a, b));
}

TEST(CanonicalTest, DuplicatesCollapse) {
  ast::Program a = P("t(X) :- e(X).\n t(Y) :- e(Y).");
  EXPECT_EQ(CanonicalizeProgram(a).rules().size(), 1u);
}

TEST(CanonicalTest, RenamePredicates) {
  ast::Program a = P("cnt(X) :- e(X).\n q(Y) :- cnt(Y).\n ?- q(Z).");
  ast::Program renamed = RenamePredicates(a, {{"cnt", "m"}});
  EXPECT_EQ(renamed.rules()[0].head().predicate(), "m");
  EXPECT_EQ(renamed.rules()[1].body()[0].predicate(), "m");
  // Other predicates untouched.
  EXPECT_EQ(renamed.rules()[1].head().predicate(), "q");
}

TEST(CanonicalTest, StructuralEqualityModuloRenaming) {
  ast::Program a = P("cnt(X) :- e(X).\n ans(Y) :- cnt(Y).");
  ast::Program b = P("m(U) :- e(U).\n f(V) :- m(V).");
  EXPECT_FALSE(StructurallyEqual(a, b));
  EXPECT_TRUE(StructurallyEqual(a, b, {{"cnt", "m"}, {"ans", "f"}}));
}

TEST(CanonicalTest, ListsCanonicalizeStructurally) {
  ast::Rule a = R("m(T) :- m([H | T]).");
  ast::Rule b = R("m(B) :- m([A | B]).");
  EXPECT_EQ(CanonicalizeRule(a), CanonicalizeRule(b));
}

TEST(CanonicalTest, SymmetricBodiesWithSharedVars) {
  // Canonicalization must stabilize even when shape keys tie.
  ast::Rule a = R("p(X) :- e(X, Y), e(Y, X).");
  ast::Rule b = R("p(U) :- e(V, U), e(U, V).");
  EXPECT_EQ(CanonicalizeRule(a), CanonicalizeRule(b));
}

}  // namespace
}  // namespace factlog::core
