#include "eval/relation.h"

#include <gtest/gtest.h>

#include "eval/database.h"
#include "tests/test_util.h"

namespace factlog::eval {
namespace {

TEST(ValueStoreTest, InterningIsIdempotent) {
  ValueStore s;
  EXPECT_EQ(s.InternInt(5), s.InternInt(5));
  EXPECT_NE(s.InternInt(5), s.InternInt(6));
  EXPECT_EQ(s.InternSym("a"), s.InternSym("a"));
  EXPECT_NE(s.InternSym("a"), s.InternSym("b"));
  EXPECT_NE(s.InternInt(1), s.InternSym("1"));
}

TEST(ValueStoreTest, CompoundHashConsing) {
  ValueStore s;
  ValueId one = s.InternInt(1);
  ValueId a = s.InternApp("f", {one});
  ValueId b = s.InternApp("f", {one});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, s.InternApp("g", {one}));
  EXPECT_NE(a, s.InternApp("f", {one, one}));
}

TEST(ValueStoreTest, StructureSharingOfLists) {
  // The n suffixes of an n-element list must reuse nodes: interning
  // [1,2,...,n] then [2,...,n] adds no new node for the latter.
  ValueStore s;
  ast::Term full = ast::Term::List(
      {ast::Term::Int(1), ast::Term::Int(2), ast::Term::Int(3)});
  auto full_id = s.FromTerm(full);
  ASSERT_TRUE(full_id.ok());
  size_t size_after_full = s.size();
  ast::Term suffix = ast::Term::List({ast::Term::Int(2), ast::Term::Int(3)});
  auto suffix_id = s.FromTerm(suffix);
  ASSERT_TRUE(suffix_id.ok());
  EXPECT_EQ(s.size(), size_after_full);  // no new nodes
  // The suffix is literally the tail child of the full list.
  EXPECT_EQ(s.Child(*full_id, 1), *suffix_id);
}

TEST(ValueStoreTest, RoundTripThroughTerms) {
  ValueStore s;
  ast::Term t = test::T("f(1, [a, b], g(2))");
  auto id = s.FromTerm(t);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(s.ToTerm(*id), t);
}

TEST(ValueStoreTest, NonGroundTermRejected) {
  ValueStore s;
  auto id = s.FromTerm(ast::Term::Var("X"));
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, InsertAndDedup) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
  ValueId row[2] = {1, 2};
  EXPECT_TRUE(r.Contains(row));
  ValueId missing[2] = {9, 9};
  EXPECT_FALSE(r.Contains(missing));
}

TEST(RelationTest, LookupByColumn) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({1, 11});
  r.Insert({2, 12});
  const auto& rows = r.Lookup({0}, {1});
  EXPECT_EQ(rows.size(), 2u);
  const auto& none = r.Lookup({0}, {3});
  EXPECT_TRUE(none.empty());
  const auto& both = r.Lookup({0, 1}, {2, 12});
  EXPECT_EQ(both.size(), 1u);
}

TEST(RelationTest, IndexStaysFreshAfterInsert) {
  Relation r(2);
  r.Insert({1, 10});
  EXPECT_EQ(r.Lookup({0}, {1}).size(), 1u);  // builds the index
  r.Insert({1, 11});                         // must update it
  EXPECT_EQ(r.Lookup({0}, {1}).size(), 2u);
}

TEST(RelationTest, Absorb) {
  Relation a(1), b(1);
  a.Insert({1});
  b.Insert({1});
  b.Insert({2});
  a.Absorb(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(RelationTest, Clear) {
  Relation r(1);
  r.Insert({1});
  r.Lookup({0}, {1});
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.Lookup({0}, {1}).empty());
  EXPECT_TRUE(r.Insert({1}));
}

TEST(RelationTest, ReserveDoesNotChangeContents) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  r.Reserve(1000);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.Insert({1, 2}));
  for (ValueId i = 10; i < 110; ++i) {
    EXPECT_TRUE(r.Insert({i, i + 1}));
  }
  EXPECT_EQ(r.size(), 101u);
}

TEST(RelationTest, MoveInsertAcceptsTemporaries) {
  Relation r(3);
  EXPECT_TRUE(r.Insert(std::vector<ValueId>{1, 2, 3}));
  EXPECT_FALSE(r.Insert(std::vector<ValueId>{1, 2, 3}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, AbsorbReportsNewRowCount) {
  Relation a(2), b(2);
  a.Insert({1, 2});
  a.Insert({2, 3});
  b.Insert({2, 3});
  b.Insert({3, 4});
  b.Insert({4, 5});
  EXPECT_EQ(a.Absorb(b), 2u);  // {3,4} and {4,5}; {2,3} was known
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.Absorb(b), 0u);
}

TEST(RelationTest, FindIndexedRequiresEnsureIndex) {
  Relation r(2);
  r.Insert({1, 2});
  r.Insert({1, 3});
  r.Insert({2, 3});
  // No index built yet: the const path reports "no index".
  EXPECT_EQ(r.FindIndexed({0}, {1}), nullptr);
  r.EnsureIndex({0});
  const auto* rows = r.FindIndexed({0}, {1});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);
  // Missing key: non-null empty bucket.
  const auto* none = r.FindIndexed({0}, {99});
  ASSERT_NE(none, nullptr);
  EXPECT_TRUE(none->empty());
  // Inserts keep a pre-built index current.
  r.Insert({1, 9});
  EXPECT_EQ(r.FindIndexed({0}, {1})->size(), 3u);
}

TEST(DatabaseTest, AddFactsAndFind) {
  Database db;
  ASSERT_TRUE(db.AddFact(test::A("e(1, 2)")).ok());
  ASSERT_TRUE(db.AddFact(test::A("e(2, 3)")).ok());
  ASSERT_TRUE(db.AddFact(test::A("p(a)")).ok());
  ASSERT_NE(db.Find("e"), nullptr);
  EXPECT_EQ(db.Find("e")->size(), 2u);
  EXPECT_EQ(db.Find("p")->size(), 1u);
  EXPECT_EQ(db.Find("missing"), nullptr);
  EXPECT_EQ(db.TotalFacts(), 3u);
}

TEST(DatabaseTest, NonGroundFactRejected) {
  Database db;
  EXPECT_FALSE(db.AddFact(test::A("e(X, 2)")).ok());
}

TEST(DatabaseTest, CompoundFacts) {
  Database db;
  ASSERT_TRUE(db.AddFact(test::A("owns(alice, book(dune))")).ok());
  EXPECT_EQ(db.Find("owns")->size(), 1u);
}

TEST(DatabaseTest, PairAndUnitHelpers) {
  Database db;
  db.AddPair("e", 1, 2);
  db.AddPair("e", 1, 2);
  db.AddUnit("v", 7);
  EXPECT_EQ(db.Find("e")->size(), 1u);
  EXPECT_EQ(db.Find("v")->size(), 1u);
}

}  // namespace
}  // namespace factlog::eval
