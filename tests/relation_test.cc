#include "eval/relation.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "eval/database.h"
#include "eval/seminaive.h"
#include "tests/sweep_corpus.h"
#include "tests/test_util.h"

namespace factlog::eval {
namespace {

TEST(ValueStoreTest, InterningIsIdempotent) {
  ValueStore s;
  EXPECT_EQ(s.InternInt(5), s.InternInt(5));
  EXPECT_NE(s.InternInt(5), s.InternInt(6));
  EXPECT_EQ(s.InternSym("a"), s.InternSym("a"));
  EXPECT_NE(s.InternSym("a"), s.InternSym("b"));
  EXPECT_NE(s.InternInt(1), s.InternSym("1"));
}

TEST(ValueStoreTest, CompoundHashConsing) {
  ValueStore s;
  ValueId one = s.InternInt(1);
  ValueId a = s.InternApp("f", {one});
  ValueId b = s.InternApp("f", {one});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, s.InternApp("g", {one}));
  EXPECT_NE(a, s.InternApp("f", {one, one}));
}

TEST(ValueStoreTest, StructureSharingOfLists) {
  // The n suffixes of an n-element list must reuse nodes: interning
  // [1,2,...,n] then [2,...,n] adds no new node for the latter.
  ValueStore s;
  ast::Term full = ast::Term::List(
      {ast::Term::Int(1), ast::Term::Int(2), ast::Term::Int(3)});
  auto full_id = s.FromTerm(full);
  ASSERT_TRUE(full_id.ok());
  size_t size_after_full = s.size();
  ast::Term suffix = ast::Term::List({ast::Term::Int(2), ast::Term::Int(3)});
  auto suffix_id = s.FromTerm(suffix);
  ASSERT_TRUE(suffix_id.ok());
  EXPECT_EQ(s.size(), size_after_full);  // no new nodes
  // The suffix is literally the tail child of the full list.
  EXPECT_EQ(s.Child(*full_id, 1), *suffix_id);
}

TEST(ValueStoreTest, RoundTripThroughTerms) {
  ValueStore s;
  ast::Term t = test::T("f(1, [a, b], g(2))");
  auto id = s.FromTerm(t);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(s.ToTerm(*id), t);
}

TEST(ValueStoreTest, NonGroundTermRejected) {
  ValueStore s;
  auto id = s.FromTerm(ast::Term::Var("X"));
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, InsertAndDedup) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
  ValueId row[2] = {1, 2};
  EXPECT_TRUE(r.Contains(row));
  ValueId missing[2] = {9, 9};
  EXPECT_FALSE(r.Contains(missing));
}

TEST(RelationTest, LookupByColumn) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({1, 11});
  r.Insert({2, 12});
  const auto& rows = r.Lookup({0}, {1});
  EXPECT_EQ(rows.size(), 2u);
  const auto& none = r.Lookup({0}, {3});
  EXPECT_TRUE(none.empty());
  const auto& both = r.Lookup({0, 1}, {2, 12});
  EXPECT_EQ(both.size(), 1u);
}

TEST(RelationTest, IndexStaysFreshAfterInsert) {
  Relation r(2);
  r.Insert({1, 10});
  EXPECT_EQ(r.Lookup({0}, {1}).size(), 1u);  // builds the index
  r.Insert({1, 11});                         // must update it
  EXPECT_EQ(r.Lookup({0}, {1}).size(), 2u);
}

TEST(RelationTest, Absorb) {
  Relation a(1), b(1);
  a.Insert({1});
  b.Insert({1});
  b.Insert({2});
  a.Absorb(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(RelationTest, Clear) {
  Relation r(1);
  r.Insert({1});
  r.Lookup({0}, {1});
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.Lookup({0}, {1}).empty());
  EXPECT_TRUE(r.Insert({1}));
}

TEST(RelationTest, ReserveDoesNotChangeContents) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  r.Reserve(1000);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.Insert({1, 2}));
  for (ValueId i = 10; i < 110; ++i) {
    EXPECT_TRUE(r.Insert({i, i + 1}));
  }
  EXPECT_EQ(r.size(), 101u);
}

TEST(RelationTest, MoveInsertAcceptsTemporaries) {
  Relation r(3);
  EXPECT_TRUE(r.Insert(std::vector<ValueId>{1, 2, 3}));
  EXPECT_FALSE(r.Insert(std::vector<ValueId>{1, 2, 3}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, AbsorbReportsNewRowCount) {
  Relation a(2), b(2);
  a.Insert({1, 2});
  a.Insert({2, 3});
  b.Insert({2, 3});
  b.Insert({3, 4});
  b.Insert({4, 5});
  EXPECT_EQ(a.Absorb(b), 2u);  // {3,4} and {4,5}; {2,3} was known
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.Absorb(b), 0u);
}

TEST(RelationTest, FindIndexedRequiresEnsureIndex) {
  Relation r(2);
  r.Insert({1, 2});
  r.Insert({1, 3});
  r.Insert({2, 3});
  // No index built yet: the const path reports "no index".
  EXPECT_EQ(r.FindIndexed({0}, {1}), nullptr);
  r.EnsureIndex({0});
  const auto* rows = r.FindIndexed({0}, {1});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);
  // Missing key: non-null empty bucket.
  const auto* none = r.FindIndexed({0}, {99});
  ASSERT_NE(none, nullptr);
  EXPECT_TRUE(none->empty());
  // Inserts keep a pre-built index current.
  r.Insert({1, 9});
  EXPECT_EQ(r.FindIndexed({0}, {1})->size(), 3u);
}

// ---- Deletion and support counts -------------------------------------------

TEST(RelationTest, EraseRemovesAndKeepsDedupConsistent) {
  Relation r(2);
  for (ValueId i = 0; i < 10; ++i) r.Insert({i, i + 1});
  ValueId mid[2] = {4, 5};
  EXPECT_TRUE(r.Erase(mid));
  EXPECT_FALSE(r.Erase(mid));  // already gone
  EXPECT_EQ(r.size(), 9u);
  EXPECT_FALSE(r.Contains(mid));
  // The swapped-in row is still findable and re-insertion works.
  ValueId last[2] = {9, 10};
  EXPECT_TRUE(r.Contains(last));
  EXPECT_TRUE(r.Insert({4, 5}));
  EXPECT_EQ(r.size(), 10u);
}

TEST(RelationTest, EraseRepairsBuiltIndices) {
  Relation r(2);
  for (ValueId i = 0; i < 8; ++i) {
    r.Insert({i % 4, i});  // column 0 takes values 0..3 twice
  }
  EXPECT_EQ(r.Lookup({0}, {2}).size(), 2u);
  ValueId victim[2] = {2, 2};
  ASSERT_TRUE(r.Erase(victim));
  // The index was maintained in place: lookups stay exact, including for the
  // row that was renumbered into the vacated slot.
  EXPECT_EQ(r.Lookup({0}, {2}).size(), 1u);
  for (uint32_t row_id : r.Lookup({0}, {3})) {
    EXPECT_EQ(r.row(row_id)[0], 3);
  }
  EXPECT_EQ(r.Lookup({0}, {3}).size(), 2u);
}

TEST(RelationTest, EraseArityZero) {
  Relation r(0);
  std::vector<ValueId> empty;
  EXPECT_TRUE(r.Insert(empty));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Erase(empty.data()));
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.Contains(empty.data()));
}

TEST(RelationTest, SupportCountsLifecycle) {
  Relation r(2);
  r.EnableSupportCounts();
  ValueId row[2] = {1, 2};
  EXPECT_EQ(r.AddSupport(row, 2), 2);  // inserted at count 2
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.SupportOf(row), 2);
  EXPECT_EQ(r.AddSupport(row, 1), 3);
  EXPECT_EQ(r.AddSupport(row, -2), 1);
  EXPECT_EQ(r.AddSupport(row, -1), 0);  // dropped to zero: erased
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.Contains(row));
  EXPECT_EQ(r.SupportOf(row), 0);
  EXPECT_EQ(r.AddSupport(row, -1), 0);  // absent + negative: no-op
  EXPECT_EQ(r.size(), 0u);
}

TEST(RelationTest, EnableSupportCountsZeroesForRebuild) {
  Relation r(1);
  r.Insert({7});
  r.EnableSupportCounts();
  ValueId row[1] = {7};
  EXPECT_EQ(r.SupportOf(row), 0);  // rebuild protocol: credit via AddSupport
  EXPECT_EQ(r.AddSupport(row, 1), 1);
  EXPECT_EQ(r.size(), 1u);  // already present; only the count changed
}

// ---- Sharded storage --------------------------------------------------------

StorageOptions Sharded(size_t n) { return StorageOptions{n, {}}; }

// All rows of a relation rendered as a sorted set of strings.
std::set<std::string> Rows(const Relation& r) {
  std::set<std::string> out;
  for (size_t i = 0; i < r.size(); ++i) {
    std::string s;
    for (size_t c = 0; c < r.arity(); ++c) {
      s += (c > 0 ? "," : "") + std::to_string(r.row(i)[c]);
    }
    out.insert(s);
  }
  return out;
}

TEST(ShardedRelationTest, InsertRoutesAndDedupsAcrossShards) {
  Relation r(2, Sharded(4));
  EXPECT_EQ(r.shard_count(), 4u);
  for (ValueId i = 0; i < 50; ++i) {
    EXPECT_TRUE(r.Insert({i, i + 1}));
    EXPECT_FALSE(r.Insert({i, i + 1}));  // dedup within the routed shard
  }
  EXPECT_EQ(r.size(), 50u);
  ValueId row[2] = {7, 8};
  EXPECT_TRUE(r.Contains(row));
  ValueId missing[2] = {7, 9};
  EXPECT_FALSE(r.Contains(missing));
}

TEST(ShardedRelationTest, RowPreservesGlobalInsertionOrder) {
  Relation flat(2), sharded(2, Sharded(3));
  for (ValueId i = 0; i < 30; ++i) {
    flat.Insert({i, i * 2});
    sharded.Insert({i, i * 2});
  }
  ASSERT_EQ(sharded.size(), flat.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(sharded.row(i)[0], flat.row(i)[0]) << "row " << i;
    EXPECT_EQ(sharded.row(i)[1], flat.row(i)[1]) << "row " << i;
  }
}

TEST(ShardedRelationTest, ShardsPartitionTheRowsByHash) {
  Relation r(2, Sharded(4));
  for (ValueId i = 0; i < 40; ++i) r.Insert({i, 0});
  size_t total = 0;
  for (size_t s = 0; s < r.shard_count(); ++s) {
    const Relation& sh = r.shard(s);
    total += sh.size();
    for (size_t i = 0; i < sh.size(); ++i) {
      EXPECT_EQ(r.ShardOf(sh.row(i)), s);  // every row is in its home shard
    }
  }
  EXPECT_EQ(total, r.size());
}

TEST(ShardedRelationTest, LookupAndFindIndexedMatchFlatSemantics) {
  Relation flat(2), sharded(2, Sharded(4));
  for (const auto& row : std::vector<std::vector<ValueId>>{
           {1, 10}, {1, 11}, {2, 12}, {3, 10}, {1, 12}}) {
    flat.Insert(row);
    sharded.Insert(row);
  }
  EXPECT_EQ(sharded.Lookup({0}, {1}).size(), flat.Lookup({0}, {1}).size());
  EXPECT_EQ(sharded.Lookup({1}, {10}).size(), flat.Lookup({1}, {10}).size());
  EXPECT_EQ(sharded.Lookup({0, 1}, {2, 12}).size(), 1u);
  EXPECT_TRUE(sharded.Lookup({0}, {99}).empty());

  // The combined index returns global row ids consistent with row().
  for (uint32_t id : sharded.Lookup({0}, {1})) {
    EXPECT_EQ(sharded.row(id)[0], 1);
  }

  // FindIndexed: nullptr before EnsureIndex, live afterwards.
  Relation fresh(2, Sharded(4));
  fresh.Insert({5, 6});
  EXPECT_EQ(fresh.FindIndexed({0}, {5}), nullptr);
  fresh.EnsureIndex({0});
  ASSERT_NE(fresh.FindIndexed({0}, {5}), nullptr);
  EXPECT_EQ(fresh.FindIndexed({0}, {5})->size(), 1u);
  fresh.Insert({5, 7});  // inserts keep the combined index current
  EXPECT_EQ(fresh.FindIndexed({0}, {5})->size(), 2u);
}

TEST(ShardedRelationTest, EnsureShardIndexesServesShardLocalLookups) {
  Relation r(2, Sharded(3));
  for (ValueId i = 0; i < 30; ++i) r.Insert({i % 5, i});
  r.EnsureShardIndexes({0});
  size_t matches = 0;
  for (size_t s = 0; s < r.shard_count(); ++s) {
    const Relation& sh = r.shard(s);
    const auto* rows = sh.FindIndexed({0}, {2});
    ASSERT_NE(rows, nullptr) << "shard " << s << " missing its local index";
    for (uint32_t local : *rows) {
      EXPECT_EQ(sh.row(local)[0], 2);  // local ids resolve within the shard
      ++matches;
    }
  }
  EXPECT_EQ(matches, 6u);  // i % 5 == 2 for 6 of 30 rows
}

TEST(ShardedRelationTest, MergeShardThenSyncShards) {
  Relation target(2, Sharded(4));
  target.Insert({1, 2});
  Relation buffer(2, Sharded(4));  // same layout: shards line up
  for (ValueId i = 0; i < 20; ++i) buffer.Insert({i, i + 1});

  for (size_t s = 0; s < buffer.shard_count(); ++s) {
    target.MergeShard(s, buffer.shard(s));
  }
  target.SyncShards();
  EXPECT_EQ(target.size(), 20u);  // {1,2} deduplicated inside its shard
  EXPECT_EQ(Rows(target), Rows(buffer));
  // Post-sync, lookups and row() agree again.
  EXPECT_EQ(target.Lookup({0}, {1}).size(), 1u);
  EXPECT_TRUE(target.Contains(buffer.row(0)));
  // Sync is idempotent.
  target.SyncShards();
  EXPECT_EQ(target.size(), 20u);
}

TEST(ShardedRelationTest, AbsorbAcrossMismatchedShardCounts) {
  const size_t layouts[] = {1, 2, 8};
  Relation source(2, Sharded(3));
  for (ValueId i = 0; i < 25; ++i) source.Insert({i, i * i % 11});
  for (size_t from : layouts) {
    for (size_t to : layouts) {
      Relation a(2, Sharded(from)), b(2, Sharded(to));
      for (size_t i = 0; i < 10; ++i) a.Insert(source.row(i));
      for (size_t i = 5; i < 25; ++i) b.Insert(source.row(i));
      EXPECT_EQ(a.Absorb(b), 15u) << from << "->" << to;
      EXPECT_EQ(a.size(), 25u) << from << "->" << to;
      EXPECT_EQ(Rows(a), Rows(source)) << from << "->" << to;
      EXPECT_EQ(a.Absorb(b), 0u) << from << "->" << to;
    }
  }
}

TEST(ShardedRelationTest, AbsorbAlignedLayoutsSkipsNothing) {
  // Identical layouts take the shard-to-shard fast path; contents must be
  // exactly what the generic path produces.
  Relation a(2, Sharded(4)), b(2, Sharded(4));
  for (ValueId i = 0; i < 12; ++i) a.Insert({i, 0});
  for (ValueId i = 6; i < 30; ++i) b.Insert({i, 0});
  EXPECT_EQ(a.Absorb(b), 18u);
  EXPECT_EQ(a.size(), 30u);
  for (size_t s = 0; s < a.shard_count(); ++s) {
    for (size_t i = 0; i < a.shard(s).size(); ++i) {
      EXPECT_EQ(a.ShardOf(a.shard(s).row(i)), s);
    }
  }
}

TEST(ShardedRelationTest, ClearResetsShards) {
  Relation r(2, Sharded(4));
  for (ValueId i = 0; i < 10; ++i) r.Insert({i, i});
  r.Lookup({0}, {1});
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.shard_count(), 4u);  // layout survives
  for (size_t s = 0; s < r.shard_count(); ++s) {
    EXPECT_TRUE(r.shard(s).empty());
  }
  EXPECT_TRUE(r.Insert({1, 1}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(ShardedRelationTest, PartitionColsAreNormalized) {
  Relation r(2, StorageOptions{4, {1, 7, -2}});  // out-of-range cols dropped
  EXPECT_EQ(r.partition_cols(), (std::vector<int>{1}));
  Relation fallback(2, StorageOptions{4, {9}});  // nothing valid: column 0
  EXPECT_EQ(fallback.partition_cols(), (std::vector<int>{0}));
  Relation flat(3);
  EXPECT_EQ(flat.shard_count(), 1u);
  EXPECT_EQ(&flat.shard(0), &flat);  // a flat relation is its own only shard
}

// The sequential evaluator over the shared sweep corpus must produce
// byte-identical fact sets at 1/2/8 storage shards — sharding is a layout
// choice, never a semantics choice.
TEST(ShardedRelationTest, SequentialSweepIsShardInvariant) {
  for (int pi = 0; pi < test::kNumSweepPrograms; ++pi) {
    for (int wi = 0; wi < test::kNumSweepWorkloads; ++wi) {
      ast::Program program = test::P(test::kSweepPrograms[pi].text);

      auto facts = [&](const eval::EvalResult& result,
                       const ValueStore& store) {
        std::map<std::string, std::set<std::string>> out;
        for (const auto& [pred, rel] : result.idb()) {
          for (size_t r = 0; r < rel->size(); ++r) {
            std::string s;
            for (size_t c = 0; c < rel->arity(); ++c) {
              s += store.ToString(rel->row(r)[c]) + ";";
            }
            out[pred].insert(s);
          }
        }
        return out;
      };

      Database oracle_db;
      test::kSweepWorkloads[wi].make(&oracle_db);
      auto oracle = Evaluate(program, &oracle_db);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      auto expected = facts(*oracle, oracle_db.store());

      for (size_t shards : {2u, 8u}) {
        Database db(Sharded(shards));
        test::kSweepWorkloads[wi].make(&db);
        auto result = Evaluate(program, &db);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(facts(*result, db.store()), expected)
            << test::kSweepPrograms[pi].name << " x "
            << test::kSweepWorkloads[wi].name << " @" << shards << " shards";
        EXPECT_EQ(result->stats().instantiations,
                  oracle->stats().instantiations)
            << test::kSweepPrograms[pi].name << " @" << shards;
      }
    }
  }
}

TEST(DatabaseTest, AddFactsAndFind) {
  Database db;
  ASSERT_TRUE(db.AddFact(test::A("e(1, 2)")).ok());
  ASSERT_TRUE(db.AddFact(test::A("e(2, 3)")).ok());
  ASSERT_TRUE(db.AddFact(test::A("p(a)")).ok());
  ASSERT_NE(db.Find("e"), nullptr);
  EXPECT_EQ(db.Find("e")->size(), 2u);
  EXPECT_EQ(db.Find("p")->size(), 1u);
  EXPECT_EQ(db.Find("missing"), nullptr);
  EXPECT_EQ(db.TotalFacts(), 3u);
}

TEST(DatabaseTest, NonGroundFactRejected) {
  Database db;
  EXPECT_FALSE(db.AddFact(test::A("e(X, 2)")).ok());
}

TEST(DatabaseTest, CompoundFacts) {
  Database db;
  ASSERT_TRUE(db.AddFact(test::A("owns(alice, book(dune))")).ok());
  EXPECT_EQ(db.Find("owns")->size(), 1u);
}

TEST(DatabaseTest, StorageOptionsApplyToEveryRelation) {
  Database db(StorageOptions{4, {}});
  EXPECT_EQ(db.storage_options().num_shards, 4u);
  for (int i = 0; i < 20; ++i) {
    db.AddPair("e", i, i + 1);
    db.AddUnit("v", i);
  }
  ASSERT_NE(db.Find("e"), nullptr);
  EXPECT_EQ(db.Find("e")->shard_count(), 4u);
  EXPECT_EQ(db.Find("v")->shard_count(), 4u);
  EXPECT_EQ(db.Find("e")->size(), 20u);
  EXPECT_EQ(db.TotalFacts(), 40u);
}

TEST(ShardedRelationTest, EraseDesyncsUntilSyncShards) {
  Relation r(2, Sharded(4));
  for (ValueId i = 0; i < 40; ++i) r.Insert({i, i + 1});
  std::set<std::string> before = Rows(r);
  ValueId a[2] = {11, 12};
  ValueId b[2] = {30, 31};
  EXPECT_TRUE(r.Erase(a));
  EXPECT_TRUE(r.Erase(b));
  EXPECT_FALSE(r.Erase(a));
  // Route-by-hash operations keep working before the sync...
  EXPECT_FALSE(r.Contains(a));
  EXPECT_TRUE(r.Insert({100, 101}));
  EXPECT_EQ(r.size(), 39u);
  // ...and after SyncShards the global order and indices are whole again.
  r.SyncShards();
  before.erase("11,12");
  before.erase("30,31");
  before.insert("100,101");
  EXPECT_EQ(Rows(r), before);
  EXPECT_EQ(r.Lookup({0}, {100}).size(), 1u);
  EXPECT_EQ(r.Lookup({0}, {11}).size(), 0u);
}

TEST(ShardedRelationTest, SupportCountsRouteToShards) {
  Relation r(2, Sharded(4));
  r.EnableSupportCounts();
  for (ValueId i = 0; i < 20; ++i) {
    ValueId row[2] = {i, i + 1};
    EXPECT_EQ(r.AddSupport(row, 2), 2);
  }
  EXPECT_EQ(r.size(), 20u);
  ValueId probe[2] = {7, 8};
  EXPECT_EQ(r.SupportOf(probe), 2);
  EXPECT_EQ(r.AddSupport(probe, -2), 0);  // erased from its shard
  EXPECT_EQ(r.size(), 19u);
  r.SyncShards();
  EXPECT_FALSE(r.Contains(probe));
  EXPECT_EQ(Rows(r).size(), 19u);
}

TEST(DatabaseTest, RemoveFactErasesAndReportsPresence) {
  Database db(StorageOptions{4, {}});
  db.AddPair("e", 1, 2);
  db.AddPair("e", 2, 3);
  auto removed = db.RemoveFact(test::A("e(1, 2)"));
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(*removed);
  auto missing = db.RemoveFact(test::A("e(1, 2)"));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(*missing);
  EXPECT_EQ(db.Find("e")->size(), 1u);
  // Immediately readable: RemoveFact resyncs sharded storage.
  EXPECT_EQ(db.Find("e")->Lookup({0}, {db.store().InternInt(2)}).size(), 1u);
}

TEST(DatabaseTest, PairAndUnitHelpers) {
  Database db;
  db.AddPair("e", 1, 2);
  db.AddPair("e", 1, 2);
  db.AddUnit("v", 7);
  EXPECT_EQ(db.Find("e")->size(), 1u);
  EXPECT_EQ(db.Find("v")->size(), 1u);
}

}  // namespace
}  // namespace factlog::eval
