#include "eval/seminaive.h"

#include <gtest/gtest.h>

#include "eval/provenance.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"

namespace factlog::eval {
namespace {

using test::A;
using test::AddFacts;
using test::Answers;
using test::P;

const char kTc[] = R"(
  t(X, Y) :- e(X, Y).
  t(X, Y) :- e(X, W), t(W, Y).
  ?- t(1, Y).
)";

TEST(SemiNaiveTest, TransitiveClosureChain) {
  EXPECT_EQ(Answers(kTc, "e(1, 2). e(2, 3). e(3, 4)."),
            (std::vector<std::string>{"(2)", "(3)", "(4)"}));
}

TEST(SemiNaiveTest, TransitiveClosureCycle) {
  EXPECT_EQ(Answers(kTc, "e(1, 2). e(2, 1)."),
            (std::vector<std::string>{"(1)", "(2)"}));
}

TEST(SemiNaiveTest, EmptyEdb) {
  ast::Program p = P(kTc);
  Database db;
  auto answers = EvaluateQuery(p, *p.query(), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->rows.empty());
}

TEST(SemiNaiveTest, NonlinearTransitiveClosure) {
  const char prog[] = R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(X, W), t(W, Y).
    ?- t(1, Y).
  )";
  EXPECT_EQ(Answers(prog, "e(1, 2). e(2, 3). e(3, 4)."),
            (std::vector<std::string>{"(2)", "(3)", "(4)"}));
}

TEST(SemiNaiveTest, ProgramFactsActAsSeeds) {
  const char prog[] = R"(
    m(5).
    m(W) :- m(X), e(X, W).
    ?- m(W).
  )";
  EXPECT_EQ(Answers(prog, "e(5, 6). e(6, 7). e(1, 2)."),
            (std::vector<std::string>{"(5)", "(6)", "(7)"}));
}

TEST(SemiNaiveTest, MutualRecursion) {
  const char prog[] = R"(
    even(X) :- zero(X).
    even(Y) :- odd(X), succ(X, Y).
    odd(Y) :- even(X), succ(X, Y).
    ?- even(X).
  )";
  EXPECT_EQ(Answers(prog, "zero(0). succ(0,1). succ(1,2). succ(2,3). succ(3,4)."),
            (std::vector<std::string>{"(0)", "(2)", "(4)"}));
}

TEST(SemiNaiveTest, SameGeneration) {
  const char prog[] = R"(
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    ?- sg(1, Y).
  )";
  // 1 up to a, 2 up to b; a flat b; a down 3, b down 4.
  EXPECT_EQ(Answers(prog, "up(1, 10). up(2, 20). flat(10, 20). down(20, 4)."),
            (std::vector<std::string>{"(4)"}));
}

TEST(SemiNaiveTest, NaiveAgreesWithSemiNaive) {
  ast::Program p = P(kTc);
  eval::Database db1, db2;
  workload::MakeRandomGraph(40, 80, /*seed=*/7, "e", &db1);
  workload::MakeRandomGraph(40, 80, /*seed=*/7, "e", &db2);
  EvalOptions naive;
  naive.strategy = Strategy::kNaive;
  auto a1 = EvaluateQuery(p, *p.query(), &db1, naive);
  auto a2 = EvaluateQuery(p, *p.query(), &db2);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a1->rows, a2->rows);
}

TEST(SemiNaiveTest, StatsCountFactsAndIterations) {
  ast::Program p = P(kTc);
  Database db;
  AddFacts(&db, "e(1, 2). e(2, 3). e(3, 4).");
  auto result = Evaluate(p, &db);
  ASSERT_TRUE(result.ok());
  // t = all 6 reachable pairs.
  EXPECT_EQ(result->SizeOf("t"), 6u);
  EXPECT_EQ(result->stats().total_facts, 6u);
  EXPECT_GE(result->stats().iterations, 3u);
  EXPECT_GT(result->stats().instantiations, 0u);
}

TEST(SemiNaiveTest, FactBudgetExhaustion) {
  ast::Program p = P(kTc);
  Database db;
  workload::MakeChain(100, "e", &db);
  EvalOptions opts;
  opts.max_facts = 10;
  auto result = Evaluate(p, &db, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(SemiNaiveTest, DivergingFunctionSymbolProgramHitsBudget) {
  // grow builds ever-larger lists: a genuinely nonterminating program.
  const char prog[] = R"(
    grow([s]).
    grow([s | L]) :- grow(L).
    ?- grow(L).
  )";
  ast::Program p = P(prog);
  Database db;
  EvalOptions opts;
  opts.max_facts = 1000;
  auto result = Evaluate(p, &db, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(SemiNaiveTest, ListDestructuring) {
  // The magic-pmem recursion from Example 4.6: m(T) :- m([H | T]).
  const char prog[] = R"(
    m([1, 2, 3]).
    m(T) :- m([H | T]).
    ?- m(L).
  )";
  // Rows sort by interning order: nil is interned before the cons cells.
  EXPECT_EQ(Answers(prog, ""),
            (std::vector<std::string>{"([])", "([3])", "([2, 3])",
                                      "([1, 2, 3])"}));
}

TEST(SemiNaiveTest, HeadConstruction) {
  const char prog[] = R"(
    wrap(f(X)) :- e(X).
    ?- wrap(Y).
  )";
  EXPECT_EQ(Answers(prog, "e(1). e(2)."),
            (std::vector<std::string>{"(f(1))", "(f(2))"}));
}

TEST(SemiNaiveTest, EqualBuiltinFiltersAndBinds) {
  const char prog[] = R"(
    p(X, Y) :- e(X), equal(X, Y).
    ?- p(X, Y).
  )";
  EXPECT_EQ(Answers(prog, "e(1). e(2)."),
            (std::vector<std::string>{"(1, 1)", "(2, 2)"}));
}

TEST(SemiNaiveTest, EqualBuiltinAgainstConstant) {
  const char prog[] = R"(
    p(X) :- e(X), equal(X, 2).
    ?- p(X).
  )";
  EXPECT_EQ(Answers(prog, "e(1). e(2)."), (std::vector<std::string>{"(2)"}));
}

TEST(SemiNaiveTest, AffineBuiltinForward) {
  const char prog[] = R"(
    shifted(Z) :- e(X), affine(X, 2, 1, Z).
    ?- shifted(Z).
  )";
  EXPECT_EQ(Answers(prog, "e(1). e(2)."),
            (std::vector<std::string>{"(3)", "(5)"}));
}

TEST(SemiNaiveTest, AffineBuiltinBackward) {
  // Solve X from Z: Z = X + 1, i.e. X = Z - 1.
  const char prog[] = R"(
    prev(X) :- e(Z), affine(X, 1, 1, Z).
    ?- prev(X).
  )";
  EXPECT_EQ(Answers(prog, "e(5). e(9)."),
            (std::vector<std::string>{"(4)", "(8)"}));
}

TEST(SemiNaiveTest, AffineBackwardRespectsDivisibility) {
  // Z = 2X: odd Z has no preimage.
  const char prog[] = R"(
    half(X) :- e(Z), affine(X, 2, 0, Z).
    ?- half(X).
  )";
  EXPECT_EQ(Answers(prog, "e(4). e(5)."), (std::vector<std::string>{"(2)"}));
}

TEST(SemiNaiveTest, QueryWithCompoundPattern) {
  const char prog[] = R"(
    m([1, 2]).
    m(T) :- m([H | T]).
    ?- m([X | T]).
  )";
  // Rows bind (X, T) for list-shaped answers only.
  EXPECT_EQ(Answers(prog, ""),
            (std::vector<std::string>{"(1, [2])", "(2, [])"}));
}

TEST(ProvenanceTest, DerivationTreeForChain) {
  ast::Program p = P(kTc);
  Database db;
  AddFacts(&db, "e(1, 2). e(2, 3).");
  EvalOptions opts;
  opts.track_provenance = true;
  auto result = Evaluate(p, &db, opts);
  ASSERT_TRUE(result.ok());

  FactKey t13{"t", {db.store().InternInt(1), db.store().InternInt(3)}};
  const Justification* just = result->provenance().Find(t13);
  ASSERT_NE(just, nullptr);
  DerivationTree tree = BuildDerivationTree(result->provenance(), t13);
  // t(1,3) via rule 1 from e(1,2) and t(2,3); t(2,3) via rule 0 from e(2,3).
  EXPECT_EQ(tree.rule_index, 1);
  EXPECT_EQ(tree.Height(), 3u);
  ASSERT_EQ(tree.children.size(), 2u);
  EXPECT_EQ(tree.children[0].fact.predicate, "e");
  EXPECT_EQ(tree.children[0].rule_index, -1);  // EDB leaf
  EXPECT_EQ(tree.children[1].fact.predicate, "t");
  EXPECT_EQ(tree.children[1].rule_index, 0);
  std::string rendered = DerivationTreeToString(tree, db.store());
  EXPECT_NE(rendered.find("t(1, 3)"), std::string::npos);
  EXPECT_NE(rendered.find("e(2, 3)"), std::string::npos);
}

TEST(ProvenanceTest, HeightMatchesDefinition21) {
  // A single-node tree (EDB fact) has height 1, per Definition 2.1.
  ProvenanceStore store;
  DerivationTree leaf = BuildDerivationTree(store, FactKey{"e", {0, 1}});
  EXPECT_EQ(leaf.Height(), 1u);
  EXPECT_EQ(leaf.NodeCount(), 1u);
}

TEST(ExtractAnswersTest, EdbQueryWorks) {
  ast::Program p = P("t(X) :- e(X, X). ?- e(1, Y).");
  Database db;
  AddFacts(&db, "e(1, 2). e(1, 3). e(2, 2).");
  auto result = Evaluate(p, &db);
  ASSERT_TRUE(result.ok());
  auto answers = ExtractAnswers(A("e(1, Y)"), &result.value(), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 2u);
}

TEST(ExtractAnswersTest, UnknownPredicateGivesEmpty) {
  ast::Program p = P("t(X) :- e(X). ?- t(X).");
  Database db;
  auto result = Evaluate(p, &db);
  ASSERT_TRUE(result.ok());
  auto answers = ExtractAnswers(A("nosuch(Y)"), &result.value(), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->rows.empty());
}

}  // namespace
}  // namespace factlog::eval
