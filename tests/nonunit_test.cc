// §7.3 / Example 7.2: factoring an inner (non-query) recursive predicate.

#include "core/nonunit.h"

#include <gtest/gtest.h>

#include "eval/equivalence.h"
#include "tests/test_util.h"

namespace factlog::core {
namespace {

using test::A;
using test::P;

// Example 7.2's P1: the right-linear definition of p.
const char kP1[] = R"(
  p(X, Y) :- b(X, U), p(U, Y).
  p(X, Y) :- e(X, Y).
)";

// Example 7.2's P2: a combined-rule definition of p.
const char kP2[] = R"(
  p(X, Y) :- l(X), p(X, U), c(U, V), p(V, Y).
  p(X, Y) :- e(X, Y).
)";

TEST(NonUnitTest, GroundQueryMakesInnerCallTrivial) {
  // With a fully ground query the inner call adorns p^bb: every argument is
  // bound and the bound/free factoring is trivial — correctly rejected.
  ast::Program program = P(std::string("q(Y) :- a(X, Z), p(Z, Y).\n") + kP1);
  auto result = FactorInnerPredicate(program, A("q(1)"), "p");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->report.factorable);
  EXPECT_EQ(result->report.predicate, "p_bb");
}

TEST(NonUnitTest, Example72OpenHeadQueryFactorsToo) {
  // q(Y) with Y free: the call's answer variable may reach the head; the
  // *bound*-side component must not. Still factorable.
  ast::Program program = P(std::string("q(Y) :- a(X, Z), p(Z, Y).\n") + kP1);
  auto result = FactorInnerPredicate(program, A("q(Y)"), "p");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->report.factorable)
      << (result->report.reasons.empty() ? "" : result->report.reasons[0]);
  auto ce = eval::FindCounterexample(program, A("q(Y)"),
                                     result->factored->program,
                                     result->factored->query);
  ASSERT_TRUE(ce.ok());
  EXPECT_FALSE(ce->has_value()) << (*ce)->ToString();
}

TEST(NonUnitTest, Example72CorrelatedHeadRejected) {
  // P = q(X, Y) :- a(X, Z), p(Z, Y) with the open query: the goal-feeding
  // component {a(X, Z)} reaches the head variable X, so different goals
  // produce different X-bindings and factoring is invalid (the paper's
  // "this is not the case" example).
  ast::Program program =
      P(std::string("q(X, Y) :- a(X, Z), p(Z, Y).\n") + kP1);
  auto result = FactorInnerPredicate(program, A("q(X, Y)"), "p");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->report.factorable);
  bool c3_failed = false;
  for (const std::string& r : result->report.reasons) {
    if (r.find("C3") != std::string::npos &&
        r.find("head variable") != std::string::npos) {
      c3_failed = true;
    }
  }
  EXPECT_TRUE(c3_failed);

  // And the checker is right: blind factoring is falsified.
  FactorSplit split;
  split.predicate = "p_bf";
  split.part1 = {0};
  split.part2 = {1};
  split.name1 = "bp";
  split.name2 = "fp";
  auto blind = FactorTransform(result->magic.program, result->magic.query,
                               split);
  ASSERT_TRUE(blind.ok());
  auto ce = eval::FindCounterexample(program, A("q(X, Y)"), blind->program,
                                     blind->query);
  ASSERT_TRUE(ce.ok());
  EXPECT_TRUE(ce->has_value())
      << "expected blind non-unit factoring to be falsified";
}

TEST(NonUnitTest, Example72P2Rejected) {
  // P ∪ P2: combined rules are unsafe under multiple seeds "regardless of
  // which rule is chosen for P".
  for (const char* outer : {"q(Y) :- a(X, Z), p(Z, Y).",
                            "q(X, Y) :- a(X, Z), p(Z, Y)."}) {
    ast::Program program = P(std::string(outer) + "\n" + kP2);
    ast::Atom query = std::string(outer).find("q(X") == std::string::npos
                          ? A("q(Y)")
                          : A("q(X, Y)");
    auto result = FactorInnerPredicate(program, query, "p");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->report.factorable) << outer;
    bool c2_failed = false;
    for (const std::string& r : result->report.reasons) {
      if (r.find("C2") != std::string::npos) c2_failed = true;
    }
    EXPECT_TRUE(c2_failed) << outer;
  }
}

TEST(NonUnitTest, AnswerCorrelationRejected) {
  // The call's bound side correlates with its own answer side through g:
  // q(Y) :- a(Z), g(Z, W), p(Z, W) — answers must be matched to goals.
  ast::Program program = P(std::string(
      "q(W) :- a(Z), g(Z, W), p(Z, W).\n") + kP1);
  auto result = FactorInnerPredicate(program, A("q(W)"), "p");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->report.factorable);
}

TEST(NonUnitTest, TwoCallSitesRejected) {
  ast::Program program = P(std::string(R"(
    q(Y) :- a(Z), p(Z, Y).
    q(Y) :- a2(Z), p(Z, Y).
  )") + kP1);
  auto result = FactorInnerPredicate(program, A("q(Y)"), "p");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->report.factorable);
  bool saw_count = false;
  for (const std::string& r : result->report.reasons) {
    if (r.find("exactly one call site") != std::string::npos) saw_count = true;
  }
  EXPECT_TRUE(saw_count);
}

TEST(NonUnitTest, MultipleAdornmentsRejected) {
  // p is called once with the first argument bound and once with the
  // second: two adornments.
  ast::Program program = P(std::string(R"(
    q(Y) :- a(Z), p(Z, Y), p(Y, Z).
  )") + kP1);
  auto result = FactorInnerPredicate(program, A("q(Y)"), "p");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->report.factorable);
}

TEST(NonUnitTest, UnknownPredicateIsNotFound) {
  ast::Program program = P(std::string("q(Y) :- a(Z), p(Z, Y).\n") + kP1);
  auto result = FactorInnerPredicate(program, A("q(Y)"), "zz");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(NonUnitTest, FactoredProgramReducesInnerArity) {
  ast::Program program = P(std::string("q(Y) :- a(X, Z), p(Z, Y).\n") + kP1);
  auto result = FactorInnerPredicate(program, A("q(Y)"), "p");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->factored.has_value());
  for (const ast::Rule& r : result->factored->program.rules()) {
    EXPECT_NE(r.head().predicate(), "p_bf");
    for (const ast::Atom& b : r.body()) {
      EXPECT_NE(b.predicate(), "p_bf");
      if (b.predicate() == "bp" || b.predicate() == "fp") {
        EXPECT_EQ(b.arity(), 1u);
      }
    }
  }
}

}  // namespace
}  // namespace factlog::core
