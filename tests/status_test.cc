#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

namespace factlog {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::Invalid("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad arity");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ValueOrMovesFromRvalueResult) {
  // The && overload moves the stored value out instead of copying it.
  auto make = [] { return Result<std::unique_ptr<int>>(
      std::make_unique<int>(42)); };
  std::unique_ptr<int> v = make().ValueOr(nullptr);  // move-only: must move
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 42);
  std::unique_ptr<int> fallback =
      Result<std::unique_ptr<int>>(Status::NotFound("gone"))
          .ValueOr(std::make_unique<int>(7));
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(*fallback, 7);
}

TEST(ResultTest, ValueOrOnLvalueLeavesValueIntact) {
  Result<std::string> r = std::string("keep");
  std::string copy = r.ValueOr("fallback");
  EXPECT_EQ(copy, "keep");
  EXPECT_EQ(*r, "keep");  // the const& overload copies, it does not move
}

TEST(StatusTest, ExitCodesAreDistinct) {
  EXPECT_EQ(StatusCodeToExitCode(StatusCode::kOk), 0);
  std::set<int> seen;
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kUnimplemented}) {
    int exit_code = StatusCodeToExitCode(code);
    EXPECT_GT(exit_code, 0);
    EXPECT_LT(exit_code, 128);  // leave the signal range alone
    EXPECT_TRUE(seen.insert(exit_code).second) << StatusCodeToString(code);
  }
}

Status Propagates(bool fail) {
  FACTLOG_RETURN_IF_ERROR(fail ? Status::Invalid("inner") : Status::OK());
  return Status::OK();
}

Result<int> Assigns(bool fail) {
  FACTLOG_ASSIGN_OR_RETURN(
      int v, fail ? Result<int>(Status::Invalid("nope")) : Result<int>(3));
  return v + 1;
}

TEST(MacroTest, ReturnIfError) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_FALSE(Propagates(true).ok());
  EXPECT_EQ(Propagates(true).message(), "inner");
}

TEST(MacroTest, AssignOrReturn) {
  auto ok = Assigns(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 4);
  EXPECT_FALSE(Assigns(true).ok());
}

}  // namespace
}  // namespace factlog
