#include "core/separable.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "tests/test_util.h"

namespace factlog::core {
namespace {

using test::A;
using test::P;

TEST(SeparableTest, RightLinearTcIsReducibleSeparable) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto r = CheckSeparable(p, "t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->linear);
  EXPECT_TRUE(r->separable) << r->diagnostic;
  EXPECT_TRUE(r->reducible);
  // t^h = {0}: X shares with e; Y is fixed and shares with nothing.
  ASSERT_EQ(r->head_shared.size(), 1u);
  EXPECT_EQ(r->head_shared[0], (std::set<int>{0}));
  EXPECT_EQ(r->fixed_positions[0], (std::set<int>{1}));
}

TEST(SeparableTest, ShiftingVariablesRejected) {
  // Definition 6.1: Y moves from position 2 to position 1.
  ast::Program p = P(R"(
    t(X, Y) :- e(X, W), t(Y, W).
    t(X, Y) :- e(X, Y).
  )");
  auto r = CheckSeparable(p, "t");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->separable);
  EXPECT_NE(r->diagnostic.find("shifting"), std::string::npos);
}

TEST(SeparableTest, NonlinearRejected) {
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto r = CheckSeparable(p, "t");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->linear);
  EXPECT_FALSE(r->separable);
}

TEST(SeparableTest, HeadBodyMismatchRejected) {
  // t^h = {0} (a touches X) but t^b = {} for the occurrence (W unshared...
  // actually W shares with a; make them differ): here head shares position
  // 0 via a(X) while the body occurrence's position-0 variable V is not in
  // any EDB atom.
  ast::Program p = P(R"(
    t(X, Y) :- a(X), t(V, Y), b(V).
    t(X, Y) :- e(X, Y).
  )");
  // Here t^h = {0} and t^b = {0} as well (V shares with b) — adjust: drop b.
  ast::Program p2 = P(R"(
    t(X, Y) :- a(X, V), t(V, Y).
    t(X, Y) :- e(X, Y).
  )");
  // p2: t^h = {0}, t^b = {0}: equal. A genuine mismatch needs the head
  // position to interact while the body's does not:
  ast::Program p3 = P(R"(
    t(X, Y) :- a(X), c(W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  // p3: head pos0 shares via a; body pos0 (W) shares via c: t^h == t^b =
  // {0} again, but condition (4) fails: a and c are disconnected.
  auto r3 = CheckSeparable(p3, "t");
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(r3->separable);
  EXPECT_NE(r3->diagnostic.find("connected"), std::string::npos);
  (void)p;
  (void)p2;
}

TEST(SeparableTest, SeparableButNotReducible) {
  // The paper's A-nonempty form: t(X, Y) :- a(X), t(X, W), b(W, Y).
  // X is fixed AND shares with a: not reducible (full selections bind
  // everything and the arity cannot drop).
  ast::Program p = P(R"(
    t(X, Y) :- a(X), t(X, W), b(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto r = CheckSeparable(p, "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->separable) << r->diagnostic;
  EXPECT_FALSE(r->reducible);
}

TEST(SeparableTest, TwoRuleGroupsEqualOrDisjoint) {
  // Rules moving disjoint argument groups: pairwise disjoint t_i^h.
  ast::Program p = P(R"(
    t(X, Y) :- e1(X, W), t(W, Y).
    t(X, Y) :- e2(Y, W), t(X, W).
    t(X, Y) :- e(X, Y).
  )");
  auto r = CheckSeparable(p, "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->separable) << r->diagnostic;
  EXPECT_TRUE(r->reducible);
  EXPECT_EQ(r->head_shared[0], (std::set<int>{0}));
  EXPECT_EQ(r->head_shared[1], (std::set<int>{1}));
}

TEST(SeparableTest, FullSelectionRespectsGroups) {
  ast::Program p = P(R"(
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto r = CheckSeparable(p, "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsFullSelection(*r, A("t(1, Y)")));   // binds the moving group
  EXPECT_TRUE(IsFullSelection(*r, A("t(X, 2)")));   // binds the fixed group
  EXPECT_FALSE(IsFullSelection(*r, A("t(X, Y)")));  // binds nothing
  EXPECT_FALSE(IsFullSelection(*r, A("t(1, 2)")));  // binds everything
}

TEST(SeparableTest, FullSelectionMustNotCutGroups) {
  // Groups {0,1} moving together: binding only one of them is not full.
  ast::Program p = P(R"(
    t(X, Y, Z) :- e(X, Y, V, W), t(V, W, Z).
    t(X, Y, Z) :- e0(X, Y, Z).
  )");
  auto r = CheckSeparable(p, "t");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->separable) << r->diagnostic;
  EXPECT_EQ(r->head_shared[0], (std::set<int>{0, 1}));
  EXPECT_TRUE(IsFullSelection(*r, A("t(1, 2, Z)")));
  EXPECT_FALSE(IsFullSelection(*r, A("t(1, Y, Z)")));  // cuts the group
  EXPECT_TRUE(IsFullSelection(*r, A("t(X, Y, 3)")));
}

// Theorem 6.3: reducible separable + full selection ⇒ the Magic program is
// factorable (cross-validated against the selection-pushing checker through
// the full pipeline).
struct SeparableCase {
  const char* name;
  const char* program;
  const char* query;
};

class Theorem63Test : public ::testing::TestWithParam<SeparableCase> {};

TEST_P(Theorem63Test, ReducibleSeparableFullSelectionFactors) {
  ast::Program p = P(GetParam().program);
  ast::Atom q = A(GetParam().query);
  auto r = CheckSeparable(p, q.predicate());
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->separable) << r->diagnostic;
  ASSERT_TRUE(r->reducible);
  ASSERT_TRUE(IsFullSelection(*r, q));

  auto pipe = OptimizeQuery(p, q);
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();
  EXPECT_TRUE(pipe->factoring_applied) << pipe->classification.diagnostic;
  EXPECT_TRUE(pipe->factorability.selection_pushing);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Theorem63Test,
    ::testing::Values(
        SeparableCase{"right_tc_forward",
                      "t(X, Y) :- e(X, W), t(W, Y). t(X, Y) :- e(X, Y).",
                      "t(1, Y)"},
        SeparableCase{"right_tc_backward",
                      "t(X, Y) :- e(X, W), t(W, Y). t(X, Y) :- e(X, Y).",
                      "t(X, 9)"},
        SeparableCase{"disjoint_groups_first",
                      "t(X, Y) :- e1(X, W), t(W, Y). "
                      "t(X, Y) :- e2(Y, W), t(X, W). "
                      "t(X, Y) :- e(X, Y).",
                      "t(1, Y)"},
        SeparableCase{"wide_group",
                      "t(X, Y, Z) :- e(X, Y, V, W), t(V, W, Z). "
                      "t(X, Y, Z) :- e0(X, Y, Z).",
                      "t(1, 2, Z)"}),
    [](const ::testing::TestParamInfo<SeparableCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace factlog::core
