#include "core/transform_pass.h"

#include <gtest/gtest.h>

#include "core/canonical.h"
#include "core/pipeline.h"
#include "tests/test_util.h"
#include "transform/magic.h"

namespace factlog::core {
namespace {

using test::A;
using test::P;

const char kRightTc[] = R"(
  t(X, Y) :- e(X, Y).
  t(X, Y) :- e(X, W), t(W, Y).
  ?- t(1, Y).
)";

const char kSameGeneration[] = R"(
  sg(X, Y) :- flat(X, Y).
  sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
  ?- sg(1, Y).
)";

TEST(StrategyTest, NamesRoundTrip) {
  for (Strategy s : {Strategy::kAuto, Strategy::kMagic,
                     Strategy::kSupplementaryMagic, Strategy::kFactoring,
                     Strategy::kCounting, Strategy::kLinearRewrite}) {
    auto parsed = StrategyFromString(StrategyToString(s));
    ASSERT_TRUE(parsed.has_value()) << StrategyToString(s);
    EXPECT_EQ(*parsed, s);
  }
  // Underscores are accepted for dashes.
  EXPECT_EQ(StrategyFromString("supplementary_magic"),
            Strategy::kSupplementaryMagic);
  EXPECT_FALSE(StrategyFromString("bogus").has_value());
}

TEST(StrategyTest, AllConcreteStrategiesExcludesAuto) {
  std::vector<Strategy> all = AllConcreteStrategies();
  EXPECT_EQ(all.size(), 5u);
  for (Strategy s : all) EXPECT_NE(s, Strategy::kAuto);
}

TEST(RunPassesTest, PreconditionViolationFailsWithPassName) {
  // Magic Sets requires an adorned program; running it first must fail.
  TransformState state;
  ast::Program p = P(kRightTc);
  state.source = p;
  state.source_query = *p.query();
  PassSequence seq;
  seq.push_back(MakeMagicPass());
  auto result = RunPasses(seq, state);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("magic-sets"), std::string::npos);
}

TEST(RunPassesTest, EveryPassGetsATraceEntry) {
  TransformState state;
  ast::Program p = P(kRightTc);
  state.source = p;
  state.source_query = *p.query();
  auto result = RunPasses(PassesForStrategy(Strategy::kFactoring), state);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);  // ran to completion
  ASSERT_EQ(state.trace.size(), 7u);
  EXPECT_EQ(state.trace[0].pass, "adorn");
  EXPECT_EQ(state.trace[1].pass, "classify");
  EXPECT_EQ(state.trace[2].pass, "normalize");
  EXPECT_EQ(state.trace[3].pass, "magic-sets");
  EXPECT_EQ(state.trace[4].pass, "factorability");
  EXPECT_EQ(state.trace[5].pass, "factoring");
  EXPECT_EQ(state.trace[6].pass, "section-5-cleanups");
  // The stable program was not normalized.
  EXPECT_FALSE(state.trace[2].applied);
  // Rule counts track the rewrites: magic doubles, the cleanups shrink.
  EXPECT_GT(state.trace[3].rules_after, state.trace[3].rules_before);
  EXPECT_LT(state.trace[6].rules_after, state.trace[6].rules_before);
}

TEST(RunPassesTest, HaltStopsSequenceGracefully) {
  TransformState state;
  ast::Program p = P(kSameGeneration);
  state.source = p;
  state.source_query = *p.query();
  auto result = RunPasses(PassesForStrategy(Strategy::kFactoring), state);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);  // halted
  EXPECT_TRUE(state.trace.back().halted);
  EXPECT_EQ(state.trace.back().pass, "factorability");
  // The Magic program was still produced: the graceful fallback.
  EXPECT_TRUE(state.magic.has_value());
  EXPECT_FALSE(state.factoring_applied);
}

TEST(RunPassesTest, HaltIsErrorWhenStrict) {
  TransformState state;
  ast::Program p = P(kSameGeneration);
  state.source = p;
  state.source_query = *p.query();
  RunPassesOptions opts;
  opts.halt_is_error = true;
  auto result = RunPasses(PassesForStrategy(Strategy::kFactoring), state, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CompileQueryTest, FactoringMatchesOptimizeQuery) {
  ast::Program p = P(kRightTc);
  auto compiled = CompileQuery(p, *p.query(), Strategy::kFactoring);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto pipeline = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE(compiled->factoring_applied);
  EXPECT_EQ(compiled->program.rules(), pipeline->final_program().rules());
  EXPECT_EQ(compiled->query, pipeline->final_query());
  EXPECT_EQ(compiled->factor_class, pipeline->factorability.cls);
}

TEST(CompileQueryTest, MagicMatchesDirectTransform) {
  // The thin strategy wrapper produces exactly what the standalone
  // transform entry point produces.
  ast::Program p = P(kRightTc);
  auto compiled = CompileQuery(p, *p.query(), Strategy::kMagic);
  ASSERT_TRUE(compiled.ok());
  auto adorned = analysis::Adorn(p, *p.query());
  ASSERT_TRUE(adorned.ok());
  auto magic = transform::MagicSets(*adorned);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(compiled->program.rules(), magic->program.rules());
  EXPECT_EQ(compiled->query, magic->query);
  EXPECT_EQ(compiled->strategy, Strategy::kMagic);
}

TEST(CompileQueryTest, AutoPicksFactoringOnTransitiveClosure) {
  ast::Program p = P(kRightTc);
  auto compiled = CompileQuery(p, *p.query(), Strategy::kAuto);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->strategy, Strategy::kFactoring);
  EXPECT_TRUE(compiled->factoring_applied);
  EXPECT_EQ(compiled->factor_class, FactorClass::kSelectionPushing);
}

TEST(CompileQueryTest, AutoFallsBackToSupplementaryMagicOnSg) {
  ast::Program p = P(kSameGeneration);
  auto compiled = CompileQuery(p, *p.query(), Strategy::kAuto);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->strategy, Strategy::kSupplementaryMagic);
  EXPECT_FALSE(compiled->factoring_applied);
  // The trace records both the rejected factoring attempt and the fallback.
  std::string trace = TraceToString(compiled->trace);
  EXPECT_NE(trace.find("factorability"), std::string::npos);
  EXPECT_NE(trace.find("supplementary-magic"), std::string::npos);
}

TEST(CompileQueryTest, StrictStrategiesFailWhenInapplicable) {
  ast::Program p = P(kSameGeneration);
  for (Strategy s : {Strategy::kCounting, Strategy::kLinearRewrite}) {
    auto compiled = CompileQuery(p, *p.query(), s);
    ASSERT_FALSE(compiled.ok()) << StrategyToString(s);
    EXPECT_EQ(compiled.status().code(), StatusCode::kFailedPrecondition);
  }
  // kFactoring keeps the paper's graceful Magic fallback instead.
  auto factoring = CompileQuery(p, *p.query(), Strategy::kFactoring);
  ASSERT_TRUE(factoring.ok());
  EXPECT_FALSE(factoring->factoring_applied);
  EXPECT_GT(factoring->program.rules().size(), 0u);
}

TEST(CompileQueryTest, CompiledProgramCarriesQuery) {
  ast::Program p = P(kRightTc);
  for (Strategy s : AllConcreteStrategies()) {
    auto compiled = CompileQuery(p, *p.query(), s);
    ASSERT_TRUE(compiled.ok()) << StrategyToString(s);
    ASSERT_TRUE(compiled->program.query().has_value());
    EXPECT_EQ(*compiled->program.query(), compiled->query);
  }
}

TEST(FixpointPassTest, CustomSequenceRunsChildrenToFixpoint) {
  // A §5 fixpoint built by hand from individual passes behaves like the
  // packaged section-5 pass.
  ast::Program p = P(kRightTc);
  TransformState state;
  state.source = p;
  state.source_query = *p.query();
  PassSequence front;
  front.push_back(MakeAdornPass());
  front.push_back(MakeClassifyPass());
  front.push_back(MakeMagicPass());
  front.push_back(MakeFactorabilityGatePass());
  front.push_back(MakeFactoringPass());
  ASSERT_TRUE(RunPasses(front, state).ok());

  PassSequence cleanups;
  cleanups.push_back(MakeHeadInBodyPass());
  cleanups.push_back(MakeSubsumedMagicPass());
  cleanups.push_back(MakeAnonymizePass());
  cleanups.push_back(MakeAnonymousFactorPass());
  cleanups.push_back(MakeSeedFactorPass());
  cleanups.push_back(MakeDuplicateRulePass());
  cleanups.push_back(MakeUnreachablePass());
  cleanups.push_back(MakeUniformEquivalencePass(OptimizeOptions()));
  PassSequence fix;
  fix.push_back(MakeFixpointPass(std::move(cleanups)));
  ASSERT_TRUE(RunPasses(fix, state).ok());
  ASSERT_TRUE(state.optimized.has_value());

  auto pipeline = OptimizeQuery(p, *p.query());
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE(StructurallyEqual(*state.optimized, *pipeline->optimized))
      << state.optimized->ToString();
}

TEST(TraceTest, ToStringMentionsPassAndRuleCounts) {
  PassTraceEntry entry;
  entry.pass = "magic-sets";
  entry.applied = true;
  entry.rules_before = 2;
  entry.rules_after = 4;
  entry.duration_us = 12;
  entry.notes.push_back("magic program has 4 rules");
  std::string s = entry.ToString();
  EXPECT_NE(s.find("magic-sets"), std::string::npos);
  EXPECT_NE(s.find("2 -> 4 rules"), std::string::npos);
  EXPECT_NE(s.find("magic program has 4 rules"), std::string::npos);
}

}  // namespace
}  // namespace factlog::core
