#include "ast/unify.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace factlog::ast {
namespace {

using test::T;

TEST(SubstitutionTest, ApplyShallow) {
  Substitution s;
  s.Bind("X", Term::Int(3));
  EXPECT_EQ(s.Apply(T("f(X, Y)")), T("f(3, Y)"));
}

TEST(SubstitutionTest, ApplyIsSimultaneous) {
  Substitution s;
  s.Bind("X", Term::Var("Y"));
  s.Bind("Y", Term::Int(3));
  // Shallow Apply performs one step only.
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Var("Y"));
  // DeepApply resolves chains.
  EXPECT_EQ(s.DeepApply(Term::Var("X")), Term::Int(3));
}

TEST(SubstitutionTest, WalkFollowsChains) {
  Substitution s;
  s.Bind("X", Term::Var("Y"));
  s.Bind("Y", Term::Var("Z"));
  EXPECT_EQ(s.Walk(Term::Var("X")), Term::Var("Z"));
}

TEST(UnifyTest, VarWithConstant) {
  Substitution s;
  EXPECT_TRUE(Unify(Term::Var("X"), Term::Int(5), &s));
  EXPECT_EQ(s.DeepApply(Term::Var("X")), Term::Int(5));
}

TEST(UnifyTest, ConstantClash) {
  Substitution s;
  EXPECT_FALSE(Unify(Term::Int(5), Term::Int(6), &s));
  EXPECT_FALSE(Unify(Term::Sym("a"), Term::Sym("b"), &s));
  EXPECT_FALSE(Unify(Term::Int(5), Term::Sym("a"), &s));
}

TEST(UnifyTest, CompoundDecomposition) {
  Substitution s;
  EXPECT_TRUE(Unify(T("f(X, g(Y))"), T("f(1, g(2))"), &s));
  EXPECT_EQ(s.DeepApply(Term::Var("X")), Term::Int(1));
  EXPECT_EQ(s.DeepApply(Term::Var("Y")), Term::Int(2));
}

TEST(UnifyTest, FunctorMismatch) {
  Substitution s;
  EXPECT_FALSE(Unify(T("f(X)"), T("g(X)"), &s));
}

TEST(UnifyTest, SharedVariable) {
  Substitution s;
  EXPECT_TRUE(Unify(T("f(X, X)"), T("f(Y, 3)"), &s));
  EXPECT_EQ(s.DeepApply(Term::Var("Y")), Term::Int(3));
}

TEST(UnifyTest, OccursCheck) {
  Substitution s;
  EXPECT_FALSE(Unify(Term::Var("X"), T("f(X)"), &s));
}

TEST(UnifyTest, ListDestructuring) {
  Substitution s;
  EXPECT_TRUE(Unify(T("[H | T]"), T("[1, 2, 3]"), &s));
  EXPECT_EQ(s.DeepApply(Term::Var("H")), Term::Int(1));
  EXPECT_EQ(s.DeepApply(Term::Var("T")), T("[2, 3]"));
}

TEST(UnifyTest, AtomsWithDifferentPredicatesFail) {
  Substitution s;
  EXPECT_FALSE(UnifyAtoms(test::A("p(X)"), test::A("q(X)"), &s));
}

TEST(UnifyTest, AtomUnification) {
  Substitution s;
  EXPECT_TRUE(UnifyAtoms(test::A("p(X, f(X))"), test::A("p(1, Y)"), &s));
  EXPECT_EQ(s.DeepApply(Term::Var("Y")), T("f(1)"));
}

TEST(MatchTest, OneWayOnly) {
  Substitution s;
  EXPECT_TRUE(MatchTerm(T("f(X, 2)"), T("f(1, 2)"), &s));
  EXPECT_EQ(*s.Lookup("X"), Term::Int(1));
}

TEST(MatchTest, BoundVariableMustAgree) {
  Substitution s;
  EXPECT_FALSE(MatchTerm(T("f(X, X)"), T("f(1, 2)"), &s));
  Substitution s2;
  EXPECT_TRUE(MatchTerm(T("f(X, X)"), T("f(1, 1)"), &s2));
}

TEST(MatchTest, GroundMismatch) {
  Substitution s;
  EXPECT_FALSE(MatchTerm(T("f(1)"), T("f(2)"), &s));
  EXPECT_FALSE(MatchTerm(T("[1 | T]"), T("[2, 3]"), &s));
  EXPECT_TRUE(MatchTerm(T("[1 | T]"), T("[1, 3]"), &s));
}

TEST(FreshVarGenTest, AvoidsReserved) {
  FreshVarGen gen("_V");
  gen.Reserve("_V0");
  std::string v1 = gen.Fresh();
  EXPECT_NE(v1, "_V0");
  std::string v2 = gen.Fresh();
  EXPECT_NE(v1, v2);
}

TEST(FreshVarGenTest, RenameApartIsConsistent) {
  Rule r = test::R("t(X, Y) :- t(X, W), e(W, Y).");
  FreshVarGen gen;
  gen.ReserveFrom(r);
  Rule renamed = RenameApart(r, &gen);
  // Same shape, disjoint variables.
  EXPECT_EQ(renamed.head().predicate(), "t");
  EXPECT_EQ(renamed.body().size(), 2u);
  for (const std::string& v : renamed.DistinctVars()) {
    EXPECT_TRUE(v.rfind("_V", 0) == 0) << v;
  }
  // X occurs in head and first body literal; renaming must preserve that.
  EXPECT_EQ(renamed.head().args()[0], renamed.body()[0].args()[0]);
  EXPECT_EQ(renamed.head().args()[1], renamed.body()[1].args()[1]);
}

}  // namespace
}  // namespace factlog::ast
