// Tests for incremental view maintenance (src/inc): the interleaved
// insert/delete oracle sweep over the shared corpus at every shard × thread
// combination, targeted counting and DRed rederivation cases, and the
// api::Engine view integration.

#include "inc/incremental.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "ast/parser.h"
#include "eval/seminaive.h"
#include "tests/sweep_corpus.h"
#include "tests/test_util.h"

namespace factlog::inc {
namespace {

using test::A;
using test::P;

std::set<std::vector<eval::ValueId>> RowSet(const eval::Relation& rel) {
  std::set<std::vector<eval::ValueId>> out;
  for (size_t r = 0; r < rel.size(); ++r) {
    const eval::ValueId* row = rel.row(r);
    out.insert(std::vector<eval::ValueId>(row, row + rel.arity()));
  }
  return out;
}

ast::Atom Edge(int64_t a, int64_t b) {
  return ast::Atom("e", {ast::Term::Int(a), ast::Term::Int(b)});
}

// Asserts the view's maintained fact sets are identical, predicate by
// predicate, to a from-scratch evaluation of the plan's program against the
// engine's current EDB.
void ExpectMatchesOracle(api::Engine* engine, const ast::Program& plan_program,
                         const MaterializedView* view,
                         const std::string& context) {
  auto oracle = eval::Evaluate(plan_program, &engine->db());
  ASSERT_TRUE(oracle.ok()) << context << ": " << oracle.status().ToString();
  ASSERT_NE(view, nullptr) << context;
  EXPECT_FALSE(view->poisoned()) << context;
  for (const auto& [pred, rel] : oracle->idb()) {
    const eval::Relation* maintained = view->Find(pred);
    ASSERT_NE(maintained, nullptr) << context << " missing " << pred;
    EXPECT_EQ(RowSet(*maintained), RowSet(*rel))
        << context << " diverged on " << pred;
  }
  EXPECT_EQ(view->idb().size(), oracle->idb().size()) << context;
}

// ---- Oracle sweep: random interleaved inserts and deletes ------------------
//
// For every corpus program × workload and every shard × thread combination,
// a seeded random sequence of edge insertions and deletions is applied
// through the engine; after every update the maintained fact sets must match
// from-scratch re-evaluation exactly.

class IncSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(IncSweepTest, InterleavedUpdatesMatchOracle) {
  const test::SweepProgram& prog = test::kSweepPrograms[GetParam()];
  const size_t combos[][2] = {{1, 1}, {1, 2}, {1, 8}, {2, 1}, {2, 2},
                              {2, 8}, {8, 1}, {8, 2}, {8, 8}};
  for (int w = 0; w < test::kNumSweepWorkloads; ++w) {
    const test::SweepWorkload& workload = test::kSweepWorkloads[w];
    for (const auto& combo : combos) {
      const size_t shards = combo[0];
      const size_t threads = combo[1];
      api::EngineOptions options;
      options.num_shards = shards;
      options.num_threads = threads;
      // Force even single-fact deltas over the shard-parallel path.
      options.inc_min_rows_to_partition = 1;
      api::Engine engine(options);
      workload.make(&engine.db());

      ast::Program program = P(prog.text);
      ast::Atom query = A(prog.query);
      auto plan = engine.Compile(program, query);
      ASSERT_TRUE(plan.ok()) << prog.name << ": " << plan.status().ToString();
      auto handle = engine.Materialize(program, query);
      ASSERT_TRUE(handle.ok())
          << prog.name << ": " << handle.status().ToString();
      const MaterializedView* view = engine.view(*handle);

      // The update universe: a fixed pool of edges over the workload's node
      // range, so inserts sometimes duplicate and deletes sometimes miss.
      std::minstd_rand rng(1234 + GetParam() * 97 + w * 13 +
                           static_cast<unsigned>(shards * 8 + threads));
      auto random_edge = [&rng]() {
        int64_t a = 1 + static_cast<int64_t>(rng() % 26);
        int64_t b = 1 + static_cast<int64_t>(rng() % 26);
        return Edge(a, b);
      };
      for (int op = 0; op < 10; ++op) {
        ast::Atom edge = random_edge();
        Status st;
        bool deleted = (rng() % 3) == 0;  // insert-leaning mix
        if (deleted) {
          st = engine.RemoveFact(edge);
        } else {
          st = engine.AddFact(edge);
        }
        ASSERT_TRUE(st.ok()) << st.ToString();
        std::string context = std::string(prog.name) + "/" + workload.name +
                              " shards=" + std::to_string(shards) +
                              " threads=" + std::to_string(threads) +
                              " op=" + std::to_string(op) +
                              (deleted ? " -" : " +") + edge.ToString();
        ExpectMatchesOracle(&engine, (*plan)->program, view, context);
      }

      // Answers served from the view equal a from-scratch query.
      api::QueryStats qstats;
      auto from_view = engine.Query(program, query, core::Strategy::kAuto,
                                    &qstats);
      ASSERT_TRUE(from_view.ok());
      EXPECT_TRUE(qstats.view_hit);
      auto fresh = eval::EvaluateQuery((*plan)->program, (*plan)->query,
                                       &engine.db());
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ(from_view->rows, fresh->rows)
          << prog.name << "/" << workload.name << " shards=" << shards
          << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, IncSweepTest,
                         ::testing::Range(0, test::kNumSweepPrograms),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(
                               test::kSweepPrograms[info.param].name);
                         });

// ---- Targeted counting cases ------------------------------------------------

// Drives a MaterializedView directly, mimicking the engine's ordering
// contract (insert: propagate then apply; delete: apply then propagate).
struct Harness {
  eval::Database db;
  std::unique_ptr<MaterializedView> view;

  explicit Harness(eval::StorageOptions storage = {}) : db(storage) {}

  void Build(const std::string& program_text,
             const IncrementalOptions& opts = {}) {
    auto built = MaterializedView::Build(P(program_text), &db, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    view = std::move(built).value();
  }

  void Insert(const ast::Atom& fact) {
    auto row = db.InternRow(fact);
    ASSERT_TRUE(row.ok());
    eval::Relation& rel = db.GetOrCreate(fact.predicate(), fact.arity());
    if (rel.Contains(row->data())) return;
    eval::Relation delta(fact.arity(), rel.storage_options());
    delta.Insert(*row);
    Status st = view->ApplyInsert(fact.predicate(), delta);
    ASSERT_TRUE(st.ok()) << st.ToString();
    rel.Insert(*row);
  }

  void Remove(const ast::Atom& fact) {
    auto row = db.InternRow(fact);
    ASSERT_TRUE(row.ok());
    eval::Relation* rel = db.Find(fact.predicate());
    if (rel == nullptr || !rel->Contains(row->data())) return;
    rel->Erase(row->data());
    rel->SyncShards();
    eval::Relation delta(fact.arity(), rel->storage_options());
    delta.Insert(*row);
    Status st = view->ApplyDelete(fact.predicate(), delta);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  int64_t Support(const std::string& pred, const ast::Atom& fact) {
    auto row = db.InternRow(fact);
    EXPECT_TRUE(row.ok());
    const eval::Relation* rel = view->Find(pred);
    EXPECT_NE(rel, nullptr);
    return rel->SupportOf(row->data());
  }
};

TEST(IncCountingTest, SupportCountsSurviveAlternativeDerivations) {
  Harness h;
  // Two-hop: h(1, 4) has two derivations (via 2 and via 3).
  h.db.AddPair("e", 1, 2);
  h.db.AddPair("e", 2, 4);
  h.db.AddPair("e", 1, 3);
  h.db.AddPair("e", 3, 4);
  h.Build("h(X, Y) :- e(X, W), e(W, Y).");
  ast::Atom h14("h", {ast::Term::Int(1), ast::Term::Int(4)});
  EXPECT_EQ(h.Support("h", h14), 2);

  h.Remove(Edge(1, 2));  // one derivation lost, the fact lives on
  EXPECT_EQ(h.Support("h", h14), 1);
  EXPECT_EQ(h.view->stats().idb_deleted, 0u);
  h.Remove(Edge(1, 3));  // last derivation gone
  EXPECT_EQ(h.Support("h", h14), 0);
  EXPECT_FALSE(h.view->Find("h")->Contains(
      h.db.InternRow(h14)->data()));

  h.Insert(Edge(1, 2));  // re-derive through the restored edge
  EXPECT_EQ(h.Support("h", h14), 1);
}

// ---- Targeted DRed cases ----------------------------------------------------

TEST(IncDRedTest, DeleteOnOnlyDerivationPathRemovesDownstream) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadFacts("e(1, 2). e(2, 3). e(3, 4).").ok());
  const char* text =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  auto handle = engine.Materialize(text);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  ASSERT_TRUE(engine.RemoveFact(Edge(2, 3)).ok());
  auto answers = engine.Query(text);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 1u);  // only t(1, 2) survives

  auto stats = engine.ViewStatsFor(*handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->overdeleted, 0u);
}

TEST(IncDRedTest, DeleteOneOfTwoPathsPrunesAlternate) {
  api::Engine engine;
  // Diamond: 1 -> {2, 3} -> 4; t(1, 4) has two derivation paths.
  ASSERT_TRUE(engine.LoadFacts("e(1, 2). e(2, 4). e(1, 3). e(3, 4).").ok());
  const char* text =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  auto handle = engine.Materialize(text);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  ASSERT_TRUE(engine.RemoveFact(Edge(1, 2)).ok());
  auto answers = engine.Query(text);
  ASSERT_TRUE(answers.ok());
  std::set<int64_t> ys;
  for (const auto& row : answers->rows) {
    ys.insert(engine.db().store().int_value(row[0]));
  }
  EXPECT_EQ(ys, (std::set<int64_t>{3, 4}));  // 4 survives via 3

  // The slice path never over-deletes the survivor: the fact with an
  // alternate derivation is pruned from the cone instead of being deleted
  // and re-derived.
  auto stats = engine.ViewStatsFor(*handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->edge_store_active);
  EXPECT_GT(stats->cone_input, 0u);
  EXPECT_GT(stats->cone_pruned, 0u);
  EXPECT_EQ(stats->rederived, 0u);
}

TEST(IncDRedTest, InsertReconnectsComponent) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadFacts("e(1, 2). e(3, 4). e(4, 5).").ok());
  const char* text =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  ASSERT_TRUE(engine.Materialize(text).ok());

  ASSERT_TRUE(engine.AddFact(Edge(2, 3)).ok());  // bridges the components
  auto answers = engine.Query(text);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 4u);  // 2, 3, 4, 5
}

// ---- Edge-guided slice deletion ---------------------------------------------

// Dense graph: chain 1 -> 2 -> ... -> N plus skip edges i -> i+2, so every
// node past the second has two incoming edges and most reachability facts
// have alternate derivations. Random single-edge deletes must (a) stay
// fact-for-fact equal to the from-scratch oracle and (b) touch a deletion
// cone strictly smaller than the reachable set — the whole point of slicing
// along recorded derivation edges instead of over-deleting DRed-style.
TEST(IncSliceTest, DenseGraphRandomDeletesMatchOracle) {
  constexpr int64_t kNodes = 14;
  const size_t combos[][2] = {{1, 1}, {1, 2}, {1, 8}, {2, 1}, {2, 2},
                              {2, 8}, {8, 1}, {8, 2}, {8, 8}};
  const char* text =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  for (const auto& combo : combos) {
    const size_t shards = combo[0];
    const size_t threads = combo[1];
    api::EngineOptions options;
    options.num_shards = shards;
    options.num_threads = threads;
    options.inc_min_rows_to_partition = 1;  // force the parallel path
    api::Engine engine(options);
    for (int64_t i = 1; i < kNodes; ++i) {
      ASSERT_TRUE(engine.AddFact(Edge(i, i + 1)).ok());
      if (i + 2 <= kNodes) {
        ASSERT_TRUE(engine.AddFact(Edge(i, i + 2)).ok());
      }
    }

    ast::Program program = P(text);
    ast::Atom query = A("t(1, Y)");
    auto plan = engine.Compile(program, query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto handle = engine.Materialize(program, query);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    const MaterializedView* view = engine.view(*handle);
    ASSERT_NE(view, nullptr);
    EXPECT_TRUE(view->edge_guided());

    std::minstd_rand rng(7 + static_cast<unsigned>(shards * 8 + threads));
    uint64_t pruned_total = 0;
    for (int op = 0; op < 6; ++op) {
      // Deletes start at node 3 so part of the reachable set always stays
      // upstream of (and therefore outside) the cone.
      int64_t a = 3 + static_cast<int64_t>(rng() % (kNodes - 3));
      int64_t b = a + 1 + static_cast<int64_t>(rng() % 2);
      if (b > kNodes) b = a + 1;
      auto before = engine.AnswerFromView(*handle);
      ASSERT_TRUE(before.ok());
      const uint64_t reachable_before = before->rows.size();
      ASSERT_TRUE(engine.RemoveFact(Edge(a, b)).ok());
      std::string context = "shards=" + std::to_string(shards) +
                            " threads=" + std::to_string(threads) +
                            " op=" + std::to_string(op) + " -e(" +
                            std::to_string(a) + ", " + std::to_string(b) + ")";
      ExpectMatchesOracle(&engine, (*plan)->program, view, context);

      auto stats = engine.ViewStatsFor(*handle);
      ASSERT_TRUE(stats.ok());
      if (stats->last_update.cone_input > 0) {
        EXPECT_LT(stats->last_update.cone_input, reachable_before) << context;
      }
      pruned_total += stats->last_update.cone_pruned;
    }
    // The skip edges guarantee alternate derivations, so across the sweep at
    // least one cone fact must have been pruned as still-supported.
    EXPECT_GT(pruned_total, 0u)
        << "shards=" << shards << " threads=" << threads;
  }
}

// An unsupported cycle must die even though every fact in it still has a
// derivation edge (from its cyclic peer): the slice's least-fixpoint only
// keeps facts that re-ground in surviving base facts.
TEST(IncSliceTest, UnsupportedCycleDies) {
  api::Engine engine;
  // 1 -> 2 and the cycle 2 -> 3 -> 4 -> 2; cutting e(1, 2) leaves the cycle
  // with mutual but ungrounded support.
  ASSERT_TRUE(
      engine.LoadFacts("e(1, 2). e(2, 3). e(3, 4). e(4, 2).").ok());
  const char* text =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  ast::Program program = P(text);
  ast::Atom query = A("t(1, Y)");
  auto plan = engine.Compile(program, query);
  ASSERT_TRUE(plan.ok());
  auto handle = engine.Materialize(program, query);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const MaterializedView* view = engine.view(*handle);

  ASSERT_TRUE(engine.RemoveFact(Edge(1, 2)).ok());
  ExpectMatchesOracle(&engine, (*plan)->program, view, "-e(1, 2)");
  auto answers = engine.AnswerFromView(*handle);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 0u);  // nothing reachable from 1 anymore

  auto stats = engine.ViewStatsFor(*handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->last_update.overdeleted, 3u);  // the whole cycle died
  EXPECT_EQ(stats->last_update.cone_pruned, 0u);
}

// When the derivation-edge budget overflows, the store is dropped for good
// and deletion falls back to classic DRed — results must stay exact.
TEST(IncSliceTest, BudgetOverflowFallsBackToDRed) {
  api::EngineOptions options;
  options.inc_max_derivation_edges = 1;  // overflows during the initial build
  api::Engine engine(options);
  ASSERT_TRUE(engine.LoadFacts("e(1, 2). e(2, 4). e(1, 3). e(3, 4).").ok());
  const char* text =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  ast::Program program = P(text);
  ast::Atom query = A("t(1, Y)");
  auto plan = engine.Compile(program, query);
  ASSERT_TRUE(plan.ok());
  auto handle = engine.Materialize(program, query);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const MaterializedView* view = engine.view(*handle);
  EXPECT_FALSE(view->edge_guided());

  ASSERT_TRUE(engine.RemoveFact(Edge(1, 2)).ok());
  ExpectMatchesOracle(&engine, (*plan)->program, view, "-e(1, 2)");

  auto stats = engine.ViewStatsFor(*handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->edge_store_active);
  EXPECT_TRUE(stats->edge_store_dropped);
  EXPECT_GT(stats->rederived, 0u);  // DRed over-deleted t(1, 4), then rescued
  EXPECT_EQ(stats->cone_input, 0u);
}

// ---- Per-update stats snapshot ----------------------------------------------

TEST(IncStatsTest, LastUpdateSnapshotsOnlyTheMostRecentDelta) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadFacts("e(1, 2).").ok());
  const char* text =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  auto handle = engine.Materialize(text);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  ASSERT_TRUE(engine.AddFact(Edge(2, 3)).ok());
  auto stats = engine.ViewStatsFor(*handle);
  ASSERT_TRUE(stats.ok());
  const uint64_t first_inserted = stats->last_update.idb_inserted;
  EXPECT_GT(first_inserted, 0u);
  EXPECT_EQ(stats->idb_inserted, first_inserted);

  ASSERT_TRUE(engine.AddFact(Edge(3, 4)).ok());
  stats = engine.ViewStatsFor(*handle);
  ASSERT_TRUE(stats.ok());
  // Cumulative counters keep growing; the snapshot covers only the last call.
  EXPECT_GT(stats->idb_inserted, first_inserted);
  EXPECT_EQ(stats->last_update.idb_inserted,
            stats->idb_inserted - first_inserted);

  ASSERT_TRUE(engine.RemoveFact(Edge(1, 2)).ok());
  stats = engine.ViewStatsFor(*handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->last_update.idb_inserted, 0u);
  EXPECT_GT(stats->last_update.idb_deleted, 0u);
  EXPECT_GT(stats->idb_inserted, 0u);  // cumulative history is untouched
}

// ---- Engine integration -----------------------------------------------------

TEST(EngineViewTest, QueryAnswersFromViewWithoutExecuting) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadFacts("e(1, 2). e(2, 3).").ok());
  const char* text =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  ASSERT_TRUE(engine.Materialize(text).ok());
  EXPECT_EQ(engine.num_views(), 1u);

  uint64_t executions_before = engine.stats().executions;
  api::QueryStats qstats;
  auto answers = engine.Query(text, core::Strategy::kAuto, &qstats);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(qstats.view_hit);
  EXPECT_EQ(answers->rows.size(), 2u);
  EXPECT_EQ(engine.stats().executions, executions_before);
  EXPECT_EQ(engine.stats().view_hits, 1u);
}

TEST(EngineViewTest, MaterializeIsIdempotentAndDroppable) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadFacts("e(1, 2).").ok());
  const char* text = "t(X, Y) :- e(X, Y). ?- t(1, Y).";
  auto h1 = engine.Materialize(text);
  auto h2 = engine.Materialize(text);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1->key, h2->key);
  EXPECT_EQ(engine.num_views(), 1u);
  engine.DropView(*h1);
  EXPECT_EQ(engine.num_views(), 0u);
  EXPECT_EQ(engine.view(*h1), nullptr);
}

TEST(EngineViewTest, ViewUpdatesCountAndAnswerFromView) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadFacts("e(1, 2).").ok());
  const char* text =
      "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";
  auto handle = engine.Materialize(text);
  ASSERT_TRUE(handle.ok());

  ASSERT_TRUE(engine.AddFact(Edge(2, 3)).ok());
  ASSERT_TRUE(engine.RemoveFact(Edge(1, 2)).ok());
  EXPECT_EQ(engine.stats().view_updates, 2u);

  auto answers = engine.AnswerFromView(*handle);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 0u);  // 1 is disconnected now
}

}  // namespace
}  // namespace factlog::inc
