#include "transform/counting.h"

#include <gtest/gtest.h>

#include "core/canonical.h"
#include "core/optimizations.h"
#include "core/pipeline.h"
#include "eval/seminaive.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"

namespace factlog::transform {
namespace {

using test::A;
using test::P;

Result<CountingProgram> Counting(const ast::Program& p, const ast::Atom& q) {
  auto adorned = analysis::Adorn(p, q);
  if (!adorned.ok()) return adorned.status();
  auto c = core::ClassifyProgram(*adorned);
  if (!c.ok()) return c.status();
  return CountingTransform(*adorned, *c);
}

const char kRightTc[] = R"(
  t(X, Y) :- e(X, W), t(W, Y).
  t(X, Y) :- e(X, Y).
)";

const char kLeftTc[] = R"(
  t(X, Y) :- t(X, W), e(W, Y).
  t(X, Y) :- e(X, Y).
)";

TEST(CountingTest, RightLinearComputesCorrectAnswersOnChain) {
  ast::Program p = P(kRightTc);
  auto counting = Counting(p, A("t(1, Y)"));
  ASSERT_TRUE(counting.ok()) << counting.status().ToString();
  eval::Database db;
  workload::MakeChain(10, "e", &db);
  auto answers = eval::EvaluateQuery(counting->program, counting->query, &db);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->rows.size(), 9u);
  // Cross-check against the original program.
  eval::Database db2;
  workload::MakeChain(10, "e", &db2);
  auto orig = eval::EvaluateQuery(p, A("t(1, Y)"), &db2);
  ASSERT_TRUE(orig.ok());
  EXPECT_EQ(answers->rows.size(), orig->rows.size());
}

TEST(CountingTest, GoalPredicateCarriesIndexFields) {
  ast::Program p = P(kRightTc);
  auto counting = Counting(p, A("t(1, Y)"));
  ASSERT_TRUE(counting.ok());
  eval::Database db;
  workload::MakeChain(5, "e", &db);
  auto result = eval::Evaluate(counting->program, &db);
  ASSERT_TRUE(result.ok());
  // cnt_t_bf holds one goal per chain node, each with its depth index.
  EXPECT_EQ(result->SizeOf(counting->cnt_name), 5u);
  // Answers are replayed at every smaller index: Theta(n^2) facts — the
  // index-maintenance overhead the paper contrasts with factoring.
  EXPECT_GT(result->SizeOf(counting->ans_name), 9u);
}

TEST(CountingTest, MultipleRulesEncodeRulePathInJ) {
  ast::Program p = P(R"(
    t(X, Y) :- e1(X, W), t(W, Y).
    t(X, Y) :- e2(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto counting = Counting(p, A("t(1, Y)"));
  ASSERT_TRUE(counting.ok()) << counting.status().ToString();
  eval::Database db;
  test::AddFacts(&db, "e1(1, 2). e2(2, 3). e(3, 9). e(2, 8). e(1, 7).");
  auto answers = eval::EvaluateQuery(counting->program, counting->query, &db);
  ASSERT_TRUE(answers.ok());
  // 7 directly; 8 via e1; 9 via e1;e2.
  EXPECT_EQ(answers->rows.size(), 3u);
}

TEST(CountingTest, LeftLinearDiverges) {
  // §6.4: cnt_t(X, I+1) :- cnt_t(X, I) never terminates bottom-up.
  ast::Program p = P(kLeftTc);
  auto counting = Counting(p, A("t(1, Y)"));
  ASSERT_TRUE(counting.ok());
  eval::Database db;
  workload::MakeChain(4, "e", &db);
  eval::EvalOptions opts;
  opts.max_facts = 10'000;
  auto answers = eval::EvaluateQuery(counting->program, counting->query, &db,
                                     opts);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(CountingTest, CyclicDataDivergesEvenRightLinear) {
  // Counting encodes goal depth; on a cycle the depth is unbounded. (Magic
  // and factoring terminate here — an advantage the paper leaves implicit.)
  ast::Program p = P(kRightTc);
  auto counting = Counting(p, A("t(1, Y)"));
  ASSERT_TRUE(counting.ok());
  eval::Database db;
  workload::MakeCycle(4, "e", &db);
  eval::EvalOptions opts;
  opts.max_facts = 10'000;
  auto answers = eval::EvaluateQuery(counting->program, counting->query, &db,
                                     opts);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(CountingTest, CombinedRulesRejected) {
  ast::Program p = P(R"(
    t(X, Y) :- t(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
  )");
  auto counting = Counting(p, A("t(1, Y)"));
  ASSERT_FALSE(counting.ok());
  EXPECT_EQ(counting.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CountingTest, Theorem64IndexDeletionYieldsFactoredProgram) {
  // The paper's §6.4 worked example: two right-linear rules. After deleting
  // index fields and trivially redundant rules, the Counting program is the
  // factored Magic program up to predicate renaming.
  ast::Program p = P(R"(
    t(X, Y) :- first1(X, U), t(U, Y), right1(Y).
    t(X, Y) :- first2(X, U), t(U, Y), right2(Y).
    t(X, Y) :- exit0(X, Y), right1(Y), right2(Y).
    ?- t(5, Y).
  )");
  auto counting = Counting(p, *p.query());
  ASSERT_TRUE(counting.ok()) << counting.status().ToString();

  ast::Program stripped = DeleteIndexFields(*counting);
  core::DeleteHeadInBodyRules(&stripped);
  core::DeleteDuplicateRules(&stripped);
  core::DeleteUnreachableRules(&stripped, counting->query_name);

  auto pipe = core::OptimizeQuery(p, *p.query());
  ASSERT_TRUE(pipe.ok());
  ASSERT_TRUE(pipe->factoring_applied);
  ASSERT_TRUE(pipe->optimized.has_value());

  std::map<std::string, std::string> renames = {
      {counting->cnt_name, "m_t_bf"}, {counting->ans_name, "ft"}};
  EXPECT_TRUE(core::StructurallyEqual(stripped, *pipe->optimized, renames))
      << "stripped counting:\n" << stripped.ToString()
      << "pipeline optimized:\n" << pipe->optimized->ToString();
}

TEST(CountingTest, Theorem64OnPlainRightLinearTc) {
  ast::Program p = P(kRightTc);
  p.set_query(A("t(1, Y)"));
  auto counting = Counting(p, *p.query());
  ASSERT_TRUE(counting.ok());
  ast::Program stripped = DeleteIndexFields(*counting);
  core::DeleteHeadInBodyRules(&stripped);
  core::DeleteDuplicateRules(&stripped);
  core::DeleteUnreachableRules(&stripped, counting->query_name);
  auto pipe = core::OptimizeQuery(p, *p.query());
  ASSERT_TRUE(pipe.ok());
  std::map<std::string, std::string> renames = {
      {counting->cnt_name, "m_t_bf"}, {counting->ans_name, "ft"}};
  EXPECT_TRUE(core::StructurallyEqual(stripped, *pipe->optimized, renames));
}

TEST(CountingTest, StrippedProgramStillAnswersCorrectly) {
  ast::Program p = P(kRightTc);
  auto counting = Counting(p, A("t(1, Y)"));
  ASSERT_TRUE(counting.ok());
  ast::Program stripped = DeleteIndexFields(*counting);
  eval::Database db;
  workload::MakeChain(8, "e", &db);
  auto answers =
      eval::EvaluateQuery(stripped, *stripped.query(), &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 7u);
}

}  // namespace
}  // namespace factlog::transform
