// Tests for the api::Engine facade: the strategy-equivalence sweep over the
// workload generators, the plan cache, and the execution modes.

#include "api/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ast/parser.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"
#include "workload/list_gen.h"

namespace factlog::api {
namespace {

using test::A;
using test::P;

const char kRightTc[] =
    "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).";

// ---- Strategy-equivalence sweep --------------------------------------------
//
// Every strategy that compiles a (program, workload) combination must return
// exactly the answers of the original program. kMagic, kSupplementaryMagic,
// kFactoring, and kAuto must always apply; kCounting and kLinearRewrite may
// refuse (kFailedPrecondition) or, for left-linear Counting, diverge into
// the evaluation budget (kResourceExhausted) — the paper's §6.4 observation.

class EngineSweepTest : public ::testing::TestWithParam<int> {};

struct ProgramSpec {
  const char* name;
  const char* program;
  const char* query;
  void (*load)(eval::Database* db);
};

void LoadChain(eval::Database* db) { workload::MakeChain(24, "e", db); }
void LoadCycle(eval::Database* db) { workload::MakeCycle(16, "e", db); }
void LoadGrid(eval::Database* db) { workload::MakeGrid(5, 5, "e", db); }
void LoadSg(eval::Database* db) { workload::MakeSameGeneration(2, 4, db); }
void LoadMembers(eval::Database* db) {
  workload::MakeMembershipPredicate(12, 2, 0, "p", db);
}

const ProgramSpec kSweep[] = {
    {"right_tc_chain",
     "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).",
     "t(1, Y)", LoadChain},
    {"right_tc_cycle",
     "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).",
     "t(1, Y)", LoadCycle},
    {"left_tc_chain",
     "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y). ?- t(1, Y).",
     "t(1, Y)", LoadChain},
    {"nonlinear_tc_grid",
     "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), t(W, Y). ?- t(1, Y).",
     "t(1, Y)", LoadGrid},
    {"three_form_tc_chain",
     "t(X, Y) :- t(X, W), t(W, Y). t(X, Y) :- e(X, W), t(W, Y). "
     "t(X, Y) :- t(X, W), e(W, Y). t(X, Y) :- e(X, Y). ?- t(1, Y).",
     "t(1, Y)", LoadChain},
    {"same_generation_tree",
     "sg(X, Y) :- flat(X, Y). sg(X, Y) :- up(X, U), sg(U, V), down(V, Y). "
     "?- sg(2, Y).",
     "sg(2, Y)", LoadSg},
};

TEST_P(EngineSweepTest, AllApplicableStrategiesAgree) {
  const ProgramSpec& spec = kSweep[GetParam()];
  Engine engine;
  spec.load(&engine.db());
  ast::Program program = P(spec.program);
  ast::Atom query = A(spec.query);

  // Reference: the original program evaluated bottom-up on the same store.
  auto reference = eval::EvaluateQuery(program, query, &engine.db());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string expected = reference->ToString(engine.db().store());

  std::vector<Strategy> required = {Strategy::kAuto, Strategy::kMagic,
                                    Strategy::kSupplementaryMagic,
                                    Strategy::kFactoring};
  for (Strategy s : required) {
    QueryStats stats;
    auto answers = engine.Query(program, query, s, &stats);
    ASSERT_TRUE(answers.ok())
        << spec.name << " / " << core::StrategyToString(s) << ": "
        << answers.status().ToString();
    EXPECT_EQ(answers->ToString(engine.db().store()), expected)
        << spec.name << " / " << core::StrategyToString(s);
  }

  // Counting and the direct linear rewritings are partial strategies: when
  // they compile and evaluate within budget, they too must agree. A small
  // fact budget keeps the §6.4 divergence of left-linear/cyclic Counting
  // from burning time before it is reported.
  EngineOptions partial_options;
  partial_options.eval.max_facts = 200'000;
  Engine partial(partial_options);
  spec.load(&partial.db());
  for (Strategy s : {Strategy::kCounting, Strategy::kLinearRewrite}) {
    auto plan = partial.Compile(program, query, s);
    if (!plan.ok()) {
      EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition)
          << spec.name << " / " << core::StrategyToString(s);
      continue;
    }
    auto answers = partial.Execute(**plan);
    if (!answers.ok()) {
      // Left-linear Counting does not terminate (§6.4); the budget stops it.
      EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted)
          << spec.name << " / " << core::StrategyToString(s) << ": "
          << answers.status().ToString();
      continue;
    }
    EXPECT_EQ(answers->ToString(partial.db().store()), expected)
        << spec.name << " / " << core::StrategyToString(s);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, EngineSweepTest, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(kSweep[info.param].name);
                         });

TEST(EngineSweepTest, ListMembershipStrategiesAgree) {
  // pmem (Example 1.2) carries function symbols; the original program is not
  // range-restricted, so the magic-transformed strategies are compared to
  // each other and to the known answer count.
  ast::Program program = workload::MakePmemProgram(12);
  ast::Atom query = *program.query();
  Engine engine;
  LoadMembers(&engine.db());

  std::map<std::string, std::string> results;
  for (Strategy s : {Strategy::kAuto, Strategy::kMagic,
                     Strategy::kSupplementaryMagic, Strategy::kFactoring}) {
    auto answers = engine.Query(program, query, s);
    ASSERT_TRUE(answers.ok()) << core::StrategyToString(s) << ": "
                              << answers.status().ToString();
    EXPECT_EQ(answers->rows.size(), 6u) << core::StrategyToString(s);
    results[core::StrategyToString(s)] =
        answers->ToString(engine.db().store());
  }
  for (const auto& [name, rendered] : results) {
    EXPECT_EQ(rendered, results.begin()->second) << name;
  }
}

// ---- Auto strategy selection -----------------------------------------------

TEST(EngineAutoTest, FactorsWhenTheoremConditionsHold) {
  Engine engine;
  ast::Program p = P(kRightTc);
  auto plan = engine.Compile(p, *p.query(), Strategy::kAuto);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->strategy, Strategy::kFactoring);
  EXPECT_TRUE((*plan)->factoring_applied);
}

TEST(EngineAutoTest, FallsBackToSupplementaryMagic) {
  Engine engine;
  ast::Program p = P(
      "sg(X, Y) :- flat(X, Y). "
      "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y). ?- sg(1, Y).");
  auto plan = engine.Compile(p, *p.query(), Strategy::kAuto);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->strategy, Strategy::kSupplementaryMagic);
  EXPECT_FALSE((*plan)->factoring_applied);
}

// ---- Plan cache ------------------------------------------------------------

TEST(EnginePlanCacheTest, SecondCompileIsAHit) {
  Engine engine;
  for (int i = 1; i < 8; ++i) engine.AddPair("e", i, i + 1);
  QueryStats first, second;
  auto a1 = engine.Query(kRightTc, Strategy::kAuto, &first);
  ASSERT_TRUE(a1.ok());
  EXPECT_FALSE(first.cache_hit);
  auto a2 = engine.Query(kRightTc, Strategy::kAuto, &second);
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.compile_us, 0);
  EXPECT_EQ(engine.stats().compiles, 1u);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(engine.plan_cache_size(), 1u);
  EXPECT_EQ(a1->rows, a2->rows);
}

TEST(EnginePlanCacheTest, CacheHitRenamesAnswerVarsToCaller) {
  // Regression: a cache hit used to return columns named by the *cached*
  // plan's query variables, not the caller's.
  Engine engine;
  for (int i = 1; i < 5; ++i) engine.AddPair("e", i, i + 1);
  ast::Program p = P("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).");
  QueryStats first, second;
  auto a1 = engine.Query(p, A("t(X, Y)"), Strategy::kAuto, &first);
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  EXPECT_EQ(a1->vars, (std::vector<std::string>{"X", "Y"}));
  auto a2 = engine.Query(p, A("t(A, B)"), Strategy::kAuto, &second);
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(second.cache_hit);  // canonically the same plan
  EXPECT_EQ(a2->vars, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(a1->rows, a2->rows);
}

TEST(EnginePlanCacheTest, BoundCacheHitRenamesAnswerVars) {
  Engine engine;
  for (int i = 1; i < 5; ++i) engine.AddPair("e", i, i + 1);
  ast::Program p = P(kRightTc);
  QueryStats stats;
  ASSERT_TRUE(engine.Query(p, A("t(1, Y)")).ok());
  auto renamed = engine.Query(p, A("t(1, Out)"), Strategy::kAuto, &stats);
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(stats.cache_hit);
  EXPECT_EQ(renamed->vars, (std::vector<std::string>{"Out"}));
}

TEST(EnginePlanCacheTest, ConcurrentMissesCompileOnce) {
  // Single-flight: concurrent misses on one key must not double-compile or
  // double-count EngineStats::compiles.
  Engine engine;
  for (int i = 1; i < 8; ++i) engine.AddPair("e", i, i + 1);
  ast::Program p = P(kRightTc);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      auto plan = engine.Compile(p, A("t(1, Y)"), Strategy::kAuto);
      if (!plan.ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.stats().compiles, 1u);
  EXPECT_EQ(engine.stats().cache_hits, 3u);
  EXPECT_EQ(engine.plan_cache_size(), 1u);
}

TEST(EngineTest, MutationDuringQueryFailsPrecondition) {
  // The documented contract — mutations must not race evaluations — is now
  // enforced: AddFact during a running query returns kFailedPrecondition.
  EngineOptions options;
  options.eval.strategy = eval::Strategy::kNaive;  // deliberately slow
  Engine engine(options);
  // A 500-cycle under naive evaluation re-derives every t(1, *) fact on each
  // of ~500 iterations — plenty of wall-clock for the race window.
  for (int i = 1; i <= 500; ++i) engine.AddPair("e", i, i % 500 + 1);
  std::atomic<bool> done{false};
  std::thread worker([&] {
    auto answers = engine.Query(kRightTc);
    EXPECT_TRUE(answers.ok());
    done.store(true);
  });
  // Wait until the evaluation is visibly in flight, then mutate.
  while (engine.running_queries() == 0 && !done.load()) {
    std::this_thread::yield();
  }
  Status st = engine.AddFact(
      ast::Atom("e", {ast::Term::Int(500), ast::Term::Int(501)}));
  if (!st.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  } else {
    // The query finished in the window between the checks; legal.
    EXPECT_TRUE(done.load());
  }
  worker.join();
  // After the query drains, mutations succeed again.
  EXPECT_TRUE(engine
                  .AddFact(ast::Atom("e", {ast::Term::Int(600),
                                           ast::Term::Int(601)}))
                  .ok());
  EXPECT_EQ(engine.running_queries(), 0);
}

TEST(EnginePlanCacheTest, KeyIsCanonical) {
  // Renamed variables and reordered rules are the same plan.
  Engine engine;
  for (int i = 1; i < 8; ++i) engine.AddPair("e", i, i + 1);
  QueryStats first, second;
  ASSERT_TRUE(engine.Query(kRightTc, Strategy::kAuto, &first).ok());
  ASSERT_TRUE(engine
                  .Query("t(P, Q) :- e(P, M), t(M, Q). t(P, Q) :- e(P, Q). "
                         "?- t(1, Out).",
                         Strategy::kAuto, &second)
                  .ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(engine.stats().compiles, 1u);
}

TEST(EnginePlanCacheTest, DifferentConstantsAreDifferentPlans) {
  // The compiled plan bakes the query constant into the magic seed, so a
  // differently-bound query must recompile — and must answer correctly.
  Engine engine;
  for (int i = 1; i < 8; ++i) engine.AddPair("e", i, i + 1);
  ast::Program p = P(kRightTc);
  auto from1 = engine.Query(p, A("t(1, Y)"), Strategy::kAuto);
  auto from5 = engine.Query(p, A("t(5, Y)"), Strategy::kAuto);
  ASSERT_TRUE(from1.ok());
  ASSERT_TRUE(from5.ok());
  EXPECT_EQ(engine.stats().compiles, 2u);
  EXPECT_EQ(from1->rows.size(), 7u);
  EXPECT_EQ(from5->rows.size(), 3u);
}

TEST(EnginePlanCacheTest, StrategiesAreCachedSeparately) {
  Engine engine;
  for (int i = 1; i < 8; ++i) engine.AddPair("e", i, i + 1);
  ast::Program p = P(kRightTc);
  ASSERT_TRUE(engine.Query(p, *p.query(), Strategy::kMagic).ok());
  ASSERT_TRUE(engine.Query(p, *p.query(), Strategy::kFactoring).ok());
  EXPECT_EQ(engine.stats().compiles, 2u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.plan_cache_size(), 2u);
}

TEST(EnginePlanCacheTest, LruEviction) {
  EngineOptions options;
  options.plan_cache_capacity = 2;
  Engine engine(options);
  for (int i = 1; i < 8; ++i) engine.AddPair("e", i, i + 1);
  ast::Program p = P(kRightTc);
  ASSERT_TRUE(engine.Query(p, A("t(1, Y)")).ok());
  ASSERT_TRUE(engine.Query(p, A("t(2, Y)")).ok());
  // Touch t(1, Y): it becomes the most recently used entry.
  ASSERT_TRUE(engine.Query(p, A("t(1, Y)")).ok());
  // A third plan evicts t(2, Y), not t(1, Y).
  ASSERT_TRUE(engine.Query(p, A("t(3, Y)")).ok());
  EXPECT_EQ(engine.plan_cache_size(), 2u);
  QueryStats stats;
  ASSERT_TRUE(engine.Query(p, A("t(1, Y)"), Strategy::kAuto, &stats).ok());
  EXPECT_TRUE(stats.cache_hit);
  QueryStats stats2;
  ASSERT_TRUE(engine.Query(p, A("t(2, Y)"), Strategy::kAuto, &stats2).ok());
  EXPECT_FALSE(stats2.cache_hit);  // was evicted
}

TEST(EnginePlanCacheTest, CanBeDisabled) {
  EngineOptions options;
  options.enable_plan_cache = false;
  Engine engine(options);
  for (int i = 1; i < 8; ++i) engine.AddPair("e", i, i + 1);
  ASSERT_TRUE(engine.Query(kRightTc).ok());
  ASSERT_TRUE(engine.Query(kRightTc).ok());
  EXPECT_EQ(engine.stats().compiles, 2u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.plan_cache_size(), 0u);
}

TEST(EnginePlanCacheTest, ClearPlanCache) {
  Engine engine;
  for (int i = 1; i < 8; ++i) engine.AddPair("e", i, i + 1);
  ASSERT_TRUE(engine.Query(kRightTc).ok());
  EXPECT_EQ(engine.plan_cache_size(), 1u);
  engine.ClearPlanCache();
  EXPECT_EQ(engine.plan_cache_size(), 0u);
  QueryStats stats;
  ASSERT_TRUE(engine.Query(kRightTc, Strategy::kAuto, &stats).ok());
  EXPECT_FALSE(stats.cache_hit);
}

// ---- EDB loading and execution modes ---------------------------------------

TEST(EngineTest, LoadFactsParsesGroundFacts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadFacts("e(1, 2). e(2, 3). e(3, 4).").ok());
  auto answers = engine.Query(kRightTc);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->rows.size(), 3u);
}

TEST(EngineTest, LoadFactsRejectsRules) {
  Engine engine;
  Status st = engine.LoadFacts("e(1, 2). t(X, Y) :- e(X, Y).");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, QueryTextWithoutQueryFails) {
  Engine engine;
  auto answers = engine.Query("t(X, Y) :- e(X, Y).");
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, TopDownExecutionMode) {
  // SLD on a nonrecursive magic plan: the top-down path is wired through
  // the same facade. (Recursive magic plans are left-recursive and diverge
  // under plain SLD, as in Prolog.)
  EngineOptions options;
  options.execution = ExecutionMode::kTopDown;
  Engine topdown(options);
  Engine bottomup;
  const char* text =
      "hop2(X, Y) :- e(X, W), e(W, Y). ?- hop2(1, Y).";
  for (Engine* e : {&topdown, &bottomup}) {
    ASSERT_TRUE(e->LoadFacts("e(1, 2). e(2, 3). e(2, 4).").ok());
  }
  QueryStats td_stats;
  auto td = topdown.Query(text, Strategy::kMagic, &td_stats);
  auto bu = bottomup.Query(text, Strategy::kMagic);
  ASSERT_TRUE(td.ok()) << td.status().ToString();
  ASSERT_TRUE(bu.ok());
  EXPECT_EQ(td->rows.size(), 2u);
  EXPECT_EQ(td->ToString(topdown.db().store()),
            bu->ToString(bottomup.db().store()));
  EXPECT_GT(td_stats.sld.inferences, 0u);
}

TEST(EngineTest, MutatingEdbBetweenQueriesUsesCachedPlan) {
  Engine engine;
  ASSERT_TRUE(engine.LoadFacts("e(1, 2).").ok());
  auto before = engine.Query(kRightTc);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.size(), 1u);
  engine.AddPair("e", 2, 3);
  QueryStats stats;
  auto after = engine.Query(kRightTc, Strategy::kAuto, &stats);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(stats.cache_hit);  // plans depend on the program, not the EDB
  EXPECT_EQ(after->rows.size(), 2u);
}

}  // namespace
}  // namespace factlog::api
