#include "ast/term.h"

#include <gtest/gtest.h>

#include "ast/atom.h"
#include "ast/rule.h"

namespace factlog::ast {
namespace {

TEST(TermTest, VariableBasics) {
  Term v = Term::Var("X");
  EXPECT_EQ(v.kind(), Term::Kind::kVariable);
  EXPECT_TRUE(v.IsVariable());
  EXPECT_FALSE(v.IsConstant());
  EXPECT_FALSE(v.IsGround());
  EXPECT_EQ(v.var_name(), "X");
  EXPECT_EQ(v.ToString(), "X");
}

TEST(TermTest, IntBasics) {
  Term i = Term::Int(-42);
  EXPECT_EQ(i.kind(), Term::Kind::kInt);
  EXPECT_TRUE(i.IsConstant());
  EXPECT_TRUE(i.IsGround());
  EXPECT_EQ(i.int_value(), -42);
  EXPECT_EQ(i.ToString(), "-42");
}

TEST(TermTest, SymbolBasics) {
  Term s = Term::Sym("alice");
  EXPECT_TRUE(s.IsConstant());
  EXPECT_EQ(s.symbol(), "alice");
  EXPECT_EQ(s.ToString(), "alice");
}

TEST(TermTest, CompoundBasics) {
  Term c = Term::App("f", {Term::Var("X"), Term::Int(3)});
  EXPECT_TRUE(c.IsCompound());
  EXPECT_EQ(c.symbol(), "f");
  EXPECT_EQ(c.args().size(), 2u);
  EXPECT_FALSE(c.IsGround());
  EXPECT_EQ(c.ToString(), "f(X, 3)");
  Term ground = Term::App("f", {Term::Int(1), Term::Int(2)});
  EXPECT_TRUE(ground.IsGround());
}

TEST(TermTest, ListSugarPrinting) {
  EXPECT_EQ(Term::Nil().ToString(), "[]");
  Term l = Term::List({Term::Int(1), Term::Int(2), Term::Int(3)});
  EXPECT_EQ(l.ToString(), "[1, 2, 3]");
  Term open = Term::Cons(Term::Var("H"), Term::Var("T"));
  EXPECT_EQ(open.ToString(), "[H | T]");
  Term partial = Term::Cons(Term::Int(1), Term::Cons(Term::Int(2), Term::Var("T")));
  EXPECT_EQ(partial.ToString(), "[1, 2 | T]");
}

TEST(TermTest, ListStructure) {
  Term l = Term::List({Term::Int(1)});
  ASSERT_TRUE(l.IsCompound());
  EXPECT_EQ(l.symbol(), "cons");
  EXPECT_EQ(l.args()[0], Term::Int(1));
  EXPECT_EQ(l.args()[1], Term::Nil());
}

TEST(TermTest, EqualityAndOrdering) {
  EXPECT_EQ(Term::Var("X"), Term::Var("X"));
  EXPECT_NE(Term::Var("X"), Term::Var("Y"));
  EXPECT_NE(Term::Var("X"), Term::Sym("x"));
  EXPECT_EQ(Term::App("f", {Term::Int(1)}), Term::App("f", {Term::Int(1)}));
  EXPECT_NE(Term::App("f", {Term::Int(1)}), Term::App("f", {Term::Int(2)}));
  EXPECT_NE(Term::App("f", {Term::Int(1)}), Term::App("g", {Term::Int(1)}));
  // Ordering is total and consistent with equality.
  Term a = Term::Int(1), b = Term::Int(2);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(TermTest, HashConsistency) {
  Term a = Term::App("f", {Term::Var("X"), Term::List({Term::Int(1)})});
  Term b = Term::App("f", {Term::Var("X"), Term::List({Term::Int(1)})});
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TermTest, ContainsVar) {
  Term t = Term::App("f", {Term::Var("X"), Term::App("g", {Term::Var("Y")})});
  EXPECT_TRUE(t.ContainsVar("X"));
  EXPECT_TRUE(t.ContainsVar("Y"));
  EXPECT_FALSE(t.ContainsVar("Z"));
}

TEST(TermTest, CollectVarsInOrder) {
  Term t = Term::App("f", {Term::Var("B"), Term::Var("A"), Term::Var("B")});
  std::vector<std::string> vars;
  t.CollectVars(&vars);
  EXPECT_EQ(vars, (std::vector<std::string>{"B", "A", "B"}));
}

TEST(AtomTest, BasicsAndPrinting) {
  Atom a("edge", {Term::Int(1), Term::Var("X")});
  EXPECT_EQ(a.predicate(), "edge");
  EXPECT_EQ(a.arity(), 2u);
  EXPECT_FALSE(a.IsGround());
  EXPECT_EQ(a.ToString(), "edge(1, X)");
  Atom zero("flag", {});
  EXPECT_EQ(zero.ToString(), "flag");
  EXPECT_TRUE(zero.IsGround());
}

TEST(AtomTest, DistinctVars) {
  Atom a("p", {Term::Var("X"), Term::Var("Y"), Term::Var("X")});
  EXPECT_EQ(a.DistinctVars(), (std::vector<std::string>{"X", "Y"}));
}

TEST(RuleTest, PrintingAndFacts) {
  Rule fact(Atom("e", {Term::Int(1), Term::Int(2)}), {});
  EXPECT_TRUE(fact.IsFact());
  EXPECT_EQ(fact.ToString(), "e(1, 2).");

  Rule r(Atom("t", {Term::Var("X"), Term::Var("Y")}),
         {Atom("t", {Term::Var("X"), Term::Var("W")}),
          Atom("e", {Term::Var("W"), Term::Var("Y")})});
  EXPECT_FALSE(r.IsFact());
  EXPECT_EQ(r.ToString(), "t(X, Y) :- t(X, W), e(W, Y).");
}

TEST(RuleTest, RangeRestriction) {
  Rule good(Atom("t", {Term::Var("X")}), {Atom("e", {Term::Var("X")})});
  EXPECT_TRUE(good.IsRangeRestricted());
  Rule bad(Atom("t", {Term::Var("X"), Term::Var("Y")}),
           {Atom("e", {Term::Var("X")})});
  EXPECT_FALSE(bad.IsRangeRestricted());
  Rule ground_fact(Atom("t", {Term::Int(5)}), {});
  EXPECT_TRUE(ground_fact.IsRangeRestricted());
}

TEST(RuleTest, DistinctVarsHeadFirst) {
  Rule r(Atom("t", {Term::Var("X"), Term::Var("Y")}),
         {Atom("e", {Term::Var("W"), Term::Var("X")})});
  EXPECT_EQ(r.DistinctVars(), (std::vector<std::string>{"X", "Y", "W"}));
}

}  // namespace
}  // namespace factlog::ast
