// E9 (§6.2, Theorem 6.3): reducible separable recursions under full
// selections.
//
// Paper claim: Magic + factoring subsumes the special-purpose separable
// evaluation of [7] — the factored program computes per-group unary
// relations instead of the full k-ary recursive predicate.

#include "bench/bench_util.h"
#include "core/separable.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

// Two independently moving argument groups (Definition 6.4's equal-or-
// disjoint condition at its most useful): rule 1 advances the first
// argument, rule 2 the second.
const char kSeparable[] = R"(
  t(X, Y) :- e1(X, W), t(W, Y).
  t(X, Y) :- e2(Y, W), t(X, W).
  t(X, Y) :- e(X, Y).
  ?- t(1, Y).
)";

void MakeWorkload(int64_t n, eval::Database* db) {
  workload::MakeChain(n, "e1", db);
  workload::MakeChain(n, "e2", db);
  for (int64_t i = 1; i <= n; ++i) db->AddPair("e", i, i);
}

void BM_Separable(benchmark::State& state, bool factored) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kSeparable);
  // Cross-validation: the §6.2 tests accept this program.
  auto report = bench::OrDie(core::CheckSeparable(program, "t"), "separable");
  if (!report.separable || !report.reducible) {
    state.SkipWithError("expected a reducible separable recursion");
    return;
  }
  core::PipelineResult pipe = bench::Pipeline(program);
  if (!pipe.factoring_applied) {
    state.SkipWithError("expected Theorem 6.3 to factor this program");
    return;
  }
  const ast::Program* prog = factored ? &*pipe.optimized : &pipe.magic.program;
  const ast::Atom* query = factored ? &pipe.final_query() : &pipe.magic.query;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    MakeWorkload(n, &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_Separable, magic, false)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_Separable, factored, true)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

}  // namespace

BENCHMARK_MAIN();
