// Supplementary Magic Sets vs plain Magic Sets vs factoring.
//
// Supplementary magic is the stronger Magic baseline (shared body prefixes
// are materialized once). The comparison shows that factoring's advantage
// is orthogonal: supplementary magic reduces join work by a constant
// factor, factoring reduces the *arity* and hence the asymptotics.

#include "analysis/adornment.h"
#include "bench/bench_util.h"
#include "transform/supplementary_magic.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kNonlinearTc[] = R"(
  t(X, Y) :- e(X, Y).
  t(X, Y) :- t(X, W), t(W, Y).
  ?- t(1, Y).
)";

void BM_NonlinearTc(benchmark::State& state, int mode) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kNonlinearTc);
  core::PipelineResult pipe = bench::Pipeline(program);
  auto adorned =
      bench::OrDie(analysis::Adorn(program, *program.query()), "adorn");
  auto supp = bench::OrDie(transform::SupplementaryMagicSets(adorned), "supp");

  const ast::Program* prog = nullptr;
  const ast::Atom* query = nullptr;
  switch (mode) {
    case 0:
      prog = &pipe.magic.program;
      query = &pipe.magic.query;
      break;
    case 1:
      prog = &supp.program;
      query = &supp.query;
      break;
    case 2:
      prog = &*pipe.optimized;
      query = &pipe.final_query();
      break;
  }
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(n, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_NonlinearTc, magic, 0)
    ->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_NonlinearTc, supplementary_magic, 1)
    ->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_NonlinearTc, factored, 2)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Long shared prefixes: where supplementary magic shines against plain
// magic (both still quadratic; factoring does not apply to this
// same-generation-style shape).
const char kLongBody[] = R"(
  q(X, Y) :- e(X, Y).
  q(X, Y) :- e(X, A), e(A, B), q(B, C), e(C, D), q(D, Y).
  ?- q(1, Y).
)";

void BM_LongBody(benchmark::State& state, bool supplementary) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kLongBody);
  auto adorned =
      bench::OrDie(analysis::Adorn(program, *program.query()), "adorn");
  auto plain = bench::OrDie(transform::MagicSets(adorned), "magic");
  auto supp = bench::OrDie(transform::SupplementaryMagicSets(adorned), "supp");
  const ast::Program* prog = supplementary ? &supp.program : &plain.program;
  const ast::Atom* query = supplementary ? &supp.query : &plain.query;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(n, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
}

BENCHMARK_CAPTURE(BM_LongBody, magic, false)
    ->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LongBody, supplementary_magic, true)
    ->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
