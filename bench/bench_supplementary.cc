// Supplementary Magic Sets vs plain Magic Sets vs factoring.
//
// Supplementary magic is the stronger Magic baseline (shared body prefixes
// are materialized once). The comparison shows that factoring's advantage
// is orthogonal: supplementary magic reduces join work by a constant
// factor, factoring reduces the *arity* and hence the asymptotics. All
// plans come from the strategy API (core::CompileQuery).

#include "bench/bench_util.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kNonlinearTc[] = R"(
  t(X, Y) :- e(X, Y).
  t(X, Y) :- t(X, W), t(W, Y).
  ?- t(1, Y).
)";

void BM_NonlinearTc(benchmark::State& state, core::Strategy strategy) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kNonlinearTc);
  core::CompiledQuery plan = bench::Compile(program, strategy);
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(n, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(plan.program, plan.query, &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_NonlinearTc, magic, core::Strategy::kMagic)
    ->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_NonlinearTc, supplementary_magic,
                  core::Strategy::kSupplementaryMagic)
    ->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_NonlinearTc, factored, core::Strategy::kFactoring)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Long shared prefixes: where supplementary magic shines against plain
// magic (both still quadratic; factoring does not apply to this
// same-generation-style shape, which is why kAuto resolves to
// supplementary magic here).
const char kLongBody[] = R"(
  q(X, Y) :- e(X, Y).
  q(X, Y) :- e(X, A), e(A, B), q(B, C), e(C, D), q(D, Y).
  ?- q(1, Y).
)";

void BM_LongBody(benchmark::State& state, core::Strategy strategy) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kLongBody);
  core::CompiledQuery plan = bench::Compile(program, strategy);
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(n, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(plan.program, plan.query, &db, state);
  }
}

BENCHMARK_CAPTURE(BM_LongBody, magic, core::Strategy::kMagic)
    ->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LongBody, supplementary_magic,
                  core::Strategy::kSupplementaryMagic)
    ->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LongBody, auto_selected, core::Strategy::kAuto)
    ->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
