// E13 (§5 / §7.4 ablation): how much of the win comes from factoring itself
// vs the §5 cleanups, and does the uniform-equivalence deletion order
// matter?
//
// Stages compared on three-form transitive closure:
//   * raw factored program (Fig. 2: arity reduced, redundant rules kept),
//   * factored + §5 without uniform-equivalence deletion,
//   * the full pipeline (the paper's 4-rule final program).
// The `rules` counter reports the static program size; `facts` the
// evaluation cost.

#include "bench/bench_util.h"
#include "core/optimizations.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kThreeFormTc[] = R"(
  t(X, Y) :- t(X, W), t(W, Y).
  t(X, Y) :- e(X, W), t(W, Y).
  t(X, Y) :- t(X, W), e(W, Y).
  t(X, Y) :- e(X, Y).
  ?- t(1, Y).
)";

void BM_OptimizationStage(benchmark::State& state, int stage) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kThreeFormTc);

  core::PipelineOptions opts;
  if (stage == 0) opts.apply_optimizations = false;
  if (stage == 1) opts.optimize.apply_uniform_equivalence = false;
  core::PipelineResult pipe =
      bench::OrDie(core::OptimizeQuery(program, *program.query(), opts),
                   "pipeline");
  const ast::Program& prog = pipe.final_program();
  const ast::Atom& query = pipe.final_query();
  state.counters["rules"] = static_cast<double>(prog.rules().size());

  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(n, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(prog, query, &db, state);
  }
}

BENCHMARK_CAPTURE(BM_OptimizationStage, factored_raw, 0)
    ->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OptimizationStage, section5_without_ue, 1)
    ->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OptimizationStage, full_pipeline, 2)
    ->Arg(64)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

// §7.4's open question: does the uniform-equivalence deletion order change
// the result? We time both scan orders on the Fig. 2 program and report the
// resulting rule counts (equal here; the tests exhibit programs where the
// final programs differ).
void BM_UeOrder(benchmark::State& state, core::UeOrder order) {
  ast::Program program = bench::ParseOrDie(kThreeFormTc);
  core::PipelineOptions popts;
  popts.apply_optimizations = false;
  core::PipelineResult pipe =
      bench::OrDie(core::OptimizeQuery(program, *program.query(), popts),
                   "pipeline");

  core::OptimizationContext ctx;
  ctx.bp = pipe.factored->split.name1;
  ctx.fp = pipe.factored->split.name2;
  ctx.magic_pred = pipe.magic.magic_names.at(pipe.factored->split.predicate);
  ctx.seed_args = pipe.magic.seed.args();
  ctx.query_pred = pipe.factored->query.predicate();
  core::OptimizeOptions oopts;
  oopts.ue_order = order;

  size_t rules = 0;
  for (auto _ : state) {
    auto optimized =
        core::OptimizeProgram(pipe.factored->program, ctx, oopts);
    if (!optimized.ok()) {
      state.SkipWithError(optimized.status().ToString().c_str());
      return;
    }
    rules = optimized->rules().size();
    benchmark::DoNotOptimize(rules);
  }
  state.counters["rules"] = static_cast<double>(rules);
}

BENCHMARK_CAPTURE(BM_UeOrder, forward, core::UeOrder::kForward)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_UeOrder, backward, core::UeOrder::kBackward)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
