// Adaptive join-planning bench: what mid-fixpoint re-planning buys on a
// misleading-hint workload, emitting JSON to stdout so the perf trajectory
// can be tracked across PRs.
//
// The workload is a "broom": seeded reachability down a chain of `--chain`
// edges, with `--junk` extra edges that share no nodes with the chain. The
// recursive rule's delta is one row per iteration while e holds
// chain + junk rows — and the join plan is costed as if e held 4 rows (the
// "plan compiled while the database was tiny" scenario), so the static
// planner picks e as the driver and scans the whole relation every
// iteration. The adaptive run (EvalOptions::replan_threshold) notices the
// extent drift before the first delta pass and switches the driver to the
// delta.
//
// Both runs are compared fact-for-fact ("matches"): re-planning only
// permutes the enumeration order, never the set of satisfying assignments,
// so head instantiations are identical by construction and the join-work
// win shows up in rows_matched — the per-literal match work the bad driver
// wastes. Both counters are deterministic and hardware-independent, so CI
// gates on them from a 1-core container.
//
// A second experiment drives the engine's re-cost path: a plan cached while
// the EDB was small is hit again after 26x growth — the drift guard must
// re-plan it in place (plans_recosted) without a recompile.
//
//   usage: bench_adaptive [--chain N] [--junk N]
//
//   $ ./bench_adaptive | python3 -m json.tool

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "api/engine.h"
#include "ast/parser.h"
#include "eval/seminaive.h"
#include "plan/join_plan.h"

namespace {

using namespace factlog;

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

int Die(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  return 1;
}

constexpr char kSeededTc[] =
    "t(X, Y) :- seed(X, Y). t(X, Y) :- e(X, W), t(W, Y).";

std::string BroomFacts(int64_t chain, int64_t junk) {
  std::string out = "seed(" + std::to_string(chain) + ", " +
                    std::to_string(chain + 1) + ").\n";
  for (int64_t i = 0; i < chain; ++i) {
    out += "e(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  for (int64_t i = 0; i < junk; ++i) {
    out += "e(" + std::to_string(1000000 + i) + ", " +
           std::to_string(2000000 + i) + ").\n";
  }
  return out;
}

bool LoadInto(eval::Database* db, const std::string& facts) {
  auto program = ast::ParseProgram(facts);
  if (!program.ok()) return false;
  for (const ast::Rule& rule : program->rules()) {
    if (!rule.IsFact() || !db->AddFact(rule.head()).ok()) return false;
  }
  return true;
}

// Order-independent rendering of an answer set (the two runs use separate
// ValueStores).
std::set<std::string> Tuples(const eval::AnswerSet& answers,
                             const eval::ValueStore& store) {
  std::set<std::string> out;
  for (const auto& row : answers.rows) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ",";
      s += store.ToString(row[i]);
    }
    out.insert(std::move(s));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t chain = 200;
  int64_t junk = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chain") == 0 && i + 1 < argc) {
      chain = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--junk") == 0 && i + 1 < argc) {
      junk = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_adaptive [--chain N] [--junk N]\n");
      return 2;
    }
  }

  // ---- Experiment 1: misleading plan, static vs adaptive fixpoint -----------
  auto program = ast::ParseProgram(kSeededTc);
  if (!program.ok()) return Die("parse", program.status());
  auto qprog = ast::ParseProgram("?- t(X, Y).");
  if (!qprog.ok() || !qprog->query().has_value()) {
    return Die("parse query", qprog.status());
  }
  const ast::Atom query = *qprog->query();

  // The misleading compile-time guess: e costed at 4 rows when it really
  // holds chain + junk.
  plan::PlanOptions misleading_opts;
  misleading_opts.extent_hints["e"] = 4;
  misleading_opts.extent_hints["seed"] = 1;
  const plan::ProgramPlan misleading =
      plan::PlanProgram(*program, misleading_opts);

  const std::string facts = BroomFacts(chain, junk);
  struct RunResult {
    eval::EvalStats stats;
    std::set<std::string> tuples;
    double seconds = 0;
  };
  auto run = [&](double threshold, RunResult* out) -> int {
    eval::Database db;
    if (!LoadInto(&db, facts)) {
      return Die("load", Status::Internal("bad facts"));
    }
    eval::EvalOptions opts;
    opts.program_plan = &misleading;
    opts.replan_threshold = threshold;
    auto t0 = Clock::now();
    auto answers =
        eval::EvaluateQuery(*program, query, &db, opts, &out->stats);
    out->seconds = SecondsBetween(t0, Clock::now());
    if (!answers.ok()) return Die("evaluate", answers.status());
    out->tuples = Tuples(*answers, db.store());
    return 0;
  };

  RunResult stat, adap;
  if (int rc = run(/*threshold=*/0.0, &stat); rc != 0) return rc;
  if (int rc = run(/*threshold=*/4.0, &adap); rc != 0) return rc;

  const bool matches = adap.tuples == stat.tuples &&
                       adap.stats.total_facts == stat.stats.total_facts &&
                       adap.stats.instantiations == stat.stats.instantiations;
  const double cut_pct =
      stat.stats.rows_matched > 0
          ? 100.0 * (1.0 - static_cast<double>(adap.stats.rows_matched) /
                               static_cast<double>(stat.stats.rows_matched))
          : 0.0;

  // ---- Experiment 2: cached-plan drift re-costs in place --------------------
  uint64_t plans_recosted = 0, recompiles = 0;
  bool recost_cache_hit = false;
  {
    api::Engine engine;
    if (Status st = engine.LoadFacts("e(1, 2). e(2, 3)."); !st.ok()) {
      return Die("engine load", st);
    }
    const std::string prog = "p(X) :- e(X, Y). ?- p(X).";
    if (auto a = engine.Query(prog); !a.ok()) return Die("warm", a.status());
    const uint64_t compiles_before = engine.stats().compiles;
    std::string growth;
    for (int i = 100; i < 160; ++i) {
      growth += "e(" + std::to_string(i) + ", 0).\n";
    }
    if (Status st = engine.LoadFacts(growth); !st.ok()) {
      return Die("grow", st);
    }
    auto p2 = ast::ParseProgram(prog);
    if (!p2.ok() || !p2->query().has_value()) return Die("parse", p2.status());
    api::QueryStats qs;
    if (auto a = engine.Query(*p2, *p2->query(), api::Strategy::kAuto, &qs);
        !a.ok()) {
      return Die("drifted", a.status());
    }
    plans_recosted = engine.stats().plans_recosted;
    recompiles = engine.stats().compiles - compiles_before;
    recost_cache_hit = qs.cache_hit;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"adaptive\",\n");
  std::printf("  \"schema_version\": 1,\n");
  std::printf("  \"workload\": {\"chain\": %lld, \"junk\": %lld, "
              "\"edges\": %lld, \"answers\": %zu},\n",
              static_cast<long long>(chain), static_cast<long long>(junk),
              static_cast<long long>(chain + junk), stat.tuples.size());
  std::printf("  \"static\": {\"instantiations\": %llu, \"rows_matched\": "
              "%llu, \"replans\": %llu, \"iterations\": %llu, \"seconds\": "
              "%.6f},\n",
              static_cast<unsigned long long>(stat.stats.instantiations),
              static_cast<unsigned long long>(stat.stats.rows_matched),
              static_cast<unsigned long long>(stat.stats.replans),
              static_cast<unsigned long long>(stat.stats.iterations),
              stat.seconds);
  std::printf("  \"adaptive\": {\"instantiations\": %llu, \"rows_matched\": "
              "%llu, \"replans\": %llu, \"iterations\": %llu, \"seconds\": "
              "%.6f},\n",
              static_cast<unsigned long long>(adap.stats.instantiations),
              static_cast<unsigned long long>(adap.stats.rows_matched),
              static_cast<unsigned long long>(adap.stats.replans),
              static_cast<unsigned long long>(adap.stats.iterations),
              adap.seconds);
  std::printf("  \"matches\": %s,\n", matches ? "true" : "false");
  std::printf("  \"join_work_cut_pct\": %.2f,\n", cut_pct);
  std::printf("  \"engine\": {\"plans_recosted\": %llu, \"recompiles\": "
              "%llu, \"recost_was_cache_hit\": %s}\n",
              static_cast<unsigned long long>(plans_recosted),
              static_cast<unsigned long long>(recompiles),
              recost_cache_hit ? "true" : "false");
  std::printf("}\n");
  return matches ? 0 : 1;
}
