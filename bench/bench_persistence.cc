// Persistence bench: what the disk-backed engine buys and what it costs,
// emitting JSON to stdout so the perf trajectory can be tracked across PRs.
//
// Two experiments:
//
//  1. Cold start. A transitive-closure view over a chain is materialized and
//     checkpointed; the engine is then torn down and reopened. Cold start =
//     Engine::Open (page-chain adoption + view restore from meta) plus the
//     first query, which answers from the restored view — against full
//     re-evaluation: an in-memory engine loading the same facts and running
//     the fixpoint from scratch. The speedup is the claim persistence makes:
//     restart without re-deriving the IDB.
//
//  2. Buffer-pool sweep. An EDB ~4x larger than the frame budget (budget =
//     25% of its page count) is scanned repeatedly through full queries, so
//     the clock hand is always evicting. Reports the pool hit rate and the
//     scan throughput under eviction — the "dataset larger than RAM still
//     evaluates" cost curve.
//
//   usage: bench_persistence [--nodes N] [--facts F] [--iters K]
//
//   $ ./bench_persistence | python3 -m json.tool

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "api/engine.h"
#include "storage/page.h"

namespace {

using namespace factlog;

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

constexpr char kLeftTc[] =
    "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y). ?- t(X, Y).";
constexpr char kScan[] = "s(X, Y) :- r(X, Y). ?- s(X, Y).";

std::string ChainFacts(int64_t nodes) {
  std::string out;
  for (int64_t i = 1; i < nodes; ++i) {
    out += "e(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  return out;
}

std::string WideFacts(int64_t facts) {
  std::string out;
  for (int64_t i = 0; i < facts; ++i) {
    out += "r(" + std::to_string(i) + ", " + std::to_string(i * 2 + 1) +
           ").\n";
  }
  return out;
}

struct TempDb {
  explicit TempDb(const char* tag) {
    path = (std::filesystem::temp_directory_path() /
            (std::string("factlog_bench_") + tag))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDb() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

int Die(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t nodes = 500;
  int64_t facts = 150000;
  int iters = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--facts") == 0 && i + 1 < argc) {
      facts = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_persistence [--nodes N] [--facts F] "
                   "[--iters K]\n");
      return 2;
    }
  }

  // ---- Experiment 1: cold start vs full re-evaluation -----------------------
  TempDb cold_db("cold");
  const std::string chain = ChainFacts(nodes);
  double save_s = 0, open_s = 0, cold_query_s = 0, reeval_s = 0;
  size_t answers_cold = 0, answers_reeval = 0;
  uint64_t views_restored = 0;
  {
    auto t0 = Clock::now();
    auto engine = api::Engine::Open(cold_db.path);
    if (!engine.ok()) return Die("open", engine.status());
    if (Status st = (*engine)->LoadFacts(chain); !st.ok()) {
      return Die("load", st);
    }
    if (auto h = (*engine)->Materialize(kLeftTc); !h.ok()) {
      return Die("materialize", h.status());
    }
    if (Status st = (*engine)->Checkpoint(); !st.ok()) {
      return Die("checkpoint", st);
    }
    save_s = SecondsBetween(t0, Clock::now());
  }
  {
    auto t0 = Clock::now();
    auto engine = api::Engine::Open(cold_db.path);
    if (!engine.ok()) return Die("reopen", engine.status());
    open_s = SecondsBetween(t0, Clock::now());
    views_restored = (*engine)->persistence_stats().views_restored;
    auto t1 = Clock::now();
    auto a = (*engine)->Query(kLeftTc);
    if (!a.ok()) return Die("cold query", a.status());
    cold_query_s = SecondsBetween(t1, Clock::now());
    answers_cold = a->rows.size();
  }
  {
    auto t0 = Clock::now();
    api::Engine engine;
    if (Status st = engine.LoadFacts(chain); !st.ok()) return Die("load", st);
    auto a = engine.Query(kLeftTc);
    if (!a.ok()) return Die("reeval query", a.status());
    reeval_s = SecondsBetween(t0, Clock::now());
    answers_reeval = a->rows.size();
  }
  const double cold_total_s = open_s + cold_query_s;

  // ---- Experiment 2: scans under eviction at a 25% frame budget -------------
  TempDb sweep_db("sweep");
  const int64_t rows_per_page =
      static_cast<int64_t>((storage::kPageSize - storage::kPageHeaderSize) /
                           (2 * sizeof(eval::ValueId) + 2));
  const int64_t data_pages = (facts + rows_per_page - 1) / rows_per_page;
  api::EngineOptions sweep_opts;
  sweep_opts.storage_frame_budget =
      static_cast<size_t>(data_pages / 4 > 0 ? data_pages / 4 : 1);
  double sweep_load_s = 0, sweep_scan_s = 0;
  uint64_t sweep_hits = 0, sweep_misses = 0, sweep_evictions = 0;
  uint64_t sweep_pages = 0;
  size_t scan_rows = 0;
  {
    auto engine = api::Engine::Open(sweep_db.path, sweep_opts);
    if (!engine.ok()) return Die("sweep open", engine.status());
    auto t0 = Clock::now();
    if (Status st = (*engine)->LoadFacts(WideFacts(facts)); !st.ok()) {
      return Die("sweep load", st);
    }
    if (Status st = (*engine)->Checkpoint(); !st.ok()) {
      return Die("sweep checkpoint", st);
    }
    sweep_load_s = SecondsBetween(t0, Clock::now());
    const auto before = (*engine)->persistence_stats().storage.pool;
    t0 = Clock::now();
    for (int k = 0; k < iters; ++k) {
      auto a = (*engine)->Query(kScan);
      if (!a.ok()) return Die("sweep scan", a.status());
      scan_rows = a->rows.size();
    }
    sweep_scan_s = SecondsBetween(t0, Clock::now());
    const auto after = (*engine)->persistence_stats().storage.pool;
    sweep_hits = after.hits - before.hits;
    sweep_misses = after.misses - before.misses;
    sweep_evictions = after.evictions - before.evictions;
    sweep_pages = (*engine)->persistence_stats().storage.num_pages;
  }
  const double sweep_hit_rate =
      sweep_hits + sweep_misses > 0
          ? static_cast<double>(sweep_hits) /
                static_cast<double>(sweep_hits + sweep_misses)
          : 0.0;
  const double scan_rows_per_s =
      sweep_scan_s > 0 ? static_cast<double>(facts) * iters / sweep_scan_s
                       : 0.0;

  std::printf("{\n");
  std::printf("  \"bench\": \"persistence\",\n");
  std::printf("  \"schema_version\": 1,\n");
  std::printf("  \"cold_start\": {\n");
  std::printf("    \"program\": \"left_linear_tc_view\",\n");
  std::printf("    \"chain_nodes\": %lld,\n", static_cast<long long>(nodes));
  std::printf("    \"answers\": %zu,\n", answers_cold);
  std::printf("    \"answers_match_reeval\": %s,\n",
              answers_cold == answers_reeval ? "true" : "false");
  std::printf("    \"views_restored\": %llu,\n",
              static_cast<unsigned long long>(views_restored));
  std::printf("    \"save_s\": %.4f,\n", save_s);
  std::printf("    \"open_s\": %.4f,\n", open_s);
  std::printf("    \"first_query_s\": %.4f,\n", cold_query_s);
  std::printf("    \"cold_total_s\": %.4f,\n", cold_total_s);
  std::printf("    \"reeval_total_s\": %.4f,\n", reeval_s);
  std::printf("    \"speedup_vs_reeval\": %.2f\n",
              cold_total_s > 0 ? reeval_s / cold_total_s : 0.0);
  std::printf("  },\n");
  std::printf("  \"buffer_pool_sweep\": {\n");
  std::printf("    \"facts\": %lld,\n", static_cast<long long>(facts));
  std::printf("    \"data_pages\": %lld,\n",
              static_cast<long long>(data_pages));
  std::printf("    \"total_pages\": %llu,\n",
              static_cast<unsigned long long>(sweep_pages));
  std::printf("    \"frame_budget\": %zu,\n", sweep_opts.storage_frame_budget);
  std::printf("    \"scan_iters\": %d,\n", iters);
  std::printf("    \"scan_answers\": %zu,\n", scan_rows);
  std::printf("    \"load_and_checkpoint_s\": %.4f,\n", sweep_load_s);
  std::printf("    \"scan_s\": %.4f,\n", sweep_scan_s);
  std::printf("    \"scan_rows_per_s\": %.0f,\n", scan_rows_per_s);
  std::printf("    \"pool_hits\": %llu,\n",
              static_cast<unsigned long long>(sweep_hits));
  std::printf("    \"pool_misses\": %llu,\n",
              static_cast<unsigned long long>(sweep_misses));
  std::printf("    \"pool_evictions\": %llu,\n",
              static_cast<unsigned long long>(sweep_evictions));
  std::printf("    \"pool_hit_rate\": %.3f\n", sweep_hit_rate);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
