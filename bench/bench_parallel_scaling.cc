// Parallel-scaling bench: sequential vs shard-native parallel fixpoint on
// the transitive-closure workload, emitting per-(threads, shards) timings as
// JSON to stdout so the perf trajectory can be tracked across PRs. The JSON
// carries a schema_version (currently 2: shard sweep added) so records stay
// comparable as the bench evolves.
//
// The workload is left-linear TC over a chain-plus-random digraph evaluated
// unbound — the recursive occurrence leads its rule, so each iteration's
// delta shards drive the outer loop in place and the join is embarrassingly
// data-parallel. Answers are verified against the flat sequential oracle; a
// mismatch exits nonzero.
//
//   usage: bench_parallel_scaling [--nodes N] [--edges M] [--reps R]
//                                 [--threads 1,2,4,8] [--shards 1,2,8]
//
//   $ ./bench_parallel_scaling --nodes 200 | python3 -m json.tool

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/seminaive.h"
#include "exec/parallel_seminaive.h"
#include "exec/thread_pool.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

constexpr char kLeftTc[] =
    "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y).";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void MakeWorkload(int64_t nodes, int64_t edges, eval::Database* db) {
  workload::MakeChain(nodes, "e", db);
  workload::MakeRandomGraph(nodes, edges, /*seed=*/42, "e", db);
}

std::vector<size_t> ParseCountList(const char* arg) {
  std::vector<size_t> out;
  std::string s(arg);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string item = s.substr(pos, comma - pos);
    char* end = nullptr;
    unsigned long v = std::strtoul(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || v > 1024) return {};
    out.push_back(static_cast<size_t>(v));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t nodes = 250;
  int64_t edges = 500;
  int reps = 3;
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::vector<size_t> shard_counts = {1, 2, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--edges") == 0 && i + 1 < argc) {
      edges = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = ParseCountList(argv[++i]);
      if (thread_counts.empty()) {
        std::fprintf(stderr, "invalid --threads list: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = ParseCountList(argv[++i]);
      if (shard_counts.empty()) {
        std::fprintf(stderr, "invalid --shards list: %s\n", argv[i]);
        return 2;
      }
      for (size_t s : shard_counts) {
        if (s == 0) {
          std::fprintf(stderr, "--shards values must be >= 1\n");
          return 2;
        }
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel_scaling [--nodes N] [--edges M] "
                   "[--reps R] [--threads 1,2,4,8] [--shards 1,2,8]\n");
      return 2;
    }
  }

  auto parsed = ast::ParseProgram(kLeftTc);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const ast::Program& program = *parsed;

  // Sequential oracle: best of `reps`.
  uint64_t expected_facts = 0;
  double seq_ms = 0;
  for (int r = 0; r < reps; ++r) {
    eval::Database db;
    MakeWorkload(nodes, edges, &db);
    auto start = std::chrono::steady_clock::now();
    auto result = eval::Evaluate(program, &db);
    double ms = MillisSince(start);
    if (!result.ok()) {
      std::fprintf(stderr, "sequential: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    expected_facts = result->stats().total_facts;
    seq_ms = (r == 0) ? ms : std::min(seq_ms, ms);
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"parallel_scaling\",\n");
  std::printf("  \"schema_version\": 2,\n");
  std::printf("  \"workload\": \"left_tc_chain_plus_random\",\n");
  std::printf("  \"nodes\": %lld,\n", static_cast<long long>(nodes));
  std::printf("  \"edges\": %lld,\n", static_cast<long long>(edges));
  std::printf("  \"tc_facts\": %llu,\n",
              static_cast<unsigned long long>(expected_facts));
  std::printf("  \"reps\": %d,\n", reps);
  std::printf("  \"sequential_ms\": %.3f,\n", seq_ms);
  std::printf("  \"runs\": [");

  bool mismatch = false;
  bool first_run = true;
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    size_t threads = thread_counts[t];
    exec::ThreadPool pool(threads);
    for (size_t shards : shard_counts) {
      double best_ms = 0;
      uint64_t facts = 0;
      for (int r = 0; r < reps; ++r) {
        eval::Database db(eval::StorageOptions{shards, {}});
        MakeWorkload(nodes, edges, &db);
        exec::ParallelEvalOptions popts;
        popts.num_shards = shards;
        auto start = std::chrono::steady_clock::now();
        auto result = exec::EvaluateParallel(program, &db, &pool, popts);
        double ms = MillisSince(start);
        if (!result.ok()) {
          std::fprintf(stderr, "parallel@%zut/%zush: %s\n", threads, shards,
                       result.status().ToString().c_str());
          return 1;
        }
        facts = result->stats().total_facts;
        best_ms = (r == 0) ? ms : std::min(best_ms, ms);
      }
      if (facts != expected_facts) mismatch = true;
      std::printf("%s\n    {\"threads\": %zu, \"shards\": %zu, "
                  "\"ms\": %.3f, \"speedup\": %.3f, \"facts\": %llu, "
                  "\"matches\": %s}",
                  first_run ? "" : ",", threads, shards, best_ms,
                  best_ms > 0 ? seq_ms / best_ms : 0.0,
                  static_cast<unsigned long long>(facts),
                  facts == expected_facts ? "true" : "false");
      first_run = false;
    }
  }
  std::printf("\n  ]\n}\n");

  if (mismatch) {
    std::fprintf(stderr, "FAIL: parallel fact count diverged from oracle\n");
    return 1;
  }
  return 0;
}
