// Parallel-scaling bench: sequential vs shard-native parallel fixpoint on
// transitive-closure workloads, emitting per-(threads, shards) timings as
// JSON to stdout so the perf trajectory can be tracked across PRs. The JSON
// carries a schema_version (currently 3: per-rule instantiation counts and
// the planned-vs-left-to-right right-linear comparison added; 2 was the
// shard sweep) so records stay comparable as the bench evolves.
//
// Two workloads over the same chain-plus-random digraph, evaluated unbound:
//
//   * left-linear TC (the `runs` array) — the recursive occurrence leads its
//     rule, each iteration's delta shards drive the outer loop in place, and
//     the join is embarrassingly data-parallel;
//   * right-linear TC (the `right_linear` object) — the recursive occurrence
//     trails the source body, the workload the compile-time join plan
//     rewrites: plan order puts the delta occurrence first, so delta-shard
//     partitioning replaces the left-to-right baseline's per-shard re-scan
//     of the e-prefix. Both join orders run at every (threads, shards)
//     combination; rows_matched + instantiations is the total join work the
//     plan saves.
//
// Every run records head instantiations (per rule too), rows matched, and
// fact counts, all verified against the flat sequential oracle; a mismatch
// exits nonzero.
//
//   usage: bench_parallel_scaling [--nodes N] [--edges M] [--reps R]
//                                 [--threads 1,2,4,8] [--shards 1,2,8]
//
//   $ ./bench_parallel_scaling --nodes 200 | python3 -m json.tool

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/seminaive.h"
#include "exec/parallel_seminaive.h"
#include "exec/thread_pool.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

constexpr char kLeftTc[] =
    "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y).";
constexpr char kRightTc[] =
    "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y).";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void MakeWorkload(int64_t nodes, int64_t edges, eval::Database* db) {
  workload::MakeChain(nodes, "e", db);
  workload::MakeRandomGraph(nodes, edges, /*seed=*/42, "e", db);
}

std::vector<size_t> ParseCountList(const char* arg) {
  std::vector<size_t> out;
  std::string s(arg);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string item = s.substr(pos, comma - pos);
    char* end = nullptr;
    unsigned long v = std::strtoul(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || v > 1024) return {};
    out.push_back(static_cast<size_t>(v));
    pos = comma + 1;
  }
  return out;
}

void PrintRuleCounts(const std::vector<uint64_t>& counts) {
  std::printf("[");
  for (size_t i = 0; i < counts.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ", ",
                static_cast<unsigned long long>(counts[i]));
  }
  std::printf("]");
}

// One measured configuration: best-of-reps wall time plus the (rep-invariant)
// join counters of the last rep.
struct RunStats {
  double ms = 0;
  uint64_t facts = 0;
  uint64_t instantiations = 0;
  uint64_t rows_matched = 0;
  std::vector<uint64_t> rule_instantiations;
  bool ok = false;
};

RunStats RunParallel(const ast::Program& program, int64_t nodes,
                     int64_t edges, int reps, exec::ThreadPool* pool,
                     size_t shards, eval::JoinOrder order) {
  RunStats out;
  for (int r = 0; r < reps; ++r) {
    eval::Database db(eval::StorageOptions{shards, {}});
    if (edges > 0) {
      MakeWorkload(nodes, edges, &db);
    } else {
      workload::MakeChain(nodes, "e", &db);
    }
    exec::ParallelEvalOptions popts;
    popts.num_shards = shards;
    popts.eval.join_order = order;
    auto start = std::chrono::steady_clock::now();
    auto result = exec::EvaluateParallel(program, &db, pool, popts);
    double ms = MillisSince(start);
    if (!result.ok()) {
      std::fprintf(stderr, "parallel: %s\n",
                   result.status().ToString().c_str());
      return out;
    }
    out.facts = result->stats().total_facts;
    out.instantiations = result->stats().instantiations;
    out.rows_matched = result->stats().rows_matched;
    out.rule_instantiations = result->stats().rule_instantiations;
    out.ms = (r == 0) ? ms : std::min(out.ms, ms);
  }
  out.ok = true;
  return out;
}

void PrintRunTail(const RunStats& run, uint64_t expected_facts) {
  std::printf("\"facts\": %llu, \"matches\": %s, \"instantiations\": %llu, "
              "\"rows_matched\": %llu, \"rule_instantiations\": ",
              static_cast<unsigned long long>(run.facts),
              run.facts == expected_facts ? "true" : "false",
              static_cast<unsigned long long>(run.instantiations),
              static_cast<unsigned long long>(run.rows_matched));
  PrintRuleCounts(run.rule_instantiations);
  std::printf("}");
}

}  // namespace

int main(int argc, char** argv) {
  int64_t nodes = 250;
  int64_t edges = 500;
  int reps = 3;
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::vector<size_t> shard_counts = {1, 2, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--edges") == 0 && i + 1 < argc) {
      edges = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = ParseCountList(argv[++i]);
      if (thread_counts.empty()) {
        std::fprintf(stderr, "invalid --threads list: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = ParseCountList(argv[++i]);
      if (shard_counts.empty()) {
        std::fprintf(stderr, "invalid --shards list: %s\n", argv[i]);
        return 2;
      }
      for (size_t s : shard_counts) {
        if (s == 0) {
          std::fprintf(stderr, "--shards values must be >= 1\n");
          return 2;
        }
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel_scaling [--nodes N] [--edges M] "
                   "[--reps R] [--threads 1,2,4,8] [--shards 1,2,8]\n");
      return 2;
    }
  }

  auto left = ast::ParseProgram(kLeftTc);
  auto right = ast::ParseProgram(kRightTc);
  if (!left.ok() || !right.ok()) {
    std::fprintf(stderr, "parse failed\n");
    return 1;
  }

  // Sequential oracle (left-linear): best of `reps`.
  uint64_t expected_facts = 0;
  double seq_ms = 0;
  for (int r = 0; r < reps; ++r) {
    eval::Database db;
    MakeWorkload(nodes, edges, &db);
    auto start = std::chrono::steady_clock::now();
    auto result = eval::Evaluate(*left, &db);
    double ms = MillisSince(start);
    if (!result.ok()) {
      std::fprintf(stderr, "sequential: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    expected_facts = result->stats().total_facts;
    seq_ms = (r == 0) ? ms : std::min(seq_ms, ms);
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"parallel_scaling\",\n");
  std::printf("  \"schema_version\": 3,\n");
  std::printf("  \"workload\": \"left_tc_chain_plus_random\",\n");
  std::printf("  \"nodes\": %lld,\n", static_cast<long long>(nodes));
  std::printf("  \"edges\": %lld,\n", static_cast<long long>(edges));
  std::printf("  \"tc_facts\": %llu,\n",
              static_cast<unsigned long long>(expected_facts));
  std::printf("  \"reps\": %d,\n", reps);
  std::printf("  \"sequential_ms\": %.3f,\n", seq_ms);
  std::printf("  \"runs\": [");

  bool mismatch = false;
  bool first_run = true;
  for (size_t threads : thread_counts) {
    exec::ThreadPool pool(threads);
    for (size_t shards : shard_counts) {
      RunStats run = RunParallel(*left, nodes, edges, reps, &pool, shards,
                                 eval::JoinOrder::kPlanned);
      if (!run.ok) return 1;
      if (run.facts != expected_facts) mismatch = true;
      std::printf("%s\n    {\"threads\": %zu, \"shards\": %zu, "
                  "\"ms\": %.3f, \"speedup\": %.3f, ",
                  first_run ? "" : ",", threads, shards, run.ms,
                  run.ms > 0 ? seq_ms / run.ms : 0.0);
      PrintRunTail(run, expected_facts);
      first_run = false;
    }
  }
  std::printf("\n  ],\n");

  // Right-linear TC: the join-plan workload, on the pure chain — long
  // derivation chains mean many fixpoint iterations, which is exactly where
  // right-linear rules pay the per-shard prefix re-enumeration the plan
  // removes (dense graphs converge in a handful of iterations and hide it).
  // Planned order drives the rule with the delta occurrence; the
  // left-to-right baseline re-enumerates the e-prefix once per delta shard.
  // Identical fact sets and instantiation counts, strictly less total join
  // work planned.
  uint64_t right_expected = 0;
  {
    eval::Database db;
    workload::MakeChain(nodes, "e", &db);
    auto result = eval::Evaluate(*right, &db);
    if (!result.ok()) {
      std::fprintf(stderr, "right-linear sequential: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    right_expected = result->stats().total_facts;
  }
  std::printf("  \"right_linear\": {\n");
  std::printf("    \"workload\": \"right_tc_chain\",\n");
  std::printf("    \"tc_facts\": %llu,\n",
              static_cast<unsigned long long>(right_expected));
  std::printf("    \"runs\": [");
  first_run = true;
  // The headline aggregate covers the sharded (shards > 1) runs — the
  // partitioning scenario: the baseline's per-shard prefix re-scan is the
  // work the plan removes. Flat runs are still emitted individually (there
  // the two orders trade a delta scan for an e scan and land close).
  uint64_t planned_work = 0, ltr_work = 0;
  for (size_t threads : thread_counts) {
    exec::ThreadPool pool(threads);
    for (size_t shards : shard_counts) {
      for (eval::JoinOrder order :
           {eval::JoinOrder::kPlanned, eval::JoinOrder::kLeftToRight}) {
        RunStats run = RunParallel(*right, nodes, /*edges=*/0, reps, &pool,
                                   shards, order);
        if (!run.ok) return 1;
        if (run.facts != right_expected) mismatch = true;
        uint64_t work = run.instantiations + run.rows_matched;
        if (shards > 1) {
          if (order == eval::JoinOrder::kPlanned) {
            planned_work += work;
          } else {
            ltr_work += work;
          }
        }
        std::printf("%s\n      {\"join_order\": \"%s\", \"threads\": %zu, "
                    "\"shards\": %zu, \"ms\": %.3f, ",
                    first_run ? "" : ",",
                    order == eval::JoinOrder::kPlanned ? "planned"
                                                       : "left_to_right",
                    threads, shards, run.ms);
        PrintRunTail(run, right_expected);
        first_run = false;
      }
    }
  }
  std::printf("\n    ],\n");
  std::printf("    \"planned_sharded_join_work\": %llu,\n",
              static_cast<unsigned long long>(planned_work));
  std::printf("    \"left_to_right_sharded_join_work\": %llu,\n",
              static_cast<unsigned long long>(ltr_work));
  std::printf("    \"sharded_work_ratio\": %.3f\n",
              ltr_work > 0 ? static_cast<double>(planned_work) /
                                 static_cast<double>(ltr_work)
                           : 0.0);
  std::printf("  }\n}\n");

  if (mismatch) {
    std::fprintf(stderr, "FAIL: parallel fact count diverged from oracle\n");
    return 1;
  }
  return 0;
}
