// E5 (Example 4.5, Theorem 4.3): an answer-propagating program — combined
// rules with differing left filters plus a right-linear rule whose
// bound_first is contained in every bound conjunction.
//
// Paper claim: Theorem 4.3 strictly generalizes Theorem 4.2; these programs
// factor although they are neither selection-pushing nor symmetric.

#include "bench/bench_util.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kAnswerPropagating[] = R"(
  p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
  p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
  p(X, Y) :- l1(X), l2(X), f(X, V), p(V, Y), r3(Y).
  p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).
  ?- p(1, Y).
)";

void MakeWorkload(int64_t n, eval::Database* db) {
  workload::MakeChain(n, "e", db);
  for (int64_t i = 1; i <= n; ++i) {
    db->AddUnit("l1", i);
    db->AddUnit("l2", i);
    db->AddUnit("r1", i);
    db->AddUnit("r2", i);
    db->AddUnit("r3", i);
    if (i + 2 <= n) db->AddPair("f", i, i + 2);
  }
  for (int64_t u = 1; u + 1 <= n; ++u) {
    db->AddFact(ast::Atom(
        "c", {ast::Term::Int(u), ast::Term::Int(u), ast::Term::Int(u + 1)}));
  }
}

void BM_AnswerPropagating(benchmark::State& state, bool factored) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kAnswerPropagating);
  core::PipelineResult pipe = bench::Pipeline(program);
  if (!pipe.factorability.answer_propagating) {
    state.SkipWithError("expected an answer-propagating program");
    return;
  }
  const ast::Program* prog = factored ? &*pipe.optimized : &pipe.magic.program;
  const ast::Atom* query = factored ? &pipe.final_query() : &pipe.magic.query;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    MakeWorkload(n, &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_AnswerPropagating, magic, false)
    ->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_AnswerPropagating, factored, true)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity();

}  // namespace

BENCHMARK_MAIN();
