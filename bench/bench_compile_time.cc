// E14 (§4.2 remark): the cost of deciding factorability — and of caching it.
//
// "An algorithm that is exponential in the size of the recursion and query
// (small) may be worth running during query planning in order to save time
// proportional to the size of the database (large) during query
// evaluation." — testing the sufficient conditions is NP-complete in the
// rule size (conjunctive-query containment), but rules are tiny. This bench
// measures the full strategy compile (adorn + classify + containments +
// factoring + §5 cleanups incl. uniform-equivalence chases) against one
// evaluation of the Magic program it replaces, and the api::Engine plan
// cache that amortizes the compile across repeated queries.

#include "api/engine.h"
#include "bench/bench_util.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char* kPrograms[] = {
    // three-form TC
    "t(X, Y) :- t(X, W), t(W, Y). t(X, Y) :- e(X, W), t(W, Y). "
    "t(X, Y) :- t(X, W), e(W, Y). t(X, Y) :- e(X, Y). ?- t(1, Y).",
    // selection-pushing positive variant (heavier containment tests)
    "p(X, Y) :- l(X), p(X, U), c1(U, V), p(V, Y), r1(Y). "
    "p(X, Y) :- l(X), p(X, U), c2(U, V), p(V, Y), r2(Y). "
    "p(X, Y) :- l(X), f(X, V), p(V, Y), r3(Y). "
    "p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y). ?- p(1, Y).",
    // answer-propagating variant (pairwise containments across 4 rules)
    "p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y). "
    "p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y). "
    "p(X, Y) :- l1(X), l2(X), f(X, V), p(V, Y), r3(Y). "
    "p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y). ?- p(1, Y).",
};

void BM_StrategyCompileTime(benchmark::State& state) {
  ast::Program program = bench::ParseOrDie(kPrograms[state.range(0)]);
  size_t final_rules = 0;
  for (auto _ : state) {
    auto compiled =
        core::CompileQuery(program, *program.query(), core::Strategy::kAuto);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    final_rules = compiled->program.rules().size();
    benchmark::DoNotOptimize(compiled->factoring_applied);
  }
  state.counters["final_rules"] = static_cast<double>(final_rules);
}

BENCHMARK(BM_StrategyCompileTime)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// What the engine's plan cache saves: the same query served from the cache
// instead of recompiled. The counter reports hits per iteration batch.
void BM_PlanCacheHit(benchmark::State& state) {
  ast::Program program = bench::ParseOrDie(kPrograms[state.range(0)]);
  api::Engine engine;
  auto warm = engine.Compile(program, *program.query());
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto plan = engine.Compile(program, *program.query());
    benchmark::DoNotOptimize(plan->get());
  }
  state.counters["cache_hits"] =
      static_cast<double>(engine.stats().cache_hits);
}

BENCHMARK(BM_PlanCacheHit)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// The evaluation-time savings one compile pays for: Magic-minus-factored
// time on a single moderate database (three-form TC, chain n=256).
void BM_EvaluationSavedPerQuery(benchmark::State& state,
                                core::Strategy strategy) {
  ast::Program program = bench::ParseOrDie(kPrograms[0]);
  core::CompiledQuery plan = bench::Compile(program, strategy);
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(256, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(plan.program, plan.query, &db, state);
  }
}

BENCHMARK_CAPTURE(BM_EvaluationSavedPerQuery, magic, core::Strategy::kMagic)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EvaluationSavedPerQuery, factored,
                  core::Strategy::kFactoring)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
