// E14 (§4.2 remark): the cost of deciding factorability.
//
// "An algorithm that is exponential in the size of the recursion and query
// (small) may be worth running during query planning in order to save time
// proportional to the size of the database (large) during query
// evaluation." — testing the sufficient conditions is NP-complete in the
// rule size (conjunctive-query containment), but rules are tiny. This bench
// measures the full pipeline's compile time (adorn + magic + classify +
// containments + factoring + §5 cleanups incl. uniform-equivalence chases)
// against one evaluation of the Magic program it replaces.

#include "bench/bench_util.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char* kPrograms[] = {
    // three-form TC
    "t(X, Y) :- t(X, W), t(W, Y). t(X, Y) :- e(X, W), t(W, Y). "
    "t(X, Y) :- t(X, W), e(W, Y). t(X, Y) :- e(X, Y). ?- t(1, Y).",
    // selection-pushing positive variant (heavier containment tests)
    "p(X, Y) :- l(X), p(X, U), c1(U, V), p(V, Y), r1(Y). "
    "p(X, Y) :- l(X), p(X, U), c2(U, V), p(V, Y), r2(Y). "
    "p(X, Y) :- l(X), f(X, V), p(V, Y), r3(Y). "
    "p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y). ?- p(1, Y).",
    // answer-propagating variant (pairwise containments across 4 rules)
    "p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y). "
    "p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y). "
    "p(X, Y) :- l1(X), l2(X), f(X, V), p(V, Y), r3(Y). "
    "p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y). ?- p(1, Y).",
};

void BM_PipelineCompileTime(benchmark::State& state) {
  ast::Program program =
      bench::ParseOrDie(kPrograms[state.range(0)]);
  size_t final_rules = 0;
  for (auto _ : state) {
    auto result = core::OptimizeQuery(program, *program.query());
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    final_rules = result->final_program().rules().size();
    benchmark::DoNotOptimize(result->factoring_applied);
  }
  state.counters["final_rules"] = static_cast<double>(final_rules);
}

BENCHMARK(BM_PipelineCompileTime)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// The evaluation-time savings one compile pays for: Magic-minus-factored
// time on a single moderate database (three-form TC, chain n=256).
void BM_EvaluationSavedPerQuery(benchmark::State& state, bool factored) {
  ast::Program program = bench::ParseOrDie(kPrograms[0]);
  core::PipelineResult pipe = bench::Pipeline(program);
  const ast::Program* prog = factored ? &*pipe.optimized : &pipe.magic.program;
  const ast::Atom* query = factored ? &pipe.final_query() : &pipe.magic.query;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(256, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
}

BENCHMARK_CAPTURE(BM_EvaluationSavedPerQuery, magic, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EvaluationSavedPerQuery, factored, true)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
