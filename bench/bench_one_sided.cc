// E7 (§5 Examples 5.1/5.2, §6.1 Theorem 6.2): static argument reduction and
// one-sided recursions.
//
// Paper claim: programs outside the §4 templates (static bound arguments,
// pseudo-left-linear rules) become factorable after the Lemma 5.1/5.2
// reduction; the reduced+factored program drops both the static argument
// and the bound/free pairing.

#include "bench/bench_util.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

// Example 5.1's shape: the first argument is static.
const char kStatic[] = R"(
  p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).
  p(X, Y, Z) :- e0(X, Y, Z).
  ?- p(1, 2, U).
)";

// Example 5.2's pseudo-left-linear rule.
const char kPseudo[] = R"(
  p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
  p(X, Y, Z) :- e0(X, Y, Z).
  ?- p(1, 2, U).
)";

void MakeWorkload(int64_t n, eval::Database* db, bool ternary_d) {
  db->AddUnit("a", 1);
  for (int64_t i = 1; i < n; ++i) {
    if (ternary_d) {
      db->AddFact(ast::Atom(
          "d", {ast::Term::Int(i), ast::Term::Int(1), ast::Term::Int(i + 1)}));
    } else {
      db->AddPair("d", i, i + 1);
    }
  }
  for (int64_t i = 1; i <= n; ++i) {
    db->AddFact(ast::Atom(
        "e0", {ast::Term::Int(1), ast::Term::Int(2), ast::Term::Int(i)}));
  }
}

void BM_StaticReduction(benchmark::State& state, const char* text,
                        bool ternary_d, bool factored) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(text);
  core::PipelineResult pipe = bench::Pipeline(program);
  if (factored &&
      (!pipe.static_reduction_applied || !pipe.factoring_applied)) {
    state.SkipWithError("expected static reduction + factoring");
    return;
  }
  const ast::Program* prog = factored ? &*pipe.optimized : &pipe.magic.program;
  const ast::Atom* query = factored ? &pipe.final_query() : &pipe.magic.query;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    MakeWorkload(n, &db, ternary_d);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_StaticReduction, example51_magic, kStatic, false, false)
    ->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_StaticReduction, example51_reduced_factored, kStatic,
                  false, true)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_StaticReduction, example52_magic, kPseudo, true, false)
    ->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_StaticReduction, example52_reduced_factored, kPseudo,
                  true, true)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Theorem 6.2: a simple one-sided recursion (two EDB steps per application)
// under both full-selection query forms.
void BM_OneSidedFullSelection(benchmark::State& state, const char* query_text) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(
      "t(X, Y) :- e(X, W), e(W, W2), t(W2, Y). t(X, Y) :- e0(X, Y).");
  program.set_query(bench::OrDie(ast::ParseAtom(query_text), "query"));
  core::PipelineResult pipe = bench::Pipeline(program);
  if (!pipe.factoring_applied) {
    state.SkipWithError("expected Theorem 6.2 to factor this program");
    return;
  }
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(n, "e", &db);
    for (int64_t i = 1; i <= n; ++i) db.AddPair("e0", i, i);
    state.ResumeTiming();
    bench::RunAndCount(*pipe.optimized, pipe.final_query(), &db, state);
  }
}

BENCHMARK_CAPTURE(BM_OneSidedFullSelection, bind_moving_side, "t(1, Y)")
    ->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OneSidedFullSelection, bind_fixed_side, "t(X, 9)")
    ->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
