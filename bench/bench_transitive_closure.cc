// E1 (Examples 1.1 / 4.2 / 5.3): single-source transitive closure with all
// three recursive rule forms.
//
// Paper claim: the Magic program materializes the binary t_bf relation —
// Theta(n^2) facts on a chain — while Magic + factoring + §5 yields a unary
// program with Theta(n) facts; "an order of magnitude increase in
// efficiency" from the arity reduction.
//
// Series: evaluation strategy x program stage x chain length. The `facts`
// counter is the paper's cost measure.

#include "bench/bench_util.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kThreeFormTc[] = R"(
  t(X, Y) :- t(X, W), t(W, Y).
  t(X, Y) :- e(X, W), t(W, Y).
  t(X, Y) :- t(X, W), e(W, Y).
  t(X, Y) :- e(X, Y).
  ?- t(1, Y).
)";

enum class Stage { kOriginalNaive, kOriginalSemiNaive, kMagic, kFactored };

void BM_TransitiveClosure(benchmark::State& state, Stage stage) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kThreeFormTc);
  core::CompiledQuery magic =
      bench::Compile(program, core::Strategy::kMagic);
  core::CompiledQuery factored =
      bench::Compile(program, core::Strategy::kFactoring);

  const ast::Program* prog = &program;
  const ast::Atom* query = &*program.query();
  eval::EvalOptions opts;
  switch (stage) {
    case Stage::kOriginalNaive:
      opts.strategy = eval::Strategy::kNaive;
      break;
    case Stage::kOriginalSemiNaive:
      break;
    case Stage::kMagic:
      prog = &magic.program;
      query = &magic.query;
      break;
    case Stage::kFactored:
      prog = &factored.program;
      query = &factored.query;
      break;
  }

  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(n, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state, opts);
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_TransitiveClosure, original_naive, Stage::kOriginalNaive)
    ->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_TransitiveClosure, original_seminaive,
                  Stage::kOriginalSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_TransitiveClosure, magic, Stage::kMagic)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_TransitiveClosure, factored, Stage::kFactored)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Random graphs: the crossover behaviour is the same; factoring never loses.
void BM_TcRandomGraph(benchmark::State& state, Stage stage) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kThreeFormTc);
  core::CompiledQuery plan = bench::Compile(
      program, stage == Stage::kMagic ? core::Strategy::kMagic
                                      : core::Strategy::kFactoring);
  const ast::Program* prog = &plan.program;
  const ast::Atom* query = &plan.query;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    // A chain backbone guarantees the query cone is nonempty; random edges
    // add shortcuts and joins.
    workload::MakeChain(n, "e", &db);
    workload::MakeRandomGraph(n, n, /*seed=*/99, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
}

BENCHMARK_CAPTURE(BM_TcRandomGraph, magic, Stage::kMagic)
    ->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TcRandomGraph, factored, Stage::kFactored)
    ->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
