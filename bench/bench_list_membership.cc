// E2 (Examples 1.2 / 4.6): list membership with function symbols.
//
// Paper claim: with every member satisfying p, Prolog computes the O(n^2)
// facts pmem(x_i, [x_j..x_n]); the factored program computes the answer in
// linear time given structure-shared lists. We measure SLD inferences,
// Magic bottom-up facts (Theta(n^2)), and factored bottom-up facts
// (Theta(n)).

#include "bench/bench_util.h"
#include "eval/topdown.h"
#include "workload/list_gen.h"

namespace {

using namespace factlog;

void BM_PmemSld(benchmark::State& state) {
  int64_t n = state.range(0);
  ast::Program program = workload::MakePmemProgram(n);
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
    state.ResumeTiming();
    eval::SldStats stats;
    auto answers = eval::SolveTopDown(program, *program.query(), &db,
                                      eval::SldOptions(), &stats);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      return;
    }
    state.counters["inferences"] = static_cast<double>(stats.inferences);
    state.counters["answers"] = static_cast<double>(answers->rows.size());
  }
  state.SetComplexityN(n);
}

BENCHMARK(BM_PmemSld)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_PmemMagic(benchmark::State& state) {
  int64_t n = state.range(0);
  ast::Program program = workload::MakePmemProgram(n);
  core::PipelineResult pipe = bench::Pipeline(program);
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
    state.ResumeTiming();
    bench::RunAndCount(pipe.magic.program, pipe.magic.query, &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK(BM_PmemMagic)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_PmemFactored(benchmark::State& state) {
  int64_t n = state.range(0);
  ast::Program program = workload::MakePmemProgram(n);
  core::PipelineResult pipe = bench::Pipeline(program);
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeMembershipPredicate(n, 1, 0, "p", &db);
    state.ResumeTiming();
    bench::RunAndCount(*pipe.optimized, pipe.final_query(), &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK(BM_PmemFactored)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Sparse membership: only every k-th element satisfies p. The factored
// program's work stays linear in n (the goal chain dominates).
void BM_PmemFactoredSparse(benchmark::State& state) {
  int64_t n = state.range(0);
  ast::Program program = workload::MakePmemProgram(n);
  core::PipelineResult pipe = bench::Pipeline(program);
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeMembershipPredicate(n, 16, 0, "p", &db);
    state.ResumeTiming();
    bench::RunAndCount(*pipe.optimized, pipe.final_query(), &db, state);
  }
}

BENCHMARK(BM_PmemFactoredSparse)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
