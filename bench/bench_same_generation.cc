// E11 (§6.4 closing remark): same-generation, "the canonical example of a
// program that cannot be factored".
//
// The pipeline correctly refuses to factor; the bench shows what the
// fallback costs: Magic Sets still beats whole-program evaluation by
// restricting to the relevant cone, but the recursive predicate stays
// binary (the index fields of Counting would be *necessary* here).

#include "bench/bench_util.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kSameGeneration[] = R"(
  sg(X, Y) :- flat(X, Y).
  sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
  ?- sg(2, Y).
)";

// `w` parallel ladders of height `d`; adjacent ladder tops are flat-linked.
// The query starts at the bottom of ladder 0 (node 2) and must climb all
// `d` levels. Only ladder 0's cone is relevant; whole-program evaluation
// derives same-generation pairs across all ladders.
void MakeLadders(int64_t w, int64_t d, eval::Database* db) {
  auto id = [d](int64_t ladder, int64_t level) {
    return ladder * (d + 1) + level + 2;
  };
  for (int64_t l = 0; l < w; ++l) {
    for (int64_t i = 0; i < d; ++i) {
      db->AddPair("up", id(l, i), id(l, i + 1));
      db->AddPair("down", id(l, i + 1), id(l, i));
    }
  }
  for (int64_t l = 0; l + 1 < w; ++l) {
    db->AddPair("flat", id(l, d), id(l + 1, d));
  }
}

void BM_SameGeneration(benchmark::State& state, int mode) {
  int64_t d = state.range(0);
  int64_t w = 16;
  ast::Program program = bench::ParseOrDie(kSameGeneration);
  core::PipelineResult pipe = bench::Pipeline(program);
  if (pipe.factoring_applied) {
    state.SkipWithError("same-generation must not factor");
    return;
  }
  const ast::Program* prog = mode == 0 ? &program : &pipe.magic.program;
  const ast::Atom* query = mode == 0 ? &*program.query() : &pipe.magic.query;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    MakeLadders(w, d, &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
  state.counters["depth"] = static_cast<double>(d);
}

BENCHMARK_CAPTURE(BM_SameGeneration, original_seminaive, 0)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SameGeneration, magic, 1)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
