// Shared helpers for the factlog benchmark harness.
//
// Each bench binary regenerates one experiment row from EXPERIMENTS.md. The
// paper reports no machine timings (its evaluation is analytical), so the
// benchmarks report the quantities its claims are about — facts derived and
// rule instantiations — as google-benchmark counters, alongside wall time.

#ifndef FACTLOG_BENCH_BENCH_UTIL_H_
#define FACTLOG_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "ast/parser.h"
#include "core/pipeline.h"
#include "eval/seminaive.h"

namespace factlog::bench {

/// Aborts the benchmark binary on error (benchmarks must not run on broken
/// inputs).
template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

inline ast::Program ParseOrDie(const std::string& text) {
  return OrDie(ast::ParseProgram(text), "parse");
}

/// Runs the full optimization pipeline, aborting on error.
inline core::PipelineResult Pipeline(const ast::Program& program) {
  return OrDie(core::OptimizeQuery(program, *program.query()), "pipeline");
}

/// Compiles the program's query under a strategy, aborting on error.
inline core::CompiledQuery Compile(const ast::Program& program,
                                   core::Strategy strategy) {
  return OrDie(core::CompileQuery(program, *program.query(), strategy),
               core::StrategyToString(strategy));
}

/// Evaluates and records the standard counters on `state`.
inline void RunAndCount(const ast::Program& program, const ast::Atom& query,
                        eval::Database* db, benchmark::State& state,
                        eval::EvalOptions opts = {}) {
  eval::EvalStats stats;
  auto answers = eval::EvaluateQuery(program, query, db, opts, &stats);
  if (!answers.ok()) {
    state.SkipWithError(answers.status().ToString().c_str());
    return;
  }
  state.counters["facts"] = static_cast<double>(stats.total_facts);
  state.counters["instantiations"] = static_cast<double>(stats.instantiations);
  state.counters["answers"] = static_cast<double>(answers->rows.size());
  benchmark::DoNotOptimize(answers->rows.data());
}

}  // namespace factlog::bench

#endif  // FACTLOG_BENCH_BENCH_UTIL_H_
