// E4 (Example 4.4, Theorem 4.2): a symmetric program — two combined rules
// with equivalent middle conjunctions but different left/right filters.
//
// Paper claim: symmetric programs factor even though their left
// conjunctions differ (selection-pushing does not apply); the factored
// program's bp/fp relations replace the binary p_bf.

#include "bench/bench_util.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kSymmetric[] = R"(
  p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
  p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
  p(X, Y) :- e(X, Y), r1(Y), r2(Y).
  ?- p(1, Y).
)";

void MakeWorkload(int64_t n, eval::Database* db) {
  workload::MakeChain(n, "e", db);
  for (int64_t i = 1; i <= n; ++i) {
    // Both rules stay live (the query seed must satisfy a left filter for
    // the recursion to fire at all; the paper's Example 4.4 remark).
    db->AddUnit("l1", i);
    if (i % 2 == 0) db->AddUnit("l2", i);
    db->AddUnit("r1", i);
    db->AddUnit("r2", i);
  }
  // c(U, V, W): advance to max(U, V) + 1.
  for (int64_t u = 1; u <= n; ++u) {
    for (int64_t d = 0; d <= 2 && u + d <= n; ++d) {
      int64_t v = u + d;
      if (v + 1 <= n) db->AddFact(ast::Atom(
          "c", {ast::Term::Int(u), ast::Term::Int(v), ast::Term::Int(v + 1)}));
    }
  }
}

void BM_Symmetric(benchmark::State& state, bool factored) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kSymmetric);
  core::PipelineResult pipe = bench::Pipeline(program);
  if (!pipe.factorability.symmetric) {
    state.SkipWithError("expected a symmetric program");
    return;
  }
  const ast::Program* prog = factored ? &*pipe.optimized : &pipe.magic.program;
  const ast::Atom* query = factored ? &pipe.final_query() : &pipe.magic.query;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    MakeWorkload(n, &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_Symmetric, magic, false)
    ->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_Symmetric, factored, true)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity();

}  // namespace

BENCHMARK_MAIN();
