// E12 (§7.1): re-factoring the factored program.
//
// §7.1 claims the optimized factored program of
//   t(X,Y,Z) :- t(X,U,W), b(U,Y), d(Z).   t(X,Y,Z) :- e(X,Y,Z).
// factors again on the binary ft into ft1(Y) x ft2(Z). Our falsifier shows
// the claim does not hold unconditionally (tests/factoring_test.cc): on
// exit-dominated EDBs ft holds correlated pairs. It IS exact when the exit
// tuples already form a cross product, which this bench uses — measuring
// the arity-reduction payoff the paper was after. The query binds the
// second argument ("If the second argument is bound ... the factored Magic
// program can again be factored ... to yield a unary program"): the binary
// program materializes all Theta(n*k) ft pairs before selecting, the
// re-factored one derives Theta(n + k) unary facts.

#include "bench/bench_util.h"
#include "core/factoring.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kFactoredOnce[] = R"(
  m(1).
  ft(Y, Z) :- ft(U, W), b(U, Y), d(Z).
  ft(Y, Z) :- m(X), e(X, Y, Z).
  ?- ft(Y, 3).
)";

// Exit tuples form a cross product {1} x {1..k}; b advances a chain; d is a
// k-element set: ft is a full cross product of size Theta(n * k).
void MakeWorkload(int64_t n, int64_t k, eval::Database* db) {
  for (int64_t z = 1; z <= k; ++z) {
    db->AddFact(ast::Atom(
        "e", {ast::Term::Int(1), ast::Term::Int(1), ast::Term::Int(z)}));
    db->AddUnit("d", z);
  }
  workload::MakeChain(n, "b", db);
}

void BM_Refactoring(benchmark::State& state, bool refactored) {
  int64_t n = state.range(0);
  int64_t k = 16;
  ast::Program once = bench::ParseOrDie(kFactoredOnce);
  ast::Program program = once;
  ast::Atom query = *once.query();  // ft(Y, 3)
  if (refactored) {
    core::FactorSplit split;
    split.predicate = "ft";
    split.part1 = {0};
    split.part2 = {1};
    split.name1 = "ft1";
    split.name2 = "ft2";
    auto f = bench::OrDie(core::FactorTransform(once, query, split),
                          "factoring");
    program = f.program;
    query = f.query;
  }
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    MakeWorkload(n, k, &db);
    state.ResumeTiming();
    bench::RunAndCount(program, query, &db, state);
  }
  state.counters["k"] = static_cast<double>(k);
}

BENCHMARK_CAPTURE(BM_Refactoring, binary_ft, false)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Refactoring, unary_ft1_ft2, true)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
