// Serving bench: open-loop latency and throughput of the async serving
// subsystem under mixed read/write load, emitting JSON to stdout so the perf
// trajectory can be tracked across PRs.
//
// The scenario is the canonical serving one: a transitive-closure view over
// a random digraph is materialized and served — reads are frozen-view
// snapshot hits, writes stream single-edge inserts/deletes through the
// single-writer maintenance path, each installing a new MVCC epoch. Load is
// OPEN-LOOP: requests arrive on a fixed schedule regardless of completions
// (the honest way to measure a queue — closed-loop hides queueing delay by
// self-throttling), and a request's latency runs from its scheduled arrival
// to its completion callback, so dispatch and queue delay count.
//
// A calibration phase first measures closed-loop service times for reads and
// writes; the offered rate is then set to ~60% of the mix's capacity, in the
// stable region where percentiles are meaningful. Rejections (backpressure)
// are reported, not retried.
//
//   usage: bench_serving [--nodes N] [--edges M] [--requests R]
//                        [--shards S] [--threads T] [--utilization U]
//
//   $ ./bench_serving --requests 4000 | python3 -m json.tool

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "ast/parser.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

constexpr char kLeftTc[] =
    "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y). ?- t(1, Y).";

using Clock = std::chrono::steady_clock;

double MicrosBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             b - a)
      .count();
}

ast::Atom Edge(int64_t a, int64_t b) {
  return ast::Atom("e", {ast::Term::Int(a), ast::Term::Int(b)});
}

// Completion times recorded from pool workers / the writer thread.
struct LatencyRecorder {
  std::mutex mu;
  std::vector<double> us;
  void Add(double v) {
    std::lock_guard<std::mutex> lock(mu);
    us.push_back(v);
  }
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p / 100.0 * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  int64_t nodes = 120;
  int64_t edges = 240;
  size_t requests = 2000;
  size_t shards = 2;
  size_t threads = 1;
  double utilization = 0.6;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--edges") == 0 && i + 1 < argc) {
      edges = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--utilization") == 0 && i + 1 < argc) {
      utilization = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serving [--nodes N] [--edges M] "
                   "[--requests R] [--shards S] [--threads T] "
                   "[--utilization U]\n");
      return 2;
    }
  }
  if (threads == 0) threads = 1;  // serving needs a pool

  auto parsed = ast::ParseProgram(kLeftTc);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const ast::Atom query = *parsed->query();

  api::EngineOptions options;
  options.num_shards = shards;
  options.num_threads = threads;
  api::Engine engine(options);
  workload::MakeChain(nodes, "e", &engine.db());
  workload::MakeRandomGraph(nodes, edges, /*seed=*/42, "e", &engine.db());
  if (auto h = engine.Materialize(*parsed, query); !h.ok()) {
    std::fprintf(stderr, "materialize: %s\n", h.status().ToString().c_str());
    return 1;
  }
  serve::ServeOptions serve_options;
  if (Status st = engine.StartServing(serve_options); !st.ok()) {
    std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
    return 1;
  }
  uint64_t session = engine.OpenSession();

  std::minstd_rand rng(20260807);
  // Fresh-edge writes: insert a random absent edge, delete it again a few
  // writes later (FIFO), so the EDB stays near its initial size and deletes
  // exercise DRed on recently-added edges.
  std::deque<ast::Atom> inserted;
  auto next_write = [&](bool* insert) -> ast::Atom {
    if (inserted.size() >= 8) {
      *insert = false;
      ast::Atom victim = inserted.front();
      inserted.pop_front();
      return victim;
    }
    *insert = true;
    int64_t a = 1 + static_cast<int64_t>(rng() % nodes);
    int64_t b = 1 + static_cast<int64_t>(rng() % nodes);
    ast::Atom fact = Edge(a, b);
    inserted.push_back(fact);
    return fact;
  };

  // ---- Calibration: closed-loop service times ------------------------------
  const size_t kCalReads = 200, kCalWrites = 60;
  auto cal_start = Clock::now();
  for (size_t i = 0; i < kCalReads; ++i) {
    auto resp = engine.SubmitQuery(session, *parsed, query).get();
    if (!resp.status.ok()) {
      std::fprintf(stderr, "calibration read: %s\n",
                   resp.status.ToString().c_str());
      return 1;
    }
  }
  double read_service_us = MicrosBetween(cal_start, Clock::now()) / kCalReads;
  cal_start = Clock::now();
  for (size_t i = 0; i < kCalWrites; ++i) {
    bool insert = false;
    ast::Atom fact = next_write(&insert);
    auto resp = engine.SubmitUpdate(session, insert, fact).get();
    if (!resp.status.ok()) {
      std::fprintf(stderr, "calibration write: %s\n",
                   resp.status.ToString().c_str());
      return 1;
    }
  }
  double write_service_us = MicrosBetween(cal_start, Clock::now()) / kCalWrites;

  std::printf("{\n");
  std::printf("  \"bench\": \"serving\",\n");
  std::printf("  \"schema_version\": 1,\n");
  std::printf("  \"program\": \"left_linear_tc_view\",\n");
  std::printf("  \"nodes\": %lld,\n", static_cast<long long>(nodes));
  std::printf("  \"edges\": %lld,\n", static_cast<long long>(edges));
  std::printf("  \"shards\": %zu,\n", shards);
  std::printf("  \"threads\": %zu,\n", threads);
  std::printf("  \"requests_per_run\": %zu,\n", requests);
  std::printf("  \"utilization\": %.2f,\n", utilization);
  std::printf("  \"closed_loop_read_service_us\": %.1f,\n", read_service_us);
  std::printf("  \"closed_loop_write_service_us\": %.1f,\n", write_service_us);
  std::printf("  \"runs\": [");

  const int kReadPcts[] = {99, 90, 50};
  bool first = true;
  for (int read_pct : kReadPcts) {
    double read_frac = read_pct / 100.0;
    double mean_service_us =
        read_frac * read_service_us + (1.0 - read_frac) * write_service_us;
    double offered_qps = utilization * 1e6 / mean_service_us;
    auto interarrival = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::micro>(1e6 / offered_qps));

    LatencyRecorder read_lat, write_lat;
    std::atomic<size_t> accepted{0}, completed{0}, rejected{0}, errors{0};
    std::atomic<int64_t> last_done_ns{0};
    std::bernoulli_distribution is_read(read_frac);

    auto t0 = Clock::now();
    auto note_done = [&] {
      last_done_ns.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count(),
          std::memory_order_relaxed);
      completed.fetch_add(1, std::memory_order_release);
    };
    for (size_t i = 0; i < requests; ++i) {
      auto scheduled = t0 + interarrival * static_cast<int64_t>(i);
      std::this_thread::sleep_until(scheduled);
      if (is_read(rng)) {
        Status st = engine.SubmitQuery(
            session, *parsed, query, core::Strategy::kAuto,
            [&, scheduled](serve::QueryResponse resp) {
              if (resp.status.ok()) {
                read_lat.Add(MicrosBetween(scheduled, Clock::now()));
              } else {
                errors.fetch_add(1);
              }
              note_done();
            });
        if (st.ok()) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      } else {
        bool insert = false;
        ast::Atom fact = next_write(&insert);
        Status st = engine.SubmitUpdate(
            session, insert, fact, [&, scheduled](serve::UpdateResponse resp) {
              if (resp.status.ok()) {
                write_lat.Add(MicrosBetween(scheduled, Clock::now()));
              } else {
                errors.fetch_add(1);
              }
              note_done();
            });
        if (st.ok()) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    }
    while (completed.load(std::memory_order_acquire) < accepted.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    double wall_s = last_done_ns.load() / 1e9;
    double achieved_qps =
        wall_s > 0 ? static_cast<double>(completed.load()) / wall_s : 0;

    std::sort(read_lat.us.begin(), read_lat.us.end());
    std::sort(write_lat.us.begin(), write_lat.us.end());
    std::printf(
        "%s\n    {\"read_pct\": %d, \"offered_qps\": %.0f, "
        "\"achieved_qps\": %.0f, \"completed\": %zu, \"rejected\": %zu, "
        "\"errors\": %zu, "
        "\"read_p50_us\": %.1f, \"read_p95_us\": %.1f, \"read_p99_us\": "
        "%.1f, "
        "\"write_p50_us\": %.1f, \"write_p95_us\": %.1f, \"write_p99_us\": "
        "%.1f}",
        first ? "" : ",", read_pct, offered_qps, achieved_qps,
        completed.load(), rejected.load(), errors.load(),
        Percentile(read_lat.us, 50), Percentile(read_lat.us, 95),
        Percentile(read_lat.us, 99), Percentile(write_lat.us, 50),
        Percentile(write_lat.us, 95), Percentile(write_lat.us, 99));
    first = false;
  }
  serve::ServerStats stats = engine.serving_stats();
  std::printf("\n  ],\n");
  std::printf("  \"epochs_installed\": %llu,\n",
              static_cast<unsigned long long>(stats.epochs_installed));
  std::printf("  \"final_epoch\": %llu\n",
              static_cast<unsigned long long>(engine.serving_epoch()));
  std::printf("}\n");

  engine.CloseSession(session);
  engine.StopServing();
  return 0;
}
