// E3 (Example 4.3, Theorem 4.1): a selection-pushing program with combined,
// right-linear, and exit rules (the Example 4.3 shape with the containment
// conditions made syntactically valid).
//
// Paper claim: factoring the Magic program replaces the binary p_bf by the
// unary bp/fp pair; the evaluation then never materializes (goal, answer)
// pairs.

#include "bench/bench_util.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kSelectionPushing[] = R"(
  p(X, Y) :- l(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
  p(X, Y) :- l(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
  p(X, Y) :- l(X), f(X, V), p(V, Y), r3(Y).
  p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).
  ?- p(1, Y).
)";

// A layered workload: base chain e, unit filters satisfied everywhere,
// c1/c2 advancing by one, f by two.
void MakeWorkload(int64_t n, eval::Database* db) {
  workload::MakeChain(n, "e", db);
  for (int64_t i = 1; i <= n; ++i) {
    db->AddUnit("l", i);
    db->AddUnit("r1", i);
    db->AddUnit("r2", i);
    db->AddUnit("r3", i);
    if (i + 1 <= n) {
      db->AddPair("c1", i, i + 1);
      db->AddPair("c2", i + 1, i);
    }
    if (i + 2 <= n) db->AddPair("f", i, i + 2);
  }
}

void BM_SelectionPushing(benchmark::State& state, bool factored) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kSelectionPushing);
  core::PipelineResult pipe = bench::Pipeline(program);
  if (!pipe.factoring_applied) {
    state.SkipWithError("expected the program to factor");
    return;
  }
  const ast::Program* prog = factored ? &*pipe.optimized : &pipe.magic.program;
  const ast::Atom* query = factored ? &pipe.final_query() : &pipe.magic.query;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    MakeWorkload(n, &db);
    state.ResumeTiming();
    bench::RunAndCount(*prog, *query, &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_SelectionPushing, magic, false)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_SelectionPushing, factored, true)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

}  // namespace

BENCHMARK_MAIN();
