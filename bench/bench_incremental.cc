// Incremental-maintenance bench: the cost of keeping a materialized view
// correct under EDB updates versus re-running the fixpoint, across update
// batch sizes, emitting JSON to stdout so the perf trajectory can be tracked
// across PRs.
//
// The workload is left-linear TC with the bound query t(1, Y) — the
// canonical serving scenario: one expensive materialization, then a stream
// of single-edge updates. Two regimes are measured, because DRed's cost is
// the size of the over-deletion cone, not of the update:
//
//   * chain_plus_random: insertions of fresh random edges and their
//     deletions. Inserting is delta-sized; deleting a random edge in a
//     well-connected digraph used to be the regression — textbook DRed
//     over-deletes almost the whole reachable set before re-deriving it.
//     The edge-guided slice walks only the actual derivation cone and prunes
//     facts with surviving alternate derivations, so this row is now a win
//     too; the per-op counters (cone_input / cone_pruned / over_deleted /
//     rederived) show why.
//   * chain: deletion and re-insertion of edges near the chain's tail. The
//     affected cone is the short suffix, so maintenance is delta-sized —
//     the case incremental maintenance exists for.
//
// Every batch restores the initial EDB, and the maintained answers are
// verified against a from-scratch evaluation; a mismatch exits nonzero.
// `speedup_vs_reeval` is the regime's full re-evaluation time over
// per-update maintenance time.
//
//   usage: bench_incremental [--nodes N] [--edges M] [--reps R]
//                            [--batches 1,8,64] [--shards S] [--threads T]
//                            [--edge-budget E]
//
// --edge-budget caps the derivation-edge store (0 disables it entirely,
// forcing the DRed fallback) — the knob for comparing the two deletion
// regimes on identical workloads.
//
//   $ ./bench_incremental --nodes 250 | python3 -m json.tool

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "ast/parser.h"
#include "eval/seminaive.h"
#include "inc/incremental.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

constexpr char kLeftTc[] =
    "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, W), e(W, Y). ?- t(1, Y).";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void MakeWorkload(int64_t nodes, int64_t edges, eval::Database* db) {
  workload::MakeChain(nodes, "e", db);
  workload::MakeRandomGraph(nodes, edges, /*seed=*/42, "e", db);
}

std::vector<size_t> ParseCountList(const char* arg) {
  std::vector<size_t> out;
  std::string s(arg);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string item = s.substr(pos, comma - pos);
    char* end = nullptr;
    unsigned long v = std::strtoul(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || v == 0 || v > 65536) return {};
    out.push_back(static_cast<size_t>(v));
    pos = comma + 1;
  }
  return out;
}

ast::Atom Edge(int64_t a, int64_t b) {
  return ast::Atom("e", {ast::Term::Int(a), ast::Term::Int(b)});
}

}  // namespace

int main(int argc, char** argv) {
  int64_t nodes = 250;
  int64_t edges = 500;
  int reps = 3;
  size_t shards = 1;
  size_t threads = 0;
  uint64_t edge_budget = uint64_t{1} << 22;
  std::vector<size_t> batches = {1, 8, 64};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--edges") == 0 && i + 1 < argc) {
      edges = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--edge-budget") == 0 && i + 1 < argc) {
      edge_budget = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = ParseCountList(argv[++i]);
      if (batches.empty()) {
        std::fprintf(stderr, "invalid --batches list: %s\n", argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_incremental [--nodes N] [--edges M] "
                   "[--reps R] [--batches 1,8,64] [--shards S] "
                   "[--threads T] [--edge-budget E]\n");
      return 2;
    }
  }

  auto parsed = ast::ParseProgram(kLeftTc);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"incremental\",\n");
  std::printf("  \"schema_version\": 2,\n");
  std::printf("  \"program\": \"left_linear_tc\",\n");
  std::printf("  \"nodes\": %lld,\n", static_cast<long long>(nodes));
  std::printf("  \"edges\": %lld,\n", static_cast<long long>(edges));
  std::printf("  \"shards\": %zu,\n", shards);
  std::printf("  \"threads\": %zu,\n", threads);
  std::printf("  \"edge_budget\": %llu,\n",
              static_cast<unsigned long long>(edge_budget));
  std::printf("  \"reps\": %d,\n", reps);
  std::printf("  \"runs\": [");

  bool ok = true;
  bool first = true;
  std::minstd_rand rng(20260731);

  struct Scenario {
    const char* name;
    bool random_extras;
  };
  const Scenario scenarios[] = {{"chain_plus_random", true}, {"chain", false}};
  for (const Scenario& scenario : scenarios) {
    api::EngineOptions options;
    options.num_shards = shards;
    options.num_threads = threads;
    options.inc_max_derivation_edges = edge_budget;
    api::Engine engine(options);
    if (scenario.random_extras) {
      MakeWorkload(nodes, edges, &engine.db());
    } else {
      workload::MakeChain(nodes, "e", &engine.db());
    }
    auto plan = engine.Compile(*parsed, *parsed->query());
    if (!plan.ok()) {
      std::fprintf(stderr, "compile: %s\n", plan.status().ToString().c_str());
      return 1;
    }

    // Baseline: the fixpoint a non-incremental engine re-runs per update.
    double full_ms = 0;
    uint64_t tc_facts = 0;
    for (int r = 0; r < reps; ++r) {
      auto start = std::chrono::steady_clock::now();
      eval::EvalStats stats;
      auto answers = eval::EvaluateQuery((*plan)->program, (*plan)->query,
                                         &engine.db(), {}, &stats);
      double ms = MillisSince(start);
      if (!answers.ok()) {
        std::fprintf(stderr, "baseline: %s\n",
                     answers.status().ToString().c_str());
        return 1;
      }
      tc_facts = stats.total_facts;
      full_ms = (r == 0) ? ms : std::min(full_ms, ms);
    }
    auto handle = engine.Materialize(*parsed, *parsed->query());
    if (!handle.ok()) {
      std::fprintf(stderr, "materialize: %s\n",
                   handle.status().ToString().c_str());
      return 1;
    }
    auto baseline_answers = engine.Query(*parsed, *parsed->query());
    if (!baseline_answers.ok()) return 1;
    const size_t initial_answers = baseline_answers->rows.size();

    // Fresh random edges (absent from the graph) for the insert/delete
    // cycle; tail chain edges for the localized delete/re-insert cycle.
    auto fresh_edge = [&]() {
      while (true) {
        int64_t a = 1 + static_cast<int64_t>(rng() % nodes);
        int64_t b = 1 + static_cast<int64_t>(rng() % nodes);
        ast::Atom fact = Edge(a, b);
        auto row = engine.db().InternRow(fact);
        const eval::Relation* rel = engine.db().Find("e");
        if (row.ok() && rel != nullptr && !rel->Contains(row->data())) {
          return fact;
        }
      }
    };

    for (size_t batch : batches) {
      std::vector<ast::Atom> facts;
      facts.reserve(batch);
      const char* op_add;
      const char* op_remove;
      bool remove_first;
      if (scenario.random_extras) {
        op_add = "insert_random";
        op_remove = "delete_random";
        remove_first = false;
        for (size_t i = 0; i < batch; ++i) facts.push_back(fresh_edge());
      } else {
        op_add = "insert_tail";
        op_remove = "delete_tail";
        remove_first = true;
        for (size_t i = 0; i < batch && static_cast<int64_t>(i) < nodes - 1;
             ++i) {
          int64_t k = nodes - 1 - static_cast<int64_t>(i);
          facts.push_back(Edge(k, k + 1));
        }
      }

      struct Timed {
        const char* op;
        double total_ms;
        inc::ViewUpdateStats delta;  // counters accumulated over the batch
      };
      std::vector<Timed> timings;
      auto view_stats = [&]() -> inc::ViewStats {
        auto stats = engine.ViewStatsFor(*handle);
        return stats.ok() ? *stats : inc::ViewStats{};
      };
      auto run_adds = [&]() -> bool {
        const inc::ViewUpdateStats before = view_stats();
        auto start = std::chrono::steady_clock::now();
        for (const ast::Atom& f : facts) {
          Status st = engine.AddFact(f);
          if (!st.ok()) {
            std::fprintf(stderr, "AddFact: %s\n", st.ToString().c_str());
            return false;
          }
        }
        double ms = MillisSince(start);
        timings.push_back({op_add, ms, view_stats().Since(before)});
        return true;
      };
      auto run_removes = [&]() -> bool {
        const inc::ViewUpdateStats before = view_stats();
        auto start = std::chrono::steady_clock::now();
        for (const ast::Atom& f : facts) {
          Status st = engine.RemoveFact(f);
          if (!st.ok()) {
            std::fprintf(stderr, "RemoveFact: %s\n", st.ToString().c_str());
            return false;
          }
        }
        double ms = MillisSince(start);
        timings.push_back({op_remove, ms, view_stats().Since(before)});
        return true;
      };
      if (remove_first) {
        if (!run_removes() || !run_adds()) return 1;
      } else {
        if (!run_adds() || !run_removes()) return 1;
      }

      // Back at the initial EDB: the maintained answers must equal scratch.
      auto from_view = engine.Query(*parsed, *parsed->query());
      auto scratch = eval::EvaluateQuery((*plan)->program, (*plan)->query,
                                         &engine.db());
      bool matches = from_view.ok() && scratch.ok() &&
                     from_view->rows == scratch->rows &&
                     from_view->rows.size() == initial_answers;
      if (!matches) ok = false;

      for (const Timed& t : timings) {
        size_t updates = facts.size();
        double per_update = t.total_ms / static_cast<double>(updates);
        std::printf("%s\n    {\"workload\": \"%s\", \"tc_facts\": %llu, "
                    "\"full_reeval_ms\": %.3f, \"batch\": %zu, "
                    "\"op\": \"%s\", \"total_ms\": %.3f, "
                    "\"per_update_ms\": %.4f, \"speedup_vs_reeval\": %.1f, "
                    "\"cone_input\": %llu, \"cone_pruned\": %llu, "
                    "\"over_deleted\": %llu, \"rederived\": %llu, "
                    "\"edges_added\": %llu, \"edges_removed\": %llu, "
                    "\"matches\": %s}",
                    first ? "" : ",", scenario.name,
                    static_cast<unsigned long long>(tc_facts), full_ms, batch,
                    t.op, t.total_ms, per_update,
                    per_update > 0 ? full_ms / per_update : 0.0,
                    static_cast<unsigned long long>(t.delta.cone_input),
                    static_cast<unsigned long long>(t.delta.cone_pruned),
                    static_cast<unsigned long long>(t.delta.overdeleted),
                    static_cast<unsigned long long>(t.delta.rederived),
                    static_cast<unsigned long long>(t.delta.edges_added),
                    static_cast<unsigned long long>(t.delta.edges_removed),
                    matches ? "true" : "false");
        first = false;
      }
    }
  }
  std::printf("\n  ]\n}\n");

  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: maintained view diverged from from-scratch "
                 "evaluation\n");
    return 1;
  }
  return 0;
}
