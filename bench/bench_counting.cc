// E8 (§6.4, Theorem 6.4): Counting vs Magic vs factoring on right-linear
// recursion.
//
// Paper claims:
//  * Counting also reduces the arity, but pays for index maintenance:
//    answers are replayed at every goal depth (Theta(n^2) indexed answer
//    facts on a chain), whereas the factored program is Theta(n).
//  * After deleting index fields, the Counting program IS the factored
//    program (checked structurally in tests/counting_test.cc); the bench
//    shows the index overhead the deletion removes.
//  * On left-linear rules Counting does not terminate: reproduced via the
//    fact budget (reported as the `diverged` counter).

#include "bench/bench_util.h"
#include "transform/counting.h"
#include "workload/graph_gen.h"

namespace {

using namespace factlog;

const char kRightTc[] = R"(
  t(X, Y) :- e(X, W), t(W, Y).
  t(X, Y) :- e(X, Y).
  ?- t(1, Y).
)";

void BM_RightLinear(benchmark::State& state, core::Strategy strategy) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(kRightTc);
  core::CompiledQuery plan = bench::Compile(program, strategy);
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(n, "e", &db);
    state.ResumeTiming();
    bench::RunAndCount(plan.program, plan.query, &db, state);
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_RightLinear, magic, core::Strategy::kMagic)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_RightLinear, factored, core::Strategy::kFactoring)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK_CAPTURE(BM_RightLinear, counting, core::Strategy::kCounting)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Left-linear rules: Counting generates cnt(X, I+1) :- cnt(X, I) and the
// evaluation hits its budget. The counter reports how many facts were
// derived before the budget stopped it (factoring handles the same program
// in Theta(n)).
void BM_LeftLinearCountingDiverges(benchmark::State& state) {
  int64_t n = state.range(0);
  ast::Program program = bench::ParseOrDie(R"(
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, Y).
    ?- t(1, Y).
  )");
  core::CompiledQuery counting =
      bench::Compile(program, core::Strategy::kCounting);
  eval::EvalOptions opts;
  opts.max_facts = 50'000;
  int64_t diverged = 0;
  for (auto _ : state) {
    state.PauseTiming();
    eval::Database db;
    workload::MakeChain(n, "e", &db);
    state.ResumeTiming();
    auto answers =
        eval::EvaluateQuery(counting.program, counting.query, &db, opts);
    if (!answers.ok() &&
        answers.status().code() == StatusCode::kResourceExhausted) {
      ++diverged;
    }
  }
  state.counters["diverged"] = static_cast<double>(diverged);
  state.counters["budget"] = static_cast<double>(opts.max_facts);
}

BENCHMARK(BM_LeftLinearCountingDiverges)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
