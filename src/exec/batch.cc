#include "exec/batch.h"

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "eval/rule_eval.h"

namespace factlog::exec {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

namespace {

// Builds the base-relation indices a program's plan declares, plus the
// answer-extraction probe index for `query`. The plan's per-literal
// index_cols ARE the probe keys the plan-ordered join uses, so warmup does
// exactly the needed work — the old StaticIndexCols re-walk predicted
// left-to-right probes the planned join never issues.
Status PrewarmFromPlan(const ast::Program& program,
                       const plan::ProgramPlan& program_plan,
                       const ast::Atom* query, eval::Database* db) {
  std::set<std::string> idb = program.IdbPredicates();
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const ast::Rule& rule = program.rules()[i];
    for (const plan::LiteralPlan& lp : program_plan.rules[i].order) {
      if (!lp.is_relation || lp.index_cols.empty()) continue;
      const std::string& pred = rule.body()[lp.body_index].predicate();
      if (idb.count(pred) > 0) continue;  // private per query
      eval::Relation* rel = db->Find(pred);
      if (rel != nullptr) rel->EnsureIndex(lp.index_cols);
    }
  }
  if (query != nullptr && idb.count(query->predicate()) == 0) {
    // Answer extraction probes the query predicate on the query's ground
    // argument positions; warm that index too when the predicate is a base
    // relation.
    std::vector<int> cols;
    for (size_t i = 0; i < query->arity(); ++i) {
      if (query->args()[i].IsGround()) cols.push_back(static_cast<int>(i));
    }
    eval::Relation* rel = db->Find(query->predicate());
    if (rel != nullptr && !cols.empty()) rel->EnsureIndex(cols);
  }
  return Status::OK();
}

}  // namespace

Status PrewarmIndexes(const core::CompiledQuery& plan, eval::Database* db) {
  if (plan.plans.Compatible(plan.program)) {
    return PrewarmFromPlan(plan.program, plan.plans, &plan.query, db);
  }
  // A plan-less CompiledQuery (hand-built, e.g. in tests): fall back to
  // planning on the spot.
  return PrewarmIndexes(plan.program, &plan.query, db);
}

Status PrewarmIndexes(const ast::Program& program, const ast::Atom* query,
                      eval::Database* db) {
  eval::EvalOptions opts;  // defaults: planned order, no precomputed plan
  plan::ProgramPlan program_plan = eval::PlanForEvaluation(program, *db, opts);
  return PrewarmFromPlan(program, program_plan, query, db);
}

Result<BatchResult> RunBatch(ThreadPool* pool, eval::Database* db,
                             size_t num_queries, const BatchCompileFn& compile,
                             const eval::EvalOptions& eval_options) {
  const auto wall_start = std::chrono::steady_clock::now();
  BatchResult result;
  result.answers.resize(num_queries);
  result.stats.resize(num_queries);
  result.summary.queries = num_queries;
  result.summary.threads = pool == nullptr ? 0 : pool->num_threads();

  // Phase 1: compile every query on the pool. The compile callback is
  // responsible for its own synchronization (the engine's plan cache mutex);
  // identical queries racing to a cold cache at worst compile twice.
  std::vector<std::shared_ptr<const core::CompiledQuery>> plans(num_queries);
  auto compile_one = [&](size_t i) {
    auto plan = compile(i, &result.stats[i]);
    if (plan.ok()) {
      plans[i] = std::move(plan).value();
    } else {
      result.stats[i].status = plan.status();
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_queries, compile_one);
  } else {
    for (size_t i = 0; i < num_queries; ++i) compile_one(i);
  }

  // Phase 2 (control thread): resolve the join plan each query will
  // evaluate with — the compiled query's stored plan under kPlanned, the
  // identity (source-order) plan under kLeftToRight — and pre-build exactly
  // the base-relation indices that plan declares, so the execute phase
  // stays on the const read path. Prewarm and evaluation must use the SAME
  // plan: a mismatch would silently degrade shared-EDB probes to full
  // scans. Plans are shared via the cache, so each one resolves once.
  eval::EvalOptions exec_opts = eval_options;
  exec_opts.strategy = eval::Strategy::kSemiNaive;
  exec_opts.track_provenance = false;
  exec_opts.shared_edb = true;
  std::map<const core::CompiledQuery*, std::unique_ptr<plan::ProgramPlan>>
      resolved_plans;
  for (size_t i = 0; i < num_queries; ++i) {
    if (plans[i] == nullptr) continue;
    auto [it, inserted] = resolved_plans.try_emplace(plans[i].get());
    if (!inserted) continue;
    eval::EvalOptions resolve_opts = exec_opts;
    resolve_opts.program_plan = &plans[i]->plans;
    it->second = std::make_unique<plan::ProgramPlan>(
        eval::PlanForEvaluation(plans[i]->program, *db, resolve_opts));
    Status warmed = PrewarmFromPlan(plans[i]->program, *it->second,
                                    &plans[i]->query, db);
    if (!warmed.ok()) {
      result.stats[i].status = warmed;
      plans[i] = nullptr;
    }
  }

  // Phase 3: evaluate concurrently. Each query gets private IDB state; the
  // shared EDB is read-only and the ValueStore interns under its own mutex.
  auto execute_one = [&](size_t i) {
    if (plans[i] == nullptr) return;
    const auto start = std::chrono::steady_clock::now();
    eval::EvalStats eval_stats;
    // Evaluate with the exact plan the prewarm phase built indices for
    // (resolved_plans outlives the parallel region).
    eval::EvalOptions query_opts = exec_opts;
    query_opts.program_plan = resolved_plans.at(plans[i].get()).get();
    auto answers = eval::EvaluateQuery(plans[i]->program, plans[i]->query, db,
                                       query_opts, &eval_stats);
    result.stats[i].execute_us = MicrosSince(start);
    result.stats[i].iterations = eval_stats.iterations;
    result.stats[i].total_facts = eval_stats.total_facts;
    result.stats[i].shard_facts = std::move(eval_stats.shard_facts);
    if (answers.ok()) {
      result.stats[i].num_answers = answers->size();
      result.answers[i] = std::move(answers).value();
    } else {
      result.stats[i].status = answers.status();
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_queries, execute_one);
  } else {
    for (size_t i = 0; i < num_queries; ++i) execute_one(i);
  }

  for (const ExecStats& s : result.stats) {
    result.summary.sum_execute_us += s.execute_us;
    if (s.status.ok()) {
      ++result.summary.succeeded;
    } else {
      ++result.summary.failed;
    }
  }
  result.summary.wall_us = MicrosSince(wall_start);
  return result;
}

}  // namespace factlog::exec
