#include "exec/batch.h"

#include <chrono>
#include <set>
#include <utility>

#include "eval/rule_eval.h"

namespace factlog::exec {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Status PrewarmIndexes(const ast::Program& program, const ast::Atom* query,
                      eval::Database* db) {
  std::set<std::string> idb = program.IdbPredicates();
  auto warm_rule = [&](const ast::Rule& rule) -> Status {
    FACTLOG_ASSIGN_OR_RETURN(eval::CompiledRule compiled,
                             eval::CompiledRule::Compile(rule, &db->store()));
    std::vector<std::vector<int>> cols = eval::StaticIndexCols(compiled);
    for (size_t k = 0; k < compiled.body().size(); ++k) {
      const eval::CompiledAtom& lit = compiled.body()[k];
      if (lit.kind != eval::LitKind::kRelation || cols[k].empty()) continue;
      if (idb.count(lit.predicate) > 0) continue;  // private per query
      eval::Relation* rel = db->Find(lit.predicate);
      if (rel != nullptr) rel->EnsureIndex(cols[k]);
    }
    return Status::OK();
  };
  for (const ast::Rule& rule : program.rules()) {
    FACTLOG_RETURN_IF_ERROR(warm_rule(rule));
  }
  if (query != nullptr && idb.count(query->predicate()) == 0) {
    // Answer extraction probes the query predicate with the query's ground
    // positions; warm that index too when the predicate is a base relation.
    std::vector<ast::Term> head_args;
    for (const std::string& v : query->DistinctVars()) {
      head_args.push_back(ast::Term::Var(v));
    }
    FACTLOG_RETURN_IF_ERROR(warm_rule(
        ast::Rule(ast::Atom("__ans", std::move(head_args)), {*query})));
  }
  return Status::OK();
}

Result<BatchResult> RunBatch(ThreadPool* pool, eval::Database* db,
                             size_t num_queries, const BatchCompileFn& compile,
                             const eval::EvalOptions& eval_options) {
  const auto wall_start = std::chrono::steady_clock::now();
  BatchResult result;
  result.answers.resize(num_queries);
  result.stats.resize(num_queries);
  result.summary.queries = num_queries;
  result.summary.threads = pool == nullptr ? 0 : pool->num_threads();

  // Phase 1: compile every query on the pool. The compile callback is
  // responsible for its own synchronization (the engine's plan cache mutex);
  // identical queries racing to a cold cache at worst compile twice.
  std::vector<std::shared_ptr<const core::CompiledQuery>> plans(num_queries);
  auto compile_one = [&](size_t i) {
    auto plan = compile(i, &result.stats[i]);
    if (plan.ok()) {
      plans[i] = std::move(plan).value();
    } else {
      result.stats[i].status = plan.status();
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_queries, compile_one);
  } else {
    for (size_t i = 0; i < num_queries; ++i) compile_one(i);
  }

  // Phase 2 (control thread): pre-build the base-relation indices the
  // compiled programs will probe, so the execute phase stays on the const
  // read path. Plans are shared via the cache, so prewarm each one once.
  std::set<const core::CompiledQuery*> warmed_plans;
  for (size_t i = 0; i < num_queries; ++i) {
    if (plans[i] == nullptr) continue;
    if (!warmed_plans.insert(plans[i].get()).second) continue;
    Status warmed = PrewarmIndexes(plans[i]->program, &plans[i]->query, db);
    if (!warmed.ok()) {
      result.stats[i].status = warmed;
      plans[i] = nullptr;
    }
  }

  // Phase 3: evaluate concurrently. Each query gets private IDB state; the
  // shared EDB is read-only and the ValueStore interns under its own mutex.
  eval::EvalOptions exec_opts = eval_options;
  exec_opts.strategy = eval::Strategy::kSemiNaive;
  exec_opts.track_provenance = false;
  exec_opts.shared_edb = true;
  auto execute_one = [&](size_t i) {
    if (plans[i] == nullptr) return;
    const auto start = std::chrono::steady_clock::now();
    eval::EvalStats eval_stats;
    auto answers = eval::EvaluateQuery(plans[i]->program, plans[i]->query, db,
                                       exec_opts, &eval_stats);
    result.stats[i].execute_us = MicrosSince(start);
    result.stats[i].iterations = eval_stats.iterations;
    result.stats[i].total_facts = eval_stats.total_facts;
    result.stats[i].shard_facts = std::move(eval_stats.shard_facts);
    if (answers.ok()) {
      result.stats[i].num_answers = answers->size();
      result.answers[i] = std::move(answers).value();
    } else {
      result.stats[i].status = answers.status();
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_queries, execute_one);
  } else {
    for (size_t i = 0; i < num_queries; ++i) execute_one(i);
  }

  for (const ExecStats& s : result.stats) {
    result.summary.sum_execute_us += s.execute_us;
    if (s.status.ok()) {
      ++result.summary.succeeded;
    } else {
      ++result.summary.failed;
    }
  }
  result.summary.wall_us = MicrosSince(wall_start);
  return result;
}

}  // namespace factlog::exec
