#include "exec/parallel_seminaive.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "eval/rule_eval.h"

namespace factlog::exec {

namespace {

using eval::CompiledAtom;
using eval::CompiledRule;
using eval::Database;
using eval::EvalResult;
using eval::JoinStats;
using eval::LitKind;
using eval::Relation;
using eval::RelationView;
using eval::StorageOptions;
using eval::ValueId;

class ParallelEngine {
 public:
  ParallelEngine(const ast::Program& program, Database* db, ThreadPool* pool,
                 const ParallelEvalOptions& opts)
      : program_(program), db_(db), pool_(pool), opts_(opts) {}

  Result<EvalResult> Run() {
    if (opts_.eval.track_provenance) {
      return Status::Invalid(
          "parallel evaluation does not record provenance; use the "
          "sequential evaluator (eval::Evaluate) for derivation trees");
    }
    FACTLOG_RETURN_IF_ERROR(Prepare());
    FACTLOG_RETURN_IF_ERROR(SeedBaseRules());
    FACTLOG_RETURN_IF_ERROR(RunFixpoint());
    return Finish();
  }

 private:
  struct PredState {
    std::unique_ptr<Relation> full;
    std::unique_ptr<Relation> delta;
    std::unique_ptr<Relation> next;
    // One lock per storage shard: workers merging different shards of the
    // same head predicate never contend.
    std::unique_ptr<std::mutex[]> shard_locks;
    size_t num_shards = 1;
  };

  // One (rule, recursive-occurrence) delta pass of the current iteration.
  // Partitioning follows the rule's join plan:
  //   * when the occurrence IS the plan's driver literal, the delta's shards
  //     are the work partitions (by_shard; one task per shard), or one task
  //     aliases the whole delta when it is too small to fan out;
  //   * when the driver is a different literal (the delta occurrence sits
  //     deeper in the plan), the pass partitions the driver literal's frozen
  //     extent instead (by_driver; one task per (member relation, shard)) and
  //     every task probes the whole delta — without this, each delta-shard
  //     task would re-enumerate the rule prefix, duplicating the outer scan
  //     once per shard.
  struct Pass {
    size_t rule = 0;
    size_t occ = 0;
    const Relation* delta_rel = nullptr;
    bool by_shard = false;
    bool by_driver = false;
    size_t driver_pos = 0;  // compiled body position of the plan's driver
    // Driver partitions: (member relation of the driver's union view, shard
    // index within it or -1 for the whole member).
    std::vector<std::pair<const Relation*, int>> driver_parts;
    PredState* head_state = nullptr;
  };

  struct TaskRef {
    size_t pass = 0;
    size_t part = 0;  // shard / driver-part index when the pass fans out
  };

  // Iteration-0 task: rule `rule` with relation literal `lit` restricted to
  // shard `shard` of its base relation's extent.
  struct SeedTask {
    size_t rule = 0;
    size_t lit = 0;
    size_t shard = 0;
  };

  struct TaskResult {
    JoinStats stats;
    size_t rule = 0;  // for per-rule stats folding
    Status status = Status::OK();
  };

  size_t PoolWidth() const {
    return pool_ == nullptr ? 0 : pool_->num_threads();
  }

  Status Prepare() {
    FACTLOG_RETURN_IF_ERROR(program_.Validate());
    idb_preds_ = program_.IdbPredicates();
    plan_ = eval::PlanForEvaluation(program_, *db_, opts_.eval);
    rules_.reserve(program_.rules().size());
    for (size_t i = 0; i < program_.rules().size(); ++i) {
      FACTLOG_ASSIGN_OR_RETURN(
          CompiledRule cr,
          CompiledRule::Compile(program_.rules()[i], &db_->store(),
                                &plan_.rules[i]));
      // The compiled body is in plan order, so the plan's declared index
      // requirements line up with the compiled literals: cols_[i][k] is the
      // key literal k is probed with — no re-walk of StaticIndexCols.
      std::vector<std::vector<int>> cols;
      int driver = -1;
      for (size_t k = 0; k < plan_.rules[i].order.size(); ++k) {
        const plan::LiteralPlan& lp = plan_.rules[i].order[k];
        cols.push_back(lp.index_cols);
        if (driver < 0 && lp.is_relation) driver = static_cast<int>(k);
      }
      cols_.push_back(std::move(cols));
      driver_pos_.push_back(driver);
      rules_.push_back(std::move(cr));
    }
    rule_stats_.resize(rules_.size());

    size_t shards = opts_.num_shards > 0 ? opts_.num_shards
                                         : db_->storage_options().num_shards;
    shards = std::max<size_t>(1, shards);
    auto arities = program_.PredicateArities();
    for (const std::string& p : idb_preds_) {
      // Partition each IDB relation on the plan's probe columns of its first
      // recursive occurrence, so delta shards line up with the key the join
      // probes them with; column 0 when every occurrence is probed unbound.
      StorageOptions storage;
      storage.num_shards = shards;
      for (size_t i = 0;
           i < rules_.size() && storage.partition_cols.empty(); ++i) {
        for (size_t j = 0; j < rules_[i].body().size(); ++j) {
          const CompiledAtom& lit = rules_[i].body()[j];
          if (lit.kind == LitKind::kRelation && lit.predicate == p &&
              !cols_[i][j].empty()) {
            storage.partition_cols = cols_[i][j];
            break;
          }
        }
      }
      size_t arity = arities.at(p);
      PredState st;
      st.full = std::make_unique<Relation>(arity, storage);
      st.delta = std::make_unique<Relation>(arity, storage);
      st.next = std::make_unique<Relation>(arity, storage);
      st.num_shards = st.next->shard_count();
      st.shard_locks = std::make_unique<std::mutex[]>(st.num_shards);
      preds_.emplace(p, std::move(st));
    }
    // Saturating 2x slack over the fact budget: cross-task duplicates make
    // the in-flight counter an overestimate, so the hard mid-iteration trip
    // wire sits above the exact post-iteration check.
    uint64_t max = opts_.eval.max_facts;
    budget_trip_ = max > (UINT64_MAX - 1024) / 2 ? UINT64_MAX : 2 * max + 1024;
    return Status::OK();
  }

  bool IsIdb(const std::string& pred) const {
    return idb_preds_.count(pred) > 0;
  }

  uint64_t TotalIdbFacts() const {
    uint64_t n = 0;
    for (const auto& [name, st] : preds_) {
      n += st.full->size() + st.delta->size() + st.next->size();
    }
    return n;
  }

  // The frozen extent of body literal k for one fixpoint task (every view is
  // shared: workers never mutate relations during the parallel region).
  // `occ_rows` is the occurrence's extent: one delta shard or the whole
  // delta.
  RelationView ViewFor(const Pass& pass, size_t k, const Relation* occ_rows) {
    const CompiledAtom& lit = rules_[pass.rule].body()[k];
    if (lit.kind != LitKind::kRelation) return RelationView{};
    if (!IsIdb(lit.predicate)) {
      return RelationView{db_->Find(lit.predicate), nullptr, /*shared=*/true};
    }
    PredState& st = preds_.at(lit.predicate);
    if (k == pass.occ) {
      // The join never mutates a shared view, so the const_cast only bridges
      // RelationView's (sequential-engine) mutable pointers.
      return RelationView{const_cast<Relation*>(occ_rows), nullptr,
                          /*shared=*/true};
    }
    if (k < pass.occ) {
      // This round's view of F_i: full union delta.
      return RelationView{st.full.get(), st.delta.get(), /*shared=*/true};
    }
    return RelationView{st.full.get(), nullptr, /*shared=*/true};
  }

  // Merges a worker's thread-local buffer into `target` under the head
  // predicate's per-shard locks (see MergeBufferLocked).
  void MergeBuffer(PredState* st, Relation* target, const Relation& buffer) {
    MergeBufferLocked(target, buffer, st->shard_locks.get());
  }

  // True when `row` being buffered pushed the in-flight fact estimate past
  // the trip wire (sets the cancellation flags).
  bool BudgetTripped() {
    uint64_t inflight = iteration_base_ +
                        new_rows_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (inflight <= budget_trip_) return false;
    budget_tripped_.store(true, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
    return true;
  }

  Status BudgetExceeded() const {
    return Status::ResourceExhausted(
        "fact budget exceeded (" + std::to_string(opts_.eval.max_facts) +
        "); program may not terminate");
  }

  // Folds the per-task results into the per-rule stats, failing on the first
  // task error or a tripped budget, and re-arms the cancellation flag.
  Status DrainTaskResults(std::vector<TaskResult>* results) {
    for (TaskResult& r : *results) {
      FACTLOG_RETURN_IF_ERROR(r.status);
      JoinStats& js = rule_stats_[r.rule];
      js.rows_matched += r.stats.rows_matched;
      js.instantiations += r.stats.instantiations;
      if (js.lit_probes.size() < r.stats.lit_probes.size()) {
        js.lit_probes.resize(r.stats.lit_probes.size(), 0);
        js.lit_matched.resize(r.stats.lit_probes.size(), 0);
      }
      for (size_t k = 0; k < r.stats.lit_probes.size(); ++k) {
        js.lit_probes[k] += r.stats.lit_probes[k];
        js.lit_matched[k] += r.stats.lit_matched[k];
      }
    }
    if (budget_tripped_.load(std::memory_order_acquire)) {
      return BudgetExceeded();
    }
    cancelled_.store(false, std::memory_order_release);
    return Status::OK();
  }

  // Iteration 0: rules without IDB body literals seed the deltas. The first
  // relation literal's extent is partitioned by its storage shards and the
  // tasks fan out across the pool; rules whose extent is small (or
  // unsharded, or when there is no pool) run inline on the control thread.
  Status SeedBaseRules() {
    std::vector<SeedTask> tasks;
    const size_t width = PoolWidth();
    for (size_t i = 0; i < rules_.size(); ++i) {
      const CompiledRule& rule = rules_[i];
      bool has_idb = false;
      int first_rel = -1;
      for (size_t k = 0; k < rule.body().size(); ++k) {
        const CompiledAtom& lit = rule.body()[k];
        if (lit.kind != LitKind::kRelation) continue;
        if (first_rel < 0) first_rel = static_cast<int>(k);
        if (IsIdb(lit.predicate)) {
          has_idb = true;
          break;
        }
      }
      if (has_idb) continue;

      const Relation* extent =
          first_rel >= 0 ? db_->Find(rule.body()[first_rel].predicate)
                         : nullptr;
      bool fan_out = width > 0 && extent != nullptr &&
                     extent->shard_count() > 1 &&
                     extent->size() >= opts_.min_rows_to_partition;
      if (!fan_out) {
        FACTLOG_RETURN_IF_ERROR(SeedRuleInline(i));
        continue;
      }
      // Pre-build every index a seed worker could probe: shard-local on the
      // partitioned literal, combined on the rest. Skipped when the EDB is
      // shared read-only (workers then fall back to filtered scans).
      if (!opts_.eval.shared_edb) {
        for (size_t k = 0; k < rule.body().size(); ++k) {
          const CompiledAtom& lit = rule.body()[k];
          const std::vector<int>& cols = cols_[i][k];
          if (lit.kind != LitKind::kRelation || cols.empty()) continue;
          Relation* rel = db_->Find(lit.predicate);
          if (rel == nullptr) continue;
          if (static_cast<int>(k) == first_rel) {
            rel->EnsureShardIndexes(cols);
          } else {
            rel->EnsureIndex(cols);
          }
        }
      }
      for (size_t s = 0; s < extent->shard_count(); ++s) {
        tasks.push_back(SeedTask{i, static_cast<size_t>(first_rel), s});
      }
    }
    if (tasks.empty()) return Status::OK();

    std::vector<TaskResult> results(tasks.size());
    iteration_base_ = TotalIdbFacts();
    new_rows_.store(0, std::memory_order_relaxed);
    pool_->ParallelFor(tasks.size(), [&](size_t t) {
      RunSeedTask(tasks[t], &results[t]);
    });
    FACTLOG_RETURN_IF_ERROR(DrainTaskResults(&results));
    for (auto& [name, st] : preds_) st.delta->SyncShards();
    if (TotalIdbFacts() > opts_.eval.max_facts) return BudgetExceeded();
    return Status::OK();
  }

  // The control-thread seed path (exact budget accounting, lazy indices).
  Status SeedRuleInline(size_t rule_index) {
    const CompiledRule& rule = rules_[rule_index];
    std::vector<RelationView> views;
    views.reserve(rule.body().size());
    for (const CompiledAtom& lit : rule.body()) {
      if (lit.kind != LitKind::kRelation) {
        views.push_back(RelationView{});
      } else {
        views.push_back(RelationView{db_->Find(lit.predicate), nullptr,
                                     opts_.eval.shared_edb});
      }
    }
    Relation* delta = preds_.at(rule.head().predicate).delta.get();
    Status overflow = Status::OK();
    FACTLOG_RETURN_IF_ERROR(EnumerateRule(
        rule, &db_->store(), views, /*track_premises=*/false,
        &rule_stats_[rule_index],
        [&](const std::vector<ValueId>& row,
            const std::vector<eval::FactKey>*) {
          delta->Insert(row);
          if (TotalIdbFacts() > opts_.eval.max_facts) {
            overflow = BudgetExceeded();
            return false;
          }
          return true;
        }));
    return overflow;
  }

  // One seed worker task: evaluate rule `task.rule` with literal `task.lit`
  // restricted to shard `task.shard` of its base relation, buffer the head
  // rows thread-locally, then merge into the head's delta shard-to-shard.
  void RunSeedTask(const SeedTask& task, TaskResult* result) {
    result->rule = task.rule;
    if (cancelled_.load(std::memory_order_acquire)) return;
    const CompiledRule& rule = rules_[task.rule];
    const Relation* extent = db_->Find(rule.body()[task.lit].predicate);
    const Relation& shard_rows = extent->shard(task.shard);
    if (shard_rows.empty()) return;

    std::vector<RelationView> views;
    views.reserve(rule.body().size());
    for (size_t k = 0; k < rule.body().size(); ++k) {
      const CompiledAtom& lit = rule.body()[k];
      if (lit.kind != LitKind::kRelation) {
        views.push_back(RelationView{});
      } else if (k == task.lit) {
        views.push_back(RelationView{const_cast<Relation*>(&shard_rows),
                                     nullptr, /*shared=*/true});
      } else {
        views.push_back(RelationView{db_->Find(lit.predicate), nullptr,
                                     /*shared=*/true});
      }
    }

    PredState& head_st = preds_.at(rule.head().predicate);
    Relation buffer(rule.head().args.size(),
                    head_st.delta->storage_options());
    result->status = EnumerateRule(
        rule, &db_->store(), views, /*track_premises=*/false, &result->stats,
        [&](const std::vector<ValueId>& row,
            const std::vector<eval::FactKey>*) {
          if (cancelled_.load(std::memory_order_relaxed)) return false;
          if (buffer.Insert(row) && BudgetTripped()) return false;
          return true;
        });
    if (!result->status.ok()) {
      cancelled_.store(true, std::memory_order_release);
      return;
    }
    if (buffer.empty()) return;
    MergeBuffer(&head_st, head_st.delta.get(), buffer);
  }

  // One fixpoint worker task: evaluate rule `pass.rule` with occurrence
  // `pass.occ` restricted to its delta extent (one shard, or the whole delta
  // for driver-partitioned and single-task passes), buffer the new head rows
  // thread-locally, then merge into the global next shard-to-shard. For a
  // by_driver pass the task's slice is one (member, shard) of the driver
  // literal's extent instead — the union over tasks covers the driver's
  // extent exactly once, so nothing is re-enumerated.
  void RunTask(const std::vector<Pass>& passes, const TaskRef& ref,
               TaskResult* result) {
    result->rule = passes[ref.pass].rule;
    if (cancelled_.load(std::memory_order_acquire)) return;
    const Pass& pass = passes[ref.pass];
    const Relation* driver_rows = nullptr;
    if (pass.by_driver) {
      const auto& [member, shard] = pass.driver_parts[ref.part];
      driver_rows = shard >= 0 ? &member->shard(static_cast<size_t>(shard))
                               : member;
      if (driver_rows->empty()) return;
    }
    const Relation& occ_rows = pass.by_shard
                                   ? pass.delta_rel->shard(ref.part)
                                   : *pass.delta_rel;
    if (occ_rows.empty()) return;
    const CompiledRule& rule = rules_[pass.rule];

    std::vector<RelationView> views;
    views.reserve(rule.body().size());
    for (size_t k = 0; k < rule.body().size(); ++k) {
      if (driver_rows != nullptr && k == pass.driver_pos) {
        views.push_back(RelationView{const_cast<Relation*>(driver_rows),
                                     nullptr, /*shared=*/true});
      } else {
        views.push_back(ViewFor(pass, k, &occ_rows));
      }
    }

    PredState& head_st = *pass.head_state;
    Relation buffer(rule.head().args.size(),
                    head_st.next->storage_options());
    result->status = EnumerateRule(
        rule, &db_->store(), views, /*track_premises=*/false, &result->stats,
        [&](const std::vector<ValueId>& row,
            const std::vector<eval::FactKey>*) {
          if (cancelled_.load(std::memory_order_relaxed)) return false;
          if (head_st.full->Contains(row.data()) ||
              head_st.delta->Contains(row.data())) {
            return true;
          }
          if (buffer.Insert(row) && BudgetTripped()) return false;
          return true;
        });
    if (!result->status.ok()) {
      cancelled_.store(true, std::memory_order_release);
      return;
    }
    if (buffer.empty()) return;
    MergeBuffer(&head_st, head_st.next.get(), buffer);
  }

  // The observed extent a body occurrence of `pred` ranges over this round:
  // the current delta for IDB predicates (their estimates are delta-based),
  // the live relation size for base predicates.
  uint64_t CurrentExtent(const std::string& pred) const {
    if (IsIdb(pred)) return preds_.at(pred).delta->size();
    const Relation* rel = db_->Find(pred);
    return rel == nullptr ? 0 : rel->size();
  }

  // Re-routes an IDB relation's rows onto new partition columns (Absorb
  // re-hashes when layouts differ). Shard count is unchanged, so the
  // per-shard lock array stays valid; worker buffers copy next's storage
  // options per task, so shard-to-shard merges stay aligned.
  void Repartition(PredState* st, const std::vector<int>& cols) {
    StorageOptions storage = st->next->storage_options();
    if (storage.partition_cols == cols) return;
    storage.partition_cols = cols;
    for (std::unique_ptr<Relation>* rel :
         {&st->full, &st->delta, &st->next}) {
      auto fresh = std::make_unique<Relation>((*rel)->arity(), storage);
      fresh->Absorb(**rel);
      *rel = std::move(fresh);
    }
  }

  // Mid-fixpoint adaptivity (control thread, between parallel regions):
  // re-plan rules whose literal estimates drifted past the threshold against
  // the observed extents, recompile just those rules, refresh their probe
  // columns / driver position, and re-partition IDB extents whose first
  // recursive occurrence is now probed on different columns. Plans only
  // direct enumeration and partitioning, so the fact set is unchanged.
  void MaybeReplan() {
    if (opts_.eval.replan_threshold <= 0 ||
        opts_.eval.join_order != eval::JoinOrder::kPlanned) {
      return;
    }
    plan::PlanOptions popts;
    bool popts_ready = false;
    bool replanned = false;
    for (size_t i = 0; i < rules_.size(); ++i) {
      const plan::JoinPlan& jp = plan_.rules[i];
      size_t relation_lits = 0;
      bool drifted = false;
      for (const plan::LiteralPlan& lp : jp.order) {
        if (!lp.is_relation) continue;
        ++relation_lits;
        const ast::Atom& lit = program_.rules()[i].body()[lp.body_index];
        if (eval::ExtentDrifted(lp.est_rows, CurrentExtent(lit.predicate()),
                                opts_.eval.replan_threshold)) {
          drifted = true;
        }
      }
      if (!drifted || relation_lits < 2) continue;
      if (!popts_ready) {
        for (const auto& [name, rel] : db_->relations()) {
          popts.extent_hints[name] = rel->size();
        }
        for (const auto& [name, st] : preds_) {
          popts.delta_preds.insert(name);
          popts.delta_hints[name] = static_cast<double>(st.delta->size());
          popts.extent_hints[name] = st.full->size() + st.delta->size();
        }
        popts_ready = true;
      }
      plan::JoinPlan fresh = plan::PlanRule(program_.rules()[i], popts);
      bool same_order = fresh.order.size() == jp.order.size();
      if (same_order) {
        for (size_t k = 0; k < fresh.order.size(); ++k) {
          if (fresh.order[k].body_index != jp.order[k].body_index) {
            same_order = false;
            break;
          }
        }
      }
      if (same_order) {
        plan_.rules[i] = std::move(fresh);  // refreshed estimates only
        continue;
      }
      // Flush observation counters under the old literal order, then swap in
      // the re-planned rule and its derived pass-planning state.
      eval::DrainProbeObservations(rules_[i], plan_.rules[i], &rule_stats_[i],
                                   &probe_obs_);
      Result<CompiledRule> cr =
          CompiledRule::Compile(program_.rules()[i], &db_->store(), &fresh);
      if (!cr.ok()) continue;  // keep the old plan; never fail the fixpoint
      plan_.rules[i] = std::move(fresh);
      rules_[i] = std::move(*cr);
      std::vector<std::vector<int>> cols;
      int driver = -1;
      for (size_t k = 0; k < plan_.rules[i].order.size(); ++k) {
        const plan::LiteralPlan& lp = plan_.rules[i].order[k];
        cols.push_back(lp.index_cols);
        if (driver < 0 && lp.is_relation) driver = static_cast<int>(k);
      }
      cols_[i] = std::move(cols);
      driver_pos_[i] = driver;
      ++result_.mutable_stats()->replans;
      replanned = true;
    }
    if (!replanned) return;
    // Shard routing follows the new plans: re-derive each IDB predicate's
    // partition columns exactly as Prepare did and re-route where changed.
    for (const std::string& p : idb_preds_) {
      std::vector<int> want;
      for (size_t i = 0; i < rules_.size() && want.empty(); ++i) {
        for (size_t j = 0; j < rules_[i].body().size(); ++j) {
          const CompiledAtom& lit = rules_[i].body()[j];
          if (lit.kind == LitKind::kRelation && lit.predicate == p &&
              !cols_[i][j].empty()) {
            want = cols_[i][j];
            break;
          }
        }
      }
      if (!want.empty()) Repartition(&preds_.at(p), want);
    }
  }

  Status RunFixpoint() {
    const size_t width = PoolWidth();
    while (true) {
      ++result_.mutable_stats()->iterations;
      if (result_.stats().iterations > opts_.eval.max_iterations) {
        return Status::ResourceExhausted("iteration budget exceeded");
      }
      bool any_delta = false;
      for (const auto& [name, st] : preds_) {
        if (!st.delta->empty()) {
          any_delta = true;
          break;
        }
      }
      if (!any_delta) break;

      // Feedback: record this round's frontier sizes, then re-plan drifted
      // rules before pass planning — the pass planner below reads cols_ /
      // driver_pos_ fresh each iteration, so a new driver takes effect (and
      // repartitioned extents follow) without any further wiring.
      for (const auto& [name, st] : preds_) {
        if (!st.delta->empty()) {
          delta_sum_[name] += st.delta->size();
          ++delta_rounds_[name];
        }
      }
      MaybeReplan();

      // Plan the passes. Partitioning follows each rule's join plan: when
      // the occurrence is the plan's driver literal the delta shards are the
      // work partitions (no per-iteration re-partition copy); when the
      // driver is an earlier literal the pass fans out over the driver's
      // frozen extent instead, so the rule prefix is scanned exactly once
      // across the tasks. Small extents collapse to one task.
      std::vector<Pass> passes;
      for (size_t i = 0; i < rules_.size(); ++i) {
        const CompiledRule& rule = rules_[i];
        for (size_t j = 0; j < rule.body().size(); ++j) {
          const CompiledAtom& lit = rule.body()[j];
          if (lit.kind != LitKind::kRelation || !IsIdb(lit.predicate)) {
            continue;
          }
          Relation* delta = preds_.at(lit.predicate).delta.get();
          if (delta->empty()) continue;

          Pass pass;
          pass.rule = i;
          pass.occ = j;
          pass.delta_rel = delta;
          const std::vector<int>& probe_cols = cols_[i][j];
          const int driver = driver_pos_[i];
          if (width > 0 && driver >= 0 && static_cast<size_t>(driver) != j &&
              opts_.eval.join_order == eval::JoinOrder::kPlanned) {
            // The delta occurrence sits behind the driver. Partition the
            // driver's extent: one task per (member, shard); each task
            // probes the whole delta.
            pass.driver_pos = static_cast<size_t>(driver);
            RelationView dview =
                ViewFor(pass, pass.driver_pos, /*occ_rows=*/nullptr);
            Relation* members[2] = {dview.first, dview.second};
            size_t total = 0;
            for (Relation* m : members) {
              if (m != nullptr) total += m->size();
            }
            if (total >= opts_.min_rows_to_partition) {
              const std::vector<int>& dcols = cols_[i][pass.driver_pos];
              for (Relation* m : members) {
                if (m == nullptr || m->empty()) continue;
                if (m->shard_count() > 1) {
                  if (!dcols.empty()) m->EnsureShardIndexes(dcols);
                  for (size_t s = 0; s < m->shard_count(); ++s) {
                    pass.driver_parts.emplace_back(m, static_cast<int>(s));
                  }
                } else {
                  if (!dcols.empty()) m->EnsureIndex(dcols);
                  pass.driver_parts.emplace_back(m, -1);
                }
              }
              pass.by_driver = pass.driver_parts.size() > 1;
            }
          }
          if (!pass.by_driver) {
            pass.by_shard = width > 0 && delta->shard_count() > 1 &&
                            delta->size() >= opts_.min_rows_to_partition;
          }
          if (!probe_cols.empty()) {
            // Index the occurrence's extent on the key the join probes it
            // with: inside each shard, or combined when the whole delta is
            // probed (driver-partitioned and single-task passes).
            if (pass.by_shard) {
              delta->EnsureShardIndexes(probe_cols);
            } else {
              delta->EnsureIndex(probe_cols);
            }
          }
          pass.head_state = &preds_.at(rule.head().predicate);
          passes.push_back(std::move(pass));
        }
      }

      // Pre-build every combined index a worker could probe on the frozen
      // relations; inside the parallel region only the const read path runs.
      for (const Pass& pass : passes) {
        const CompiledRule& rule = rules_[pass.rule];
        for (size_t k = 0; k < rule.body().size(); ++k) {
          if (k == pass.occ) continue;  // the occurrence was indexed above
          if (pass.by_driver && k == pass.driver_pos) continue;  // per shard
          const std::vector<int>& cols = cols_[pass.rule][k];
          if (cols.empty()) continue;
          RelationView view = ViewFor(pass, k, nullptr);
          if (view.first != nullptr) view.first->EnsureIndex(cols);
          if (view.second != nullptr) view.second->EnsureIndex(cols);
        }
      }

      std::vector<TaskRef> tasks;
      for (size_t p = 0; p < passes.size(); ++p) {
        size_t parts = passes[p].by_driver ? passes[p].driver_parts.size()
                       : passes[p].by_shard
                           ? passes[p].delta_rel->shard_count()
                           : 1;
        for (size_t part = 0; part < parts; ++part) {
          tasks.push_back(TaskRef{p, part});
        }
      }
      std::vector<TaskResult> results(tasks.size());
      iteration_base_ = TotalIdbFacts();
      new_rows_.store(0, std::memory_order_relaxed);

      auto body = [&](size_t t) { RunTask(passes, tasks[t], &results[t]); };
      if (pool_ != nullptr) {
        pool_->ParallelFor(tasks.size(), body);
      } else {
        for (size_t t = 0; t < tasks.size(); ++t) body(t);
      }
      FACTLOG_RETURN_IF_ERROR(DrainTaskResults(&results));

      // Merge: sync the shard-merged next relations, then
      // full += delta; delta = next; next = fresh.
      for (auto& [name, st] : preds_) {
        st.next->SyncShards();
        st.full->Absorb(*st.delta);
        st.delta = std::move(st.next);
        st.next = std::make_unique<Relation>(st.full->arity(),
                                             st.full->storage_options());
      }
      if (TotalIdbFacts() > opts_.eval.max_facts) return BudgetExceeded();
    }
    return Status::OK();
  }

  Result<EvalResult> Finish() {
    uint64_t total = 0;
    eval::EvalStats* stats = result_.mutable_stats();
    for (size_t i = 0; i < rules_.size(); ++i) {
      eval::DrainProbeObservations(rules_[i], plan_.rules[i], &rule_stats_[i],
                                   &probe_obs_);
    }
    stats->probe_observations = std::move(probe_obs_);
    for (const auto& [name, sum] : delta_sum_) {
      stats->observed_delta_mean[name] =
          static_cast<double>(sum) / static_cast<double>(delta_rounds_[name]);
    }
    for (auto& [name, st] : preds_) {
      total += st.full->size();
      stats->observed_extents[name] = st.full->size();
      eval::AccumulateShardFacts(*st.full, &stats->shard_facts);
      result_.mutable_idb()->emplace(name, std::move(st.full));
    }
    stats->total_facts = total;
    eval::FoldRuleStats(rule_stats_, stats);
    return std::move(result_);
  }

  const ast::Program& program_;
  Database* db_;
  ThreadPool* pool_;
  ParallelEvalOptions opts_;

  std::set<std::string> idb_preds_;
  std::map<std::string, PredState> preds_;
  plan::ProgramPlan plan_;
  std::vector<CompiledRule> rules_;
  // Per-rule, per-compiled-literal probe columns and driver position, both
  // read straight off the join plan (the compiled body is in plan order).
  std::vector<std::vector<std::vector<int>>> cols_;
  std::vector<int> driver_pos_;
  std::vector<JoinStats> rule_stats_;
  // Planner feedback accumulators (drained into EvalStats at Finish).
  std::map<std::string, uint64_t> delta_sum_;
  std::map<std::string, uint64_t> delta_rounds_;
  std::vector<plan::ProbeObservation> probe_obs_;
  EvalResult result_;

  std::atomic<bool> cancelled_{false};
  std::atomic<bool> budget_tripped_{false};
  std::atomic<uint64_t> new_rows_{0};
  uint64_t iteration_base_ = 0;
  uint64_t budget_trip_ = 0;
};

}  // namespace

void MergeBufferLocked(eval::Relation* target, const eval::Relation& buffer,
                       std::mutex* locks) {
  for (size_t s = 0; s < buffer.shard_count(); ++s) {
    const eval::Relation& rows = buffer.shard(s);
    if (rows.empty()) continue;
    std::lock_guard<std::mutex> lock(locks[s]);
    target->MergeShard(s, rows);
  }
}

Result<EvalResult> EvaluateParallel(const ast::Program& program, Database* db,
                                    ThreadPool* pool,
                                    const ParallelEvalOptions& opts) {
  ParallelEngine engine(program, db, pool, opts);
  return engine.Run();
}

Result<eval::AnswerSet> EvaluateQueryParallel(const ast::Program& program,
                                              const ast::Atom& query,
                                              Database* db, ThreadPool* pool,
                                              const ParallelEvalOptions& opts,
                                              eval::EvalStats* stats_out) {
  FACTLOG_ASSIGN_OR_RETURN(EvalResult result,
                           EvaluateParallel(program, db, pool, opts));
  if (stats_out != nullptr) *stats_out = result.stats();
  return eval::ExtractAnswers(query, &result, db);
}

}  // namespace factlog::exec
