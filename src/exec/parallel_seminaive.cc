#include "exec/parallel_seminaive.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "eval/rule_eval.h"

namespace factlog::exec {

namespace {

using eval::CompiledAtom;
using eval::CompiledRule;
using eval::Database;
using eval::EvalResult;
using eval::JoinStats;
using eval::LitKind;
using eval::Relation;
using eval::RelationView;
using eval::ValueId;

// FNV-1a over the key columns of a row; only used to spread delta rows
// across partitions, so any deterministic mix works.
size_t HashCols(const ValueId* row, const std::vector<int>& cols) {
  uint64_t h = 1469598103934665603ULL;
  for (int c : cols) {
    h = (h ^ static_cast<uint64_t>(static_cast<uint32_t>(row[c]))) *
        1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

class ParallelEngine {
 public:
  ParallelEngine(const ast::Program& program, Database* db, ThreadPool* pool,
                 const ParallelEvalOptions& opts)
      : program_(program), db_(db), pool_(pool), opts_(opts) {}

  Result<EvalResult> Run() {
    if (opts_.eval.track_provenance) {
      return Status::Invalid(
          "parallel evaluation does not record provenance; use the "
          "sequential evaluator (eval::Evaluate) for derivation trees");
    }
    FACTLOG_RETURN_IF_ERROR(Prepare());
    FACTLOG_RETURN_IF_ERROR(SeedBaseRules());
    FACTLOG_RETURN_IF_ERROR(RunFixpoint());
    return Finish();
  }

 private:
  struct PredState {
    std::unique_ptr<Relation> full;
    std::unique_ptr<Relation> delta;
    std::unique_ptr<Relation> next;
  };

  // Delta partitions for one (predicate, probe-columns) combination. With a
  // single partition the delta itself is aliased instead of copied.
  struct PartitionSet {
    std::vector<std::unique_ptr<Relation>> owned;
    std::vector<const Relation*> parts;
  };

  // One (rule, recursive-occurrence) delta pass of the current iteration.
  struct Pass {
    size_t rule = 0;
    size_t occ = 0;  // body index ranging over the delta partitions
    const PartitionSet* parts = nullptr;
    const Relation* head_full = nullptr;
    const Relation* head_delta = nullptr;
    Relation* head_next = nullptr;
    size_t stripe = 0;
  };

  struct TaskRef {
    size_t pass = 0;
    size_t part = 0;
  };

  struct TaskResult {
    JoinStats stats;
    Status status = Status::OK();
  };

  static constexpr size_t kStripes = 16;

  Status Prepare() {
    FACTLOG_RETURN_IF_ERROR(program_.Validate());
    idb_preds_ = program_.IdbPredicates();
    auto arities = program_.PredicateArities();
    for (const std::string& p : idb_preds_) {
      size_t arity = arities.at(p);
      PredState st;
      st.full = std::make_unique<Relation>(arity);
      st.delta = std::make_unique<Relation>(arity);
      st.next = std::make_unique<Relation>(arity);
      preds_.emplace(p, std::move(st));
    }
    rules_.reserve(program_.rules().size());
    for (const ast::Rule& r : program_.rules()) {
      FACTLOG_ASSIGN_OR_RETURN(CompiledRule cr,
                               CompiledRule::Compile(r, &db_->store()));
      static_cols_.push_back(eval::StaticIndexCols(cr));
      rules_.push_back(std::move(cr));
    }
    // Saturating 2x slack over the fact budget: cross-task duplicates make
    // the in-flight counter an overestimate, so the hard mid-iteration trip
    // wire sits above the exact post-iteration check.
    uint64_t max = opts_.eval.max_facts;
    budget_trip_ = max > (UINT64_MAX - 1024) / 2 ? UINT64_MAX : 2 * max + 1024;
    return Status::OK();
  }

  bool IsIdb(const std::string& pred) const {
    return idb_preds_.count(pred) > 0;
  }

  uint64_t TotalIdbFacts() const {
    uint64_t n = 0;
    for (const auto& [name, st] : preds_) {
      n += st.full->size() + st.delta->size() + st.next->size();
    }
    return n;
  }

  // The frozen extent of body literal k for a task of `pass` (every view is
  // shared: workers never mutate relations during the parallel region).
  RelationView ViewFor(const Pass& pass, size_t k, size_t part) {
    const CompiledAtom& lit = rules_[pass.rule].body()[k];
    if (lit.kind != LitKind::kRelation) return RelationView{};
    if (!IsIdb(lit.predicate)) {
      return RelationView{db_->Find(lit.predicate), nullptr, /*shared=*/true};
    }
    PredState& st = preds_.at(lit.predicate);
    if (k == pass.occ) {
      // The join never mutates a shared view, so the const_cast only bridges
      // RelationView's (sequential-engine) mutable pointers.
      return RelationView{const_cast<Relation*>(pass.parts->parts[part]),
                          nullptr, /*shared=*/true};
    }
    if (k < pass.occ) {
      // This round's view of F_i: full union delta.
      return RelationView{st.full.get(), st.delta.get(), /*shared=*/true};
    }
    return RelationView{st.full.get(), nullptr, /*shared=*/true};
  }

  // Iteration 0: rules without IDB body literals seed the deltas. Runs on
  // the control thread; lazy index builds are still safe here.
  Status SeedBaseRules() {
    for (size_t i = 0; i < rules_.size(); ++i) {
      const CompiledRule& rule = rules_[i];
      bool has_idb = false;
      for (const CompiledAtom& lit : rule.body()) {
        if (lit.kind == LitKind::kRelation && IsIdb(lit.predicate)) {
          has_idb = true;
          break;
        }
      }
      if (has_idb) continue;
      std::vector<RelationView> views;
      views.reserve(rule.body().size());
      for (const CompiledAtom& lit : rule.body()) {
        if (lit.kind != LitKind::kRelation) {
          views.push_back(RelationView{});
        } else {
          views.push_back(RelationView{db_->Find(lit.predicate), nullptr});
        }
      }
      Relation* delta = preds_.at(rule.head().predicate).delta.get();
      Status overflow = Status::OK();
      FACTLOG_RETURN_IF_ERROR(EnumerateRule(
          rule, &db_->store(), views, /*track_premises=*/false, &join_stats_,
          [&](const std::vector<ValueId>& row,
              const std::vector<eval::FactKey>*) {
            delta->Insert(row);
            if (TotalIdbFacts() > opts_.eval.max_facts) {
              overflow = Status::ResourceExhausted(
                  "fact budget exceeded (" +
                  std::to_string(opts_.eval.max_facts) +
                  "); program may not terminate");
              return false;
            }
            return true;
          }));
      FACTLOG_RETURN_IF_ERROR(overflow);
    }
    return Status::OK();
  }

  size_t ChoosePartitions(size_t delta_rows) const {
    size_t width = pool_ == nullptr ? 0 : pool_->num_threads();
    if (width == 0 || delta_rows < opts_.min_rows_to_partition) return 1;
    size_t target =
        opts_.num_partitions > 0 ? opts_.num_partitions : 2 * width;
    return std::max<size_t>(1, std::min(target, delta_rows));
  }

  // Hash-partitions `delta` on `part_cols` into `nparts` relations, indexed
  // on `probe_cols` (the key the join will look the partition up with). A
  // single partition aliases the delta rather than copying it.
  PartitionSet BuildPartitions(Relation* delta,
                               const std::vector<int>& part_cols,
                               const std::vector<int>& probe_cols,
                               size_t nparts) {
    PartitionSet set;
    if (nparts <= 1) {
      if (!probe_cols.empty()) delta->EnsureIndex(probe_cols);
      set.parts.push_back(delta);
      return set;
    }
    set.owned.reserve(nparts);
    for (size_t p = 0; p < nparts; ++p) {
      set.owned.push_back(std::make_unique<Relation>(delta->arity()));
      set.owned.back()->Reserve(delta->size() / nparts + 1);
    }
    for (size_t r = 0; r < delta->size(); ++r) {
      const ValueId* row = delta->row(r);
      set.owned[HashCols(row, part_cols) % nparts]->Insert(row);
    }
    for (auto& p : set.owned) {
      if (!probe_cols.empty()) p->EnsureIndex(probe_cols);
      set.parts.push_back(p.get());
    }
    return set;
  }

  // One worker task: evaluate rule `pass.rule` with occurrence `pass.occ`
  // restricted to delta partition `part`, buffer the new head rows
  // thread-locally, then merge into the global next under the head stripe.
  void RunTask(const std::vector<Pass>& passes, const TaskRef& ref,
               TaskResult* result) {
    if (cancelled_.load(std::memory_order_acquire)) return;
    const Pass& pass = passes[ref.pass];
    if (pass.parts->parts[ref.part]->empty()) return;
    const CompiledRule& rule = rules_[pass.rule];

    std::vector<RelationView> views;
    views.reserve(rule.body().size());
    for (size_t k = 0; k < rule.body().size(); ++k) {
      views.push_back(ViewFor(pass, k, ref.part));
    }

    Relation buffer(rule.head().args.size());
    result->status = EnumerateRule(
        rule, &db_->store(), views, /*track_premises=*/false, &result->stats,
        [&](const std::vector<ValueId>& row,
            const std::vector<eval::FactKey>*) {
          if (cancelled_.load(std::memory_order_relaxed)) return false;
          if (pass.head_full->Contains(row.data()) ||
              pass.head_delta->Contains(row.data())) {
            return true;
          }
          if (buffer.Insert(row)) {
            uint64_t inflight =
                iteration_base_ +
                new_rows_.fetch_add(1, std::memory_order_relaxed) + 1;
            if (inflight > budget_trip_) {
              budget_tripped_.store(true, std::memory_order_relaxed);
              cancelled_.store(true, std::memory_order_release);
              return false;
            }
          }
          return true;
        });
    if (!result->status.ok()) {
      cancelled_.store(true, std::memory_order_release);
      return;
    }
    if (buffer.empty()) return;
    std::lock_guard<std::mutex> lock(stripes_[pass.stripe]);
    pass.head_next->Absorb(buffer);
  }

  Status RunFixpoint() {
    while (true) {
      ++result_.mutable_stats()->iterations;
      if (result_.stats().iterations > opts_.eval.max_iterations) {
        return Status::ResourceExhausted("iteration budget exceeded");
      }
      bool any_delta = false;
      for (const auto& [name, st] : preds_) {
        if (!st.delta->empty()) {
          any_delta = true;
          break;
        }
      }
      if (!any_delta) break;

      // Plan the passes and build the delta partitions. Partition sets are
      // cached per (predicate, partition columns): rules probing the same
      // occurrence the same way share one set.
      std::map<std::string, PartitionSet> partition_cache;
      std::vector<Pass> passes;
      for (size_t i = 0; i < rules_.size(); ++i) {
        const CompiledRule& rule = rules_[i];
        for (size_t j = 0; j < rule.body().size(); ++j) {
          const CompiledAtom& lit = rule.body()[j];
          if (lit.kind != LitKind::kRelation || !IsIdb(lit.predicate)) {
            continue;
          }
          Relation* delta = preds_.at(lit.predicate).delta.get();
          if (delta->empty()) continue;

          const std::vector<int>& probe_cols = static_cols_[i][j];
          std::vector<int> part_cols = probe_cols;
          if (part_cols.empty()) {
            // Occurrence probed unbound: spread by whole-row hash.
            for (size_t c = 0; c < delta->arity(); ++c) {
              part_cols.push_back(static_cast<int>(c));
            }
          }
          std::string cache_key = lit.predicate;
          for (int c : probe_cols) {
            cache_key += ',';
            cache_key += std::to_string(c);
          }
          auto [it, inserted] = partition_cache.try_emplace(cache_key);
          if (inserted) {
            it->second = BuildPartitions(delta, part_cols, probe_cols,
                                         ChoosePartitions(delta->size()));
          }

          Pass pass;
          pass.rule = i;
          pass.occ = j;
          pass.parts = &it->second;
          const std::string& head = rule.head().predicate;
          PredState& head_st = preds_.at(head);
          pass.head_full = head_st.full.get();
          pass.head_delta = head_st.delta.get();
          pass.head_next = head_st.next.get();
          pass.stripe = std::hash<std::string>()(head) % kStripes;
          passes.push_back(pass);
        }
      }

      // Pre-build every index a worker could probe on the frozen relations;
      // inside the parallel region only the const read path runs.
      for (const Pass& pass : passes) {
        const CompiledRule& rule = rules_[pass.rule];
        for (size_t k = 0; k < rule.body().size(); ++k) {
          if (k == pass.occ) continue;  // partitions were indexed on build
          const std::vector<int>& cols = static_cols_[pass.rule][k];
          if (cols.empty()) continue;
          RelationView view = ViewFor(pass, k, 0);
          if (view.first != nullptr) view.first->EnsureIndex(cols);
          if (view.second != nullptr) view.second->EnsureIndex(cols);
        }
      }

      std::vector<TaskRef> tasks;
      for (size_t p = 0; p < passes.size(); ++p) {
        for (size_t part = 0; part < passes[p].parts->parts.size(); ++part) {
          tasks.push_back(TaskRef{p, part});
        }
      }
      std::vector<TaskResult> results(tasks.size());
      iteration_base_ = TotalIdbFacts();
      new_rows_.store(0, std::memory_order_relaxed);

      auto body = [&](size_t t) { RunTask(passes, tasks[t], &results[t]); };
      if (pool_ != nullptr) {
        pool_->ParallelFor(tasks.size(), body);
      } else {
        for (size_t t = 0; t < tasks.size(); ++t) body(t);
      }

      for (TaskResult& r : results) {
        FACTLOG_RETURN_IF_ERROR(r.status);
        join_stats_.rows_matched += r.stats.rows_matched;
        join_stats_.instantiations += r.stats.instantiations;
      }
      if (budget_tripped_.load(std::memory_order_acquire)) {
        return Status::ResourceExhausted(
            "fact budget exceeded (" + std::to_string(opts_.eval.max_facts) +
            "); program may not terminate");
      }
      cancelled_.store(false, std::memory_order_release);

      // Merge: full += delta; delta = next; next = fresh.
      for (auto& [name, st] : preds_) {
        st.full->Absorb(*st.delta);
        st.delta = std::move(st.next);
        st.next = std::make_unique<Relation>(st.full->arity());
      }
      if (TotalIdbFacts() > opts_.eval.max_facts) {
        return Status::ResourceExhausted(
            "fact budget exceeded (" + std::to_string(opts_.eval.max_facts) +
            "); program may not terminate");
      }
    }
    return Status::OK();
  }

  Result<EvalResult> Finish() {
    uint64_t total = 0;
    for (auto& [name, st] : preds_) {
      total += st.full->size();
      result_.mutable_idb()->emplace(name, std::move(st.full));
    }
    eval::EvalStats* stats = result_.mutable_stats();
    stats->total_facts = total;
    stats->instantiations = join_stats_.instantiations;
    stats->rows_matched = join_stats_.rows_matched;
    return std::move(result_);
  }

  const ast::Program& program_;
  Database* db_;
  ThreadPool* pool_;
  ParallelEvalOptions opts_;

  std::set<std::string> idb_preds_;
  std::map<std::string, PredState> preds_;
  std::vector<CompiledRule> rules_;
  std::vector<std::vector<std::vector<int>>> static_cols_;  // rule x literal
  JoinStats join_stats_;
  EvalResult result_;

  std::array<std::mutex, kStripes> stripes_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> budget_tripped_{false};
  std::atomic<uint64_t> new_rows_{0};
  uint64_t iteration_base_ = 0;
  uint64_t budget_trip_ = 0;
};

}  // namespace

Result<EvalResult> EvaluateParallel(const ast::Program& program, Database* db,
                                    ThreadPool* pool,
                                    const ParallelEvalOptions& opts) {
  ParallelEngine engine(program, db, pool, opts);
  return engine.Run();
}

Result<eval::AnswerSet> EvaluateQueryParallel(const ast::Program& program,
                                              const ast::Atom& query,
                                              Database* db, ThreadPool* pool,
                                              const ParallelEvalOptions& opts,
                                              eval::EvalStats* stats_out) {
  FACTLOG_ASSIGN_OR_RETURN(EvalResult result,
                           EvaluateParallel(program, db, pool, opts));
  if (stats_out != nullptr) *stats_out = result.stats();
  return eval::ExtractAnswers(query, &result, db);
}

}  // namespace factlog::exec
