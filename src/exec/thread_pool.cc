#include "exec/thread_pool.h"

namespace factlog::exec {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Workers abandon queued tasks on stop; free any discarded detached ones.
  for (auto& w : workers_) {
    for (const Task& t : w->deque) delete t.fn;
  }
}

bool ThreadPool::TryPopOwn(size_t worker_index, Task* out) {
  Worker& w = *workers_[worker_index];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.deque.empty()) return false;
  *out = w.deque.back();  // LIFO: most recently pushed, cache-warm
  w.deque.pop_back();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::TrySteal(size_t thief_index, Task* out) {
  size_t n = workers_.size();
  if (n == 0) return false;
  size_t start = next_victim_.fetch_add(1, std::memory_order_relaxed) % n;
  for (size_t k = 0; k < n; ++k) {
    size_t victim = (start + k) % n;
    if (victim == thief_index) continue;
    Worker& w = *workers_[victim];
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.deque.empty()) continue;
    *out = w.deque.front();  // FIFO end: steal the oldest task
    w.deque.pop_front();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    stolen_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(const Task& task) {
  if (task.fn != nullptr) {
    (*task.fn)();
    delete task.fn;
    executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  (*task.batch->fn)(task.index);
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (task.batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: set done and notify while holding the batch mutex. The
    // caller re-acquires the mutex before returning, so it cannot destroy
    // the batch until this block has released it.
    std::lock_guard<std::mutex> lock(task.batch->mu);
    task.batch->done = true;
    task.batch->done_cv.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  Task task;
  for (;;) {
    if (TryPopOwn(worker_index, &task) || TrySteal(worker_index, &task)) {
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Task task;
  task.fn = new std::function<void()>(std::move(fn));
  // Round-robin placement; any worker can steal it anyway.
  size_t w = next_victim_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(workers_[w]->mu);
    workers_[w]->deque.push_back(task);
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    executed_.fetch_add(n, std::memory_order_relaxed);
    return;
  }

  Batch batch;
  batch.fn = &fn;
  batch.remaining.store(n, std::memory_order_relaxed);

  // Publish the count before enqueuing: a worker popping an early task
  // would otherwise wrap pending_ below zero and spin-wake every sleeper.
  pending_.fetch_add(n, std::memory_order_release);
  // Round-robin the tasks across the worker deques.
  for (size_t start = 0; start < n; start += workers_.size()) {
    for (size_t w = 0; w < workers_.size() && start + w < n; ++w) {
      Worker& worker = *workers_[w];
      std::lock_guard<std::mutex> lock(worker.mu);
      worker.deque.push_back(Task{&batch, start + w});
    }
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();

  // Participate: steal (our own batch's tasks or anyone's) until every task
  // of this batch has finished.
  Task task;
  while (batch.remaining.load(std::memory_order_acquire) > 0) {
    if (TrySteal(workers_.size(), &task)) {
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(batch.mu);
    batch.done_cv.wait(lock, [&batch] { return batch.done; });
    break;
  }
  // Final handshake: wait for the last completer to have set done under the
  // batch mutex, so destroying the stack-allocated batch is safe.
  std::unique_lock<std::mutex> lock(batch.mu);
  batch.done_cv.wait(lock, [&batch] { return batch.done; });
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.executed = executed_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace factlog::exec
