// Partitioned parallel semi-naive fixpoint evaluation.
//
// The paper's argument-reduction theorems shrink a recursive relation from
// O(n^k) to O(n) facts; this module consumes those relations on every core.
// Each iteration of the semi-naive loop is data-parallel over the delta:
//
//   1. For every (rule, recursive-occurrence) pass, the occurrence's delta
//      rows are hash-partitioned on the join-key columns the left-to-right
//      join will probe them with (eval::StaticIndexCols) — whole-row hash
//      when the occurrence is probed unbound.
//   2. Every probe index a worker could need is pre-built on the frozen
//      full/delta/base relations (Relation::EnsureIndex), so workers only
//      touch the const read path (RelationView::shared).
//   3. Workers evaluate one partition each into a thread-local Relation
//      buffer, deduplicating against the frozen full/delta extents.
//   4. Each worker merges its buffer into the global `next` relation under a
//      lock striped by head predicate (Relation::Absorb), then the control
//      thread rotates full/delta/next exactly like the sequential engine.
//
// The result is fact-for-fact identical to eval::Evaluate's semi-naive
// strategy at any thread count (set semantics make the fixpoint confluent);
// the sequential evaluator remains the oracle the tests compare against.

#ifndef FACTLOG_EXEC_PARALLEL_SEMINAIVE_H_
#define FACTLOG_EXEC_PARALLEL_SEMINAIVE_H_

#include "ast/program.h"
#include "common/status.h"
#include "eval/database.h"
#include "eval/seminaive.h"
#include "exec/thread_pool.h"

namespace factlog::exec {

struct ParallelEvalOptions {
  /// Budgets and flags shared with the sequential evaluator. Restrictions:
  /// `strategy` is ignored (the parallel engine is always semi-naive) and
  /// `track_provenance` must be false (kInvalidArgument otherwise — use the
  /// sequential evaluator when derivation trees are needed).
  eval::EvalOptions eval;
  /// Partitions per (rule, occurrence) pass. 0 = 2x the pool width, the
  /// sweet spot between stealing granularity and per-task setup cost.
  size_t num_partitions = 0;
  /// Deltas with fewer rows than this run as a single task; partitioning a
  /// tiny delta costs more than it buys.
  size_t min_rows_to_partition = 64;
};

/// Evaluates `program` bottom-up against `db` on `pool` (nullptr = inline).
/// Returns exactly the fact sets eval::Evaluate produces.
Result<eval::EvalResult> EvaluateParallel(
    const ast::Program& program, eval::Database* db, ThreadPool* pool,
    const ParallelEvalOptions& opts = ParallelEvalOptions());

/// Convenience: EvaluateParallel + ExtractAnswers. When `stats_out` is
/// non-null the evaluation statistics are copied there.
Result<eval::AnswerSet> EvaluateQueryParallel(
    const ast::Program& program, const ast::Atom& query, eval::Database* db,
    ThreadPool* pool, const ParallelEvalOptions& opts = ParallelEvalOptions(),
    eval::EvalStats* stats_out = nullptr);

}  // namespace factlog::exec

#endif  // FACTLOG_EXEC_PARALLEL_SEMINAIVE_H_
