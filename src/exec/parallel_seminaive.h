// Shard-partitioned parallel semi-naive fixpoint evaluation.
//
// The paper's argument-reduction theorems shrink a recursive relation from
// O(n^k) to O(n) facts; this module consumes those relations on every core.
// Rules are compiled against their plan::JoinPlan (the per-rule join order,
// index requirements, and partitioning driver chosen at compile time — see
// plan/join_plan.h), and storage is shard-native (eval::StorageOptions):
// every IDB relation is hash-partitioned on the plan's join-key columns of
// its first recursive occurrence (else column 0). Work is partitioned along
// the plan's driver literal — nothing is re-partitioned or copied per
// iteration:
//
//   1. Iteration 0 (EDB-only rules) partitions the plan's first relation
//      literal's extent by the base relation's shards, so even the seed fans
//      out across the pool instead of running on the control thread.
//   2. For a (rule, recursive-occurrence) pass of a later iteration whose
//      occurrence IS the plan's driver, the occurrence ranges over the
//      delta's shards in place, each shard indexed on the probe columns
//      (Relation::EnsureShardIndexes). When the driver is an earlier
//      literal, the pass partitions the driver's frozen extent instead (one
//      task per member relation x shard, every task probing the whole
//      indexed delta) — so the rule prefix is enumerated exactly once
//      across the pass instead of once per delta shard, the duplication
//      right-linear rules used to pay. Every other probe index is pre-built
//      on the frozen full/delta/base relations (Relation::EnsureIndex), so
//      workers only touch the const read path (RelationView::shared).
//   3. Workers evaluate one slice each into a thread-local Relation buffer
//      sharded exactly like the head relation, deduplicating against the
//      frozen full/delta extents.
//   4. Merges are shard-to-shard (Relation::MergeShard) under one lock per
//      (head predicate, shard) — same-key shards never contend — then the
//      control thread syncs the next relations (Relation::SyncShards) and
//      rotates full/delta/next exactly like the sequential engine.
//
// The result is fact-for-fact identical to eval::Evaluate's semi-naive
// strategy at any thread and shard count, and head instantiation counts are
// identical to the sequential engine's at any join order (set semantics make
// the fixpoint confluent; a complete body match is order-invariant); the
// sequential single-shard evaluator remains the oracle the tests compare
// against. EvalOptions::join_order = kLeftToRight selects the pre-planner
// baseline (source-order joins, delta-shard partitioning only).

#ifndef FACTLOG_EXEC_PARALLEL_SEMINAIVE_H_
#define FACTLOG_EXEC_PARALLEL_SEMINAIVE_H_

#include <mutex>

#include "ast/program.h"
#include "common/status.h"
#include "eval/database.h"
#include "eval/seminaive.h"
#include "exec/thread_pool.h"

namespace factlog::exec {

/// Merges a worker's thread-local `buffer` (sharded exactly like `target`)
/// into `target` shard-to-shard, taking only `locks[s]` around each
/// Relation::MergeShard(s, ...). Workers merging different shards proceed
/// concurrently; this is the per-(pred, shard) merge seam shared by the
/// parallel fixpoint and incremental delta propagation (src/inc). The caller
/// must SyncShards() on `target` from a single thread before reading it.
void MergeBufferLocked(eval::Relation* target, const eval::Relation& buffer,
                       std::mutex* locks);

struct ParallelEvalOptions {
  /// Budgets and flags shared with the sequential evaluator. Restrictions:
  /// `strategy` is ignored (the parallel engine is always semi-naive) and
  /// `track_provenance` must be false (kInvalidArgument otherwise — use the
  /// sequential evaluator when derivation trees are needed).
  eval::EvalOptions eval;
  /// Shards per IDB relation. 0 inherits the database's storage options, so
  /// IDB and EDB partitioning stay uniform by default.
  size_t num_shards = 0;
  /// Extents (delta, or the seed pass's first-literal base relation) with
  /// fewer rows than this run as a single task even when sharded; fanning a
  /// tiny extent across the pool costs more than it buys.
  size_t min_rows_to_partition = 64;
};

/// Evaluates `program` bottom-up against `db` on `pool` (nullptr = inline).
/// Returns exactly the fact sets eval::Evaluate produces.
Result<eval::EvalResult> EvaluateParallel(
    const ast::Program& program, eval::Database* db, ThreadPool* pool,
    const ParallelEvalOptions& opts = ParallelEvalOptions());

/// Convenience: EvaluateParallel + ExtractAnswers. When `stats_out` is
/// non-null the evaluation statistics are copied there.
Result<eval::AnswerSet> EvaluateQueryParallel(
    const ast::Program& program, const ast::Atom& query, eval::Database* db,
    ThreadPool* pool, const ParallelEvalOptions& opts = ParallelEvalOptions(),
    eval::EvalStats* stats_out = nullptr);

}  // namespace factlog::exec

#endif  // FACTLOG_EXEC_PARALLEL_SEMINAIVE_H_
