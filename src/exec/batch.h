// Concurrent batch execution against an immutable database snapshot.
//
// Serving-side counterpart of the parallel fixpoint: many queries evaluated
// at once over one frozen EDB, sharing compiled plans. The flow is the
// precomputation-then-cheap-per-call split the plan cache already implements,
// extended across threads:
//
//   1. Compile phase (on the pool): every query is compiled through the
//      caller-supplied compile callback — in practice api::Engine::Compile,
//      whose plan cache is mutex-guarded, so concurrent workers share plans.
//   2. Prewarm phase (control thread): PrewarmIndexes builds every hash
//      index the compiled programs will probe on the base relations.
//   3. Execute phase (on the pool): each query runs the sequential
//      semi-naive evaluator with EvalOptions::shared_edb set — private IDB
//      state per query, strictly read-only base relations, and a ValueStore
//      whose interning is thread-safe.
//
// Per-query ExecStats and a wall-clock BatchSummary come back index-aligned
// with the requests.

#ifndef FACTLOG_EXEC_BATCH_H_
#define FACTLOG_EXEC_BATCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ast/program.h"
#include "common/status.h"
#include "core/transform_pass.h"
#include "eval/database.h"
#include "eval/seminaive.h"
#include "exec/thread_pool.h"

namespace factlog::exec {

/// Per-query outcome of a batch execution.
struct ExecStats {
  Status status = Status::OK();
  bool cache_hit = false;
  /// Microseconds compiling (0 on a cache hit) and executing this query.
  int64_t compile_us = 0;
  int64_t execute_us = 0;
  /// Fixpoint counters of the query's evaluation.
  uint64_t iterations = 0;
  uint64_t total_facts = 0;
  size_t num_answers = 0;
  /// Derived facts per storage shard (one entry for flat storage); shows how
  /// evenly the hash partitioning spread this query's IDB rows.
  std::vector<uint64_t> shard_facts;
};

/// Wall-clock summary of one ExecuteBatch call.
struct BatchSummary {
  int64_t wall_us = 0;         // whole batch, end to end
  int64_t sum_execute_us = 0;  // total per-query execute time (cpu-ish)
  size_t queries = 0;
  size_t succeeded = 0;
  size_t failed = 0;
  size_t threads = 0;  // pool width the batch ran on
};

/// Result of a batch: answers and stats are index-aligned with the requests
/// (a failed query has an empty AnswerSet and its status in stats).
struct BatchResult {
  std::vector<eval::AnswerSet> answers;
  std::vector<ExecStats> stats;
  BatchSummary summary;
};

/// Pre-builds exactly the hash indices the compiled query's join plan
/// declares on the database's base relations, plus the index answer
/// extraction probes for the plan's query — no more (a plan-ordered join
/// never touches indices a left-to-right walk would have predicted), no
/// less. Call before sharing `db` read-only across threads; workers then
/// stay on the const lookup path.
Status PrewarmIndexes(const core::CompiledQuery& plan, eval::Database* db);

/// Convenience overload for callers without a CompiledQuery: plans `program`
/// on the spot (the same plan evaluation will compute for this database) and
/// prewarms from it. `query` may be null.
Status PrewarmIndexes(const ast::Program& program, const ast::Atom* query,
                      eval::Database* db);

/// Compiles query `index`, filling cache_hit/compile_us of the stats. Must
/// be thread-safe (api::Engine::Compile is).
using BatchCompileFn =
    std::function<Result<std::shared_ptr<const core::CompiledQuery>>(
        size_t index, ExecStats* stats)>;

/// Runs `num_queries` queries concurrently on `pool` (nullptr = inline)
/// against `db`, whose base relations must not be mutated for the duration.
/// Evaluation is bottom-up semi-naive under `eval_options` (shared_edb is
/// forced on). Individual query failures land in the per-query stats; the
/// batch itself only fails on infrastructure errors.
Result<BatchResult> RunBatch(ThreadPool* pool, eval::Database* db,
                             size_t num_queries, const BatchCompileFn& compile,
                             const eval::EvalOptions& eval_options);

}  // namespace factlog::exec

#endif  // FACTLOG_EXEC_BATCH_H_
