// A work-stealing thread pool with a blocking ParallelFor primitive.
//
// The execution subsystem's parallelism is deliberately simple and
// TSan-clean: each worker owns a mutex-guarded deque, pops its own work LIFO
// (cache-warm) and steals FIFO from victims (oldest, largest-granularity
// tasks first). ParallelFor submits one task per index, round-robined across
// the worker deques, and the *calling* thread participates by stealing while
// it waits — so nested ParallelFor calls cannot deadlock and a pool of width
// 0 degrades to a plain sequential loop.
//
// Tasks must not throw. The pool is created once and reused; see
// api::EngineOptions::num_threads.

#ifndef FACTLOG_EXEC_THREAD_POOL_H_
#define FACTLOG_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace factlog::exec {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is valid: ParallelFor then runs every
  /// index inline on the calling thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), distributed across the workers, and
  /// blocks until all calls return. The calling thread executes tasks too.
  /// fn must be safe to call concurrently from multiple threads.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueues a detached task: runs once on some worker, nobody waits for it
  /// here (the serving front end tracks completion itself). Runs inline when
  /// the pool has no workers. Tasks still queued when the pool is destroyed
  /// are discarded unrun — callers that need every task to finish must drain
  /// before destruction (serve::Server::Stop does).
  void Submit(std::function<void()> fn);

  /// Lifetime counters (approximate while tasks are in flight).
  struct Stats {
    uint64_t executed = 0;  // tasks run, by workers and callers alike
    uint64_t stolen = 0;    // tasks taken from another worker's deque
  };
  Stats stats() const;

 private:
  // One ParallelFor invocation. Lives on the caller's stack: tasks hold a
  // pointer, and ParallelFor does not return until the last completer has
  // set `done` under `mu` — the caller must not trust the atomic counter
  // alone, or it could destroy the batch while that completer is still
  // inside the notify.
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> remaining{0};
    std::mutex mu;
    std::condition_variable done_cv;
    bool done = false;  // guarded by mu; set by the last completer
  };

  struct Task {
    Batch* batch = nullptr;
    size_t index = 0;
    /// Detached task (Submit): owned by the task, deleted after running or
    /// by the destructor when discarded. Mutually exclusive with `batch`.
    std::function<void()>* fn = nullptr;
  };

  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;
  };

  void WorkerLoop(size_t worker_index);
  bool TryPopOwn(size_t worker_index, Task* out);
  bool TrySteal(size_t thief_index, Task* out);
  void RunTask(const Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep/wake machinery: pending_ counts tasks sitting in deques. Enqueuers
  // bump it, then take wake_mu_ briefly before notifying, which closes the
  // classic lost-wakeup window against the predicate re-check in WorkerLoop.
  std::atomic<size_t> pending_{0};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};

  std::atomic<size_t> next_victim_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> stolen_{0};
};

}  // namespace factlog::exec

#endif  // FACTLOG_EXEC_THREAD_POOL_H_
