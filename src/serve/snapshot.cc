#include "serve/snapshot.h"

#include <utility>

namespace factlog::serve {

std::shared_ptr<Snapshot> SnapshotBuilder::Build(eval::Database* live) {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = next_epoch_++;
  snap->db = std::make_shared<eval::Database>(live->shared_store(),
                                             live->storage_options());
  for (const auto& [name, rel] : live->relations()) {
    // Mutation entry points leave relations synced; FrozenCopy requires it
    // (a stale location table would be published otherwise). No-op when
    // already in sync.
    rel->SyncShards();
    Cached& c = cache_[name];
    if (c.frozen == nullptr || c.version != rel->version()) {
      c.frozen = rel->FrozenCopy();
      c.version = rel->version();
      ++copies_;
    }
    snap->db->PutRelation(name, c.frozen);
  }
  return snap;
}

std::shared_ptr<const Snapshot> SnapshotManager::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void SnapshotManager::Install(std::shared_ptr<const Snapshot> snap) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(snap);
  installs_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t SnapshotManager::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr ? 0 : current_->epoch;
}

void IndexVocabulary::Register(const std::string& rel,
                               const std::vector<int>& cols) {
  if (cols.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  needs_[rel].insert(cols);
}

void IndexVocabulary::RegisterFromPlan(const core::CompiledQuery& plan) {
  // Mirrors exec::PrewarmIndexes: the plan's per-literal index_cols are the
  // probe keys the plan-ordered join will use; IDB predicates are private
  // per evaluation and need no shared index.
  if (!plan.plans.Compatible(plan.program)) return;
  std::set<std::string> idb = plan.program.IdbPredicates();
  for (size_t i = 0; i < plan.program.rules().size(); ++i) {
    const ast::Rule& rule = plan.program.rules()[i];
    for (const plan::LiteralPlan& lp : plan.plans.rules[i].order) {
      if (!lp.is_relation || lp.index_cols.empty()) continue;
      const std::string& pred = rule.body()[lp.body_index].predicate();
      if (idb.count(pred) > 0) continue;
      Register(pred, lp.index_cols);
    }
  }
  if (idb.count(plan.query.predicate()) == 0) {
    std::vector<int> cols;
    for (size_t i = 0; i < plan.query.arity(); ++i) {
      if (plan.query.args()[i].IsGround()) {
        cols.push_back(static_cast<int>(i));
      }
    }
    if (!cols.empty()) Register(plan.query.predicate(), cols);
  }
}

std::map<std::string, std::set<std::vector<int>>> IndexVocabulary::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::set<std::vector<int>>> out;
  out.swap(needs_);
  return out;
}

size_t IndexVocabulary::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [rel, set] : needs_) n += set.size();
  return n;
}

}  // namespace factlog::serve
