#include "serve/server.h"

#include <algorithm>
#include <utility>

namespace factlog::serve {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Server::Server(exec::ThreadPool* pool, Hooks hooks, ServeOptions options)
    : pool_(pool), hooks_(std::move(hooks)), options_(options) {
  writer_ = std::thread([this] { WriterLoop(); });
}

Server::~Server() { Stop(); }

uint64_t Server::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_session_++;
  sessions_[id];  // default: open, zero in flight
  ++stats_.sessions_opened;
  return id;
}

Status Server::CloseSession(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open) {
    return Status::NotFound("no open session " + std::to_string(session));
  }
  if (it->second.inflight == 0) {
    sessions_.erase(it);
  } else {
    // Retired by FinishRequest when the last in-flight request drains.
    it->second.open = false;
  }
  return Status::OK();
}

Status Server::Admit(uint64_t session, size_t queued, size_t limit,
                     uint64_t* rejected) {
  // mu_ held by the caller.
  if (stopping_) {
    ++*rejected;
    return Status::FailedPrecondition("server is stopped");
  }
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open) {
    ++*rejected;
    return Status::FailedPrecondition("no open session " +
                                      std::to_string(session));
  }
  if (queued >= limit) {
    ++*rejected;
    return Status::ResourceExhausted("admission queue full (" +
                                     std::to_string(limit) + " in flight)");
  }
  if (it->second.inflight >= options_.max_inflight_per_session) {
    ++*rejected;
    return Status::ResourceExhausted(
        "session " + std::to_string(session) + " in-flight budget (" +
        std::to_string(options_.max_inflight_per_session) + ") exhausted");
  }
  ++it->second.inflight;
  ++inflight_;
  return Status::OK();
}

void Server::FinishRequest(uint64_t session, uint64_t* completed) {
  // mu_ held by the caller.
  ++*completed;
  --inflight_;
  auto it = sessions_.find(session);
  if (it != sessions_.end()) {
    --it->second.inflight;
    if (!it->second.open && it->second.inflight == 0) sessions_.erase(it);
  }
  drain_cv_.notify_all();
}

Status Server::SubmitQuery(uint64_t session, ast::Program program,
                           ast::Atom query, core::Strategy strategy,
                           QueryCallback done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status st =
        Admit(session, queued_queries_, options_.max_queue,
              &stats_.rejected_queries);
    if (!st.ok()) return st;
    ++queued_queries_;
    ++stats_.accepted_queries;
  }
  auto submitted = std::chrono::steady_clock::now();
  // The pool's deques are the admission queue; the task owns the request.
  pool_->Submit([this, session, program = std::move(program),
                 query = std::move(query), strategy, done = std::move(done),
                 submitted]() mutable {
    QueryResponse resp;
    resp.queue_us = MicrosSince(submitted);
    auto t0 = std::chrono::steady_clock::now();
    hooks_.read(program, query, strategy, &resp);
    resp.execute_us = MicrosSince(t0);
    // Deliver before the completion bookkeeping so Drain()/Stop() returning
    // means every callback has run.
    done(std::move(resp));
    std::lock_guard<std::mutex> lock(mu_);
    --queued_queries_;
    FinishRequest(session, &stats_.completed_queries);
  });
  return Status::OK();
}

std::future<QueryResponse> Server::SubmitQuery(uint64_t session,
                                               ast::Program program,
                                               ast::Atom query,
                                               core::Strategy strategy) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> fut = promise->get_future();
  Status st = SubmitQuery(
      session, std::move(program), std::move(query), strategy,
      [promise](QueryResponse resp) { promise->set_value(std::move(resp)); });
  if (!st.ok()) {
    QueryResponse resp;
    resp.status = st;
    promise->set_value(std::move(resp));
  }
  return fut;
}

Status Server::SubmitUpdate(uint64_t session, bool insert, ast::Atom fact,
                            UpdateCallback done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status st = Admit(session, updates_.size(), options_.max_update_queue,
                      &stats_.rejected_updates);
    if (!st.ok()) return st;
    ++stats_.accepted_updates;
    Update u;
    u.session = session;
    u.insert = insert;
    u.fact = std::move(fact);
    u.done = std::move(done);
    u.submitted = std::chrono::steady_clock::now();
    updates_.push_back(std::move(u));
  }
  writer_cv_.notify_one();
  return Status::OK();
}

std::future<UpdateResponse> Server::SubmitUpdate(uint64_t session, bool insert,
                                                 ast::Atom fact) {
  auto promise = std::make_shared<std::promise<UpdateResponse>>();
  std::future<UpdateResponse> fut = promise->get_future();
  Status st = SubmitUpdate(
      session, insert, std::move(fact),
      [promise](UpdateResponse resp) { promise->set_value(std::move(resp)); });
  if (!st.ok()) {
    UpdateResponse resp;
    resp.status = st;
    promise->set_value(std::move(resp));
  }
  return fut;
}

void Server::WriterLoop() {
  for (;;) {
    std::vector<Update> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      writer_cv_.wait(lock,
                      [this] { return stopping_ || !updates_.empty(); });
      if (updates_.empty()) return;  // stopping_ and fully drained
      size_t n = std::min(updates_.size(), options_.max_update_batch);
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(updates_.front()));
        updates_.pop_front();
      }
    }
    std::vector<UpdateResponse> responses(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const Update& u = batch[i];
      responses[i].queue_us = MicrosSince(u.submitted);
      auto t0 = std::chrono::steady_clock::now();
      responses[i].status = hooks_.apply(u.insert, u.fact);
      responses[i].apply_us = MicrosSince(t0);
    }
    // One install per drained batch: every published epoch is the state after
    // a prefix of the accepted update sequence.
    uint64_t epoch = hooks_.install();
    for (size_t i = 0; i < batch.size(); ++i) {
      responses[i].epoch = epoch;
      if (batch[i].done) batch[i].done(std::move(responses[i]));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.epochs_installed;
      for (const Update& u : batch) {
        FinishRequest(u.session, &stats_.completed_updates);
      }
    }
  }
}

void Server::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return inflight_ == 0 && updates_.empty(); });
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !writer_.joinable()) return;  // already stopped
    stopping_ = true;
  }
  writer_cv_.notify_all();
  Drain();
  if (writer_.joinable()) writer_.join();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats out = stats_;
  out.inflight = inflight_;
  return out;
}

size_t Server::open_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.open) ++n;
  }
  return n;
}

}  // namespace factlog::serve
