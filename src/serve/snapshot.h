// MVCC snapshots over copy-on-write shards.
//
// The serving subsystem's read side: every installed epoch is an immutable
// Snapshot — a Database of frozen relation copies (eval::Relation::FrozenCopy,
// sharing unchanged shards with the live database by shared_ptr) plus one
// frozen answer relation per materialized view. Readers Pin() the current
// snapshot and evaluate against it with EvalOptions::shared_edb semantics
// (probe pre-built indices or scan, never build), so a reader neither blocks
// on nor is failed by the single writer installing the next epoch.
//
// Epoch reclamation is reference counting: Pin() hands out the Snapshot
// shared_ptr, Install() swaps the current one, and a retired epoch's frozen
// copies — and through them the last references to superseded shards — are
// freed when the last reader drains. No stop-the-world, no epoch guard.
//
// The SnapshotBuilder amortizes installs: a relation whose version() is
// unchanged since the previous epoch reuses that epoch's frozen copy, so the
// per-install cost is O(changed relations), and within a changed sharded
// relation O(outer bookkeeping + detached shards), not O(rows).
//
// The IndexVocabulary closes the adaptive-indexing loop: snapshots are deeply
// immutable, so a reader that would want an index it doesn't find cannot
// build it. Instead the (relation, columns) needs of every compiled serving
// plan are registered here, and the writer builds them on the *live*
// relations at the next install — the first query on a new access path scans,
// later epochs probe.

#ifndef FACTLOG_SERVE_SNAPSHOT_H_
#define FACTLOG_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ast/atom.h"
#include "core/transform_pass.h"
#include "eval/database.h"
#include "eval/relation.h"

namespace factlog::serve {

/// One materialized view's contribution to a snapshot: the view's (possibly
/// transformed) query atom and a frozen copy of the maintained relation that
/// answers it, with the answer-probe index pre-built.
struct ViewSnapshot {
  ast::Atom query;
  std::shared_ptr<eval::Relation> rel;
};

/// An immutable serving epoch. `db` shares the live database's ValueStore
/// (interning is thread-safe) and holds frozen relation copies; `views` maps
/// plan-cache keys to frozen view answer relations. Treat everything
/// reachable from here as read-only: evaluate with shared_edb, extract with
/// ExtractAnswersFrom(..., shared=true).
struct Snapshot {
  uint64_t epoch = 0;
  std::shared_ptr<eval::Database> db;
  std::map<std::string, ViewSnapshot> views;
};

/// Builds successive snapshots of a live database, reusing frozen relation
/// copies across epochs via Relation::version(). Single-writer: only the
/// serving writer (or the install path it calls) may use a builder.
class SnapshotBuilder {
 public:
  /// A new snapshot of `live` (views are filled in by the caller before
  /// installing). Relations are synced defensively; unchanged ones reuse the
  /// previous epoch's frozen copy.
  std::shared_ptr<Snapshot> Build(eval::Database* live);

  /// Frozen copies built over the builder's lifetime (reuses excluded).
  uint64_t copies() const { return copies_; }

 private:
  struct Cached {
    uint64_t version = 0;
    std::shared_ptr<eval::Relation> frozen;
  };
  std::map<std::string, Cached> cache_;
  uint64_t next_epoch_ = 1;
  uint64_t copies_ = 0;
};

/// Publishes snapshots to readers. Pin() is a mutex-guarded shared_ptr copy
/// (C++17 has no atomic<shared_ptr>), Install() swaps the current epoch;
/// superseded epochs free themselves when their last pin drops.
class SnapshotManager {
 public:
  /// The current snapshot, pinned: the epoch stays alive (and its shards
  /// frozen) until the returned pointer is released. Null before the first
  /// Install.
  std::shared_ptr<const Snapshot> Pin() const;

  void Install(std::shared_ptr<const Snapshot> snap);

  uint64_t current_epoch() const;
  uint64_t installs() const { return installs_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> current_;
  std::atomic<uint64_t> installs_{0};
};

/// Thread-safe registry of (relation, columns) index needs observed by
/// serving readers; the writer drains it at install time and builds the
/// indices on the live relations (see the header comment).
class IndexVocabulary {
 public:
  void Register(const std::string& rel, const std::vector<int>& cols);

  /// Registers every base-relation index the compiled plan's join order
  /// probes, plus the answer-extraction probe for its query — the same set
  /// exec::PrewarmIndexes builds eagerly for batches.
  void RegisterFromPlan(const core::CompiledQuery& plan);

  /// Returns the accumulated needs and clears the registry.
  std::map<std::string, std::set<std::vector<int>>> Drain();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::set<std::vector<int>>> needs_;
};

}  // namespace factlog::serve

#endif  // FACTLOG_SERVE_SNAPSHOT_H_
