// The request-queue serving front end.
//
// A Server multiplexes many client sessions over the engine's work-stealing
// pool: queries are admitted into a bounded queue and executed as detached
// pool tasks against a pinned MVCC snapshot (see serve/snapshot.h), while
// updates are serialized through a dedicated writer thread that applies them
// via the incremental-maintenance path and publishes a new snapshot epoch
// per drained batch. Completion is delivered by callback (on the worker that
// finished the request — keep callbacks light and non-blocking) or by
// std::future.
//
// Backpressure is reject-with-status, never blocking: a submit against a
// full admission queue, a full update queue, or a session that exhausted its
// in-flight budget returns kResourceExhausted immediately and the request is
// dropped before it costs anything. kFailedPrecondition marks structural
// misuse (unknown/closed session, stopped server).
//
// Consistency: the writer applies updates in submission order and installs
// one epoch per drained batch, so every epoch a reader pins equals the
// database state after some prefix of the accepted update sequence — the
// snapshot-consistency contract tests/serve_test.cc checks against a
// from-scratch oracle. An update's response carries the first epoch that
// includes it; any query submitted after the response completes against that
// epoch or a later one (read-your-writes).
//
// The Server is engine-agnostic: the read/apply/install hooks are supplied
// by api::Engine (StartServing), keeping this layer free of api dependencies
// and testable standalone.

#ifndef FACTLOG_SERVE_SERVER_H_
#define FACTLOG_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ast/atom.h"
#include "ast/program.h"
#include "common/status.h"
#include "core/transform_pass.h"
#include "eval/seminaive.h"
#include "exec/thread_pool.h"

namespace factlog::serve {

struct ServeOptions {
  /// Admission bound on queued + running queries; submits beyond it are
  /// rejected with kResourceExhausted.
  size_t max_queue = 1024;
  /// Admission bound on updates waiting for the writer.
  size_t max_update_queue = 1024;
  /// Per-session bound on in-flight requests (queries and updates combined).
  size_t max_inflight_per_session = 64;
  /// The writer drains at most this many updates per epoch install — larger
  /// batches amortize the install, smaller ones bound the staleness readers
  /// can observe.
  size_t max_update_batch = 256;
};

/// Completion of one query.
struct QueryResponse {
  Status status = Status::OK();
  eval::AnswerSet answers;
  /// The snapshot epoch the query executed against.
  uint64_t epoch = 0;
  /// Microseconds from accept to execution start, and executing.
  int64_t queue_us = 0;
  int64_t execute_us = 0;
  bool view_hit = false;
  bool cache_hit = false;
};

/// Completion of one update.
struct UpdateResponse {
  Status status = Status::OK();
  /// The first installed epoch that includes this update.
  uint64_t epoch = 0;
  /// Microseconds from accept to apply start, and applying (maintenance).
  int64_t queue_us = 0;
  int64_t apply_us = 0;
};

using QueryCallback = std::function<void(QueryResponse)>;
using UpdateCallback = std::function<void(UpdateResponse)>;

/// Cumulative serving counters.
struct ServerStats {
  uint64_t accepted_queries = 0;
  uint64_t completed_queries = 0;
  uint64_t rejected_queries = 0;
  uint64_t accepted_updates = 0;
  uint64_t completed_updates = 0;
  uint64_t rejected_updates = 0;
  uint64_t epochs_installed = 0;
  uint64_t sessions_opened = 0;
  /// Currently in flight (queries + updates).
  size_t inflight = 0;
};

class Server {
 public:
  /// The engine-side hooks the server drives. All three must be safe to call
  /// for the server's lifetime: `read` concurrently from many pool workers
  /// (it pins a snapshot internally), `apply` and `install` only from the
  /// single writer thread.
  struct Hooks {
    /// Answers (program, query, strategy) against the current snapshot,
    /// filling answers/epoch/flags/status.
    std::function<void(const ast::Program&, const ast::Atom&, core::Strategy,
                       QueryResponse*)>
        read;
    /// Applies one update (insert or delete of a ground fact) to the live
    /// database through incremental view maintenance.
    std::function<Status(bool insert, const ast::Atom& fact)> apply;
    /// Publishes the applied updates as a new snapshot epoch; returns it.
    std::function<uint64_t()> install;
  };

  /// `pool` must outlive the server (api::Engine guarantees it by member
  /// order). The writer thread starts immediately.
  Server(exec::ThreadPool* pool, Hooks hooks, ServeOptions options);
  ~Server();  // Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // ---- Sessions -----------------------------------------------------------

  /// Opens a session and returns its id (never 0).
  uint64_t OpenSession();
  /// Closes a session: further submits fail, in-flight requests complete.
  Status CloseSession(uint64_t session);

  // ---- Submission ---------------------------------------------------------

  /// Admits a query. OK means `done` will be invoked exactly once, from a
  /// pool worker; any non-OK return means it never will. The callback must
  /// not block (it holds a worker) and must not submit synchronously-waiting
  /// work back into this server.
  Status SubmitQuery(uint64_t session, ast::Program program, ast::Atom query,
                     core::Strategy strategy, QueryCallback done);
  /// Future flavor: rejection is delivered through the future's response
  /// status rather than a return value.
  std::future<QueryResponse> SubmitQuery(uint64_t session,
                                         ast::Program program, ast::Atom query,
                                         core::Strategy strategy);

  /// Admits an update (insert = true adds the fact, false removes it).
  /// Updates are applied in submission order by the writer thread.
  Status SubmitUpdate(uint64_t session, bool insert, ast::Atom fact,
                      UpdateCallback done);
  std::future<UpdateResponse> SubmitUpdate(uint64_t session, bool insert,
                                           ast::Atom fact);

  // ---- Lifecycle ----------------------------------------------------------

  /// Blocks until every accepted request has completed.
  void Drain();
  /// Rejects further submits, drains, and stops the writer. Idempotent.
  void Stop();

  ServerStats stats() const;
  size_t open_sessions() const;

 private:
  struct Session {
    size_t inflight = 0;
    bool open = true;
  };
  struct Update {
    uint64_t session = 0;
    bool insert = true;
    ast::Atom fact;
    UpdateCallback done;
    std::chrono::steady_clock::time_point submitted;
  };

  /// Admission check under mu_: session exists and has budget, the given
  /// queue count is under `limit`. Bumps the session + global counters on
  /// success.
  Status Admit(uint64_t session, size_t queued, size_t limit,
               uint64_t* rejected);
  /// Completion bookkeeping: decrements the session + global counters,
  /// retires closed drained sessions, wakes Drain().
  void FinishRequest(uint64_t session, uint64_t* completed);
  void WriterLoop();

  exec::ThreadPool* pool_;
  Hooks hooks_;
  ServeOptions options_;

  mutable std::mutex mu_;
  std::condition_variable writer_cv_;  // updates arrived or stopping
  std::condition_variable drain_cv_;   // a request completed
  std::map<uint64_t, Session> sessions_;
  std::deque<Update> updates_;
  uint64_t next_session_ = 1;
  size_t queued_queries_ = 0;  // queries admitted, not yet completed
  size_t inflight_ = 0;        // admitted, not yet completed (all kinds)
  bool stopping_ = false;
  ServerStats stats_;

  std::thread writer_;
};

}  // namespace factlog::serve

#endif  // FACTLOG_SERVE_SERVER_H_
