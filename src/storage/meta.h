// Checkpoint meta file: the single source of truth for what a database
// directory contains. Plain-data structs (no eval/inc types) so the storage
// layer stays dependency-free; the engine converts to and from live objects.
//
// The page file carries no bookkeeping of its own — the meta file records
// the value store, the relation catalog with every shard's page chain, the
// materialized-view dumps, the persisted plan descriptors, and the page
// allocator state. It is written atomically (meta.tmp + fsync + rename), so
// a crash mid-checkpoint leaves the previous meta file intact and the
// previous checkpoint's pages untouched (shadow paging: post-checkpoint
// writes relocated to fresh pages).
//
// File layout: [u32 magic][u32 version][u64 payload_len][payload]
//              [u32 crc32 over payload]

#ifndef FACTLOG_STORAGE_META_H_
#define FACTLOG_STORAGE_META_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace factlog::storage {

/// One interned value, in id order. Children of a compound always have
/// smaller ids than the compound itself, so re-interning entries in order
/// reproduces the exact id assignment.
struct ValueDumpEntry {
  uint8_t kind = 0;  // 0 = int, 1 = symbol, 2 = compound
  int64_t int_value = 0;
  std::string symbol;  // symbol text or compound functor
  std::vector<int32_t> children;
};

/// One shard's page chain (a flat relation is its single shard 0). Shards
/// that cannot be paged (arity 0, or a row wider than a page) persist their
/// rows inline in the meta file instead.
struct ShardDump {
  uint64_t num_rows = 0;
  std::vector<PageId> chain;
  /// num_rows * arity ValueIds when the shard is not page-backed.
  std::vector<int32_t> inline_rows;
};

/// One base relation's catalog entry.
struct RelationDump {
  std::string name;
  uint32_t arity = 0;
  uint32_t num_shards = 1;  // 1 = flat layout
  std::vector<int32_t> part_cols;
  std::vector<ShardDump> shards;
};

/// One predicate of a materialized view's IDB, dumped by value. Views are
/// RAM-resident (write-hot); their rows live in the meta file, not in pages.
struct ViewPredDump {
  std::string pred;
  uint32_t arity = 0;
  uint8_t counts_enabled = 0;
  uint64_t num_rows = 0;  // explicit: arity-0 rows leave `rows` empty
  /// num_rows * arity interned ValueIds (valid against the dumped store).
  std::vector<int32_t> rows;
  /// Per-row support counts; empty unless counts_enabled.
  std::vector<int64_t> row_counts;
};

/// One materialized view: enough to rebuild the inc::MaterializedView
/// without re-evaluating (the engine recompiles the rules, then fills the
/// result relations from the dump).
struct ViewDumpRec {
  std::string key;  // the engine's plan-cache key for the view
  std::string program_text;
  std::string query_text;
  std::string strategy;
  std::vector<ViewPredDump> preds;
};

/// One cached plan worth rebuilding on open: the source text plus the extent
/// hints it was costed against, so the engine can detect stale plans.
struct PlanDescriptor {
  std::string cache_key;
  std::string strategy;
  std::string program_text;
  std::string query_text;
  std::map<std::string, uint64_t> extent_hints;
};

/// One observed adornment pattern of a predicate: decayed probe/match
/// averages from the runtime statistics catalog (plan::StatsCatalog).
struct ProbeStatDump {
  std::string pattern;  // e.g. "bf": first column bound
  double probes = 0.0;
  double matched = 0.0;
  uint64_t runs = 0;
};

/// One predicate's entry in the runtime statistics catalog. Persisting the
/// catalog lets a reopened engine cost plans from measured cardinalities
/// immediately instead of re-learning them.
struct PredicateStatsDump {
  std::string pred;
  double extent = 0.0;
  uint64_t extent_runs = 0;
  double delta_mean = 0.0;
  uint64_t delta_runs = 0;
  std::vector<ProbeStatDump> probes;
};

struct CheckpointMeta {
  /// Last epoch the checkpoint covers; WAL commits continue from here.
  uint64_t epoch = 0;
  std::vector<ValueDumpEntry> values;
  std::vector<RelationDump> relations;
  std::vector<ViewDumpRec> views;
  std::vector<PlanDescriptor> plans;
  /// Runtime statistics catalog (version >= 2 meta files; empty before).
  std::vector<PredicateStatsDump> stats;
  /// Page allocator state at checkpoint time.
  PageId num_pages = 0;
  std::vector<PageId> free_list;
};

/// Serializes `meta` to `path` atomically: write path+".tmp", fsync, rename.
Status WriteCheckpointMeta(const std::string& path, const CheckpointMeta& meta);

/// Loads and validates a meta file. NotFound when the file does not exist
/// (fresh database); Internal on a malformed or CRC-mismatching file.
Result<CheckpointMeta> ReadCheckpointMeta(const std::string& path);

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_META_H_
