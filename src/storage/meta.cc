#include "storage/meta.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/crc32.h"
#include "storage/serde.h"

namespace factlog::storage {

namespace {

constexpr uint32_t kMetaMagic = 0x464C4D54;  // "FLMT"
// Version 2 appends the runtime statistics catalog after the free list;
// version 1 files (no catalog) still read fine.
constexpr uint32_t kMetaVersion = 2;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void WriteValues(const std::vector<ValueDumpEntry>& values, BinWriter* w) {
  w->U64(values.size());
  for (const ValueDumpEntry& v : values) {
    w->U8(v.kind);
    switch (v.kind) {
      case 0:
        w->I64(v.int_value);
        break;
      case 1:
        w->Str(v.symbol);
        break;
      default:
        w->Str(v.symbol);
        w->U32(static_cast<uint32_t>(v.children.size()));
        for (int32_t c : v.children) w->I32(c);
        break;
    }
  }
}

bool ReadValues(BinReader* r, std::vector<ValueDumpEntry>* values) {
  uint64_t n = r->U64();
  if (!r->ok()) return false;
  values->reserve(n);
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    ValueDumpEntry v;
    v.kind = r->U8();
    switch (v.kind) {
      case 0:
        v.int_value = r->I64();
        break;
      case 1:
        v.symbol = r->Str();
        break;
      case 2: {
        v.symbol = r->Str();
        uint32_t nc = r->U32();
        if (!r->ok()) return false;
        v.children.reserve(nc);
        for (uint32_t c = 0; c < nc; ++c) v.children.push_back(r->I32());
        break;
      }
      default:
        return false;
    }
    values->push_back(std::move(v));
  }
  return r->ok();
}

void WriteRelations(const std::vector<RelationDump>& rels, BinWriter* w) {
  w->U32(static_cast<uint32_t>(rels.size()));
  for (const RelationDump& rel : rels) {
    w->Str(rel.name);
    w->U32(rel.arity);
    w->U32(rel.num_shards);
    w->U32(static_cast<uint32_t>(rel.part_cols.size()));
    for (int32_t c : rel.part_cols) w->I32(c);
    w->U32(static_cast<uint32_t>(rel.shards.size()));
    for (const ShardDump& sh : rel.shards) {
      w->U64(sh.num_rows);
      w->U32(static_cast<uint32_t>(sh.chain.size()));
      for (PageId p : sh.chain) w->U32(p);
      w->U64(sh.inline_rows.size());
      for (int32_t x : sh.inline_rows) w->I32(x);
    }
  }
}

bool ReadRelations(BinReader* r, std::vector<RelationDump>* rels) {
  uint32_t n = r->U32();
  if (!r->ok()) return false;
  rels->reserve(n);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    RelationDump rel;
    rel.name = r->Str();
    rel.arity = r->U32();
    rel.num_shards = r->U32();
    uint32_t pc = r->U32();
    if (!r->ok()) return false;
    for (uint32_t c = 0; c < pc; ++c) rel.part_cols.push_back(r->I32());
    uint32_t ns = r->U32();
    if (!r->ok()) return false;
    rel.shards.reserve(ns);
    for (uint32_t s = 0; s < ns && r->ok(); ++s) {
      ShardDump sh;
      sh.num_rows = r->U64();
      uint32_t np = r->U32();
      if (!r->ok()) return false;
      sh.chain.reserve(np);
      for (uint32_t p = 0; p < np; ++p) sh.chain.push_back(r->U32());
      uint64_t ni = r->U64();
      if (!r->ok()) return false;
      sh.inline_rows.reserve(ni);
      for (uint64_t x = 0; x < ni && r->ok(); ++x) {
        sh.inline_rows.push_back(r->I32());
      }
      rel.shards.push_back(std::move(sh));
    }
    rels->push_back(std::move(rel));
  }
  return r->ok();
}

void WriteViews(const std::vector<ViewDumpRec>& views, BinWriter* w) {
  w->U32(static_cast<uint32_t>(views.size()));
  for (const ViewDumpRec& v : views) {
    w->Str(v.key);
    w->Str(v.program_text);
    w->Str(v.query_text);
    w->Str(v.strategy);
    w->U32(static_cast<uint32_t>(v.preds.size()));
    for (const ViewPredDump& p : v.preds) {
      w->Str(p.pred);
      w->U32(p.arity);
      w->U8(p.counts_enabled);
      w->U64(p.num_rows);
      w->U64(p.rows.size());
      for (int32_t x : p.rows) w->I32(x);
      w->U64(p.row_counts.size());
      for (int64_t c : p.row_counts) w->I64(c);
    }
  }
}

bool ReadViews(BinReader* r, std::vector<ViewDumpRec>* views) {
  uint32_t n = r->U32();
  if (!r->ok()) return false;
  views->reserve(n);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    ViewDumpRec v;
    v.key = r->Str();
    v.program_text = r->Str();
    v.query_text = r->Str();
    v.strategy = r->Str();
    uint32_t np = r->U32();
    if (!r->ok()) return false;
    v.preds.reserve(np);
    for (uint32_t p = 0; p < np && r->ok(); ++p) {
      ViewPredDump pd;
      pd.pred = r->Str();
      pd.arity = r->U32();
      pd.counts_enabled = r->U8();
      pd.num_rows = r->U64();
      uint64_t nr = r->U64();
      if (!r->ok()) return false;
      pd.rows.reserve(nr);
      for (uint64_t x = 0; x < nr && r->ok(); ++x) pd.rows.push_back(r->I32());
      uint64_t nc = r->U64();
      if (!r->ok()) return false;
      pd.row_counts.reserve(nc);
      for (uint64_t c = 0; c < nc && r->ok(); ++c) {
        pd.row_counts.push_back(r->I64());
      }
      v.preds.push_back(std::move(pd));
    }
    views->push_back(std::move(v));
  }
  return r->ok();
}

void WritePlans(const std::vector<PlanDescriptor>& plans, BinWriter* w) {
  w->U32(static_cast<uint32_t>(plans.size()));
  for (const PlanDescriptor& p : plans) {
    w->Str(p.cache_key);
    w->Str(p.strategy);
    w->Str(p.program_text);
    w->Str(p.query_text);
    w->U32(static_cast<uint32_t>(p.extent_hints.size()));
    for (const auto& [pred, rows] : p.extent_hints) {
      w->Str(pred);
      w->U64(rows);
    }
  }
}

bool ReadPlans(BinReader* r, std::vector<PlanDescriptor>* plans) {
  uint32_t n = r->U32();
  if (!r->ok()) return false;
  plans->reserve(n);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    PlanDescriptor p;
    p.cache_key = r->Str();
    p.strategy = r->Str();
    p.program_text = r->Str();
    p.query_text = r->Str();
    uint32_t nh = r->U32();
    if (!r->ok()) return false;
    for (uint32_t h = 0; h < nh && r->ok(); ++h) {
      std::string pred = r->Str();
      uint64_t rows = r->U64();
      p.extent_hints[pred] = rows;
    }
    plans->push_back(std::move(p));
  }
  return r->ok();
}

void WriteStats(const std::vector<PredicateStatsDump>& stats, BinWriter* w) {
  w->U32(static_cast<uint32_t>(stats.size()));
  for (const PredicateStatsDump& s : stats) {
    w->Str(s.pred);
    w->F64(s.extent);
    w->U64(s.extent_runs);
    w->F64(s.delta_mean);
    w->U64(s.delta_runs);
    w->U32(static_cast<uint32_t>(s.probes.size()));
    for (const ProbeStatDump& p : s.probes) {
      w->Str(p.pattern);
      w->F64(p.probes);
      w->F64(p.matched);
      w->U64(p.runs);
    }
  }
}

bool ReadStats(BinReader* r, std::vector<PredicateStatsDump>* stats) {
  uint32_t n = r->U32();
  if (!r->ok()) return false;
  stats->reserve(n);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    PredicateStatsDump s;
    s.pred = r->Str();
    s.extent = r->F64();
    s.extent_runs = r->U64();
    s.delta_mean = r->F64();
    s.delta_runs = r->U64();
    uint32_t np = r->U32();
    if (!r->ok()) return false;
    s.probes.reserve(np);
    for (uint32_t p = 0; p < np && r->ok(); ++p) {
      ProbeStatDump ps;
      ps.pattern = r->Str();
      ps.probes = r->F64();
      ps.matched = r->F64();
      ps.runs = r->U64();
      s.probes.push_back(std::move(ps));
    }
    stats->push_back(std::move(s));
  }
  return r->ok();
}

}  // namespace

Status WriteCheckpointMeta(const std::string& path,
                           const CheckpointMeta& meta) {
  BinWriter payload;
  payload.U64(meta.epoch);
  WriteValues(meta.values, &payload);
  WriteRelations(meta.relations, &payload);
  WriteViews(meta.views, &payload);
  WritePlans(meta.plans, &payload);
  payload.U32(meta.num_pages);
  payload.U32(static_cast<uint32_t>(meta.free_list.size()));
  for (PageId p : meta.free_list) payload.U32(p);
  WriteStats(meta.stats, &payload);

  BinWriter file;
  file.U32(kMetaMagic);
  file.U32(kMetaVersion);
  file.U64(payload.size());
  file.Bytes(payload.str().data(), payload.size());
  file.U32(Crc32(payload.str().data(), payload.size()));

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open '" + tmp + "'");
  const char* p = file.str().data();
  size_t left = file.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write meta");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync meta");
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename meta into place");
  }
  // Durably record the rename itself (the directory entry).
  int dfd = ::open(path.substr(0, path.find_last_of('/')).c_str(),
                   O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Result<CheckpointMeta> ReadCheckpointMeta(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no checkpoint meta at '" + path + "'");
    }
    return Errno("open '" + path + "'");
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read meta");
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  BinReader header(data.data(), data.size());
  if (header.U32() != kMetaMagic) {
    return Status::Internal("meta file '" + path + "': bad magic");
  }
  const uint32_t version = header.U32();
  if (version < 1 || version > kMetaVersion) {
    return Status::Internal("meta file '" + path + "': unsupported version");
  }
  uint64_t payload_len = header.U64();
  if (!header.ok() || data.size() < header.pos() + payload_len + 4) {
    return Status::Internal("meta file '" + path + "': truncated");
  }
  const char* payload = data.data() + header.pos();
  uint32_t stored_crc;
  std::memcpy(&stored_crc, payload + payload_len, 4);
  if (Crc32(payload, payload_len) != stored_crc) {
    return Status::Internal("meta file '" + path + "': checksum mismatch");
  }

  CheckpointMeta meta;
  BinReader r(payload, payload_len);
  meta.epoch = r.U64();
  if (!ReadValues(&r, &meta.values) || !ReadRelations(&r, &meta.relations) ||
      !ReadViews(&r, &meta.views) || !ReadPlans(&r, &meta.plans)) {
    return Status::Internal("meta file '" + path + "': malformed payload");
  }
  meta.num_pages = r.U32();
  uint32_t nf = r.U32();
  if (!r.ok()) {
    return Status::Internal("meta file '" + path + "': malformed payload");
  }
  meta.free_list.reserve(nf);
  for (uint32_t i = 0; i < nf; ++i) meta.free_list.push_back(r.U32());
  if (version >= 2 && !ReadStats(&r, &meta.stats)) {
    return Status::Internal("meta file '" + path + "': malformed payload");
  }
  if (!r.ok() || !r.AtEnd()) {
    return Status::Internal("meta file '" + path + "': malformed payload");
  }
  return meta;
}

}  // namespace factlog::storage
