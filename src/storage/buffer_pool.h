// BufferPool: a fixed budget of in-memory page frames over a PageFile, with
// pin/unpin reference counts, clock (second-chance) eviction of unpinned
// pages, and dirty-page write-back on eviction and checkpoint flush.
//
// Thread safety: the page table, clock state, and frame metadata are guarded
// by one mutex; Pin/Unpin are safe from concurrent evaluation workers. A
// pinned frame's bytes are stable until its last Unpin, so readers copy rows
// out under their own pin (see paged_store.h). Disk I/O for a miss happens
// under the lock — acceptable for this engine's read pattern (row copies are
// small and the CI container is effectively single-core); a per-frame latch
// split is the known next step if profile data demands it.
//
// When every frame is pinned simultaneously the pool grows past its budget
// instead of deadlocking (counted in stats().overflow_frames) — by design
// the evaluators pin one page per row read, so overflow indicates a bug or a
// budget smaller than the pin working set (e.g. fewer frames than threads).

#ifndef FACTLOG_STORAGE_BUFFER_POOL_H_
#define FACTLOG_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace factlog::storage {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  uint64_t overflow_frames = 0;
  size_t dirty_pages = 0;  // currently dirty frames (point-in-time)

  double hit_rate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 1.0 : static_cast<double>(hits) / total;
  }
};

class BufferPool {
 public:
  struct Frame {
    PageId page = kInvalidPage;
    uint32_t pins = 0;
    bool dirty = false;
    bool referenced = false;  // clock second-chance bit
    std::unique_ptr<uint8_t[]> data;
  };

  BufferPool(PageFile* file, size_t frame_budget)
      : file_(file), budget_(frame_budget == 0 ? 1 : frame_budget) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins `page`, reading it from disk on a miss (possibly evicting an
  /// unpinned frame; a dirty victim is written back first). The returned
  /// frame's bytes are stable until the matching Unpin.
  Result<Frame*> Pin(PageId page);
  /// Allocates a fresh page (PageInit'd) and returns it pinned and dirty.
  Result<Frame*> NewPage();
  void Unpin(Frame* frame, bool dirty);

  /// Writes every dirty frame back and fsyncs the file (checkpoint flush).
  /// Frames stay resident and clean.
  Status FlushAll();
  /// Drops `page`'s frame if resident and unpinned (the page was freed).
  void Discard(PageId page);

  BufferPoolStats stats() const;
  size_t frames_in_use() const;
  size_t frame_budget() const { return budget_; }

 private:
  /// Finds or makes a free frame (clock eviction; grows past the budget when
  /// every frame is pinned). Caller holds mu_.
  Result<size_t> AcquireFrameLocked();

  PageFile* file_;
  size_t budget_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  size_t clock_hand_ = 0;
  BufferPoolStats stats_;
};

/// RAII pin: unpins on destruction, marking dirty when requested.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, BufferPool::Frame* frame)
      : pool_(pool), frame_(frame) {}
  PageRef(PageRef&& o) noexcept { *this = std::move(o); }
  PageRef& operator=(PageRef&& o) noexcept {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.frame_ = nullptr;
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  const uint8_t* data() const { return frame_->data.get(); }
  uint8_t* mutable_data() {
    dirty_ = true;
    return frame_->data.get();
  }
  bool valid() const { return frame_ != nullptr; }

  void Release() {
    if (frame_ != nullptr) pool_->Unpin(frame_, dirty_);
    frame_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  BufferPool::Frame* frame_ = nullptr;
  bool dirty_ = false;
};

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_BUFFER_POOL_H_
