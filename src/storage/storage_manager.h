// StorageManager: one database directory's persistence coordinator.
//
// Directory layout:
//   <dir>/pages.db   slotted pages backing the base relations' row stores
//   <dir>/meta.db    checkpoint meta (catalog, value store, views, plans)
//   <dir>/wal.log    logical WAL since the last checkpoint
//
// Open() loads the last checkpoint's meta (if any) and the WAL's committed
// prefix; the engine then restores its state from recovered_meta() and
// replays recovered_records() through its normal mutation paths. The WAL
// file is truncated to the committed prefix before new appends, so a torn
// tail never precedes fresh records.
//
// Epochs: the engine batches mutations into epochs (one per serving install,
// one per synchronous mutation otherwise) and calls CommitEpoch once per
// batch — one fsync per epoch, the WAL-batching unit the shard seam already
// defines. Checkpoint() flushes every dirty page, writes the meta file
// atomically, resets the WAL, and only then publishes pending page frees
// (shadow paging: until the rename commits, the previous checkpoint's pages
// stay untouched on disk).

#ifndef FACTLOG_STORAGE_STORAGE_MANAGER_H_
#define FACTLOG_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/atom.h"
#include "common/status.h"
#include "storage/meta.h"
#include "storage/paged_store.h"
#include "storage/wal.h"

namespace factlog::storage {

struct StorageStats {
  BufferPoolStats pool;
  uint64_t wal_bytes = 0;
  uint64_t wal_records_logged = 0;
  uint64_t wal_records_replayed = 0;
  uint64_t last_committed_epoch = 0;
  uint64_t checkpoints = 0;
  uint64_t num_pages = 0;
  uint64_t free_pages = 0;
  size_t frame_budget = 0;
};

class StorageManager {
 public:
  struct Options {
    std::string dir;
    /// Buffer-pool frames (pages held in memory at once).
    size_t frame_budget = 1024;
  };

  /// Opens (creating when absent) the database directory: page file, last
  /// checkpoint meta, and the WAL's committed prefix.
  static Result<std::unique_ptr<StorageManager>> Open(const Options& options);

  /// Whether Open found a checkpoint to restore from.
  bool has_checkpoint() const { return has_checkpoint_; }
  const CheckpointMeta& recovered_meta() const { return meta_; }
  /// The committed WAL records to replay, in order (kCommit records
  /// included, for epoch tracking).
  const std::vector<WalRecord>& recovered_records() const {
    return recovered_records_;
  }
  /// Drops the recovery buffers once the engine has replayed them.
  void DiscardRecoveryState();

  const std::shared_ptr<TableSpace>& tablespace() const { return space_; }

  /// Appends one fact mutation to the WAL (no fsync; CommitEpoch flushes).
  Status LogFact(bool insert, const ast::Atom& fact);
  /// Commits the epoch: appends the commit record and fsyncs. No-op when
  /// nothing was logged since the last commit (empty epochs cost nothing).
  Status CommitEpoch(uint64_t epoch);
  uint64_t last_committed_epoch() const { return last_committed_epoch_; }
  /// Records logged since the last commit (the open epoch's size).
  uint64_t pending_records() const { return wal_.pending_records(); }

  /// Writes a checkpoint: flushes dirty pages, persists `meta` atomically
  /// (its allocator fields are filled in here), resets the WAL, publishes
  /// pending page frees. On return the WAL is empty and every page the new
  /// meta references is durable.
  Status Checkpoint(CheckpointMeta meta);

  StorageStats stats() const;

 private:
  StorageManager() = default;

  std::string dir_;
  std::shared_ptr<TableSpace> space_;
  WalWriter wal_;
  CheckpointMeta meta_;
  bool has_checkpoint_ = false;
  std::vector<WalRecord> recovered_records_;
  uint64_t last_committed_epoch_ = 0;
  uint64_t records_logged_ = 0;
  uint64_t records_replayed_ = 0;
  uint64_t checkpoints_ = 0;
};

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_STORAGE_MANAGER_H_
