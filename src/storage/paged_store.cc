#include "storage/paged_store.h"

#include <cstring>

#include "common/dcheck.h"

namespace factlog::storage {

PagedRowStore::PagedRowStore(std::shared_ptr<TableSpace> space,
                             size_t row_bytes)
    : space_(std::move(space)),
      row_bytes_(row_bytes),
      rows_per_page_(PageCapacity(row_bytes)) {
  FACTLOG_DCHECK(RowFits(row_bytes));
}

PagedRowStore::~PagedRowStore() {
  for (PageId p : chain_) {
    space_->pool.Discard(p);
    space_->file.FreePending(p);
  }
}

Status PagedRowStore::Append(const void* row) {
  if (num_rows_ % rows_per_page_ == 0) {
    // Last page is full (or the store is empty): start a fresh page.
    FACTLOG_ASSIGN_OR_RETURN(auto* frame, space_->pool.NewPage());
    int slot = PageAppend(frame->data.get(), row, row_bytes_);
    PageId page = frame->page;
    space_->pool.Unpin(frame, true);
    if (slot != 0) {
      return Status::Internal("paged store: fresh page rejected append");
    }
    chain_.push_back(page);
    sealed_.push_back(false);
  } else {
    FACTLOG_ASSIGN_OR_RETURN(auto* frame, PinForWrite(chain_.size() - 1));
    int slot = PageAppend(frame->data.get(), row, row_bytes_);
    space_->pool.Unpin(frame, true);
    if (slot < 0) {
      return Status::Internal("paged store: page full before rows_per_page");
    }
  }
  ++num_rows_;
  return Status::OK();
}

Status PagedRowStore::CopyRow(size_t idx, void* out) const {
  size_t chain_idx = idx / rows_per_page_;
  uint16_t slot = static_cast<uint16_t>(idx % rows_per_page_);
  FACTLOG_ASSIGN_OR_RETURN(auto* frame, space_->pool.Pin(chain_[chain_idx]));
  std::memcpy(out, PageRecord(frame->data.get(), slot), row_bytes_);
  space_->pool.Unpin(frame, false);
  return Status::OK();
}

Status PagedRowStore::WriteRow(size_t idx, const void* row) {
  size_t chain_idx = idx / rows_per_page_;
  uint16_t slot = static_cast<uint16_t>(idx % rows_per_page_);
  FACTLOG_ASSIGN_OR_RETURN(auto* frame, PinForWrite(chain_idx));
  std::memcpy(PageRecordMut(frame->data.get(), slot), row, row_bytes_);
  space_->pool.Unpin(frame, true);
  return Status::OK();
}

Status PagedRowStore::PopBack() {
  if (num_rows_ == 0) {
    return Status::Internal("paged store: PopBack on empty store");
  }
  size_t rows_in_last = num_rows_ - (chain_.size() - 1) * rows_per_page_;
  if (rows_in_last == 1) {
    // The last page empties: drop it instead of relocating a sealed page
    // just to pop its only row.
    PageId p = chain_.back();
    space_->pool.Discard(p);
    space_->file.FreePending(p);
    chain_.pop_back();
    sealed_.pop_back();
  } else {
    FACTLOG_ASSIGN_OR_RETURN(auto* frame, PinForWrite(chain_.size() - 1));
    PagePopBack(frame->data.get());
    space_->pool.Unpin(frame, true);
  }
  --num_rows_;
  return Status::OK();
}

Status PagedRowStore::Clear() {
  for (PageId p : chain_) {
    space_->pool.Discard(p);
    space_->file.FreePending(p);
  }
  chain_.clear();
  sealed_.clear();
  num_rows_ = 0;
  return Status::OK();
}

void PagedRowStore::SealAll() {
  sealed_.assign(chain_.size(), true);
}

void PagedRowStore::Restore(std::vector<PageId> chain, size_t num_rows) {
  chain_ = std::move(chain);
  sealed_.assign(chain_.size(), true);
  num_rows_ = num_rows;
}

Status PagedRowStore::Cow(size_t chain_idx) {
  PageId old_page = chain_[chain_idx];
  FACTLOG_ASSIGN_OR_RETURN(auto* old_frame, space_->pool.Pin(old_page));
  auto new_frame_r = space_->pool.NewPage();
  if (!new_frame_r.ok()) {
    space_->pool.Unpin(old_frame, false);
    return new_frame_r.status();
  }
  auto* new_frame = *new_frame_r;
  std::memcpy(new_frame->data.get(), old_frame->data.get(), kPageSize);
  PageId new_page = new_frame->page;
  space_->pool.Unpin(new_frame, true);
  space_->pool.Unpin(old_frame, false);
  space_->pool.Discard(old_page);
  space_->file.FreePending(old_page);
  chain_[chain_idx] = new_page;
  sealed_[chain_idx] = false;
  return Status::OK();
}

Result<BufferPool::Frame*> PagedRowStore::PinForWrite(size_t chain_idx) {
  if (sealed_[chain_idx]) {
    FACTLOG_RETURN_IF_ERROR(Cow(chain_idx));
  }
  return space_->pool.Pin(chain_[chain_idx]);
}

}  // namespace factlog::storage
