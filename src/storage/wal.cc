#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "storage/crc32.h"
#include "storage/serde.h"

namespace factlog::storage {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, p + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write wal");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// A record larger than this is treated as corruption during recovery. The
// engine's facts are tiny; the bound only exists so a garbage length field
// can't drive a huge allocation.
constexpr uint32_t kMaxRecordLen = 64u << 20;

}  // namespace

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path, uint64_t valid_bytes) {
  Close();
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return Errno("open wal '" + path + "'");
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Errno("lseek wal");
  if (static_cast<uint64_t>(size) > valid_bytes) {
    if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
      return Errno("ftruncate wal tail");
    }
    if (::lseek(fd_, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
      return Errno("lseek wal");
    }
  }
  bytes_ = std::min<uint64_t>(static_cast<uint64_t>(size), valid_bytes);
  pending_ = 0;
  return Status::OK();
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  bytes_ = 0;
  pending_ = 0;
}

Status WalWriter::Append(WalRecordType type, const std::string& payload) {
  BinWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size() + 1));
  frame.U8(static_cast<uint8_t>(type));
  frame.Bytes(payload.data(), payload.size());
  uint32_t crc = Crc32(frame.str().data() + 4, payload.size() + 1);
  frame.U32(crc);
  FACTLOG_RETURN_IF_ERROR(WriteAll(fd_, frame.str().data(), frame.size()));
  bytes_ += frame.size();
  ++pending_;
  return Status::OK();
}

Status WalWriter::Commit(uint64_t epoch) {
  FACTLOG_RETURN_IF_ERROR(
      Append(WalRecordType::kCommit, EncodeCommitRecord(epoch)));
  if (::fsync(fd_) != 0) return Errno("fsync wal");
  pending_ = 0;
  return Status::OK();
}

Status WalWriter::Reset() {
  if (::ftruncate(fd_, 0) != 0) return Errno("ftruncate wal");
  if (::lseek(fd_, 0, SEEK_SET) < 0) return Errno("lseek wal");
  if (::fsync(fd_) != 0) return Errno("fsync wal");
  bytes_ = 0;
  pending_ = 0;
  return Status::OK();
}

Status ReadWal(const std::string& path, std::vector<WalRecord>* records,
               uint64_t* valid_bytes) {
  records->clear();
  *valid_bytes = 0;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::OK();  // no log yet: empty
    return Errno("open wal '" + path + "'");
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read wal");
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t pos = 0;
  while (pos + 4 <= data.size()) {
    uint32_t len;
    std::memcpy(&len, data.data() + pos, 4);
    if (len == 0 || len > kMaxRecordLen) break;
    if (pos + 4 + len + 4 > data.size()) break;  // truncated record
    const char* body = data.data() + pos + 4;
    uint32_t stored_crc;
    std::memcpy(&stored_crc, body + len, 4);
    if (Crc32(body, len) != stored_crc) break;  // torn or corrupted
    uint8_t type = static_cast<uint8_t>(body[0]);
    if (type < 1 || type > 3) break;
    records->push_back(WalRecord{static_cast<WalRecordType>(type),
                                 std::string(body + 1, len - 1)});
    pos += 4 + len + 4;
    *valid_bytes = pos;
  }
  return Status::OK();
}

}  // namespace factlog::storage
