// CRC-32 (IEEE 802.3 polynomial, reflected) for WAL record and page
// integrity checks. Table-driven, computed once at first use; no external
// dependency so the storage layer stays self-contained.

#ifndef FACTLOG_STORAGE_CRC32_H_
#define FACTLOG_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace factlog::storage {

inline const uint32_t* Crc32Table() {
  static const auto* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// One-shot CRC over a byte range. `seed` chains partial computations:
/// Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)).
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_CRC32_H_
