// Logical WAL record payloads: ground facts and epoch commits.
//
// The WAL is fact-level, not page-level. A record says "insert p(1, 2)" —
// never "write these bytes at page 17" — so replay routes through the same
// engine entry points as live traffic and the views stay consistent without
// any physical redo. Replay over an already-applied prefix is safe because
// the engine's mutation paths are no-ops on duplicates/absences (last-writer
// -wins per fact).
//
// Facts are ground ast::Atoms serialized structurally: nested compound terms
// (lists, cons cells) round-trip exactly, so the WAL is independent of the
// ValueStore's id assignment — replay re-interns.

#ifndef FACTLOG_STORAGE_LOG_RECORDS_H_
#define FACTLOG_STORAGE_LOG_RECORDS_H_

#include <cstdint>
#include <string>

#include "ast/atom.h"
#include "storage/serde.h"

namespace factlog::storage {

enum class WalRecordType : uint8_t {
  kAddFact = 1,
  kRemoveFact = 2,
  /// Epoch boundary: every preceding record since the last commit becomes
  /// durable and atomic as a unit. Payload: u64 epoch.
  kCommit = 3,
};

/// Serializes a ground fact (predicate + argument terms). Variables cannot
/// appear (the engine only logs facts it validated as ground).
std::string EncodeFactRecord(const ast::Atom& fact);
/// Decodes a fact payload. Returns false on malformed bytes.
bool DecodeFactRecord(const void* data, size_t len, ast::Atom* fact);

std::string EncodeCommitRecord(uint64_t epoch);
bool DecodeCommitRecord(const void* data, size_t len, uint64_t* epoch);

/// Term codec, exposed for tests. Tags: 0 = int, 1 = symbol, 2 = compound,
/// 3 = variable (never produced by the engine; kept so the codec totalizes
/// over ast::Term).
void EncodeTerm(const ast::Term& term, BinWriter* w);
bool DecodeTerm(BinReader* r, ast::Term* term);

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_LOG_RECORDS_H_
