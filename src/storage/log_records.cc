#include "storage/log_records.h"

namespace factlog::storage {

namespace {

// Bounds nesting during decode so corrupted bytes can't recurse without
// limit. Real programs nest lists a few levels deep; 10k leaves room for
// pathological but legitimate data.
constexpr int kMaxTermDepth = 10000;

bool DecodeTermBounded(BinReader* r, ast::Term* term, int depth) {
  if (depth > kMaxTermDepth) return false;
  switch (r->U8()) {
    case 0:
      *term = ast::Term::Int(r->I64());
      return r->ok();
    case 1:
      *term = ast::Term::Sym(r->Str());
      return r->ok();
    case 2: {
      std::string functor = r->Str();
      uint32_t n = r->U32();
      if (!r->ok()) return false;
      std::vector<ast::Term> args;
      args.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        ast::Term child = ast::Term::Int(0);
        if (!DecodeTermBounded(r, &child, depth + 1)) return false;
        args.push_back(std::move(child));
      }
      *term = ast::Term::App(std::move(functor), std::move(args));
      return true;
    }
    case 3:
      *term = ast::Term::Var(r->Str());
      return r->ok();
    default:
      return false;
  }
}

}  // namespace

void EncodeTerm(const ast::Term& term, BinWriter* w) {
  switch (term.kind()) {
    case ast::Term::Kind::kInt:
      w->U8(0);
      w->I64(term.int_value());
      return;
    case ast::Term::Kind::kSymbol:
      w->U8(1);
      w->Str(term.symbol());
      return;
    case ast::Term::Kind::kCompound:
      w->U8(2);
      w->Str(term.symbol());
      w->U32(static_cast<uint32_t>(term.args().size()));
      for (const ast::Term& a : term.args()) EncodeTerm(a, w);
      return;
    case ast::Term::Kind::kVariable:
      w->U8(3);
      w->Str(term.var_name());
      return;
  }
}

bool DecodeTerm(BinReader* r, ast::Term* term) {
  return DecodeTermBounded(r, term, 0);
}

std::string EncodeFactRecord(const ast::Atom& fact) {
  BinWriter w;
  w.Str(fact.predicate());
  w.U32(static_cast<uint32_t>(fact.arity()));
  for (const ast::Term& t : fact.args()) EncodeTerm(t, &w);
  return w.Take();
}

bool DecodeFactRecord(const void* data, size_t len, ast::Atom* fact) {
  BinReader r(data, len);
  std::string pred = r.Str();
  uint32_t arity = r.U32();
  if (!r.ok() || pred.empty()) return false;
  std::vector<ast::Term> args;
  args.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    ast::Term t = ast::Term::Int(0);
    if (!DecodeTerm(&r, &t)) return false;
    args.push_back(std::move(t));
  }
  if (!r.AtEnd()) return false;  // trailing bytes: corrupted record
  *fact = ast::Atom(std::move(pred), std::move(args));
  return true;
}

std::string EncodeCommitRecord(uint64_t epoch) {
  BinWriter w;
  w.U64(epoch);
  return w.Take();
}

bool DecodeCommitRecord(const void* data, size_t len, uint64_t* epoch) {
  BinReader r(data, len);
  *epoch = r.U64();
  return r.ok() && r.AtEnd();
}

}  // namespace factlog::storage
