// Slotted page format for the disk-backed row stores.
//
// Every page is kPageSize bytes. Records grow forward from the header;
// the slot directory (one u16 record offset per slot) grows backward from
// the page end. Rows in this engine are fixed-size (arity * sizeof(ValueId)),
// but the format does not assume it — the slot directory makes record
// placement explicit, so variable-length payloads (future string columns,
// overflow chains) fit without a format change.
//
//   offset 0: u16 slot_count      number of live records
//   offset 2: u16 free_start      offset of the next record write
//   offset 4: record bytes ...
//   ...
//   kPageSize - 2*slot_count: slot directory (slot i's u16 record offset is
//     at kPageSize - 2*(i+1) — slot 0 sits at the very end of the page)
//
// These helpers operate on raw page buffers (the buffer pool's frames); they
// never allocate or do I/O.

#ifndef FACTLOG_STORAGE_PAGE_H_
#define FACTLOG_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace factlog::storage {

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageHeaderSize = 4;

/// Page id inside a PageFile. Page 0 is valid (the file has no superblock;
/// metadata lives in the separate meta file).
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

inline uint16_t PageSlotCount(const uint8_t* page) {
  uint16_t n;
  std::memcpy(&n, page, sizeof(n));
  return n;
}

inline uint16_t PageFreeStart(const uint8_t* page) {
  uint16_t o;
  std::memcpy(&o, page + 2, sizeof(o));
  return o;
}

inline void PageInit(uint8_t* page) {
  std::memset(page, 0, kPageSize);
  uint16_t free_start = kPageHeaderSize;
  std::memcpy(page + 2, &free_start, sizeof(free_start));
}

/// Bytes still available for one more record of `len` bytes (record plus its
/// slot directory entry).
inline bool PageHasRoom(const uint8_t* page, size_t len) {
  size_t used_front = PageFreeStart(page);
  size_t dir_bytes = 2 * (static_cast<size_t>(PageSlotCount(page)) + 1);
  return used_front + len + dir_bytes <= kPageSize;
}

/// Appends a record; returns its slot index, or -1 when the page is full.
inline int PageAppend(uint8_t* page, const void* data, size_t len) {
  if (!PageHasRoom(page, len)) return -1;
  uint16_t slot = PageSlotCount(page);
  uint16_t off = PageFreeStart(page);
  if (len > 0) std::memcpy(page + off, data, len);
  uint16_t slot_pos = static_cast<uint16_t>(kPageSize - 2 * (slot + 1));
  std::memcpy(page + slot_pos, &off, sizeof(off));
  uint16_t new_count = static_cast<uint16_t>(slot + 1);
  uint16_t new_free = static_cast<uint16_t>(off + len);
  std::memcpy(page, &new_count, sizeof(new_count));
  std::memcpy(page + 2, &new_free, sizeof(new_free));
  return slot;
}

/// Pointer to slot `i`'s record bytes (record length is the caller's
/// contract — fixed per store here).
inline const uint8_t* PageRecord(const uint8_t* page, uint16_t i) {
  uint16_t off;
  std::memcpy(&off, page + kPageSize - 2 * (i + 1), sizeof(off));
  return page + off;
}

inline uint8_t* PageRecordMut(uint8_t* page, uint16_t i) {
  return const_cast<uint8_t*>(PageRecord(page, i));
}

/// Drops the last `n` slots (swap-remove support: the caller has already
/// moved any surviving record bytes). Record bytes are reclaimed only when
/// the dropped slots are the most recently appended ones — which they are
/// for this engine's append-then-pop row stores.
inline void PagePopBack(uint8_t* page, uint16_t n = 1) {
  uint16_t count = PageSlotCount(page);
  uint16_t new_count = static_cast<uint16_t>(count - n);
  // The first dropped slot's record offset is where free space begins again
  // (its entry sits at kPageSize - 2*(new_count+1)).
  uint16_t new_free;
  std::memcpy(&new_free, page + kPageSize - 2 * (new_count + 1),
              sizeof(new_free));
  std::memcpy(page, &new_count, sizeof(new_count));
  std::memcpy(page + 2, &new_free, sizeof(new_free));
}

/// Records of `len` bytes that fit on one page (each costs len + 2 slot
/// bytes beside the 4-byte header).
inline constexpr size_t PageCapacity(size_t len) {
  return (kPageSize - kPageHeaderSize) / (len + 2);
}

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_PAGE_H_
