// PagedRowStore: the disk-backed backing array for one Relation shard's
// fixed-width rows, stored as a chain of slotted pages in a shared
// TableSpace (one PageFile + BufferPool per database directory).
//
// Row addressing is positional: row i lives on chain[i / rows_per_page] at
// slot i % rows_per_page, so the store supports exactly the operations the
// Relation needs — append, positional read/overwrite, swap-remove pop — with
// no per-row header.
//
// Crash consistency is shadow paging. After a checkpoint every page in the
// chain is *sealed*: the checkpoint meta file references it, so it must stay
// byte-identical on disk until the next checkpoint commits. The first
// post-checkpoint write to a sealed page relocates it (copy-on-write to a
// freshly allocated page; the old page joins the PageFile's pending-free
// list, reusable only after the next checkpoint publishes). An eviction that
// writes back a dirty page therefore can never overwrite checkpoint state.

#ifndef FACTLOG_STORAGE_PAGED_STORE_H_
#define FACTLOG_STORAGE_PAGED_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace factlog::storage {

/// One database's page file plus its buffer pool. Shared (via shared_ptr) by
/// every PagedRowStore so destruction order is a non-issue.
struct TableSpace {
  explicit TableSpace(size_t frame_budget) : pool(&file, frame_budget) {}
  PageFile file;
  BufferPool pool;
};

class PagedRowStore {
 public:
  /// `row_bytes` must fit one page: row_bytes + 2 <= kPageSize - 4.
  PagedRowStore(std::shared_ptr<TableSpace> space, size_t row_bytes);
  /// Frees the chain back to the tablespace (pending — the last checkpoint
  /// may still reference those pages).
  ~PagedRowStore();
  PagedRowStore(const PagedRowStore&) = delete;
  PagedRowStore& operator=(const PagedRowStore&) = delete;

  size_t num_rows() const { return num_rows_; }
  size_t row_bytes() const { return row_bytes_; }
  size_t rows_per_page() const { return rows_per_page_; }

  Status Append(const void* row);
  Status CopyRow(size_t idx, void* out) const;
  /// Overwrites row `idx` in place (relocating its page first if sealed).
  Status WriteRow(size_t idx, const void* row);
  /// Drops the last row (the Relation's swap-remove has already copied it
  /// wherever it needs to live).
  Status PopBack();
  /// Frees every page (pending) and resets to zero rows.
  Status Clear();

  /// Marks every page sealed. Called by the checkpoint after the buffer pool
  /// flushed — from here on, writes relocate instead of mutating.
  void SealAll();
  /// Adopts a page chain recovered from a checkpoint (all pages sealed).
  void Restore(std::vector<PageId> chain, size_t num_rows);
  const std::vector<PageId>& chain() const { return chain_; }
  const std::shared_ptr<TableSpace>& space() const { return space_; }

  /// Largest row that fits the page format.
  static bool RowFits(size_t row_bytes) {
    return row_bytes > 0 && row_bytes + 2 <= kPageSize - kPageHeaderSize;
  }

 private:
  /// Relocates sealed page chain_[chain_idx] to a fresh writable page.
  Status Cow(size_t chain_idx);
  /// Pins chain_[chain_idx], relocating first when a write is intended.
  Result<BufferPool::Frame*> PinForWrite(size_t chain_idx);

  std::shared_ptr<TableSpace> space_;
  size_t row_bytes_;
  size_t rows_per_page_;
  std::vector<PageId> chain_;
  std::vector<bool> sealed_;  // parallel to chain_
  size_t num_rows_ = 0;
};

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_PAGED_STORE_H_
