#include "storage/buffer_pool.h"

namespace factlog::storage {

Result<BufferPool::Frame*> BufferPool::Pin(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame* f = frames_[it->second].get();
    ++f->pins;
    f->referenced = true;
    return f;
  }
  ++stats_.misses;
  FACTLOG_ASSIGN_OR_RETURN(size_t idx, AcquireFrameLocked());
  Frame* f = frames_[idx].get();
  FACTLOG_RETURN_IF_ERROR(file_->ReadPage(page, f->data.get()));
  f->page = page;
  f->pins = 1;
  f->dirty = false;
  f->referenced = true;
  page_table_[page] = idx;
  return f;
}

Result<BufferPool::Frame*> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  FACTLOG_ASSIGN_OR_RETURN(size_t idx, AcquireFrameLocked());
  Frame* f = frames_[idx].get();
  f->page = file_->Allocate();
  f->pins = 1;
  f->dirty = true;
  f->referenced = true;
  PageInit(f->data.get());
  page_table_[f->page] = idx;
  return f;
}

void BufferPool::Unpin(Frame* frame, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dirty) frame->dirty = true;
  if (frame->pins > 0) --frame->pins;
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  bool wrote = false;
  for (auto& f : frames_) {
    if (f->page == kInvalidPage || !f->dirty) continue;
    FACTLOG_RETURN_IF_ERROR(file_->WritePage(f->page, f->data.get()));
    f->dirty = false;
    wrote = true;
  }
  if (wrote) FACTLOG_RETURN_IF_ERROR(file_->Sync());
  return Status::OK();
}

void BufferPool::Discard(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page);
  if (it == page_table_.end()) return;
  // Unmap even while pinned: the page id may be reallocated later, and a
  // stale mapping (or a stale dirty write-back) would clobber the new page.
  // A pinned reader keeps the frame's bytes alive via the pin count alone.
  Frame* f = frames_[it->second].get();
  f->page = kInvalidPage;
  f->dirty = false;
  f->referenced = false;
  page_table_.erase(it);
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferPoolStats s = stats_;
  s.dirty_pages = 0;
  for (const auto& f : frames_) {
    if (f->page != kInvalidPage && f->dirty) ++s.dirty_pages;
  }
  return s;
}

size_t BufferPool::frames_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& f : frames_) {
    if (f->page != kInvalidPage) ++n;
  }
  return n;
}

Result<size_t> BufferPool::AcquireFrameLocked() {
  if (frames_.size() < budget_) {
    auto f = std::make_unique<Frame>();
    f->data = std::make_unique<uint8_t[]>(kPageSize);
    frames_.push_back(std::move(f));
    return frames_.size() - 1;
  }
  // Clock sweep: skip pinned frames, clear one reference bit per visit, take
  // the first unpinned frame whose bit is already clear. Two full sweeps
  // guarantee a victim if any frame is unpinned.
  size_t visited = 0;
  const size_t limit = 2 * frames_.size();
  while (visited < limit) {
    size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    ++visited;
    Frame* f = frames_[idx].get();
    if (f->pins > 0) continue;  // pinned — even if discarded, bytes in use
    if (f->page == kInvalidPage) return idx;  // discarded frame, free
    if (f->referenced) {
      f->referenced = false;
      continue;
    }
    if (f->dirty) {
      FACTLOG_RETURN_IF_ERROR(file_->WritePage(f->page, f->data.get()));
      ++stats_.dirty_writebacks;
      f->dirty = false;
    }
    page_table_.erase(f->page);
    f->page = kInvalidPage;
    ++stats_.evictions;
    return idx;
  }
  // Every frame is pinned: grow past the budget rather than deadlock.
  ++stats_.overflow_frames;
  auto f = std::make_unique<Frame>();
  f->data = std::make_unique<uint8_t[]>(kPageSize);
  frames_.push_back(std::move(f));
  return frames_.size() - 1;
}

}  // namespace factlog::storage
