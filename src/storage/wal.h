// Write-ahead log: an append-only file of CRC-framed records.
//
// Framing per record:
//   [u32 len] [u8 type] [payload: len-1 bytes] [u32 crc32 over type+payload]
//
// Durability contract: Append buffers in the OS (no fsync); Commit appends
// the epoch's commit record and fsyncs once, making the whole epoch durable
// with a single flush. Recovery (WalReader) accepts the longest prefix of
// well-formed records and stops at the first truncated, oversized, or
// CRC-mismatching record — everything after a torn write is garbage by
// construction, never silently applied.

#ifndef FACTLOG_STORAGE_WAL_H_
#define FACTLOG_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/log_records.h"

namespace factlog::storage {

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending, first truncating it to `valid_bytes` —
  /// recovery's committed prefix — so a torn tail never precedes new records.
  Status Open(const std::string& path, uint64_t valid_bytes);
  void Close();
  bool is_open() const { return fd_ >= 0; }

  /// Appends one framed record (no fsync).
  Status Append(WalRecordType type, const std::string& payload);
  /// Appends a commit record for `epoch` and fsyncs the log.
  Status Commit(uint64_t epoch);
  /// Truncates the log to empty (after a checkpoint made it redundant).
  Status Reset();

  /// Current log size in bytes.
  uint64_t bytes() const { return bytes_; }
  /// Records appended since the last Commit/Reset.
  uint64_t pending_records() const { return pending_; }

 private:
  int fd_ = -1;
  uint64_t bytes_ = 0;
  uint64_t pending_ = 0;
};

struct WalRecord {
  WalRecordType type;
  std::string payload;
};

/// Reads a WAL file into records. `valid_bytes` is the offset just past the
/// last well-formed record (the reader stops there); `records` holds every
/// well-formed record in order, committed or not — the caller applies only
/// the prefix up to the last kCommit.
Status ReadWal(const std::string& path, std::vector<WalRecord>* records,
               uint64_t* valid_bytes);

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_WAL_H_
