#include "storage/storage_manager.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "storage/log_records.h"

namespace factlog::storage {

namespace {

/// Framed size on disk of a record with `payload_len` payload bytes.
uint64_t FrameBytes(size_t payload_len) { return 4 + 1 + payload_len + 4; }

}  // namespace

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const Options& options) {
  if (options.dir.empty()) {
    return Status::Invalid("storage directory path is empty");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir '" + options.dir +
                            "': " + std::strerror(errno));
  }
  auto mgr = std::unique_ptr<StorageManager>(new StorageManager());
  mgr->dir_ = options.dir;
  mgr->space_ = std::make_shared<TableSpace>(options.frame_budget);
  FACTLOG_RETURN_IF_ERROR(mgr->space_->file.Open(options.dir + "/pages.db"));

  auto meta = ReadCheckpointMeta(options.dir + "/meta.db");
  if (meta.ok()) {
    mgr->meta_ = std::move(meta).value();
    mgr->has_checkpoint_ = true;
    mgr->last_committed_epoch_ = mgr->meta_.epoch;
    mgr->space_->file.RestoreAllocator(mgr->meta_.num_pages,
                                       mgr->meta_.free_list);
  } else if (meta.status().code() != StatusCode::kNotFound) {
    return meta.status();
  }

  // Keep only the committed prefix of the WAL: records after the last commit
  // were in flight when the process died and their epoch never became
  // durable. `committed_bytes` is where the writer resumes appending.
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  FACTLOG_RETURN_IF_ERROR(
      ReadWal(options.dir + "/wal.log", &records, &valid_bytes));
  size_t committed_count = 0;
  uint64_t committed_bytes = 0;
  uint64_t offset = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    offset += FrameBytes(records[i].payload.size());
    if (records[i].type == WalRecordType::kCommit) {
      committed_count = i + 1;
      committed_bytes = offset;
      uint64_t epoch = 0;
      if (DecodeCommitRecord(records[i].payload.data(),
                             records[i].payload.size(), &epoch)) {
        mgr->last_committed_epoch_ =
            std::max(mgr->last_committed_epoch_, epoch);
      }
    }
  }
  records.resize(committed_count);
  mgr->recovered_records_ = std::move(records);
  mgr->records_replayed_ = mgr->recovered_records_.size();
  FACTLOG_RETURN_IF_ERROR(
      mgr->wal_.Open(options.dir + "/wal.log", committed_bytes));
  return mgr;
}

void StorageManager::DiscardRecoveryState() {
  recovered_records_.clear();
  recovered_records_.shrink_to_fit();
  meta_.values.clear();
  meta_.views.clear();
  meta_.plans.clear();
  meta_.relations.clear();
}

Status StorageManager::LogFact(bool insert, const ast::Atom& fact) {
  ++records_logged_;
  return wal_.Append(
      insert ? WalRecordType::kAddFact : WalRecordType::kRemoveFact,
      EncodeFactRecord(fact));
}

Status StorageManager::CommitEpoch(uint64_t epoch) {
  if (wal_.pending_records() == 0) return Status::OK();
  FACTLOG_RETURN_IF_ERROR(wal_.Commit(epoch));
  last_committed_epoch_ = epoch;
  return Status::OK();
}

Status StorageManager::Checkpoint(CheckpointMeta meta) {
  // 1. Every page the meta will reference must be durable first.
  FACTLOG_RETURN_IF_ERROR(space_->pool.FlushAll());
  // 2. Atomically switch the catalog. A crash before the rename leaves the
  //    old meta + old pages + full WAL: exactly the pre-checkpoint state.
  meta.num_pages = space_->file.num_pages();
  meta.free_list = space_->file.free_list();
  FACTLOG_RETURN_IF_ERROR(WriteCheckpointMeta(dir_ + "/meta.db", meta));
  // 3. The WAL is now redundant (a crash between rename and reset replays it
  //    over the new checkpoint — idempotent, fact-level records).
  FACTLOG_RETURN_IF_ERROR(wal_.Reset());
  // 4. Pages freed since the previous checkpoint are no longer referenced by
  //    any durable meta: make them allocatable.
  space_->file.PublishPendingFrees();
  last_committed_epoch_ = meta.epoch;
  ++checkpoints_;
  return Status::OK();
}

StorageStats StorageManager::stats() const {
  StorageStats s;
  s.pool = space_->pool.stats();
  s.wal_bytes = wal_.bytes();
  s.wal_records_logged = records_logged_;
  s.wal_records_replayed = records_replayed_;
  s.last_committed_epoch = last_committed_epoch_;
  s.checkpoints = checkpoints_;
  s.num_pages = space_->file.num_pages();
  s.free_pages = space_->file.free_list().size();
  s.frame_budget = space_->pool.frame_budget();
  return s;
}

}  // namespace factlog::storage
