// PageFile: a single flat file of kPageSize pages with a free list.
//
// The file carries no superblock — which pages are live (row-store chains)
// and which are free is recorded in the checkpoint meta file, so a torn page
// write can never corrupt bookkeeping that the meta file still describes.
// Allocation is free-list-first, then file extension. Pages freed during an
// epoch join a *pending* free list that becomes allocatable only after the
// next checkpoint commits: until then the old checkpoint may still reference
// them (shadow paging — see paged_store.h).

#ifndef FACTLOG_STORAGE_PAGER_H_
#define FACTLOG_STORAGE_PAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace factlog::storage {

class PageFile {
 public:
  PageFile() = default;
  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (creating when absent) the page file at `path`.
  Status Open(const std::string& path);
  void Close();
  bool is_open() const { return fd_ >= 0; }

  /// Allocates a page id: reuses the free list, else extends the file.
  PageId Allocate();
  /// Returns `page` to the pending free list (allocatable after the next
  /// checkpoint publishes — the current checkpoint may still reference it).
  void FreePending(PageId page);
  /// Moves every pending-free page onto the allocatable free list. Called
  /// after a checkpoint commits (rename of the meta file), when no durable
  /// state references them anymore.
  void PublishPendingFrees();

  Status ReadPage(PageId page, uint8_t* buf) const;
  Status WritePage(PageId page, const uint8_t* buf);
  Status Sync();

  PageId num_pages() const;
  std::vector<PageId> free_list() const;
  /// Restores allocator state from a checkpoint meta file.
  void RestoreAllocator(PageId num_pages, std::vector<PageId> free_list);

 private:
  int fd_ = -1;
  // Guards the allocator (num_pages_, free lists). Row-store destructors may
  // return pages from reader threads while the epoch writer allocates. Page
  // I/O itself is pread/pwrite and needs no lock.
  mutable std::mutex mu_;
  PageId num_pages_ = 0;
  std::vector<PageId> free_;
  std::vector<PageId> pending_free_;
};

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_PAGER_H_
