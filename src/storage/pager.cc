#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace factlog::storage {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

PageFile::~PageFile() { Close(); }

Status PageFile::Open(const std::string& path) {
  Close();
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return Errno("open '" + path + "'");
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Errno("lseek '" + path + "'");
  // Existing pages beyond the checkpoint's num_pages are reclaimed when
  // RestoreAllocator runs; until then the allocator starts at the file size
  // so nothing live gets overwritten.
  num_pages_ = static_cast<PageId>(size / kPageSize);
  free_.clear();
  pending_free_.clear();
  return Status::OK();
}

void PageFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

PageId PageFile::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    PageId p = free_.back();
    free_.pop_back();
    return p;
  }
  return num_pages_++;
}

void PageFile::FreePending(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_free_.push_back(page);
}

void PageFile::PublishPendingFrees() {
  std::lock_guard<std::mutex> lock(mu_);
  free_.insert(free_.end(), pending_free_.begin(), pending_free_.end());
  pending_free_.clear();
}

Status PageFile::ReadPage(PageId page, uint8_t* buf) const {
  off_t off = static_cast<off_t>(page) * kPageSize;
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, buf + done, kPageSize - done, off + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread page " + std::to_string(page));
    }
    if (n == 0) {
      // Reading past the current file end: an allocated-but-never-written
      // page. Treat as zeroes (an empty, PageInit-compatible page).
      std::memset(buf + done, 0, kPageSize - done);
      return Status::OK();
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PageFile::WritePage(PageId page, const uint8_t* buf) {
  off_t off = static_cast<off_t>(page) * kPageSize;
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pwrite(fd_, buf + done, kPageSize - done, off + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite page " + std::to_string(page));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PageFile::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync page file");
  return Status::OK();
}

PageId PageFile::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pages_;
}

std::vector<PageId> PageFile::free_list() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_;
}

void PageFile::RestoreAllocator(PageId num_pages,
                                std::vector<PageId> free_list) {
  std::lock_guard<std::mutex> lock(mu_);
  // Pages the file holds beyond the checkpoint's page count were allocated
  // after it (and lost with the crash); hand them back as free.
  for (PageId p = num_pages; p < num_pages_; ++p) free_list.push_back(p);
  num_pages_ = std::max(num_pages_, num_pages);
  free_ = std::move(free_list);
  pending_free_.clear();
}

}  // namespace factlog::storage
