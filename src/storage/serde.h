// Little-endian binary serialization helpers shared by the WAL record
// encoding and the checkpoint meta file. Fixed-width fields via memcpy (the
// supported targets are little-endian; a byte-swapping port would live here
// and nowhere else).
//
// BinReader is forgiving by design: out-of-bounds reads return zero values
// and latch ok() to false, so decoding a truncated or corrupted buffer walks
// off cleanly and the caller checks ok() once at the end.

#ifndef FACTLOG_STORAGE_SERDE_H_
#define FACTLOG_STORAGE_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

namespace factlog::storage {

class BinWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Fixed(&v, sizeof(v)); }
  void U64(uint64_t v) { Fixed(&v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bytes(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void Fixed(const void* v, size_t n) {
    buf_.append(static_cast<const char*>(v), n);
  }
  std::string buf_;
};

class BinReader {
 public:
  BinReader(const void* data, size_t len)
      : p_(static_cast<const uint8_t*>(data)), len_(len) {}

  uint8_t U8() {
    uint8_t v = 0;
    Fixed(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Fixed(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Fixed(&v, sizeof(v));
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (n > len_ - pos_) {  // pos_ <= len_ always holds
      ok_ = false;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(p_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == len_; }
  size_t pos() const { return pos_; }

 private:
  void Fixed(void* out, size_t n) {
    if (n > len_ - pos_) {
      ok_ = false;
      return;
    }
    std::memcpy(out, p_ + pos_, n);
    pos_ += n;
  }

  const uint8_t* p_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace factlog::storage

#endif  // FACTLOG_STORAGE_SERDE_H_
