// Atoms (predicate applications) of the logic-program AST.

#ifndef FACTLOG_AST_ATOM_H_
#define FACTLOG_AST_ATOM_H_

#include <string>
#include <vector>

#include "ast/term.h"

namespace factlog::ast {

/// An atom `p(t1, ..., tk)`. The paper's programs are pure positive Horn
/// clauses, so an atom doubles as a (positive) body literal.
class Atom {
 public:
  Atom() = default;
  Atom(std::string predicate, std::vector<Term> args)
      : predicate_(std::move(predicate)), args_(std::move(args)) {}

  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>* mutable_args() { return &args_; }
  size_t arity() const { return args_.size(); }

  void set_predicate(std::string p) { predicate_ = std::move(p); }

  bool IsGround() const;
  /// Appends variable names in occurrence order (with duplicates).
  void CollectVars(std::vector<std::string>* out) const;
  /// Distinct variable names in first-occurrence order.
  std::vector<std::string> DistinctVars() const;
  bool ContainsVar(const std::string& name) const;

  bool operator==(const Atom& other) const {
    return predicate_ == other.predicate_ && args_ == other.args_;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }
  bool operator<(const Atom& other) const {
    if (predicate_ != other.predicate_) return predicate_ < other.predicate_;
    return args_ < other.args_;
  }

  size_t Hash() const;

  /// `p(t1, ..., tk)`; a zero-ary atom prints as `p`.
  std::string ToString() const;

 private:
  std::string predicate_;
  std::vector<Term> args_;
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

}  // namespace factlog::ast

#endif  // FACTLOG_AST_ATOM_H_
