// Names of predicates with special meaning to analyses and engines.

#ifndef FACTLOG_AST_SPECIAL_PREDICATES_H_
#define FACTLOG_AST_SPECIAL_PREDICATES_H_

#include <string>

namespace factlog::ast {

/// `equal(X, Y)`: conceptually an infinite EDB relation {(v, v)}. The paper's
/// standard form (§4.1) uses it to eliminate constants and repeated variables
/// from recursive literals. The engines implement it as a builtin.
inline constexpr const char kEqualPredicate[] = "equal";

/// `affine(X, A, B, Z)`: builtin with Z = A*X + B for integer A, B. Used by
/// the Counting transformation (§6.4) to maintain index fields; solvable in
/// either direction (X from Z or Z from X).
inline constexpr const char kAffinePredicate[] = "affine";

/// `geq(X, C)`: builtin with X >= C over integers; X and C must be bound.
/// Counting uses it to keep index fields nonnegative.
inline constexpr const char kGeqPredicate[] = "geq";

/// Structural predicates introduced by standard-form conversion for function
/// symbols: `$f(A1, ..., Ak, R)` holds iff R = f(A1, ..., Ak). Conceptually
/// infinite EDB relations (the paper's `list`); they exist only in the
/// compile-time standard form, never at run time.
inline constexpr char kStructuralPrefix = '$';

/// True for predicates evaluated by the engine rather than stored: `equal`
/// and `affine`.
inline bool IsBuiltinPredicate(const std::string& name) {
  return name == kEqualPredicate || name == kAffinePredicate ||
         name == kGeqPredicate;
}

/// True for compile-time structural predicates (`$cons`, ...).
inline bool IsStructuralPredicate(const std::string& name) {
  return !name.empty() && name[0] == kStructuralPrefix;
}

}  // namespace factlog::ast

#endif  // FACTLOG_AST_SPECIAL_PREDICATES_H_
