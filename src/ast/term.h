// Terms of the logic-program AST.
//
// The paper works with Horn-clause programs whose terms are variables,
// constants, and (for Example 1.2 / 4.6) compound terms built from function
// symbols such as list cons cells. This AST layer is deliberately
// string-based: program transformations (Magic Sets, factoring, the §5
// optimizations) invent new predicate and variable names, and strings keep
// them readable. The evaluation layer (src/eval) interns everything into
// dense ids for performance.

#ifndef FACTLOG_AST_TERM_H_
#define FACTLOG_AST_TERM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace factlog::ast {

/// A first-order term: a variable, an integer constant, a symbolic constant,
/// or a compound term `f(t1, ..., tk)`.
///
/// Value semantics: terms are small trees copied freely. Variables are
/// identified by name within a rule scope; by convention names starting with
/// an uppercase letter or '_' are variables (as in Prolog/Datalog syntax).
class Term {
 public:
  enum class Kind {
    kVariable,
    kInt,
    kSymbol,
    kCompound,
  };

  /// Builds a variable term. `name` should start with an uppercase letter or
  /// underscore so that printing round-trips through the parser.
  static Term Var(std::string name);
  /// Builds an integer constant.
  static Term Int(int64_t value);
  /// Builds a symbolic constant (lowercase identifier).
  static Term Sym(std::string name);
  /// Builds a compound term `functor(args...)`.
  static Term App(std::string functor, std::vector<Term> args);
  /// Builds the empty-list constant `[]` (the symbol "nil").
  static Term Nil();
  /// Builds a cons cell `[head | tail]` (compound "cons"/2).
  static Term Cons(Term head, Term tail);
  /// Builds a proper list `[e1, ..., en]` terminated by Nil().
  static Term List(std::vector<Term> elements);

  Kind kind() const { return kind_; }
  bool IsVariable() const { return kind_ == Kind::kVariable; }
  bool IsConstant() const { return kind_ == Kind::kInt || kind_ == Kind::kSymbol; }
  bool IsCompound() const { return kind_ == Kind::kCompound; }

  /// Variable name; requires kind() == kVariable.
  const std::string& var_name() const { return name_; }
  /// Integer value; requires kind() == kInt.
  int64_t int_value() const { return int_value_; }
  /// Symbol text (kSymbol) or functor name (kCompound).
  const std::string& symbol() const { return name_; }
  /// Compound arguments; requires kind() == kCompound.
  const std::vector<Term>& args() const { return args_; }

  /// True when the term contains no variables.
  bool IsGround() const;
  /// True when the variable `name` occurs anywhere in this term.
  bool ContainsVar(const std::string& name) const;
  /// Appends all variable names in this term, in occurrence order, with
  /// duplicates.
  void CollectVars(std::vector<std::string>* out) const;

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }
  /// Total ordering usable for canonicalization.
  bool operator<(const Term& other) const;

  /// Structural hash.
  size_t Hash() const;

  /// Parser-compatible rendering; lists print with [..] sugar.
  std::string ToString() const;

 private:
  Term() = default;

  Kind kind_ = Kind::kSymbol;
  std::string name_;        // variable name, symbol, or functor
  int64_t int_value_ = 0;   // kInt only
  std::vector<Term> args_;  // kCompound only
};

/// Hash functor so Term can key unordered containers.
struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace factlog::ast

#endif  // FACTLOG_AST_TERM_H_
