#include "ast/substitution.h"

namespace factlog::ast {

void Substitution::Bind(const std::string& var, Term term) {
  map_.insert_or_assign(var, std::move(term));
}

bool Substitution::Contains(const std::string& var) const {
  return map_.count(var) > 0;
}

const Term* Substitution::Lookup(const std::string& var) const {
  auto it = map_.find(var);
  return it == map_.end() ? nullptr : &it->second;
}

Term Substitution::Walk(const Term& t) const {
  Term cur = t;
  while (cur.IsVariable()) {
    const Term* next = Lookup(cur.var_name());
    if (next == nullptr) return cur;
    cur = *next;
  }
  return cur;
}

Term Substitution::Apply(const Term& t) const {
  switch (t.kind()) {
    case Term::Kind::kVariable: {
      const Term* bound = Lookup(t.var_name());
      return bound != nullptr ? *bound : t;
    }
    case Term::Kind::kInt:
    case Term::Kind::kSymbol:
      return t;
    case Term::Kind::kCompound: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) args.push_back(Apply(a));
      return Term::App(t.symbol(), std::move(args));
    }
  }
  return t;
}

Atom Substitution::Apply(const Atom& a) const {
  std::vector<Term> args;
  args.reserve(a.args().size());
  for (const Term& t : a.args()) args.push_back(Apply(t));
  return Atom(a.predicate(), std::move(args));
}

Rule Substitution::Apply(const Rule& r) const {
  std::vector<Atom> body;
  body.reserve(r.body().size());
  for (const Atom& a : r.body()) body.push_back(Apply(a));
  return Rule(Apply(r.head()), std::move(body));
}

std::vector<Atom> Substitution::Apply(const std::vector<Atom>& atoms) const {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(Apply(a));
  return out;
}

Term Substitution::DeepApply(const Term& t) const {
  switch (t.kind()) {
    case Term::Kind::kVariable: {
      const Term* bound = Lookup(t.var_name());
      if (bound == nullptr) return t;
      return DeepApply(*bound);
    }
    case Term::Kind::kInt:
    case Term::Kind::kSymbol:
      return t;
    case Term::Kind::kCompound: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) args.push_back(DeepApply(a));
      return Term::App(t.symbol(), std::move(args));
    }
  }
  return t;
}

Atom Substitution::DeepApply(const Atom& a) const {
  std::vector<Term> args;
  args.reserve(a.args().size());
  for (const Term& t : a.args()) args.push_back(DeepApply(t));
  return Atom(a.predicate(), std::move(args));
}

std::string Substitution::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : map_) {
    if (!first) out += ", ";
    first = false;
    out += var + " -> " + term.ToString();
  }
  out += "}";
  return out;
}

void FreshVarGen::ReserveFrom(const Rule& r) {
  for (const std::string& v : r.DistinctVars()) reserved_.insert(v);
}

void FreshVarGen::ReserveFrom(const Program& p) {
  for (const Rule& r : p.rules()) ReserveFrom(r);
  if (p.query().has_value()) {
    for (const std::string& v : p.query()->DistinctVars()) reserved_.insert(v);
  }
}

std::string FreshVarGen::Fresh() {
  while (true) {
    std::string candidate = prefix_ + std::to_string(counter_++);
    if (reserved_.insert(candidate).second) return candidate;
  }
}

Rule RenameApart(const Rule& rule, FreshVarGen* gen) {
  Substitution s;
  for (const std::string& v : rule.DistinctVars()) {
    s.Bind(v, Term::Var(gen->Fresh()));
  }
  return s.Apply(rule);
}

}  // namespace factlog::ast
