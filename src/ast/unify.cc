#include "ast/unify.h"

namespace factlog::ast {

namespace {

// True when variable `name` occurs in `t` after walking bindings.
bool OccursIn(const std::string& name, const Term& t, const Substitution& s) {
  Term w = s.Walk(t);
  switch (w.kind()) {
    case Term::Kind::kVariable:
      return w.var_name() == name;
    case Term::Kind::kInt:
    case Term::Kind::kSymbol:
      return false;
    case Term::Kind::kCompound:
      for (const Term& a : w.args()) {
        if (OccursIn(name, a, s)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace

bool Unify(const Term& a, const Term& b, Substitution* subst) {
  Term wa = subst->Walk(a);
  Term wb = subst->Walk(b);
  if (wa.IsVariable()) {
    if (wb.IsVariable() && wb.var_name() == wa.var_name()) return true;
    if (OccursIn(wa.var_name(), wb, *subst)) return false;
    subst->Bind(wa.var_name(), wb);
    return true;
  }
  if (wb.IsVariable()) {
    if (OccursIn(wb.var_name(), wa, *subst)) return false;
    subst->Bind(wb.var_name(), wa);
    return true;
  }
  if (wa.kind() != wb.kind()) return false;
  switch (wa.kind()) {
    case Term::Kind::kInt:
      return wa.int_value() == wb.int_value();
    case Term::Kind::kSymbol:
      return wa.symbol() == wb.symbol();
    case Term::Kind::kCompound: {
      if (wa.symbol() != wb.symbol()) return false;
      if (wa.args().size() != wb.args().size()) return false;
      for (size_t i = 0; i < wa.args().size(); ++i) {
        if (!Unify(wa.args()[i], wb.args()[i], subst)) return false;
      }
      return true;
    }
    case Term::Kind::kVariable:
      break;  // unreachable
  }
  return false;
}

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst) {
  if (a.predicate() != b.predicate()) return false;
  if (a.arity() != b.arity()) return false;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (!Unify(a.args()[i], b.args()[i], subst)) return false;
  }
  return true;
}

bool MatchTerm(const Term& pattern, const Term& ground, Substitution* subst) {
  switch (pattern.kind()) {
    case Term::Kind::kVariable: {
      const Term* bound = subst->Lookup(pattern.var_name());
      if (bound != nullptr) return *bound == ground;
      subst->Bind(pattern.var_name(), ground);
      return true;
    }
    case Term::Kind::kInt:
      return ground.kind() == Term::Kind::kInt &&
             ground.int_value() == pattern.int_value();
    case Term::Kind::kSymbol:
      return ground.kind() == Term::Kind::kSymbol &&
             ground.symbol() == pattern.symbol();
    case Term::Kind::kCompound: {
      if (ground.kind() != Term::Kind::kCompound) return false;
      if (ground.symbol() != pattern.symbol()) return false;
      if (ground.args().size() != pattern.args().size()) return false;
      for (size_t i = 0; i < pattern.args().size(); ++i) {
        if (!MatchTerm(pattern.args()[i], ground.args()[i], subst)) return false;
      }
      return true;
    }
  }
  return false;
}

bool MatchAtom(const Atom& pattern, const Atom& ground, Substitution* subst) {
  if (pattern.predicate() != ground.predicate()) return false;
  if (pattern.arity() != ground.arity()) return false;
  for (size_t i = 0; i < pattern.arity(); ++i) {
    if (!MatchTerm(pattern.args()[i], ground.args()[i], subst)) return false;
  }
  return true;
}

}  // namespace factlog::ast
