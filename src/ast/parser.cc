#include "ast/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace factlog::ast {

namespace {

enum class TokKind {
  kIdent,     // lowercase identifier
  kVar,       // uppercase/_ identifier
  kInt,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kPipe,
  kPeriod,
  kImplies,   // :-
  kQuery,     // ?-
  kSlash,
  kDirective, // .name
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int64_t int_value = 0;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      FACTLOG_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      if (pos_ >= text_.size()) {
        out.push_back(Make(TokKind::kEnd, ""));
        return out;
      }
      FACTLOG_ASSIGN_OR_RETURN(Token tok, Next());
      out.push_back(std::move(tok));
    }
  }

 private:
  Token Make(TokKind kind, std::string text) const {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_;
    t.col = col_;
    return t;
  }

  Status Error(const std::string& msg) const {
    return Status::Invalid("parse error at line " + std::to_string(line_) +
                           ", col " + std::to_string(col_) + ": " + msg);
  }

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (pos_ < text_.size()) {
      if (text_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  Status SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%' || (c == '/' && Peek(1) == '/')) {
        while (pos_ < text_.size() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (pos_ < text_.size() && !(Peek() == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (pos_ >= text_.size()) return Error("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Result<Token> Next() {
    char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      return LexInt();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      return LexIdent();
    }
    switch (c) {
      case '(':
        Advance();
        return Make(TokKind::kLParen, "(");
      case ')':
        Advance();
        return Make(TokKind::kRParen, ")");
      case '[':
        Advance();
        return Make(TokKind::kLBracket, "[");
      case ']':
        Advance();
        return Make(TokKind::kRBracket, "]");
      case ',':
        Advance();
        return Make(TokKind::kComma, ",");
      case '|':
        Advance();
        return Make(TokKind::kPipe, "|");
      case '/':
        Advance();
        return Make(TokKind::kSlash, "/");
      case ':':
        if (Peek(1) == '-') {
          Advance();
          Advance();
          return Make(TokKind::kImplies, ":-");
        }
        return Error("expected ':-'");
      case '?':
        if (Peek(1) == '-') {
          Advance();
          Advance();
          return Make(TokKind::kQuery, "?-");
        }
        return Error("expected '?-'");
      case '.': {
        if (std::isalpha(static_cast<unsigned char>(Peek(1)))) {
          Advance();  // '.'
          std::string name;
          while (std::isalnum(static_cast<unsigned char>(Peek())) ||
                 Peek() == '_') {
            name += Peek();
            Advance();
          }
          return Make(TokKind::kDirective, name);
        }
        Advance();
        return Make(TokKind::kPeriod, ".");
      }
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Token> LexInt() {
    std::string text;
    if (Peek() == '-') {
      text += '-';
      Advance();
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      text += Peek();
      Advance();
    }
    Token t = Make(TokKind::kInt, text);
    t.int_value = std::stoll(text);
    return t;
  }

  Result<Token> LexIdent() {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_' ||
           Peek() == '$' || Peek() == '\'') {
      text += Peek();
      Advance();
    }
    char first = text[0];
    bool is_var = std::isupper(static_cast<unsigned char>(first)) || first == '_';
    return Make(is_var ? TokKind::kVar : TokKind::kIdent, text);
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Parser {
 public:
  /// `source` (optional) is the original program text; when present, clause
  /// errors carry the clause ordinal and a source snippet.
  explicit Parser(std::vector<Token> tokens, const std::string* source = nullptr)
      : tokens_(std::move(tokens)), source_(source) {}

  Result<Program> ParseProgramAll() {
    Program program;
    int clause = 0;
    while (!AtEnd()) {
      ++clause;
      // Remember where the clause starts so its error report can show the
      // ordinal and the offending source line, making "parse error at line
      // 7" actionable in a many-clause file.
      const Token start = Cur();
      auto annotate = [&](const Status& st) {
        std::string where =
            " (in clause #" + std::to_string(clause);
        const std::string snippet = SnippetAt(start);
        if (!snippet.empty()) where += ": " + snippet;
        where += ")";
        return Status(st.code(), st.message() + where);
      };
      if (Check(TokKind::kDirective)) {
        Status st = ParseDirective(&program);
        if (!st.ok()) return annotate(st);
      } else if (Check(TokKind::kQuery)) {
        Advance();
        Result<Atom> q = ParseAtomInner();
        if (!q.ok()) return annotate(q.status());
        Status st = Expect(TokKind::kPeriod, "'.'");
        if (!st.ok()) return annotate(st);
        program.set_query(std::move(q).value());
      } else {
        Result<Rule> r = ParseRuleInner();
        if (!r.ok()) return annotate(r.status());
        program.AddRule(std::move(r).value());
      }
    }
    return program;
  }

  Result<Rule> ParseSingleRule() {
    FACTLOG_ASSIGN_OR_RETURN(Rule r, ParseRuleInner());
    if (!AtEnd()) return ErrorHere("trailing input after rule");
    return r;
  }

  Result<Atom> ParseSingleAtom() {
    FACTLOG_ASSIGN_OR_RETURN(Atom a, ParseAtomInner());
    if (!AtEnd()) return ErrorHere("trailing input after atom");
    return a;
  }

  Result<Term> ParseSingleTerm() {
    FACTLOG_ASSIGN_OR_RETURN(Term t, ParseTermInner());
    if (!AtEnd()) return ErrorHere("trailing input after term");
    return t;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool AtEnd() const { return Cur().kind == TokKind::kEnd; }
  bool Check(TokKind k) const { return Cur().kind == k; }
  void Advance() {
    if (!AtEnd()) ++pos_;
  }

  Status ErrorHere(const std::string& msg) const {
    return Status::Invalid("parse error at line " + std::to_string(Cur().line) +
                           ", col " + std::to_string(Cur().col) + ": " + msg);
  }

  /// The source line `tok` sits on (trimmed, truncated); empty without
  /// source text.
  std::string SnippetAt(const Token& tok) const {
    if (source_ == nullptr) return "";
    size_t offset = 0;
    for (int line = 1; line < tok.line && offset < source_->size(); ++offset) {
      if ((*source_)[offset] == '\n') ++line;
    }
    size_t end = source_->find('\n', offset);
    if (end == std::string::npos) end = source_->size();
    std::string snippet = source_->substr(offset, end - offset);
    const size_t begin = snippet.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    const size_t last = snippet.find_last_not_of(" \t\r");
    snippet = snippet.substr(begin, last - begin + 1);
    if (snippet.size() > 60) {
      snippet.resize(57);
      snippet += "...";
    }
    return snippet;
  }

  Status Expect(TokKind k, const std::string& what) {
    if (!Check(k)) {
      return ErrorHere("expected " + what + ", got '" + Cur().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ParseDirective(Program* program) {
    std::string name = Cur().text;
    Advance();
    if (name != "edb") return ErrorHere("unknown directive '." + name + "'");
    if (!Check(TokKind::kIdent)) return ErrorHere("expected predicate name");
    std::string pred = Cur().text;
    Advance();
    FACTLOG_RETURN_IF_ERROR(Expect(TokKind::kSlash, "'/'"));
    if (!Check(TokKind::kInt)) return ErrorHere("expected arity");
    int64_t arity = Cur().int_value;
    Advance();
    FACTLOG_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.'"));
    if (arity < 0) return ErrorHere("negative arity");
    program->DeclareEdb(pred, static_cast<size_t>(arity));
    return Status::OK();
  }

  Result<Rule> ParseRuleInner() {
    FACTLOG_ASSIGN_OR_RETURN(Atom head, ParseAtomInner());
    std::vector<Atom> body;
    if (Check(TokKind::kImplies)) {
      Advance();
      while (true) {
        FACTLOG_ASSIGN_OR_RETURN(Atom b, ParseAtomInner());
        body.push_back(std::move(b));
        if (Check(TokKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    FACTLOG_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.'"));
    return Rule(std::move(head), std::move(body));
  }

  Result<Atom> ParseAtomInner() {
    if (!Check(TokKind::kIdent)) {
      return ErrorHere("expected predicate name, got '" + Cur().text + "'");
    }
    std::string pred = Cur().text;
    Advance();
    std::vector<Term> args;
    if (Check(TokKind::kLParen)) {
      Advance();
      while (true) {
        FACTLOG_ASSIGN_OR_RETURN(Term t, ParseTermInner());
        args.push_back(std::move(t));
        if (Check(TokKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      FACTLOG_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    }
    return Atom(std::move(pred), std::move(args));
  }

  Result<Term> ParseTermInner() {
    if (Check(TokKind::kInt)) {
      int64_t v = Cur().int_value;
      Advance();
      return Term::Int(v);
    }
    if (Check(TokKind::kVar)) {
      std::string name = Cur().text;
      Advance();
      if (name == "_") {
        // Each bare underscore is a distinct anonymous variable.
        name = "_G" + std::to_string(anon_counter_++);
      }
      return Term::Var(std::move(name));
    }
    if (Check(TokKind::kIdent)) {
      std::string name = Cur().text;
      Advance();
      if (Check(TokKind::kLParen)) {
        Advance();
        std::vector<Term> args;
        while (true) {
          FACTLOG_ASSIGN_OR_RETURN(Term t, ParseTermInner());
          args.push_back(std::move(t));
          if (Check(TokKind::kComma)) {
            Advance();
            continue;
          }
          break;
        }
        FACTLOG_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        return Term::App(std::move(name), std::move(args));
      }
      return Term::Sym(std::move(name));
    }
    if (Check(TokKind::kLBracket)) {
      return ParseListInner();
    }
    return ErrorHere("expected term, got '" + Cur().text + "'");
  }

  Result<Term> ParseListInner() {
    FACTLOG_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    if (Check(TokKind::kRBracket)) {
      Advance();
      return Term::Nil();
    }
    std::vector<Term> elements;
    while (true) {
      FACTLOG_ASSIGN_OR_RETURN(Term t, ParseTermInner());
      elements.push_back(std::move(t));
      if (Check(TokKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    Term tail = Term::Nil();
    if (Check(TokKind::kPipe)) {
      Advance();
      FACTLOG_ASSIGN_OR_RETURN(tail, ParseTermInner());
    }
    FACTLOG_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    Term out = std::move(tail);
    for (auto it = elements.rbegin(); it != elements.rend(); ++it) {
      out = Term::Cons(std::move(*it), std::move(out));
    }
    return out;
  }

  std::vector<Token> tokens_;
  const std::string* source_ = nullptr;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& text) {
  Lexer lexer(text);
  FACTLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), &text);
  FACTLOG_ASSIGN_OR_RETURN(Program p, parser.ParseProgramAll());
  // Arities must be consistent; range restriction is checked by the
  // bottom-up engine only (top-down handles Prolog-style rules).
  FACTLOG_RETURN_IF_ERROR(p.ValidateArities());
  return p;
}

Result<Rule> ParseRule(const std::string& text) {
  Lexer lexer(text);
  FACTLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSingleRule();
}

Result<Atom> ParseAtom(const std::string& text) {
  Lexer lexer(text);
  FACTLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSingleAtom();
}

Result<Term> ParseTerm(const std::string& text) {
  Lexer lexer(text);
  FACTLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSingleTerm();
}

}  // namespace factlog::ast
