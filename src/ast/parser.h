// Parser for the factlog Datalog dialect.
//
// Grammar (comments: `% ...`, `// ...`, `/* ... */`):
//
//   program   := (directive | clause)*
//   directive := ".edb" IDENT "/" INT "."
//   clause    := query | rule
//   query     := "?-" atom "."
//   rule      := atom [":-" atom ("," atom)*] "."
//   atom      := IDENT ["(" term ("," term)* ")"]
//   term      := VAR | INT | IDENT ["(" term ("," term)* ")"] | list
//   list      := "[" "]" | "[" term ("," term)* ["|" term] "]"
//
// Identifiers starting with a lowercase letter are predicates / symbols;
// identifiers starting with an uppercase letter or '_' are variables. A bare
// "_" is an anonymous variable; each occurrence becomes a distinct fresh
// variable (named "_G<n>").

#ifndef FACTLOG_AST_PARSER_H_
#define FACTLOG_AST_PARSER_H_

#include <string>

#include "ast/program.h"
#include "common/status.h"

namespace factlog::ast {

/// Parses a whole program. Returns kInvalidArgument with a line/column
/// message on syntax errors.
Result<Program> ParseProgram(const std::string& text);

/// Parses a single rule or fact, e.g. "t(X, Y) :- e(X, Y).".
Result<Rule> ParseRule(const std::string& text);

/// Parses a single atom, e.g. "t(5, Y)".
Result<Atom> ParseAtom(const std::string& text);

/// Parses a single term, e.g. "[a, b | T]".
Result<Term> ParseTerm(const std::string& text);

}  // namespace factlog::ast

#endif  // FACTLOG_AST_PARSER_H_
