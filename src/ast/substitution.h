// Variable substitutions over AST terms.

#ifndef FACTLOG_AST_SUBSTITUTION_H_
#define FACTLOG_AST_SUBSTITUTION_H_

#include <map>
#include <string>
#include <vector>

#include "ast/program.h"

namespace factlog::ast {

/// A mapping from variable names to terms, applied simultaneously
/// (not iterated): `{X -> Y, Y -> 3}` maps `p(X, Y)` to `p(Y, 3)`.
class Substitution {
 public:
  Substitution() = default;

  /// Binds `var` to `term`, overwriting any previous binding.
  void Bind(const std::string& var, Term term);
  bool Contains(const std::string& var) const;
  /// Looks up a binding; returns nullptr when unbound.
  const Term* Lookup(const std::string& var) const;
  bool empty() const { return map_.empty(); }
  size_t size() const { return map_.size(); }
  const std::map<std::string, Term>& map() const { return map_; }

  /// Follows variable-to-variable bindings until a non-variable term or an
  /// unbound variable is reached. Used by unification.
  Term Walk(const Term& t) const;

  Term Apply(const Term& t) const;
  Atom Apply(const Atom& a) const;
  Rule Apply(const Rule& r) const;
  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const;

  /// Applies bindings transitively (resolves chains like X->Y, Y->3 fully).
  /// Requires the substitution to be acyclic; unification produces such.
  Term DeepApply(const Term& t) const;
  Atom DeepApply(const Atom& a) const;

  std::string ToString() const;

 private:
  std::map<std::string, Term> map_;
};

/// Generates fresh variable names that avoid a reserved set.
class FreshVarGen {
 public:
  explicit FreshVarGen(std::string prefix = "_V") : prefix_(std::move(prefix)) {}

  /// Marks every variable of `r` as reserved.
  void ReserveFrom(const Rule& r);
  void ReserveFrom(const Program& p);
  void Reserve(const std::string& name) { reserved_.insert(name); }

  /// Returns a fresh variable name, never returned before and not reserved.
  std::string Fresh();

 private:
  std::string prefix_;
  int counter_ = 0;
  std::set<std::string> reserved_;
};

/// Returns `rule` with every variable renamed via `gen` (consistently within
/// the rule). Used to rename rules apart during resolution and expansion.
Rule RenameApart(const Rule& rule, FreshVarGen* gen);

}  // namespace factlog::ast

#endif  // FACTLOG_AST_SUBSTITUTION_H_
