// Rules (Horn clauses) of the logic-program AST.

#ifndef FACTLOG_AST_RULE_H_
#define FACTLOG_AST_RULE_H_

#include <string>
#include <vector>

#include "ast/atom.h"

namespace factlog::ast {

/// A Horn clause `head :- body1, ..., bodyn.`. A fact is a rule with an empty
/// body and a ground head.
class Rule {
 public:
  Rule() = default;
  Rule(Atom head, std::vector<Atom> body)
      : head_(std::move(head)), body_(std::move(body)) {}

  const Atom& head() const { return head_; }
  Atom* mutable_head() { return &head_; }
  const std::vector<Atom>& body() const { return body_; }
  std::vector<Atom>* mutable_body() { return &body_; }

  bool IsFact() const { return body_.empty() && head_.IsGround(); }

  /// Distinct variable names across head and body, in first-occurrence order
  /// (head first).
  std::vector<std::string> DistinctVars() const;

  /// True when every head variable also occurs in the body (or the head is
  /// ground). Positive Datalog safety; builtins are handled by the engine.
  bool IsRangeRestricted() const;

  bool operator==(const Rule& other) const {
    return head_ == other.head_ && body_ == other.body_;
  }
  bool operator!=(const Rule& other) const { return !(*this == other); }
  bool operator<(const Rule& other) const {
    if (!(head_ == other.head_)) return head_ < other.head_;
    return body_ < other.body_;
  }

  /// `h :- b1, b2.` or `h.` for facts.
  std::string ToString() const;

 private:
  Atom head_;
  std::vector<Atom> body_;
};

}  // namespace factlog::ast

#endif  // FACTLOG_AST_RULE_H_
