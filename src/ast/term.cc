#include "ast/term.h"

#include <functional>

namespace factlog::ast {

namespace {

// 64-bit FNV-style combiner; good enough for container hashing.
size_t CombineHash(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

Term Term::Var(std::string name) {
  Term t;
  t.kind_ = Kind::kVariable;
  t.name_ = std::move(name);
  return t;
}

Term Term::Int(int64_t value) {
  Term t;
  t.kind_ = Kind::kInt;
  t.int_value_ = value;
  return t;
}

Term Term::Sym(std::string name) {
  Term t;
  t.kind_ = Kind::kSymbol;
  t.name_ = std::move(name);
  return t;
}

Term Term::App(std::string functor, std::vector<Term> args) {
  Term t;
  t.kind_ = Kind::kCompound;
  t.name_ = std::move(functor);
  t.args_ = std::move(args);
  return t;
}

Term Term::Nil() { return Sym("nil"); }

Term Term::Cons(Term head, Term tail) {
  return App("cons", {std::move(head), std::move(tail)});
}

Term Term::List(std::vector<Term> elements) {
  Term out = Nil();
  for (auto it = elements.rbegin(); it != elements.rend(); ++it) {
    out = Cons(std::move(*it), std::move(out));
  }
  return out;
}

bool Term::IsGround() const {
  switch (kind_) {
    case Kind::kVariable:
      return false;
    case Kind::kInt:
    case Kind::kSymbol:
      return true;
    case Kind::kCompound:
      for (const Term& a : args_) {
        if (!a.IsGround()) return false;
      }
      return true;
  }
  return false;
}

bool Term::ContainsVar(const std::string& name) const {
  switch (kind_) {
    case Kind::kVariable:
      return name_ == name;
    case Kind::kInt:
    case Kind::kSymbol:
      return false;
    case Kind::kCompound:
      for (const Term& a : args_) {
        if (a.ContainsVar(name)) return true;
      }
      return false;
  }
  return false;
}

void Term::CollectVars(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kVariable:
      out->push_back(name_);
      return;
    case Kind::kInt:
    case Kind::kSymbol:
      return;
    case Kind::kCompound:
      for (const Term& a : args_) a.CollectVars(out);
      return;
  }
}

bool Term::operator==(const Term& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return name_ == other.name_;
    case Kind::kInt:
      return int_value_ == other.int_value_;
    case Kind::kCompound:
      return name_ == other.name_ && args_ == other.args_;
  }
  return false;
}

bool Term::operator<(const Term& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return name_ < other.name_;
    case Kind::kInt:
      return int_value_ < other.int_value_;
    case Kind::kCompound: {
      if (name_ != other.name_) return name_ < other.name_;
      return args_ < other.args_;
    }
  }
  return false;
}

size_t Term::Hash() const {
  size_t h = static_cast<size_t>(kind_);
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      h = CombineHash(h, std::hash<std::string>()(name_));
      break;
    case Kind::kInt:
      h = CombineHash(h, std::hash<int64_t>()(int_value_));
      break;
    case Kind::kCompound:
      h = CombineHash(h, std::hash<std::string>()(name_));
      for (const Term& a : args_) h = CombineHash(h, a.Hash());
      break;
  }
  return h;
}

namespace {

// True when `t` is a proper or partial list cell we can print with sugar.
bool IsConsCell(const Term& t) {
  return t.IsCompound() && t.symbol() == "cons" && t.args().size() == 2;
}

bool IsNil(const Term& t) {
  return t.kind() == Term::Kind::kSymbol && t.symbol() == "nil";
}

}  // namespace

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
      return name_;
    case Kind::kInt:
      return std::to_string(int_value_);
    case Kind::kSymbol:
      if (name_ == "nil") return "[]";
      return name_;
    case Kind::kCompound: {
      if (IsConsCell(*this)) {
        std::string out = "[" + args_[0].ToString();
        const Term* tail = &args_[1];
        while (IsConsCell(*tail)) {
          out += ", " + tail->args()[0].ToString();
          tail = &tail->args()[1];
        }
        if (!IsNil(*tail)) {
          out += " | " + tail->ToString();
        }
        out += "]";
        return out;
      }
      std::string out = name_ + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ", ";
        out += args_[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace factlog::ast
