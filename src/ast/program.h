// Programs (rule collections) of the logic-program AST.

#ifndef FACTLOG_AST_PROGRAM_H_
#define FACTLOG_AST_PROGRAM_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/rule.h"
#include "common/status.h"

namespace factlog::ast {

/// A logic program: the IDB rule set, optional EDB arity declarations, and an
/// optional query literal (`?- p(5, Y).` in the surface syntax).
///
/// Following the deductive-database convention the paper adopts (§2), the
/// program holds only rules; ground EDB facts live in an eval::Database.
/// Program facts (rules with empty bodies, e.g. the magic seed `m_t_bf(5).`)
/// are permitted and common in transformed programs.
class Program {
 public:
  Program() = default;

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>* mutable_rules() { return &rules_; }
  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  /// Declares `name/arity` as an EDB predicate (surface syntax `.edb e/2.`).
  void DeclareEdb(const std::string& name, size_t arity) {
    edb_decls_[name] = arity;
  }
  const std::map<std::string, size_t>& edb_decls() const { return edb_decls_; }

  const std::optional<Atom>& query() const { return query_; }
  void set_query(Atom q) { query_ = std::move(q); }
  void clear_query() { query_.reset(); }

  /// Predicates appearing in some rule head.
  std::set<std::string> IdbPredicates() const;

  /// All referenced predicates with their arities (first-seen arity).
  std::map<std::string, size_t> PredicateArities() const;

  /// Predicates referenced in bodies (or declared) but never defined by a
  /// rule head and not builtin: the extensional database schema.
  std::map<std::string, size_t> EdbPredicates() const;

  /// Rules whose head predicate is `name`, in program order.
  std::vector<const Rule*> RulesFor(const std::string& name) const;

  /// Checks that every predicate is used with a single arity.
  Status ValidateArities() const;

  /// ValidateArities plus range restriction of every rule (required for
  /// bottom-up evaluation; top-down resolution also handles Prolog-style
  /// rules with unrestricted head variables, like `pmem(X, [X|T]) :- p(X)`).
  Status Validate() const;

  bool operator==(const Program& other) const {
    return rules_ == other.rules_ && query_ == other.query_;
  }

  /// Parser-compatible listing: declarations, rules, then the query.
  std::string ToString() const;

 private:
  std::vector<Rule> rules_;
  std::map<std::string, size_t> edb_decls_;
  std::optional<Atom> query_;
};

}  // namespace factlog::ast

#endif  // FACTLOG_AST_PROGRAM_H_
