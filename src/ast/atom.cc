#include "ast/atom.h"

#include <algorithm>
#include <functional>

namespace factlog::ast {

bool Atom::IsGround() const {
  return std::all_of(args_.begin(), args_.end(),
                     [](const Term& t) { return t.IsGround(); });
}

void Atom::CollectVars(std::vector<std::string>* out) const {
  for (const Term& t : args_) t.CollectVars(out);
}

std::vector<std::string> Atom::DistinctVars() const {
  std::vector<std::string> all;
  CollectVars(&all);
  std::vector<std::string> out;
  for (auto& v : all) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

bool Atom::ContainsVar(const std::string& name) const {
  return std::any_of(args_.begin(), args_.end(),
                     [&](const Term& t) { return t.ContainsVar(name); });
}

size_t Atom::Hash() const {
  size_t h = std::hash<std::string>()(predicate_);
  for (const Term& t : args_) {
    h ^= t.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Atom::ToString() const {
  if (args_.empty()) return predicate_;
  std::string out = predicate_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace factlog::ast
