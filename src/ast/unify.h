// Unification and one-way matching over AST terms.

#ifndef FACTLOG_AST_UNIFY_H_
#define FACTLOG_AST_UNIFY_H_

#include "ast/substitution.h"

namespace factlog::ast {

/// Unifies `a` and `b` under the bindings already in `*subst`, extending it
/// on success. Performs the occurs check (compound terms make it necessary).
/// Returns false and leaves `*subst` in an unspecified-but-valid state on
/// failure; callers that need rollback should copy first.
bool Unify(const Term& a, const Term& b, Substitution* subst);

/// Unifies two atoms (same predicate, same arity, argumentwise unification).
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst);

/// One-way match: extends `*subst` so that pattern*subst == ground.
/// `ground` must be ground. Variables in `ground` are treated as constants
/// (never bound).
bool MatchTerm(const Term& pattern, const Term& ground, Substitution* subst);

/// One-way match of atoms.
bool MatchAtom(const Atom& pattern, const Atom& ground, Substitution* subst);

}  // namespace factlog::ast

#endif  // FACTLOG_AST_UNIFY_H_
