#include "ast/program.h"

#include "ast/special_predicates.h"

namespace factlog::ast {

std::set<std::string> Program::IdbPredicates() const {
  std::set<std::string> out;
  for (const Rule& r : rules_) out.insert(r.head().predicate());
  return out;
}

std::map<std::string, size_t> Program::PredicateArities() const {
  std::map<std::string, size_t> out;
  auto note = [&out](const Atom& a) {
    out.emplace(a.predicate(), a.arity());
  };
  for (const Rule& r : rules_) {
    note(r.head());
    for (const Atom& b : r.body()) note(b);
  }
  if (query_.has_value()) note(*query_);
  for (const auto& [name, arity] : edb_decls_) out.emplace(name, arity);
  return out;
}

std::map<std::string, size_t> Program::EdbPredicates() const {
  std::set<std::string> idb = IdbPredicates();
  std::map<std::string, size_t> out;
  for (const auto& [name, arity] : PredicateArities()) {
    if (idb.count(name) > 0) continue;
    if (IsBuiltinPredicate(name)) continue;
    out.emplace(name, arity);
  }
  return out;
}

std::vector<const Rule*> Program::RulesFor(const std::string& name) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules_) {
    if (r.head().predicate() == name) out.push_back(&r);
  }
  return out;
}

Status Program::ValidateArities() const {
  std::map<std::string, size_t> arities;
  auto check = [&arities](const Atom& a) -> Status {
    auto [it, inserted] = arities.emplace(a.predicate(), a.arity());
    if (!inserted && it->second != a.arity()) {
      return Status::Invalid("predicate '" + a.predicate() +
                             "' used with arities " +
                             std::to_string(it->second) + " and " +
                             std::to_string(a.arity()));
    }
    return Status::OK();
  };
  for (const auto& [name, arity] : edb_decls_) {
    arities.emplace(name, arity);
  }
  for (const Rule& r : rules_) {
    FACTLOG_RETURN_IF_ERROR(check(r.head()));
    for (const Atom& b : r.body()) FACTLOG_RETURN_IF_ERROR(check(b));
  }
  if (query_.has_value()) FACTLOG_RETURN_IF_ERROR(check(*query_));
  return Status::OK();
}

Status Program::Validate() const {
  FACTLOG_RETURN_IF_ERROR(ValidateArities());
  for (const Rule& r : rules_) {
    if (!r.IsRangeRestricted()) {
      // A head variable appearing in a builtin body literal (e.g. an affine
      // output) is bound by the engine, so only variables absent from the
      // entire body are rejected.
      std::vector<std::string> head_vars;
      r.head().CollectVars(&head_vars);
      for (const std::string& v : head_vars) {
        bool in_body = false;
        for (const Atom& b : r.body()) {
          if (b.ContainsVar(v)) {
            in_body = true;
            break;
          }
        }
        if (!in_body) {
          return Status::Invalid("rule not range-restricted: " + r.ToString());
        }
      }
    }
  }
  return Status::OK();
}

std::string Program::ToString() const {
  std::string out;
  for (const auto& [name, arity] : edb_decls_) {
    out += ".edb " + name + "/" + std::to_string(arity) + ".\n";
  }
  for (const Rule& r : rules_) {
    out += r.ToString();
    out += "\n";
  }
  if (query_.has_value()) {
    out += "?- " + query_->ToString() + ".\n";
  }
  return out;
}

}  // namespace factlog::ast
