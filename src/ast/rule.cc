#include "ast/rule.h"

#include <algorithm>

namespace factlog::ast {

std::vector<std::string> Rule::DistinctVars() const {
  std::vector<std::string> all;
  head_.CollectVars(&all);
  for (const Atom& a : body_) a.CollectVars(&all);
  std::vector<std::string> out;
  for (auto& v : all) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

bool Rule::IsRangeRestricted() const {
  std::vector<std::string> head_vars;
  head_.CollectVars(&head_vars);
  for (const std::string& v : head_vars) {
    bool found = std::any_of(body_.begin(), body_.end(),
                             [&](const Atom& a) { return a.ContainsVar(v); });
    if (!found) return false;
  }
  return true;
}

std::string Rule::ToString() const {
  std::string out = head_.ToString();
  if (!body_.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body_.size(); ++i) {
      if (i > 0) out += ", ";
      out += body_[i].ToString();
    }
  }
  out += ".";
  return out;
}

}  // namespace factlog::ast
