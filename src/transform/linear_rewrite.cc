#include "transform/linear_rewrite.h"

#include <algorithm>
#include <set>

namespace factlog::transform {

namespace {

using ast::Atom;
using ast::Rule;
using ast::Term;

std::vector<Term> ProjectArgs(const Atom& atom, const std::vector<int>& pos) {
  std::vector<Term> out;
  out.reserve(pos.size());
  for (int p : pos) out.push_back(atom.args()[p]);
  return out;
}

std::set<std::string> VarsAt(const Atom& atom, const std::vector<int>& pos) {
  std::set<std::string> out;
  for (int p : pos) {
    std::vector<std::string> vars;
    atom.args()[p].CollectVars(&vars);
    out.insert(vars.begin(), vars.end());
  }
  return out;
}

bool VarsWithin(const Atom& atom, const std::set<std::string>& allowed) {
  std::vector<std::string> vars;
  atom.CollectVars(&vars);
  return std::all_of(vars.begin(), vars.end(), [&](const std::string& v) {
    return allowed.count(v) > 0;
  });
}

Status RequireShapes(const core::ProgramClassification& c,
                     core::RuleShape::Kind kind) {
  if (!c.rlc_stable) {
    return Status::FailedPrecondition("program is not RLC-stable: " +
                                      c.diagnostic);
  }
  for (const core::RuleShape& s : c.shapes) {
    if (s.kind == core::RuleShape::Kind::kExit) continue;
    if (s.kind != kind) {
      return Status::FailedPrecondition(
          "rule " + std::to_string(s.rule_index) + " is " +
          core::RuleShapeKindToString(s.kind) + ", expected " +
          core::RuleShapeKindToString(kind));
    }
  }
  return Status::OK();
}

LinearRewriteResult InitResult(const analysis::AdornedProgram& adorned,
                               const core::ProgramClassification& c) {
  LinearRewriteResult out;
  out.goal_name = "m_" + c.predicate;
  const analysis::AdornedPredicate& ap = adorned.predicates().begin()->second;
  out.answer_name = "f" + ap.base;
  return out;
}

void AddSeedAndQuery(const analysis::AdornedProgram& adorned,
                     const core::ProgramClassification& c,
                     LinearRewriteResult* out) {
  std::vector<int> bound_pos = c.adornment.BoundPositions();
  std::vector<int> free_pos = c.adornment.FreePositions();
  out->program.mutable_rules()->insert(
      out->program.mutable_rules()->begin(),
      Rule(Atom(out->goal_name, ProjectArgs(adorned.query(), bound_pos)), {}));
  std::vector<Term> q_vars;
  for (const std::string& v : adorned.query().DistinctVars()) {
    q_vars.push_back(Term::Var(v));
  }
  Atom q_head("query", q_vars);
  out->program.AddRule(
      Rule(q_head,
           {Atom(out->answer_name, ProjectArgs(adorned.query(), free_pos))}));
  out->query = q_head;
  out->program.set_query(out->query);
}

}  // namespace

Result<LinearRewriteResult> RewriteRightLinear(
    const analysis::AdornedProgram& adorned,
    const core::ProgramClassification& classification) {
  FACTLOG_RETURN_IF_ERROR(
      RequireShapes(classification, core::RuleShape::Kind::kRightLinear));
  LinearRewriteResult out = InitResult(adorned, classification);
  std::vector<int> bound_pos = classification.adornment.BoundPositions();
  std::vector<int> free_pos = classification.adornment.FreePositions();

  const auto& rules = adorned.program().rules();
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const core::RuleShape& shape = classification.shapes[r];
    if (shape.kind == core::RuleShape::Kind::kExit) {
      // ans(Y) :- m(X), exit(X, Y).
      std::vector<Atom> body = {
          Atom(out.goal_name, ProjectArgs(rule.head(), bound_pos))};
      body.insert(body.end(), rule.body().begin(), rule.body().end());
      out.program.AddRule(
          Rule(Atom(out.answer_name, ProjectArgs(rule.head(), free_pos)),
               std::move(body)));
      continue;
    }
    // m(V) :- m(X), first(X, V); the right conjunction is dropped (it is
    // implied by free_exit ⊆ right under selection-pushing).
    std::set<std::string> head_free_vars = VarsAt(rule.head(), free_pos);
    const Atom& occ = rule.body()[shape.occurrences[0].body_index];
    std::vector<Atom> body = {
        Atom(out.goal_name, ProjectArgs(rule.head(), bound_pos))};
    for (size_t b = 0; b < rule.body().size(); ++b) {
      if (static_cast<int>(b) == shape.occurrences[0].body_index) continue;
      if (!VarsWithin(rule.body()[b], head_free_vars)) {
        body.push_back(rule.body()[b]);
      }
    }
    out.program.AddRule(Rule(Atom(out.goal_name, ProjectArgs(occ, bound_pos)),
                             std::move(body)));
  }
  AddSeedAndQuery(adorned, classification, &out);
  return out;
}

Result<LinearRewriteResult> RewriteLeftLinear(
    const analysis::AdornedProgram& adorned,
    const core::ProgramClassification& classification) {
  FACTLOG_RETURN_IF_ERROR(
      RequireShapes(classification, core::RuleShape::Kind::kLeftLinear));
  LinearRewriteResult out = InitResult(adorned, classification);
  std::vector<int> bound_pos = classification.adornment.BoundPositions();
  std::vector<int> free_pos = classification.adornment.FreePositions();

  const auto& rules = adorned.program().rules();
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const core::RuleShape& shape = classification.shapes[r];
    std::set<std::string> head_bound_vars = VarsAt(rule.head(), bound_pos);

    if (shape.kind == core::RuleShape::Kind::kExit) {
      std::vector<Atom> body = {
          Atom(out.goal_name, ProjectArgs(rule.head(), bound_pos))};
      body.insert(body.end(), rule.body().begin(), rule.body().end());
      out.program.AddRule(
          Rule(Atom(out.answer_name, ProjectArgs(rule.head(), free_pos)),
               std::move(body)));
      continue;
    }

    // Partition EDB atoms into left (over the bound head variables) and
    // last (the rest).
    std::vector<Atom> left_atoms, last_atoms;
    std::set<int> occ_indices;
    for (const core::OccurrenceInfo& occ : shape.occurrences) {
      occ_indices.insert(occ.body_index);
    }
    for (size_t b = 0; b < rule.body().size(); ++b) {
      if (occ_indices.count(static_cast<int>(b)) > 0) continue;
      if (VarsWithin(rule.body()[b], head_bound_vars)) {
        left_atoms.push_back(rule.body()[b]);
      } else {
        last_atoms.push_back(rule.body()[b]);
      }
    }
    bool bound_used_in_last = std::any_of(
        last_atoms.begin(), last_atoms.end(), [&](const Atom& a) {
          std::vector<std::string> vars;
          a.CollectVars(&vars);
          return std::any_of(vars.begin(), vars.end(),
                             [&](const std::string& v) {
                               return head_bound_vars.count(v) > 0;
                             });
        });

    std::vector<Atom> body;
    if (!left_atoms.empty() || bound_used_in_last) {
      // ans(Y) :- m(X), left(X), ans(U1), ..., ans(Um), last(U, Y).
      body.push_back(Atom(out.goal_name, ProjectArgs(rule.head(), bound_pos)));
      body.insert(body.end(), left_atoms.begin(), left_atoms.end());
    }
    for (const core::OccurrenceInfo& occ : shape.occurrences) {
      body.push_back(Atom(out.answer_name,
                          ProjectArgs(rule.body()[occ.body_index], free_pos)));
    }
    body.insert(body.end(), last_atoms.begin(), last_atoms.end());
    out.program.AddRule(
        Rule(Atom(out.answer_name, ProjectArgs(rule.head(), free_pos)),
             std::move(body)));
  }
  AddSeedAndQuery(adorned, classification, &out);
  return out;
}

}  // namespace factlog::transform
