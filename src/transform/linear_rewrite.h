// Direct rewriting of right- and left-linear recursions (§6.3, after [9]).
//
// [9] ("Efficient evaluation of right-, left-, and multi-linear rules",
// SIGMOD 1989) gives special-purpose rewritings that produce unary programs
// for single-selection queries on linear recursions. §6.3 of the factoring
// paper shows these are subsumed: Magic Sets + factoring + the §5 cleanups
// derive the same final programs automatically. This module implements the
// direct rewritings as an independent baseline so that claim can be checked
// *structurally* (core/canonical.h) rather than only semantically.

#ifndef FACTLOG_TRANSFORM_LINEAR_REWRITE_H_
#define FACTLOG_TRANSFORM_LINEAR_REWRITE_H_

#include "analysis/adornment.h"
#include "ast/program.h"
#include "common/status.h"
#include "core/rule_classes.h"

namespace factlog::transform {

struct LinearRewriteResult {
  ast::Program program;
  ast::Atom query;
  /// Goal-chain predicate (right-linear case), e.g. "m_t_bf".
  std::string goal_name;
  /// Answer predicate, e.g. "ft".
  std::string answer_name;
};

/// Rewrites a right-linear-only RLC-stable program (all recursive rules
/// right-linear, one exit rule) into the [9] form:
///
///   m(seed).
///   m(V) :- m(X), first_i(X, V).        (one per recursive rule)
///   ans(Y) :- m(X), exit(X, Y).
///   query(vars) :- ans(Y).
///
/// This is sound when the program is selection-pushing (free_exit ⊆ right_i
/// makes the right_i conjunctions redundant on answers). Fails with
/// kFailedPrecondition on other shapes.
Result<LinearRewriteResult> RewriteRightLinear(
    const analysis::AdornedProgram& adorned,
    const core::ProgramClassification& classification);

/// Rewrites a left-linear-only RLC-stable program into the [9] form:
///
///   m(seed).
///   ans(Y) :- m(X), exit(X, Y).
///   ans(Y) :- [m(X), left(X),] ans(U1), ..., ans(Um), last(U, Y).
///   query(vars) :- ans(Y).
///
/// The bracketed goal guard is omitted when the left conjunction is empty
/// and the bound variables do not occur in `last` — matching the output of
/// the §5 cleanups on the factored Magic program.
Result<LinearRewriteResult> RewriteLeftLinear(
    const analysis::AdornedProgram& adorned,
    const core::ProgramClassification& classification);

}  // namespace factlog::transform

#endif  // FACTLOG_TRANSFORM_LINEAR_REWRITE_H_
