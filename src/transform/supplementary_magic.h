// Supplementary Magic Sets (Beeri & Ramakrishnan's refinement of the
// transformation in §2.1).
//
// Plain Magic Sets re-evaluates shared body prefixes: the magic rule for
// body literal b_i joins m_h with b_1..b_{i-1}, and the modified rule joins
// the same prefix again. The supplementary variant materializes each prefix
// once:
//
//   sup_{r,1}(V_1)   :- m_h(X̄), b_1.
//   sup_{r,i}(V_i)   :- sup_{r,i-1}(V_{i-1}), b_i.        (1 < i < n)
//   m_{b_i}(bound)   :- sup_{r,i-1}(V_{i-1}).              (b_i an IDB literal)
//   h                :- sup_{r,n-1}(V_{n-1}), b_n.
//
// where V_i keeps exactly the variables needed by the remaining literals
// and the head. Answers are identical to plain Magic Sets; the join work is
// not. The factoring pipeline is orthogonal — this module exists as the
// stronger Magic baseline for the benchmark harness.

#ifndef FACTLOG_TRANSFORM_SUPPLEMENTARY_MAGIC_H_
#define FACTLOG_TRANSFORM_SUPPLEMENTARY_MAGIC_H_

#include <map>
#include <string>

#include "analysis/adornment.h"
#include "ast/program.h"
#include "common/status.h"

namespace factlog::transform {

struct SupplementaryMagicProgram {
  ast::Program program;
  ast::Atom query;
  std::map<std::string, std::string> magic_names;
  ast::Atom seed;
};

/// Applies the supplementary Magic Sets transformation to an adorned
/// program.
Result<SupplementaryMagicProgram> SupplementaryMagicSets(
    const analysis::AdornedProgram& adorned);

}  // namespace factlog::transform

#endif  // FACTLOG_TRANSFORM_SUPPLEMENTARY_MAGIC_H_
