#include "transform/magic.h"

namespace factlog::transform {

namespace {

using analysis::AdornedPredicate;
using ast::Atom;
using ast::Rule;
using ast::Term;

// Projects the arguments of `atom` onto the bound positions of `ap`.
std::vector<Term> BoundArgs(const Atom& atom, const AdornedPredicate& ap) {
  std::vector<Term> out;
  for (int pos : ap.adornment.BoundPositions()) {
    out.push_back(atom.args()[pos]);
  }
  return out;
}

}  // namespace

Result<MagicProgram> MagicSets(const analysis::AdornedProgram& adorned) {
  MagicProgram out;
  out.adorned = adorned;
  out.query = adorned.query();

  // Allocate magic predicate names.
  for (const auto& [name, ap] : adorned.predicates()) {
    out.magic_names.emplace(name, "m_" + name);
  }

  // Seed: the bound arguments of the query are ground by construction.
  const AdornedPredicate& qp = adorned.query_predicate();
  out.seed = Atom(out.magic_names.at(adorned.query().predicate()),
                  BoundArgs(adorned.query(), qp));
  if (!out.seed.IsGround()) {
    return Status::Internal("magic seed is not ground: " + out.seed.ToString());
  }
  out.program.AddRule(Rule(out.seed, {}));

  const auto& rules = adorned.program().rules();
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const analysis::AdornedRuleInfo& info = adorned.rule_info()[r];

    Atom head_magic(out.magic_names.at(rule.head().predicate()),
                    BoundArgs(rule.head(), info.head));

    // Magic rules: one per IDB body literal.
    for (size_t i = 0; i < rule.body().size(); ++i) {
      if (!info.body[i].has_value()) continue;
      const Atom& lit = rule.body()[i];
      Atom magic_head(out.magic_names.at(lit.predicate()),
                      BoundArgs(lit, *info.body[i]));
      std::vector<Atom> body = {head_magic};
      body.insert(body.end(), rule.body().begin(), rule.body().begin() + i);
      // Trivially circular magic rules (m(X) :- m(X), produced by
      // left-linear occurrences) are dropped, as in Fig. 1 of the paper.
      if (body.size() == 1 && body[0] == magic_head) continue;
      out.program.AddRule(Rule(std::move(magic_head), std::move(body)));
    }

    // Modified original rule: guard with the head's magic literal.
    std::vector<Atom> body = {head_magic};
    body.insert(body.end(), rule.body().begin(), rule.body().end());
    out.program.AddRule(Rule(rule.head(), std::move(body)));
  }

  out.program.set_query(out.query);
  return out;
}

}  // namespace factlog::transform
