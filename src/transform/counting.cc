#include "transform/counting.h"

#include <algorithm>
#include <set>

#include "ast/special_predicates.h"

namespace factlog::transform {

namespace {

using ast::Atom;
using ast::Rule;
using ast::Term;

std::vector<Term> ProjectArgs(const Atom& atom, const std::vector<int>& pos) {
  std::vector<Term> out;
  out.reserve(pos.size());
  for (int p : pos) out.push_back(atom.args()[p]);
  return out;
}

std::set<std::string> VarsAt(const Atom& atom, const std::vector<int>& pos) {
  std::set<std::string> out;
  for (int p : pos) {
    std::vector<std::string> vars;
    atom.args()[p].CollectVars(&vars);
    out.insert(vars.begin(), vars.end());
  }
  return out;
}

// True when every variable of `atom` belongs to `allowed`.
bool VarsWithin(const Atom& atom, const std::set<std::string>& allowed) {
  std::vector<std::string> vars;
  atom.CollectVars(&vars);
  return std::all_of(vars.begin(), vars.end(), [&](const std::string& v) {
    return allowed.count(v) > 0;
  });
}

Atom Affine(const std::string& x, int64_t a, int64_t b, const std::string& z) {
  return Atom(ast::kAffinePredicate,
              {Term::Var(x), Term::Int(a), Term::Int(b), Term::Var(z)});
}

Atom Geq(const std::string& x, int64_t c) {
  return Atom(ast::kGeqPredicate, {Term::Var(x), Term::Int(c)});
}

}  // namespace

Result<CountingProgram> CountingTransform(
    const analysis::AdornedProgram& adorned,
    const core::ProgramClassification& classification) {
  if (!classification.unit_program) {
    return Status::FailedPrecondition("Counting requires a unit program");
  }
  const std::string& pred = classification.predicate;
  const analysis::Adornment& adn = classification.adornment;
  std::vector<int> bound_pos = adn.BoundPositions();
  std::vector<int> free_pos = adn.FreePositions();

  // Count the recursive rules and check linearity.
  int k = 0;
  for (const core::RuleShape& s : classification.shapes) {
    if (s.kind == core::RuleShape::Kind::kExit) continue;
    if (s.kind == core::RuleShape::Kind::kCombined ||
        s.occurrences.size() != 1) {
      return Status::FailedPrecondition(
          "Counting (as presented in §6.4) requires linear rules; rule " +
          std::to_string(s.rule_index) + " is " +
          core::RuleShapeKindToString(s.kind));
    }
    if (s.kind != core::RuleShape::Kind::kRightLinear &&
        s.kind != core::RuleShape::Kind::kLeftLinear) {
      return Status::FailedPrecondition(
          "rule " + std::to_string(s.rule_index) +
          " is not left- or right-linear: " + s.diagnostic);
    }
    ++k;
  }

  CountingProgram out;
  out.cnt_name = "cnt_" + pred;
  out.ans_name = pred + "_cnt";
  out.query_name = "query";

  const auto& rules = adorned.program().rules();

  // Seed: cnt_p(query bound args, 0, 0).
  {
    std::vector<Term> args = ProjectArgs(adorned.query(), bound_pos);
    args.push_back(Term::Int(0));
    args.push_back(Term::Int(0));
    out.program.AddRule(Rule(Atom(out.cnt_name, std::move(args)), {}));
  }

  int rec_index = 0;  // 1-based index i of the recursive rule
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const core::RuleShape& shape = classification.shapes[r];
    std::set<std::string> head_free_vars = VarsAt(rule.head(), free_pos);
    std::set<std::string> head_bound_vars = VarsAt(rule.head(), bound_pos);

    if (shape.kind == core::RuleShape::Kind::kExit) {
      // p_cnt(Y, I, J) :- cnt_p(X, I, J), exit(X, Y).
      std::vector<Term> cnt_args = ProjectArgs(rule.head(), bound_pos);
      cnt_args.push_back(Term::Var("I"));
      cnt_args.push_back(Term::Var("J"));
      std::vector<Atom> body = {Atom(out.cnt_name, std::move(cnt_args))};
      body.insert(body.end(), rule.body().begin(), rule.body().end());
      std::vector<Term> ans_args = ProjectArgs(rule.head(), free_pos);
      ans_args.push_back(Term::Var("I"));
      ans_args.push_back(Term::Var("J"));
      out.program.AddRule(
          Rule(Atom(out.ans_name, std::move(ans_args)), std::move(body)));
      continue;
    }

    ++rec_index;
    const Atom& occ = rule.body()[shape.occurrences[0].body_index];

    if (shape.kind == core::RuleShape::Kind::kRightLinear) {
      // Goal rule: cnt_p(V, I+1, k*J+i) :- cnt_p(X, I, J), first(X, V).
      // "first" = the EDB atoms not entirely over the head's free variables.
      std::vector<Term> head_cnt = ProjectArgs(rule.head(), bound_pos);
      head_cnt.push_back(Term::Var("I"));
      head_cnt.push_back(Term::Var("J"));
      std::vector<Atom> goal_body = {Atom(out.cnt_name, head_cnt)};
      std::vector<Atom> right_atoms;
      for (size_t b = 0; b < rule.body().size(); ++b) {
        if (static_cast<int>(b) == shape.occurrences[0].body_index) continue;
        if (VarsWithin(rule.body()[b], head_free_vars)) {
          right_atoms.push_back(rule.body()[b]);
        } else {
          goal_body.push_back(rule.body()[b]);
        }
      }
      std::vector<Term> occ_cnt = ProjectArgs(occ, bound_pos);
      occ_cnt.push_back(Term::Var("I2"));
      occ_cnt.push_back(Term::Var("J2"));
      std::vector<Atom> goal_body_full = goal_body;
      goal_body_full.push_back(Affine("I", 1, 1, "I2"));
      goal_body_full.push_back(Affine("J", k, rec_index, "J2"));
      out.program.AddRule(
          Rule(Atom(out.cnt_name, occ_cnt), std::move(goal_body_full)));

      // Answer rule: p_cnt(Y, I, J) :- p_cnt(Y, I+1, k*J+i), right(Y).
      std::vector<Term> occ_ans = ProjectArgs(occ, free_pos);
      occ_ans.push_back(Term::Var("I2"));
      occ_ans.push_back(Term::Var("J2"));
      std::vector<Atom> ans_body = {Atom(out.ans_name, std::move(occ_ans))};
      ans_body.insert(ans_body.end(), right_atoms.begin(), right_atoms.end());
      ans_body.push_back(Affine("I", 1, 1, "I2"));
      ans_body.push_back(Affine("J", k, rec_index, "J2"));
      // Indices encode derivation depth and never go negative.
      ans_body.push_back(Geq("I", 0));
      ans_body.push_back(Geq("J", 0));
      std::vector<Term> head_ans = ProjectArgs(rule.head(), free_pos);
      head_ans.push_back(Term::Var("I"));
      head_ans.push_back(Term::Var("J"));
      out.program.AddRule(
          Rule(Atom(out.ans_name, std::move(head_ans)), std::move(ans_body)));
      continue;
    }

    // Left-linear rule.
    // Goal rule: cnt_p(X, I+1, k*J+i) :- cnt_p(X, I, J), left(X).
    // This is the rule whose fixpoint evaluation does not terminate (§6.4).
    std::vector<Term> head_cnt = ProjectArgs(rule.head(), bound_pos);
    head_cnt.push_back(Term::Var("I"));
    head_cnt.push_back(Term::Var("J"));
    std::vector<Atom> left_atoms, last_atoms;
    for (size_t b = 0; b < rule.body().size(); ++b) {
      if (static_cast<int>(b) == shape.occurrences[0].body_index) continue;
      if (VarsWithin(rule.body()[b], head_bound_vars)) {
        left_atoms.push_back(rule.body()[b]);
      } else {
        last_atoms.push_back(rule.body()[b]);
      }
    }
    std::vector<Term> occ_cnt = ProjectArgs(occ, bound_pos);
    occ_cnt.push_back(Term::Var("I2"));
    occ_cnt.push_back(Term::Var("J2"));
    std::vector<Atom> goal_body = {Atom(out.cnt_name, head_cnt)};
    goal_body.insert(goal_body.end(), left_atoms.begin(), left_atoms.end());
    goal_body.push_back(Affine("I", 1, 1, "I2"));
    goal_body.push_back(Affine("J", k, rec_index, "J2"));
    out.program.AddRule(
        Rule(Atom(out.cnt_name, std::move(occ_cnt)), std::move(goal_body)));

    // Answer rule: p_cnt(Y, I, J) :- p_cnt(U, I+1, k*J+i), last(U, Y), left(X)?
    // The left conjunction constrains goals, not answers; it is not
    // repeated here (its variables are not visible).
    std::vector<Term> occ_ans = ProjectArgs(occ, free_pos);
    occ_ans.push_back(Term::Var("I2"));
    occ_ans.push_back(Term::Var("J2"));
    std::vector<Atom> ans_body = {Atom(out.ans_name, std::move(occ_ans))};
    ans_body.insert(ans_body.end(), last_atoms.begin(), last_atoms.end());
    ans_body.push_back(Affine("I", 1, 1, "I2"));
    ans_body.push_back(Affine("J", k, rec_index, "J2"));
    ans_body.push_back(Geq("I", 0));
    ans_body.push_back(Geq("J", 0));
    std::vector<Term> head_ans = ProjectArgs(rule.head(), free_pos);
    head_ans.push_back(Term::Var("I"));
    head_ans.push_back(Term::Var("J"));
    out.program.AddRule(
        Rule(Atom(out.ans_name, std::move(head_ans)), std::move(ans_body)));
  }

  // Query rule: query(vars) :- p_cnt(query free args, 0, 0).
  std::vector<Term> q_args = ProjectArgs(adorned.query(), free_pos);
  q_args.push_back(Term::Int(0));
  q_args.push_back(Term::Int(0));
  std::vector<Term> q_vars;
  for (const std::string& v : adorned.query().DistinctVars()) {
    q_vars.push_back(Term::Var(v));
  }
  Atom q_head(out.query_name, q_vars);
  out.program.AddRule(Rule(q_head, {Atom(out.ans_name, std::move(q_args))}));
  out.query = q_head;
  out.program.set_query(out.query);
  return out;
}

ast::Program DeleteIndexFields(const CountingProgram& counting) {
  auto strip = [&](const Atom& a) -> std::optional<Atom> {
    if (a.predicate() == ast::kAffinePredicate ||
        a.predicate() == ast::kGeqPredicate) {
      return std::nullopt;
    }
    if (a.predicate() == counting.cnt_name ||
        a.predicate() == counting.ans_name) {
      std::vector<Term> args(a.args().begin(), a.args().end() - 2);
      return Atom(a.predicate(), std::move(args));
    }
    return a;
  };
  ast::Program out;
  for (const Rule& r : counting.program.rules()) {
    std::optional<Atom> head = strip(r.head());
    if (!head.has_value()) continue;
    std::vector<Atom> body;
    for (const Atom& b : r.body()) {
      std::optional<Atom> sb = strip(b);
      if (sb.has_value()) body.push_back(std::move(*sb));
    }
    out.AddRule(Rule(std::move(*head), std::move(body)));
  }
  if (counting.program.query().has_value()) {
    out.set_query(*counting.program.query());
  }
  return out;
}

}  // namespace factlog::transform
