// The Magic Sets transformation (§2.1; generalized magic sets with full
// left-to-right sideways information passing, matching Fig. 1 of the paper).

#ifndef FACTLOG_TRANSFORM_MAGIC_H_
#define FACTLOG_TRANSFORM_MAGIC_H_

#include <map>
#include <string>

#include "analysis/adornment.h"
#include "ast/program.h"
#include "common/status.h"

namespace factlog::transform {

/// The result of the Magic Sets transformation P^mg.
struct MagicProgram {
  /// Magic rules, modified original rules, and the seed fact.
  ast::Program program;
  /// The query, unchanged from the adorned program.
  ast::Atom query;
  /// adorned predicate name -> its magic predicate name (m_p_a).
  std::map<std::string, std::string> magic_names;
  /// The seed fact, e.g. m_t_bf(5).
  ast::Atom seed;
  /// The adorned program this was built from (metadata for later passes).
  analysis::AdornedProgram adorned;
};

/// Applies Magic Sets to an adorned program:
///  * for each adorned rule `h :- b1, ..., bn` and IDB literal b_i, a magic
///    rule `m(b_i bound args) :- m(h bound args), b_1, ..., b_{i-1}`;
///  * each original rule is guarded with `m(h bound args)`;
///  * the query's bound constants seed the magic predicate.
Result<MagicProgram> MagicSets(const analysis::AdornedProgram& adorned);

}  // namespace factlog::transform

#endif  // FACTLOG_TRANSFORM_MAGIC_H_
