// The Counting transformation (§6.4).
//
// Counting is the variant of Magic Sets that augments every derived
// predicate with index fields encoding the derivation: the goal depth I and
// a rule-path code J (rule i of k maps J to k*J + i). Answers are matched to
// goals by *decrementing* the indices, so the bound arguments themselves can
// be dropped — like factoring, Counting reduces the arity of the recursive
// predicate, but it pays for the index bookkeeping.
//
// This module implements Counting for linear unit programs (each recursive
// rule right- or left-linear), which covers both sides of the paper's
// comparison:
//   * on right-linear programs, deleting the index fields from the Counting
//     program yields exactly the factored Magic program (Theorem 6.4);
//   * on left-linear rules the transformation produces
//     cnt_p(X, I+1) :- cnt_p(X, I), which never terminates — the paper's
//     nontermination observation, reproduced by the evaluation budget.
// Index arithmetic uses the affine/4 builtin, which solves in both
// directions (I from I+1 on the answer-propagation rules).

#ifndef FACTLOG_TRANSFORM_COUNTING_H_
#define FACTLOG_TRANSFORM_COUNTING_H_

#include <string>

#include "analysis/adornment.h"
#include "ast/program.h"
#include "common/status.h"
#include "core/rule_classes.h"

namespace factlog::transform {

struct CountingProgram {
  ast::Program program;
  ast::Atom query;
  /// Goal predicate with index fields (cnt_p): bound args + I + J.
  std::string cnt_name;
  /// Answer predicate with index fields (p_cnt): free args + I + J.
  std::string ans_name;
  /// The query rule's head predicate.
  std::string query_name;
};

/// Applies Counting to a classified linear unit program. Fails with
/// kFailedPrecondition when some recursive rule is combined/nonlinear (the
/// §6.4 presentation, like the original Counting method, is for linear
/// rules).
Result<CountingProgram> CountingTransform(
    const analysis::AdornedProgram& adorned,
    const core::ProgramClassification& classification);

/// Deletes the index fields: drops the two trailing arguments of cnt_p and
/// p_cnt everywhere and removes the affine/4 index-arithmetic literals.
/// Together with the deletion of trivially redundant rules this is the
/// program Theorem 6.4 compares against the factored Magic program.
ast::Program DeleteIndexFields(const CountingProgram& counting);

}  // namespace factlog::transform

#endif  // FACTLOG_TRANSFORM_COUNTING_H_
