#include "transform/supplementary_magic.h"

#include <algorithm>
#include <set>

namespace factlog::transform {

namespace {

using analysis::AdornedPredicate;
using ast::Atom;
using ast::Rule;
using ast::Term;

std::vector<Term> BoundArgs(const Atom& atom, const AdornedPredicate& ap) {
  std::vector<Term> out;
  for (int pos : ap.adornment.BoundPositions()) out.push_back(atom.args()[pos]);
  return out;
}

std::set<std::string> AtomVars(const Atom& a) {
  std::vector<std::string> v;
  a.CollectVars(&v);
  return std::set<std::string>(v.begin(), v.end());
}

}  // namespace

Result<SupplementaryMagicProgram> SupplementaryMagicSets(
    const analysis::AdornedProgram& adorned) {
  SupplementaryMagicProgram out;
  out.query = adorned.query();

  for (const auto& [name, ap] : adorned.predicates()) {
    out.magic_names.emplace(name, "m_" + name);
  }
  const AdornedPredicate& qp = adorned.query_predicate();
  out.seed = Atom(out.magic_names.at(adorned.query().predicate()),
                  BoundArgs(adorned.query(), qp));
  out.program.AddRule(Rule(out.seed, {}));

  const auto& rules = adorned.program().rules();
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const analysis::AdornedRuleInfo& info = adorned.rule_info()[r];
    const size_t n = rule.body().size();

    Atom head_magic(out.magic_names.at(rule.head().predicate()),
                    BoundArgs(rule.head(), info.head));

    if (n == 0) {
      out.program.AddRule(Rule(rule.head(), {head_magic}));
      continue;
    }

    // Variables needed at stage i: used by literals i+1..n or by the head.
    std::set<std::string> head_vars = AtomVars(rule.head());
    std::vector<std::set<std::string>> needed_after(n + 1);
    needed_after[n] = head_vars;
    for (size_t i = n; i >= 1; --i) {
      needed_after[i - 1] = needed_after[i];
      for (const std::string& v : AtomVars(rule.body()[i - 1])) {
        needed_after[i - 1].insert(v);
      }
    }

    // Bound-so-far: head bound args, then every processed literal's vars.
    std::set<std::string> bound = AtomVars(head_magic);

    // The "previous stage" literal: m_h for i == 1, sup_{r,i-1} afterwards.
    Atom prev = head_magic;
    for (size_t i = 1; i <= n; ++i) {
      const Atom& lit = rule.body()[i - 1];

      // Magic rule for an IDB literal: from the previous stage only.
      if (info.body[i - 1].has_value()) {
        Atom magic_head(out.magic_names.at(lit.predicate()),
                        BoundArgs(lit, *info.body[i - 1]));
        if (!(magic_head == prev)) {
          out.program.AddRule(Rule(magic_head, {prev}));
        }
      }

      if (i == n) {
        // Final stage inlines into the modified rule.
        out.program.AddRule(Rule(rule.head(), {prev, lit}));
        break;
      }

      // sup_{r,i}(V_i) :- prev, b_i.
      for (const std::string& v : AtomVars(lit)) bound.insert(v);
      std::vector<Term> sup_args;
      for (const std::string& v : bound) {
        if (needed_after[i].count(v) > 0) sup_args.push_back(Term::Var(v));
      }
      Atom sup("sup_" + std::to_string(r) + "_" + std::to_string(i),
               std::move(sup_args));
      out.program.AddRule(Rule(sup, {prev, lit}));
      prev = sup;
    }
  }

  out.program.set_query(out.query);
  return out;
}

}  // namespace factlog::transform
