// List workloads for the function-symbol experiments (Examples 1.2 / 4.6).

#ifndef FACTLOG_WORKLOAD_LIST_GEN_H_
#define FACTLOG_WORKLOAD_LIST_GEN_H_

#include <cstdint>

#include "ast/program.h"
#include "eval/database.h"

namespace factlog::workload {

/// Returns the ground list term [1, 2, ..., n].
ast::Term MakeIntList(int64_t n);

/// Populates the unary predicate `pred` with every integer in 1..n whose
/// value satisfies `i % modulo == rem` (modulo == 1 accepts everything —
/// the "all members satisfy p" worst case of Example 1.2).
void MakeMembershipPredicate(int64_t n, int64_t modulo, int64_t rem,
                             const std::string& pred, eval::Database* db);

/// Builds the pmem program of Example 1.2 with the query list [1..n]:
///
///   pmem(X, [X | T]) :- p(X).
///   pmem(X, [H | T]) :- pmem(X, T).
///   ?- pmem(X, [1, ..., n]).
ast::Program MakePmemProgram(int64_t n);

}  // namespace factlog::workload

#endif  // FACTLOG_WORKLOAD_LIST_GEN_H_
