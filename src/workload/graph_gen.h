// Synthetic graph workloads for the benchmark harness.
//
// The paper's complexity claims (O(n^2) facts for Magic alone vs O(n) after
// factoring on single-source transitive closure, etc.) are exercised on these
// generators: chains, cycles, trees, random digraphs, and grids.

#ifndef FACTLOG_WORKLOAD_GRAPH_GEN_H_
#define FACTLOG_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>
#include <string>

#include "eval/database.h"

namespace factlog::workload {

/// Adds edges 1->2->...->n to relation `rel`.
void MakeChain(int64_t n, const std::string& rel, eval::Database* db);

/// Adds a directed cycle 1->2->...->n->1.
void MakeCycle(int64_t n, const std::string& rel, eval::Database* db);

/// Adds a complete `branching`-ary tree with `depth` levels below the root
/// (node 1). Edges point from parent to child. Returns the node count.
int64_t MakeTree(int branching, int depth, const std::string& rel,
                 eval::Database* db);

/// Adds `num_edges` uniformly random directed edges over nodes 1..n
/// (duplicates collapse, self-loops allowed).
void MakeRandomGraph(int64_t n, int64_t num_edges, uint64_t seed,
                     const std::string& rel, eval::Database* db);

/// Adds a w x h grid: node id = x + y*w + 1, edges rightwards and downwards.
void MakeGrid(int64_t w, int64_t h, const std::string& rel,
              eval::Database* db);

/// Adds the balanced up/flat/down same-generation workload: a `branching`-ary
/// tree of `depth` levels with `up` edges child->parent, `down` edges
/// parent->child, and `flat` edges between adjacent leaves.
void MakeSameGeneration(int branching, int depth, eval::Database* db);

/// Populates a unary relation `rel` with 1..n.
void MakeUnaryAll(int64_t n, const std::string& rel, eval::Database* db);

}  // namespace factlog::workload

#endif  // FACTLOG_WORKLOAD_GRAPH_GEN_H_
