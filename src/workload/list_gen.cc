#include "workload/list_gen.h"

namespace factlog::workload {

ast::Term MakeIntList(int64_t n) {
  ast::Term out = ast::Term::Nil();
  for (int64_t i = n; i >= 1; --i) {
    out = ast::Term::Cons(ast::Term::Int(i), std::move(out));
  }
  return out;
}

void MakeMembershipPredicate(int64_t n, int64_t modulo, int64_t rem,
                             const std::string& pred, eval::Database* db) {
  for (int64_t i = 1; i <= n; ++i) {
    if (i % modulo == rem % modulo) db->AddUnit(pred, i);
  }
}

ast::Program MakePmemProgram(int64_t n) {
  using ast::Atom;
  using ast::Rule;
  using ast::Term;
  ast::Program program;
  // pmem(X, [X | T]) :- p(X).
  program.AddRule(Rule(
      Atom("pmem", {Term::Var("X"), Term::Cons(Term::Var("X"), Term::Var("T"))}),
      {Atom("p", {Term::Var("X")})}));
  // pmem(X, [H | T]) :- pmem(X, T).
  program.AddRule(Rule(
      Atom("pmem", {Term::Var("X"), Term::Cons(Term::Var("H"), Term::Var("T"))}),
      {Atom("pmem", {Term::Var("X"), Term::Var("T")})}));
  program.set_query(Atom("pmem", {Term::Var("X"), MakeIntList(n)}));
  return program;
}

}  // namespace factlog::workload
