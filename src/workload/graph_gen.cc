#include "workload/graph_gen.h"

#include <random>
#include <vector>

namespace factlog::workload {

void MakeChain(int64_t n, const std::string& rel, eval::Database* db) {
  for (int64_t i = 1; i < n; ++i) db->AddPair(rel, i, i + 1);
}

void MakeCycle(int64_t n, const std::string& rel, eval::Database* db) {
  MakeChain(n, rel, db);
  if (n > 0) db->AddPair(rel, n, 1);
}

int64_t MakeTree(int branching, int depth, const std::string& rel,
                 eval::Database* db) {
  int64_t next = 2;
  std::vector<int64_t> frontier = {1};
  for (int d = 0; d < depth; ++d) {
    std::vector<int64_t> next_frontier;
    for (int64_t parent : frontier) {
      for (int b = 0; b < branching; ++b) {
        db->AddPair(rel, parent, next);
        next_frontier.push_back(next);
        ++next;
      }
    }
    frontier = std::move(next_frontier);
  }
  return next - 1;
}

void MakeRandomGraph(int64_t n, int64_t num_edges, uint64_t seed,
                     const std::string& rel, eval::Database* db) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> node(1, n);
  for (int64_t i = 0; i < num_edges; ++i) {
    db->AddPair(rel, node(rng), node(rng));
  }
}

void MakeGrid(int64_t w, int64_t h, const std::string& rel,
              eval::Database* db) {
  auto id = [w](int64_t x, int64_t y) { return x + y * w + 1; };
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      if (x + 1 < w) db->AddPair(rel, id(x, y), id(x + 1, y));
      if (y + 1 < h) db->AddPair(rel, id(x, y), id(x, y + 1));
    }
  }
}

void MakeSameGeneration(int branching, int depth, eval::Database* db) {
  // Build the tree once, recording parent->children, then emit up/down/flat.
  int64_t next = 2;
  std::vector<int64_t> frontier = {1};
  for (int d = 0; d < depth; ++d) {
    std::vector<int64_t> next_frontier;
    for (int64_t parent : frontier) {
      for (int b = 0; b < branching; ++b) {
        db->AddPair("up", next, parent);
        db->AddPair("down", parent, next);
        next_frontier.push_back(next);
        ++next;
      }
    }
    frontier = std::move(next_frontier);
  }
  for (size_t i = 0; i + 1 < frontier.size(); ++i) {
    db->AddPair("flat", frontier[i], frontier[i + 1]);
  }
}

void MakeUnaryAll(int64_t n, const std::string& rel, eval::Database* db) {
  for (int64_t i = 1; i <= n; ++i) db->AddUnit(rel, i);
}

}  // namespace factlog::workload
