// Predicate dependency graph: reachability and recursion structure.

#ifndef FACTLOG_ANALYSIS_DEPENDENCY_GRAPH_H_
#define FACTLOG_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <string>

#include "ast/program.h"

namespace factlog::analysis {

/// Directed graph with an edge p -> q whenever q occurs in the body of a
/// rule whose head is p.
class DependencyGraph {
 public:
  static DependencyGraph Build(const ast::Program& program);

  /// Predicates reachable from `pred` following body references (excluding
  /// `pred` itself unless it is reachable through a cycle).
  std::set<std::string> ReachableFrom(const std::string& pred) const;

  /// True when `pred` can (transitively) invoke itself.
  bool IsRecursive(const std::string& pred) const;

  /// True when some rule for `pred` has >= 1 body occurrence of `pred` and
  /// all recursion through `pred` is direct (no mutual recursion).
  bool IsDirectlyRecursiveOnly(const std::string& pred) const;

  const std::map<std::string, std::set<std::string>>& edges() const {
    return edges_;
  }

 private:
  std::map<std::string, std::set<std::string>> edges_;
};

}  // namespace factlog::analysis

#endif  // FACTLOG_ANALYSIS_DEPENDENCY_GRAPH_H_
