// Predicate dependency graph: reachability, recursion structure, and the
// SCC condensation + stratum assignment the stratified-negation front end
// consumes.

#ifndef FACTLOG_ANALYSIS_DEPENDENCY_GRAPH_H_
#define FACTLOG_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ast/program.h"

namespace factlog::analysis {

/// The strongly connected components of a DependencyGraph, emitted
/// dependencies-first (if SCC A references SCC B, B appears before A).
struct SccCondensation {
  /// Each component's predicates, sorted within the component.
  std::vector<std::vector<std::string>> sccs;
  /// Index into `sccs` for every predicate in the graph.
  std::map<std::string, int> scc_of;
};

/// Stratum assignment over the condensation. A negative edge p -> q
/// ("p's rules read q through negation / aggregation") forces
/// stratum(p) > stratum(q); the program is stratified iff no negative edge
/// closes a cycle (lands inside an SCC).
struct StratificationResult {
  bool stratified = true;
  /// Stratum per predicate (0 = lowest; EDB-only predicates sit at 0).
  /// Meaningful even when not stratified (violating edges are skipped).
  std::map<std::string, int> stratum;
  int num_strata = 0;
  /// Negative edges inside an SCC: the (head, negated body pred) pairs that
  /// make the program non-stratified.
  std::vector<std::pair<std::string, std::string>> violations;
};

/// Directed graph with an edge p -> q whenever q occurs in the body of a
/// rule whose head is p.
class DependencyGraph {
 public:
  static DependencyGraph Build(const ast::Program& program);

  /// Predicates reachable from `pred` following body references (excluding
  /// `pred` itself unless it is reachable through a cycle).
  std::set<std::string> ReachableFrom(const std::string& pred) const;

  /// True when `pred` can (transitively) invoke itself.
  bool IsRecursive(const std::string& pred) const;

  /// True when some rule for `pred` has >= 1 body occurrence of `pred` and
  /// all recursion through `pred` is direct (no mutual recursion).
  bool IsDirectlyRecursiveOnly(const std::string& pred) const;

  /// Tarjan's SCC over every predicate mentioned in the graph (heads and
  /// body references alike), components emitted dependencies-first.
  SccCondensation Condense() const;

  /// Stratum assignment over Condense(). `negative_edges` marks the (head,
  /// body pred) dependencies that must cross a stratum boundary — today
  /// these are prospective (the AST is positive-only); the stratified
  /// negation / aggregation front end will derive them from real negated
  /// literals. An edge in `negative_edges` absent from the graph is ignored.
  StratificationResult Stratify(
      const std::set<std::pair<std::string, std::string>>& negative_edges = {})
      const;

  const std::map<std::string, std::set<std::string>>& edges() const {
    return edges_;
  }

 private:
  std::map<std::string, std::set<std::string>> edges_;
};

}  // namespace factlog::analysis

#endif  // FACTLOG_ANALYSIS_DEPENDENCY_GRAPH_H_
