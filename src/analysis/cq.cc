#include "analysis/cq.h"

#include <set>

#include "ast/special_predicates.h"
#include "ast/substitution.h"
#include "ast/unify.h"

namespace factlog::analysis {

ConjunctiveQuery ConjunctiveQuery::WithHeadVars(
    const std::vector<std::string>& vars, std::vector<ast::Atom> body) {
  std::vector<ast::Term> head;
  head.reserve(vars.size());
  for (const std::string& v : vars) head.push_back(ast::Term::Var(v));
  return ConjunctiveQuery(std::move(head), std::move(body));
}

Status ConjunctiveQuery::Normalize() {
  ast::Substitution subst;
  std::vector<ast::Atom> rest;
  for (const ast::Atom& atom : body_) {
    if (atom.predicate() == ast::kEqualPredicate) {
      if (atom.arity() != 2) {
        return Status::Invalid("equal/2 with arity " +
                               std::to_string(atom.arity()));
      }
      ast::Term lhs = subst.DeepApply(atom.args()[0]);
      ast::Term rhs = subst.DeepApply(atom.args()[1]);
      if (!ast::Unify(lhs, rhs, &subst)) {
        // Two distinct constants (or an occurs-check failure) were equated:
        // the conjunction denotes the empty relation.
        unsat_ = true;
      }
    } else {
      rest.push_back(atom);
    }
  }
  if (unsat_) {
    body_.clear();
    return Status::OK();
  }
  body_.clear();
  body_.reserve(rest.size());
  for (const ast::Atom& atom : rest) body_.push_back(subst.DeepApply(atom));
  for (ast::Term& t : head_) t = subst.DeepApply(t);
  return Status::OK();
}

namespace {

// Extends the homomorphism `subst` so that pattern maps onto target. A bound
// pattern variable must equal the target term exactly — it is never matched
// into (that would wrongly bind target-side variables). Target variables are
// opaque constants.
bool HomMatch(const ast::Term& pattern, const ast::Term& target,
              ast::Substitution* subst) {
  switch (pattern.kind()) {
    case ast::Term::Kind::kVariable: {
      const ast::Term* bound = subst->Lookup(pattern.var_name());
      if (bound != nullptr) return *bound == target;
      subst->Bind(pattern.var_name(), target);
      return true;
    }
    case ast::Term::Kind::kInt:
    case ast::Term::Kind::kSymbol:
      return pattern == target;
    case ast::Term::Kind::kCompound: {
      if (!target.IsCompound()) return false;
      if (target.symbol() != pattern.symbol()) return false;
      if (target.args().size() != pattern.args().size()) return false;
      for (size_t i = 0; i < pattern.args().size(); ++i) {
        if (!HomMatch(pattern.args()[i], target.args()[i], subst)) return false;
      }
      return true;
    }
  }
  return false;
}

// Backtracking homomorphism search: maps every atom of `pattern_body`
// (starting at `index`) into some atom of `target_body` under `subst`.
bool FindHomomorphism(const std::vector<ast::Atom>& pattern_body,
                      const std::vector<ast::Atom>& target_body, size_t index,
                      const ast::Substitution& subst) {
  if (index == pattern_body.size()) return true;
  const ast::Atom& pattern = pattern_body[index];
  for (const ast::Atom& target : target_body) {
    if (target.predicate() != pattern.predicate()) continue;
    if (target.arity() != pattern.arity()) continue;
    ast::Substitution attempt = subst;
    bool ok = true;
    for (size_t i = 0; i < pattern.arity(); ++i) {
      if (!HomMatch(pattern.args()[i], target.args()[i], &attempt)) {
        ok = false;
        break;
      }
    }
    if (ok && FindHomomorphism(pattern_body, target_body, index + 1, attempt)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool ConjunctiveQuery::ContainedIn(const ConjunctiveQuery& other) const {
  ConjunctiveQuery sub = *this;
  ConjunctiveQuery super = other;
  if (!sub.Normalize().ok() || !super.Normalize().ok()) return false;
  if (sub.unsatisfiable()) return true;   // empty set is contained everywhere
  if (super.unsatisfiable()) return false;
  if (sub.head_.size() != super.head_.size()) return false;

  // Rename the containing query's variables apart from ours: the
  // homomorphism maps its variables to our terms, and shared names would
  // otherwise create cyclic bindings.
  {
    ast::Substitution rename;
    std::set<std::string> seen;
    int i = 0;
    auto rename_vars = [&](const ast::Atom& a) {
      for (const std::string& v : a.DistinctVars()) {
        if (seen.insert(v).second) {
          rename.Bind(v, ast::Term::Var("_H" + std::to_string(i++)));
        }
      }
    };
    for (const ast::Atom& a : super.body_) rename_vars(a);
    for (ast::Term& t : super.head_) {
      std::vector<std::string> vars;
      t.CollectVars(&vars);
      for (const std::string& v : vars) {
        if (seen.insert(v).second) {
          rename.Bind(v, ast::Term::Var("_H" + std::to_string(i++)));
        }
      }
      t = rename.Apply(t);
    }
    for (ast::Atom& a : super.body_) a = rename.Apply(a);
  }

  // Chandra–Merlin: this ⊆ other iff there is a homomorphism from `other`
  // (the containing query) into `this` that respects the head.
  ast::Substitution subst;
  for (size_t i = 0; i < super.head_.size(); ++i) {
    if (!HomMatch(super.head_[i], sub.head_[i], &subst)) return false;
  }
  return FindHomomorphism(super.body_, sub.body_, 0, subst);
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_[i].ToString();
  }
  out += ") :- ";
  if (unsat_) {
    out += "false";
    return out;
  }
  if (body_.empty()) {
    out += "true";
    return out;
  }
  for (size_t i = 0; i < body_.size(); ++i) {
    if (i > 0) out += ", ";
    out += body_[i].ToString();
  }
  return out;
}

}  // namespace factlog::analysis
