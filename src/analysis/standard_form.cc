#include "analysis/standard_form.h"

#include "ast/special_predicates.h"

namespace factlog::analysis {

namespace {

using ast::Atom;
using ast::Rule;
using ast::Term;

// Emits constraints forcing `var = term`, flattening compounds through
// structural predicates. `constraints` receives the new atoms.
void EmitConstraint(const std::string& var, const Term& term,
                    ast::FreshVarGen* gen, std::vector<Atom>* constraints) {
  switch (term.kind()) {
    case Term::Kind::kVariable:
    case Term::Kind::kInt:
    case Term::Kind::kSymbol:
      constraints->push_back(
          Atom(ast::kEqualPredicate, {Term::Var(var), term}));
      return;
    case Term::Kind::kCompound: {
      // $f(C1, ..., Ck, var) with recursive flattening of non-variable
      // children.
      std::vector<Term> args;
      args.reserve(term.args().size() + 1);
      for (const Term& child : term.args()) {
        if (child.IsVariable()) {
          args.push_back(child);
        } else {
          std::string fresh = gen->Fresh();
          args.push_back(Term::Var(fresh));
          EmitConstraint(fresh, child, gen, constraints);
        }
      }
      args.push_back(Term::Var(var));
      constraints->push_back(
          Atom(std::string(1, ast::kStructuralPrefix) + term.symbol(),
               std::move(args)));
      return;
    }
  }
}

// Rewrites one p-literal so all args are distinct variables.
Atom StandardizeLiteral(const Atom& lit, ast::FreshVarGen* gen,
                        std::vector<Atom>* constraints) {
  std::vector<Term> new_args;
  new_args.reserve(lit.arity());
  std::set<std::string> seen;
  for (const Term& arg : lit.args()) {
    if (arg.IsVariable() && seen.insert(arg.var_name()).second) {
      new_args.push_back(arg);
      continue;
    }
    std::string fresh = gen->Fresh();
    seen.insert(fresh);
    new_args.push_back(Term::Var(fresh));
    EmitConstraint(fresh, arg, gen, constraints);
  }
  return Atom(lit.predicate(), std::move(new_args));
}

}  // namespace

bool IsInStandardForm(const ast::Rule& rule,
                      const std::set<std::string>& preds) {
  auto check = [&preds](const Atom& a) {
    if (preds.count(a.predicate()) == 0) return true;
    std::set<std::string> seen;
    for (const Term& t : a.args()) {
      if (!t.IsVariable()) return false;
      if (!seen.insert(t.var_name()).second) return false;
    }
    return true;
  };
  if (!check(rule.head())) return false;
  for (const Atom& b : rule.body()) {
    if (!check(b)) return false;
  }
  return true;
}

Result<ast::Rule> ToStandardForm(const ast::Rule& rule,
                                 const std::set<std::string>& preds,
                                 ast::FreshVarGen* gen) {
  std::vector<Atom> constraints;
  Atom head = rule.head();
  if (preds.count(head.predicate()) > 0) {
    head = StandardizeLiteral(head, gen, &constraints);
  }
  std::vector<Atom> body;
  for (const Atom& lit : rule.body()) {
    if (preds.count(lit.predicate()) > 0) {
      body.push_back(StandardizeLiteral(lit, gen, &constraints));
    } else {
      body.push_back(lit);
    }
  }
  body.insert(body.end(), constraints.begin(), constraints.end());
  return Rule(std::move(head), std::move(body));
}

Result<ast::Program> ToStandardForm(const ast::Program& program,
                                    const std::set<std::string>& preds) {
  ast::Program out;
  for (const ast::Rule& rule : program.rules()) {
    ast::FreshVarGen gen("_S");
    gen.ReserveFrom(rule);
    FACTLOG_ASSIGN_OR_RETURN(ast::Rule converted,
                             ToStandardForm(rule, preds, &gen));
    out.AddRule(std::move(converted));
  }
  if (program.query().has_value()) out.set_query(*program.query());
  for (const auto& [name, arity] : program.edb_decls()) {
    out.DeclareEdb(name, arity);
  }
  return out;
}

}  // namespace factlog::analysis
