#include "analysis/dependency_graph.h"

#include <vector>

namespace factlog::analysis {

DependencyGraph DependencyGraph::Build(const ast::Program& program) {
  DependencyGraph g;
  for (const ast::Rule& r : program.rules()) {
    auto& out = g.edges_[r.head().predicate()];
    for (const ast::Atom& b : r.body()) out.insert(b.predicate());
  }
  return g;
}

std::set<std::string> DependencyGraph::ReachableFrom(
    const std::string& pred) const {
  std::set<std::string> seen;
  std::vector<std::string> stack;
  auto push_targets = [&](const std::string& p) {
    auto it = edges_.find(p);
    if (it == edges_.end()) return;
    for (const std::string& q : it->second) {
      if (seen.insert(q).second) stack.push_back(q);
    }
  };
  push_targets(pred);
  while (!stack.empty()) {
    std::string p = stack.back();
    stack.pop_back();
    push_targets(p);
  }
  return seen;
}

bool DependencyGraph::IsRecursive(const std::string& pred) const {
  return ReachableFrom(pred).count(pred) > 0;
}

bool DependencyGraph::IsDirectlyRecursiveOnly(const std::string& pred) const {
  if (!IsRecursive(pred)) return false;
  // Every cycle through pred must be the self-loop: no other predicate on a
  // path pred -> q -> ... -> pred.
  for (const auto& [p, targets] : edges_) {
    if (p == pred) continue;
    if (targets.count(pred) > 0 && ReachableFrom(pred).count(p) > 0) {
      return false;
    }
  }
  return true;
}

}  // namespace factlog::analysis
