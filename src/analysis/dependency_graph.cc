#include "analysis/dependency_graph.h"

#include <algorithm>
#include <vector>

namespace factlog::analysis {

DependencyGraph DependencyGraph::Build(const ast::Program& program) {
  DependencyGraph g;
  for (const ast::Rule& r : program.rules()) {
    auto& out = g.edges_[r.head().predicate()];
    for (const ast::Atom& b : r.body()) out.insert(b.predicate());
  }
  return g;
}

std::set<std::string> DependencyGraph::ReachableFrom(
    const std::string& pred) const {
  std::set<std::string> seen;
  std::vector<std::string> stack;
  auto push_targets = [&](const std::string& p) {
    auto it = edges_.find(p);
    if (it == edges_.end()) return;
    for (const std::string& q : it->second) {
      if (seen.insert(q).second) stack.push_back(q);
    }
  };
  push_targets(pred);
  while (!stack.empty()) {
    std::string p = stack.back();
    stack.pop_back();
    push_targets(p);
  }
  return seen;
}

bool DependencyGraph::IsRecursive(const std::string& pred) const {
  return ReachableFrom(pred).count(pred) > 0;
}

SccCondensation DependencyGraph::Condense() const {
  // Iterative Tarjan. Nodes are every predicate mentioned anywhere (heads
  // and body references); components pop dependencies-first, which is
  // exactly the evaluation order a stratified fixpoint wants.
  std::vector<std::string> nodes;
  std::set<std::string> node_set;
  for (const auto& [p, targets] : edges_) {
    if (node_set.insert(p).second) nodes.push_back(p);
    for (const std::string& q : targets) {
      if (node_set.insert(q).second) nodes.push_back(q);
    }
  }

  SccCondensation out;
  std::map<std::string, int> index;    // discovery order, -1 = unvisited
  std::map<std::string, int> lowlink;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;

  struct Frame {
    std::string node;
    std::vector<std::string> targets;
    size_t next_target = 0;
  };

  static const std::set<std::string> kNoTargets;
  auto targets_of = [this](const std::string& p) -> const std::set<std::string>& {
    auto it = edges_.find(p);
    return it == edges_.end() ? kNoTargets : it->second;
  };

  for (const std::string& root : nodes) {
    if (index.count(root) > 0) continue;
    std::vector<Frame> frames;
    frames.push_back({root,
                      {targets_of(root).begin(), targets_of(root).end()},
                      0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack.insert(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next_target < f.targets.size()) {
        const std::string& q = f.targets[f.next_target++];
        auto it = index.find(q);
        if (it == index.end()) {
          index[q] = lowlink[q] = next_index++;
          stack.push_back(q);
          on_stack.insert(q);
          frames.push_back(
              {q, {targets_of(q).begin(), targets_of(q).end()}, 0});
        } else if (on_stack.count(q) > 0) {
          lowlink[f.node] = std::min(lowlink[f.node], it->second);
        }
        continue;
      }
      // Node finished: pop a component when it is its own root.
      if (lowlink[f.node] == index[f.node]) {
        std::vector<std::string> scc;
        while (true) {
          std::string q = stack.back();
          stack.pop_back();
          on_stack.erase(q);
          scc.push_back(q);
          if (q == f.node) break;
        }
        std::sort(scc.begin(), scc.end());
        int id = static_cast<int>(out.sccs.size());
        for (const std::string& q : scc) out.scc_of[q] = id;
        out.sccs.push_back(std::move(scc));
      }
      std::string finished = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[finished]);
      }
    }
  }
  return out;
}

StratificationResult DependencyGraph::Stratify(
    const std::set<std::pair<std::string, std::string>>& negative_edges)
    const {
  SccCondensation cond = Condense();
  StratificationResult out;
  // Components are emitted dependencies-first, so a single pass assigns
  // stratum(p) = max over body references q of stratum(q), +1 when the
  // reference is negative. A negative edge inside one component closes a
  // cycle through negation: not stratified.
  std::vector<int> scc_stratum(cond.sccs.size(), 0);
  for (size_t id = 0; id < cond.sccs.size(); ++id) {
    int stratum = 0;
    for (const std::string& p : cond.sccs[id]) {
      auto it = edges_.find(p);
      if (it == edges_.end()) continue;
      for (const std::string& q : it->second) {
        const bool negative = negative_edges.count({p, q}) > 0;
        const int target = cond.scc_of.at(q);
        if (target == static_cast<int>(id)) {
          if (negative) {
            out.stratified = false;
            out.violations.emplace_back(p, q);
          }
          continue;
        }
        stratum = std::max(stratum, scc_stratum[target] + (negative ? 1 : 0));
      }
    }
    scc_stratum[id] = stratum;
    for (const std::string& p : cond.sccs[id]) out.stratum[p] = stratum;
    out.num_strata = std::max(out.num_strata, stratum + 1);
  }
  return out;
}

bool DependencyGraph::IsDirectlyRecursiveOnly(const std::string& pred) const {
  if (!IsRecursive(pred)) return false;
  // Every cycle through pred must be the self-loop: no other predicate on a
  // path pred -> q -> ... -> pred.
  for (const auto& [p, targets] : edges_) {
    if (p == pred) continue;
    if (targets.count(pred) > 0 && ReachableFrom(pred).count(p) > 0) {
      return false;
    }
  }
  return true;
}

}  // namespace factlog::analysis
