// Conjunctive queries and containment (Chandra–Merlin homomorphisms).
//
// The factorability conditions of §4.2 ("free-exit must be contained in
// free", "all left conjunctions must be equivalent", ...) are containment
// and equivalence tests between conjunctions of EDB atoms. Containment of
// conjunctive queries is NP-complete in the query size [Chandra & Merlin
// 1977], which the paper notes is acceptable because queries are small; the
// backtracking homomorphism search below is exactly that test.
//
// `equal` atoms are chased into substitutions before testing; structural
// predicates ($cons, ...) are treated as uninterpreted EDB relations, which
// keeps the test sound for the paper's sufficient conditions.

#ifndef FACTLOG_ANALYSIS_CQ_H_
#define FACTLOG_ANALYSIS_CQ_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "common/status.h"

namespace factlog::analysis {

/// A conjunctive query: distinguished head terms over a body of positive
/// atoms. An empty body denotes the always-true conjunction (e.g. an empty
/// "right" conjunction in Definition 4.5 accepts every tuple).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::vector<ast::Term> head, std::vector<ast::Atom> body)
      : head_(std::move(head)), body_(std::move(body)) {}

  /// Builds a CQ whose head is a vector of variables by name.
  static ConjunctiveQuery WithHeadVars(const std::vector<std::string>& vars,
                                       std::vector<ast::Atom> body);

  const std::vector<ast::Term>& head() const { return head_; }
  const std::vector<ast::Atom>& body() const { return body_; }
  bool unsatisfiable() const { return unsat_; }

  /// Chases `equal` atoms: unions variables, substitutes representatives,
  /// drops the equal atoms. Marks the query unsatisfiable when two distinct
  /// constants are equated. Idempotent.
  Status Normalize();

  /// True when, over every database, the answers of *this* are a subset of
  /// the answers of `other` (this ⊆ other). Both queries should be
  /// normalized; Normalize() is applied to copies internally.
  bool ContainedIn(const ConjunctiveQuery& other) const;

  bool EquivalentTo(const ConjunctiveQuery& other) const {
    return ContainedIn(other) && other.ContainedIn(*this);
  }

  std::string ToString() const;

 private:
  std::vector<ast::Term> head_;
  std::vector<ast::Atom> body_;
  bool unsat_ = false;
};

}  // namespace factlog::analysis

#endif  // FACTLOG_ANALYSIS_CQ_H_
