#include "analysis/lint.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cq.h"
#include "analysis/dependency_graph.h"
#include "ast/special_predicates.h"
#include "plan/join_plan.h"

namespace factlog::analysis {
namespace {

std::string Truncate(std::string s, size_t max = 100) {
  if (s.size() > max) {
    s.resize(max - 3);
    s += "...";
  }
  return s;
}

/// True when every variable of `t` is in `bound` (ground terms trivially).
bool TermBound(const ast::Term& t, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  t.CollectVars(&vars);
  for (const std::string& v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

void BindTerm(const ast::Term& t, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  t.CollectVars(&vars);
  bound->insert(vars.begin(), vars.end());
}

/// Variables bound by the rule's positive relation literals, closed under
/// builtin propagation: `equal` binds either side from the other,
/// `affine(X, A, B, Z)` solves X from Z or Z from X once A and B are bound,
/// `geq` only consumes. This is the same executability model the join
/// planner's eager-builtin scheduling assumes, taken to its fixpoint — a
/// variable outside the result cannot be bound under ANY body order.
std::set<std::string> BoundVars(const ast::Rule& rule) {
  std::set<std::string> bound;
  for (const ast::Atom& a : rule.body()) {
    if (ast::IsBuiltinPredicate(a.predicate())) continue;
    for (const ast::Term& t : a.args()) BindTerm(t, &bound);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ast::Atom& a : rule.body()) {
      const std::string& p = a.predicate();
      const size_t before = bound.size();
      if (p == ast::kEqualPredicate && a.arity() == 2) {
        if (TermBound(a.args()[0], bound)) BindTerm(a.args()[1], &bound);
        if (TermBound(a.args()[1], bound)) BindTerm(a.args()[0], &bound);
      } else if (p == ast::kAffinePredicate && a.arity() == 4) {
        if (TermBound(a.args()[1], bound) && TermBound(a.args()[2], bound)) {
          if (TermBound(a.args()[0], bound)) BindTerm(a.args()[3], &bound);
          if (TermBound(a.args()[3], bound)) BindTerm(a.args()[0], &bound);
        }
      }
      if (bound.size() != before) changed = true;
    }
  }
  return bound;
}

/// True when the builtin literal can execute once `bound` holds (its
/// required inputs are derivable under some body order).
bool BuiltinExecutable(const ast::Atom& a, const std::set<std::string>& bound) {
  const std::string& p = a.predicate();
  if (p == ast::kEqualPredicate && a.arity() == 2) {
    return TermBound(a.args()[0], bound) || TermBound(a.args()[1], bound);
  }
  if (p == ast::kAffinePredicate && a.arity() == 4) {
    return TermBound(a.args()[1], bound) && TermBound(a.args()[2], bound) &&
           (TermBound(a.args()[0], bound) || TermBound(a.args()[3], bound));
  }
  if (p == ast::kGeqPredicate && a.arity() == 2) {
    return TermBound(a.args()[0], bound) && TermBound(a.args()[1], bound);
  }
  // Wrong-arity builtin use: L003's province, not L002's.
  return true;
}

// ---- L001 / L002: safety and builtin executability ----

void CheckSafety(const ast::Program& program, const LintOptions& options,
                 std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const ast::Rule& rule = program.rules()[i];
    const std::set<std::string> bound = BoundVars(rule);
    // Only TOP-LEVEL head variables need a positive binding: a variable
    // nested inside a compound head term (pmem's `pmem(X, [X|T]) :- p(X)`)
    // is bound by the structural predicate standard-form conversion
    // introduces, and the top-down engine resolves it directly.
    for (const ast::Term& t : rule.head().args()) {
      if (!t.IsVariable()) continue;
      if (bound.count(t.var_name()) > 0) continue;
      Diagnostic d;
      d.code = "L001";
      d.severity =
          options.unsafe_as_warning ? Severity::kWarning : Severity::kError;
      d.message = "unsafe rule: head variable '" + t.var_name() +
                  "' is not bound by any positive body literal";
      d.rule_index = static_cast<int>(i);
      d.snippet = Truncate(rule.ToString());
      d.hint = "add a body literal over '" + t.var_name() +
               "' (range restriction is required for bottom-up evaluation)";
      out->push_back(std::move(d));
    }
    for (size_t b = 0; b < rule.body().size(); ++b) {
      const ast::Atom& a = rule.body()[b];
      if (!ast::IsBuiltinPredicate(a.predicate())) continue;
      if (BuiltinExecutable(a, bound)) continue;
      Diagnostic d;
      d.code = "L002";
      d.severity = Severity::kError;
      d.message = "builtin '" + a.ToString() +
                  "' has unbound arguments under every body order";
      d.rule_index = static_cast<int>(i);
      d.snippet = Truncate(rule.ToString());
      if (a.predicate() == ast::kEqualPredicate) {
        d.hint = "equal/2 needs at least one side bound";
      } else if (a.predicate() == ast::kAffinePredicate) {
        d.hint =
            "affine(X, A, B, Z) needs A and B bound plus one of X, Z";
      } else {
        d.hint = "geq(X, C) needs both arguments bound";
      }
      out->push_back(std::move(d));
    }
  }
}

// ---- L003: arity consistency ----

void CheckArities(const ast::Program& program, const LintOptions& options,
                  std::vector<Diagnostic>* out) {
  struct FirstUse {
    size_t arity;
    std::string where;
  };
  std::map<std::string, FirstUse> first;
  first[ast::kEqualPredicate] = {2, "builtin signature"};
  first[ast::kAffinePredicate] = {4, "builtin signature"};
  first[ast::kGeqPredicate] = {2, "builtin signature"};
  for (const auto& [name, arity] : options.edb_arities) {
    first.emplace(name, FirstUse{arity, "database relation"});
  }
  for (const auto& [name, arity] : program.edb_decls()) {
    first.emplace(name, FirstUse{arity, ".edb declaration"});
  }
  auto check = [&](const std::string& pred, size_t arity,
                   const std::string& where, int rule_index,
                   const std::string& snippet) {
    auto [it, inserted] = first.emplace(pred, FirstUse{arity, where});
    if (inserted || it->second.arity == arity) return;
    Diagnostic d;
    d.code = "L003";
    d.severity = Severity::kError;
    d.message = "predicate '" + pred + "' used with arity " +
                std::to_string(arity) + " in " + where + " but arity " +
                std::to_string(it->second.arity) + " in " + it->second.where;
    d.rule_index = rule_index;
    d.snippet = Truncate(snippet);
    d.hint = "every use of a predicate must have the same argument count";
    out->push_back(std::move(d));
  };
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const ast::Rule& rule = program.rules()[i];
    const std::string where = "rule #" + std::to_string(i + 1);
    check(rule.head().predicate(), rule.head().arity(), where,
          static_cast<int>(i), rule.ToString());
    for (const ast::Atom& a : rule.body()) {
      check(a.predicate(), a.arity(), where, static_cast<int>(i),
            rule.ToString());
    }
  }
  if (program.query().has_value()) {
    check(program.query()->predicate(), program.query()->arity(), "the query",
          -1, "?- " + program.query()->ToString() + ".");
  }
}

// ---- L004: stratification ----

void CheckStratification(const ast::Program& program,
                         const LintOptions& options, LintReport* report) {
  const DependencyGraph graph = DependencyGraph::Build(program);
  StratificationResult strat = graph.Stratify(options.negative_edges);
  report->strata = std::move(strat.stratum);
  report->num_strata = strat.num_strata;
  for (const auto& [head, neg] : strat.violations) {
    Diagnostic d;
    d.code = "L004";
    d.severity = Severity::kError;
    d.message = "recursion through negation: '" + head +
                "' depends negatively on '" + neg +
                "' inside the same recursive component";
    d.snippet = head + " -/-> " + neg;
    d.hint =
        "break the cycle so the negated predicate is fully computed in a "
        "lower stratum";
    report->diagnostics.push_back(std::move(d));
  }
}

// ---- L101: singleton variables ----

void CheckSingletons(const ast::Program& program,
                     std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const ast::Rule& rule = program.rules()[i];
    std::vector<std::string> occurrences;
    rule.head().CollectVars(&occurrences);
    for (const ast::Atom& a : rule.body()) a.CollectVars(&occurrences);
    std::map<std::string, int> counts;
    std::vector<std::string> order;
    for (const std::string& v : occurrences) {
      if (counts[v]++ == 0) order.push_back(v);
    }
    for (const std::string& v : order) {
      if (counts[v] != 1) continue;
      // '_'-prefixed names are the conventional "intentionally unused"
      // spelling; don't nag about them.
      if (!v.empty() && v[0] == '_') continue;
      Diagnostic d;
      d.code = "L101";
      d.severity = Severity::kWarning;
      d.message = "variable '" + v + "' occurs only once";
      d.rule_index = static_cast<int>(i);
      d.snippet = Truncate(rule.ToString());
      d.hint = "prefix with '_' if intentional, or check for a typo";
      out->push_back(std::move(d));
    }
  }
}

// ---- L102 / L103: duplicate and subsumed rules ----

ast::Term CanonicalizeTerm(const ast::Term& t,
                           std::map<std::string, std::string>* renaming) {
  switch (t.kind()) {
    case ast::Term::Kind::kVariable: {
      auto [it, inserted] = renaming->emplace(
          t.var_name(), "V" + std::to_string(renaming->size()));
      (void)inserted;
      return ast::Term::Var(it->second);
    }
    case ast::Term::Kind::kCompound: {
      std::vector<ast::Term> args;
      args.reserve(t.args().size());
      for (const ast::Term& a : t.args()) {
        args.push_back(CanonicalizeTerm(a, renaming));
      }
      return ast::Term::App(t.symbol(), std::move(args));
    }
    default:
      return t;
  }
}

ast::Rule CanonicalizeRule(const ast::Rule& rule) {
  std::map<std::string, std::string> renaming;
  auto canon_atom = [&](const ast::Atom& a) {
    std::vector<ast::Term> args;
    args.reserve(a.args().size());
    for (const ast::Term& t : a.args()) {
      args.push_back(CanonicalizeTerm(t, &renaming));
    }
    return ast::Atom(a.predicate(), std::move(args));
  };
  std::vector<ast::Atom> body;
  ast::Atom head = canon_atom(rule.head());
  body.reserve(rule.body().size());
  for (const ast::Atom& a : rule.body()) body.push_back(canon_atom(a));
  return ast::Rule(std::move(head), std::move(body));
}

/// True when the L103 containment test is sound and affordable for `rule`:
/// bodies small, and no interpreted arithmetic (affine/geq are not
/// uninterpreted relations, so Chandra–Merlin does not apply to them).
bool SubsumptionEligible(const ast::Rule& rule, size_t max_body) {
  if (rule.body().size() > max_body) return false;
  for (const ast::Atom& a : rule.body()) {
    const std::string& p = a.predicate();
    if (p == ast::kAffinePredicate || p == ast::kGeqPredicate) return false;
  }
  return true;
}

ConjunctiveQuery RuleToCq(const ast::Rule& rule) {
  return ConjunctiveQuery(rule.head().args(), rule.body());
}

void CheckRedundantRules(const ast::Program& program,
                         const LintOptions& options,
                         std::vector<Diagnostic>* out) {
  const std::vector<ast::Rule>& rules = program.rules();
  std::vector<ast::Rule> canonical;
  canonical.reserve(rules.size());
  for (const ast::Rule& r : rules) canonical.push_back(CanonicalizeRule(r));
  std::vector<bool> flagged(rules.size(), false);
  for (size_t j = 0; j < rules.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      if (flagged[i]) continue;
      if (canonical[i] != canonical[j]) continue;
      Diagnostic d;
      d.code = "L102";
      d.severity = Severity::kWarning;
      d.message = "rule duplicates rule #" + std::to_string(i + 1) +
                  " (identical up to variable renaming)";
      d.rule_index = static_cast<int>(j);
      d.snippet = Truncate(rules[j].ToString());
      d.hint = "delete one copy";
      out->push_back(std::move(d));
      flagged[j] = true;
      break;
    }
  }
  for (size_t j = 0; j < rules.size(); ++j) {
    if (flagged[j]) continue;  // duplicates are trivially subsumed
    if (!SubsumptionEligible(rules[j], options.max_subsumption_body)) continue;
    for (size_t i = 0; i < rules.size(); ++i) {
      if (i == j || flagged[i]) continue;
      if (rules[i].head().predicate() != rules[j].head().predicate()) continue;
      if (rules[i].head().arity() != rules[j].head().arity()) continue;
      if (!SubsumptionEligible(rules[i], options.max_subsumption_body)) {
        continue;
      }
      // Prefer reporting the later rule: j subsumed by an earlier i, or by
      // a strictly-containing later rule only when i < j fails.
      if (i > j && RuleToCq(rules[i]).ContainedIn(RuleToCq(rules[j]))) {
        continue;  // handled when the loop reaches rule i
      }
      if (!RuleToCq(rules[j]).ContainedIn(RuleToCq(rules[i]))) continue;
      Diagnostic d;
      d.code = "L103";
      d.severity = Severity::kWarning;
      d.message = "rule is subsumed by rule #" + std::to_string(i + 1) +
                  " (every answer it derives is already derived there)";
      d.rule_index = static_cast<int>(j);
      d.snippet = Truncate(rules[j].ToString());
      d.hint = "delete the subsumed rule; it only adds evaluation work";
      out->push_back(std::move(d));
      flagged[j] = true;
      break;
    }
  }
}

// ---- L104: cartesian-product joins ----

void CheckCartesianRule(const ast::Rule& rule, size_t rule_index,
                        const plan::JoinPlan& jp,
                        std::vector<Diagnostic>* out) {
  std::set<std::string> bound;
  bool seen_relation = false;
  for (const plan::LiteralPlan& lp : jp.order) {
    const ast::Atom& a = rule.body()[lp.body_index];
    std::vector<std::string> vars;
    a.CollectVars(&vars);
    if (lp.is_relation) {
      const bool shares =
          std::any_of(vars.begin(), vars.end(), [&](const std::string& v) {
            return bound.count(v) > 0;
          });
      if (seen_relation && !vars.empty() && !shares) {
        Diagnostic d;
        d.code = "L104";
        d.severity = Severity::kWarning;
        d.message = "cartesian product: '" + a.ToString() +
                    "' shares no variable with the literals joined before "
                    "it in the best plan";
        d.rule_index = static_cast<int>(rule_index);
        d.snippet = Truncate(rule.ToString());
        d.hint =
            "connect the literal through a shared variable, or split the "
            "rule";
        out->push_back(std::move(d));
      }
      seen_relation = true;
    }
    bound.insert(vars.begin(), vars.end());
  }
}

void CheckCartesianJoins(const ast::Program& program,
                         std::vector<Diagnostic>* out) {
  // Reuse the cost-based planner: if even the cheapest plan order joins a
  // relation literal that shares no variable with everything scheduled
  // before it, the rule genuinely computes a cross product.
  plan::PlanOptions plan_opts;
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const ast::Rule& rule = program.rules()[i];
    if (rule.body().size() < 2) continue;
    CheckCartesianRule(rule, i, plan::PlanRule(rule, plan_opts), out);
  }
}

// ---- L105 / L106: reachability from the query ----

void CheckReachability(const ast::Program& program, const LintOptions& options,
                       std::vector<Diagnostic>* out) {
  if (!program.query().has_value()) return;
  const std::string& qpred = program.query()->predicate();
  const std::set<std::string> idb = program.IdbPredicates();
  const bool defined = idb.count(qpred) > 0 ||
                       program.edb_decls().count(qpred) > 0 ||
                       options.edb_arities.count(qpred) > 0 ||
                       ast::IsBuiltinPredicate(qpred);
  if (!defined) {
    Diagnostic d;
    d.code = "L106";
    d.severity = Severity::kWarning;
    d.message = "query predicate '" + qpred +
                "' has no rules and is not a known database relation";
    d.snippet = "?- " + program.query()->ToString() + ".";
    d.hint = "the query can only return an empty answer";
    out->push_back(std::move(d));
  }
  const DependencyGraph graph = DependencyGraph::Build(program);
  std::set<std::string> live = graph.ReachableFrom(qpred);
  live.insert(qpred);
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const std::string& head = program.rules()[i].head().predicate();
    if (live.count(head) > 0) continue;
    Diagnostic d;
    d.code = "L105";
    d.severity = Severity::kWarning;
    d.message = "dead rule: '" + head + "' is unreachable from the query '" +
                qpred + "'";
    d.rule_index = static_cast<int>(i);
    d.snippet = Truncate(program.rules()[i].ToString());
    d.hint = "remove the rule or query a predicate that uses it";
    out->push_back(std::move(d));
  }
}

}  // namespace

LintReport LintProgram(const ast::Program& program,
                       const LintOptions& options) {
  LintReport report;
  CheckSafety(program, options, &report.diagnostics);
  CheckArities(program, options, &report.diagnostics);
  CheckStratification(program, options, &report);
  CheckSingletons(program, &report.diagnostics);
  CheckRedundantRules(program, options, &report.diagnostics);
  CheckCartesianJoins(program, &report.diagnostics);
  CheckReachability(program, options, &report.diagnostics);
  return report;
}

std::vector<Diagnostic> LintCartesianJoins(const ast::Program& program,
                                           const plan::ProgramPlan& plans) {
  std::vector<Diagnostic> out;
  if (!plans.Compatible(program)) return out;
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const ast::Rule& rule = program.rules()[i];
    if (rule.body().size() < 2) continue;
    CheckCartesianRule(rule, i, plans.rules[i], &out);
  }
  return out;
}

}  // namespace factlog::analysis
