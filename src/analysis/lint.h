// Static program linter: safety, arity, stratification, reachability, and
// style/plan-quality analysis over the AST and the predicate dependency
// graph.
//
// The paper's rewrites (factoring, magic, counting) are only sound on
// programs meeting structural preconditions — standard form, safe /
// range-restricted rules, Theorems 4.1–4.3 applicability. Before this pass
// an ill-formed program sailed through compilation and failed (or silently
// misbehaved) deep inside a fixpoint. LintProgram checks well-formedness
// statically and reports every finding as a structured Diagnostic
// (common/diagnostic.h) with a stable code:
//
//   Errors (reject compilation)
//     L001  unsafe rule: top-level head variable not bound by a positive
//           relation literal in the body
//     L002  builtin literal unexecutable: no execution order can bind its
//           required arguments (equal/2 both-free, geq inputs, affine with
//           neither X nor Z derivable)
//     L003  arity mismatch: a predicate used with conflicting arities across
//           rules, declarations, the query, or the caller-supplied EDB schema
//     L004  stratification violation: recursion through a (prospective)
//           negative dependency edge
//
//   Warnings (ride on the compiled artifact)
//     L101  singleton variable: named variable occurring exactly once
//     L102  duplicate rule: identical to an earlier rule modulo variable
//           renaming
//     L103  subsumed rule: answers contained in an earlier rule's
//           (Chandra–Merlin containment via analysis/cq.h)
//     L104  cartesian-product join: the cost-based plan (plan/join_plan.h)
//           joins a relation literal sharing no bound variables with the
//           literals before it
//     L105  dead rule: head predicate unreachable from the query predicate
//     L106  undefined query: the query predicate has no rules and is not a
//           known EDB relation
//
// Codes are append-only and stable: tests, CI gates, and editor integrations
// match on the code while message text stays free to improve. The pipeline
// (core/pipeline.cc) runs LintProgram as the mandatory opening pass of every
// strategy; api::Engine::Lint exposes it directly.

#ifndef FACTLOG_ANALYSIS_LINT_H_
#define FACTLOG_ANALYSIS_LINT_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "common/diagnostic.h"

namespace factlog::plan {
struct ProgramPlan;
}  // namespace factlog::plan

namespace factlog::analysis {

struct LintOptions {
  /// Prospective negative dependency edges (head pred, body pred) for the
  /// stratification check. The AST is positive-only today; the stratified
  /// negation front end will derive these from real negated literals.
  std::set<std::pair<std::string, std::string>> negative_edges;
  /// Known EDB schema (e.g. the engine database's relations). Checked
  /// against program usage for L003 and consulted for L106.
  std::map<std::string, size_t> edb_arities;
  /// Downgrade L001 to a warning. Top-down SLD resolution handles
  /// Prolog-style rules with unrestricted head variables (pmem's cons
  /// heads), so the top-down engine opts out of hard safety rejection.
  bool unsafe_as_warning = false;
  /// Body-size cap for the L103 containment test (NP-complete in rule
  /// size; the paper's observation that queries are small keeps this
  /// cheap, but transformed programs can grow bodies).
  size_t max_subsumption_body = 8;
};

/// The linter's findings plus the analysis by-products callers reuse.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  /// Stratum assignment computed for the L004 check (meaningful even when
  /// diagnostics contains L004 records; violating edges are skipped).
  std::map<std::string, int> strata;
  int num_strata = 0;

  bool ok() const { return !HasErrors(diagnostics); }
  size_t errors() const { return CountErrors(diagnostics); }
  size_t warnings() const { return CountWarnings(diagnostics); }
};

/// Runs every check over `program`. Pure and deterministic; never fails.
/// Diagnostics are ordered by check (L001 first), then by rule index.
LintReport LintProgram(const ast::Program& program,
                       const LintOptions& options = {});

/// Re-runs the L104 cartesian-join check against an already-computed program
/// plan instead of re-planning with default options. The engine re-costs
/// cached plans in place from measured cardinalities; the L104 verdict must
/// track the plan that actually executes, so it is recomputed against the
/// re-costed orders. Returns only L104 diagnostics; `plans` must be
/// structurally compatible with `program` (empty result otherwise).
std::vector<Diagnostic> LintCartesianJoins(const ast::Program& program,
                                           const plan::ProgramPlan& plans);

}  // namespace factlog::analysis

#endif  // FACTLOG_ANALYSIS_LINT_H_
