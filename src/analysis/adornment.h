// Adornments and the adorned program (§4.1 of the paper).
//
// An adornment records, per argument position of an IDB predicate, whether
// the position is bound ('b') or free ('f') under a left-to-right
// sideways-information-passing strategy. Adorned predicates are materialized
// with renamed predicates (t with adornment bf becomes `t_bf`), which is the
// form the Magic Sets transformation and the factorability tests consume.

#ifndef FACTLOG_ANALYSIS_ADORNMENT_H_
#define FACTLOG_ANALYSIS_ADORNMENT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ast/program.h"
#include "common/status.h"

namespace factlog::analysis {

/// A binding pattern: one 'b' or 'f' per argument position.
class Adornment {
 public:
  Adornment() = default;
  explicit Adornment(std::string pattern) : pattern_(std::move(pattern)) {}

  /// Adornment of a query literal: positions holding ground terms are bound.
  static Adornment ForQuery(const ast::Atom& query);

  const std::string& pattern() const { return pattern_; }
  size_t arity() const { return pattern_.size(); }
  bool IsBound(size_t i) const { return pattern_[i] == 'b'; }
  size_t NumBound() const;

  std::vector<int> BoundPositions() const;
  std::vector<int> FreePositions() const;

  bool operator==(const Adornment& o) const { return pattern_ == o.pattern_; }
  bool operator<(const Adornment& o) const { return pattern_ < o.pattern_; }

 private:
  std::string pattern_;
};

/// An IDB predicate paired with an adornment, e.g. t^{bf}.
struct AdornedPredicate {
  std::string base;
  Adornment adornment;

  /// The materialized predicate name, e.g. "t_bf".
  std::string Name() const {
    return base + "_" + (adornment.pattern().empty() ? "0"
                                                     : adornment.pattern());
  }
  bool operator<(const AdornedPredicate& o) const {
    if (base != o.base) return base < o.base;
    return adornment < o.adornment;
  }
};

/// Per-rule metadata of the adorned program.
struct AdornedRuleInfo {
  /// Index of the originating rule in the source program.
  int source_rule_index = -1;
  AdornedPredicate head;
  /// One entry per body literal; nullopt for EDB / builtin literals.
  std::vector<std::optional<AdornedPredicate>> body;
};

/// The adorned program P^ad plus its metadata.
class AdornedProgram {
 public:
  /// Rules with adorned (renamed) IDB predicates; EDB literals unchanged.
  const ast::Program& program() const { return program_; }
  /// The query with its predicate renamed to the adorned version.
  const ast::Atom& query() const { return query_; }
  const std::vector<AdornedRuleInfo>& rule_info() const { return rule_info_; }
  /// Adorned predicate name -> (base, adornment).
  const std::map<std::string, AdornedPredicate>& predicates() const {
    return predicates_;
  }
  /// The adornment of the query predicate.
  const AdornedPredicate& query_predicate() const { return query_pred_; }

  /// Looks up the metadata of an adorned predicate name; nullptr if `name`
  /// is not an adorned predicate.
  const AdornedPredicate* FindPredicate(const std::string& name) const {
    auto it = predicates_.find(name);
    return it == predicates_.end() ? nullptr : &it->second;
  }

 private:
  friend Result<AdornedProgram> Adorn(const ast::Program&, const ast::Atom&);
  ast::Program program_;
  ast::Atom query_;
  AdornedPredicate query_pred_;
  std::vector<AdornedRuleInfo> rule_info_;
  std::map<std::string, AdornedPredicate> predicates_;
};

/// Computes the adorned program for `query` under the left-to-right SIP:
/// a variable is bound in a body literal if it occurs in a bound head
/// position or in any earlier body literal; after an IDB literal, its free
/// variables become bound (answers return bindings).
Result<AdornedProgram> Adorn(const ast::Program& program,
                             const ast::Atom& query);

}  // namespace factlog::analysis

#endif  // FACTLOG_ANALYSIS_ADORNMENT_H_
