// Standard-form conversion (§4.1 of the paper).
//
// A rule is in standard form with respect to predicate p when every argument
// of every p-literal is a variable and no variable appears twice in the same
// p-literal. Constants become `equal(V, c)` constraints, repeated variables
// become `equal(V, X)`, and compound arguments are flattened through
// structural predicates `$f(A1, ..., Ak, R)` (the paper's `list`), which are
// conceptually infinite EDB relations.
//
// As the paper emphasizes, this translation is purely syntactic and happens
// only at analysis time; the program that is evaluated keeps its original
// form.

#ifndef FACTLOG_ANALYSIS_STANDARD_FORM_H_
#define FACTLOG_ANALYSIS_STANDARD_FORM_H_

#include <set>
#include <string>

#include "ast/program.h"
#include "ast/substitution.h"
#include "common/status.h"

namespace factlog::analysis {

/// Converts one rule to standard form with respect to the predicates in
/// `preds`. Constraint atoms are appended to the body.
Result<ast::Rule> ToStandardForm(const ast::Rule& rule,
                                 const std::set<std::string>& preds,
                                 ast::FreshVarGen* gen);

/// Converts every rule of `program` to standard form with respect to the
/// predicates in `preds`. The query is left untouched.
Result<ast::Program> ToStandardForm(const ast::Program& program,
                                    const std::set<std::string>& preds);

/// True when `rule` already satisfies the standard-form conditions for all
/// predicates in `preds`.
bool IsInStandardForm(const ast::Rule& rule, const std::set<std::string>& preds);

}  // namespace factlog::analysis

#endif  // FACTLOG_ANALYSIS_STANDARD_FORM_H_
