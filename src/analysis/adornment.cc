#include "analysis/adornment.h"

#include <deque>
#include <set>

#include "ast/special_predicates.h"

namespace factlog::analysis {

Adornment Adornment::ForQuery(const ast::Atom& query) {
  std::string pattern;
  pattern.reserve(query.arity());
  for (const ast::Term& t : query.args()) {
    pattern.push_back(t.IsGround() ? 'b' : 'f');
  }
  return Adornment(std::move(pattern));
}

size_t Adornment::NumBound() const {
  size_t n = 0;
  for (char c : pattern_) {
    if (c == 'b') ++n;
  }
  return n;
}

std::vector<int> Adornment::BoundPositions() const {
  std::vector<int> out;
  for (size_t i = 0; i < pattern_.size(); ++i) {
    if (pattern_[i] == 'b') out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Adornment::FreePositions() const {
  std::vector<int> out;
  for (size_t i = 0; i < pattern_.size(); ++i) {
    if (pattern_[i] == 'f') out.push_back(static_cast<int>(i));
  }
  return out;
}

namespace {

// Adds every variable of `t` to `bound`.
void BindVars(const ast::Term& t, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  t.CollectVars(&vars);
  bound->insert(vars.begin(), vars.end());
}

bool AllVarsBound(const ast::Term& t, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  t.CollectVars(&vars);
  for (const std::string& v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

}  // namespace

Result<AdornedProgram> Adorn(const ast::Program& program,
                             const ast::Atom& query) {
  FACTLOG_RETURN_IF_ERROR(program.ValidateArities());
  AdornedProgram out;
  std::set<std::string> idb = program.IdbPredicates();
  if (idb.count(query.predicate()) == 0) {
    return Status::Invalid("query predicate '" + query.predicate() +
                           "' is not defined by any rule");
  }

  out.query_pred_ = AdornedPredicate{query.predicate(),
                                     Adornment::ForQuery(query)};
  out.query_ = ast::Atom(out.query_pred_.Name(), query.args());

  std::deque<AdornedPredicate> worklist = {out.query_pred_};
  std::set<std::string> done;

  while (!worklist.empty()) {
    AdornedPredicate ap = worklist.front();
    worklist.pop_front();
    if (!done.insert(ap.Name()).second) continue;
    out.predicates_.emplace(ap.Name(), ap);

    int rule_index = -1;
    for (const ast::Rule& rule : program.rules()) {
      ++rule_index;
      if (rule.head().predicate() != ap.base) continue;

      // Variables bound at rule entry: those in bound head positions.
      std::set<std::string> bound;
      for (size_t i = 0; i < rule.head().arity(); ++i) {
        if (ap.adornment.IsBound(i)) BindVars(rule.head().args()[i], &bound);
      }

      AdornedRuleInfo info;
      info.source_rule_index = rule_index;
      info.head = ap;
      ast::Rule adorned_rule(ast::Atom(ap.Name(), rule.head().args()), {});

      for (const ast::Atom& lit : rule.body()) {
        if (idb.count(lit.predicate()) == 0) {
          // EDB or builtin: evaluated in place; afterwards all its
          // variables are bound.
          adorned_rule.mutable_body()->push_back(lit);
          info.body.push_back(std::nullopt);
          for (const ast::Term& t : lit.args()) BindVars(t, &bound);
          continue;
        }
        std::string pattern;
        pattern.reserve(lit.arity());
        for (const ast::Term& t : lit.args()) {
          pattern.push_back(AllVarsBound(t, bound) ? 'b' : 'f');
        }
        AdornedPredicate body_ap{lit.predicate(), Adornment(pattern)};
        adorned_rule.mutable_body()->push_back(
            ast::Atom(body_ap.Name(), lit.args()));
        info.body.push_back(body_ap);
        if (done.count(body_ap.Name()) == 0) worklist.push_back(body_ap);
        // Answers bind the literal's remaining variables.
        for (const ast::Term& t : lit.args()) BindVars(t, &bound);
      }
      out.program_.AddRule(std::move(adorned_rule));
      out.rule_info_.push_back(std::move(info));
    }
  }
  out.program_.set_query(out.query_);
  return out;
}

}  // namespace factlog::analysis
