// Structured diagnostics for static program analysis.
//
// The lint subsystem (analysis/lint.h) reports problems as `Diagnostic`
// records instead of free-form Status strings: a stable machine-readable
// code ("L001"), a severity, the offending rule's index, a rendered snippet,
// and a fix hint. Stable codes let tests, CI gates, and editor integrations
// match on the *kind* of problem while the message text stays free to
// improve; the rendering below follows the rustc report shape
// (`error[L001]: ... --> rule #2: ...`).

#ifndef FACTLOG_COMMON_DIAGNOSTIC_H_
#define FACTLOG_COMMON_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace factlog {

/// How bad a Diagnostic is. Errors reject compilation; warnings ride along
/// on the compiled artifact.
enum class Severity {
  kWarning = 0,
  kError,
};

inline const char* SeverityToString(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

/// One finding of a static analysis: a stable code, a severity, where it
/// points (rule index and a rendered snippet), and how to fix it.
struct Diagnostic {
  /// Stable machine-readable code, e.g. "L001". Codes are append-only: a
  /// published code never changes meaning (see the table in README.md).
  std::string code;
  Severity severity = Severity::kWarning;
  /// One-sentence statement of the defect.
  std::string message;
  /// Index into Program::rules() of the offending rule, or -1 for
  /// program-level findings (query, declarations, cross-rule consistency).
  int rule_index = -1;
  /// Rendering of the offending clause / atom / variable for the report.
  std::string snippet;
  /// Actionable fix suggestion; may be empty.
  std::string hint;

  /// "error[L001]: <message>" plus location and hint lines, rustc-style.
  std::string Render() const {
    std::string out = SeverityToString(severity);
    out += "[" + code + "]: " + message;
    if (!snippet.empty()) {
      out += "\n  --> ";
      if (rule_index >= 0) {
        out += "rule #" + std::to_string(rule_index + 1) + ": ";
      }
      out += snippet;
    }
    if (!hint.empty()) {
      out += "\n  = hint: " + hint;
    }
    return out;
  }

  /// Compact one-line form for pass-trace notes: "L101: <message>".
  std::string ToString() const {
    std::string out = code + ": " + message;
    if (rule_index >= 0) out += " (rule #" + std::to_string(rule_index + 1) + ")";
    return out;
  }
};

inline size_t CountErrors(const std::vector<Diagnostic>& diagnostics) {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

inline size_t CountWarnings(const std::vector<Diagnostic>& diagnostics) {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

inline bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  return CountErrors(diagnostics) > 0;
}

/// Full multi-record report: every diagnostic rendered rustc-style, errors
/// first, with a trailing summary line.
inline std::string RenderDiagnostics(
    const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (Severity severity : {Severity::kError, Severity::kWarning}) {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity != severity) continue;
      out += d.Render();
      out += "\n";
    }
  }
  const size_t errors = CountErrors(diagnostics);
  const size_t warnings = CountWarnings(diagnostics);
  out += "lint: " + std::to_string(errors) + " error" +
         (errors == 1 ? "" : "s") + ", " + std::to_string(warnings) +
         " warning" + (warnings == 1 ? "" : "s") + "\n";
  return out;
}

/// kInvalidArgument carrying the rendered report — the status a compilation
/// rejected by lint errors returns.
inline Status DiagnosticsToStatus(const std::vector<Diagnostic>& diagnostics) {
  return Status::Invalid("program failed lint:\n" +
                         RenderDiagnostics(diagnostics));
}

}  // namespace factlog

#endif  // FACTLOG_COMMON_DIAGNOSTIC_H_
