#include "common/status.h"

namespace factlog {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

int StatusCodeToExitCode(StatusCode code) {
  if (code == StatusCode::kOk) return 0;
  return 10 + static_cast<int>(code);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace factlog
