// FACTLOG_DCHECK: debug-only invariant checks for hot paths.
//
// A single macro replaces the ad-hoc `assert(...)` calls that used to guard
// hot-path invariants (relation row access, page slot lookups, edge-store
// slots). In debug builds a failed check prints the expression and location
// and aborts; in release builds (NDEBUG) the condition is not evaluated at
// all — the macro compiles to nothing — so checks on per-row paths are free
// in production.
//
// Use FACTLOG_DCHECK for "this cannot happen unless factlog itself is buggy"
// invariants only. Caller-visible failures must keep returning Status.

#ifndef FACTLOG_COMMON_DCHECK_H_
#define FACTLOG_COMMON_DCHECK_H_

#include <cstdio>
#include <cstdlib>

#ifndef NDEBUG
#define FACTLOG_DCHECK(condition)                                        \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "FACTLOG_DCHECK failed: %s at %s:%d\n",       \
                   #condition, __FILE__, __LINE__);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
#else
#define FACTLOG_DCHECK(condition) \
  do {                            \
    (void)sizeof(condition);      \
  } while (0)
#endif

#endif  // FACTLOG_COMMON_DCHECK_H_
