// Status / Result error-handling primitives for factlog.
//
// The library follows the RocksDB / Apache Arrow convention: fallible public
// APIs return a `Status` (or a `Result<T>`, a Status-or-value sum type)
// instead of throwing exceptions.

#ifndef FACTLOG_COMMON_STATUS_H_
#define FACTLOG_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/dcheck.h"

namespace factlog {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  /// Caller passed a malformed argument (parse error, bad arity, ...).
  kInvalidArgument,
  /// A named entity (predicate, relation, rule) does not exist.
  kNotFound,
  /// The operation's precondition does not hold (e.g. program not a unit
  /// program, rule not in standard form).
  kFailedPrecondition,
  /// An evaluation budget (facts, iterations, inferences) was exhausted.
  /// Signals possible nontermination, cf. the Counting discussion in §6.4.
  kResourceExhausted,
  /// Internal invariant violation; always a bug in factlog itself.
  kInternal,
  /// Feature intentionally not implemented.
  kUnimplemented,
};

/// Returns a short human-readable name for a StatusCode ("OK", "Invalid
/// argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Maps a StatusCode to a distinct process exit code for CLI tools: kOk -> 0,
/// the error codes -> 10 + their enum value (so exit 2 stays free for usage
/// errors, the getopt convention).
int StatusCodeToExitCode(StatusCode code);

/// Success-or-error outcome of an operation, carrying a message on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Mirrors arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK Status. Constructing from an OK status is a
  /// programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FACTLOG_DCHECK(!status_.ok() &&
                   "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Precondition: ok().
  const T& value() const& {
    FACTLOG_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    FACTLOG_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    FACTLOG_DCHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error. The
  /// rvalue overload moves the stored value out instead of deep-copying it,
  /// so `MakeProgram().ValueOr(fallback)` does not copy the program.
  T ValueOr(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace factlog

/// Propagates a non-OK Status out of the enclosing function.
#define FACTLOG_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::factlog::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define FACTLOG_CONCAT_IMPL(a, b) a##b
#define FACTLOG_CONCAT(a, b) FACTLOG_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating errors; otherwise assigns the
/// value to `lhs`. `lhs` may include a declaration, e.g.
///   FACTLOG_ASSIGN_OR_RETURN(auto program, ParseProgram(text));
#define FACTLOG_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto FACTLOG_CONCAT(_result_, __LINE__) = (rexpr);                  \
  if (!FACTLOG_CONCAT(_result_, __LINE__).ok())                       \
    return FACTLOG_CONCAT(_result_, __LINE__).status();               \
  lhs = std::move(FACTLOG_CONCAT(_result_, __LINE__)).value()

#endif  // FACTLOG_COMMON_STATUS_H_
