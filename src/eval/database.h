// Extensional database: named relations plus the value store.

#ifndef FACTLOG_EVAL_DATABASE_H_
#define FACTLOG_EVAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "ast/atom.h"
#include "eval/relation.h"
#include "eval/value.h"

namespace factlog::eval {

/// The EDB: a set of named base relations sharing one ValueStore. Evaluation
/// engines read base relations from here and intern freshly constructed
/// values into the same store (the store grows during evaluation; base
/// relations do not). StorageOptions (shard count, partition columns) are
/// applied uniformly to every relation the database creates, and evaluators
/// consult storage_options() when laying out their IDB relations.
class Database {
 public:
  explicit Database(StorageOptions storage = {})
      : store_(std::make_shared<ValueStore>()), storage_(std::move(storage)) {}

  /// Snapshot construction (src/serve): a database sharing an existing value
  /// store, to be populated with frozen relation copies via PutRelation.
  /// Sharing the store keeps every ValueId of the live database resolvable
  /// from the snapshot (interning is thread-safe, so both sides may keep
  /// interning concurrently).
  Database(std::shared_ptr<ValueStore> store, StorageOptions storage)
      : store_(std::move(store)), storage_(std::move(storage)) {}

  /// The storage layout applied to relations this database creates.
  const StorageOptions& storage_options() const { return storage_; }

  ValueStore& store() { return *store_; }
  const ValueStore& store() const { return *store_; }
  /// The shared store handle (snapshot databases alias it).
  const std::shared_ptr<ValueStore>& shared_store() const { return store_; }

  /// Returns the named relation, creating an empty one on first use.
  Relation& GetOrCreate(const std::string& name, size_t arity);
  /// Returns the named relation or nullptr.
  Relation* Find(const std::string& name);
  const Relation* Find(const std::string& name) const;

  /// Interns and inserts a ground fact `p(c1, ..., ck)`.
  Status AddFact(const ast::Atom& fact);
  /// Removes a ground fact if present. Returns true when a row was removed.
  /// On sharded storage the relation is resynced before returning, so it is
  /// immediately readable.
  Result<bool> RemoveFact(const ast::Atom& fact);
  /// Interns `fact`'s constant arguments into the store and returns the row,
  /// without touching any relation.
  Result<std::vector<ValueId>> InternRow(const ast::Atom& fact);
  /// Convenience: adds `name(a, b)` for integer pairs (graph edges).
  void AddPair(const std::string& name, int64_t a, int64_t b);
  /// Convenience: adds `name(a)` for an integer.
  void AddUnit(const std::string& name, int64_t a);

  const std::map<std::string, std::shared_ptr<Relation>>& relations() const {
    return relations_;
  }

  /// Installs (or replaces) a relation under `name` — the snapshot builder
  /// hangs frozen copies here. The relation's arity is taken as-is.
  void PutRelation(const std::string& name, std::shared_ptr<Relation> rel) {
    relations_[name] = std::move(rel);
  }

  /// Backs relations created from here on by pages in `space` (the engine's
  /// persistence path). Existing relations are left as they are — the caller
  /// pages them explicitly (AttachPagedStore) or restores them from
  /// checkpointed chains.
  void AttachTableSpace(std::shared_ptr<storage::TableSpace> space) {
    tablespace_ = std::move(space);
  }
  const std::shared_ptr<storage::TableSpace>& tablespace() const {
    return tablespace_;
  }

  /// Total number of tuples across all relations.
  size_t TotalFacts() const;

 private:
  std::shared_ptr<ValueStore> store_;
  StorageOptions storage_;
  std::map<std::string, std::shared_ptr<Relation>> relations_;
  std::shared_ptr<storage::TableSpace> tablespace_;
};

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_DATABASE_H_
