// Compiled rules and the join loop shared by the bottom-up engines.
//
// A rule is compiled once: variables become dense indices, argument terms
// become patterns, and — when the caller provides a plan::JoinPlan — the body
// is laid out in the planned join order, so enumeration simply walks the
// compiled body front to back. Without a plan the source (left-to-right)
// order is kept, the same sideways-information-passing order the paper's
// adornments assume. Joins use per-relation hash indices on the argument
// positions that are ground under the current partial binding.

#ifndef FACTLOG_EVAL_RULE_EVAL_H_
#define FACTLOG_EVAL_RULE_EVAL_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ast/rule.h"
#include "common/status.h"
#include "eval/database.h"
#include "plan/join_plan.h"

namespace factlog::eval {

/// Compiled argument pattern: a term with variables as dense indices.
struct Pat {
  enum class Kind { kConst, kVar, kApp };
  Kind kind = Kind::kConst;
  ValueId const_id = kInvalidValue;  // kConst
  int var = -1;                      // kVar
  std::string functor;               // kApp
  std::vector<Pat> children;         // kApp
};

/// Kind of a compiled body literal.
enum class LitKind {
  kRelation,     // stored predicate (EDB or IDB)
  kEqual,        // builtin equal/2
  kAffine,       // builtin affine/4: affine(X, A, B, Z) <=> Z = A*X + B
  kGeq,          // builtin geq/2: X >= C over integers
};

/// A compiled atom: predicate plus argument patterns.
struct CompiledAtom {
  std::string predicate;
  LitKind kind = LitKind::kRelation;
  std::vector<Pat> args;
};

/// A rule compiled against a ValueStore (constants are pre-interned). When a
/// JoinPlan is supplied the compiled body is permuted into plan order; the
/// source rule and the source position of every compiled literal are kept so
/// provenance premises can be reported in source order regardless of the
/// plan.
class CompiledRule {
 public:
  /// Compiles `rule`, interning its constants into `store`. With `plan` the
  /// body is laid out in plan order (ignored when the plan does not
  /// structurally match the rule).
  static Result<CompiledRule> Compile(const ast::Rule& rule, ValueStore* store,
                                      const plan::JoinPlan* plan = nullptr);

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::vector<std::string>& var_names() const { return var_names_; }
  const CompiledAtom& head() const { return head_; }
  const std::vector<CompiledAtom>& body() const { return body_; }
  const ast::Rule& source() const { return source_; }
  /// Source body position of compiled literal k (identity without a plan).
  const std::vector<size_t>& source_positions() const { return source_pos_; }
  /// Compiled indices of the relation literals, sorted by source position —
  /// the order premises are reported in.
  const std::vector<size_t>& premise_order() const { return premise_order_; }

 private:
  ast::Rule source_;
  CompiledAtom head_;
  std::vector<CompiledAtom> body_;
  std::vector<std::string> var_names_;
  std::vector<size_t> source_pos_;
  std::vector<size_t> premise_order_;
};

/// The extent of one predicate during a join: the union of up to three
/// relations. Semi-naive evaluation unions "full" and "delta"; incremental
/// maintenance (src/inc) additionally needs the three-way union of a
/// maintained relation, the facts accumulated this propagation, and the
/// current delta. Any member may be null; the relations must be pairwise
/// disjoint (the engines guarantee this). A view may also wrap a single
/// storage shard (Relation::shard), which is a self-contained Relation with
/// shard-local row ids — the parallel fixpoint uses delta shards as its work
/// partitions.
struct RelationView {
  Relation* first = nullptr;
  Relation* second = nullptr;
  /// The relations are shared read-only with concurrent threads: the join
  /// must not build indices lazily (it probes already-built indices via
  /// Relation::FindIndexed and otherwise scans). Pre-build the probe indices
  /// with Relation::EnsureIndex (combined) / Relation::EnsureShardIndexes
  /// (shard views) on the StaticIndexCols keys before the parallel region.
  bool shared = false;
  /// Third union member. Declared after `shared` so the established
  /// two-relation aggregate initializations keep compiling unchanged.
  Relation* third = nullptr;

  bool IsEmpty() const {
    return (first == nullptr || first->empty()) &&
           (second == nullptr || second->empty()) &&
           (third == nullptr || third->empty());
  }
};

/// A ground fact reference used for provenance premises.
struct FactKey {
  std::string predicate;
  std::vector<ValueId> row;

  bool operator==(const FactKey& o) const {
    return predicate == o.predicate && row == o.row;
  }
  bool operator<(const FactKey& o) const {
    if (predicate != o.predicate) return predicate < o.predicate;
    return row < o.row;
  }
};

struct FactKeyHash {
  size_t operator()(const FactKey& k) const {
    size_t h = std::hash<std::string>()(k.predicate);
    for (ValueId v : k.row) {
      h ^= std::hash<int32_t>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

/// Receives each ground head row produced by a rule instantiation. `premises`
/// is non-null only when premise tracking is enabled; it lists the body facts
/// (relation literals only) of this instantiation in source body order, even
/// when the rule was compiled with a reordering plan. Return false to stop
/// enumeration.
using HeadSink = std::function<bool(const std::vector<ValueId>& head_row,
                                    const std::vector<FactKey>* premises)>;

/// Join statistics, accumulated across Enumerate calls.
struct JoinStats {
  uint64_t rows_matched = 0;
  uint64_t instantiations = 0;
  /// Per-compiled-literal observation counters, indexed by compiled body
  /// position (plan order when the rule was plan-compiled). Sized lazily by
  /// EnumerateRule; relation literals only — builtin slots stay zero.
  /// `lit_probes[k]` counts the times the join reached literal k with some
  /// binding (one index probe or scan per reach); `lit_matched[k]` counts
  /// the rows that matched there. matched/probes is the literal's observed
  /// selectivity under its adornment — the planner feedback signal
  /// (plan::StatsCatalog).
  std::vector<uint64_t> lit_probes;
  std::vector<uint64_t> lit_matched;
};

/// Enumerates all instantiations of `rule` where body literal i ranges over
/// `views[i]` (ignored for builtin literals), calling `sink` with each ground
/// head. Returns kInvalidArgument when a builtin cannot run (e.g. `equal`
/// with both sides unbound).
Status EnumerateRule(const CompiledRule& rule, ValueStore* store,
                     const std::vector<RelationView>& views,
                     bool track_premises, JoinStats* stats,
                     const HeadSink& sink);

/// For each compiled body literal (in the rule's compiled order), the
/// argument positions that are ground when the join reaches it — i.e. the
/// index key EnumerateRule will probe that literal's relation with (empty
/// for builtins and for literals probed with no bound columns). Groundness
/// is static per rule: a variable is bound at literal i exactly when an
/// earlier relation literal mentions it or an earlier builtin computes it.
///
/// The engines pre-build indices from the plan's declared index_cols
/// instead of calling this; it is kept as the independent ground-truth
/// oracle for what the join loop actually probes — plan::PlanRule's
/// AST-level groundness analysis must agree with it on every plan-compiled
/// rule (plan_test asserts the equivalence over the sweep corpus).
std::vector<std::vector<int>> StaticIndexCols(const CompiledRule& rule);

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_RULE_EVAL_H_
