#include "eval/provenance.h"

#include <algorithm>

namespace factlog::eval {

void ProvenanceStore::Record(const FactKey& fact, int rule_index,
                             const std::vector<FactKey>& premises) {
  map_.emplace(fact, Justification{rule_index, premises});
}

const Justification* ProvenanceStore::Find(const FactKey& fact) const {
  auto it = map_.find(fact);
  return it == map_.end() ? nullptr : &it->second;
}

size_t DerivationTree::Height() const {
  size_t h = 0;
  for (const DerivationTree& c : children) h = std::max(h, c.Height());
  return h + 1;
}

size_t DerivationTree::NodeCount() const {
  size_t n = 1;
  for (const DerivationTree& c : children) n += c.NodeCount();
  return n;
}

DerivationTree BuildDerivationTree(const ProvenanceStore& store,
                                   const FactKey& fact) {
  DerivationTree tree;
  tree.fact = fact;
  const Justification* just = store.Find(fact);
  if (just == nullptr) return tree;  // EDB leaf
  tree.rule_index = just->rule_index;
  tree.children.reserve(just->premises.size());
  for (const FactKey& p : just->premises) {
    tree.children.push_back(BuildDerivationTree(store, p));
  }
  return tree;
}

namespace {

void Render(const DerivationTree& t, const ValueStore& values, size_t depth,
            std::string* out) {
  out->append(depth * 2, ' ');
  out->append(t.fact.predicate);
  out->push_back('(');
  for (size_t i = 0; i < t.fact.row.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append(values.ToString(t.fact.row[i]));
  }
  out->push_back(')');
  if (t.rule_index >= 0) {
    out->append("   [rule " + std::to_string(t.rule_index) + "]");
  }
  out->push_back('\n');
  for (const DerivationTree& c : t.children) {
    Render(c, values, depth + 1, out);
  }
}

}  // namespace

std::string DerivationTreeToString(const DerivationTree& tree,
                                   const ValueStore& values) {
  std::string out;
  Render(tree, values, 0, &out);
  return out;
}

}  // namespace factlog::eval
