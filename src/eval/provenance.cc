#include "eval/provenance.h"

#include <algorithm>
#include <queue>
#include <unordered_set>
#include <utility>

namespace factlog::eval {

void ProvenanceStore::Record(const FactKey& fact, int rule_index,
                             const std::vector<FactKey>& premises) {
  map_.emplace(fact, Justification{rule_index, premises});
}

const Justification* ProvenanceStore::Find(const FactKey& fact) const {
  auto it = map_.find(fact);
  return it == map_.end() ? nullptr : &it->second;
}

// ------------------------------------------------------ DerivationEdgeStore --

size_t DerivationEdgeStore::FactHash(uint32_t pred, const ValueId* row,
                                     size_t arity) const {
  size_t h = std::hash<uint32_t>()(pred);
  for (size_t i = 0; i < arity; ++i) {
    h ^= std::hash<int32_t>()(row[i]) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

int DerivationEdgeStore::PredId(std::string_view pred) const {
  auto it = pred_ids_.find(std::string(pred));
  return it == pred_ids_.end() ? -1 : static_cast<int>(it->second);
}

DerivationEdgeStore::FactId DerivationEdgeStore::InternFact(
    std::string_view pred, const ValueId* row, size_t arity) {
  uint32_t pid;
  auto pit = pred_ids_.find(std::string(pred));
  if (pit != pred_ids_.end()) {
    pid = pit->second;
  } else {
    pid = static_cast<uint32_t>(pred_names_.size());
    pred_names_.emplace_back(pred);
    pred_ids_.emplace(pred_names_.back(), pid);
  }
  size_t h = FactHash(pid, row, arity);
  std::vector<FactId>& bucket = fact_index_[h];
  for (FactId f : bucket) {
    const FactNode& n = facts_[f];
    if (n.pred == pid && n.row.size() == arity &&
        std::equal(n.row.begin(), n.row.end(), row)) {
      return f;
    }
  }
  FactId f;
  if (!free_facts_.empty()) {
    f = free_facts_.back();
    free_facts_.pop_back();
  } else {
    f = static_cast<FactId>(facts_.size());
    facts_.emplace_back();
  }
  FactNode& n = facts_[f];
  n.pred = pid;
  n.rank = 0;
  n.row.assign(row, row + arity);
  n.live = true;
  bucket.push_back(f);
  ++num_facts_;
  return f;
}

DerivationEdgeStore::FactId DerivationEdgeStore::FindFact(
    std::string_view pred, const ValueId* row, size_t arity) const {
  auto pit = pred_ids_.find(std::string(pred));
  if (pit == pred_ids_.end()) return kNoFact;
  auto bit = fact_index_.find(FactHash(pit->second, row, arity));
  if (bit == fact_index_.end()) return kNoFact;
  for (FactId f : bit->second) {
    const FactNode& n = facts_[f];
    if (n.pred == pit->second && n.row.size() == arity &&
        std::equal(n.row.begin(), n.row.end(), row)) {
      return f;
    }
  }
  return kNoFact;
}

bool DerivationEdgeStore::AddEdge(FactId head, int rule_index,
                                  const std::vector<FactId>& premises) {
  uint64_t sig = std::hash<int>()(rule_index);
  for (FactId p : premises) {
    sig ^= std::hash<uint32_t>()(p) + 0x9e3779b97f4a7c15ULL + (sig << 6) +
           (sig >> 2);
  }
  for (EdgeId e : facts_[head].derivs) {
    const EdgeNode& n = edges_[e];
    if (n.sig == sig && n.rule == rule_index && n.premises == premises) {
      return false;
    }
  }
  if (num_edges_ >= max_edges_) {
    over_budget_ = true;
    return false;
  }
  EdgeId e;
  if (!free_edges_.empty()) {
    e = free_edges_.back();
    free_edges_.pop_back();
  } else {
    e = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
  }
  EdgeNode& n = edges_[e];
  n.head = head;
  n.rule = rule_index;
  n.sig = sig;
  n.premises = premises;
  n.live = true;
  facts_[head].derivs.push_back(e);
  for (FactId p : premises) facts_[p].uses.push_back(e);
  ++num_edges_;
  ++edges_added_;
  return true;
}

void DerivationEdgeStore::FreeFactIfOrphaned(FactId f) {
  FactNode& n = facts_[f];
  if (!n.live || !n.derivs.empty() || !n.uses.empty()) return;
  size_t h = FactHash(n.pred, n.row.data(), n.row.size());
  auto bit = fact_index_.find(h);
  if (bit != fact_index_.end()) {
    auto& bucket = bit->second;
    bucket.erase(std::remove(bucket.begin(), bucket.end(), f), bucket.end());
    if (bucket.empty()) fact_index_.erase(bit);
  }
  n.row.clear();
  n.row.shrink_to_fit();
  n.live = false;
  free_facts_.push_back(f);
  --num_facts_;
}

void DerivationEdgeStore::RemoveEdge(EdgeId e) {
  EdgeNode& n = edges_[e];
  if (!n.live) return;
  auto unlink = [e](std::vector<EdgeId>* list) {
    auto it = std::find(list->begin(), list->end(), e);
    if (it != list->end()) {
      *it = list->back();
      list->pop_back();
    }
  };
  unlink(&facts_[n.head].derivs);
  for (FactId p : n.premises) unlink(&facts_[p].uses);
  // The head first, then each distinct premise; a premise repeated in the
  // edge must be freed once (unlink above removed one uses entry per
  // occurrence, FreeFactIfOrphaned is idempotent).
  FactId head = n.head;
  std::vector<FactId> prems = std::move(n.premises);
  n.premises.clear();
  n.live = false;
  n.head = kNoFact;
  free_edges_.push_back(e);
  --num_edges_;
  ++edges_removed_;
  FreeFactIfOrphaned(head);
  for (FactId p : prems) FreeFactIfOrphaned(p);
}

void DerivationEdgeStore::RecomputeRanks() {
  // Knuth's shortest-hyperpath: finalize facts in increasing rank order; an
  // edge's candidate rank for its head is max(premise ranks) + 1, available
  // once every premise occurrence is finalized.
  constexpr uint32_t kInf = 0xffffffffu;
  std::vector<uint32_t> best(facts_.size(), kInf);
  std::vector<bool> done(facts_.size(), false);
  std::vector<uint32_t> unresolved(edges_.size(), 0);
  std::vector<uint32_t> edge_max(edges_.size(), 0);
  using Item = std::pair<uint32_t, FactId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  for (size_t f = 0; f < facts_.size(); ++f) {
    if (!facts_[f].live) continue;
    if (facts_[f].derivs.empty()) {
      best[f] = 0;  // given fact: EDB or maintained outside this store
      queue.emplace(0u, static_cast<FactId>(f));
    }
  }
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (!edges_[e].live) continue;
    unresolved[e] = static_cast<uint32_t>(edges_[e].premises.size());
    if (unresolved[e] == 0) {  // ground fact rule of a tracked predicate
      FactId h = edges_[e].head;
      if (best[h] > 1) {
        best[h] = 1;
        queue.emplace(1u, h);
      }
    }
  }
  while (!queue.empty()) {
    auto [r, f] = queue.top();
    queue.pop();
    if (done[f] || r != best[f]) continue;
    done[f] = true;
    facts_[f].rank = r;
    for (EdgeId e : facts_[f].uses) {
      edge_max[e] = std::max(edge_max[e], r);
      if (--unresolved[e] == 0) {
        FactId h = edges_[e].head;
        uint32_t candidate = edge_max[e] + 1;
        if (!done[h] && candidate < best[h]) {
          best[h] = candidate;
          queue.emplace(candidate, h);
        }
      }
    }
  }
  // Facts the queue never reached have no grounded derivation (a state the
  // well-founded model never contains); maximum rank marks them unsupported.
  for (size_t f = 0; f < facts_.size(); ++f) {
    if (facts_[f].live && !done[f]) facts_[f].rank = kInf;
  }
}

// ---------------------------------------------------------------- trees ----

size_t DerivationTree::Height() const {
  size_t h = 0;
  for (const DerivationTree& c : children) h = std::max(h, c.Height());
  return h + 1;
}

size_t DerivationTree::NodeCount() const {
  size_t n = 1;
  for (const DerivationTree& c : children) n += c.NodeCount();
  return n;
}

DerivationTree BuildDerivationTree(const ProvenanceStore& store,
                                   const FactKey& fact) {
  DerivationTree tree;
  tree.fact = fact;
  const Justification* just = store.Find(fact);
  if (just == nullptr) return tree;  // EDB leaf
  tree.rule_index = just->rule_index;
  tree.children.reserve(just->premises.size());
  for (const FactKey& p : just->premises) {
    tree.children.push_back(BuildDerivationTree(store, p));
  }
  return tree;
}

namespace {

using FactId = DerivationEdgeStore::FactId;

DerivationTree BuildFromEdges(const DerivationEdgeStore& store, FactId f,
                              std::unordered_set<FactId>* on_path) {
  DerivationTree tree;
  tree.fact = FactKey{store.pred_of(f), store.row_of(f)};
  const auto& derivs = store.derivations_of(f);
  if (derivs.empty() || on_path->count(f) > 0) return tree;  // leaf / cycle
  // Prefer a derivation that does not loop back into the current path (one
  // always exists for facts with a well-founded derivation; cyclic-support
  // remnants just print their premises as cut leaves).
  DerivationEdgeStore::EdgeId chosen = derivs.front();
  for (DerivationEdgeStore::EdgeId e : derivs) {
    bool loops = false;
    for (FactId p : store.premises_of(e)) {
      if (p == f || on_path->count(p) > 0) {
        loops = true;
        break;
      }
    }
    if (!loops) {
      chosen = e;
      break;
    }
  }
  tree.rule_index = store.rule_of(chosen);
  on_path->insert(f);
  for (FactId p : store.premises_of(chosen)) {
    tree.children.push_back(BuildFromEdges(store, p, on_path));
  }
  on_path->erase(f);
  return tree;
}

}  // namespace

DerivationTree BuildDerivationTree(const DerivationEdgeStore& store,
                                   const FactKey& fact) {
  FactId f = store.FindFact(fact.predicate, fact.row.data(), fact.row.size());
  if (f == DerivationEdgeStore::kNoFact) {
    DerivationTree leaf;
    leaf.fact = fact;
    return leaf;
  }
  std::unordered_set<FactId> on_path;
  return BuildFromEdges(store, f, &on_path);
}

namespace {

void Render(const DerivationTree& t, const ValueStore& values, size_t depth,
            std::string* out) {
  out->append(depth * 2, ' ');
  out->append(t.fact.predicate);
  out->push_back('(');
  for (size_t i = 0; i < t.fact.row.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append(values.ToString(t.fact.row[i]));
  }
  out->push_back(')');
  if (t.rule_index >= 0) {
    out->append("   [rule " + std::to_string(t.rule_index) + "]");
  }
  out->push_back('\n');
  for (const DerivationTree& c : t.children) {
    Render(c, values, depth + 1, out);
  }
}

}  // namespace

std::string DerivationTreeToString(const DerivationTree& tree,
                                   const ValueStore& values) {
  std::string out;
  Render(tree, values, 0, &out);
  return out;
}

}  // namespace factlog::eval
