#include "eval/database.h"

namespace factlog::eval {

Relation& Database::GetOrCreate(const std::string& name, size_t arity) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, std::make_unique<Relation>(arity, storage_))
             .first;
  }
  return *it->second;
}

Relation* Database::Find(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Status Database::AddFact(const ast::Atom& fact) {
  if (!fact.IsGround()) {
    return Status::Invalid("EDB fact must be ground: " + fact.ToString());
  }
  std::vector<ValueId> row;
  row.reserve(fact.arity());
  for (const ast::Term& t : fact.args()) {
    FACTLOG_ASSIGN_OR_RETURN(ValueId v, store_->FromTerm(t));
    row.push_back(v);
  }
  GetOrCreate(fact.predicate(), fact.arity()).Insert(row);
  return Status::OK();
}

void Database::AddPair(const std::string& name, int64_t a, int64_t b) {
  std::vector<ValueId> row = {store_->InternInt(a), store_->InternInt(b)};
  GetOrCreate(name, 2).Insert(row);
}

void Database::AddUnit(const std::string& name, int64_t a) {
  std::vector<ValueId> row = {store_->InternInt(a)};
  GetOrCreate(name, 1).Insert(row);
}

size_t Database::TotalFacts() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel->size();
  return n;
}

}  // namespace factlog::eval
