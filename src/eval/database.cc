#include "eval/database.h"

namespace factlog::eval {

Relation& Database::GetOrCreate(const std::string& name, size_t arity) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, std::make_shared<Relation>(arity, storage_))
             .first;
    // Persistent databases page base relations from birth (attaching an
    // empty relation costs nothing; unpageable shapes stay in RAM).
    if (tablespace_ != nullptr) it->second->AttachPagedStore(tablespace_);
  }
  return *it->second;
}

Relation* Database::Find(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Result<std::vector<ValueId>> Database::InternRow(const ast::Atom& fact) {
  if (!fact.IsGround()) {
    return Status::Invalid("EDB fact must be ground: " + fact.ToString());
  }
  std::vector<ValueId> row;
  row.reserve(fact.arity());
  for (const ast::Term& t : fact.args()) {
    FACTLOG_ASSIGN_OR_RETURN(ValueId v, store_->FromTerm(t));
    row.push_back(v);
  }
  return row;
}

Status Database::AddFact(const ast::Atom& fact) {
  FACTLOG_ASSIGN_OR_RETURN(std::vector<ValueId> row, InternRow(fact));
  Relation& rel = GetOrCreate(fact.predicate(), fact.arity());
  if (rel.arity() != fact.arity()) {
    return Status::Invalid("arity mismatch for '" + fact.predicate() +
                           "': relation has arity " +
                           std::to_string(rel.arity()) + ", fact " +
                           std::to_string(fact.arity()));
  }
  rel.Insert(row);
  return Status::OK();
}

Result<bool> Database::RemoveFact(const ast::Atom& fact) {
  FACTLOG_ASSIGN_OR_RETURN(std::vector<ValueId> row, InternRow(fact));
  Relation* rel = Find(fact.predicate());
  if (rel == nullptr || rel->arity() != fact.arity()) return false;
  if (!rel->Erase(row.data())) return false;
  rel->SyncShards();
  return true;
}

void Database::AddPair(const std::string& name, int64_t a, int64_t b) {
  std::vector<ValueId> row = {store_->InternInt(a), store_->InternInt(b)};
  GetOrCreate(name, 2).Insert(row);
}

void Database::AddUnit(const std::string& name, int64_t a) {
  std::vector<ValueId> row = {store_->InternInt(a)};
  GetOrCreate(name, 1).Insert(row);
}

size_t Database::TotalFacts() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel->size();
  return n;
}

}  // namespace factlog::eval
