// Interned ground values for the evaluation layer.
//
// Every ground term is hash-consed into a dense `ValueId`. Equality of
// arbitrarily deep terms is then O(1), and compound values share structure:
// the n suffixes of an n-element list occupy O(n) total space. This is the
// "structure-sharing implementation of lists" that Example 4.6 of the paper
// assumes for its linear-time bound.
//
// Thread safety: the store distinguishes interning (mutating) from resolving
// (reading). Intern* / FromTerm serialize on an internal mutex and may be
// called from concurrent evaluation workers; the read accessors (kind,
// int_value, symbol, Child, ToTerm, ...) are lock-free and safe concurrently
// with interning for any id the reader obtained through a synchronizing
// operation — which the exec layer's task hand-offs provide. This is the
// precomputation-vs-hot-path split the parallel execution subsystem relies
// on: values are interned once, then resolved from many threads.

#ifndef FACTLOG_EVAL_VALUE_H_
#define FACTLOG_EVAL_VALUE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/term.h"
#include "common/status.h"
#include "eval/stable_store.h"

namespace factlog::eval {

/// Dense id of an interned ground value. Ids are only meaningful relative to
/// the ValueStore that produced them.
using ValueId = int32_t;
inline constexpr ValueId kInvalidValue = -1;

/// Hash-consing arena for ground values (integers, symbols, compound terms).
class ValueStore {
 public:
  enum class Kind { kInt, kSymbol, kCompound };

  ValueStore() = default;
  ValueStore(const ValueStore&) = delete;
  ValueStore& operator=(const ValueStore&) = delete;

  ValueId InternInt(int64_t value);
  ValueId InternSym(const std::string& name);
  /// Interns `functor(children...)`. Children must already be interned.
  ValueId InternApp(const std::string& functor, std::vector<ValueId> children);

  /// Interns a ground AST term. Fails with kInvalidArgument on variables.
  Result<ValueId> FromTerm(const ast::Term& term);
  /// Reconstructs the AST term for a value.
  ast::Term ToTerm(ValueId id) const;

  Kind kind(ValueId id) const { return nodes_[id].kind; }
  bool IsInt(ValueId id) const { return kind(id) == Kind::kInt; }
  bool IsCompound(ValueId id) const { return kind(id) == Kind::kCompound; }
  int64_t int_value(ValueId id) const { return nodes_[id].int_value; }
  /// Symbol text (kSymbol) or functor name (kCompound).
  const std::string& symbol(ValueId id) const {
    return symbols_[nodes_[id].symbol];
  }
  /// Number of children of a compound value (0 otherwise).
  size_t NumChildren(ValueId id) const { return nodes_[id].child_count; }
  ValueId Child(ValueId id, size_t i) const {
    return children_[nodes_[id].child_begin + i];
  }

  size_t size() const { return nodes_.size(); }

  std::string ToString(ValueId id) const { return ToTerm(id).ToString(); }

 private:
  struct Node {
    Kind kind = Kind::kInt;
    int64_t int_value = 0;
    int32_t symbol = -1;       // index into symbols_
    uint32_t child_begin = 0;  // index into children_
    uint32_t child_count = 0;
  };

  struct AppKey {
    int32_t symbol;
    std::vector<ValueId> children;
    bool operator==(const AppKey& o) const {
      return symbol == o.symbol && children == o.children;
    }
  };
  struct AppKeyHash {
    size_t operator()(const AppKey& k) const {
      size_t h = std::hash<int32_t>()(k.symbol);
      for (ValueId c : k.children) {
        h ^= std::hash<int32_t>()(c) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  int32_t InternSymbolNameLocked(const std::string& name);

  // Value payloads: append-only chunked stores so lock-free readers survive
  // concurrent interning (see stable_store.h for the contract).
  StableStore<Node> nodes_;
  StableStore<ValueId> children_;
  StableStore<std::string> symbols_;

  // Hash-consing lookup tables; touched only while holding mu_.
  std::mutex mu_;
  std::map<std::string, int32_t> symbol_ids_;
  std::map<int64_t, ValueId> int_ids_;
  std::map<int32_t, ValueId> sym_value_ids_;
  std::unordered_map<AppKey, ValueId, AppKeyHash> app_ids_;
};

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_VALUE_H_
