// Top-down SLD resolution: the "Prolog" baseline of Examples 1.2 / 4.6.
//
// Depth-first, left-to-right resolution against the IDB rules with EDB facts
// looked up through relation indices. The engine counts resolution steps so
// the paper's O(n^2)-inferences claim for the pmem program can be measured
// directly. Left-recursive programs diverge under SLD exactly as they do in
// Prolog; budgets turn divergence into kResourceExhausted.

#ifndef FACTLOG_EVAL_TOPDOWN_H_
#define FACTLOG_EVAL_TOPDOWN_H_

#include "ast/program.h"
#include "common/status.h"
#include "eval/database.h"
#include "eval/seminaive.h"

namespace factlog::eval {

struct SldOptions {
  /// Abort with kResourceExhausted after this many resolution steps.
  uint64_t max_inferences = 50'000'000;
  /// Abort with kResourceExhausted beyond this goal-stack depth. The solver
  /// recurses on the C++ stack, so keep this moderate.
  size_t max_depth = 8192;
  /// When true, memoize answers to ground-call patterns (variant tabling of
  /// fully bound subgoals). Off by default: plain Prolog behaviour.
  bool tabling = false;
};

struct SldStats {
  /// Resolution steps: successful unifications of a goal with a rule head or
  /// an EDB fact.
  uint64_t inferences = 0;
  /// Number of times a goal was attempted.
  uint64_t goals_invoked = 0;
  /// Table hits (tabling mode only).
  uint64_t table_hits = 0;
};

/// Solves `query` top-down. Answers are the bindings of the query's distinct
/// variables; every answer must be ground (true for the paper's workloads).
Result<AnswerSet> SolveTopDown(const ast::Program& program,
                               const ast::Atom& query, Database* db,
                               const SldOptions& opts = SldOptions(),
                               SldStats* stats_out = nullptr);

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_TOPDOWN_H_
