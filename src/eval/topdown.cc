#include "eval/topdown.h"

#include <set>

#include "ast/special_predicates.h"
#include "ast/substitution.h"
#include "ast/unify.h"

namespace factlog::eval {

namespace {

using ast::Atom;
using ast::Program;
using ast::Rule;
using ast::Substitution;
using ast::Term;

// All-answers SLD resolution in the Prolog box model. A goal is solved by
// collecting every answer substitution; an answer produced by a subgoal is
// *delivered* to its calling frame, and each delivery counts as an
// inference. This reproduces the cost model behind Example 1.2's O(n^2)
// claim: the answer x_i to pmem(X, [x_i..x_n]) exits through every enclosing
// pmem frame, computing the facts pmem(x_i, [x_j..x_n]) for all j <= i.
class SldEngine {
 public:
  SldEngine(const Program& program, const Atom& query, Database* db,
            const SldOptions& opts)
      : program_(program), query_(query), db_(db), opts_(opts) {
    gen_.ReserveFrom(program);
    for (const std::string& v : query.DistinctVars()) gen_.Reserve(v);
    idb_preds_ = program.IdbPredicates();
  }

  Result<AnswerSet> Run() {
    AnswerSet answers;
    answers.vars = query_.DistinctVars();
    Substitution empty;
    FACTLOG_ASSIGN_OR_RETURN(std::vector<Substitution> solutions,
                             SolveGoal(query_, empty, 0));
    std::set<std::vector<ValueId>> rows;
    for (const Substitution& s : solutions) {
      std::vector<ValueId> row;
      row.reserve(answers.vars.size());
      for (const std::string& v : answers.vars) {
        Term t = s.DeepApply(Term::Var(v));
        if (!t.IsGround()) {
          return Status::Invalid("non-ground answer for variable " + v);
        }
        FACTLOG_ASSIGN_OR_RETURN(ValueId id, db_->store().FromTerm(t));
        row.push_back(id);
      }
      rows.insert(std::move(row));
    }
    answers.rows.assign(rows.begin(), rows.end());
    return answers;
  }

  const SldStats& stats() const { return stats_; }

 private:
  Status Budget(size_t depth) {
    if (stats_.inferences > opts_.max_inferences) {
      return Status::ResourceExhausted(
          "SLD inference budget exceeded; query may not terminate top-down");
    }
    if (depth > opts_.max_depth) {
      return Status::ResourceExhausted("SLD depth budget exceeded");
    }
    return Status::OK();
  }

  // Solves a single goal under `subst`, returning one substitution per
  // answer (duplicates preserved, as in Prolog).
  Result<std::vector<Substitution>> SolveGoal(const Atom& goal_in,
                                              const Substitution& subst,
                                              size_t depth) {
    FACTLOG_RETURN_IF_ERROR(Budget(depth));
    ++stats_.goals_invoked;
    Atom goal = subst.DeepApply(goal_in);

    if (goal.predicate() == ast::kEqualPredicate && goal.arity() == 2) {
      Substitution next = subst;
      if (ast::Unify(goal.args()[0], goal.args()[1], &next)) {
        ++stats_.inferences;
        return std::vector<Substitution>{std::move(next)};
      }
      return std::vector<Substitution>{};
    }
    if (goal.predicate() == ast::kAffinePredicate && goal.arity() == 4) {
      return SolveAffine(goal, subst);
    }
    if (goal.predicate() == ast::kGeqPredicate && goal.arity() == 2) {
      const Term& lhs = goal.args()[0];
      const Term& rhs = goal.args()[1];
      if (lhs.kind() != Term::Kind::kInt || rhs.kind() != Term::Kind::kInt) {
        return Status::Invalid("geq/2 requires bound integer arguments");
      }
      if (lhs.int_value() >= rhs.int_value()) {
        ++stats_.inferences;
        return std::vector<Substitution>{subst};
      }
      return std::vector<Substitution>{};
    }
    if (idb_preds_.count(goal.predicate()) == 0) {
      return SolveEdb(goal, subst);
    }

    // Tabling: memoize success of fully ground IDB goals and cut loops.
    if (opts_.tabling && goal.IsGround()) {
      auto memo = table_.find(goal);
      if (memo != table_.end()) {
        ++stats_.table_hits;
        if (memo->second) {
          ++stats_.inferences;
          return std::vector<Substitution>{subst};
        }
        return std::vector<Substitution>{};
      }
      if (in_progress_.count(goal) > 0) {
        return std::vector<Substitution>{};  // loop check
      }
      in_progress_.insert(goal);
      Result<std::vector<Substitution>> result = SolveIdb(goal, subst, depth);
      in_progress_.erase(goal);
      if (!result.ok()) return result;
      table_.emplace(goal, !result->empty());
      if (!result->empty()) {
        // A ground goal binds nothing new; deliver one success.
        return std::vector<Substitution>{subst};
      }
      return std::vector<Substitution>{};
    }

    return SolveIdb(goal, subst, depth);
  }

  Result<std::vector<Substitution>> SolveIdb(const Atom& goal,
                                             const Substitution& subst,
                                             size_t depth) {
    std::vector<Substitution> answers;
    for (const Rule* rule : program_.RulesFor(goal.predicate())) {
      Rule renamed = ast::RenameApart(*rule, &gen_);
      Substitution call = subst;
      if (!ast::UnifyAtoms(goal, renamed.head(), &call)) continue;
      ++stats_.inferences;  // call port
      FACTLOG_ASSIGN_OR_RETURN(std::vector<Substitution> body_answers,
                               SolveBody(renamed.body(), call, depth + 1));
      for (Substitution& a : body_answers) {
        ++stats_.inferences;  // exit port: the answer is delivered here
        answers.push_back(std::move(a));
        FACTLOG_RETURN_IF_ERROR(Budget(depth));
      }
    }
    return answers;
  }

  // Solves a conjunction left-to-right.
  Result<std::vector<Substitution>> SolveBody(const std::vector<Atom>& body,
                                              const Substitution& subst,
                                              size_t depth) {
    std::vector<Substitution> frontier = {subst};
    for (const Atom& lit : body) {
      std::vector<Substitution> next;
      for (const Substitution& s : frontier) {
        FACTLOG_ASSIGN_OR_RETURN(std::vector<Substitution> sols,
                                 SolveGoal(lit, s, depth));
        for (Substitution& a : sols) next.push_back(std::move(a));
      }
      frontier = std::move(next);
      if (frontier.empty()) break;
    }
    return frontier;
  }

  Result<std::vector<Substitution>> SolveAffine(const Atom& goal,
                                                const Substitution& subst) {
    const Term& a_t = goal.args()[1];
    const Term& b_t = goal.args()[2];
    if (a_t.kind() != Term::Kind::kInt || b_t.kind() != Term::Kind::kInt) {
      return Status::Invalid("affine/4 requires integer coefficients");
    }
    int64_t a = a_t.int_value();
    int64_t b = b_t.int_value();
    const Term& x_t = goal.args()[0];
    const Term& z_t = goal.args()[3];
    Substitution next = subst;
    if (x_t.kind() == Term::Kind::kInt) {
      if (ast::Unify(z_t, Term::Int(a * x_t.int_value() + b), &next)) {
        ++stats_.inferences;
        return std::vector<Substitution>{std::move(next)};
      }
      return std::vector<Substitution>{};
    }
    if (z_t.kind() == Term::Kind::kInt && a != 0) {
      int64_t diff = z_t.int_value() - b;
      if (diff % a == 0 && ast::Unify(x_t, Term::Int(diff / a), &next)) {
        ++stats_.inferences;
        return std::vector<Substitution>{std::move(next)};
      }
      return std::vector<Substitution>{};
    }
    return Status::Invalid("affine/4 with both X and Z unbound");
  }

  Result<std::vector<Substitution>> SolveEdb(const Atom& goal,
                                             const Substitution& subst) {
    std::vector<Substitution> answers;
    Relation* rel = db_->Find(goal.predicate());
    if (rel == nullptr) return answers;
    if (rel->arity() != goal.arity()) {
      return Status::Invalid("arity mismatch on EDB predicate " +
                             goal.predicate());
    }
    // Index on ground argument positions.
    std::vector<int> cols;
    std::vector<ValueId> key;
    for (size_t i = 0; i < goal.arity(); ++i) {
      if (goal.args()[i].IsGround()) {
        FACTLOG_ASSIGN_OR_RETURN(ValueId v,
                                 db_->store().FromTerm(goal.args()[i]));
        cols.push_back(static_cast<int>(i));
        key.push_back(v);
      }
    }
    auto try_row = [&](const ValueId* row) {
      Substitution next = subst;
      for (size_t i = 0; i < goal.arity(); ++i) {
        Term t = db_->store().ToTerm(row[i]);
        if (!ast::Unify(goal.args()[i], t, &next)) return;
      }
      ++stats_.inferences;
      answers.push_back(std::move(next));
    };
    if (cols.size() == goal.arity()) {
      if (rel->Contains(key.data())) try_row(key.data());
    } else if (cols.empty()) {
      for (size_t r = 0; r < rel->size(); ++r) try_row(rel->row(r));
    } else {
      for (uint32_t r : rel->Lookup(cols, key)) try_row(rel->row(r));
    }
    return answers;
  }

  const Program& program_;
  const Atom& query_;
  Database* db_;
  SldOptions opts_;
  ast::FreshVarGen gen_{"_R"};
  SldStats stats_;
  std::set<std::string> idb_preds_;
  std::map<Atom, bool> table_;
  std::set<Atom> in_progress_;
};

}  // namespace

Result<AnswerSet> SolveTopDown(const ast::Program& program,
                               const ast::Atom& query, Database* db,
                               const SldOptions& opts, SldStats* stats_out) {
  SldEngine engine(program, query, db, opts);
  Result<AnswerSet> result = engine.Run();
  if (stats_out != nullptr) *stats_out = engine.stats();
  return result;
}

}  // namespace factlog::eval
