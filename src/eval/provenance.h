// Derivation trees (Definition 2.1 of the paper) via provenance recording.
//
// When enabled, the bottom-up engines record, for each IDB fact, the rule and
// the body facts of the first instantiation that derived it. From this a
// derivation tree can be reconstructed: EDB facts are leaves (clause (1) of
// Def. 2.1), rule instantiations are internal nodes (clause (2)).
//
// DerivationEdgeStore is the incremental-maintenance variant: instead of one
// justification per fact it keeps the *complete* derivation hypergraph of the
// recursive predicates of a materialized view — every edge (head :- premises)
// that currently holds, deduplicated, with per-fact adjacency in both
// directions. Deletion then propagates along actual derivation edges instead
// of over-deleting everything reachable, and `why` queries can print a tree
// for any maintained fact. Memory is bounded: fact rows are interned once and
// ref-counted by the edges touching them (nodes free as their last edge
// goes), and a hard edge budget lets the owner drop the store and fall back
// to derivation-free maintenance.

#ifndef FACTLOG_EVAL_PROVENANCE_H_
#define FACTLOG_EVAL_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "eval/rule_eval.h"

namespace factlog::eval {

/// Why a fact holds: the index of the deriving rule and its body facts.
struct Justification {
  int rule_index = -1;
  std::vector<FactKey> premises;
};

/// First-derivation provenance for IDB facts.
class ProvenanceStore {
 public:
  /// Records a justification if the fact has none yet.
  void Record(const FactKey& fact, int rule_index,
              const std::vector<FactKey>& premises);

  /// Returns the justification, or nullptr for EDB facts / unknown facts.
  const Justification* Find(const FactKey& fact) const;

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<FactKey, Justification, FactKeyHash> map_;
};

/// The complete derivation hypergraph of one materialized view's recursive
/// predicates. Facts (both heads and premises, EDB or IDB) are interned to
/// dense 32-bit ids; each edge records its rule and premise facts and is
/// linked into the head's derivation list and every premise's uses list (one
/// entry per premise occurrence, so repeated premises stay symmetric with
/// the per-occurrence counters deletion keeps). Not thread-safe: single
/// writer, like the view that owns it.
class DerivationEdgeStore {
 public:
  using FactId = uint32_t;
  using EdgeId = uint32_t;
  static constexpr FactId kNoFact = 0xffffffffu;

  explicit DerivationEdgeStore(uint64_t max_edges) : max_edges_(max_edges) {}

  // -- facts ---------------------------------------------------------------

  /// Interns (predicate, row); returns the existing id when already known.
  FactId InternFact(std::string_view pred, const ValueId* row, size_t arity);
  /// Lookup without interning; kNoFact when the store never saw the fact.
  FactId FindFact(std::string_view pred, const ValueId* row,
                  size_t arity) const;

  const std::string& pred_of(FactId f) const {
    return pred_names_[facts_[f].pred];
  }
  /// Well-founded derivation rank: 0 for given facts (no derivations in the
  /// store), and for derived facts an upper bound on the minimal derivation
  /// height. The owner maintains the invariant that every alive derived fact
  /// has at least one derivation whose premises all have strictly smaller
  /// rank — the "supporting" derivations counting-based deletion counts.
  uint32_t rank_of(FactId f) const { return facts_[f].rank; }
  void set_rank(FactId f, uint32_t r) { facts_[f].rank = r; }
  /// Recomputes every live fact's rank as its exact minimal derivation
  /// height (Knuth's shortest-hyperpath, O(E log V)). Facts with no
  /// grounded derivation — which a well-founded state never holds — get the
  /// maximum rank so they count as unsupported.
  void RecomputeRanks();
  /// Dense predicate id (index into a per-store name table), for cheap
  /// membership tests during slice computation. -1 when never interned.
  int PredId(std::string_view pred) const;
  uint32_t pred_id_of(FactId f) const { return facts_[f].pred; }
  const std::vector<ValueId>& row_of(FactId f) const { return facts_[f].row; }
  /// Edges this fact is the head of. Empty for EDB facts (and freed slots).
  const std::vector<EdgeId>& derivations_of(FactId f) const {
    return facts_[f].derivs;
  }
  /// Edges this fact is a premise of, one entry per occurrence.
  const std::vector<EdgeId>& uses_of(FactId f) const {
    return facts_[f].uses;
  }

  // -- edges ---------------------------------------------------------------

  /// Adds the derivation (head :- premises) via `rule_index`, deduplicated
  /// against the head's existing derivations. Returns true when new.
  bool AddEdge(FactId head, int rule_index,
               const std::vector<FactId>& premises);
  /// Unlinks the edge from its head and premises and frees any fact node
  /// left with neither derivations nor uses. No-op on already-removed ids.
  void RemoveEdge(EdgeId e);

  FactId head_of(EdgeId e) const { return edges_[e].head; }
  int rule_of(EdgeId e) const { return edges_[e].rule; }
  const std::vector<FactId>& premises_of(EdgeId e) const {
    return edges_[e].premises;
  }

  // -- sizing --------------------------------------------------------------

  /// True once the live edge count ever exceeded the construction budget;
  /// the owner is expected to drop the store (it may be missing edges that
  /// were rejected).
  bool over_budget() const { return over_budget_; }
  /// Upper bound (exclusive) on live fact ids — side arrays indexed by
  /// FactId can be sized with this.
  size_t fact_capacity() const { return facts_.size(); }
  uint64_t num_facts() const { return num_facts_; }
  uint64_t num_edges() const { return num_edges_; }
  uint64_t edges_added() const { return edges_added_; }
  uint64_t edges_removed() const { return edges_removed_; }

 private:
  struct FactNode {
    uint32_t pred = 0;
    uint32_t rank = 0;
    std::vector<ValueId> row;
    std::vector<EdgeId> derivs;
    std::vector<EdgeId> uses;
    bool live = false;
  };
  struct EdgeNode {
    FactId head = kNoFact;
    int rule = -1;
    uint64_t sig = 0;  // hash of (rule, premises) for cheap dedup compares
    std::vector<FactId> premises;
    bool live = false;
  };

  size_t FactHash(uint32_t pred, const ValueId* row, size_t arity) const;
  void FreeFactIfOrphaned(FactId f);

  uint64_t max_edges_;
  bool over_budget_ = false;
  uint64_t num_facts_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t edges_added_ = 0;
  uint64_t edges_removed_ = 0;

  std::vector<std::string> pred_names_;
  std::unordered_map<std::string, uint32_t> pred_ids_;
  std::vector<FactNode> facts_;
  std::vector<FactId> free_facts_;
  std::vector<EdgeNode> edges_;
  std::vector<EdgeId> free_edges_;
  /// hash(pred, row) -> candidate fact ids, the same bucketed layout the
  /// Relation dedup table uses.
  std::unordered_map<size_t, std::vector<FactId>> fact_index_;
};

/// A derivation tree per Definition 2.1. `rule_index` is -1 for leaves
/// (EDB facts or program facts with empty bodies).
struct DerivationTree {
  FactKey fact;
  int rule_index = -1;
  std::vector<DerivationTree> children;

  /// Height with single-node trees having height 1 (as in the paper's
  /// induction).
  size_t Height() const;
  size_t NodeCount() const;
};

/// Reconstructs the derivation tree rooted at `fact`. Facts without a
/// recorded justification become leaves.
DerivationTree BuildDerivationTree(const ProvenanceStore& store,
                                   const FactKey& fact);

/// Reconstructs a derivation tree from the edge store, expanding each fact
/// through its first recorded derivation. Facts already on the path from the
/// root (recursive SCCs can hold cyclic support) become leaves, so the tree
/// is always finite even though the hypergraph is not acyclic.
DerivationTree BuildDerivationTree(const DerivationEdgeStore& store,
                                   const FactKey& fact);

/// Renders a tree, one node per line, indented; facts printed via `store`.
std::string DerivationTreeToString(const DerivationTree& tree,
                                   const ValueStore& values);

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_PROVENANCE_H_
