// Derivation trees (Definition 2.1 of the paper) via provenance recording.
//
// When enabled, the bottom-up engines record, for each IDB fact, the rule and
// the body facts of the first instantiation that derived it. From this a
// derivation tree can be reconstructed: EDB facts are leaves (clause (1) of
// Def. 2.1), rule instantiations are internal nodes (clause (2)).

#ifndef FACTLOG_EVAL_PROVENANCE_H_
#define FACTLOG_EVAL_PROVENANCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "eval/rule_eval.h"

namespace factlog::eval {

/// Why a fact holds: the index of the deriving rule and its body facts.
struct Justification {
  int rule_index = -1;
  std::vector<FactKey> premises;
};

/// First-derivation provenance for IDB facts.
class ProvenanceStore {
 public:
  /// Records a justification if the fact has none yet.
  void Record(const FactKey& fact, int rule_index,
              const std::vector<FactKey>& premises);

  /// Returns the justification, or nullptr for EDB facts / unknown facts.
  const Justification* Find(const FactKey& fact) const;

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<FactKey, Justification, FactKeyHash> map_;
};

/// A derivation tree per Definition 2.1. `rule_index` is -1 for leaves
/// (EDB facts or program facts with empty bodies).
struct DerivationTree {
  FactKey fact;
  int rule_index = -1;
  std::vector<DerivationTree> children;

  /// Height with single-node trees having height 1 (as in the paper's
  /// induction).
  size_t Height() const;
  size_t NodeCount() const;
};

/// Reconstructs the derivation tree rooted at `fact`. Facts without a
/// recorded justification become leaves.
DerivationTree BuildDerivationTree(const ProvenanceStore& store,
                                   const FactKey& fact);

/// Renders a tree, one node per line, indented; facts printed via `store`.
std::string DerivationTreeToString(const DerivationTree& tree,
                                   const ValueStore& values);

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_PROVENANCE_H_
