// Relations: duplicate-free sets of fixed-arity tuples with lazy hash indices.
//
// The paper's cost model (§1) bounds a recursive predicate's relation by
// n^k for arity k, which is exactly what these containers materialize; the
// benchmark harness reports `size()` to reproduce the O(n^2) vs O(n) fact
// counts of the worked examples.
//
// Thread safety: a Relation is not internally synchronized. The const
// methods (size, row, Contains, FindIndexed) are safe to call from many
// threads concurrently as long as no thread mutates; the exec layer freezes
// full/delta extents during a parallel region and pre-builds the indices the
// join will probe (EnsureIndex), so workers never fall onto the mutating
// Lookup path.

#ifndef FACTLOG_EVAL_RELATION_H_
#define FACTLOG_EVAL_RELATION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "eval/value.h"

namespace factlog::eval {

/// A set of tuples of ValueIds. Rows are stored in insertion order in a flat
/// array; hash indices over column subsets are built on first use and kept
/// incrementally up to date.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Pre-sizes row storage and the dedup table for `rows` total rows, so a
  /// bulk load (fixpoint merge, partition build) does not reallocate per row.
  void Reserve(size_t rows);

  /// Inserts a row (length == arity). Returns true when the row is new.
  bool Insert(const std::vector<ValueId>& row);
  bool Insert(std::vector<ValueId>&& row);
  bool Insert(const ValueId* row);

  bool Contains(const ValueId* row) const;

  /// Pointer to the idx-th row (arity() consecutive ValueIds).
  const ValueId* row(size_t idx) const { return &cells_[idx * arity_]; }

  /// Returns indices of rows whose `cols` project onto `key`. `cols` must be
  /// strictly increasing. Builds (and caches) the index on first use.
  const std::vector<uint32_t>& Lookup(const std::vector<int>& cols,
                                      const std::vector<ValueId>& key);

  /// Builds the index over `cols` now (no-op when already built). Call before
  /// sharing the relation read-only across threads.
  void EnsureIndex(const std::vector<int>& cols);

  /// Const lookup against an already-built index: the rows matching `key`,
  /// or nullptr when no index over `cols` exists (caller falls back to a
  /// scan). Never builds, so it is safe for concurrent readers.
  const std::vector<uint32_t>* FindIndexed(const std::vector<int>& cols,
                                           const std::vector<ValueId>& key)
      const;

  void Clear();

  /// Copies all rows of `other` into this relation (deduplicating). Returns
  /// the number of rows that were new.
  size_t Absorb(const Relation& other);

 private:
  struct VecHash {
    size_t operator()(const std::vector<ValueId>& v) const {
      size_t h = v.size();
      for (ValueId x : v) {
        h ^= std::hash<int32_t>()(x) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  struct Index {
    std::unordered_map<std::vector<ValueId>, std::vector<uint32_t>, VecHash>
        buckets;
  };

  size_t RowHash(const ValueId* row) const;
  void AddRowToIndex(const std::vector<int>& cols, Index* index, uint32_t r);

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<ValueId> cells_;
  // row-hash -> candidate row indices (deduplication).
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;
  // column list -> index.
  std::map<std::vector<int>, Index> indices_;
  // Scratch key for index maintenance; avoids an allocation per (row, index)
  // on the fixpoint's hot insert path.
  std::vector<ValueId> key_scratch_;
  static const std::vector<uint32_t> kEmptyRows;
};

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_RELATION_H_
