// Relations: duplicate-free sets of fixed-arity tuples with lazy hash indices.
//
// The paper's cost model (§1) bounds a recursive predicate's relation by
// n^k for arity k, which is exactly what these containers materialize; the
// benchmark harness reports `size()` to reproduce the O(n^2) vs O(n) fact
// counts of the worked examples.

#ifndef FACTLOG_EVAL_RELATION_H_
#define FACTLOG_EVAL_RELATION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "eval/value.h"

namespace factlog::eval {

/// A set of tuples of ValueIds. Rows are stored in insertion order in a flat
/// array; hash indices over column subsets are built on first use and kept
/// incrementally up to date.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Inserts a row (length == arity). Returns true when the row is new.
  bool Insert(const std::vector<ValueId>& row);
  bool Insert(const ValueId* row);

  bool Contains(const ValueId* row) const;

  /// Pointer to the idx-th row (arity() consecutive ValueIds).
  const ValueId* row(size_t idx) const { return &cells_[idx * arity_]; }

  /// Returns indices of rows whose `cols` project onto `key`. `cols` must be
  /// strictly increasing. Builds (and caches) the index on first use.
  const std::vector<uint32_t>& Lookup(const std::vector<int>& cols,
                                      const std::vector<ValueId>& key);

  void Clear();

  /// Moves all rows of `other` into this relation (deduplicating).
  void Absorb(const Relation& other);

 private:
  struct VecHash {
    size_t operator()(const std::vector<ValueId>& v) const {
      size_t h = v.size();
      for (ValueId x : v) {
        h ^= std::hash<int32_t>()(x) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  struct Index {
    std::unordered_map<std::vector<ValueId>, std::vector<uint32_t>, VecHash>
        buckets;
  };

  size_t RowHash(const ValueId* row) const;
  void AddRowToIndex(const std::vector<int>& cols, Index* index, uint32_t r);

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<ValueId> cells_;
  // row-hash -> candidate row indices (deduplication).
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;
  // column list -> index.
  std::map<std::vector<int>, Index> indices_;
  static const std::vector<uint32_t> kEmptyRows;
};

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_RELATION_H_
