// Relations: duplicate-free sets of fixed-arity tuples with lazy hash
// indices, optionally hash-partitioned into shards.
//
// The paper's cost model (§1) bounds a recursive predicate's relation by
// n^k for arity k, which is exactly what these containers materialize; the
// benchmark harness reports `size()` to reproduce the O(n^2) vs O(n) fact
// counts of the worked examples.
//
// Sharding: a Relation built with StorageOptions{num_shards > 1} routes every
// row by a hash of its partition columns (the join-key columns when the
// caller knows them, else column 0) to one of S inner shards. Each shard owns
// its own row store, dedup table, and lazy indices, and is itself a Relation
// (`shard(s)`), so the parallel fixpoint can consume delta shards in place as
// work partitions and merge buffers shard-to-shard under per-shard locks
// (MergeShard). The public API is unchanged: Insert/Contains route by hash,
// row(i)/size() preserve global insertion order through a location table, and
// Lookup/EnsureIndex/FindIndexed serve arbitrary column sets from combined
// outer indices over global row ids. A single-shard Relation (the default)
// keeps the original flat layout with no indirection.
//
// Thread safety: a Relation is not internally synchronized. The const
// methods (size, row, Contains, FindIndexed) are safe to call from many
// threads concurrently as long as no thread mutates; the exec layer freezes
// full/delta extents during a parallel region and pre-builds the indices the
// join will probe (EnsureIndex / EnsureShardIndexes), so workers never fall
// onto the mutating Lookup path. MergeShard calls for *distinct* shards are
// safe concurrently (each touches only its shard); after any MergeShard the
// relation is out of sync until the control thread calls SyncShards().
//
// Deletion (incremental maintenance, src/inc): Erase removes one row by
// swapping the last row into its slot, repairing the dedup table and every
// built index in place, so a flat relation (and each inner shard) stays fully
// consistent after any erase — at the cost of perturbing insertion order. On
// a sharded relation an erase invalidates the outer global row order and
// combined indices; the relation then behaves like after MergeShard: route-by
// -hash operations (Insert/Contains/Erase/AddSupport) keep working, but the
// caller must SyncShards() before global reads (row/Lookup/EnsureIndex).
// Relations additionally carry optional per-row support counts (the counting
// algorithm's derivation counters): EnableSupportCounts() zeroes them and
// AddSupport() adjusts them, erasing a row when its count drops to zero.
//
// Copy-on-write snapshots (the serving subsystem, src/serve): FrozenCopy()
// returns an immutable clone that *shares* the inner shards by shared_ptr
// and copies only the outer bookkeeping (location table, combined indices).
// Every mutating path detaches a shard before touching it when a frozen copy
// still references it (use_count > 1), so readers of the copy keep seeing
// the frozen rows while the live relation moves on — the cost of a
// single-row write against a snapshotted relation is one shard clone, not a
// full-relation copy. Snapshot consumers must treat the copy as deeply
// immutable (probe FindIndexed, never Lookup/EnsureIndex). version() is a
// monotone change counter so snapshot builders can reuse a frozen copy
// across epochs while the relation is untouched.

#ifndef FACTLOG_EVAL_RELATION_H_
#define FACTLOG_EVAL_RELATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "eval/value.h"

namespace factlog::storage {
struct TableSpace;
class PagedRowStore;
}  // namespace factlog::storage

namespace factlog::eval {

/// How a Relation stores its rows. Applied uniformly by Database to base
/// relations and by the evaluators to the IDB relations they create.
struct StorageOptions {
  /// Number of hash shards. 0 and 1 both mean the flat single-shard layout.
  size_t num_shards = 1;
  /// Columns the shard hash is computed over. Empty means column 0; columns
  /// outside the relation's arity are ignored. Partitioning on the columns a
  /// join will probe keeps same-key rows in one shard.
  std::vector<int> partition_cols;
};

/// A set of tuples of ValueIds. Rows are stored in insertion order; hash
/// indices over column subsets are built on first use and kept incrementally
/// up to date. With num_shards > 1 rows are hash-partitioned across shards.
class Relation {
 public:
  explicit Relation(size_t arity) : Relation(arity, StorageOptions{}) {}
  Relation(size_t arity, const StorageOptions& storage);
  ~Relation();

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Pre-sizes row storage and the dedup table for `rows` total rows, so a
  /// bulk load (fixpoint merge, shard build) does not reallocate per row.
  void Reserve(size_t rows);

  /// Inserts a row (length == arity), routed to its shard. Returns true when
  /// the row is new.
  bool Insert(const std::vector<ValueId>& row);
  bool Insert(std::vector<ValueId>&& row);
  bool Insert(const ValueId* row);

  bool Contains(const ValueId* row) const;

  /// Removes `row` if present (swap-remove; see the deletion notes above).
  /// Returns true when a row was removed. On a sharded relation the outer
  /// global order desyncs: call SyncShards() before the next global read.
  bool Erase(const ValueId* row);

  // ---- Support counts (incremental maintenance) ---------------------------

  /// Enables per-row support counts, (re)setting every existing row's count
  /// to zero — the caller rebuilds exact counts with AddSupport(+1) per
  /// derivation. Plain Insert gives new rows a count of 1 once enabled.
  void EnableSupportCounts();
  bool support_counts_enabled() const { return counts_enabled_; }

  /// Adds `delta` to the row's support count, inserting the row (at count
  /// `delta`) when absent and erasing it when the count drops to zero or
  /// below. Returns the new count (0 when the row was erased or when called
  /// with delta <= 0 on an absent row). Requires EnableSupportCounts().
  int64_t AddSupport(const ValueId* row, int64_t delta);

  /// The row's support count (0 when absent). Rows never touched by
  /// AddSupport report the count Insert gave them (1).
  int64_t SupportOf(const ValueId* row) const;

  /// Pointer to the idx-th row (arity() consecutive ValueIds), in global
  /// insertion order. Arity-0 relations have no cells; the returned pointer
  /// is only valid for reading arity() values. On a page-backed relation the
  /// pointer aims into a per-thread copy-out ring and stays valid only until
  /// the same thread's next few row() calls (see PagedRow).
  const ValueId* row(size_t idx) const {
    if (shards_.empty()) {
      if (paged_ != nullptr) return PagedRow(idx);
      return cells_.data() + idx * arity_;
    }
    uint64_t loc = row_locs_[idx];
    return shards_[loc >> 32]->row(static_cast<uint32_t>(loc));
  }

  /// Returns indices of rows whose `cols` project onto `key`. `cols` must be
  /// strictly increasing. Builds (and caches) the index on first use.
  const std::vector<uint32_t>& Lookup(const std::vector<int>& cols,
                                      const std::vector<ValueId>& key);

  /// Builds the combined index over `cols` now (no-op when already built).
  /// Call before sharing the relation read-only across threads.
  void EnsureIndex(const std::vector<int>& cols);

  /// Const lookup against an already-built index: the rows matching `key`,
  /// or nullptr when no index over `cols` exists (caller falls back to a
  /// scan). Never builds, so it is safe for concurrent readers.
  const std::vector<uint32_t>* FindIndexed(const std::vector<int>& cols,
                                           const std::vector<ValueId>& key)
      const;

  /// Whether the combined index over `cols` is already built (readers of a
  /// frozen copy will probe it instead of scanning).
  bool HasIndex(const std::vector<int>& cols) const {
    return indices_.count(cols) > 0;
  }

  /// Monotone change counter: bumped by every insert, erase, Clear, index
  /// build, and completed SyncShards. Shard-local merges (MergeShard) only
  /// surface here once SyncShards runs — by design, so concurrent merges on
  /// distinct shards never race the counter.
  uint64_t version() const { return version_; }

  /// An immutable snapshot of this relation: shares the inner shards
  /// (shared_ptr) and copies the outer bookkeeping. O(outer state), not
  /// O(rows), in sharded mode; a flat relation is deep-copied. The relation
  /// must be in sync (SyncShards). Later mutations of this relation detach
  /// any still-shared shard first, so the copy stays frozen.
  std::shared_ptr<Relation> FrozenCopy() const;

  void Clear();

  /// Copies all rows of `other` into this relation (deduplicating). Returns
  /// the number of rows that were new. Shard counts may differ (rows are
  /// re-routed); when both sides share the same shard layout the copy runs
  /// shard-to-shard without re-hashing.
  size_t Absorb(const Relation& other);

  // ---- Sharding -----------------------------------------------------------

  /// Number of shards (1 for the flat layout).
  size_t shard_count() const { return shards_.empty() ? 1 : shards_.size(); }

  /// The s-th shard as a self-contained single-shard Relation: its own rows,
  /// dedup table, and indices, with shard-local row ids. A flat relation is
  /// its own only shard.
  const Relation& shard(size_t s) const {
    return shards_.empty() ? *this : *shards_[s];
  }

  /// The normalized partition columns rows are routed by (empty iff arity 0).
  const std::vector<int>& partition_cols() const { return part_cols_; }

  /// The options that reproduce this relation's layout.
  StorageOptions storage_options() const {
    return StorageOptions{shard_count(), part_cols_};
  }

  /// The shard `row` routes to (always 0 for a flat relation). Deterministic
  /// across Relation instances with equal partition_cols/shard_count, so
  /// identically-configured relations agree on every row's home shard.
  size_t ShardOf(const ValueId* row) const;

  /// Builds the `cols` index inside every shard (shard-local row ids), so
  /// each shard(s) can serve FindIndexed as a standalone join input. On a
  /// flat relation this is EnsureIndex.
  void EnsureShardIndexes(const std::vector<int>& cols);

  /// Absorbs `rows` (whose rows must all route to shard `s`; typically the
  /// s-th shard of an identically-configured buffer) into shard `s` only.
  /// Concurrent calls for distinct shards do not contend, which is the merge
  /// path of the parallel fixpoint. Leaves the outer relation out of sync —
  /// size()/row()/EnsureIndex are unreliable until SyncShards() runs. On a
  /// flat relation this is Absorb (and needs no sync).
  void MergeShard(size_t s, const Relation& rows);

  /// Rebuilds the global row order and drops stale combined indices after
  /// MergeShard or Erase calls. No-op when already in sync (cheap: compares
  /// row counts and checks the erase flag). Must be called from a single
  /// thread with no concurrent access.
  void SyncShards();

  // ---- Disk-backed storage (src/storage) ----------------------------------
  //
  // A relation can move its row store onto slotted pages in a shared
  // TableSpace (page file + buffer pool). Dedup tables, indices, and support
  // counts stay in RAM; only the cells migrate. Sharded relations page each
  // inner shard independently — the shard is the unit of paging. Frozen
  // copies of a paged relation materialize back to RAM (snapshots are
  // read-hot and short-lived; pages belong to the live relation).

  /// Moves this relation's rows (all shards) onto pages in `space`. Existing
  /// rows are appended to fresh pages; RAM cells are released. Returns false
  /// (leaving the relation in RAM) when rows cannot be paged: arity 0, a row
  /// wider than a page, support counts enabled, or page I/O failure.
  bool AttachPagedStore(std::shared_ptr<storage::TableSpace> space);

  /// Whether any shard of this relation is page-backed.
  bool is_paged() const;

  /// Copies every paged shard's rows back into RAM cells and drops the page
  /// store (freeing its pages as pending). No-op for RAM relations.
  void MaterializeToRam();

  /// Restores this (empty) relation from checkpointed page chains: one chain
  /// per shard, all pages sealed, dedup tables rebuilt by page scan. `chains`
  /// and `row_counts` must have one entry per shard.
  Status AdoptPagedChains(std::shared_ptr<storage::TableSpace> space,
                          const std::vector<std::vector<uint32_t>>& chains,
                          const std::vector<uint64_t>& row_counts);

  /// Marks every page of every paged shard sealed (immutable until the next
  /// copy-on-write). Called after a successful checkpoint: the pages are now
  /// referenced by the durable meta file.
  void SealPages();

  /// Per-shard page chains and row counts for checkpointing. A shard that is
  /// not page-backed contributes an empty chain (its rows go inline in the
  /// meta file).
  void DumpPagedChains(std::vector<std::vector<uint32_t>>* chains,
                       std::vector<uint64_t>* rows) const;

 private:
  struct VecHash {
    size_t operator()(const std::vector<ValueId>& v) const {
      size_t h = v.size();
      for (ValueId x : v) {
        h ^= std::hash<int32_t>()(x) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  struct Index {
    std::unordered_map<std::vector<ValueId>, std::vector<uint32_t>, VecHash>
        buckets;
  };

  /// Memberwise copy: shares the shard shared_ptrs, copies everything else.
  /// A paged source is materialized into the clone's RAM cells (the page
  /// store stays with the original). Private — only FrozenCopy and
  /// DetachShard may clone, and the clones are immutable (snapshots) or
  /// immediately owned (detached shards).
  Relation(const Relation&);
  Relation& operator=(const Relation&) = delete;

  /// Copy-on-write: clones shard `s` when a frozen copy still shares it.
  /// A reader's reference count can only *decrease* concurrently (snapshots
  /// are pinned whole, never re-shared per shard), so a stale high count
  /// merely causes an unnecessary clone — never a missed one.
  void DetachShard(size_t s);

  size_t RowHash(const ValueId* row) const;
  void AddRowToIndex(const std::vector<int>& cols, Index* index, uint32_t r);
  void RemoveRowFromIndexes(uint32_t r);
  void RenumberRowInIndexes(uint32_t from, uint32_t to);
  bool InsertFlat(const ValueId* row);
  bool InsertIntoShard(size_t s, const ValueId* row);
  bool EraseFlat(const ValueId* row);
  /// Row id of `row` in flat storage, or -1 when absent.
  int64_t FindRowFlat(const ValueId* row) const;
  /// Bookkeeping after an inner shard grew or shrank by one row.
  void NoteShardInsert(size_t s);
  void NoteShardErase();

  // ---- Paged-store internals ----------------------------------------------
  /// Copies the idx-th paged row into a slot of a per-thread ring and returns
  /// it. The ring is deep enough for every concurrent row() pointer the
  /// evaluators hold (they consume each row before fetching the next); the
  /// probe loops that hold a caller pointer across many row() calls stabilize
  /// it first (insert_scratch_/erase_scratch_, thread-local probe buffers).
  const ValueId* PagedRow(size_t idx) const;
  /// Appends one row to flat storage (pages when attached, cells_ otherwise).
  /// A page I/O failure falls back to RAM with a warning — availability over
  /// paging.
  void AppendRowStorage(const ValueId* row);
  /// Overwrites flat row r (the erase swap). `src` must not point into the
  /// copy-out ring (callers stabilize it first).
  void WriteRowStorage(uint32_t r, const ValueId* src);
  /// Drops the last flat row.
  void PopBackStorage();
  /// Rebuilds dedup_ from scratch by scanning every row (after adopting
  /// checkpointed chains).
  void RebuildDedup();

  size_t arity_;
  size_t num_rows_ = 0;
  // Flat storage (single-shard mode; also each inner shard).
  std::vector<ValueId> cells_;
  // row-hash -> candidate row indices (deduplication).
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;
  // column list -> combined index (global row ids in sharded mode).
  std::map<std::vector<int>, Index> indices_;
  // Scratch key for index maintenance; avoids an allocation per (row, index)
  // on the fixpoint's hot insert path.
  std::vector<ValueId> key_scratch_;
  // Per-row support counts (flat mode / each inner shard), parallel to the
  // row store; maintained only once EnableSupportCounts() ran.
  bool counts_enabled_ = false;
  std::vector<int64_t> counts_;
  // Set by Erase on a sharded relation: the global row order is stale even
  // though the row-count comparison in SyncShards balances out.
  bool needs_sync_ = false;
  // Monotone change counter (see version()).
  uint64_t version_ = 0;
  // Sharded storage: inner single-shard relations plus the global insertion
  // order as packed (shard << 32 | local) locations. shared_ptr for the
  // copy-on-write snapshot scheme: frozen copies share shards until a
  // mutation detaches them.
  std::vector<int> part_cols_;
  std::vector<std::shared_ptr<Relation>> shards_;
  std::vector<uint64_t> row_locs_;
  // Page-backed row store (flat mode / each inner shard); null = RAM cells_.
  std::unique_ptr<storage::PagedRowStore> paged_;
  // Stabilization buffers: a caller's row pointer may aim into the copy-out
  // ring of a *paged* relation (e.g. Absorb feeding src.row(r) to Insert);
  // the mutating probe loops copy it here before their own row() calls can
  // recycle the slot.
  std::vector<ValueId> insert_scratch_;
  std::vector<ValueId> erase_scratch_;
  std::vector<ValueId> move_scratch_;
  static const std::vector<uint32_t> kEmptyRows;
};

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_RELATION_H_
