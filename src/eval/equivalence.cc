#include "eval/equivalence.h"

#include <random>
#include <set>

namespace factlog::eval {

namespace {

// Collects the integer and symbolic constants of a term.
void CollectConstants(const ast::Term& t, std::set<int64_t>* ints,
                      std::set<std::string>* syms) {
  switch (t.kind()) {
    case ast::Term::Kind::kVariable:
      return;
    case ast::Term::Kind::kInt:
      ints->insert(t.int_value());
      return;
    case ast::Term::Kind::kSymbol:
      syms->insert(t.symbol());
      return;
    case ast::Term::Kind::kCompound:
      for (const ast::Term& a : t.args()) CollectConstants(a, ints, syms);
      return;
  }
}

void CollectConstants(const ast::Program& p, const ast::Atom& q,
                      std::set<int64_t>* ints, std::set<std::string>* syms) {
  auto from_atom = [&](const ast::Atom& a) {
    for (const ast::Term& t : a.args()) CollectConstants(t, ints, syms);
  };
  for (const ast::Rule& r : p.rules()) {
    from_atom(r.head());
    for (const ast::Atom& b : r.body()) from_atom(b);
  }
  from_atom(q);
}

std::vector<std::string> RenderAnswers(const AnswerSet& answers,
                                       const ValueStore& values) {
  std::vector<std::string> out;
  out.reserve(answers.rows.size());
  for (const auto& row : answers.rows) {
    std::string s = "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ", ";
      s += values.ToString(row[i]);
    }
    s += ")";
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::string Counterexample::ToString() const {
  std::string out = "counterexample at trial " + std::to_string(trial) + "\nEDB:\n";
  for (const std::string& f : edb_facts) out += "  " + f + "\n";
  out += "program 1 answers:\n";
  for (const std::string& a : answers1) out += "  " + a + "\n";
  out += "program 2 answers:\n";
  for (const std::string& a : answers2) out += "  " + a + "\n";
  return out;
}

Result<std::optional<Counterexample>> FindCounterexample(
    const ast::Program& p1, const ast::Atom& q1, const ast::Program& p2,
    const ast::Atom& q2, const DiffTestOptions& opts) {
  // Schema: union of the EDB predicates of both programs.
  std::map<std::string, size_t> schema = p1.EdbPredicates();
  for (const auto& [name, arity] : p2.EdbPredicates()) {
    schema.emplace(name, arity);
  }

  // Constant pool for tuple values.
  std::set<int64_t> ints;
  std::set<std::string> syms;
  CollectConstants(p1, q1, &ints, &syms);
  CollectConstants(p2, q2, &ints, &syms);
  for (int i = 1; i <= opts.domain_size; ++i) ints.insert(i);

  std::vector<ast::Term> pool;
  for (int64_t i : ints) pool.push_back(ast::Term::Int(i));
  for (const std::string& s : syms) pool.push_back(ast::Term::Sym(s));

  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<size_t> pick_value(0, pool.size() - 1);
  std::uniform_int_distribution<int> pick_count(0, opts.max_tuples);

  for (int trial = 0; trial < opts.trials; ++trial) {
    Database db;
    std::vector<std::string> edb_facts;
    for (const auto& [name, arity] : schema) {
      int count = pick_count(rng);
      for (int t = 0; t < count; ++t) {
        std::vector<ast::Term> args;
        args.reserve(arity);
        for (size_t i = 0; i < arity; ++i) args.push_back(pool[pick_value(rng)]);
        ast::Atom fact(name, std::move(args));
        FACTLOG_RETURN_IF_ERROR(db.AddFact(fact));
        edb_facts.push_back(fact.ToString() + ".");
      }
    }

    FACTLOG_ASSIGN_OR_RETURN(AnswerSet a1,
                             EvaluateQuery(p1, q1, &db, opts.eval));
    FACTLOG_ASSIGN_OR_RETURN(AnswerSet a2,
                             EvaluateQuery(p2, q2, &db, opts.eval));
    if (a1.rows != a2.rows) {
      Counterexample ce;
      ce.trial = trial;
      ce.edb_facts = std::move(edb_facts);
      ce.answers1 = RenderAnswers(a1, db.store());
      ce.answers2 = RenderAnswers(a2, db.store());
      return std::optional<Counterexample>(std::move(ce));
    }
  }
  return std::optional<Counterexample>();
}

Status CheckEquivalent(const ast::Program& p1, const ast::Atom& q1,
                       const ast::Program& p2, const ast::Atom& q2,
                       const DiffTestOptions& opts) {
  FACTLOG_ASSIGN_OR_RETURN(std::optional<Counterexample> ce,
                           FindCounterexample(p1, q1, p2, q2, opts));
  if (ce.has_value()) {
    return Status::FailedPrecondition("programs differ: " + ce->ToString());
  }
  return Status::OK();
}

}  // namespace factlog::eval
