#include "eval/rule_eval.h"

#include <algorithm>
#include <map>

#include "ast/special_predicates.h"

namespace factlog::eval {

namespace {

Result<Pat> CompileTerm(const ast::Term& t, std::map<std::string, int>* vars,
                        std::vector<std::string>* var_names,
                        ValueStore* store) {
  Pat p;
  switch (t.kind()) {
    case ast::Term::Kind::kVariable: {
      p.kind = Pat::Kind::kVar;
      auto [it, inserted] =
          vars->emplace(t.var_name(), static_cast<int>(var_names->size()));
      if (inserted) var_names->push_back(t.var_name());
      p.var = it->second;
      return p;
    }
    case ast::Term::Kind::kInt:
      p.kind = Pat::Kind::kConst;
      p.const_id = store->InternInt(t.int_value());
      return p;
    case ast::Term::Kind::kSymbol:
      p.kind = Pat::Kind::kConst;
      p.const_id = store->InternSym(t.symbol());
      return p;
    case ast::Term::Kind::kCompound: {
      // A ground compound compiles to a constant; otherwise to an kApp
      // pattern that destructures at match time.
      if (t.IsGround()) {
        FACTLOG_ASSIGN_OR_RETURN(ValueId v, store->FromTerm(t));
        p.kind = Pat::Kind::kConst;
        p.const_id = v;
        return p;
      }
      p.kind = Pat::Kind::kApp;
      p.functor = t.symbol();
      p.children.reserve(t.args().size());
      for (const ast::Term& a : t.args()) {
        FACTLOG_ASSIGN_OR_RETURN(Pat c, CompileTerm(a, vars, var_names, store));
        p.children.push_back(std::move(c));
      }
      return p;
    }
  }
  return Status::Internal("unknown term kind");
}

Result<CompiledAtom> CompileAtom(const ast::Atom& a,
                                 std::map<std::string, int>* vars,
                                 std::vector<std::string>* var_names,
                                 ValueStore* store) {
  CompiledAtom out;
  out.predicate = a.predicate();
  if (a.predicate() == ast::kEqualPredicate) {
    if (a.arity() != 2) {
      return Status::Invalid("equal/2 used with arity " +
                             std::to_string(a.arity()));
    }
    out.kind = LitKind::kEqual;
  } else if (a.predicate() == ast::kAffinePredicate) {
    if (a.arity() != 4) {
      return Status::Invalid("affine/4 used with arity " +
                             std::to_string(a.arity()));
    }
    out.kind = LitKind::kAffine;
  } else if (a.predicate() == ast::kGeqPredicate) {
    if (a.arity() != 2) {
      return Status::Invalid("geq/2 used with arity " +
                             std::to_string(a.arity()));
    }
    out.kind = LitKind::kGeq;
  } else {
    out.kind = LitKind::kRelation;
  }
  out.args.reserve(a.arity());
  for (const ast::Term& t : a.args()) {
    FACTLOG_ASSIGN_OR_RETURN(Pat p, CompileTerm(t, vars, var_names, store));
    out.args.push_back(std::move(p));
  }
  return out;
}

}  // namespace

Result<CompiledRule> CompiledRule::Compile(const ast::Rule& rule,
                                           ValueStore* store,
                                           const plan::JoinPlan* plan) {
  CompiledRule out;
  out.source_ = rule;
  // The compiled body order: the plan's join order when one is given (and
  // structurally matches), source order otherwise.
  out.source_pos_.reserve(rule.body().size());
  if (plan != nullptr && plan->order.size() == rule.body().size()) {
    std::vector<bool> seen(rule.body().size(), false);
    for (const plan::LiteralPlan& lp : plan->order) {
      if (lp.body_index >= rule.body().size() || seen[lp.body_index]) {
        out.source_pos_.clear();
        break;
      }
      seen[lp.body_index] = true;
      out.source_pos_.push_back(lp.body_index);
    }
  }
  if (out.source_pos_.size() != rule.body().size()) {
    out.source_pos_.clear();
    for (size_t i = 0; i < rule.body().size(); ++i) out.source_pos_.push_back(i);
  }
  std::map<std::string, int> vars;
  // Compile the body first so variable indices follow binding order; the
  // head only reuses body variables in range-restricted rules.
  for (size_t src : out.source_pos_) {
    FACTLOG_ASSIGN_OR_RETURN(
        CompiledAtom ca,
        CompileAtom(rule.body()[src], &vars, &out.var_names_, store));
    out.body_.push_back(std::move(ca));
  }
  FACTLOG_ASSIGN_OR_RETURN(
      out.head_, CompileAtom(rule.head(), &vars, &out.var_names_, store));
  // Premises are reported in source order: collect the relation literals'
  // compiled indices and sort them by their source position.
  for (size_t k = 0; k < out.body_.size(); ++k) {
    if (out.body_[k].kind == LitKind::kRelation) out.premise_order_.push_back(k);
  }
  std::sort(out.premise_order_.begin(), out.premise_order_.end(),
            [&out](size_t a, size_t b) {
              return out.source_pos_[a] < out.source_pos_[b];
            });
  return out;
}

namespace {

// Mutable join state shared by the recursive enumeration.
struct JoinContext {
  const CompiledRule* rule;
  ValueStore* store;
  const std::vector<RelationView>* views;
  bool track_premises;
  JoinStats* stats;
  const HeadSink* sink;

  std::vector<ValueId> env;       // var index -> value or kInvalidValue
  std::vector<int> trail;         // bound var indices, for unwinding
  // Premise tracking: the current row of each relation literal, indexed by
  // compiled body position (valid for the literals on the active join path),
  // and the source-ordered premise list handed to the sink.
  std::vector<FactKey> premise_slots;
  std::vector<FactKey> premises;
  Status status = Status::OK();
  bool keep_going = true;

  // Reused across instantiations so the inner loop does not allocate per
  // row: the head row under construction, and per-literal probe key buffers.
  std::vector<ValueId> head_row;
  std::vector<std::vector<int>> cols_scratch;
  std::vector<std::vector<ValueId>> key_scratch;
};

// Attempts to fully evaluate `p` under the current environment.
std::optional<ValueId> TryBuild(const Pat& p, JoinContext* ctx) {
  switch (p.kind) {
    case Pat::Kind::kConst:
      return p.const_id;
    case Pat::Kind::kVar: {
      ValueId v = ctx->env[p.var];
      if (v == kInvalidValue) return std::nullopt;
      return v;
    }
    case Pat::Kind::kApp: {
      std::vector<ValueId> children;
      children.reserve(p.children.size());
      for (const Pat& c : p.children) {
        std::optional<ValueId> v = TryBuild(c, ctx);
        if (!v.has_value()) return std::nullopt;
        children.push_back(*v);
      }
      return ctx->store->InternApp(p.functor, std::move(children));
    }
  }
  return std::nullopt;
}

// Matches value `v` against pattern `p`, binding variables (recorded on the
// trail). Returns false on mismatch; the caller unwinds the trail.
bool MatchPat(const Pat& p, ValueId v, JoinContext* ctx) {
  switch (p.kind) {
    case Pat::Kind::kConst:
      return p.const_id == v;
    case Pat::Kind::kVar: {
      ValueId cur = ctx->env[p.var];
      if (cur != kInvalidValue) return cur == v;
      ctx->env[p.var] = v;
      ctx->trail.push_back(p.var);
      return true;
    }
    case Pat::Kind::kApp: {
      const ValueStore& s = *ctx->store;
      if (!s.IsCompound(v)) return false;
      if (s.symbol(v) != p.functor) return false;
      if (s.NumChildren(v) != p.children.size()) return false;
      for (size_t i = 0; i < p.children.size(); ++i) {
        if (!MatchPat(p.children[i], s.Child(v, i), ctx)) return false;
      }
      return true;
    }
  }
  return false;
}

void UnwindTrail(JoinContext* ctx, size_t mark) {
  while (ctx->trail.size() > mark) {
    ctx->env[ctx->trail.back()] = kInvalidValue;
    ctx->trail.pop_back();
  }
}

void EnumerateFrom(size_t lit_index, JoinContext* ctx);

void EmitHead(JoinContext* ctx) {
  const CompiledAtom& head = ctx->rule->head();
  std::vector<ValueId>& row = ctx->head_row;
  row.clear();
  for (const Pat& p : head.args) {
    std::optional<ValueId> v = TryBuild(p, ctx);
    if (!v.has_value()) {
      ctx->status = Status::Internal(
          "unbound variable while constructing head of rule: " +
          ctx->rule->source().ToString());
      ctx->keep_going = false;
      return;
    }
    row.push_back(*v);
  }
  ++ctx->stats->instantiations;
  const std::vector<FactKey>* premises = nullptr;
  if (ctx->track_premises) {
    // Emit premises in source body order (the compiled body may be a
    // planned permutation).
    ctx->premises.clear();
    for (size_t k : ctx->rule->premise_order()) {
      ctx->premises.push_back(ctx->premise_slots[k]);
    }
    premises = &ctx->premises;
  }
  bool cont = (*ctx->sink)(row, premises);
  if (!cont) ctx->keep_going = false;
}

void EnumerateBuiltinEqual(size_t lit_index, const CompiledAtom& lit,
                           JoinContext* ctx) {
  std::optional<ValueId> lhs = TryBuild(lit.args[0], ctx);
  std::optional<ValueId> rhs = TryBuild(lit.args[1], ctx);
  size_t mark = ctx->trail.size();
  bool ok;
  if (lhs.has_value() && rhs.has_value()) {
    ok = (*lhs == *rhs);
  } else if (lhs.has_value()) {
    ok = MatchPat(lit.args[1], *lhs, ctx);
  } else if (rhs.has_value()) {
    ok = MatchPat(lit.args[0], *rhs, ctx);
  } else {
    ctx->status = Status::Invalid(
        "equal/2 with both sides unbound in rule: " +
        ctx->rule->source().ToString());
    ctx->keep_going = false;
    return;
  }
  if (ok) EnumerateFrom(lit_index + 1, ctx);
  UnwindTrail(ctx, mark);
}

void EnumerateBuiltinAffine(size_t lit_index, const CompiledAtom& lit,
                            JoinContext* ctx) {
  // affine(X, A, B, Z): Z = A*X + B.
  std::optional<ValueId> a_id = TryBuild(lit.args[1], ctx);
  std::optional<ValueId> b_id = TryBuild(lit.args[2], ctx);
  const ValueStore& s = *ctx->store;
  if (!a_id.has_value() || !b_id.has_value() || !s.IsInt(*a_id) ||
      !s.IsInt(*b_id)) {
    ctx->status = Status::Invalid(
        "affine/4 requires ground integer coefficients in rule: " +
        ctx->rule->source().ToString());
    ctx->keep_going = false;
    return;
  }
  int64_t a = s.int_value(*a_id);
  int64_t b = s.int_value(*b_id);
  std::optional<ValueId> x_id = TryBuild(lit.args[0], ctx);
  size_t mark = ctx->trail.size();
  if (x_id.has_value()) {
    if (!s.IsInt(*x_id)) return;
    int64_t z = a * s.int_value(*x_id) + b;
    if (MatchPat(lit.args[3], ctx->store->InternInt(z), ctx)) {
      EnumerateFrom(lit_index + 1, ctx);
    }
    UnwindTrail(ctx, mark);
    return;
  }
  std::optional<ValueId> z_id = TryBuild(lit.args[3], ctx);
  if (z_id.has_value()) {
    if (!s.IsInt(*z_id) || a == 0) return;
    int64_t diff = s.int_value(*z_id) - b;
    if (diff % a != 0) return;
    if (MatchPat(lit.args[0], ctx->store->InternInt(diff / a), ctx)) {
      EnumerateFrom(lit_index + 1, ctx);
    }
    UnwindTrail(ctx, mark);
    return;
  }
  ctx->status = Status::Invalid(
      "affine/4 with both X and Z unbound in rule: " +
      ctx->rule->source().ToString());
  ctx->keep_going = false;
}

void EnumerateBuiltinGeq(size_t lit_index, const CompiledAtom& lit,
                         JoinContext* ctx) {
  std::optional<ValueId> lhs = TryBuild(lit.args[0], ctx);
  std::optional<ValueId> rhs = TryBuild(lit.args[1], ctx);
  const ValueStore& s = *ctx->store;
  if (!lhs.has_value() || !rhs.has_value()) {
    ctx->status = Status::Invalid("geq/2 requires both arguments bound in "
                                  "rule: " + ctx->rule->source().ToString());
    ctx->keep_going = false;
    return;
  }
  if (!s.IsInt(*lhs) || !s.IsInt(*rhs)) return;  // non-integers: no match
  if (s.int_value(*lhs) >= s.int_value(*rhs)) {
    EnumerateFrom(lit_index + 1, ctx);
  }
}

void EnumerateRelation(size_t lit_index, const CompiledAtom& lit,
                       JoinContext* ctx) {
  const RelationView& view = (*ctx->views)[lit_index];
  ++ctx->stats->lit_probes[lit_index];

  // Determine which argument positions are ground under the current
  // environment; they form the index key. The buffers are per-literal
  // scratch (enumeration visits each depth with the previous contents dead).
  std::vector<int>& cols = ctx->cols_scratch[lit_index];
  std::vector<ValueId>& key = ctx->key_scratch[lit_index];
  cols.clear();
  key.clear();
  for (size_t i = 0; i < lit.args.size(); ++i) {
    std::optional<ValueId> v = TryBuild(lit.args[i], ctx);
    if (v.has_value()) {
      cols.push_back(static_cast<int>(i));
      key.push_back(*v);
    }
  }

  Relation* rels[3] = {view.first, view.second, view.third};
  for (Relation* rel : rels) {
    if (rel == nullptr || rel->empty()) continue;
    if (!ctx->keep_going) return;

    auto try_row = [&](const ValueId* row) {
      size_t mark = ctx->trail.size();
      bool ok = true;
      for (size_t i = 0; i < lit.args.size(); ++i) {
        if (!MatchPat(lit.args[i], row[i], ctx)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        ++ctx->stats->rows_matched;
        ++ctx->stats->lit_matched[lit_index];
        if (ctx->track_premises) {
          FactKey& fk = ctx->premise_slots[lit_index];
          fk.predicate = lit.predicate;
          fk.row.assign(row, row + lit.args.size());
        }
        EnumerateFrom(lit_index + 1, ctx);
      }
      UnwindTrail(ctx, mark);
    };

    auto scan_all = [&] {
      for (size_t r = 0; r < rel->size() && ctx->keep_going; ++r) {
        try_row(rel->row(r));
      }
    };

    if (cols.empty()) {
      scan_all();
    } else if (view.shared) {
      // Read-only view: probe the pre-built index; fall back to a scan
      // (MatchPat filters) rather than build one under concurrent readers.
      const std::vector<uint32_t>* rows = rel->FindIndexed(cols, key);
      if (rows == nullptr) {
        scan_all();
      } else {
        for (uint32_t r : *rows) {
          if (!ctx->keep_going) break;
          try_row(rel->row(r));
        }
      }
    } else {
      const std::vector<uint32_t>& rows = rel->Lookup(cols, key);
      for (uint32_t r : rows) {
        if (!ctx->keep_going) break;
        try_row(rel->row(r));
      }
    }
  }
}

void EnumerateFrom(size_t lit_index, JoinContext* ctx) {
  if (!ctx->keep_going) return;
  const auto& body = ctx->rule->body();
  if (lit_index == body.size()) {
    EmitHead(ctx);
    return;
  }
  const CompiledAtom& lit = body[lit_index];
  switch (lit.kind) {
    case LitKind::kEqual:
      EnumerateBuiltinEqual(lit_index, lit, ctx);
      return;
    case LitKind::kAffine:
      EnumerateBuiltinAffine(lit_index, lit, ctx);
      return;
    case LitKind::kGeq:
      EnumerateBuiltinGeq(lit_index, lit, ctx);
      return;
    case LitKind::kRelation:
      EnumerateRelation(lit_index, lit, ctx);
      return;
  }
}

}  // namespace

Status EnumerateRule(const CompiledRule& rule, ValueStore* store,
                     const std::vector<RelationView>& views,
                     bool track_premises, JoinStats* stats,
                     const HeadSink& sink) {
  if (views.size() != rule.body().size()) {
    return Status::Invalid("views size does not match body size");
  }
  JoinContext ctx;
  ctx.rule = &rule;
  ctx.store = store;
  ctx.views = &views;
  ctx.track_premises = track_premises;
  ctx.stats = stats;
  ctx.sink = &sink;
  ctx.env.assign(rule.num_vars(), kInvalidValue);
  // Callers accumulate one JoinStats across many Enumerate calls; grow the
  // per-literal counters to this rule's body without dropping prior counts.
  if (stats->lit_probes.size() < rule.body().size()) {
    stats->lit_probes.resize(rule.body().size(), 0);
    stats->lit_matched.resize(rule.body().size(), 0);
  }
  if (track_premises) ctx.premise_slots.resize(rule.body().size());
  ctx.head_row.reserve(rule.head().args.size());
  ctx.cols_scratch.resize(rule.body().size());
  ctx.key_scratch.resize(rule.body().size());
  EnumerateFrom(0, &ctx);
  return ctx.status;
}

namespace {

bool PatGroundUnder(const Pat& p, const std::vector<char>& bound) {
  switch (p.kind) {
    case Pat::Kind::kConst:
      return true;
    case Pat::Kind::kVar:
      return bound[p.var] != 0;
    case Pat::Kind::kApp:
      for (const Pat& c : p.children) {
        if (!PatGroundUnder(c, bound)) return false;
      }
      return true;
  }
  return false;
}

void BindPatVars(const Pat& p, std::vector<char>* bound) {
  switch (p.kind) {
    case Pat::Kind::kConst:
      return;
    case Pat::Kind::kVar:
      (*bound)[p.var] = 1;
      return;
    case Pat::Kind::kApp:
      for (const Pat& c : p.children) BindPatVars(c, bound);
      return;
  }
}

}  // namespace

std::vector<std::vector<int>> StaticIndexCols(const CompiledRule& rule) {
  std::vector<char> bound(rule.num_vars(), 0);
  std::vector<std::vector<int>> out(rule.body().size());
  for (size_t i = 0; i < rule.body().size(); ++i) {
    const CompiledAtom& lit = rule.body()[i];
    switch (lit.kind) {
      case LitKind::kRelation:
        for (size_t a = 0; a < lit.args.size(); ++a) {
          if (PatGroundUnder(lit.args[a], bound)) {
            out[i].push_back(static_cast<int>(a));
          }
        }
        // A successful match grounds every variable of the literal.
        for (const Pat& p : lit.args) BindPatVars(p, &bound);
        break;
      case LitKind::kEqual:
        // The ground side is built, the other side matched (and bound).
        if (PatGroundUnder(lit.args[0], bound)) {
          BindPatVars(lit.args[1], &bound);
        } else if (PatGroundUnder(lit.args[1], bound)) {
          BindPatVars(lit.args[0], &bound);
        }
        break;
      case LitKind::kAffine:
        // affine(X, A, B, Z): a bound X computes Z, a bound Z computes X.
        if (PatGroundUnder(lit.args[0], bound)) {
          BindPatVars(lit.args[3], &bound);
        } else if (PatGroundUnder(lit.args[3], bound)) {
          BindPatVars(lit.args[0], &bound);
        }
        break;
      case LitKind::kGeq:
        // Pure test; binds nothing.
        break;
    }
  }
  return out;
}

}  // namespace factlog::eval
