// Randomized differential testing of program equivalence.
//
// Factorability is undecidable in general (Theorem 3.1), so beyond the
// paper's sufficient conditions this module provides the complementary
// falsifier: evaluate two (program, query) pairs over many random EDBs and
// report the first EDB on which their answers differ. The paper's own
// counterexamples (Theorem 3.1's EDB, the two violation EDBs of Example 4.3)
// are instances this search rediscovers.

#ifndef FACTLOG_EVAL_EQUIVALENCE_H_
#define FACTLOG_EVAL_EQUIVALENCE_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/program.h"
#include "common/status.h"
#include "eval/seminaive.h"

namespace factlog::eval {

struct DiffTestOptions {
  int trials = 200;
  /// Values are drawn from {1, ..., domain_size} plus all constants
  /// mentioned in either program or query.
  int domain_size = 4;
  /// Per-relation tuple count is drawn uniformly from [0, max_tuples].
  int max_tuples = 7;
  uint64_t seed = 0xfac70914;
  EvalOptions eval;
};

/// A witness that two programs disagree.
struct Counterexample {
  int trial = -1;
  /// The EDB, rendered as ground facts.
  std::vector<std::string> edb_facts;
  /// Rendered answer tuples of each program.
  std::vector<std::string> answers1;
  std::vector<std::string> answers2;

  std::string ToString() const;
};

/// Searches for an EDB on which the two (program, query) pairs disagree.
/// Returns nullopt when all trials agree. Trials where either evaluation
/// exhausts its budget are counted as failures (kResourceExhausted).
Result<std::optional<Counterexample>> FindCounterexample(
    const ast::Program& p1, const ast::Atom& q1, const ast::Program& p2,
    const ast::Atom& q2, const DiffTestOptions& opts = DiffTestOptions());

/// Convenience wrapper: OK when no counterexample is found;
/// kFailedPrecondition carrying the rendered counterexample otherwise.
Status CheckEquivalent(const ast::Program& p1, const ast::Atom& q1,
                       const ast::Program& p2, const ast::Atom& q2,
                       const DiffTestOptions& opts = DiffTestOptions());

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_EQUIVALENCE_H_
