#include "eval/value.h"

namespace factlog::eval {

int32_t ValueStore::InternSymbolNameLocked(const std::string& name) {
  auto it = symbol_ids_.find(name);
  if (it != symbol_ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(symbols_.push_back(name));
  symbol_ids_.emplace(name, id);
  return id;
}

ValueId ValueStore::InternInt(int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = int_ids_.find(value);
  if (it != int_ids_.end()) return it->second;
  Node n;
  n.kind = Kind::kInt;
  n.int_value = value;
  ValueId id = static_cast<ValueId>(nodes_.push_back(n));
  int_ids_.emplace(value, id);
  return id;
}

ValueId ValueStore::InternSym(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  int32_t sym = InternSymbolNameLocked(name);
  auto it = sym_value_ids_.find(sym);
  if (it != sym_value_ids_.end()) return it->second;
  Node n;
  n.kind = Kind::kSymbol;
  n.symbol = sym;
  ValueId id = static_cast<ValueId>(nodes_.push_back(n));
  sym_value_ids_.emplace(sym, id);
  return id;
}

ValueId ValueStore::InternApp(const std::string& functor,
                              std::vector<ValueId> children) {
  std::lock_guard<std::mutex> lock(mu_);
  AppKey key{InternSymbolNameLocked(functor), std::move(children)};
  auto it = app_ids_.find(key);
  if (it != app_ids_.end()) return it->second;
  Node n;
  n.kind = Kind::kCompound;
  n.symbol = key.symbol;
  n.child_begin = static_cast<uint32_t>(children_.size());
  n.child_count = static_cast<uint32_t>(key.children.size());
  for (ValueId c : key.children) children_.push_back(c);
  ValueId id = static_cast<ValueId>(nodes_.push_back(n));
  app_ids_.emplace(std::move(key), id);
  return id;
}

Result<ValueId> ValueStore::FromTerm(const ast::Term& term) {
  switch (term.kind()) {
    case ast::Term::Kind::kVariable:
      return Status::Invalid("cannot intern non-ground term (variable '" +
                             term.var_name() + "')");
    case ast::Term::Kind::kInt:
      return InternInt(term.int_value());
    case ast::Term::Kind::kSymbol:
      return InternSym(term.symbol());
    case ast::Term::Kind::kCompound: {
      std::vector<ValueId> children;
      children.reserve(term.args().size());
      for (const ast::Term& a : term.args()) {
        FACTLOG_ASSIGN_OR_RETURN(ValueId c, FromTerm(a));
        children.push_back(c);
      }
      return InternApp(term.symbol(), std::move(children));
    }
  }
  return Status::Internal("unknown term kind");
}

ast::Term ValueStore::ToTerm(ValueId id) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case Kind::kInt:
      return ast::Term::Int(n.int_value);
    case Kind::kSymbol:
      return ast::Term::Sym(symbols_[n.symbol]);
    case Kind::kCompound: {
      std::vector<ast::Term> args;
      args.reserve(n.child_count);
      for (uint32_t i = 0; i < n.child_count; ++i) {
        args.push_back(ToTerm(children_[n.child_begin + i]));
      }
      return ast::Term::App(symbols_[n.symbol], std::move(args));
    }
  }
  return ast::Term::Sym("?");
}

}  // namespace factlog::eval
