// Naive and semi-naive bottom-up fixpoint evaluation.
//
// Computes the least fixpoint of the T_P operator (van Emden & Kowalski, as
// used in §2 of the paper) seeded with the EDB. The semi-naive strategy is
// the one the paper assumes throughout ("the semi-naive bottom-up evaluation
// of the new program constructs the answer to the query", §1).

#ifndef FACTLOG_EVAL_SEMINAIVE_H_
#define FACTLOG_EVAL_SEMINAIVE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ast/program.h"
#include "common/status.h"
#include "eval/database.h"
#include "eval/provenance.h"
#include "eval/rule_eval.h"
#include "plan/join_plan.h"
#include "plan/stats_catalog.h"

namespace factlog::eval {

/// Evaluation strategy selector.
enum class Strategy {
  kNaive,      // recompute every rule against the full extent each round
  kSemiNaive,  // delta-driven (default)
};

/// Which join order the engines evaluate rule bodies in.
enum class JoinOrder {
  /// The per-rule plan::JoinPlan order (default): the caller-supplied
  /// program_plan when compatible, else a plan computed on the fly from the
  /// database's extent sizes.
  kPlanned,
  /// Source body order — the pre-planner baseline the equivalence tests and
  /// benches compare against.
  kLeftToRight,
};

struct EvalOptions {
  Strategy strategy = Strategy::kSemiNaive;
  /// Abort with kResourceExhausted when total IDB facts exceed this. Guards
  /// against genuinely diverging programs (function symbols, Counting index
  /// fields; see §6.4).
  uint64_t max_facts = 10'000'000;
  /// Abort with kResourceExhausted after this many fixpoint iterations.
  uint64_t max_iterations = 1'000'000;
  /// Record first-derivation provenance (enables derivation trees).
  bool track_provenance = false;
  /// The database's base relations are shared read-only with concurrent
  /// evaluations (exec::ExecuteBatch): never build indices on them lazily —
  /// probe pre-built ones (exec::PrewarmIndexes) and otherwise scan. The
  /// ValueStore itself is always safe to share; this flag only governs the
  /// relations.
  bool shared_edb = false;
  /// Join-order policy (see JoinOrder). kLeftToRight ignores program_plan.
  JoinOrder join_order = JoinOrder::kPlanned;
  /// The compile-time join plan for the program being evaluated (normally
  /// core::CompiledQuery::plans, non-owning — must outlive the evaluation).
  /// Ignored when null or structurally incompatible with the program; the
  /// engines then plan for themselves.
  const plan::ProgramPlan* program_plan = nullptr;
  /// Mid-fixpoint adaptivity: before each semi-naive iteration the engines
  /// compare every planned relation literal's extent estimate against the
  /// observed extent (current delta size for IDB occurrences, live size for
  /// base relations, +1 smoothing both directions) and re-plan the rule —
  /// join order, index columns, partitioning driver — from the measured
  /// sizes when any ratio exceeds this factor. Re-planning changes only the
  /// enumeration order; fact sets stay oracle-identical. 0 disables; the
  /// default matches the engine cache's stale-plan drift guard. Ignored
  /// under kLeftToRight (the baseline must stay the baseline).
  double replan_threshold = 4.0;
};

/// Resolves the plan an evaluation of `program` against `db` should use:
/// `opts.program_plan` when compatible, an identity (source-order) plan
/// under kLeftToRight, else a fresh plan seeded with the database's actual
/// base-relation sizes. Shared by all three engines (eval, exec, inc).
plan::ProgramPlan PlanForEvaluation(const ast::Program& program,
                                    const Database& db,
                                    const EvalOptions& opts);

struct EvalStats {
  uint64_t iterations = 0;
  /// Distinct IDB facts at fixpoint.
  uint64_t total_facts = 0;
  /// Successful rule-head instantiations, including duplicates. This is the
  /// "number of inferences" cost measure.
  uint64_t instantiations = 0;
  /// Rows matched during joins (index probe successes).
  uint64_t rows_matched = 0;
  /// IDB facts per storage shard at fixpoint, summed over predicates (one
  /// entry for the flat layout). Shows how evenly the hash partitioning
  /// spread the derived rows. Entries always sum to total_facts; relations
  /// with fewer shards than the widest one (e.g. arity-0 predicates, which
  /// are never sharded) count toward their own low shard indices, so entry
  /// 0 can include rows of unsharded relations.
  std::vector<uint64_t> shard_facts;
  /// Per-rule join counters, index-aligned with the program's rules. The
  /// entries sum to `instantiations` / `rows_matched`; the scaling bench
  /// reports them per rule to make join-plan effects visible.
  std::vector<uint64_t> rule_instantiations;
  std::vector<uint64_t> rule_rows_matched;
  /// Rules re-planned mid-fixpoint (EvalOptions::replan_threshold).
  uint64_t replans = 0;
  /// Planner feedback (plan::StatsCatalog::ObserveBatch / ObserveExtent /
  /// ObserveDelta consume these): per-literal probe totals keyed by
  /// predicate + bound columns, IDB extents at fixpoint, and mean
  /// per-iteration delta sizes.
  std::vector<plan::ProbeObservation> probe_observations;
  std::map<std::string, uint64_t> observed_extents;
  std::map<std::string, double> observed_delta_mean;
};

/// Sums each shard's row count of `rel` into `shard_facts` (index-aligned by
/// shard, growing the vector as needed). Shared by the evaluators' stats
/// reporting.
void AccumulateShardFacts(const Relation& rel,
                          std::vector<uint64_t>* shard_facts);

/// Folds per-rule join counters into `stats`: fills rule_instantiations /
/// rule_rows_matched (index-aligned with `rule_stats`) and adds their sums
/// to the instantiations / rows_matched totals. Shared by the evaluators'
/// Finish paths.
void FoldRuleStats(const std::vector<JoinStats>& rule_stats, EvalStats* stats);

/// The +1-smoothed symmetric ratio test all drift guards share: true when
/// est and actual disagree by more than `threshold` in either direction.
bool ExtentDrifted(uint64_t est, uint64_t actual, double threshold);

/// Drains `stats`' per-literal probe counters into `out` as planner
/// observations — relation literals only, adorned with the plan's index
/// columns — zeroing the drained counters so the same JoinStats can keep
/// accumulating under a different (re-planned) literal order afterwards.
/// Shared by the evaluators' feedback paths.
void DrainProbeObservations(const CompiledRule& rule,
                            const plan::JoinPlan& rule_plan, JoinStats* stats,
                            std::vector<plan::ProbeObservation>* out);

/// Result of a bottom-up evaluation: the IDB relations plus statistics.
class EvalResult {
 public:
  const Relation* Find(const std::string& pred) const {
    auto it = idb_.find(pred);
    return it == idb_.end() ? nullptr : it->second.get();
  }
  Relation* Find(const std::string& pred) {
    auto it = idb_.find(pred);
    return it == idb_.end() ? nullptr : it->second.get();
  }
  const std::map<std::string, std::unique_ptr<Relation>>& idb() const {
    return idb_;
  }
  std::map<std::string, std::unique_ptr<Relation>>* mutable_idb() {
    return &idb_;
  }

  /// Number of facts for `pred` (0 when absent).
  size_t SizeOf(const std::string& pred) const {
    const Relation* r = Find(pred);
    return r == nullptr ? 0 : r->size();
  }

  const EvalStats& stats() const { return stats_; }
  EvalStats* mutable_stats() { return &stats_; }
  const ProvenanceStore& provenance() const { return provenance_; }
  ProvenanceStore* mutable_provenance() { return &provenance_; }

 private:
  std::map<std::string, std::unique_ptr<Relation>> idb_;
  EvalStats stats_;
  ProvenanceStore provenance_;
};

/// Evaluates `program` bottom-up against `db`. EDB relations in `db` are
/// read-only; the value store grows as new compound values are built.
Result<EvalResult> Evaluate(const ast::Program& program, Database* db,
                            const EvalOptions& opts = EvalOptions());

/// A set of answers to a query: one row per binding of the query's distinct
/// variables (in first-occurrence order). Rows are kept sorted and unique.
struct AnswerSet {
  std::vector<std::string> vars;
  std::vector<std::vector<ValueId>> rows;

  bool operator==(const AnswerSet& o) const { return rows == o.rows; }
  bool operator!=(const AnswerSet& o) const { return !(*this == o); }
  size_t size() const { return rows.size(); }

  std::string ToString(const ValueStore& values) const;
};

/// Extracts the answers to `query` from an evaluation result. The query may
/// contain constants and compound patterns; rows are the bindings of its
/// distinct variables. `shared_edb` as in EvalOptions (it matters when the
/// query predicate is a base relation).
Result<AnswerSet> ExtractAnswers(const ast::Atom& query, EvalResult* result,
                                 Database* db, bool shared_edb = false);

/// Core of ExtractAnswers against one explicit relation: enumerates the
/// bindings of `query`'s distinct variables over `rel` (nullptr = no facts,
/// empty answers). `shared` marks `rel` read-only-shared across threads
/// (probe pre-built indices or scan; never build). The serving subsystem
/// answers snapshot and view-hit queries through this entry point.
Result<AnswerSet> ExtractAnswersFrom(const ast::Atom& query, Relation* rel,
                                     ValueStore* store, bool shared);

/// Convenience: Evaluate + ExtractAnswers. When `stats_out` is non-null the
/// evaluation statistics are copied there.
Result<AnswerSet> EvaluateQuery(const ast::Program& program,
                                const ast::Atom& query, Database* db,
                                const EvalOptions& opts = EvalOptions(),
                                EvalStats* stats_out = nullptr);

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_SEMINAIVE_H_
